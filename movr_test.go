package movr_test

import (
	"strings"
	"testing"

	movr "github.com/movr-sim/movr"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow end
// to end through the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	world := movr.NewWorld(1)
	hs := world.NewHeadsetAt(movr.V(3.4, 2.4), 60)
	dev := movr.DefaultReflector(movr.V(4.6, 4.6), 225)
	link := movr.NewControlLink(movr.NewController(dev), 0, 0, 1)
	mgr := movr.NewLinkManager(world.Tracer, world.AP, hs)
	idx := mgr.AddReflector(dev, link)
	if err := mgr.AlignFromGeometry(idx); err != nil {
		t.Fatal(err)
	}
	st := mgr.Best()
	if !st.MeetsRequirement {
		t.Errorf("quickstart link state should meet VR: %v", st)
	}
	// Blockage handling through the facade.
	world.Room.AddObstacle(movr.Hand(movr.V(2.0, 1.5)))
	st = mgr.Best()
	if !st.MeetsRequirement {
		t.Errorf("MoVR should rescue blockage: %v", st)
	}
}

// TestPublicAPIExperiments smoke-tests every experiment runner through
// the facade at reduced scale.
func TestPublicAPIExperiments(t *testing.T) {
	f3 := movr.DefaultFig3Config()
	f3.Runs = 2
	f3.NLOSStepDeg = 10
	if r := movr.RunFig3(f3); !strings.Contains(r.Render(), "Figure 3") {
		t.Error("Fig3 render broken")
	}
	if r := movr.RunFig7(movr.DefaultFig7Config()); !strings.Contains(r.Render(), "Figure 7") {
		t.Error("Fig7 render broken")
	}
	f8 := movr.DefaultFig8Config()
	f8.Runs = 2
	if r := movr.RunFig8(f8); !strings.Contains(r.Render(), "Figure 8") {
		t.Error("Fig8 render broken")
	}
	f9 := movr.DefaultFig9Config()
	f9.Runs = 2
	f9.NLOSStepDeg = 10
	if r := movr.RunFig9(f9); !strings.Contains(r.Render(), "Figure 9") {
		t.Error("Fig9 render broken")
	}
	if r := movr.RunBattery(movr.DefaultBatteryConfig()); !r.MeetsPaperClaim {
		t.Error("battery claim broken")
	}
}

// TestPublicAPIPrimitives checks the re-exported substrate helpers.
func TestPublicAPIPrimitives(t *testing.T) {
	if movr.Version == "" {
		t.Error("version empty")
	}
	if movr.HTCVive().RefreshHz != 90 {
		t.Error("display spec wrong")
	}
	if movr.HTCViveRequirement().RateBps < 2e9 {
		t.Error("requirement wrong")
	}
	if g := movr.GbpsAtSNR(25); g < 6 {
		t.Errorf("GbpsAtSNR(25) = %v", g)
	}
	arr := movr.DefaultArray(90)
	if bw := arr.BeamwidthDeg(); bw < 8 || bw > 12 {
		t.Errorf("beamwidth = %v", bw)
	}
	trace, err := movr.GenerateMotion(movr.DefaultMotionConfig(5, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Duration() <= 0 {
		t.Error("trace empty")
	}
	b := movr.DefaultBudget()
	if b.FreqHz != 24e9 {
		t.Errorf("default carrier = %v", b.FreqHz)
	}
}
