# Mirrors .github/workflows/ci.yml so contributors run the exact CI
# commands locally: `make ci` is what the gate runs.

GO ?= go

.PHONY: build build-cmds vet fmt-check test race bench bench-suite bench-gate bench-baseline bench-profile serve load-smoke ci

build:
	$(GO) build ./...

build-cmds:
	$(GO) build ./cmd/...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the named perf suite — one fleet entry per scenario kind, the
# coex airtime-policy family (fleet/coex{,pf,edf}) included — and write
# BENCH_<git-sha>.json (see the README's "Performance workflow"
# section). `go run` embeds no VCS revision, so the sha is passed
# explicitly.
bench-suite:
	MOVR_GIT_SHA=$$(git rev-parse --short=12 HEAD) $(GO) run ./cmd/movrsim bench

# Run the suite fresh and gate it against the committed baseline — the
# CI bench-gate job. Tune with BENCH_TOL_PCT / BENCH_ALLOC_TOL.
bench-gate:
	sh scripts/bench_gate.sh

# Re-baseline after an intentional perf change: regenerate
# BENCH_baseline.json and commit it with the change that justified it.
bench-baseline:
	MOVR_GIT_SHA=$$(git rev-parse --short=12 HEAD) $(GO) run ./cmd/movrsim -bench-out BENCH_baseline.json bench

# Profile the suite: a fast pass that writes one CPU and one heap
# profile per benchmark into profiles/ (plus the report), ready for
# `go tool pprof profiles/fleet_venue16x4.cpu.pprof`. Profiled wall
# times are perturbed — don't gate against them.
bench-profile:
	MOVR_GIT_SHA=$$(git rev-parse --short=12 HEAD) $(GO) run ./cmd/movrsim \
		-fast -bench-cpuprofile profiles -bench-memprofile profiles \
		-bench-out profiles/BENCH_profile.json bench

# Start movrd, poll /healthz, submit a tiny fleet job, and assert the
# resubmission is a byte-identical cache hit — the CI movrd-smoke step.
# Also checks the v1 error envelope and listing pagination.
serve:
	sh scripts/movrd_smoke.sh

# Replay a movrload burst against a live movrd (p95 gate + 429
# backpressure), then SIGKILL it and assert the restart serves the
# persisted result from the durable store — the CI load-smoke job.
load-smoke:
	sh scripts/movrd_load_smoke.sh

ci: build build-cmds vet fmt-check test race bench serve load-smoke bench-gate
