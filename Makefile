# Mirrors .github/workflows/ci.yml so contributors run the exact CI
# commands locally: `make ci` is what the gate runs.

GO ?= go

.PHONY: build build-cmds vet fmt-check test race bench serve ci

build:
	$(GO) build ./...

build-cmds:
	$(GO) build ./cmd/...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Start movrd, poll /healthz, submit a tiny fleet job, and assert the
# resubmission is a byte-identical cache hit — the CI movrd-smoke step.
serve:
	sh scripts/movrd_smoke.sh

ci: build build-cmds vet fmt-check test race bench serve
