# Mirrors .github/workflows/ci.yml so contributors run the exact CI
# commands locally: `make ci` is what the gate runs.

GO ?= go

.PHONY: build vet fmt-check test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check test race bench
