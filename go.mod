module github.com/movr-sim/movr

go 1.23
