package movr

import (
	"github.com/movr-sim/movr/internal/align"
	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/baseline"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/gainctl"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/ofdm"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/venue"
	"github.com/movr-sim/movr/internal/vr"
)

// Version is the library version.
const Version = "1.0.0"

// Core geometry and environment types.
type (
	// Vec is a 2-D point in the floor plan (metres).
	Vec = geom.Vec

	// Room is the physical environment: walls, materials, obstacles.
	Room = room.Room

	// Obstacle is a cylindrical blocker (hand, head, body, furniture).
	Obstacle = room.Obstacle

	// Material is a wall surface with its mmWave reflection loss.
	Material = room.Material
)

// Radio-layer types.
type (
	// Array is a steerable uniform linear phased array.
	Array = antenna.Array

	// ArrayConfig configures an Array.
	ArrayConfig = antenna.Config

	// Budget is the link budget (TX power, bandwidth, noise figure).
	Budget = channel.Budget

	// Tracer is the mmWave ray tracer.
	Tracer = channel.Tracer

	// Path is one traced propagation path.
	Path = channel.Path

	// Radio is a generic positioned mmWave transceiver.
	Radio = radio.Radio

	// AP is the mmWave access point wired to the VR PC.
	AP = radio.AP

	// Headset is the mmWave receiver worn by the player.
	Headset = radio.Headset

	// MCS is one 802.11ad modulation-and-coding scheme.
	MCS = phy.MCS

	// VRRequirement is the headset's rate/latency demand.
	VRRequirement = phy.VRRequirement
)

// MoVR system types.
type (
	// Reflector is the MoVR device: two phased arrays and a
	// variable-gain amplifier, controllable over Bluetooth.
	Reflector = reflector.Reflector

	// ReflectorConfig configures a Reflector.
	ReflectorConfig = reflector.Config

	// Controller is the reflector's on-board microcontroller.
	Controller = reflector.Controller

	// ControlLink is the simulated Bluetooth control channel.
	ControlLink = control.Link

	// Sweeper runs the §4.1 backscatter beam-alignment protocol.
	Sweeper = align.Sweeper

	// AlignConfig configures the alignment protocol.
	AlignConfig = align.Config

	// AlignResult is an alignment outcome.
	AlignResult = align.Result

	// GainConfig tunes the §4.2 adaptive gain control.
	GainConfig = gainctl.Config

	// GainResult is a gain-control outcome.
	GainResult = gainctl.Result

	// LinkManager selects between the direct path and reflectors, and
	// tracks beams from VR pose.
	LinkManager = linkmgr.Manager

	// LinkState is the link manager's current decision.
	LinkState = linkmgr.LinkState

	// StaticWHDI is the frozen-beam wireless-HDMI baseline.
	StaticWHDI = baseline.StaticWHDI

	// MultiAP is the multi-access-point baseline.
	MultiAP = baseline.MultiAP
)

// VR-side types.
type (
	// DisplaySpec is a headset display pipeline.
	DisplaySpec = vr.DisplaySpec

	// Pose is one tracked player pose.
	Pose = vr.Pose

	// MotionTrace is a time-ordered pose sequence.
	MotionTrace = vr.Trace

	// StreamReport summarizes frame delivery over a session.
	StreamReport = stream.Report
)

// Experiment types: one per paper figure plus the §6 analyses.
type (
	// World is the standard 5 m × 5 m office testbed.
	World = experiments.World

	Fig3Config = experiments.Fig3Config
	Fig3Result = experiments.Fig3Result
	Fig7Config = experiments.Fig7Config
	Fig7Result = experiments.Fig7Result
	Fig8Config = experiments.Fig8Config
	Fig8Result = experiments.Fig8Result
	Fig9Config = experiments.Fig9Config
	Fig9Result = experiments.Fig9Result

	BatteryConfig = experiments.BatteryConfig
	BatteryResult = experiments.BatteryResult
	LatencyConfig = experiments.LatencyConfig
	LatencyResult = experiments.LatencyResult
	SessionConfig = experiments.SessionConfig
	SessionResult = experiments.SessionResult

	// ReflectorMount is one reflector installation point for a session.
	ReflectorMount = experiments.Mount

	// SessionVariantOutcome is a single variant's streaming report and
	// handoff count.
	SessionVariantOutcome = experiments.VariantOutcome
)

// Fleet engine types: concurrent multi-session simulation across a
// bounded worker pool with deterministic aggregation.
type (
	// FleetSpec describes one independent VR session in a fleet.
	FleetSpec = fleet.Spec

	// FleetConfig tunes a fleet run (worker count).
	FleetConfig = fleet.Config

	// FleetResult is a completed fleet run: per-session outcomes in
	// spec order plus the aggregate statistics.
	FleetResult = fleet.Result

	// FleetAggregate is the fleet-level statistic set (delivered-rate
	// percentiles, blockage-outage time, reflector-handoff counts).
	FleetAggregate = fleet.Aggregate

	// FleetSessionOutcome is one session's result within a fleet.
	FleetSessionOutcome = fleet.SessionOutcome

	// FleetQuantiles summarizes one per-session metric across a fleet.
	FleetQuantiles = fleet.Quantiles

	// FleetScenarioConfig tunes the fleet scenario generators.
	FleetScenarioConfig = fleet.ScenarioConfig

	// FleetScenarioKind names a scenario generator
	// (mixed|arcade|home|dense|coex|coexpf|coexedf|venue) — the shared
	// vocabulary of the movrsim -scenario flag and the movrd job API.
	FleetScenarioKind = fleet.Kind

	// VenueAssignMode names a venue channel-assignment strategy
	// (color|fixed).
	VenueAssignMode = venue.AssignMode

	// FleetCollector folds session outcomes as they complete; exact
	// and streaming implementations plug into RunFleetCollect.
	FleetCollector = fleet.Collector

	// FleetStreamState is the constant-memory mergeable aggregation
	// state a streaming fleet run carries instead of per-session
	// outcomes.
	FleetStreamState = fleet.StreamState

	// FleetShard selects one contiguous session range of a fleet
	// (shard Index of Count); shard results merge deterministically
	// with MergeFleetShardResults.
	FleetShard = fleet.Shard
)

// Construction helpers.
var (
	// V constructs a Vec.
	V = geom.V

	// NewOffice5x5 builds the paper's 5 m × 5 m office testbed room.
	NewOffice5x5 = room.NewOffice5x5

	// NewWorld builds the standard experimental world (room + AP) with
	// the given reflection order, at the 24 GHz prototype carrier.
	NewWorld = experiments.NewWorld

	// NewWorldWithBudget builds the world with an explicit link budget
	// (e.g. Budget60GHz for the 802.11ad band).
	NewWorldWithBudget = experiments.NewWorldWithBudget

	// Budget60GHz returns the 60 GHz 802.11ad link budget.
	Budget60GHz = channel.Budget60GHz

	// DefaultArray returns the paper-calibrated phased array facing a
	// world direction.
	DefaultArray = antenna.Default

	// DefaultBudget returns the calibrated 24 GHz link budget.
	DefaultBudget = channel.DefaultBudget

	// NewTracer builds a ray tracer over a room.
	NewTracer = channel.NewTracer

	// NewAP builds an access point.
	NewAP = radio.NewAP

	// NewHeadset builds a headset radio.
	NewHeadset = radio.NewHeadset

	// NewReflector builds a MoVR device from a configuration.
	NewReflector = reflector.New

	// DefaultReflector builds a paper-calibrated MoVR device at a
	// position and mount direction.
	DefaultReflector = reflector.Default

	// DefaultReflectorConfig returns the calibrated device config.
	DefaultReflectorConfig = reflector.DefaultConfig

	// NewController wraps a reflector with its microcontroller.
	NewController = reflector.NewController

	// NewControlLink connects a simulated Bluetooth link to a device
	// handler.
	NewControlLink = control.NewLink

	// NewSweeper builds an alignment protocol runner.
	NewSweeper = align.NewSweeper

	// DefaultAlignConfig returns the calibrated protocol parameters.
	DefaultAlignConfig = align.DefaultConfig

	// OptimizeGain runs the §4.2 adaptive gain control on a device.
	OptimizeGain = gainctl.Optimize

	// DefaultGainConfig returns calibrated gain-control thresholds.
	DefaultGainConfig = gainctl.DefaultConfig

	// NewLinkManager builds the end-to-end path selector.
	NewLinkManager = linkmgr.New

	// HTCVive returns the testbed headset's display spec.
	HTCVive = vr.HTCVive

	// HTCViveRequirement returns the testbed headset's link demand.
	HTCViveRequirement = phy.HTCViveRequirement

	// GenerateMotion synthesizes a seeded player motion trace.
	GenerateMotion = vr.Generate

	// DefaultMotionConfig returns a lively room-scale session config.
	DefaultMotionConfig = vr.DefaultTraceConfig

	// OptNLOS runs the exhaustive non-line-of-sight beam sweep
	// baseline.
	OptNLOS = baseline.OptNLOS

	// OptNLOSBuf is OptNLOS with a caller-retained tracer scratch
	// buffer (Tracer.TraceHInto semantics) for allocation-free sweeps
	// over many placements.
	OptNLOSBuf = baseline.OptNLOSBuf

	// LinkSNR computes the data-plane SNR between two radios over all
	// traced paths at their current steering.
	LinkSNR = radio.LinkSNRdB

	// LinkSNRBuf is LinkSNR with a caller-retained tracer scratch
	// buffer; steady-state loops allocate nothing per read.
	LinkSNRBuf = radio.LinkSNRdBBuf

	// GbpsAtSNR converts an SNR to the achievable 802.11ad rate in
	// Gb/s.
	GbpsAtSNR = experiments.GbpsAt

	// Hand, Head, Body and Furniture build the standard blockers.
	Hand      = room.Hand
	Head      = room.Head
	Body      = room.Body
	Furniture = room.Furniture
)

// Experiment runners: each reproduces one paper result deterministically.
var (
	// RunFig3 reproduces Fig 3 (blockage impact on SNR and rate).
	RunFig3 = experiments.Fig3

	// DefaultFig3Config returns the paper-scale Fig 3 parameters.
	DefaultFig3Config = experiments.DefaultFig3Config

	// RunFig7 reproduces Fig 7 (TX→RX leakage vs beam angles).
	RunFig7 = experiments.Fig7

	// DefaultFig7Config returns the paper's Fig 7 axes.
	DefaultFig7Config = experiments.DefaultFig7Config

	// RunFig8 reproduces Fig 8 (beam alignment accuracy).
	RunFig8 = experiments.Fig8

	// DefaultFig8Config returns the paper-scale Fig 8 parameters.
	DefaultFig8Config = experiments.DefaultFig8Config

	// RunFig9 reproduces Fig 9 (SNR improvement CDFs).
	RunFig9 = experiments.Fig9

	// DefaultFig9Config returns the paper-scale Fig 9 parameters.
	DefaultFig9Config = experiments.DefaultFig9Config

	// RunBattery reproduces the §6 battery-life analysis.
	RunBattery = experiments.Battery

	// DefaultBatteryConfig returns the paper's battery numbers.
	DefaultBatteryConfig = experiments.DefaultBatteryConfig

	// RunLatency reproduces the §6 latency-budget analysis.
	RunLatency = experiments.Latency

	// RunSession runs the end-to-end VR streaming comparison (the §6
	// future-work evaluation).
	RunSession = experiments.Session

	// RunSessionVariant runs a single system variant of a session and
	// reports frame delivery plus path handoffs; configuration problems
	// are returned as errors (the fleet engine's entry point).
	RunSessionVariant = experiments.RunSessionVariant

	// DefaultSessionConfig returns a 30-second session.
	DefaultSessionConfig = experiments.DefaultSessionConfig

	// DefaultReflectorMounts returns the standard two-reflector install
	// for a room footprint.
	DefaultReflectorMounts = experiments.DefaultMounts

	// RunAblationGainBackoff, RunAblationPhaseBits,
	// RunAblationSweepStep and RunAblationTrackingPeriod quantify the
	// design choices called out in DESIGN.md.
	RunAblationGainBackoff    = experiments.AblationGainBackoff
	RunAblationPhaseBits      = experiments.AblationPhaseBits
	RunAblationSweepStep      = experiments.AblationSweepStep
	RunAblationTrackingPeriod = experiments.AblationTrackingPeriod

	// RenderAblations and RenderTrackingAblation format ablation
	// results as text tables.
	RenderAblations        = experiments.RenderAblations
	RenderTrackingAblation = experiments.RenderTrackingAblation

	// RunDeployment compares multi-AP deployments against AP+reflector
	// deployments (§1's cost argument).
	RunDeployment = experiments.Deployment

	// RunHeatmap maps VR-grade coverage across the office grid.
	RunHeatmap = experiments.Heatmap

	// DefaultHeatmapConfig returns the standard coverage-map settings.
	DefaultHeatmapConfig = experiments.DefaultHeatmapConfig
)

// Fleet engine: multi-session simulation at scale.
var (
	// RunFleetCollect runs a fleet through an explicit collector: pass
	// NewFleetStreamCollector's result for constant-memory streaming
	// aggregation, or nil for the exact path RunFleet uses.
	RunFleetCollect = fleet.RunCollect

	// NewFleetStreamCollector builds the streaming collector sized for
	// a spec set; always size it from the full pre-shard set so shard
	// states stay mergeable.
	NewFleetStreamCollector = fleet.StreamCollectorFor

	// MergeFleetShardResults merges per-shard fleet results back into
	// the whole-fleet aggregate: exact-path merges reproduce the
	// unsharded run bit-identically, sketch merges are identical
	// across merge orders.
	MergeFleetShardResults = fleet.MergeShardResults

	// RunFleet simulates every spec across a bounded worker pool and
	// aggregates per-session reports into fleet statistics. The same
	// specs produce byte-identical results for any worker count.
	RunFleet = fleet.Run

	// ArcadeFleet, HomesFleet, DenseBlockerFleet and MixedFleet
	// generate deterministic multi-session deployments: many headsets
	// per room, one headset per room across many rooms, cluttered-room
	// stress, and an interleaved mix.
	ArcadeFleet       = fleet.Arcade
	HomesFleet        = fleet.Homes
	DenseBlockerFleet = fleet.DenseBlockers
	MixedFleet        = fleet.Mixed

	// ArcadeFleetN sizes four-player arcade bays for exactly n sessions.
	ArcadeFleetN = fleet.ArcadeN

	// CoexFleet generates shared-medium arcade bays: the room's one
	// 60 GHz channel is split across its players by a TDMA airtime
	// scheduler under a pluggable policy (round-robin by default, with
	// idle slots reclaimed; FleetScenarioConfig.CoexPolicy selects
	// proportional-fair or deadline-aware sizing, CoexUplink reserves
	// per-player pose-report sub-slots, CoexWeights skews airtime), and
	// every other player's body moves through the room as a dynamic
	// obstacle. CoexFleetN sizes bays for exactly n sessions.
	CoexFleet  = fleet.Coex
	CoexFleetN = fleet.CoexN

	// VenueFleet generates a venue-scale deployment: a near-square grid
	// of adjacent coex bays sharing drywall partitions, with per-bay
	// channel assignment (FleetScenarioConfig.VenueChannels/VenueAssign),
	// cross-bay SINR interference read from neighboring bays' geometry
	// snapshots, and admission control on each bay's TDMA capacity
	// (VenueAdmission). VenueFleetN sizes the venue for roughly n
	// sessions. A 1-bay venue reproduces the equivalent CoexFleet room
	// byte-identically.
	VenueFleet  = fleet.Venue
	VenueFleetN = fleet.VenueN

	// VenueFleetCapacity reports how many of a bay's configured players
	// the admission controller admits under the scenario's policy and
	// timing.
	VenueFleetCapacity = fleet.VenueCapacity

	// ParseFleetScenario validates a scenario name and returns its
	// FleetScenarioKind; kind.Specs(n, cfg) generates the deterministic
	// spec set and kind.Title() the report banner.
	ParseFleetScenario = fleet.ParseKind

	// FleetScenarioKinds lists the recognised scenario kinds in menu
	// order; FleetScenarioNames renders them for usage strings.
	FleetScenarioKinds = fleet.Kinds
	FleetScenarioNames = fleet.KindNames
)

// Coex scenario vocabulary shared by the CLI and the movrd job API, so
// the two front-ends validate the players-per-bay and airtime-policy
// knobs identically.
const (
	// FleetScenarioCoex is the shared-medium arcade kind;
	// FleetScenarioCoexPF and FleetScenarioCoexEDF are the same bays
	// with the proportional-fair and deadline-aware airtime policies
	// forced on. The coex family is the only set of scenarios the
	// players-per-bay, policy and uplink knobs apply to.
	FleetScenarioCoex    = fleet.KindCoex
	FleetScenarioCoexPF  = fleet.KindCoexPF
	FleetScenarioCoexEDF = fleet.KindCoexEDF

	// FleetScenarioVenue is the venue-scale kind: a grid of coex bays
	// with cross-bay interference, channel assignment and admission
	// control. The bays/channels/assign/admission knobs apply to it
	// alone.
	FleetScenarioVenue = fleet.KindVenue

	// DefaultCoexHeadsets and MaxCoexHeadsets bound the players sharing
	// one coex bay's medium.
	DefaultCoexHeadsets = fleet.DefaultCoexHeadsets
	MaxCoexHeadsets     = fleet.MaxCoexHeadsets

	// DefaultVenueBays and MaxVenueBays bound the venue scenario's bay
	// grid; DefaultVenueChannels and MaxVenueChannels its channel
	// budget.
	DefaultVenueBays     = fleet.DefaultVenueBays
	MaxVenueBays         = fleet.MaxVenueBays
	DefaultVenueChannels = venue.DefaultChannels
	MaxVenueChannels     = venue.MaxChannels

	// VenueAssignColoring and VenueAssignFixed are the channel-
	// assignment strategies; VenueAdmissionQueue and
	// VenueAdmissionReject the admission behaviors for players beyond a
	// bay's capacity.
	VenueAssignColoring  = venue.AssignColoring
	VenueAssignFixed     = venue.AssignFixed
	VenueAdmissionQueue  = fleet.AdmissionQueue
	VenueAdmissionReject = fleet.AdmissionReject

	// CoexPolicyRR, CoexPolicyPF and CoexPolicyEDF name the pluggable
	// airtime policies a coex bay's TDMA scheduler can run: the
	// round-robin even split, proportional-fair sizing by recent
	// geometric link quality, and deadline-aware sizing quantized to
	// the display's frame-deadline grid.
	CoexPolicyRR  = coex.PolicyRR
	CoexPolicyPF  = coex.PolicyPF
	CoexPolicyEDF = coex.PolicyEDF
)

// Shared-medium coexistence types (internal/coex): the per-session
// airtime scheduler and its pluggable policy surface.
type (
	// CoexRoom describes one shared-medium room from a session's point
	// of view — the player traces, this session's slot, and the
	// scheduling knobs (policy, weights, uplink reservation).
	CoexRoom = coex.Room

	// CoexScheduler computes a session's airtime share over virtual
	// time under the room's policy.
	CoexScheduler = coex.Scheduler

	// CoexAirtimePolicy sizes the per-player sub-slots of every
	// scheduling window; CoexPolicyName names the built-in policies.
	CoexAirtimePolicy = coex.AirtimePolicy
	CoexPolicyName    = coex.PolicyName
)

// Airtime-policy helpers shared by the movrsim CLI and the movrd job
// API.
var (
	// NewCoexScheduler validates a shared room and builds one session's
	// airtime scheduler.
	NewCoexScheduler = coex.NewScheduler

	// ParseCoexPolicy validates an airtime-policy name ("" = rr);
	// CoexPolicies lists the policies and CoexPolicyNames renders the
	// "rr|pf|edf" menu for usage strings.
	ParseCoexPolicy = coex.ParsePolicy
	CoexPolicies    = coex.Policies
	CoexPolicyNames = coex.PolicyNames

	// IsCoexFleetScenario reports whether a scenario kind belongs to
	// the shared-medium family the coex knobs apply to (the venue kind
	// included — its bays are coex rooms).
	IsCoexFleetScenario = fleet.IsCoexKind

	// IsVenueFleetScenario reports whether a kind is the venue scenario
	// — the only one the bays/channels/assign/admission knobs apply to.
	IsVenueFleetScenario = fleet.IsVenueKind

	// ParseVenueAssignMode validates a channel-assignment mode name
	// ("" = coloring); VenueAssignModeNames renders the "color|fixed"
	// menu. ParseVenueAdmission validates an admission behavior
	// ("" = queue).
	ParseVenueAssignMode = venue.ParseAssignMode
	VenueAssignModeNames = venue.AssignModeNames
	ParseVenueAdmission  = fleet.ParseAdmission
)

// HeatmapConfig and HeatmapResult parameterize and report the coverage
// map.
type (
	HeatmapConfig = experiments.HeatmapConfig
	HeatmapResult = experiments.HeatmapResult
)

// Session variant labels for reading SessionResult.Reports.
const (
	VariantDirectOnly   = experiments.VariantDirectOnly
	VariantMoVRStatic   = experiments.VariantMoVRStatic
	VariantMoVRReactive = experiments.VariantMoVRReactive
	VariantMoVRTracking = experiments.VariantMoVRTracking
)

// MeasureOFDMSNR synthesizes 802.11ad OFDM symbols through a flat channel
// with AWGN at the given link SNR and returns the EVM-estimated SNR — the
// data-plane measurement the paper's headset performs (§5.2). It closes
// the loop between the analytic link budget and the signal path.
func MeasureOFDMSNR(snrDB float64, symbols int, seed int64) (float64, error) {
	m, err := ofdm.NewModem(ofdm.DefaultConfig())
	if err != nil {
		return 0, err
	}
	return m.MeasureAtSNR(snrDB, symbols, seed)
}
