// Package movr is a full-system simulator and reference implementation of
// MoVR, the programmable mmWave reflector for untethered virtual reality
// from "Cutting the Cord in Virtual Reality" (Abari, Bharadia, Duffield,
// Katabi — HotNets-XV, 2016).
//
// # What this package provides
//
// MoVR replaces the multi-Gbps HDMI tether between a VR PC and headset
// with a 24 GHz mmWave link, and solves mmWave's blockage problem with a
// wall-mounted programmable reflector: two steerable phased arrays joined
// by a variable-gain amplifier, with no baseband of its own. This module
// implements the complete system in pure Go (standard library only):
//
//   - the physical substrate: phased arrays with quantized phase
//     shifters, a ray-traced indoor mmWave channel with knife-edge
//     blockage, the 802.11ad MCS tables, an OFDM modem, and a
//     saturating amplifier with a supply-current model;
//   - the paper's two core algorithms: backscatter beam alignment
//     (finding angles of incidence/reflection for a device that can
//     neither transmit nor receive, §4.1) and current-sensing adaptive
//     gain control (§4.2);
//   - the systems around them: a Bluetooth-style control plane, an
//     amplify-and-forward link budget, a path-selecting link manager
//     with pose-driven beam tracking, VR motion traces, a discrete-event
//     streaming simulator, and the paper's comparison baselines;
//   - reproductions of every figure in the paper's evaluation (Fig 3,
//     7, 8, 9) plus the §6 battery and latency analyses, exposed as
//     seeded, deterministic experiments;
//   - a fleet engine (RunFleet with the Arcade/Homes/DenseBlocker/Mixed
//     scenario generators) that simulates many concurrent VR sessions —
//     distinct rooms, seeds, reflector deployments and motion traces —
//     across a bounded worker pool and aggregates them into fleet-level
//     percentile statistics, byte-identical for any worker count. The
//     heavy experiment sweeps (coverage heatmap, Fig 9 trials, the
//     ablations) fan out through the same pool;
//   - a shared-medium coexistence model (internal/coex, the CoexFleet
//     "coex" scenario family): multi-headset arcade bays where one
//     60 GHz channel is split across the room's players by a TDMA
//     airtime scheduler at the tracking cadence — body-blocked players'
//     slots are reclaimed by the others — and every co-player walks its
//     own motion trace through the room as a dynamic obstacle. The
//     first workload where per-player delivered rate degrades as
//     players per room grow. Slot sizing is a pluggable AirtimePolicy:
//     round-robin ("rr", the default), proportional-fair ("pf", shares
//     follow each player's recent geometric link quality), and
//     deadline-aware ("edf", slots quantized to the display's
//     frame-deadline grid), all weight-aware, with an optional
//     pose-report uplink reservation per player per window — see the
//     README's "Airtime policies" section for the policy menu and the
//     movrsim/movrd knobs;
//   - a simulation-as-a-service daemon (cmd/movrd over internal/server):
//     a job API with SSE progress streams, a scheduler that multiplexes
//     concurrent jobs onto one shared bounded session pool with 429
//     backpressure, a deterministic result cache keyed by a canonical
//     spec hash (repeat submissions return byte-identical JSON
//     instantly), and Prometheus metrics on /metrics. See the README's
//     "Serving simulations" section for the API walkthrough;
//   - a performance subsystem (internal/bench, `movrsim bench`): the
//     channel tracer and the link manager's tracking step run
//     allocation-free in steady state (TraceInto/TraceHInto reuse
//     caller-retained path buffers over per-wall transforms precomputed
//     at NewTracer time, golden-tested bit-identical to the original
//     tracer), temporal coherence caches tick-over-tick work (see
//     "Shared-room geometry" below), and a named benchmark suite writes
//     schema-versioned BENCH_<git-sha>.json reports that
//     scripts/bench_gate.sh compares against the committed
//     BENCH_baseline.json in CI, printing a per-entry delta table and
//     failing on regressions. See the README's "Performance workflow"
//     section.
//
// # Shared-room geometry
//
// In a shared bay the schedule and the peer poses conceptually belong
// to the room, not to any one session — every co-located session must
// derive the identical schedule. The simulator makes that ownership
// literal: coex.BuildGeometry precomputes a room-owned snapshot (every
// player's pose on the world-tick grid plus every player's slot
// boundaries for every scheduling window over the horizon), the fleet
// generator builds it once per room, and all of the room's sessions
// read it instead of re-evaluating the airtime policy N times per
// window. The snapshot is recorded by running the scheduler's own
// window-layout code, live evaluation remains the fallback beyond its
// horizon, and pose queries answer only exact on-grid times — so
// results with and without the snapshot are bit-identical, pinned end
// to end by golden tests that compare whole per-session streaming
// reports with ==. One layer down, channel.PathCache applies the same
// temporal-coherence idea to ray tracing: each link leg caches last
// tick's path set and revalidates only the blockage legs that moved
// geometry could have changed, re-tracing in full when endpoints or
// walls change. See ARCHITECTURE.md for the layer map and the
// per-layer determinism guarantees.
//
// # Quick start
//
//	result := movr.RunFig9(movr.DefaultFig9Config())
//	fmt.Println(result.Render())
//
// or run the CLI:
//
//	go run ./cmd/movrsim all
//
// See DESIGN.md for the modelling decisions and EXPERIMENTS.md for
// paper-vs-measured comparisons.
package movr
