package movr_test

// End-to-end integration tests: the full protocol pipeline (backscatter
// alignment → gain control → path selection → frame streaming) and
// failure injection, exercised exclusively through the public API.

import (
	"math"
	"testing"
	"time"

	movr "github.com/movr-sim/movr"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stream"
)

// TestE2EFullPipeline runs the complete MoVR bring-up the paper
// describes: install a reflector, align it with the real backscatter
// sweep (not geometry), then stream VR frames through a blocked room.
func TestE2EFullPipeline(t *testing.T) {
	world := movr.NewWorld(1)
	dev := movr.DefaultReflector(movr.V(2.2, 5), 270)
	link := movr.NewControlLink(movr.NewController(dev), 0, 0.05, 3) // 5% control loss

	// Step 1: the §4.1 alignment sweep finds the incidence angle.
	sweeper, err := movr.NewSweeper(world.AP, dev, link, world.Tracer, movr.DefaultAlignConfig())
	if err != nil {
		t.Fatal(err)
	}
	alignRes, err := sweeper.Hierarchical()
	if err != nil {
		t.Fatal(err)
	}

	// Step 2: hand the sweep result (NOT geometry) to the link manager.
	hs := world.NewHeadsetAt(movr.V(3.0, 3.4), 120) // facing the reflector side
	mgr := movr.NewLinkManager(world.Tracer, world.AP, hs)
	idx := mgr.AddReflector(dev, link)
	if err := mgr.SetAlignment(idx, alignRes.APBeamDeg, alignRes.ReflBeamDeg); err != nil {
		t.Fatal(err)
	}

	// Step 3: block the direct path and stream one second of VR.
	world.Room.AddObstacle(movr.Hand(movr.V(1.7, 1.9)))
	st := mgr.Best()
	if st.Choice.String() != "reflector" {
		t.Fatalf("pipeline chose %v (snr %.1f)", st.Choice, st.SNRdB)
	}
	if !st.MeetsRequirement {
		t.Fatalf("aligned reflector path fails VR: %v", st)
	}
	rep := stream.Run(sim.New(), stream.Config{
		Display:  movr.HTCVive(),
		Duration: time.Second,
	}, stream.ConstantRate(st.RateBps))
	if rep.Glitches != 0 {
		t.Errorf("streaming over the aligned path glitched: %+v", rep)
	}
}

// TestE2EReflectorPowerLoss injects a mid-session device failure: the
// reflector's amplifier dies and the manager must fall back to whatever
// the direct path offers.
func TestE2EReflectorPowerLoss(t *testing.T) {
	world := movr.NewWorld(1)
	hs := world.NewHeadsetAt(movr.V(3.4, 2.4), 60) // facing reflector, AP behind
	dev := movr.DefaultReflector(movr.V(4.6, 4.6), 225)
	link := movr.NewControlLink(movr.NewController(dev), 0, 0, 1)
	mgr := movr.NewLinkManager(world.Tracer, world.AP, hs)
	idx := mgr.AddReflector(dev, link)
	if err := mgr.AlignFromGeometry(idx); err != nil {
		t.Fatal(err)
	}
	before := mgr.Best()
	if before.Choice.String() != "reflector" {
		t.Fatalf("setup: want reflector, got %v", before)
	}

	// Power failure: amplifier off. The device now reflects nothing.
	dev.Amp().SetEnabled(false)
	after := mgr.Best()
	if after.Choice.String() == "reflector" && after.SNRdB > 5 {
		t.Fatalf("dead reflector still carrying the link: %v", after)
	}
	// The headset faces away from the AP, so the fallback is poor —
	// but the manager must degrade gracefully, not panic or lie.
	if after.MeetsRequirement && after.SNRdB < before.SNRdB-20 {
		t.Errorf("inconsistent state after failure: %v", after)
	}

	// Power restored: service resumes.
	dev.Amp().SetEnabled(true)
	restored := mgr.Best()
	if restored.Choice.String() != "reflector" || !restored.MeetsRequirement {
		t.Errorf("service did not resume after power restore: %v", restored)
	}
}

// TestE2EDeadControlLink: a reflector whose Bluetooth link is gone
// cannot be aligned; the sweep must fail cleanly.
func TestE2EDeadControlLink(t *testing.T) {
	world := movr.NewWorld(0)
	dev := movr.DefaultReflector(movr.V(2.5, 5), 270)
	link := movr.NewControlLink(movr.NewController(dev), 0, 1.0, 1) // 100% loss
	sweeper, err := movr.NewSweeper(world.AP, dev, link, world.Tracer, movr.DefaultAlignConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweeper.Hierarchical(); err == nil {
		t.Error("alignment over a dead control link should fail")
	}
}

// TestE2EWalkOutOfCoverage: the player walks behind every device; the
// manager reports the truth (requirement unmet) instead of a stale
// happy state.
func TestE2EWalkOutOfCoverage(t *testing.T) {
	world := movr.NewWorld(1)
	hs := world.NewHeadsetAt(movr.V(2.5, 2.5), 225)
	dev := movr.DefaultReflector(movr.V(4.6, 4.6), 225)
	link := movr.NewControlLink(movr.NewController(dev), 0, 0, 1)
	mgr := movr.NewLinkManager(world.Tracer, world.AP, hs)
	idx := mgr.AddReflector(dev, link)
	if err := mgr.AlignFromGeometry(idx); err != nil {
		t.Fatal(err)
	}
	if st := mgr.Best(); !st.MeetsRequirement {
		t.Fatalf("setup should be covered: %v", st)
	}
	// Face a bare wall corner with both AP and reflector behind the
	// array's field of view, with the body shadowing behind.
	st := mgr.Step(movr.V(0.6, 4.4), 135)
	world.Room.AddObstacle(movr.Body(movr.V(1.0, 4.0)))
	st = mgr.Step(movr.V(0.6, 4.4), 135)
	if st.MeetsRequirement {
		t.Errorf("out-of-coverage pose reported as covered: %v", st)
	}
}

// TestE2EDataPlaneAgreesWithBudget closes the loop between the analytic
// link budget and the OFDM data plane: the SNR the headset's modem
// measures over synthesized symbols must match the link budget's
// prediction for the selected path.
func TestE2EDataPlaneAgreesWithBudget(t *testing.T) {
	world := movr.NewWorld(1)
	hs := world.NewHeadsetAt(movr.V(3.0, 2.5), 0)
	budgetSNR := world.AlignedLOSSNR(hs)
	measured, err := movr.MeasureOFDMSNR(budgetSNR, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-budgetSNR) > 1.0 {
		t.Errorf("data plane measured %v dB for budget %v dB", measured, budgetSNR)
	}
}
