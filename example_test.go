package movr_test

import (
	"fmt"

	movr "github.com/movr-sim/movr"
)

// The 802.11ad rate table converts measured SNR into data rate, exactly
// as the paper's Fig 3 does.
func ExampleGbpsAtSNR() {
	fmt.Printf("at 25 dB: %.2f Gb/s\n", movr.GbpsAtSNR(25))
	fmt.Printf("at  9 dB: %.2f Gb/s\n", movr.GbpsAtSNR(9))
	fmt.Printf("at -6 dB: %.2f Gb/s\n", movr.GbpsAtSNR(-6))
	// Output:
	// at 25 dB: 6.76 Gb/s
	// at  9 dB: 2.77 Gb/s
	// at -6 dB: 0.03 Gb/s
}

// The testbed headset demands multiple Gbps within a 10 ms deadline.
func ExampleHTCVive() {
	d := movr.HTCVive()
	req := movr.HTCViveRequirement()
	fmt.Println(d)
	fmt.Printf("required SNR: %.0f dB\n", req.RequiredSNRdB())
	// Output:
	// 2160x1200@90Hz (5.6 Gbps raw)
	// required SNR: 13 dB
}

// Cutting the USB power cable too: the §6 battery substitution.
func ExampleRunBattery() {
	r := movr.RunBattery(movr.DefaultBatteryConfig())
	fmt.Printf("typical runtime: %.1f h (paper claims %.0f-%.0f h)\n",
		r.TypicalHours, r.PaperClaimLoHrs, r.PaperClaimHiHrs)
	// Output:
	// typical runtime: 4.5 h (paper claims 4-5 h)
}

// A clear line-of-sight link in the office delivers the paper's Fig 3
// LOS regime.
func ExampleWorld() {
	world := movr.NewWorld(1)
	headset := world.NewHeadsetAt(movr.V(3, 3), 0)
	snr := world.AlignedLOSSNR(headset)
	fmt.Printf("LOS sustains VR: %v\n", movr.HTCViveRequirement().MetBySNR(snr))
	// Output:
	// LOS sustains VR: true
}
