#!/usr/bin/env sh
# Load-and-durability smoke for movrd: replay a short movrload burst
# against a live daemon (asserting p95 submit-to-done latency), overrun
# its queue to draw real 429 backpressure, then kill the daemon
# uncleanly and assert the restarted process serves the persisted
# result from its durable store without re-executing. The CI load-smoke
# job and `make load-smoke` both run this.
set -eu

workdir="$(mktemp -d)"
log="$workdir/movrd.log"
cachedir="$workdir/cache"
cleanup() {
    if [ -n "${pid:-}" ]; then
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "movrd-load-smoke: building"
go build -o "$workdir/movrd" ./cmd/movrd
go build -o "$workdir/movrload" ./cmd/movrload

start_daemon() {
    : >"$log"
    "$workdir/movrd" -addr 127.0.0.1:0 -workers 2 -max-jobs 2 -queue 4 \
        -cache-dir "$cachedir" >"$log" 2>&1 &
    pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr="$(sed -n 's/.*movrd: listening on \([0-9.:]*\)$/\1/p' "$log" | head -n 1)"
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "movrd-load-smoke: daemon died:"; cat "$log"; exit 1; }
        i=$((i + 1))
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "movrd-load-smoke: never saw the listen line:"; cat "$log"; exit 1; }
    i=0
    while [ $i -lt 50 ]; do
        code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz" || true)"
        [ "$code" = 200 ] && return 0
        i=$((i + 1))
        sleep 0.1
    done
    echo "movrd-load-smoke: /healthz never answered"
    cat "$log"
    exit 1
}

fail() {
    echo "movrd-load-smoke: FAIL: $1"
    echo "--- daemon log ---"
    cat "$log"
    exit 1
}

start_daemon
echo "movrd-load-smoke: daemon at $addr (cache dir $cachedir)"

# Burst 1: a short mixed-profile replay must land every job and keep
# p95 submit-to-done under a generous CI-safe ceiling.
"$workdir/movrload" -addr "http://$addr" -jobs 12 -concurrency 4 \
    -duration-ms 100 -p95-max 60s || fail "latency burst failed"
echo "movrd-load-smoke: latency burst ok"

# Burst 2: overrun the 2-executing/4-queued daemon and require that it
# sheds load with real 429s (the harness retries them away and still
# finishes every job).
"$workdir/movrload" -addr "http://$addr" -jobs 24 -concurrency 12 \
    -seed 500 -duration-ms 300 -assert-backpressure || fail "backpressure burst failed"
echo "movrd-load-smoke: backpressure burst drew 429s and recovered"

# Durability: submit a marker spec, kill the daemon without any
# shutdown grace, restart on the same cache dir, and resubmit — the
# answer must be a cache hit served from the on-disk store, with the
# same result hash, and the store-hit counter must show it.
spec='{"kind":"fleet","fleet":{"scenario":"coex","sessions":2,"seed":4242,"duration_ms":300}}'
code="$(curl -s -o "$workdir/r1" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$spec" \
    "http://$addr/v1/jobs?wait=1")"
[ "$code" = 200 ] || fail "marker submit returned $code"
sha1="$(sed -n 's/.*"result_sha256": "\([0-9a-f]*\)".*/\1/p' "$workdir/r1" | head -n 1)"
[ -n "$sha1" ] || fail "no result_sha256 in marker response"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "movrd-load-smoke: daemon killed (SIGKILL)"

start_daemon
echo "movrd-load-smoke: daemon restarted at $addr"

code="$(curl -s -D "$workdir/h2" -o "$workdir/r2" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$spec" \
    "http://$addr/v1/jobs?wait=1")"
[ "$code" = 200 ] || fail "post-restart resubmit returned $code"
grep -qi '^x-movr-cache: hit' "$workdir/h2" || fail "post-restart resubmit was not a cache hit"
sha2="$(sed -n 's/.*"result_sha256": "\([0-9a-f]*\)".*/\1/p' "$workdir/r2" | head -n 1)"
[ "$sha1" = "$sha2" ] || fail "result hash changed across restart: $sha1 vs $sha2"
curl -s "http://$addr/metrics" >"$workdir/metrics"
grep -q '^movrd_store_hits_total 1$' "$workdir/metrics" || fail "/metrics does not report the durable-store hit"
grep -q '^movrd_jobs_done_total 1$' "$workdir/metrics" || fail "restarted daemon re-executed instead of serving the store"
echo "movrd-load-smoke: restart served the persisted result (sha $sha1)"

echo "movrd-load-smoke: PASS"
