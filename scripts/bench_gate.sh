#!/usr/bin/env sh
# Performance regression gate: run the movrsim bench suite fresh and
# compare it against the committed baseline, failing on regressions.
# The comparison prints a per-entry delta table — every benchmark's
# baseline ns/op, current ns/op, and relative change, improvements
# included — before notes, violations, and the verdict, so a gate run
# doubles as the revision's perf summary.
#
#   scripts/bench_gate.sh [baseline.json]
#
# Environment:
#   BENCH_BASELINE   baseline report (default BENCH_baseline.json)
#   BENCH_TOL_PCT    allowed ns/op regression in percent (default 50)
#   BENCH_ALLOC_TOL  allowed allocs/op regression (default 0)
#   BENCH_OUT_DIR    where the fresh BENCH_<sha>.json lands (default .)
#   BENCH_FAST       non-empty trims repetitions (CI smoke)
#
# The suite is defined by internal/bench.Suite and covers one fleet run
# per scenario kind — the coex airtime-policy family (fleet/coex,
# fleet/coexpf, fleet/coexedf) included — so a policy that regresses the
# scheduler hot path or starts allocating per window fails here. The
# comparison also rejects a shrunken suite: a baseline entry missing
# from the fresh report is an error, so new suite entries must land
# together with a regenerated baseline (make bench-baseline).
#
# The fresh report is kept for upload as a CI artifact — the repo's perf
# trajectory, one BENCH_<sha>.json per revision. To re-baseline after an
# intentional perf change: copy the fresh report over BENCH_baseline.json
# and commit it alongside the change that justified it.
#
# Wall-time bounds are enforced only when the fresh run's host shape
# (cpus/goarch, recorded in every report) matches the baseline's;
# otherwise ns/op excesses are reported as advisory notes. The
# allocs/op gate is machine-independent and enforced everywhere. To arm
# the time gate in CI, commit a baseline generated on gate-class
# hardware.
set -eu

baseline="${1:-${BENCH_BASELINE:-BENCH_baseline.json}}"
tol_pct="${BENCH_TOL_PCT:-50}"
alloc_tol="${BENCH_ALLOC_TOL:-0}"
out_dir="${BENCH_OUT_DIR:-.}"

[ -f "$baseline" ] || {
    echo "bench-gate: baseline $baseline not found" >&2
    echo "bench-gate: generate one with: go run ./cmd/movrsim -bench-out $baseline bench" >&2
    exit 1
}

sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
out="$out_dir/BENCH_$sha.json"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "bench-gate: building movrsim"
go build -o "$workdir/movrsim" ./cmd/movrsim

fast=""
[ -n "${BENCH_FAST:-}" ] && fast="-fast"

echo "bench-gate: running suite (tolerance ${tol_pct}% time, ${alloc_tol} allocs)"
MOVR_GIT_SHA="$sha" "$workdir/movrsim" $fast \
    -bench-out "$out" \
    -bench-compare "$baseline" \
    -bench-tol-pct "$tol_pct" \
    -bench-alloc-tol "$alloc_tol" \
    bench

echo "bench-gate: fresh report at $out"
