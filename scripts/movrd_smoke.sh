#!/usr/bin/env sh
# Smoke-test the movrd daemon end to end: build it, start it on an
# ephemeral port, poll /healthz, submit a tiny fleet job, resubmit the
# same spec, and assert the second answer is a cache hit with the same
# result hash. `make serve` and the CI movrd-smoke step both run this.
set -eu

workdir="$(mktemp -d)"
log="$workdir/movrd.log"
# The trap fires on any exit path — including a failed assertion under
# `set -e` — so the daemon can never leak into the CI runner. The wait
# reaps the process before the workdir (and its binary) is removed.
cleanup() {
    if [ -n "${pid:-}" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "movrd-smoke: building"
go build -o "$workdir/movrd" ./cmd/movrd

"$workdir/movrd" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -workers 2 >"$log" 2>&1 &
pid=$!

# The daemon logs "listening on <addr>" with the resolved port (and the
# debug listener logs its own "debug listening on <addr>" line).
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/.*movrd: listening on \([0-9.:]*\)$/\1/p' "$log" | head -n 1)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "movrd-smoke: daemon died:"; cat "$log"; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
[ -n "$addr" ] || { echo "movrd-smoke: never saw the listen line:"; cat "$log"; exit 1; }
echo "movrd-smoke: daemon at $addr"

fail() {
    echo "movrd-smoke: FAIL: $1"
    echo "--- daemon log ---"
    cat "$log"
    exit 1
}

# Poll /healthz with a bounded retry loop — the listen line appears
# before the HTTP server necessarily accepts, and a fixed sleep is either
# wasteful or racy depending on the machine.
healthy=""
i=0
while [ $i -lt 50 ]; do
    code="$(curl -s -o "$workdir/health" -w '%{http_code}' "http://$addr/healthz" || true)"
    [ "$code" = 200 ] && { healthy=1; break; }
    kill -0 "$pid" 2>/dev/null || { echo "movrd-smoke: daemon died:"; cat "$log"; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
[ -n "$healthy" ] || fail "/healthz never returned 200 (last code: ${code:-none})"
echo "movrd-smoke: /healthz ok"

spec='{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"seed":42,"duration_ms":300}}'

code="$(curl -s -D "$workdir/h1" -o "$workdir/r1" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$spec" \
    "http://$addr/v1/jobs?wait=1")"
[ "$code" = 200 ] || fail "first submit returned $code: $(cat "$workdir/r1")"
grep -qi '^x-movr-cache: miss' "$workdir/h1" || fail "first submit was not a cache miss"
echo "movrd-smoke: first submit ok (miss)"

code="$(curl -s -D "$workdir/h2" -o "$workdir/r2" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$spec" \
    "http://$addr/v1/jobs?wait=1")"
[ "$code" = 200 ] || fail "resubmit returned $code"
grep -qi '^x-movr-cache: hit' "$workdir/h2" || fail "resubmit was not a cache hit"

sha1="$(sed -n 's/.*"result_sha256": "\([0-9a-f]*\)".*/\1/p' "$workdir/r1" | head -n 1)"
sha2="$(sed -n 's/.*"result_sha256": "\([0-9a-f]*\)".*/\1/p' "$workdir/r2" | head -n 1)"
[ -n "$sha1" ] || fail "no result_sha256 in first response"
[ "$sha1" = "$sha2" ] || fail "result hashes differ: $sha1 vs $sha2"
echo "movrd-smoke: resubmit ok (hit, result sha $sha1)"

curl -s "http://$addr/metrics" >"$workdir/metrics"
grep -q '^movrd_cache_hits_total 1$' "$workdir/metrics" || fail "/metrics does not report the cache hit"
grep -q '^movrd_jobs_done_total 2$' "$workdir/metrics" || fail "/metrics does not report both jobs done"
grep -q '^movrd_job_queue_wait_seconds_count 1$' "$workdir/metrics" || fail "/metrics does not report the queue-wait sample"
grep -q 'movrd_jobs_by_scenario_total{scenario="home"} 2' "$workdir/metrics" || fail "/metrics does not report the per-scenario counter"
echo "movrd-smoke: /metrics reports the cache hit"

# Traced job: bypasses the cache and serves a Perfetto-loadable trace.
tspec='{"kind":"fleet","fleet":{"scenario":"coex","sessions":2,"seed":7,"duration_ms":300,"trace":true}}'
code="$(curl -s -o "$workdir/r3" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$tspec" \
    "http://$addr/v1/jobs?wait=1")"
[ "$code" = 200 ] || fail "traced submit returned $code: $(cat "$workdir/r3")"
jobid="$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$workdir/r3" | head -n 1)"
[ -n "$jobid" ] || fail "no job id in traced response"
code="$(curl -s -o "$workdir/trace.json" -w '%{http_code}' "http://$addr/v1/jobs/$jobid/trace")"
[ "$code" = 200 ] || fail "trace endpoint returned $code"
grep -q '"traceEvents"' "$workdir/trace.json" || fail "trace body is not Chrome trace-event JSON"
echo "movrd-smoke: trace endpoint serves Chrome trace JSON"

# Error envelope: every non-2xx answer is {"error":{code,message,detail}}
# with a stable machine-readable code.
code="$(curl -s -o "$workdir/e400" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d '{"kind":"nonsense"}' \
    "http://$addr/v1/jobs")"
[ "$code" = 400 ] || fail "bad spec returned $code, want 400"
grep -q '"code": "invalid_spec"' "$workdir/e400" || fail "400 body lacks the invalid_spec envelope: $(cat "$workdir/e400")"
code="$(curl -s -o "$workdir/e404" -w '%{http_code}' "http://$addr/v1/jobs/job-99999")"
[ "$code" = 404 ] || fail "unknown job returned $code, want 404"
grep -q '"code": "not_found"' "$workdir/e404" || fail "404 body lacks the not_found envelope: $(cat "$workdir/e404")"
code="$(curl -s -o "$workdir/e400c" -w '%{http_code}' "http://$addr/v1/jobs?cursor=garbage")"
[ "$code" = 400 ] || fail "garbage cursor returned $code, want 400"
grep -q '"code": "invalid_argument"' "$workdir/e400c" || fail "cursor 400 lacks the invalid_argument envelope"
echo "movrd-smoke: error envelope carries stable codes on 400/404"

# Listing: filters and pagination. Three jobs exist (2 home, 1 coex).
curl -s "http://$addr/v1/jobs?scenario=home" >"$workdir/list_home"
n="$(grep -c '"id": "job-' "$workdir/list_home" || true)"
[ "$n" = 2 ] || fail "scenario=home listed $n jobs, want 2"
curl -s "http://$addr/v1/jobs?state=done&limit=2" >"$workdir/list_p1"
grep -q '"next_cursor"' "$workdir/list_p1" || fail "first page of 3 done jobs lacks next_cursor"
cursor="$(sed -n 's/.*"next_cursor": "\([A-Za-z0-9_-]*\)".*/\1/p' "$workdir/list_p1" | head -n 1)"
curl -s "http://$addr/v1/jobs?state=done&limit=2&cursor=$cursor" >"$workdir/list_p2"
n="$(grep -c '"id": "job-' "$workdir/list_p2" || true)"
[ "$n" = 1 ] || fail "second page listed $n jobs, want 1"
grep -q '"next_cursor"' "$workdir/list_p2" && fail "final page still carries next_cursor"
echo "movrd-smoke: listing filters and cursor pagination ok"

# Admission control: an over-capacity venue submit (EDF schedules 4 of
# 6 players per bay) in reject mode is refused before execution with
# the typed admission_denied envelope; the queue default admits the
# same venue. Both paths count players in /metrics: 2 overflow × 2
# bays = 4 rejected, then 4 queued.
aspec='{"kind":"fleet","fleet":{"scenario":"venue","bays":2,"headsets_per_room":6,"coex_policy":"edf","duration_ms":300,"admission":"reject"}}'
code="$(curl -s -o "$workdir/e409" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$aspec" \
    "http://$addr/v1/jobs")"
[ "$code" = 409 ] || fail "over-capacity venue submit returned $code, want 409: $(cat "$workdir/e409")"
grep -q '"code": "admission_denied"' "$workdir/e409" || fail "409 body lacks the admission_denied envelope: $(cat "$workdir/e409")"
qspec='{"kind":"fleet","fleet":{"scenario":"venue","bays":2,"headsets_per_room":6,"coex_policy":"edf","duration_ms":300}}'
code="$(curl -s -o "$workdir/r4" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$qspec" \
    "http://$addr/v1/jobs?wait=1")"
[ "$code" = 200 ] || fail "queued venue submit returned $code: $(cat "$workdir/r4")"
curl -s "http://$addr/metrics" >"$workdir/metrics2"
grep -q '^movrd_admission_rejected_total 4$' "$workdir/metrics2" || fail "/metrics does not count the rejected players"
grep -q '^movrd_admission_queued_total 4$' "$workdir/metrics2" || fail "/metrics does not count the queued players"
echo "movrd-smoke: venue admission rejects over capacity and queues by default"

# Debug listener: pprof and expvar live on their own socket, never the
# job API address.
daddr="$(sed -n 's/.*movrd: debug listening on \([0-9.:]*\)$/\1/p' "$log" | head -n 1)"
[ -n "$daddr" ] || fail "never saw the debug listen line"
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$daddr/debug/pprof/cmdline")"
[ "$code" = 200 ] || fail "/debug/pprof/cmdline returned $code"
code="$(curl -s -o "$workdir/vars" -w '%{http_code}' "http://$daddr/debug/vars")"
[ "$code" = 200 ] || fail "/debug/vars returned $code"
grep -q '"cmdline"' "$workdir/vars" || fail "/debug/vars is not expvar JSON"
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/cmdline")"
[ "$code" = 200 ] && fail "pprof reachable on the job API address"
echo "movrd-smoke: debug listener serves pprof and expvar"

echo "movrd-smoke: PASS"
