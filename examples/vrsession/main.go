// VR session: stream an untethered VR play session over the simulated
// mmWave link and compare three systems — no MoVR, MoVR with static
// beams, and MoVR with pose-driven beam tracking (the paper's §6
// proposal).
//
// The player walks, looks around, and raises a hand (all seeded and
// reproducible); every 2160×1200@90 Hz frame must cross the link within
// its 11 ms display interval or it is a visible glitch.
package main

import (
	"fmt"
	"time"

	movr "github.com/movr-sim/movr"
)

func main() {
	cfg := movr.DefaultSessionConfig()
	cfg.Duration = 20 * time.Second
	cfg.Seed = 42

	fmt.Println("MoVR end-to-end VR session (20 s, seeded motion)")
	fmt.Printf("display: %v, required link rate %.1f Gbps\n\n",
		movr.HTCVive(), movr.HTCVive().RawRateBps()/1e9)

	result := movr.RunSession(cfg)
	fmt.Print(result.Render())

	fmt.Println("\nInterpretation: without MoVR, every hand raise and head turn that")
	fmt.Println("breaks the line of sight stalls the stream; a static reflector only")
	fmt.Println("helps near its aligned pose; pose-driven tracking keeps the stream")
	fmt.Println("glitch-free — the untethered experience the paper argues for.")
}
