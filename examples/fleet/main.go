// Fleet: simulate dozens of independent VR sessions — arcade bays,
// homes, cluttered rooms — across a worker pool and read the fleet-level
// percentiles. The same seeds give byte-identical statistics whatever
// the worker count.
package main

import (
	"context"
	"fmt"
	"time"

	movr "github.com/movr-sim/movr"
)

func main() {
	scenario := movr.FleetScenarioConfig{
		Duration:     5 * time.Second,
		ReEvalPeriod: 100 * time.Millisecond,
		Seed:         1,
	}

	// 12 sessions: 4 arcade players sharing a bay, 4 homes, 4 cluttered
	// offices.
	specs := movr.MixedFleet(12, scenario)

	res, err := movr.RunFleet(context.Background(), specs, movr.FleetConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Render("Mixed fleet"))

	fmt.Println("\nWorst sessions:")
	for _, o := range res.Sessions {
		if o.Report.GlitchFrac > res.Agg.GlitchFrac.P95 {
			fmt.Printf("  %-14s glitch %.1f%%, %d handoffs, worst outage %v\n",
				o.ID, 100*o.Report.GlitchFrac, o.Handoffs,
				o.Report.LongestOutage.Truncate(time.Millisecond))
		}
	}
}
