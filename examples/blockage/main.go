// Blockage: a single-link walkthrough of the paper's §3 measurement — how
// much SNR and data rate survive as different obstacles cross the
// line of sight, and what the best wall reflection can offer instead.
package main

import (
	"fmt"

	movr "github.com/movr-sim/movr"
)

func main() {
	world := movr.NewWorld(1)
	headset := world.NewHeadsetAt(movr.V(3.8, 3.1), 0)

	fmt.Println("Blockage walkthrough (paper §3)")
	fmt.Printf("AP at (0.4, 0.4), headset at (3.8, 3.1), 24 GHz, 802.11ad rates\n\n")

	req := movr.HTCViveRequirement()
	show := func(name string, snr float64) {
		rate := movr.GbpsAtSNR(snr)
		status := "OK for VR"
		if !req.MetBySNR(snr) {
			status = "FAILS VR"
		}
		fmt.Printf("  %-28s %6.1f dB   %5.2f Gb/s   %s\n", name, snr, rate, status)
	}

	// Clear line of sight.
	show("line of sight", world.AlignedLOSSNR(headset))

	// The paper's three blockage scenarios, beams still on the LOS.
	mid := world.AP.Pos.Lerp(headset.Pos, 0.5)
	toAP := world.AP.Pos.Sub(headset.Pos).AngleDeg()
	scenarios := []struct {
		name string
		obs  movr.Obstacle
	}{
		{"blocked by hand", movr.Hand(headset.Pos.Add(movr.V(0.35, 0).Rotate(toAP)))},
		{"blocked by head", movr.Head(headset.Pos.Add(movr.V(0.18, 0).Rotate(toAP)))},
		{"blocked by another person", movr.Body(mid)},
	}
	for _, sc := range scenarios {
		world.Room.ClearObstacles()
		world.Room.AddObstacle(sc.obs)
		world.FaceEachOther(headset)
		show(sc.name, movr.LinkSNR(world.Tracer, &world.AP.Radio, &headset.Radio))
	}

	// Best non-line-of-sight: hand still up, sweep everything.
	world.Room.ClearObstacles()
	world.Room.AddObstacle(scenarios[0].obs)
	res := movr.OptNLOS(world.Tracer, &world.AP.Radio, &headset.Radio, 2)
	show("best wall reflection (NLOS)", res.SNRdB)
	fmt.Printf("\n  NLOS winner: TX beam %.0f°, RX beam %.0f° after %d combinations\n",
		res.TXBeamDeg, res.RXBeamDeg, res.Combos)
	fmt.Println("\n  Conclusion (§3): neither blocked LOS nor wall reflections sustain")
	fmt.Println("  VR — which is why MoVR adds an amplifying programmable mirror.")
}
