// Multireflector: coverage of the 5×5 office with zero, one, and two
// MoVR reflectors, against the brute-force multi-AP alternative the
// paper dismisses for its cabling cost (§1).
//
// For a grid of headset poses (always facing away from the AP — the
// adversarial orientation), we ask: does some path sustain the VR rate?
package main

import (
	"fmt"

	movr "github.com/movr-sim/movr"
)

func main() {
	req := movr.HTCViveRequirement()
	fmt.Println("Coverage under adversarial head orientation (facing away from AP)")
	fmt.Printf("requirement: %.1f Gbps\n\n", req.RateBps/1e9)

	type deployment struct {
		name   string
		mounts [][3]float64 // x, y, mountDeg
	}
	deployments := []deployment{
		{"no reflectors", nil},
		{"one reflector (far corner)", [][3]float64{{4.6, 4.6, 225}}},
		{"two reflectors (far + east wall)", [][3]float64{{4.6, 4.6, 225}, {5, 2.5, 180}}},
	}

	for _, dep := range deployments {
		covered, total := coverage(dep.mounts)
		fmt.Printf("%-34s %3d/%3d poses covered (%.0f%%)\n",
			dep.name, covered, total, 100*float64(covered)/float64(total))
	}

	// The multi-AP alternative: full APs in two corners — works, but
	// each needs an HDMI run back to the PC.
	world := movr.NewWorld(1)
	deploy := movr.MultiAP{APs: []*movr.AP{
		world.AP,
		movr.NewAP(movr.V(4.7, 4.7), movr.DefaultArray(225), movr.DefaultBudget()),
	}}
	fmt.Printf("\nmulti-AP alternative needs %.1f m of HDMI cabling (PC at the corner)\n",
		deploy.CablingM(movr.V(0.3, 0.3)))
	fmt.Println("— the \"enormous cabling complexity\" §1 rejects; MoVR reflectors need only power.")
}

// coverage counts grid poses where some path meets the VR requirement.
func coverage(mounts [][3]float64) (covered, total int) {
	req := movr.HTCViveRequirement()
	for x := 1.0; x <= 4.0; x += 0.75 {
		for y := 1.0; y <= 4.0; y += 0.75 {
			world := movr.NewWorld(1)
			pos := movr.V(x, y)
			// Face directly away from the AP.
			away := pos.Sub(world.AP.Pos).AngleDeg()
			headset := world.NewHeadsetAt(pos, away)
			mgr := movr.NewLinkManager(world.Tracer, world.AP, headset)
			for _, m := range mounts {
				dev := movr.DefaultReflector(movr.V(m[0], m[1]), m[2])
				link := movr.NewControlLink(movr.NewController(dev), 0, 0, 1)
				idx := mgr.AddReflector(dev, link)
				if err := mgr.AlignFromGeometry(idx); err != nil {
					panic(err)
				}
			}
			total++
			if st := mgr.Best(); req.MetByRate(st.RateBps) {
				covered++
			}
		}
	}
	return covered, total
}
