// Serve: run the movrd job API in-process and drive it as a client —
// submit a fleet job, watch its per-session progress stream, resubmit
// the same spec to hit the deterministic result cache, and read the
// Prometheus metrics that prove it. This is the whole simulation-as-a-
// service loop in one runnable file; `cmd/movrd` serves the same
// handler as a standalone daemon.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/movr-sim/movr/internal/server"
)

const spec = `{"kind":"fleet","fleet":{"scenario":"mixed","sessions":6,"seed":1,"duration_ms":1000}}`

func main() {
	srv := server.New(server.Options{Workers: 0}) // all cores
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("serving the simulator at %s\n\n", ts.URL)

	// Submit and block until done (?wait=1).
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		panic(err)
	}
	var job struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		Cached    bool   `json:"cached"`
		ElapsedMS int64  `json:"elapsed_ms"`
		Result    struct {
			Render string `json:"render"`
		} `json:"result"`
	}
	decode(resp, &job)
	fmt.Printf("job %s: %s in %d ms (cache %s)\n\n%s\n", job.ID, job.State,
		job.ElapsedMS, resp.Header.Get("X-Movr-Cache"), job.Result.Render)

	// The progress stream replays per-session completion events.
	events, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		panic(err)
	}
	defer events.Body.Close()
	fmt.Println("event stream:")
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			fmt.Printf("  %s\n", line)
		}
	}

	// Same spec again: served from the deterministic cache, instantly.
	resp2, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		panic(err)
	}
	var job2 struct {
		Cached    bool   `json:"cached"`
		ResultSHA string `json:"result_sha256"`
	}
	decode(resp2, &job2)
	fmt.Printf("\nresubmit: cache %s, cached=%v, result sha %s...\n",
		resp2.Header.Get("X-Movr-Cache"), job2.Cached, job2.ResultSHA[:16])

	// And the metrics tell the story.
	met, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		panic(err)
	}
	defer met.Body.Close()
	fmt.Println("\nselected metrics:")
	msc := bufio.NewScanner(met.Body)
	for msc.Scan() {
		line := msc.Text()
		if strings.HasPrefix(line, "movrd_cache_") ||
			strings.HasPrefix(line, "movrd_jobs_done_total") ||
			strings.HasPrefix(line, "movrd_sessions_completed_total") ||
			strings.HasPrefix(line, "movrd_pool_capacity") {
			fmt.Printf("  %s\n", line)
		}
	}
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		panic(err)
	}
}
