// Serve: run the movrd job API in-process and drive it through the
// movrclient package — submit a fleet job, watch its per-session
// progress stream, resubmit the same spec to hit the deterministic
// result cache, and read the Prometheus metrics that prove it. This is
// the whole simulation-as-a-service loop in one runnable file, on the
// same client idiom the load harness uses; `cmd/movrd` serves the same
// handler as a standalone daemon.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"

	"github.com/movr-sim/movr/internal/movrclient"
	"github.com/movr-sim/movr/internal/server"
)

func main() {
	srv, err := server.New(server.Options{Workers: 0}) // all cores
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("serving the simulator at %s\n\n", ts.URL)

	ctx := context.Background()
	client := movrclient.New(ts.URL)
	spec := map[string]any{
		"kind": "fleet",
		"fleet": map[string]any{
			"scenario": "mixed", "sessions": 6, "seed": 1, "duration_ms": 1000,
		},
	}

	// Submit and block until done.
	job, err := client.SubmitWait(ctx, spec)
	if err != nil {
		panic(err)
	}
	var result struct {
		Render string `json:"render"`
	}
	if err := json.Unmarshal(job.Result, &result); err != nil {
		panic(err)
	}
	fmt.Printf("job %s: %s in %d ms (cache %s)\n\n%s\n", job.ID, job.State,
		job.ElapsedMS, job.CacheDisposition, result.Render)

	// The progress stream replays per-session completion events.
	fmt.Println("event stream:")
	err = client.StreamEvents(ctx, job.ID, func(ev movrclient.Event) error {
		line, _ := json.Marshal(ev)
		fmt.Printf("  %s\n", line)
		return nil
	})
	if err != nil {
		panic(err)
	}

	// Same spec again: served from the deterministic cache, instantly.
	job2, err := client.SubmitWait(ctx, spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nresubmit: cache %s, cached=%v, result sha %s...\n",
		job2.CacheDisposition, job2.Cached, job2.ResultSHA[:16])

	// And the metrics tell the story.
	metrics, err := client.Metrics(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nselected metrics:")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "movrd_cache_") ||
			strings.HasPrefix(line, "movrd_jobs_done_total") ||
			strings.HasPrefix(line, "movrd_sessions_completed_total") ||
			strings.HasPrefix(line, "movrd_pool_capacity") {
			fmt.Printf("  %s\n", line)
		}
	}
}
