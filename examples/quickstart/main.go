// Quickstart: build the paper's testbed, watch a hand blockage kill the
// direct mmWave link, and watch the MoVR reflector rescue it.
package main

import (
	"fmt"

	movr "github.com/movr-sim/movr"
)

func main() {
	// The 5 m × 5 m office with an AP in the south-west corner.
	world := movr.NewWorld(1)

	// A player mid-room, facing the far corner (head turned away from
	// the AP — Fig 2's first failure mode).
	headset := world.NewHeadsetAt(movr.V(3.4, 2.4), 60)

	// A MoVR reflector stuck high on the opposite-corner wall.
	device := movr.DefaultReflector(movr.V(4.6, 4.6), 225)
	link := movr.NewControlLink(movr.NewController(device), 0, 0, 1)

	mgr := movr.NewLinkManager(world.Tracer, world.AP, headset)
	idx := mgr.AddReflector(device, link)
	if err := mgr.AlignFromGeometry(idx); err != nil {
		panic(err)
	}

	fmt.Println("MoVR quickstart — cutting the cord in the 5x5 office")
	fmt.Println()

	state := mgr.Best()
	fmt.Printf("clear room:            %v\n", state)

	// The player raises a hand in front of the headset, toward the AP.
	hand := movr.Hand(movr.V(2.0, 1.5))
	world.Room.AddObstacle(hand)
	state = mgr.Best()
	fmt.Printf("hand blocks direct:    %v\n", state)

	// Another person walks between the player and the AP.
	world.Room.AddObstacle(movr.Body(movr.V(1.5, 1.2)))
	state = mgr.Best()
	fmt.Printf("plus a passer-by:      %v\n", state)

	world.Room.ClearObstacles()
	state = mgr.Best()
	fmt.Printf("obstacles cleared:     %v\n", state)

	req := movr.HTCViveRequirement()
	fmt.Printf("\nVR needs %.1f Gbps (SNR ≥ %.0f dB); the link manager kept it %v\n",
		req.RateBps/1e9, req.RequiredSNRdB(), state.MeetsRequirement)
}
