// Alignment: run the §4.1 backscatter beam-alignment protocol verbosely.
//
// The MoVR reflector can neither transmit nor receive, yet the AP must
// discover the best (θ1, θ2) beam pair. The AP transmits a tone at f1;
// the reflector on/off-modulates its amplifier at f2; the AP separates
// the reflected energy (at f1±f2) from its own TX→RX leakage (at f1)
// with an FFT and picks the pair with the strongest sideband.
package main

import (
	"fmt"

	movr "github.com/movr-sim/movr"
)

func main() {
	world := movr.NewWorld(0)
	device := movr.DefaultReflector(movr.V(2.2, 5), 270) // north wall
	link := movr.NewControlLink(movr.NewController(device), 0, 0, 7)

	cfg := movr.DefaultAlignConfig()
	sweeper, err := movr.NewSweeper(world.AP, device, link, world.Tracer, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("MoVR backscatter alignment (§4.1)")
	fmt.Printf("  modulation f2:      %.0f kHz\n", cfg.ModFreqHz/1e3)
	fmt.Printf("  AP leakage:         %.1f dBm at f1\n", world.AP.LeakagePowerDBm())
	fmt.Printf("  measurement floor:  %.1f dBm\n\n", world.AP.MeasNoiseFloorDBm())

	// A few raw protocol measurements across candidate reflector beams.
	fmt.Println("sideband power while sweeping the reflector beam (AP aimed correctly):")
	apBeam := 45.0 // AP corner faces the room diagonal; reflector is north
	for rel := -40.0; rel <= 40; rel += 10 {
		beam := 270 + rel
		p, err := sweeper.MeasureSidebandPower(apBeam+20, beam)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  θ1 = %5.1f°  →  %7.1f dBm\n", beam, p)
	}

	// The full hierarchical sweep.
	res, err := sweeper.Hierarchical()
	if err != nil {
		panic(err)
	}
	truth := world.AP.Pos.Sub(device.Pos())
	fmt.Printf("\nhierarchical sweep: %d measurements, %v total\n",
		res.Measurements, res.TotalTime().Truncate(1e6))
	fmt.Printf("  estimated incidence angle: %.1f°\n", res.ReflBeamDeg)
	fmt.Printf("  geometric ground truth:    %.1f°\n", truth.AngleDeg()+360)
	fmt.Printf("  peak sideband power:       %.1f dBm\n", res.PeakPowerDBm)

	// And the exhaustive reference sweep the paper describes.
	ex, err := sweeper.Exhaustive()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexhaustive sweep: %d measurements, %v total (the slow path §6 warns about)\n",
		ex.Measurements, ex.TotalTime().Truncate(1e6))
	fmt.Printf("  estimated incidence angle: %.1f°\n", ex.ReflBeamDeg)
}
