// Command movrtrace generates, inspects, and converts the seeded VR
// motion traces the simulator replays (walking, head rotation, hand
// raises in the 5 m × 5 m office), and summarizes the structured event
// traces the simulator records (movrsim -trace).
//
// Usage:
//
//	movrtrace -seed 7 -duration 30s -out trace.json   # generate motion
//	movrtrace -in trace.json                          # summarize motion
//	movrtrace -analyze events.json                    # summarize an event trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/vr"
)

func main() {
	seed := flag.Int64("seed", 1, "trace seed")
	duration := flag.Duration("duration", 30*time.Second, "trace duration")
	out := flag.String("out", "", "write generated trace JSON to this file ('-' for stdout)")
	in := flag.String("in", "", "summarize an existing trace JSON file instead of generating")
	analyze := flag.String("analyze", "", "summarize a simulator event trace (movrsim -trace output, Chrome JSON or JSONL)")
	flag.Parse()

	if *analyze != "" {
		analyzeFile(*analyze)
		return
	}

	if *in != "" {
		summarizeFile(*in)
		return
	}

	cfg := vr.DefaultTraceConfig(5, 5, *seed)
	cfg.Duration = *duration
	trace, err := vr.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	printSummary(trace)
	if *out == "" {
		return
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Save(w); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d samples to %s\n", len(trace), *out)
	}
}

// analyzeFile summarizes a structured event trace: blockage episodes,
// handoff counts, worst deadline-miss bursts, and per-player airtime
// received vs entitled.
func analyzeFile(path string) {
	tr, err := obs.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(obs.Analyze(tr).Render())
}

func summarizeFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	trace, err := vr.Load(f)
	if err != nil {
		fatal(err)
	}
	printSummary(trace)
}

func printSummary(trace vr.Trace) {
	s := vr.Summarize(trace)
	fmt.Printf("samples:        %d (%v)\n", s.Samples, trace.Duration())
	fmt.Printf("distance:       %.1f m (%.2f m/s mean)\n", s.DistanceM, s.MeanSpeedMps)
	fmt.Printf("hand raised:    %.0f%% of the time\n", 100*s.HandUpFrac)
	fmt.Printf("yaw range:      %.0f°\n", s.YawRangeDeg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "movrtrace:", err)
	os.Exit(1)
}
