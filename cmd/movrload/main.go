// Command movrload replays a burst of fleet-job submissions against a
// live movrd and reports submit-to-done latency percentiles — the load
// harness for the daemon's queueing, coalescing, and backpressure
// behaviour. It drives movrd exclusively through the movrclient
// package, so the harness doubles as an end-to-end exercise of the v1
// client idiom.
//
// Usage:
//
//	movrload [flags]
//
// Flags:
//
//	-addr URL        movrd base URL (default http://127.0.0.1:8477)
//	-jobs N          total jobs in the burst (default 32)
//	-concurrency C   parallel submitters (default 8)
//	-scenarios CSV   scenario kinds cycled across jobs (default home,mixed,coex)
//	-sessions N      sessions per job (default 2)
//	-duration-ms N   simulated session length (default 200)
//	-seed N          base seed; job i submits seed N+i (default 1)
//	-agg MODE        aggregation mode: "", exact, or stream
//	-p95-max D       fail (exit 1) if p95 submit-to-done exceeds D, e.g. 30s
//	-assert-backpressure  fail unless the burst drew ≥1 429 queue_full
//
// The process exits 0 on success, 1 on a failed assertion, and 2 on
// usage or transport errors. Every 429 the server answers is retried
// by the client (honoring Retry-After) and counted; with
// -assert-backpressure the burst is expected to overrun the queue at
// least once, proving the daemon sheds load instead of buffering
// without bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movr-sim/movr/internal/movrclient"
)

// countingTransport tallies 429 responses so the report can show how
// much backpressure the burst drew (the client retries them away).
type countingTransport struct {
	base        http.RoundTripper
	backpressed atomic.Int64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		t.backpressed.Add(1)
	}
	return resp, err
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8477", "movrd base URL")
	jobs := flag.Int("jobs", 32, "total jobs in the burst")
	concurrency := flag.Int("concurrency", 8, "parallel submitters")
	scenarios := flag.String("scenarios", "home,mixed,coex", "scenario kinds cycled across jobs")
	sessions := flag.Int("sessions", 2, "sessions per job")
	durationMS := flag.Int("duration-ms", 200, "simulated session length per job")
	seed := flag.Int("seed", 1, "base seed; job i submits seed+i")
	agg := flag.String("agg", "", `aggregation mode: "", exact, or stream`)
	p95Max := flag.Duration("p95-max", 0, "fail if p95 submit-to-done exceeds this (0 = report only)")
	assertBP := flag.Bool("assert-backpressure", false, "fail unless the burst drew at least one 429")
	flag.Parse()
	if flag.NArg() != 0 || *jobs < 1 || *concurrency < 1 {
		fmt.Fprintf(os.Stderr, "movrload: bad arguments\n")
		flag.Usage()
		os.Exit(2)
	}

	kinds := strings.Split(*scenarios, ",")
	transport := &countingTransport{base: http.DefaultTransport}
	client := movrclient.New(*addr)
	client.HTTPClient = &http.Client{Transport: transport}
	client.MaxRetries = 16 // ride out sustained backpressure

	ctx := context.Background()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		cacheHits int
		failures  []string
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fleet := map[string]any{
					"scenario":    kinds[i%len(kinds)],
					"sessions":    *sessions,
					"seed":        *seed + i,
					"duration_ms": *durationMS,
				}
				if *agg != "" {
					fleet["agg"] = *agg
				}
				spec := map[string]any{"kind": "fleet", "fleet": fleet}
				t0 := time.Now()
				job, err := client.SubmitWait(ctx, spec)
				elapsed := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					failures = append(failures, fmt.Sprintf("job %d: %v", i, err))
				case job.State != "done":
					failures = append(failures, fmt.Sprintf("job %d: state %s: %s", i, job.State, job.Error))
				default:
					latencies = append(latencies, elapsed)
					if job.Cached {
						cacheHits++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "movrload: %s\n", f)
	}
	if len(latencies) == 0 {
		fmt.Fprintf(os.Stderr, "movrload: no job completed\n")
		os.Exit(2)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := percentile(latencies, 50)
	p95 := percentile(latencies, 95)
	backpressed := transport.backpressed.Load()
	fmt.Printf("movrload: %d/%d jobs done in %v (%.1f jobs/s)\n",
		len(latencies), *jobs, wall.Round(time.Millisecond),
		float64(len(latencies))/wall.Seconds())
	fmt.Printf("movrload: submit-to-done p50=%v p95=%v max=%v\n",
		p50.Round(time.Millisecond), p95.Round(time.Millisecond),
		latencies[len(latencies)-1].Round(time.Millisecond))
	fmt.Printf("movrload: backpressure_429=%d cache_hits=%d\n", backpressed, cacheHits)

	exit := 0
	if len(failures) > 0 {
		exit = 1
	}
	if *p95Max > 0 && p95 > *p95Max {
		fmt.Fprintf(os.Stderr, "movrload: FAIL p95 %v exceeds -p95-max %v\n", p95, *p95Max)
		exit = 1
	}
	if *assertBP && backpressed == 0 {
		fmt.Fprintf(os.Stderr, "movrload: FAIL expected 429 backpressure, saw none\n")
		exit = 1
	}
	os.Exit(exit)
}

// percentile mirrors the simulator's rank convention: linear
// interpolation at rank p/100·(n−1) over the sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}
