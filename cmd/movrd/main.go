// Command movrd serves the MoVR simulator as a long-lived HTTP/JSON
// daemon: submit simulation jobs, stream their progress, and scrape
// metrics — simulation as a service instead of one-shot CLI runs.
//
// Usage:
//
//	movrd [flags]
//
// Flags:
//
//	-addr A      listen address (default 127.0.0.1:8477; use :0 to pick a free port)
//	-workers N   shared session-pool capacity all jobs multiplex onto (0 = all cores)
//	-max-jobs N  jobs executing concurrently (default 4)
//	-queue N     queued-job bound; full queue answers 429 (default 16)
//	-cache N     result-cache entries (default 256)
//	-cache-dir D durable result-store directory; completed results are
//	             fsync'd to D/results.log and survive restarts (empty =
//	             memory-only cache)
//	-retain N    finished-job records kept for GET /v1/jobs (default 1024)
//	-debug-addr A  optional second listener with net/http/pprof under
//	               /debug/pprof/ and expvar under /debug/vars; off when
//	               empty (the default), so the job API never exposes
//	               profiling handlers
//
// API:
//
//	POST   /v1/jobs             submit a job spec (?wait=1 blocks until done)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        status + result
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events per-session progress (SSE)
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text format
//
// Example:
//
//	curl -s localhost:8477/v1/jobs?wait=1 -d \
//	  '{"kind":"fleet","fleet":{"scenario":"mixed","sessions":24,"seed":1}}'
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/movr-sim/movr/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8477", "listen address (use :0 to pick a free port)")
	workers := flag.Int("workers", 0, "shared session-pool capacity (0 = all cores)")
	maxJobs := flag.Int("max-jobs", 0, "concurrently executing jobs (0 = default 4)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = default 16)")
	cacheN := flag.Int("cache", 0, "result-cache entries (0 = default 256)")
	cacheDir := flag.String("cache-dir", "", "durable result-store directory (empty = memory-only cache)")
	retain := flag.Int("retain", 0, "finished-job records kept (0 = default 1024)")
	debugAddr := flag.String("debug-addr", "", "pprof/expvar listen address (empty = disabled)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "movrd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv, err := server.New(server.Options{
		Workers:      *workers,
		MaxJobs:      *maxJobs,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		CacheDir:     *cacheDir,
		RetainJobs:   *retain,
	})
	if err != nil {
		log.Fatalf("movrd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("movrd: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv}

	// The fixed "listening on" line is load-bearing: the smoke script
	// (and anyone starting movrd with -addr :0) reads the actual
	// address from it.
	log.Printf("movrd: listening on %s", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	// Debug listener: a separate socket so profiling handlers are never
	// reachable through the job API address. Uses an explicit mux —
	// importing net/http/pprof for its DefaultServeMux side effect would
	// silently expose pprof on any future handler that reuses it.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("movrd: debug listen %s: %v", *debugAddr, err)
		}
		debugSrv = &http.Server{Handler: dmux}
		log.Printf("movrd: debug listening on %s", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("movrd: debug serve: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("movrd: %v — shutting down", s)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("movrd: serve: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("movrd: shutdown: %v", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	srv.Close()
}
