// Command movrsim reproduces the evaluation of "Cutting the Cord in
// Virtual Reality" (HotNets-XV, 2016) from the terminal.
//
// Usage:
//
//	movrsim [flags] <experiment>
//
// Experiments:
//
//	fig3       blockage impact on SNR and data rate (§3)
//	fig7       TX→RX leakage vs beam angles (§4.2)
//	fig8       beam-alignment accuracy (§5.1)
//	fig9       SNR improvement CDFs: LOS / Opt-NLOS / MoVR (§5.2)
//	battery    untethered battery-life analysis (§6)
//	latency    control-path latency budget (§6)
//	session    end-to-end VR streaming with pose tracking (§6 future work)
//	deployment multi-AP vs AP+reflector coverage and cost (§1)
//	map        room coverage heatmaps with and without MoVR
//	ablations  design-choice ablation tables
//	all        everything above, in paper order
//
// Flags:
//
//	-seed N    random seed (default 1)
//	-runs N    Monte-Carlo runs where applicable (default: paper scale)
//	-fast      reduce run counts and sweep resolution for a quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	movr "github.com/movr-sim/movr"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	runs := flag.Int("runs", 0, "Monte-Carlo runs (0 = paper default)")
	fast := flag.Bool("fast", false, "quick pass: fewer runs, coarser sweeps")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	cmd := flag.Arg(0)
	start := time.Now()
	switch cmd {
	case "fig3":
		runFig3(*seed, *runs, *fast)
	case "fig7":
		runFig7(*seed)
	case "fig8":
		runFig8(*seed, *runs, *fast)
	case "fig9":
		runFig9(*seed, *runs, *fast)
	case "battery":
		fmt.Print(movr.RunBattery(movr.DefaultBatteryConfig()).Render())
	case "latency":
		fmt.Print(movr.RunLatency(movr.LatencyConfig{Seed: *seed}).Render())
	case "session":
		runSession(*seed, *fast)
	case "deployment":
		fmt.Print(movr.RunDeployment().Render())
	case "map":
		runMap()
	case "ablations":
		runAblations(*seed)
	case "all":
		runFig3(*seed, *runs, *fast)
		fmt.Println()
		runFig7(*seed)
		fmt.Println()
		runFig8(*seed, *runs, *fast)
		fmt.Println()
		runFig9(*seed, *runs, *fast)
		fmt.Println()
		fmt.Print(movr.RunBattery(movr.DefaultBatteryConfig()).Render())
		fmt.Println()
		fmt.Print(movr.RunLatency(movr.LatencyConfig{Seed: *seed}).Render())
		fmt.Println()
		runSession(*seed, *fast)
		fmt.Println()
		fmt.Print(movr.RunDeployment().Render())
		fmt.Println()
		runMap()
		fmt.Println()
		runAblations(*seed)
	default:
		fmt.Fprintf(os.Stderr, "movrsim: unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "\n[%s completed in %v]\n", cmd, time.Since(start).Truncate(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `movrsim — MoVR (HotNets'16) evaluation reproduction

usage: movrsim [flags] <fig3|fig7|fig8|fig9|battery|latency|session|deployment|map|ablations|all>

flags:
`)
	flag.PrintDefaults()
}

func runFig3(seed int64, runs int, fast bool) {
	cfg := movr.DefaultFig3Config()
	cfg.Seed = seed
	if runs > 0 {
		cfg.Runs = runs
	}
	if fast {
		cfg.Runs = 6
		cfg.NLOSStepDeg = 5
	}
	fmt.Print(movr.RunFig3(cfg).Render())
}

func runFig7(seed int64) {
	cfg := movr.DefaultFig7Config()
	cfg.Seed = seed
	fmt.Print(movr.RunFig7(cfg).Render())
}

func runFig8(seed int64, runs int, fast bool) {
	cfg := movr.DefaultFig8Config()
	cfg.Seed = seed
	if runs > 0 {
		cfg.Runs = runs
	}
	if fast {
		cfg.Runs = 10
	}
	fmt.Print(movr.RunFig8(cfg).Render())
}

func runFig9(seed int64, runs int, fast bool) {
	cfg := movr.DefaultFig9Config()
	cfg.Seed = seed
	if runs > 0 {
		cfg.Runs = runs
	}
	if fast {
		cfg.Runs = 8
		cfg.NLOSStepDeg = 5
	}
	fmt.Print(movr.RunFig9(cfg).Render())
}

func runSession(seed int64, fast bool) {
	cfg := movr.DefaultSessionConfig()
	cfg.Seed = seed
	if fast {
		cfg.Duration = 8 * time.Second
	}
	fmt.Print(movr.RunSession(cfg).Render())
}

func runMap() {
	fmt.Print(movr.RunHeatmap(movr.DefaultHeatmapConfig(false)).Render("VR coverage — bare AP"))
	fmt.Println()
	fmt.Print(movr.RunHeatmap(movr.DefaultHeatmapConfig(true)).Render("VR coverage — AP + MoVR reflector"))
}

func runAblations(seed int64) {
	fmt.Print(movr.RenderAblations(
		movr.RunAblationGainBackoff(seed),
		movr.RunAblationPhaseBits(seed),
		movr.RunAblationSweepStep(seed),
	))
	fmt.Println()
	fmt.Print(movr.RenderTrackingAblation(movr.RunAblationTrackingPeriod(seed)))
}
