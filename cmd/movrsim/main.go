// Command movrsim reproduces the evaluation of "Cutting the Cord in
// Virtual Reality" (HotNets-XV, 2016) from the terminal.
//
// Usage:
//
//	movrsim [flags] <experiment>
//
// Experiments:
//
//	fig3       blockage impact on SNR and data rate (§3)
//	fig7       TX→RX leakage vs beam angles (§4.2)
//	fig8       beam-alignment accuracy (§5.1)
//	fig9       SNR improvement CDFs: LOS / Opt-NLOS / MoVR (§5.2)
//	battery    untethered battery-life analysis (§6)
//	latency    control-path latency budget (§6)
//	session    end-to-end VR streaming with pose tracking (§6 future work)
//	deployment multi-AP vs AP+reflector coverage and cost (§1)
//	map        room coverage heatmaps with and without MoVR
//	ablations  design-choice ablation tables
//	fleet      N concurrent sessions across diverse deployments
//	bench      performance suite → BENCH_<git-sha>.json (perf workflow)
//	all        everything above (except bench), in paper order
//
// Flags:
//
//	-seed N       random seed (default 1)
//	-runs N       Monte-Carlo runs where applicable (default: paper scale)
//	-fast         reduce run counts and sweep resolution for a quick pass
//	-workers N    worker-pool size for fleet, fig9 and map (0 = all cores)
//	-sessions N   fleet session count (default 24)
//	-scenario S   fleet scenario: mixed|arcade|home|dense|coex|coexpf|coexedf
//	              (default mixed)
//	-players N    players sharing each coex bay's medium (coex family, default 4)
//	-coex-policy P airtime policy for coex bays: rr|pf|edf (coex family, default rr;
//	              the coexpf/coexedf scenarios force pf/edf)
//	-uplink D     pose-report uplink sub-slot reserved per player per scheduling
//	              window, e.g. 200us (coex family, default 0 = off)
//	-bays N       venue bay-grid size (venue scenario, default 4, max 64)
//	-players-per-bay N
//	              players per venue bay — alias of -players for the venue
//	              quickstart (venue scenario, default 4)
//	-channels N   venue channel budget for bay assignment (venue, default 3, max 4)
//	-assign M     venue channel assignment: color|fixed (venue, default color)
//	-interference-off
//	              disable cross-bay interference (venue; A/B studies)
//	-admission M  players beyond a bay's TDMA capacity: queue|reject (venue,
//	              default queue)
//	-agg M        fleet aggregation: exact (default; legacy output, per-session
//	              outcomes in memory) or stream (constant-memory mergeable
//	              sketches — percentiles within the sketch error bound)
//	-shard I/N    run only fleet shard I of N (contiguous session ranges,
//	              0-indexed); shard outputs merge deterministically, see the
//	              README's "Running movrd at scale"
//	-trace P      write a per-session event trace to P (session and fleet only):
//	              Chrome trace-event JSON loadable in Perfetto, or JSONL when P
//	              ends in .jsonl; summarize with movrtrace -analyze P
//
// Bench flags (see the README's "Performance workflow" section):
//
//	-bench-out P         report path (default BENCH_<git-sha>.json)
//	-bench-compare P     baseline to gate against (e.g. BENCH_baseline.json)
//	-bench-tol-pct F     allowed ns/op regression in percent (default 50)
//	-bench-alloc-tol F   allowed allocs/op regression (default 0)
//	-bench-cpuprofile D  write per-benchmark CPU profiles into directory D
//	-bench-memprofile D  write per-benchmark heap profiles into directory D
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	movr "github.com/movr-sim/movr"
	"github.com/movr-sim/movr/internal/bench"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	runs := flag.Int("runs", 0, "Monte-Carlo runs (0 = paper default)")
	fast := flag.Bool("fast", false, "quick pass: fewer runs, coarser sweeps")
	workers := flag.Int("workers", 0, "worker-pool size for fleet, fig9 and map (0 = all cores)")
	sessions := flag.Int("sessions", 24, "fleet session count")
	scenario := flag.String("scenario", "mixed", "fleet scenario: "+movr.FleetScenarioNames())
	players := flag.Int("players", 0, "players sharing each coex bay's medium (coex scenarios; 0 = 4)")
	coexPolicy := flag.String("coex-policy", "", "airtime policy for coex bays: "+movr.CoexPolicyNames()+" (coex scenarios; default rr)")
	uplink := flag.Duration("uplink", 0, "pose-uplink sub-slot reserved per player per window (coex scenarios; 0 = off)")
	bays := flag.Int("bays", 0, "venue bay-grid size (venue scenario; 0 = 4)")
	playersPerBay := flag.Int("players-per-bay", 0, "players per venue bay (venue scenario; alias of -players; 0 = 4)")
	channels := flag.Int("channels", 0, "venue channel budget for bay assignment (venue scenario; 0 = 3)")
	assign := flag.String("assign", "", "venue channel assignment: "+movr.VenueAssignModeNames()+" (venue scenario; default color)")
	interferenceOff := flag.Bool("interference-off", false, "disable cross-bay interference (venue scenario)")
	admission := flag.String("admission", "", "players beyond a bay's TDMA capacity: queue|reject (venue scenario; default queue)")
	tracePath := flag.String("trace", "", "write a per-session event trace (Perfetto-loadable Chrome JSON; use a .jsonl path for JSONL) — session and fleet only")
	aggMode := flag.String("agg", "", `fleet aggregation: "exact" (default) or "stream"`)
	shardSpec := flag.String("shard", "", "run only fleet shard I/N (e.g. 1/4) — fleet only")
	benchOut := flag.String("bench-out", "", "bench report path (default BENCH_<git-sha>.json)")
	benchCompare := flag.String("bench-compare", "", "baseline BENCH_*.json to gate against")
	benchTolPct := flag.Float64("bench-tol-pct", 50, "allowed ns/op regression in percent")
	benchAllocTol := flag.Float64("bench-alloc-tol", 0, "allowed allocs/op regression")
	benchCPUProf := flag.String("bench-cpuprofile", "", "directory for per-benchmark CPU profiles (<name>.cpu.pprof)")
	benchMemProf := flag.String("bench-memprofile", "", "directory for per-benchmark heap profiles (<name>.mem.pprof)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	// Validate the fleet knobs up front — a bad value is a usage error,
	// not something to discover inside the engine.
	if *sessions <= 0 {
		fmt.Fprintf(os.Stderr, "movrsim: -sessions %d must be positive\n\n", *sessions)
		usage()
		os.Exit(2)
	}
	kind, err := movr.ParseFleetScenario(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: %v\n\n", err)
		usage()
		os.Exit(2)
	}
	// -players-per-bay is the venue quickstart's spelling of -players;
	// fold it in before the shared bounds checks.
	if *playersPerBay != 0 {
		switch {
		case !movr.IsVenueFleetScenario(kind):
			fmt.Fprintf(os.Stderr, "movrsim: -players-per-bay is only meaningful with the venue scenario\n\n")
			usage()
			os.Exit(2)
		case *players != 0 && *players != *playersPerBay:
			fmt.Fprintf(os.Stderr, "movrsim: -players %d conflicts with -players-per-bay %d\n\n", *players, *playersPerBay)
			usage()
			os.Exit(2)
		}
		*players = *playersPerBay
	}
	// -players mirrors the daemon's headsets_per_room validation: only
	// meaningful for the coex scenario family, bounded the same way.
	if *players != 0 {
		switch {
		case !movr.IsCoexFleetScenario(kind):
			fmt.Fprintf(os.Stderr, "movrsim: -players is only meaningful with the coex scenarios\n\n")
			usage()
			os.Exit(2)
		case *players < 0:
			fmt.Fprintf(os.Stderr, "movrsim: -players %d must be positive\n\n", *players)
			usage()
			os.Exit(2)
		case *players > movr.MaxCoexHeadsets:
			fmt.Fprintf(os.Stderr, "movrsim: -players %d exceeds the limit of %d\n\n", *players, movr.MaxCoexHeadsets)
			usage()
			os.Exit(2)
		}
	}
	// -coex-policy mirrors the daemon's coex_policy validation,
	// including the rule that a policy-suffixed scenario must not carry
	// a conflicting explicit policy.
	policy, err := movr.ParseCoexPolicy(*coexPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: %v\n\n", err)
		usage()
		os.Exit(2)
	}
	if *coexPolicy != "" && !movr.IsCoexFleetScenario(kind) {
		fmt.Fprintf(os.Stderr, "movrsim: -coex-policy is only meaningful with the coex scenarios\n\n")
		usage()
		os.Exit(2)
	}
	forced := map[movr.FleetScenarioKind]movr.CoexPolicyName{
		movr.FleetScenarioCoexPF:  movr.CoexPolicyPF,
		movr.FleetScenarioCoexEDF: movr.CoexPolicyEDF,
	}
	if want, ok := forced[kind]; ok {
		if *coexPolicy != "" && policy != want {
			fmt.Fprintf(os.Stderr, "movrsim: -scenario %s conflicts with -coex-policy %s\n\n", kind, *coexPolicy)
			usage()
			os.Exit(2)
		}
		policy = want
	}
	if *uplink != 0 {
		switch {
		case !movr.IsCoexFleetScenario(kind):
			fmt.Fprintf(os.Stderr, "movrsim: -uplink is only meaningful with the coex scenarios\n\n")
			usage()
			os.Exit(2)
		case *uplink < 0:
			fmt.Fprintf(os.Stderr, "movrsim: -uplink %v must not be negative\n\n", *uplink)
			usage()
			os.Exit(2)
		}
	}

	// The venue knobs mirror the daemon's bays/channels/assign/admission
	// validation.
	if (*bays != 0 || *channels != 0 || *assign != "" || *interferenceOff || *admission != "") &&
		!movr.IsVenueFleetScenario(kind) {
		fmt.Fprintf(os.Stderr, "movrsim: -bays, -channels, -assign, -interference-off and -admission are only meaningful with the venue scenario\n\n")
		usage()
		os.Exit(2)
	}
	if *bays < 0 || *bays > movr.MaxVenueBays {
		fmt.Fprintf(os.Stderr, "movrsim: -bays %d must be in [1,%d]\n\n", *bays, movr.MaxVenueBays)
		usage()
		os.Exit(2)
	}
	if *channels < 0 || *channels > movr.MaxVenueChannels {
		fmt.Fprintf(os.Stderr, "movrsim: -channels %d must be in [1,%d]\n\n", *channels, movr.MaxVenueChannels)
		usage()
		os.Exit(2)
	}
	assignMode, err := movr.ParseVenueAssignMode(*assign)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: -assign: %v\n\n", err)
		usage()
		os.Exit(2)
	}
	admitMode, err := movr.ParseVenueAdmission(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: -admission: %v\n\n", err)
		usage()
		os.Exit(2)
	}
	// A venue's natural size is its whole bay grid: unless -sessions was
	// given explicitly, size the fleet to bays × players-per-bay so
	// `-scenario venue -bays 16 -players-per-bay 4` runs all 64 sessions.
	if movr.IsVenueFleetScenario(kind) {
		sessionsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "sessions" {
				sessionsSet = true
			}
		})
		if !sessionsSet {
			effBays, effPPB := *bays, *players
			if effBays <= 0 {
				effBays = movr.DefaultVenueBays
			}
			if effPPB <= 0 {
				effPPB = movr.DefaultCoexHeadsets
			}
			*sessions = effBays * effPPB
		}
	}

	switch *aggMode {
	case "", "exact", "stream":
	default:
		fmt.Fprintf(os.Stderr, "movrsim: -agg %q must be exact or stream\n\n", *aggMode)
		usage()
		os.Exit(2)
	}
	shard, err := parseShard(*shardSpec, *sessions)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: %v\n\n", err)
		usage()
		os.Exit(2)
	}

	cmd := flag.Arg(0)
	if (*aggMode != "" || *shardSpec != "") && cmd != "fleet" {
		fmt.Fprintf(os.Stderr, "movrsim: -agg and -shard are only meaningful with the fleet experiment\n\n")
		usage()
		os.Exit(2)
	}
	if *tracePath != "" && cmd != "fleet" && cmd != "session" {
		fmt.Fprintf(os.Stderr, "movrsim: -trace is only meaningful with the session and fleet experiments\n\n")
		usage()
		os.Exit(2)
	}
	vf := venueFlags{
		bays:            *bays,
		channels:        *channels,
		assign:          assignMode,
		interferenceOff: *interferenceOff,
		admission:       admitMode,
	}
	start := time.Now()
	switch cmd {
	case "fig3":
		runFig3(*seed, *runs, *fast)
	case "fig7":
		runFig7(*seed)
	case "fig8":
		runFig8(*seed, *runs, *fast)
	case "fig9":
		runFig9(*seed, *runs, *workers, *fast)
	case "battery":
		fmt.Print(movr.RunBattery(movr.DefaultBatteryConfig()).Render())
	case "latency":
		fmt.Print(movr.RunLatency(movr.LatencyConfig{Seed: *seed}).Render())
	case "session":
		runSession(*seed, *fast, *tracePath)
	case "deployment":
		fmt.Print(movr.RunDeployment().Render())
	case "map":
		runMap(*workers)
	case "ablations":
		runAblations(*seed)
	case "fleet":
		runFleet(*seed, *workers, *sessions, *players, policy, *uplink, kind, *fast, *tracePath, *aggMode, shard, vf)
	case "bench":
		runBench(*benchOut, *benchCompare, *benchCPUProf, *benchMemProf, *benchTolPct, *benchAllocTol, *fast)
	case "all":
		runFig3(*seed, *runs, *fast)
		fmt.Println()
		runFig7(*seed)
		fmt.Println()
		runFig8(*seed, *runs, *fast)
		fmt.Println()
		runFig9(*seed, *runs, *workers, *fast)
		fmt.Println()
		fmt.Print(movr.RunBattery(movr.DefaultBatteryConfig()).Render())
		fmt.Println()
		fmt.Print(movr.RunLatency(movr.LatencyConfig{Seed: *seed}).Render())
		fmt.Println()
		runSession(*seed, *fast, "")
		fmt.Println()
		fmt.Print(movr.RunDeployment().Render())
		fmt.Println()
		runMap(*workers)
		fmt.Println()
		runAblations(*seed)
		fmt.Println()
		runFleet(*seed, *workers, *sessions, *players, policy, *uplink, kind, *fast, "", "", nil, vf)
	default:
		fmt.Fprintf(os.Stderr, "movrsim: unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "\n[%s completed in %v]\n", cmd, time.Since(start).Truncate(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `movrsim — MoVR (HotNets'16) evaluation reproduction

usage: movrsim [flags] <fig3|fig7|fig8|fig9|battery|latency|session|deployment|map|ablations|fleet|bench|all>

flags:
`)
	flag.PrintDefaults()
}

func runFig3(seed int64, runs int, fast bool) {
	cfg := movr.DefaultFig3Config()
	cfg.Seed = seed
	if runs > 0 {
		cfg.Runs = runs
	}
	if fast {
		cfg.Runs = 6
		cfg.NLOSStepDeg = 5
	}
	fmt.Print(movr.RunFig3(cfg).Render())
}

func runFig7(seed int64) {
	cfg := movr.DefaultFig7Config()
	cfg.Seed = seed
	fmt.Print(movr.RunFig7(cfg).Render())
}

func runFig8(seed int64, runs int, fast bool) {
	cfg := movr.DefaultFig8Config()
	cfg.Seed = seed
	if runs > 0 {
		cfg.Runs = runs
	}
	if fast {
		cfg.Runs = 10
	}
	fmt.Print(movr.RunFig8(cfg).Render())
}

func runFig9(seed int64, runs, workers int, fast bool) {
	cfg := movr.DefaultFig9Config()
	cfg.Seed = seed
	cfg.Workers = workers
	if runs > 0 {
		cfg.Runs = runs
	}
	if fast {
		cfg.Runs = 8
		cfg.NLOSStepDeg = 5
	}
	fmt.Print(movr.RunFig9(cfg).Render())
}

func runSession(seed int64, fast bool, tracePath string) {
	cfg := movr.DefaultSessionConfig()
	cfg.Seed = seed
	if fast {
		cfg.Duration = 8 * time.Second
	}
	// Per-variant recorders: the session experiment runs the same trace
	// through four system variants; each gets its own track in the
	// exported file.
	var recs map[experiments.SessionVariant]*obs.Recorder
	if tracePath != "" {
		recs = make(map[experiments.SessionVariant]*obs.Recorder, len(experiments.SessionVariants))
		for _, v := range experiments.SessionVariants {
			recs[v] = obs.NewRecorder(0)
		}
		cfg.ObsFor = func(v experiments.SessionVariant) *obs.Recorder { return recs[v] }
	}
	fmt.Print(movr.RunSession(cfg).Render())
	if tracePath != "" {
		tr := obs.Trace{}
		for _, v := range experiments.SessionVariants {
			tr.Sessions = append(tr.Sessions, obs.Collect("session/"+string(v), recs[v]))
		}
		writeTrace(tr, tracePath)
	}
}

// writeTrace writes an exported trace file, reporting success like the
// bench report path does.
func writeTrace(tr obs.Trace, path string) {
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
}

func runMap(workers int) {
	bare := movr.DefaultHeatmapConfig(false)
	bare.Workers = workers
	with := movr.DefaultHeatmapConfig(true)
	with.Workers = workers
	fmt.Print(movr.RunHeatmap(bare).Render("VR coverage — bare AP"))
	fmt.Println()
	fmt.Print(movr.RunHeatmap(with).Render("VR coverage — AP + MoVR reflector"))
}

// parseShard parses "I/N" into a validated FleetShard (nil when the
// flag is unset or names the whole fleet, keeping output byte-identical
// to an unsharded run).
func parseShard(s string, sessions int) (*movr.FleetShard, error) {
	if s == "" {
		return nil, nil
	}
	var idx, count int
	if n, err := fmt.Sscanf(s, "%d/%d", &idx, &count); n != 2 || err != nil {
		return nil, fmt.Errorf("-shard %q must be I/N, e.g. 1/4", s)
	}
	sh := movr.FleetShard{Index: idx, Count: count}
	if err := sh.Validate(); err != nil {
		return nil, fmt.Errorf("-shard %q: %w", s, err)
	}
	if count > sessions {
		return nil, fmt.Errorf("-shard %q: %d shards exceed %d sessions", s, count, sessions)
	}
	if count == 1 {
		return nil, nil
	}
	return &sh, nil
}

// venueFlags bundles the venue scenario's CLI knobs for runFleet.
type venueFlags struct {
	bays, channels  int
	assign          movr.VenueAssignMode
	interferenceOff bool
	admission       string
}

func runFleet(seed int64, workers, sessions, players int, policy movr.CoexPolicyName, uplink time.Duration, kind movr.FleetScenarioKind, fast bool, tracePath string, aggMode string, shard *movr.FleetShard, vf venueFlags) {
	cfg := movr.FleetScenarioConfig{
		Seed:                 seed,
		Duration:             10 * time.Second,
		HeadsetsPerRoom:      players,
		CoexPolicy:           policy,
		CoexUplink:           uplink,
		VenueBays:            vf.bays,
		VenueChannels:        vf.channels,
		VenueAssign:          vf.assign,
		VenueInterferenceOff: vf.interferenceOff,
		VenueAdmission:       vf.admission,
	}
	if fast {
		cfg.Duration = 2 * time.Second
		cfg.ReEvalPeriod = 100 * time.Millisecond
	}
	// Shared-medium runs lead with a self-describing header, so a saved
	// report records which airtime policy and bay population produced
	// it. Legacy scenarios print nothing extra — their output stays
	// byte-identical.
	if movr.IsVenueFleetScenario(kind) {
		perRoom := players
		if perRoom <= 0 {
			perRoom = movr.DefaultCoexHeadsets
		}
		bays := vf.bays
		if bays <= 0 {
			bays = movr.DefaultVenueBays
		}
		channels := vf.channels
		if channels <= 0 {
			channels = movr.DefaultVenueChannels
		}
		fmt.Printf("venue: bays=%d players-per-bay=%d channels=%d assign=%s admission=%s policy=%s uplink=%v\n\n",
			bays, perRoom, channels, vf.assign, vf.admission, policy, uplink)
	} else if movr.IsCoexFleetScenario(kind) {
		perRoom := players
		if perRoom <= 0 {
			perRoom = movr.DefaultCoexHeadsets
		}
		fmt.Printf("coex: policy=%s players=%d uplink=%v\n\n", policy, perRoom, uplink)
	}
	// The spec set comes from the same generator the movrd job API
	// uses, so CLI runs and server jobs cannot drift apart.
	specs, err := kind.Specs(sessions, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: fleet: %v\n", err)
		os.Exit(1)
	}
	// The streaming collector's sketch ranges come from the full spec
	// set before any shard slice, so shard states stay mergeable.
	var col movr.FleetCollector
	if aggMode == "stream" {
		col = movr.NewFleetStreamCollector(specs)
	}
	title := kind.Title()
	if shard != nil {
		// Bay-aligned slicing: no shard splits a bay, so every shard
		// keeps the bay-batched execution path and merged results still
		// reassemble the full run exactly.
		specs = shard.SliceAligned(specs)
		title += fmt.Sprintf(" [shard %d/%d]", shard.Index, shard.Count)
	}
	var recs []*obs.Recorder
	if tracePath != "" {
		recs = fleet.AttachTraceRecorders(specs, 0)
	}
	res, err := movr.RunFleetCollect(context.Background(), specs, movr.FleetConfig{Workers: workers}, col)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: fleet: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Render(title))
	if tracePath != "" {
		writeTrace(fleet.CollectTrace(specs, recs), tracePath)
	}
}

// runBench executes the named performance suite, writes the
// schema-versioned BENCH_<sha>.json report, and — when a baseline is
// given — gates the fresh numbers against it, exiting 1 on regression.
func runBench(outPath, comparePath, cpuProfDir, memProfDir string, tolPct, allocTol float64, fast bool) {
	rep, err := bench.Run(bench.Suite(), bench.Options{
		Fast:          fast,
		CPUProfileDir: cpuProfDir,
		MemProfileDir: memProfDir,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: bench: %v\n", err)
		os.Exit(1)
	}
	if outPath == "" {
		outPath = rep.FileName()
	}
	if err := rep.WriteFile(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	fmt.Fprintf(os.Stderr, "bench: report written to %s\n", outPath)
	if comparePath == "" {
		return
	}
	base, err := bench.ReadFile(comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "movrsim: bench: baseline: %v\n", err)
		os.Exit(1)
	}
	cmp := bench.Compare(base, rep, bench.Tolerance{TimePct: tolPct, Allocs: allocTol})
	fmt.Print(cmp.Render())
	if !cmp.OK() {
		os.Exit(1)
	}
}

func runAblations(seed int64) {
	fmt.Print(movr.RenderAblations(
		movr.RunAblationGainBackoff(seed),
		movr.RunAblationPhaseBits(seed),
		movr.RunAblationSweepStep(seed),
	))
	fmt.Println()
	fmt.Print(movr.RenderTrackingAblation(movr.RunAblationTrackingPeriod(seed)))
}
