package movr_test

// Benchmark harness: one benchmark per paper table/figure (the
// regeneration entry points DESIGN.md §4 indexes), plus ablations and
// micro-benchmarks of the hot substrate paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute reduced-size experiment configurations
// per iteration so `go test -bench` stays fast; use cmd/movrsim for the
// full paper-scale runs.

import (
	"testing"
	"time"

	movr "github.com/movr-sim/movr"
)

// BenchmarkFig3Blockage regenerates Fig 3 (blockage impact on SNR and
// data rate, §3).
func BenchmarkFig3Blockage(b *testing.B) {
	cfg := movr.DefaultFig3Config()
	cfg.Runs = 4
	cfg.NLOSStepDeg = 6
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := movr.RunFig3(cfg)
		if len(r.Rows) != 5 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig7Leakage regenerates Fig 7 (TX→RX leakage vs beam angles,
// §4.2).
func BenchmarkFig7Leakage(b *testing.B) {
	cfg := movr.DefaultFig7Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := movr.RunFig7(cfg)
		if len(r.TXAngles) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig8Alignment regenerates Fig 8 (beam alignment accuracy,
// §5.1) with the hierarchical sweep.
func BenchmarkFig8Alignment(b *testing.B) {
	cfg := movr.DefaultFig8Config()
	cfg.Runs = 3
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := movr.RunFig8(cfg)
		if len(r.Errors) != cfg.Runs {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig8ExhaustiveSweep measures the paper's reference exhaustive
// alignment (the §6 "most time consuming process").
func BenchmarkFig8ExhaustiveSweep(b *testing.B) {
	cfg := movr.DefaultFig8Config()
	cfg.Runs = 1
	cfg.Exhaustive = true
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := movr.RunFig8(cfg)
		if len(r.Errors) != cfg.Runs {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig9SNR regenerates Fig 9 (SNR improvement CDFs, §5.2).
func BenchmarkFig9SNR(b *testing.B) {
	cfg := movr.DefaultFig9Config()
	cfg.Runs = 4
	cfg.NLOSStepDeg = 6
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := movr.RunFig9(cfg)
		if len(r.MoVRImp) != cfg.Runs {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkBatteryLife regenerates the §6 battery analysis.
func BenchmarkBatteryLife(b *testing.B) {
	cfg := movr.DefaultBatteryConfig()
	for i := 0; i < b.N; i++ {
		r := movr.RunBattery(cfg)
		if r.TypicalHours <= 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkLatencyBudget regenerates the §6 latency budget (includes two
// live alignment sweeps).
func BenchmarkLatencyBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := movr.RunLatency(movr.LatencyConfig{Seed: int64(i + 1)})
		if len(r.Rows) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkVRSession regenerates the end-to-end streaming comparison
// (§6 future work) on a short session.
func BenchmarkVRSession(b *testing.B) {
	cfg := movr.DefaultSessionConfig()
	cfg.Duration = 3 * time.Second
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := movr.RunSession(cfg)
		if len(r.Reports) != 4 { // direct, static, reactive, tracking
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAblationGainBackoff sweeps the §4.2 back-off design choice.
func BenchmarkAblationGainBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := movr.RunAblationGainBackoff(int64(i + 1))
		if len(rows) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAblationPhaseBits sweeps phase-shifter resolution.
func BenchmarkAblationPhaseBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := movr.RunAblationPhaseBits(int64(i + 1))
		if len(rows) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAblationSweepStep sweeps alignment granularity.
func BenchmarkAblationSweepStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := movr.RunAblationSweepStep(int64(i + 1))
		if len(rows) == 0 {
			b.Fatal("bad result")
		}
	}
}

// --- Micro-benchmarks of the hot substrate paths ---

// BenchmarkArrayGain measures one realized-gain evaluation of the phased
// array (the innermost loop of every sweep).
func BenchmarkArrayGain(b *testing.B) {
	arr := movr.DefaultArray(0)
	arr.SteerTo(20)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += arr.GainDBi(float64(i % 180))
	}
	_ = sink
}

// BenchmarkTracer measures a full path trace in the office (direct +
// first + second order reflections).
func BenchmarkTracer(b *testing.B) {
	world := movr.NewWorld(2)
	tx, rx := movr.V(0.5, 0.5), movr.V(4.2, 3.7)
	world.Room.AddObstacle(movr.Hand(movr.V(2.2, 2.0)))
	for i := 0; i < b.N; i++ {
		paths := world.Tracer.Trace(tx, rx)
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkTracerInto measures the same trace through the scratch-buffer
// API — the steady-state hot path, which performs zero heap allocations
// once the buffer has warmed up (compare allocs/op with BenchmarkTracer).
func BenchmarkTracerInto(b *testing.B) {
	world := movr.NewWorld(2)
	tx, rx := movr.V(0.5, 0.5), movr.V(4.2, 3.7)
	world.Room.AddObstacle(movr.Hand(movr.V(2.2, 2.0)))
	var buf []movr.Path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = world.Tracer.TraceInto(buf[:0], tx, rx)
		if len(buf) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkAlignmentMeasurement measures one backscatter sideband
// measurement (synthesize + FFT + integrate).
func BenchmarkAlignmentMeasurement(b *testing.B) {
	world := movr.NewWorld(0)
	dev := movr.DefaultReflector(movr.V(2.5, 5), 270)
	link := movr.NewControlLink(movr.NewController(dev), 0, 0, 1)
	sw, err := movr.NewSweeper(world.AP, dev, link, world.Tracer, movr.DefaultAlignConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.MeasureSidebandPower(45, 250); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGainControl measures one full §4.2 adaptive gain-control run
// (gain ramp with feedback-loop simulation per step).
func BenchmarkGainControl(b *testing.B) {
	dev := movr.DefaultReflector(movr.V(2.5, 5), 270)
	dev.SetBothBeams(270)
	cfg := movr.DefaultGainConfig()
	for i := 0; i < b.N; i++ {
		res := movr.OptimizeGain(dev, -55, cfg)
		if res.Steps == 0 {
			b.Fatal("no steps")
		}
	}
}

// BenchmarkLinkManagerStep measures one pose-tracking control step
// (direct + reflector evaluation including gain control).
func BenchmarkLinkManagerStep(b *testing.B) {
	world := movr.NewWorld(1)
	hs := world.NewHeadsetAt(movr.V(3.4, 2.4), 60)
	mgr := movr.NewLinkManager(world.Tracer, world.AP, hs)
	dev := movr.DefaultReflector(movr.V(4.6, 4.6), 225)
	link := movr.NewControlLink(movr.NewController(dev), 0, 0, 1)
	idx := mgr.AddReflector(dev, link)
	if err := mgr.AlignFromGeometry(idx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := mgr.Step(movr.V(3.4, 2.4), float64(40+i%40))
		if st.SNRdB == 0 {
			b.Fatal("no state")
		}
	}
}

// BenchmarkOptNLOSSweep measures the Opt-NLOS exhaustive beam sweep at
// the default experiment resolution.
func BenchmarkOptNLOSSweep(b *testing.B) {
	world := movr.NewWorld(1)
	hs := world.NewHeadsetAt(movr.V(3.8, 2.6), 215)
	for i := 0; i < b.N; i++ {
		res := movr.OptNLOS(world.Tracer, &world.AP.Radio, &hs.Radio, 4)
		if res.Combos == 0 {
			b.Fatal("no combos")
		}
	}
}
