// Package linkmgr is the end-to-end MoVR link controller: it monitors the
// data-plane SNR at the headset, decides between the direct AP→headset
// path and paths through installed reflectors, keeps reflector beams
// pointed using the VR system's pose tracking ("the VR system constantly
// tracks the headset's position, we can simply leverage this information
// to determine the best angle", §4.1), and re-runs the adaptive gain
// control whenever beams move.
//
// The manager's tracking step is allocation-free and temporally
// coherent: every recurring ray trace goes through a channel.PathCache
// with a stable per-leg slot — slot 0 for the direct AP→headset leg,
// slots 1+2i and 2+2i for reflector i's AP→reflector and
// reflector→headset legs — so tick-over-tick queries revalidate
// against their own history (only blockage legs that moved geometry
// could have changed are recomputed) instead of re-tracing the room.
// Cache state never changes results, only speed: cached and fresh
// traces are bit-identical by the PathCache contract.
package linkmgr

import (
	"fmt"
	"math"

	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/gainctl"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/relay"
	"github.com/movr-sim/movr/internal/units"
)

// PathChoice identifies which path currently carries the VR stream.
type PathChoice int

const (
	// PathNone means no usable path exists.
	PathNone PathChoice = iota
	// PathDirect is the AP→headset line-of-sight path.
	PathDirect
	// PathReflector is a path through a MoVR reflector.
	PathReflector
)

// String names the path choice.
func (c PathChoice) String() string {
	switch c {
	case PathNone:
		return "none"
	case PathDirect:
		return "direct"
	case PathReflector:
		return "reflector"
	default:
		return "unknown"
	}
}

// LinkState is the controller's view of the link after a decision.
type LinkState struct {
	// Choice is the selected path.
	Choice PathChoice

	// ReflectorIdx identifies the reflector when Choice is
	// PathReflector.
	ReflectorIdx int

	// SNRdB is the delivered SNR at the headset.
	SNRdB float64

	// RateBps is the 802.11ad rate at that SNR.
	RateBps float64

	// MCSIndex is the selected MCS (−1 when the link is down).
	MCSIndex int

	// MeetsRequirement reports whether the VR rate requirement is
	// satisfied.
	MeetsRequirement bool
}

// String summarizes the state.
func (s LinkState) String() string {
	return fmt.Sprintf("%s snr=%.1fdB rate=%.2fGbps meets=%v",
		s.Choice, s.SNRdB, s.RateBps/units.Gbps, s.MeetsRequirement)
}

// Entry is one installed reflector under management.
type Entry struct {
	// Dev is the physical device.
	Dev *reflector.Reflector

	// Link is the Bluetooth control channel to it.
	Link *control.Link

	// APBeamDeg is the AP's beam toward this reflector (from
	// alignment).
	APBeamDeg float64

	// IncidenceDeg is the reflector's receive-beam angle toward the AP
	// (from alignment — the angle Fig 8 estimates).
	IncidenceDeg float64

	// Aligned reports whether alignment has been performed.
	Aligned bool

	gainKeyOK         bool
	gainExt, gainLeak float64
	gainWord          int
}

// Manager owns path selection for one AP/headset pair.
type Manager struct {
	Tracer  *channel.Tracer
	AP      *radio.AP
	Headset *radio.Headset
	Req     phy.VRRequirement
	GainCfg gainctl.Config

	// Obs, when non-nil, receives link lifecycle events: handoff when
	// the carrying path changes, link_down when the link drops to no
	// usable path, link_up when it recovers, and reassess on every
	// passive SNR re-read. Recording is observation only — it never
	// influences path selection.
	Obs *obs.Recorder

	entries []*Entry

	// Last-applied decision, for passive reassessment.
	lastChoice PathChoice
	lastRefl   int

	// Last-emitted path code, tracked separately from the control state
	// above so trace events describe what the trace reader cares about
	// (the carrying path changing) rather than internal decision churn.
	emitSeen bool
	emitCode int32

	// pathBuf is the tracer scratch reused by every SNR evaluation, so a
	// steady-state tracking step performs zero heap allocations. Paths
	// (and their Points) returned through directLeg alias this buffer
	// and are only valid until the next trace.
	pathBuf []channel.Path

	// opt reuses gain-sweep probe scratch across every reflector
	// evaluation this manager performs.
	opt gainctl.Optimizer

	// cache memoizes traced path sets per leg with temporal coherence:
	// when only obstacles moved since the last evaluation of a leg, the
	// cached paths are revalidated (blockage recomputed for the moved
	// obstacles only) instead of re-traced, and when nothing moved the
	// cached paths are emitted as-is. Emissions are bit-identical to a
	// fresh trace. Rebuilt lazily if Tracer is swapped.
	cache *channel.PathCache
}

// Leg slot scheme for the path cache: the AP→headset leg uses slot 0,
// and each reflector entry i owns slots 1+2i (AP→reflector) and 2+2i
// (reflector→headset), so every recurring leg revalidates against its
// own history.
const slotDirect = 0

func slotLeg1(i int) int { return 1 + 2*i }
func slotLeg2(i int) int { return 2 + 2*i }

// pc returns the manager's path cache, (re)building it if the Tracer
// was set or swapped after construction.
func (m *Manager) pc() *channel.PathCache {
	if m.cache == nil || m.cache.Tracer() != m.Tracer {
		m.cache = channel.NewPathCache(m.Tracer)
	}
	return m.cache
}

// directSNR traces the AP→headset leg through the path cache and
// combines it exactly as radio.LinkSNRdBBuf does.
func (m *Manager) directSNR() float64 {
	m.pathBuf = m.pc().TraceHInto(slotDirect, m.pathBuf[:0],
		m.AP.Pos, m.Headset.Pos, m.AP.HeightM, m.Headset.HeightM)
	return m.AP.Budget.CombinedSNRdB(m.pathBuf, m.AP.Array, m.Headset.Array)
}

// New builds a Manager with the HTC Vive requirement and default gain
// control.
func New(tr *channel.Tracer, ap *radio.AP, hs *radio.Headset) *Manager {
	return &Manager{
		Tracer:  tr,
		AP:      ap,
		Headset: hs,
		Req:     phy.HTCViveRequirement(),
		GainCfg: gainctl.DefaultConfig(),
	}
}

// AddReflector registers a reflector and returns its index.
func (m *Manager) AddReflector(dev *reflector.Reflector, link *control.Link) int {
	m.entries = append(m.entries, &Entry{Dev: dev, Link: link})
	return len(m.entries) - 1
}

// Reflectors returns the managed entries (shared slice; do not modify).
func (m *Manager) Reflectors() []*Entry { return m.entries }

// SetAlignment records the alignment result for reflector i (normally
// produced by the align package's sweep).
func (m *Manager) SetAlignment(i int, apBeamDeg, incidenceDeg float64) error {
	if i < 0 || i >= len(m.entries) {
		return fmt.Errorf("linkmgr: reflector index %d out of range", i)
	}
	e := m.entries[i]
	e.APBeamDeg = apBeamDeg
	e.IncidenceDeg = incidenceDeg
	e.Aligned = true
	return nil
}

// AlignFromGeometry fills the alignment of reflector i from known
// positions — the installation-time shortcut for simulations and the
// upper bound a perfect sweep would reach.
func (m *Manager) AlignFromGeometry(i int) error {
	if i < 0 || i >= len(m.entries) {
		return fmt.Errorf("linkmgr: reflector index %d out of range", i)
	}
	e := m.entries[i]
	return m.SetAlignment(i,
		geom.DirectionDeg(m.AP.Pos, e.Dev.Pos()),
		geom.DirectionDeg(e.Dev.Pos(), m.AP.Pos))
}

// EvaluateDirect steers AP and headset at each other and returns the
// direct-path SNR.
func (m *Manager) EvaluateDirect() float64 {
	m.AP.SteerToward(m.Headset.Pos)
	m.Headset.SteerToward(m.AP.Pos)
	return m.directSNR()
}

// EvaluateReflector configures the path through reflector i — AP beam
// from alignment, reflector RX beam from alignment, reflector TX beam and
// headset beam from pose tracking — runs gain control, and returns the
// delivered amplify-and-forward SNR. The second return is false when the
// path is unusable (unaligned, unstable, or saturated).
func (m *Manager) EvaluateReflector(i int) (float64, bool) {
	if i < 0 || i >= len(m.entries) {
		return math.Inf(-1), false
	}
	e := m.entries[i]
	if !e.Aligned || !e.Dev.Amp().Enabled() {
		return math.Inf(-1), false
	}
	dev := e.Dev

	// Beam configuration.
	m.AP.SteerTo(e.APBeamDeg)
	dev.SetRXBeam(e.IncidenceDeg)
	dev.SetTXBeam(geom.DirectionDeg(dev.Pos(), m.Headset.Pos))
	m.Headset.SteerToward(dev.Pos())

	// First hop: AP → reflector amplifier input, over the direct leg
	// with whatever blockage it suffers.
	leg1 := m.directLeg(slotLeg1(i), m.AP.Pos, dev.Pos(), m.AP.HeightM, dev.HeightM())
	inbound := m.AP.Budget.TXPowerDBm + m.AP.GainDBi(leg1.AoDDeg) -
		leg1.PropagationLossDB(m.AP.Budget.FreqHz) + dev.RXGainDBi(leg1.AoADeg)

	// Adaptive gain control at the current beams and drive level.
	if leak := dev.LeakageDB(); e.gainKeyOK && e.gainExt == inbound && e.gainLeak == leak {
		dev.Amp().SetGainWord(e.gainWord)
	} else {
		m.opt.Optimize(dev, inbound, m.GainCfg)
		e.gainKeyOK, e.gainExt, e.gainLeak, e.gainWord = true, inbound, leak, dev.Amp().GainWord()
	}
	if !dev.Stable() || dev.SaturatedAt(inbound) {
		return math.Inf(-1), false
	}

	// Second hop: reflector → headset.
	leg2 := m.directLeg(slotLeg2(i), dev.Pos(), m.Headset.Pos, dev.HeightM(), m.Headset.HeightM)
	hop2Gain := dev.Amp().GainDB() + dev.TXGainDBi(leg2.AoDDeg) -
		leg2.PropagationLossDB(m.AP.Budget.FreqHz) +
		m.Headset.GainDBi(leg2.AoADeg) - m.AP.Budget.ImplLossDB

	hop1 := relay.HopBudget{
		SignalDBm: inbound,
		NoiseDBm:  units.ThermalNoiseDBm(m.AP.Budget.BandwidthHz, dev.NoiseFigureDB()),
	}
	headsetNoise := m.Headset.Budget.NoiseFloorDBm()
	return relay.EndToEnd(hop1, hop2Gain, headsetNoise), true
}

// EvaluateReflectorFrozen computes the SNR through reflector i with its
// beams and amplifier gain exactly as they are — no re-steering and no
// gain re-optimization. This models a system without pose-driven
// tracking: the reflector keeps whatever configuration its last
// alignment produced, however stale. The AP and headset still aim at
// their configured endpoints (the AP at the reflector, the headset at
// the reflector's position).
func (m *Manager) EvaluateReflectorFrozen(i int) (float64, bool) {
	if i < 0 || i >= len(m.entries) {
		return math.Inf(-1), false
	}
	e := m.entries[i]
	if !e.Aligned || !e.Dev.Amp().Enabled() {
		return math.Inf(-1), false
	}
	dev := e.Dev
	m.AP.SteerTo(e.APBeamDeg)
	m.Headset.SteerToward(dev.Pos())

	leg1 := m.directLeg(slotLeg1(i), m.AP.Pos, dev.Pos(), m.AP.HeightM, dev.HeightM())
	inbound := m.AP.Budget.TXPowerDBm + m.AP.GainDBi(leg1.AoDDeg) -
		leg1.PropagationLossDB(m.AP.Budget.FreqHz) + dev.RXGainDBi(leg1.AoADeg)
	if !dev.Stable() || dev.SaturatedAt(inbound) {
		return math.Inf(-1), false
	}
	leg2 := m.directLeg(slotLeg2(i), dev.Pos(), m.Headset.Pos, dev.HeightM(), m.Headset.HeightM)
	hop2Gain := dev.Amp().GainDB() + dev.TXGainDBi(leg2.AoDDeg) -
		leg2.PropagationLossDB(m.AP.Budget.FreqHz) +
		m.Headset.GainDBi(leg2.AoADeg) - m.AP.Budget.ImplLossDB
	hop1 := relay.HopBudget{
		SignalDBm: inbound,
		NoiseDBm:  units.ThermalNoiseDBm(m.AP.Budget.BandwidthHz, dev.NoiseFigureDB()),
	}
	return relay.EndToEnd(hop1, hop2Gain, m.Headset.Budget.NoiseFloorDBm()), true
}

// BestFrozen is Best without pose-driven reflector tracking: the direct
// path re-aims (electronic, local), but reflector beams and gains stay
// frozen at their last-applied values.
func (m *Manager) BestFrozen() LinkState {
	bestSNR := m.EvaluateDirect()
	choice := PathDirect
	reflIdx := -1
	for i := range m.entries {
		if snr, ok := m.EvaluateReflectorFrozen(i); ok && snr > bestSNR {
			bestSNR = snr
			choice = PathReflector
			reflIdx = i
		}
	}
	switch choice {
	case PathDirect:
		bestSNR = m.EvaluateDirect()
	case PathReflector:
		if snr, ok := m.EvaluateReflectorFrozen(reflIdx); ok {
			bestSNR = snr
		}
	}
	return m.stateFor(choice, reflIdx, bestSNR)
}

// PrimeReflector applies the tracked configuration for reflector i once
// (beams + gain control at the current pose); used to set up the frozen
// variant before a session starts.
func (m *Manager) PrimeReflector(i int) {
	m.EvaluateReflector(i)
}

// directLeg returns the direct path between two points at the given
// mounting heights, traced through the path cache under the given leg
// slot. The returned Path's Points alias the manager's scratch buffer
// and are overwritten by the next trace; callers use only the scalar
// fields (angles, length, losses), which are value copies.
func (m *Manager) directLeg(slot int, a, b geom.Vec, hA, hB float64) channel.Path {
	m.pathBuf = m.pc().TraceHInto(slot, m.pathBuf[:0], a, b, hA, hB)
	for _, p := range m.pathBuf {
		if p.Kind == channel.Direct {
			return p
		}
	}
	return m.pathBuf[0]
}

// Best evaluates every available path, selects the highest-SNR one,
// re-applies its configuration, and returns the resulting state.
func (m *Manager) Best() LinkState {
	bestSNR := m.EvaluateDirect()
	choice := PathDirect
	reflIdx := -1
	for i := range m.entries {
		if snr, ok := m.EvaluateReflector(i); ok && snr > bestSNR {
			bestSNR = snr
			choice = PathReflector
			reflIdx = i
		}
	}
	// Re-apply the winner (evaluation of later candidates moved beams).
	switch choice {
	case PathDirect:
		bestSNR = m.EvaluateDirect()
	case PathReflector:
		if snr, ok := m.EvaluateReflector(reflIdx); ok {
			bestSNR = snr
		}
	}
	return m.stateFor(choice, reflIdx, bestSNR)
}

// stateFor converts a path and SNR into a full LinkState and records the
// decision for later passive reassessment.
func (m *Manager) stateFor(choice PathChoice, reflIdx int, snr float64) LinkState {
	m.lastChoice = choice
	m.lastRefl = reflIdx
	st := LinkState{Choice: choice, ReflectorIdx: reflIdx, SNRdB: snr, MCSIndex: -1}
	if mcs, ok := phy.Best(snr); ok {
		st.RateBps = mcs.RateBps
		st.MCSIndex = mcs.Index
	} else {
		st.Choice = PathNone
	}
	st.MeetsRequirement = m.Req.MetByRate(st.RateBps)
	m.emitTransition(st)
	return st
}

// PathCode flattens a path choice into the compact integer code trace
// events carry: −1 for no usable path, 0 for the direct path, 1+i for
// reflector i.
func PathCode(choice PathChoice, reflIdx int) int32 {
	switch choice {
	case PathDirect:
		return 0
	case PathReflector:
		return int32(1 + reflIdx)
	default:
		return -1
	}
}

// emitTransition records link_up / link_down / handoff events when the
// carrying path changes. Before the first decision the link is treated
// as down, so the first usable state emits link_up.
func (m *Manager) emitTransition(st LinkState) {
	if m.Obs == nil {
		return
	}
	code := PathCode(st.Choice, st.ReflectorIdx)
	if !m.emitSeen {
		m.emitSeen = true
		m.emitCode = code
		if code >= 0 {
			m.Obs.Emit(obs.KindLinkUp, code, 0, st.SNRdB, 0)
		}
		return
	}
	prev := m.emitCode
	if code == prev {
		return
	}
	m.emitCode = code
	switch {
	case code < 0:
		m.Obs.Emit(obs.KindLinkDown, prev, 0, st.SNRdB, 0)
	case prev < 0:
		m.Obs.Emit(obs.KindLinkUp, code, 0, st.SNRdB, 0)
	default:
		m.Obs.Emit(obs.KindHandoff, prev, code, st.SNRdB, 0)
	}
}

// Reassess re-reads the SNR of the most recently selected path with
// every beam and gain exactly as it stands — no steering, no gain
// control, no path switching. This is what the headset's receiver
// actually measures between controller actions: the geometry may have
// moved (pose, blockers) while the configuration has not.
func (m *Manager) Reassess() LinkState {
	choice, idx := m.lastChoice, m.lastRefl
	var snr float64
	if choice == PathReflector && idx >= 0 && idx < len(m.entries) {
		snr = m.reflectorSNRAsIs(idx)
	} else {
		choice = PathDirect
		snr = m.directSNR()
	}
	st := m.stateFor(choice, idx, snr)
	// Reassessment must not upgrade PathNone back: keep the decision.
	m.lastChoice, m.lastRefl = choice, idx
	m.Obs.Emit(obs.KindReassess, PathCode(st.Choice, st.ReflectorIdx), 0, st.SNRdB, st.RateBps)
	return st
}

// reflectorSNRAsIs computes the amplify-and-forward SNR through entry i
// without touching any beam or gain.
func (m *Manager) reflectorSNRAsIs(i int) float64 {
	e := m.entries[i]
	dev := e.Dev
	if !dev.Amp().Enabled() {
		return math.Inf(-1)
	}
	leg1 := m.directLeg(slotLeg1(i), m.AP.Pos, dev.Pos(), m.AP.HeightM, dev.HeightM())
	inbound := m.AP.Budget.TXPowerDBm + m.AP.GainDBi(leg1.AoDDeg) -
		leg1.PropagationLossDB(m.AP.Budget.FreqHz) + dev.RXGainDBi(leg1.AoADeg)
	if !dev.Stable() || dev.SaturatedAt(inbound) {
		return math.Inf(-1)
	}
	leg2 := m.directLeg(slotLeg2(i), dev.Pos(), m.Headset.Pos, dev.HeightM(), m.Headset.HeightM)
	hop2Gain := dev.Amp().GainDB() + dev.TXGainDBi(leg2.AoDDeg) -
		leg2.PropagationLossDB(m.AP.Budget.FreqHz) +
		m.Headset.GainDBi(leg2.AoADeg) - m.AP.Budget.ImplLossDB
	hop1 := relay.HopBudget{
		SignalDBm: inbound,
		NoiseDBm:  units.ThermalNoiseDBm(m.AP.Budget.BandwidthHz, dev.NoiseFigureDB()),
	}
	return relay.EndToEnd(hop1, hop2Gain, m.Headset.Budget.NoiseFloorDBm())
}

// Step updates the headset pose from the VR tracking system and returns
// the re-evaluated link state — the fast pose-driven tracking loop the
// paper's §6 proposes, with no sweep in the loop.
func (m *Manager) Step(pos geom.Vec, yawDeg float64) LinkState {
	m.Headset.MoveTo(pos)
	m.Headset.SetYaw(yawDeg)
	return m.Best()
}
