package linkmgr

import (
	"math"
	"strings"
	"testing"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
)

// world builds the §5.2 testbed: AP in the south-west corner facing the
// room diagonal, reflector in the opposite corner facing back (the paper
// places them in opposite corners). Head yaw matters: the headset's
// array steers only ±75° of where the wearer faces, so each test picks a
// pose from which its relevant endpoint is visible — exactly the
// pose-dependence MoVR exists to solve.
func world(hsPos geom.Vec, yawDeg float64) (*room.Room, *Manager) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), b)
	hs := radio.NewHeadset(hsPos, antenna.Default(yawDeg), b)
	m := New(tr, ap, hs)
	dev := reflector.Default(geom.V(4.6, 4.6), 225)
	link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, 1)
	i := m.AddReflector(dev, link)
	if err := m.AlignFromGeometry(i); err != nil {
		panic(err)
	}
	return rm, m
}

func TestDirectChosenWhenClear(t *testing.T) {
	// Headset right next to the AP, facing it: the short direct path
	// beats any relay detour (and the reflector sits behind the head).
	_, m := world(geom.V(1.2, 1.2), 225)
	st := m.Best()
	if st.Choice != PathDirect {
		t.Fatalf("choice = %v (snr %v), want direct next to the AP", st.Choice, st.SNRdB)
	}
	if st.SNRdB < 28 {
		t.Errorf("close-range direct SNR = %v, want 30ish", st.SNRdB)
	}
	if !st.MeetsRequirement {
		t.Error("clear LOS should meet the VR requirement")
	}
	if st.MCSIndex < 0 {
		t.Error("no MCS selected")
	}
}

func TestReflectorRescuesBlockage(t *testing.T) {
	// Mid-room headset facing the reflector corner (head turned away
	// from the AP) and a hand blocking the direct path: both Fig 2
	// failure modes at once. The reflector must carry the stream.
	rm, m := world(geom.V(3.4, 2.4), 60)
	mid := m.AP.Pos.Lerp(m.Headset.Pos, 0.5)
	rm.AddObstacle(room.Hand(mid))

	st := m.Best()
	if st.Choice != PathReflector {
		t.Fatalf("choice = %v (snr %v), want reflector under blockage", st.Choice, st.SNRdB)
	}
	if !st.MeetsRequirement {
		t.Errorf("MoVR path should sustain VR rate, got %v", st)
	}
	direct := m.EvaluateDirect()
	if st.SNRdB < direct+5 {
		t.Errorf("reflector SNR %v not clearly above blocked direct %v", st.SNRdB, direct)
	}
	// The blocked direct path alone must fail the requirement — that is
	// the paper's premise (§3).
	if m.Req.MetBySNR(direct) {
		t.Errorf("blocked direct path at %v dB should fail the requirement", direct)
	}
}

func TestReflectorCanBeatLOS(t *testing.T) {
	// §5.2: MoVR can exceed the unblocked LOS SNR when the headset is
	// far from the AP — the amplifier more than repays the two-hop
	// spreading loss. Each path is measured with the head facing it.
	_, m := world(geom.V(3.4, 2.4), 214)
	direct := m.EvaluateDirect()
	m.Headset.SetYaw(60)
	snr, ok := m.EvaluateReflector(0)
	if !ok {
		t.Fatal("reflector path should be usable")
	}
	if snr < direct {
		t.Errorf("MoVR %v dB below LOS %v dB in favourable geometry", snr, direct)
	}
}

func TestHeadRotationHandled(t *testing.T) {
	// Fig 2's first scenario: the user rotates her head so the AP falls
	// behind the headset array; the reflector remains in view and the
	// controller must switch to it using pose alone.
	_, m := world(geom.V(3.4, 2.4), 214)
	if st := m.Best(); st.Choice != PathDirect {
		t.Fatalf("setup: facing the AP should pick direct, got %v", st)
	}
	st := m.Step(geom.V(3.4, 2.4), 60) // turn the head toward the far corner
	if st.Choice != PathReflector {
		t.Fatalf("choice = %v (snr %v), want reflector when head faces away from AP", st.Choice, st.SNRdB)
	}
	if !st.MeetsRequirement {
		t.Errorf("rotated-head state should still meet requirement: %v", st)
	}
}

func TestUnalignedReflectorUnusable(t *testing.T) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), b)
	hs := radio.NewHeadset(geom.V(3, 2.5), antenna.Default(180), b)
	m := New(tr, ap, hs)
	dev := reflector.Default(geom.V(4.6, 4.6), 225)
	m.AddReflector(dev, control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, 1))
	if _, ok := m.EvaluateReflector(0); ok {
		t.Error("unaligned reflector should be unusable")
	}
	if _, ok := m.EvaluateReflector(5); ok {
		t.Error("bad index should be unusable")
	}
	if err := m.SetAlignment(9, 0, 0); err == nil {
		t.Error("SetAlignment out of range should error")
	}
	if err := m.AlignFromGeometry(-1); err == nil {
		t.Error("AlignFromGeometry out of range should error")
	}
	if len(m.Reflectors()) != 1 {
		t.Error("Reflectors() wrong")
	}
}

func TestTwoReflectorsPickBetter(t *testing.T) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), b)
	hs := radio.NewHeadset(geom.V(3.4, 2.4), antenna.Default(60), b)
	m := New(tr, ap, hs)

	near := reflector.Default(geom.V(4.6, 4.6), 225) // opposite corner, clear legs
	far := reflector.Default(geom.V(2.5, 5), 270)    // north wall; its AP leg gets blocked
	for _, dev := range []*reflector.Reflector{near, far} {
		i := m.AddReflector(dev, control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, 1))
		if err := m.AlignFromGeometry(i); err != nil {
			t.Fatal(err)
		}
	}
	// A bystander blocks the AP leg of the north-wall reflector.
	rm.AddObstacle(room.Body(ap.Pos.Lerp(far.Pos(), 0.5)))
	st := m.Best()
	if st.Choice != PathReflector {
		t.Fatalf("choice = %v (snr %v)", st.Choice, st.SNRdB)
	}
	if st.ReflectorIdx != 0 {
		t.Errorf("picked reflector %d, want the clear one (0)", st.ReflectorIdx)
	}
}

func TestBestReappliesWinner(t *testing.T) {
	// After Best() returns direct, the AP must actually be steered at
	// the headset (not left pointing at the last-evaluated reflector).
	_, m := world(geom.V(1.2, 1.2), 225)
	st := m.Best()
	if st.Choice != PathDirect {
		t.Fatalf("setup: want direct, got %v", st.Choice)
	}
	wantAP := geom.DirectionDeg(m.AP.Pos, m.Headset.Pos)
	if math.Abs(m.AP.Array.SteeringDeg()-wantAP) > 1 {
		t.Errorf("AP beam %v, want %v (re-applied)", m.AP.Array.SteeringDeg(), wantAP)
	}
}

func TestDeadLinkState(t *testing.T) {
	rm, m := world(geom.V(3.4, 2.4), 200)
	// Entomb the headset in a ring of bodies — the state must degrade
	// gracefully rather than panic.
	for i := 0; i < 8; i++ {
		rm.AddObstacle(room.Body(geom.FromPolar(m.Headset.Pos, float64(i)*45, 0.4)))
	}
	st := m.Best()
	if st.MeetsRequirement {
		t.Errorf("entombed headset should not meet requirement: %v", st)
	}
	if st.RateBps > 0 && st.MCSIndex < 0 {
		t.Error("inconsistent rate/MCS")
	}
}

func TestStrings(t *testing.T) {
	if PathDirect.String() != "direct" || PathReflector.String() != "reflector" ||
		PathNone.String() != "none" || !strings.Contains(PathChoice(9).String(), "unknown") {
		t.Error("PathChoice strings wrong")
	}
	_, m := world(geom.V(1.2, 1.2), 225)
	st := m.Best()
	if !strings.Contains(st.String(), "snr=") {
		t.Errorf("LinkState.String = %q", st.String())
	}
}
