package linkmgr

// Allocation guards for the tracking hot path: a steady-state controller
// step — direct evaluation, reflector evaluation with gain control, MCS
// selection — must perform zero heap allocations once the manager's
// tracer scratch has warmed up. This is the per-step budget every fleet
// session and movrd job pays at the tracking cadence.

import (
	"testing"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
)

// allocTestManager wires the standard office testbed with one aligned
// reflector — the configuration every session steps through.
func allocTestManager(tb testing.TB) *Manager {
	tb.Helper()
	rm := room.NewOffice5x5()
	rm.AddObstacle(room.Body(geom.V(2.4, 2.6)))
	budget := channel.DefaultBudget()
	tr := channel.NewTracer(rm, budget.FreqHz, 1)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), budget)
	hs := radio.NewHeadset(geom.V(3.4, 2.4), antenna.Default(60), budget)
	m := New(tr, ap, hs)
	dev := reflector.Default(geom.V(4.6, 4.6), 225)
	link := control.NewLink(reflector.NewController(dev), 0, 0, 1)
	idx := m.AddReflector(dev, link)
	if err := m.AlignFromGeometry(idx); err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestStepZeroAllocs guards the pose-tracking step.
func TestStepZeroAllocs(t *testing.T) {
	m := allocTestManager(t)
	// Warm-up grows the scratch buffer (and any lazy state downstream).
	m.Step(geom.V(3.4, 2.4), 60)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		m.Step(geom.V(3.4, 2.4), float64(40+i%40))
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReassessZeroAllocs guards the passive data-plane re-read that runs
// at the (faster) world-tick cadence.
func TestReassessZeroAllocs(t *testing.T) {
	m := allocTestManager(t)
	m.Step(geom.V(3.4, 2.4), 60)
	m.Reassess()
	allocs := testing.AllocsPerRun(200, func() {
		m.Reassess()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reassess allocates %.1f objects/op, want 0", allocs)
	}
}
