package linkmgr

import (
	"math"
	"testing"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

func TestReassessTracksGeometryWithoutSteering(t *testing.T) {
	_, m := world(geom.V(3.4, 2.4), 60)
	st := m.Best()
	if st.Choice != PathReflector {
		t.Fatalf("setup: want reflector, got %v", st)
	}
	apBeam := m.AP.Array.SteeringDeg()

	// With unchanged geometry, reassessment reads the same SNR and
	// moves no beam.
	re := m.Reassess()
	if math.Abs(re.SNRdB-st.SNRdB) > 0.5 {
		t.Errorf("reassess with unchanged geometry moved SNR %v -> %v", st.SNRdB, re.SNRdB)
	}
	if m.AP.Array.SteeringDeg() != apBeam {
		t.Error("Reassess must not steer the AP")
	}
}

func TestReassessSeesNewBlockage(t *testing.T) {
	rm, m := world(geom.V(3.4, 2.4), 60)
	st := m.Best()
	if st.Choice != PathReflector {
		t.Fatalf("setup: want reflector, got %v", st)
	}
	// Block the reflector→headset leg close to the headset (the ray is
	// near head height there).
	dev := m.Reflectors()[0].Dev
	blocker := dev.Pos().Lerp(m.Headset.Pos, 0.9)
	rm.AddObstacle(room.Body(blocker))
	re := m.Reassess()
	if re.SNRdB > st.SNRdB-8 {
		t.Errorf("reassess missed new blockage: %v -> %v", st.SNRdB, re.SNRdB)
	}
	// The decision label is unchanged — reassessment reports, it does
	// not re-decide.
	if re.ReflectorIdx != st.ReflectorIdx {
		t.Error("Reassess must not switch paths")
	}
}

func TestReassessDirectPath(t *testing.T) {
	_, m := world(geom.V(1.2, 1.2), 225)
	st := m.Best()
	if st.Choice != PathDirect {
		t.Fatalf("setup: want direct, got %v", st)
	}
	re := m.Reassess()
	if math.Abs(re.SNRdB-st.SNRdB) > 0.5 {
		t.Errorf("direct reassess: %v vs %v", re.SNRdB, st.SNRdB)
	}
}

func TestReassessBeforeAnyDecision(t *testing.T) {
	_, m := world(geom.V(2.5, 2.5), 225)
	// No Best() yet: Reassess defaults to the direct path and must not
	// panic.
	re := m.Reassess()
	if re.Choice == PathReflector {
		t.Errorf("undecided manager should reassess direct, got %v", re)
	}
}

func TestBestFrozenUsesStaleBeams(t *testing.T) {
	_, m := world(geom.V(3.4, 2.4), 60)
	if st := m.Best(); st.Choice != PathReflector {
		t.Fatalf("setup: want reflector, got %v", st)
	}
	// The player moves across the room; frozen beams should serve the
	// new pose worse than re-tracked beams.
	m.Headset.MoveTo(geom.V(1.2, 3.8))
	m.Headset.SetYaw(10)
	frozen := m.BestFrozen()
	tracked := m.Best()
	if frozen.SNRdB > tracked.SNRdB+1e-9 {
		t.Errorf("frozen %v should not beat tracked %v", frozen.SNRdB, tracked.SNRdB)
	}
}

func TestPrimeReflectorAppliesConfiguration(t *testing.T) {
	_, m := world(geom.V(3.4, 2.4), 60)
	dev := m.Reflectors()[0].Dev
	before := dev.TXBeamDeg()
	m.Headset.MoveTo(geom.V(2.0, 3.9))
	m.PrimeReflector(0)
	after := dev.TXBeamDeg()
	if before == after {
		t.Error("PrimeReflector should re-point the TX beam at the new pose")
	}
	wantDir := geom.DirectionDeg(dev.Pos(), m.Headset.Pos)
	if math.Abs(units.AngleDiffDeg(after, wantDir)) > 1 {
		t.Errorf("TX beam %v, want toward headset %v", after, wantDir)
	}
}

func TestDisabledAmpUnusableEverywhere(t *testing.T) {
	_, m := world(geom.V(3.4, 2.4), 60)
	if st := m.Best(); st.Choice != PathReflector {
		t.Fatalf("setup: want reflector, got %v", st)
	}
	m.Reflectors()[0].Dev.Amp().SetEnabled(false)
	if _, ok := m.EvaluateReflector(0); ok {
		t.Error("EvaluateReflector should reject a dead device")
	}
	if _, ok := m.EvaluateReflectorFrozen(0); ok {
		t.Error("EvaluateReflectorFrozen should reject a dead device")
	}
	if snr := m.reflectorSNRAsIs(0); !math.IsInf(snr, -1) {
		t.Error("reflectorSNRAsIs should report -Inf for a dead device")
	}
}
