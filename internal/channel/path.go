// Package channel implements the mmWave propagation model: a ray tracer
// over the room geometry (direct path plus first- and second-order
// specular wall reflections via the image method), knife-edge diffraction
// losses for obstacles, and the link-budget arithmetic that converts a
// traced path into received power and SNR.
//
// The model captures the three facts the paper's measurements hinge on
// (§3): a clear line-of-sight mmWave link has ample SNR; blocking it with
// a hand/head/body costs 14-30 dB; and falling back to wall reflections
// costs ~16 dB because "walls are not perfect reflectors" and reflected
// paths are longer.
//
// # Hot-path API
//
// Tracing runs on every simulation timestep of every session, so the
// tracer is built for allocation-free steady state: NewTracer precomputes
// the per-wall mirror-image transforms and material losses once, and the
// TraceInto/TraceHInto entry points write into a caller-retained []Path
// scratch buffer, reusing both the slice and the per-path Points backing
// arrays on every call. Trace/TraceH remain as thin allocating wrappers
// for callers that do not keep a buffer. Both produce bit-identical Path
// values (the golden tests in golden_test.go enforce this against a
// frozen reference implementation).
//
// # Temporal coherence
//
// Simulation steps move endpoints and obstacles millimetres at a time,
// so last tick's path set is almost always structurally valid.
// PathCache exploits that: callers give each recurring trace (a link
// leg) a stable slot, and every query is served from one of three
// tiers — a hit when nothing relevant moved, a revalidation when only
// obstacles moved (each cached path's per-obstacle blockage legs are
// re-checked and re-summed in room-obstacle order), or a full re-trace
// when endpoints, the wall set, or the obstacle set changed. The
// revalidation tier recomputes exactly the float expressions a fresh
// trace would, in the same order, so all three tiers return
// bit-identical paths (pinned by a 400-step motion fuzz in
// pathcache_test.go) and all three run allocation-free in steady
// state.
package channel

import (
	"math"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

// PathKind distinguishes direct from wall-reflected rays.
type PathKind int

const (
	// Direct is the straight-line path.
	Direct PathKind = iota
	// Reflected is a specular wall-reflection path (one or two bounces).
	Reflected
)

// String returns a human-readable path kind.
func (k PathKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Reflected:
		return "reflected"
	default:
		return "unknown"
	}
}

// Path is one propagation ray from a transmitter to a receiver.
type Path struct {
	// Kind is Direct or Reflected.
	Kind PathKind

	// Points traces the ray: transmitter, bounce points (if any),
	// receiver. For paths produced by TraceInto/TraceHInto the backing
	// array belongs to the scratch buffer and is overwritten by the
	// next trace into the same buffer.
	Points []geom.Vec

	// Bounces is the number of wall reflections (0 for direct).
	Bounces int

	// AoDDeg is the angle of departure at the transmitter (world deg).
	AoDDeg float64

	// AoADeg is the angle of arrival at the receiver, i.e. the direction
	// the receiver must point its beam (world deg).
	AoADeg float64

	// LengthM is the total unfolded path length.
	LengthM float64

	// ReflLossDB is the total specular reflection loss over all bounces.
	ReflLossDB float64

	// BlockLossDB is the total obstacle diffraction/shadowing loss over
	// all legs.
	BlockLossDB float64
}

// PropagationLossDB returns the path's total propagation loss at the given
// carrier frequency: free-space spreading over the unfolded length plus
// atmospheric absorption, reflection, and blockage losses.
func (p Path) PropagationLossDB(freqHz float64) float64 {
	return units.FSPL(p.LengthM, freqHz) + AtmosphericLossDB(p.LengthM, freqHz) +
		p.ReflLossDB + p.BlockLossDB
}

// AtmosphericLossDB returns gaseous absorption over a path. It matters
// only near the 60 GHz oxygen resonance (~15 dB/km), where 802.11ad
// operates; at 24 GHz it is negligible (~0.1 dB/km). Indoor distances
// make both small, but the model keeps the physics honest when
// experiments switch carriers.
func AtmosphericLossDB(distanceM, freqHz float64) float64 {
	var dBPerKm float64
	switch {
	case freqHz >= 57e9 && freqHz <= 64e9:
		dBPerKm = 15 // oxygen absorption band
	case freqHz >= 20e9:
		dBPerKm = 0.1
	default:
		dBPerKm = 0.01
	}
	return dBPerKm * distanceM / 1000
}

// TransmissionLossDB returns the through-wall penetration loss of a
// partition built from mat at mmWave — the per-wall attenuation a
// signal leaking into an adjacent bay pays, complementing the
// per-bounce reflection loss (Material.ReflLossDB) the tracer charges
// inside a room. The two are calibrated together: a strong specular
// reflector (metal, low ReflLossDB) passes almost nothing through,
// while a lossy reflector like drywall is also the most transparent —
// consistent with published 60 GHz penetration measurements (drywall
// ≈6–10 dB, glass a few dB, concrete and metal effectively opaque).
func TransmissionLossDB(mat room.Material) float64 {
	switch mat.Name {
	case "drywall":
		return 8
	case "glass":
		return 4
	case "wood", "whiteboard":
		return 7
	case "concrete":
		return 30
	case "metal":
		return 40
	}
	// Unknown materials: anti-correlate with the reflection loss so the
	// pair stays physically coherent (better reflectors transmit less).
	return 2 + 2*(16-mat.ReflLossDB)
}

// Blocked reports whether the path suffers any obstacle loss beyond
// the given threshold (default sense: any loss at all).
func (p Path) Blocked(thresholdDB float64) bool { return p.BlockLossDB > thresholdDB }

// Standard mounting heights in the testbed. The floor plan is 2-D, but
// blockage is computed in 2.5-D: a ray between elevated endpoints can
// pass over a person's head, which is what lets the wall-mounted
// reflector keep a clear view of the AP while players mill about below.
const (
	// HeightAPM is the AP's mount height (tripod next to the PC).
	HeightAPM = 1.5

	// HeightReflectorM is the reflector's wall-mount height.
	HeightReflectorM = 2.3

	// HeightHeadsetM is the headset height on a standing player.
	HeightHeadsetM = 1.7

	// DefaultEndpointHeightM is used when callers do not specify.
	DefaultEndpointHeightM = HeightHeadsetM
)

// wallGeom is the per-wall precompute: the segment, the mirror-image
// transform terms (direction and squared length), the unit normal, and
// the material loss — everything the image method re-derived from scratch
// on every trace before this cache existed. The arithmetic downstream
// uses these cached values in exactly the operation order of
// geom.MirrorPoint / geom.SpecularPoint, so traced paths stay
// bit-identical.
type wallGeom struct {
	seg        geom.Segment
	d          geom.Vec // seg.B − seg.A
	len2       float64  // d·d (0 for a degenerate wall)
	n          geom.Vec // unit normal (zero vector for a degenerate wall)
	reflLossDB float64
}

// mirror returns p reflected across the wall's infinite line — the image
// source of the image method — using the precomputed transform.
func (w *wallGeom) mirror(p geom.Vec) geom.Vec {
	if w.len2 == 0 {
		return p
	}
	t := p.Sub(w.seg.A).Dot(w.d) / w.len2
	foot := w.seg.A.Add(w.d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// specular computes the point on the wall at which a ray from tx reflects
// specularly to reach rx, exactly as geom.SpecularPoint but with the
// wall's normal and mirror transform precomputed.
func (w *wallGeom) specular(tx, rx geom.Vec) (geom.Vec, bool) {
	dTx := tx.Sub(w.seg.A).Dot(w.n)
	dRx := rx.Sub(w.seg.A).Dot(w.n)
	// Both endpoints must be strictly on the same side of the wall for a
	// physical reflection off the wall's face.
	if dTx*dRx <= 1e-15 {
		return geom.Vec{}, false
	}
	img := w.mirror(tx)
	hit, ok := w.seg.Intersect(geom.Seg(img, rx))
	if !ok {
		return geom.Vec{}, false
	}
	return hit, true
}

// Tracer finds propagation paths between points in a room.
//
// A Tracer whose wall set and carrier are unchanged since NewTracer (or
// since the last single-threaded trace) is safe for concurrent readers:
// steady-state traces only read the precomputed caches. Adding walls or
// retuning FreqHz triggers an unsynchronized lazy cache rebuild on the
// next trace, so such mutations — unlike obstacle moves, which touch no
// tracer state — must not race with traces from other goroutines; do
// them from one goroutine before fanning out.
type Tracer struct {
	// Room is the environment to trace in.
	Room *room.Room

	// FreqHz is the carrier frequency (used by diffraction math).
	FreqHz float64

	// MaxBounces limits reflection order: 0 = direct only, 1 = direct +
	// single bounce, 2 adds double bounces.
	MaxBounces int

	// wallCache holds the per-wall precompute; wallsLen/wallsHead record
	// the room wall slice it was built from so AddWall after NewTracer
	// invalidates it (append changes length and usually the backing
	// array).
	wallCache []wallGeom
	wallsLen  int
	wallsHead *room.Wall

	// lambda caches units.Wavelength(FreqHz); lambdaFreq detects callers
	// that retune FreqHz after construction.
	lambda     float64
	lambdaFreq float64
}

// NewTracer returns a Tracer for the room at the given carrier with the
// given maximum reflection order (clamped to [0, 2]). The per-wall
// mirror-image transforms and material losses are precomputed here.
func NewTracer(rm *room.Room, freqHz float64, maxBounces int) *Tracer {
	if maxBounces < 0 {
		maxBounces = 0
	}
	if maxBounces > 2 {
		maxBounces = 2
	}
	t := &Tracer{Room: rm, FreqHz: freqHz, MaxBounces: maxBounces}
	t.rebuildWalls(rm.Walls())
	t.lambda = units.Wavelength(freqHz)
	t.lambdaFreq = freqHz
	return t
}

// rebuildWalls recomputes the per-wall cache from the given wall set.
func (t *Tracer) rebuildWalls(ws []room.Wall) {
	if cap(t.wallCache) < len(ws) {
		t.wallCache = make([]wallGeom, len(ws))
	}
	t.wallCache = t.wallCache[:len(ws)]
	for i, w := range ws {
		d := w.Seg.B.Sub(w.Seg.A)
		t.wallCache[i] = wallGeom{
			seg:        w.Seg,
			d:          d,
			len2:       d.Dot(d),
			n:          w.Seg.Normal(),
			reflLossDB: w.Mat.ReflLossDB,
		}
	}
	t.wallsLen = len(ws)
	if len(ws) > 0 {
		t.wallsHead = &ws[0]
	} else {
		t.wallsHead = nil
	}
}

// walls returns the per-wall cache, rebuilding it if the room's wall set
// changed since it was built (or the Tracer was constructed as a bare
// literal).
func (t *Tracer) walls() []wallGeom {
	ws := t.Room.Walls()
	if len(ws) != t.wallsLen || (len(ws) > 0 && &ws[0] != t.wallsHead) {
		t.rebuildWalls(ws)
	}
	return t.wallCache
}

// wavelength returns the cached carrier wavelength, recomputing if the
// caller retuned FreqHz after construction.
func (t *Tracer) wavelength() float64 {
	if t.FreqHz != t.lambdaFreq {
		t.lambda = units.Wavelength(t.FreqHz)
		t.lambdaFreq = t.FreqHz
	}
	return t.lambda
}

// Trace returns all propagation paths from tx to rx at the default
// (headset) endpoint heights. See TraceH.
func (t *Tracer) Trace(tx, rx geom.Vec) []Path {
	return t.TraceH(tx, rx, DefaultEndpointHeightM, DefaultEndpointHeightM)
}

// TraceH returns all propagation paths from tx (at height hTx metres) to
// rx (at height hRx) up to the configured reflection order: always the
// direct path (with whatever blockage loss it suffers), plus valid
// specular reflections. Paths are returned in ascending order of total
// propagation loss.
//
// TraceH allocates a fresh slice per call; steady-state loops should hold
// a scratch buffer and call TraceHInto instead.
func (t *Tracer) TraceH(tx, rx geom.Vec, hTx, hRx float64) []Path {
	return t.TraceHInto(nil, tx, rx, hTx, hRx)
}

// TraceInto is Trace writing into a caller-retained scratch buffer; see
// TraceHInto.
func (t *Tracer) TraceInto(dst []Path, tx, rx geom.Vec) []Path {
	return t.TraceHInto(dst, tx, rx, DefaultEndpointHeightM, DefaultEndpointHeightM)
}

// TraceHInto appends the traced paths to dst and returns the extended
// slice, reusing dst's capacity — including the Points backing array of
// every Path already within that capacity. The idiom is
//
//	buf = tracer.TraceHInto(buf[:0], tx, rx, hTx, hRx)
//
// which performs zero heap allocations once buf has warmed up. The
// returned paths (and their Points) alias the buffer: they are valid
// until the next trace into it, so callers that retain a Path across
// traces must copy the Points they need. Paths appended by one call are
// sorted ascending by total propagation loss among themselves.
func (t *Tracer) TraceHInto(dst []Path, tx, rx geom.Vec, hTx, hRx float64) []Path {
	base := len(dst)
	dst = t.traceHGen(dst, tx, rx, hTx, hRx)
	t.sortByLoss(dst[base:])
	return dst
}

// traceHGen appends the traced paths in generation order (direct, then
// single bounces in wall order, then double bounces in wall-pair order)
// without the final loss sort. PathCache records paths in this order so
// that its revalidated emissions re-run the identical stable sort the
// public entry points apply — ties (e.g. the mirror-image double-bounce
// pair off the same two walls) resolve exactly as a fresh trace would.
func (t *Tracer) traceHGen(dst []Path, tx, rx geom.Vec, hTx, hRx float64) []Path {
	dst = t.direct(dst, tx, rx, hTx, hRx)
	if t.MaxBounces >= 1 {
		dst = t.singleBounce(dst, tx, rx, hTx, hRx)
	}
	if t.MaxBounces >= 2 {
		dst = t.doubleBounce(dst, tx, rx, hTx, hRx)
	}
	return dst
}

// sortByLoss orders paths ascending by total propagation loss. The loss
// of each path is computed once into a (stack-resident) scratch array and
// the insertion sort compares the cached values — the comparisons, and
// therefore the final order, are identical to recomputing
// PropagationLossDB at every step as the pre-cache implementation did.
func (t *Tracer) sortByLoss(paths []Path) {
	var lossArr [128]float64
	var loss []float64
	if len(paths) <= len(lossArr) {
		loss = lossArr[:len(paths)]
	} else {
		loss = make([]float64, len(paths)) // >11 walls; never on the stock rooms
	}
	for i := range paths {
		loss[i] = paths[i].PropagationLossDB(t.FreqHz)
	}
	// Insertion sort; path counts are small.
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && loss[j] < loss[j-1]; j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
			loss[j], loss[j-1] = loss[j-1], loss[j]
		}
	}
}

// extendPaths grows dst by one element, reusing the slot (and its Points
// backing array) already present within dst's capacity when possible.
func extendPaths(dst []Path) []Path {
	if n := len(dst); n < cap(dst) {
		return dst[:n+1]
	}
	return append(dst, Path{})
}

// direct appends the straight-line path, accumulating obstacle losses.
func (t *Tracer) direct(dst []Path, tx, rx geom.Vec, hTx, hRx float64) []Path {
	dst = extendPaths(dst)
	p := &dst[len(dst)-1]
	pts := append(p.Points[:0], tx, rx)
	*p = Path{
		Kind:        Direct,
		Points:      pts,
		Bounces:     0,
		AoDDeg:      units.NormalizeDeg(geom.DirectionDeg(tx, rx)),
		AoADeg:      units.NormalizeDeg(geom.DirectionDeg(rx, tx)),
		LengthM:     tx.Dist(rx),
		BlockLossDB: t.legBlockageDB(tx, rx, hTx, hRx),
	}
	return dst
}

// singleBounce appends one-reflection paths off every wall. Bounce points
// are assumed at the interpolated ray height (walls span floor to
// ceiling).
func (t *Tracer) singleBounce(dst []Path, tx, rx geom.Vec, hTx, hRx float64) []Path {
	walls := t.walls()
	for wi := range walls {
		w := &walls[wi]
		hit, ok := w.specular(tx, rx)
		if !ok {
			continue
		}
		l1 := tx.Dist(hit)
		total := l1 + hit.Dist(rx)
		hHit := hTx + (hRx-hTx)*l1/total
		dst = extendPaths(dst)
		p := &dst[len(dst)-1]
		pts := append(p.Points[:0], tx, hit, rx)
		*p = Path{
			Kind:        Reflected,
			Points:      pts,
			Bounces:     1,
			AoDDeg:      units.NormalizeDeg(geom.DirectionDeg(tx, hit)),
			AoADeg:      units.NormalizeDeg(geom.DirectionDeg(rx, hit)),
			LengthM:     total,
			ReflLossDB:  w.reflLossDB,
			BlockLossDB: t.legBlockageDB(tx, hit, hTx, hHit) + t.legBlockageDB(hit, rx, hHit, hRx),
		}
	}
	return dst
}

// doubleBounce appends two-reflection paths off ordered wall pairs using
// the double image method.
func (t *Tracer) doubleBounce(dst []Path, tx, rx geom.Vec, hTx, hRx float64) []Path {
	walls := t.walls()
	for i := range walls {
		w1 := &walls[i]
		img1 := w1.mirror(tx)
		for j := range walls {
			if i == j {
				continue
			}
			w2 := &walls[j]
			// Reflection point on w2 comes from the second-order image.
			hit2, ok := w2.specular(img1, rx)
			if !ok {
				continue
			}
			// Reflection point on w1 from tx toward hit2.
			hit1, ok := w1.specular(tx, hit2)
			if !ok {
				continue
			}
			l1 := tx.Dist(hit1)
			l2 := hit1.Dist(hit2)
			l3 := hit2.Dist(rx)
			total := l1 + l2 + l3
			h1 := hTx + (hRx-hTx)*l1/total
			h2 := hTx + (hRx-hTx)*(l1+l2)/total
			dst = extendPaths(dst)
			p := &dst[len(dst)-1]
			pts := append(p.Points[:0], tx, hit1, hit2, rx)
			*p = Path{
				Kind:    Reflected,
				Points:  pts,
				Bounces: 2,
				AoDDeg:  units.NormalizeDeg(geom.DirectionDeg(tx, hit1)),
				AoADeg:  units.NormalizeDeg(geom.DirectionDeg(rx, hit2)),
				LengthM: total,
				ReflLossDB: w1.reflLossDB +
					w2.reflLossDB,
				BlockLossDB: t.legBlockageDB(tx, hit1, hTx, h1) +
					t.legBlockageDB(hit1, hit2, h1, h2) +
					t.legBlockageDB(hit2, rx, h2, hRx),
			}
		}
	}
	return dst
}

// legBlockageDB sums the knife-edge diffraction losses of all obstacles
// crossing or grazing the leg a→b with endpoint heights hA→hB.
func (t *Tracer) legBlockageDB(a, b geom.Vec, hA, hB float64) float64 {
	lambda := t.wavelength()
	seg := geom.Seg(a, b)
	total := 0.0
	for _, o := range t.Room.Obstacles() {
		total += obstacleLossDB(seg, o, lambda, hA, hB)
	}
	return total
}

// obstacleLossDB computes the shadowing loss a single cylindrical
// obstacle imposes on the leg. Horizontally the beam diffracts around
// both edges of the cylinder (double knife edge); vertically it can
// diffract over the obstacle's top when the ray runs above it. The beam
// takes the easiest escape, so the contribution is the minimum of the
// two, capped at the obstacle's material-dependent maximum.
func obstacleLossDB(seg geom.Segment, o room.Obstacle, lambda float64, hA, hB float64) float64 {
	closest := seg.ClosestPoint(o.Shape.C)
	dc := closest.Dist(o.Shape.C)
	d1 := seg.A.Dist(closest)
	d2 := seg.B.Dist(closest)
	if d1 < 1e-6 || d2 < 1e-6 {
		// The obstacle sits on top of an endpoint (e.g. the player's own
		// head next to the headset): treat centre-overlap as full shadow,
		// otherwise clear.
		if dc < o.Shape.R {
			return o.MaxLossDB
		}
		return 0
	}
	// Fresnel geometry factor.
	f := math.Sqrt(2 * (d1 + d2) / (lambda * d1 * d2))

	// Horizontal diffraction around the cylinder.
	var horiz float64
	if dc >= o.Shape.R {
		// Grazing/clear: single knife edge with clearance.
		horiz = knifeEdgeJ((o.Shape.R - dc) * f)
	} else {
		// Path cuts through the disc: both edges.
		horiz = knifeEdgeJ((o.Shape.R-dc)*f) + knifeEdgeJ((o.Shape.R+dc)*f)
	}

	// Vertical diffraction over the top: ray height at the obstacle.
	rayH := hA + (hB-hA)*d1/(d1+d2)
	vert := knifeEdgeJ((o.HeightM - rayH) * f)

	return math.Min(math.Min(horiz, vert), o.MaxLossDB)
}

// knifeEdgeJ is the ITU-R P.526 single knife-edge diffraction loss
// approximation, valid for v > −0.78; smaller v means full clearance and
// zero loss.
func knifeEdgeJ(v float64) float64 {
	if v <= -0.78 {
		return 0
	}
	return 6.9 + 20*math.Log10(math.Sqrt((v-0.1)*(v-0.1)+1)+v-0.1)
}
