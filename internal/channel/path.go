// Package channel implements the mmWave propagation model: a ray tracer
// over the room geometry (direct path plus first- and second-order
// specular wall reflections via the image method), knife-edge diffraction
// losses for obstacles, and the link-budget arithmetic that converts a
// traced path into received power and SNR.
//
// The model captures the three facts the paper's measurements hinge on
// (§3): a clear line-of-sight mmWave link has ample SNR; blocking it with
// a hand/head/body costs 14-30 dB; and falling back to wall reflections
// costs ~16 dB because "walls are not perfect reflectors" and reflected
// paths are longer.
package channel

import (
	"math"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

// PathKind distinguishes direct from wall-reflected rays.
type PathKind int

const (
	// Direct is the straight-line path.
	Direct PathKind = iota
	// Reflected is a specular wall-reflection path (one or two bounces).
	Reflected
)

// String returns a human-readable path kind.
func (k PathKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Reflected:
		return "reflected"
	default:
		return "unknown"
	}
}

// Path is one propagation ray from a transmitter to a receiver.
type Path struct {
	// Kind is Direct or Reflected.
	Kind PathKind

	// Points traces the ray: transmitter, bounce points (if any),
	// receiver.
	Points []geom.Vec

	// Bounces is the number of wall reflections (0 for direct).
	Bounces int

	// AoDDeg is the angle of departure at the transmitter (world deg).
	AoDDeg float64

	// AoADeg is the angle of arrival at the receiver, i.e. the direction
	// the receiver must point its beam (world deg).
	AoADeg float64

	// LengthM is the total unfolded path length.
	LengthM float64

	// ReflLossDB is the total specular reflection loss over all bounces.
	ReflLossDB float64

	// BlockLossDB is the total obstacle diffraction/shadowing loss over
	// all legs.
	BlockLossDB float64
}

// PropagationLossDB returns the path's total propagation loss at the given
// carrier frequency: free-space spreading over the unfolded length plus
// atmospheric absorption, reflection, and blockage losses.
func (p Path) PropagationLossDB(freqHz float64) float64 {
	return units.FSPL(p.LengthM, freqHz) + AtmosphericLossDB(p.LengthM, freqHz) +
		p.ReflLossDB + p.BlockLossDB
}

// AtmosphericLossDB returns gaseous absorption over a path. It matters
// only near the 60 GHz oxygen resonance (~15 dB/km), where 802.11ad
// operates; at 24 GHz it is negligible (~0.1 dB/km). Indoor distances
// make both small, but the model keeps the physics honest when
// experiments switch carriers.
func AtmosphericLossDB(distanceM, freqHz float64) float64 {
	var dBPerKm float64
	switch {
	case freqHz >= 57e9 && freqHz <= 64e9:
		dBPerKm = 15 // oxygen absorption band
	case freqHz >= 20e9:
		dBPerKm = 0.1
	default:
		dBPerKm = 0.01
	}
	return dBPerKm * distanceM / 1000
}

// Blocked reports whether the path suffers any obstacle loss beyond
// the given threshold (default sense: any loss at all).
func (p Path) Blocked(thresholdDB float64) bool { return p.BlockLossDB > thresholdDB }

// Standard mounting heights in the testbed. The floor plan is 2-D, but
// blockage is computed in 2.5-D: a ray between elevated endpoints can
// pass over a person's head, which is what lets the wall-mounted
// reflector keep a clear view of the AP while players mill about below.
const (
	// HeightAPM is the AP's mount height (tripod next to the PC).
	HeightAPM = 1.5

	// HeightReflectorM is the reflector's wall-mount height.
	HeightReflectorM = 2.3

	// HeightHeadsetM is the headset height on a standing player.
	HeightHeadsetM = 1.7

	// DefaultEndpointHeightM is used when callers do not specify.
	DefaultEndpointHeightM = HeightHeadsetM
)

// Tracer finds propagation paths between points in a room.
type Tracer struct {
	// Room is the environment to trace in.
	Room *room.Room

	// FreqHz is the carrier frequency (used by diffraction math).
	FreqHz float64

	// MaxBounces limits reflection order: 0 = direct only, 1 = direct +
	// single bounce, 2 adds double bounces.
	MaxBounces int
}

// NewTracer returns a Tracer for the room at the given carrier with the
// given maximum reflection order (clamped to [0, 2]).
func NewTracer(rm *room.Room, freqHz float64, maxBounces int) *Tracer {
	if maxBounces < 0 {
		maxBounces = 0
	}
	if maxBounces > 2 {
		maxBounces = 2
	}
	return &Tracer{Room: rm, FreqHz: freqHz, MaxBounces: maxBounces}
}

// Trace returns all propagation paths from tx to rx at the default
// (headset) endpoint heights. See TraceH.
func (t *Tracer) Trace(tx, rx geom.Vec) []Path {
	return t.TraceH(tx, rx, DefaultEndpointHeightM, DefaultEndpointHeightM)
}

// TraceH returns all propagation paths from tx (at height hTx metres) to
// rx (at height hRx) up to the configured reflection order: always the
// direct path (with whatever blockage loss it suffers), plus valid
// specular reflections. Paths are returned in ascending order of total
// propagation loss.
func (t *Tracer) TraceH(tx, rx geom.Vec, hTx, hRx float64) []Path {
	paths := []Path{t.direct(tx, rx, hTx, hRx)}
	if t.MaxBounces >= 1 {
		paths = append(paths, t.singleBounce(tx, rx, hTx, hRx)...)
	}
	if t.MaxBounces >= 2 {
		paths = append(paths, t.doubleBounce(tx, rx, hTx, hRx)...)
	}
	// Sort ascending by loss (insertion sort; path counts are small).
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && paths[j].PropagationLossDB(t.FreqHz) < paths[j-1].PropagationLossDB(t.FreqHz); j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
		}
	}
	return paths
}

// direct builds the straight-line path, accumulating obstacle losses.
func (t *Tracer) direct(tx, rx geom.Vec, hTx, hRx float64) Path {
	return Path{
		Kind:        Direct,
		Points:      []geom.Vec{tx, rx},
		Bounces:     0,
		AoDDeg:      units.NormalizeDeg(geom.DirectionDeg(tx, rx)),
		AoADeg:      units.NormalizeDeg(geom.DirectionDeg(rx, tx)),
		LengthM:     tx.Dist(rx),
		BlockLossDB: t.legBlockageDB(tx, rx, hTx, hRx),
	}
}

// singleBounce builds one-reflection paths off every wall. Bounce points
// are assumed at the interpolated ray height (walls span floor to
// ceiling).
func (t *Tracer) singleBounce(tx, rx geom.Vec, hTx, hRx float64) []Path {
	var paths []Path
	for _, w := range t.Room.Walls() {
		hit, ok := geom.SpecularPoint(tx, rx, w.Seg)
		if !ok {
			continue
		}
		l1 := tx.Dist(hit)
		total := l1 + hit.Dist(rx)
		hHit := hTx + (hRx-hTx)*l1/total
		p := Path{
			Kind:        Reflected,
			Points:      []geom.Vec{tx, hit, rx},
			Bounces:     1,
			AoDDeg:      units.NormalizeDeg(geom.DirectionDeg(tx, hit)),
			AoADeg:      units.NormalizeDeg(geom.DirectionDeg(rx, hit)),
			LengthM:     total,
			ReflLossDB:  w.Mat.ReflLossDB,
			BlockLossDB: t.legBlockageDB(tx, hit, hTx, hHit) + t.legBlockageDB(hit, rx, hHit, hRx),
		}
		paths = append(paths, p)
	}
	return paths
}

// doubleBounce builds two-reflection paths off ordered wall pairs using
// the double image method.
func (t *Tracer) doubleBounce(tx, rx geom.Vec, hTx, hRx float64) []Path {
	var paths []Path
	walls := t.Room.Walls()
	for i, w1 := range walls {
		img1 := geom.MirrorPoint(tx, w1.Seg)
		for j, w2 := range walls {
			if i == j {
				continue
			}
			// Reflection point on w2 comes from the second-order image.
			hit2, ok := geom.SpecularPoint(img1, rx, w2.Seg)
			if !ok {
				continue
			}
			// Reflection point on w1 from tx toward hit2.
			hit1, ok := geom.SpecularPoint(tx, hit2, w1.Seg)
			if !ok {
				continue
			}
			l1 := tx.Dist(hit1)
			l2 := hit1.Dist(hit2)
			l3 := hit2.Dist(rx)
			total := l1 + l2 + l3
			h1 := hTx + (hRx-hTx)*l1/total
			h2 := hTx + (hRx-hTx)*(l1+l2)/total
			p := Path{
				Kind:    Reflected,
				Points:  []geom.Vec{tx, hit1, hit2, rx},
				Bounces: 2,
				AoDDeg:  units.NormalizeDeg(geom.DirectionDeg(tx, hit1)),
				AoADeg:  units.NormalizeDeg(geom.DirectionDeg(rx, hit2)),
				LengthM: total,
				ReflLossDB: w1.Mat.ReflLossDB +
					w2.Mat.ReflLossDB,
				BlockLossDB: t.legBlockageDB(tx, hit1, hTx, h1) +
					t.legBlockageDB(hit1, hit2, h1, h2) +
					t.legBlockageDB(hit2, rx, h2, hRx),
			}
			paths = append(paths, p)
		}
	}
	return paths
}

// legBlockageDB sums the knife-edge diffraction losses of all obstacles
// crossing or grazing the leg a→b with endpoint heights hA→hB.
func (t *Tracer) legBlockageDB(a, b geom.Vec, hA, hB float64) float64 {
	lambda := units.Wavelength(t.FreqHz)
	seg := geom.Seg(a, b)
	total := 0.0
	for _, o := range t.Room.Obstacles() {
		total += obstacleLossDB(seg, o, lambda, hA, hB)
	}
	return total
}

// obstacleLossDB computes the shadowing loss a single cylindrical
// obstacle imposes on the leg. Horizontally the beam diffracts around
// both edges of the cylinder (double knife edge); vertically it can
// diffract over the obstacle's top when the ray runs above it. The beam
// takes the easiest escape, so the contribution is the minimum of the
// two, capped at the obstacle's material-dependent maximum.
func obstacleLossDB(seg geom.Segment, o room.Obstacle, lambda float64, hA, hB float64) float64 {
	closest := seg.ClosestPoint(o.Shape.C)
	dc := closest.Dist(o.Shape.C)
	d1 := seg.A.Dist(closest)
	d2 := seg.B.Dist(closest)
	if d1 < 1e-6 || d2 < 1e-6 {
		// The obstacle sits on top of an endpoint (e.g. the player's own
		// head next to the headset): treat centre-overlap as full shadow,
		// otherwise clear.
		if dc < o.Shape.R {
			return o.MaxLossDB
		}
		return 0
	}
	// Fresnel geometry factor.
	f := math.Sqrt(2 * (d1 + d2) / (lambda * d1 * d2))

	// Horizontal diffraction around the cylinder.
	var horiz float64
	if dc >= o.Shape.R {
		// Grazing/clear: single knife edge with clearance.
		horiz = knifeEdgeJ((o.Shape.R - dc) * f)
	} else {
		// Path cuts through the disc: both edges.
		horiz = knifeEdgeJ((o.Shape.R-dc)*f) + knifeEdgeJ((o.Shape.R+dc)*f)
	}

	// Vertical diffraction over the top: ray height at the obstacle.
	rayH := hA + (hB-hA)*d1/(d1+d2)
	vert := knifeEdgeJ((o.HeightM - rayH) * f)

	return math.Min(math.Min(horiz, vert), o.MaxLossDB)
}

// knifeEdgeJ is the ITU-R P.526 single knife-edge diffraction loss
// approximation, valid for v > −0.78; smaller v means full clearance and
// zero loss.
func knifeEdgeJ(v float64) float64 {
	if v <= -0.78 {
		return 0
	}
	return 6.9 + 20*math.Log10(math.Sqrt((v-0.1)*(v-0.1)+1)+v-0.1)
}
