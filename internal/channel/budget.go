package channel

import (
	"math"

	"github.com/movr-sim/movr/internal/units"
)

// Budget holds the link-budget parameters shared by every SNR computation
// in the simulator.
type Budget struct {
	// FreqHz is the carrier frequency.
	FreqHz float64

	// TXPowerDBm is the transmitter's conducted output power.
	TXPowerDBm float64

	// BandwidthHz is the receiver's noise bandwidth.
	BandwidthHz float64

	// NoiseFigureDB is the receiver's noise figure.
	NoiseFigureDB float64

	// ImplLossDB lumps implementation losses (filter insertion, EVM
	// floor, pointing jitter) that the prototype exhibits but idealized
	// math does not.
	ImplLossDB float64
}

// DefaultBudget returns the link budget calibrated so that the paper's
// testbed geometry reproduces Fig 3's ≈25 dB mean line-of-sight SNR at
// 24 GHz with the default phased arrays.
func DefaultBudget() Budget {
	return Budget{
		FreqHz:        units.ISM24GHz,
		TXPowerDBm:    0,
		BandwidthHz:   units.Channel80211adBandwidth,
		NoiseFigureDB: 7,
		ImplLossDB:    10,
	}
}

// Budget60GHz returns the link budget for a 60 GHz 802.11ad deployment:
// same architecture, quadruple the carrier (so ~8 dB more free-space
// loss at equal distance, typically bought back with larger arrays —
// which is why 60 GHz consumer radios pack 32+ elements).
func Budget60GHz() Budget {
	b := DefaultBudget()
	b.FreqHz = units.Band60GHz
	return b
}

// NoiseFloorDBm returns the receiver noise floor for this budget.
func (b Budget) NoiseFloorDBm() float64 {
	return units.ThermalNoiseDBm(b.BandwidthHz, b.NoiseFigureDB)
}

// RXPowerDBm returns the power received over a single path given the
// realized antenna gains toward that path's departure and arrival angles.
func (b Budget) RXPowerDBm(p Path, txGainDBi, rxGainDBi float64) float64 {
	return b.TXPowerDBm + txGainDBi + rxGainDBi - p.PropagationLossDB(b.FreqHz) - b.ImplLossDB
}

// SNRdB converts a received power into SNR against this budget's noise
// floor.
func (b Budget) SNRdB(rxPowerDBm float64) float64 {
	return rxPowerDBm - b.NoiseFloorDBm()
}

// PathSNRdB returns the SNR of a single path with the given antenna gains.
func (b Budget) PathSNRdB(p Path, txGainDBi, rxGainDBi float64) float64 {
	return b.SNRdB(b.RXPowerDBm(p, txGainDBi, rxGainDBi))
}

// Gainer exposes a directional gain lookup; both *antenna.Array and test
// doubles satisfy it.
type Gainer interface {
	// GainDBi returns realized gain toward a world-frame angle.
	GainDBi(worldDeg float64) float64
}

// CombinedRXPowerDBm sums (non-coherently) the received power over all
// paths, evaluating the transmit and receive antenna patterns at each
// path's departure and arrival angles. This is what a receiver actually
// measures when beams are steered somewhere: every path contributes
// through whatever sidelobe points at it.
func (b Budget) CombinedRXPowerDBm(paths []Path, tx, rx Gainer) float64 {
	total := math.Inf(-1)
	for _, p := range paths {
		pw := b.RXPowerDBm(p, tx.GainDBi(p.AoDDeg), rx.GainDBi(p.AoADeg))
		total = units.AddPowersDBm(total, pw)
	}
	return total
}

// CombinedSNRdB is CombinedRXPowerDBm converted to SNR.
func (b Budget) CombinedSNRdB(paths []Path, tx, rx Gainer) float64 {
	return b.SNRdB(b.CombinedRXPowerDBm(paths, tx, rx))
}

// CombinedRXPowerDBmOfKind is CombinedRXPowerDBm restricted to paths of
// the given kind, skipping the others in place — no filtered copy of the
// path slice is needed. Because the kept paths contribute in the same
// order either way, the result is bit-identical to filtering first.
func (b Budget) CombinedRXPowerDBmOfKind(paths []Path, kind PathKind, tx, rx Gainer) float64 {
	total := math.Inf(-1)
	for _, p := range paths {
		if p.Kind != kind {
			continue
		}
		pw := b.RXPowerDBm(p, tx.GainDBi(p.AoDDeg), rx.GainDBi(p.AoADeg))
		total = units.AddPowersDBm(total, pw)
	}
	return total
}

// CombinedSNRdBOfKind is CombinedRXPowerDBmOfKind converted to SNR.
func (b Budget) CombinedSNRdBOfKind(paths []Path, kind PathKind, tx, rx Gainer) float64 {
	return b.SNRdB(b.CombinedRXPowerDBmOfKind(paths, kind, tx, rx))
}

// BestPath returns the index of the lowest-loss path in paths, or −1 for
// an empty slice.
func BestPath(paths []Path, freqHz float64) int {
	best, bestIdx := math.Inf(1), -1
	for i, p := range paths {
		if l := p.PropagationLossDB(freqHz); l < best {
			best, bestIdx = l, i
		}
	}
	return bestIdx
}

// BestReflectedPath returns the index of the lowest-loss reflected
// (non-direct) path, or −1 when there is none.
func BestReflectedPath(paths []Path, freqHz float64) int {
	best, bestIdx := math.Inf(1), -1
	for i, p := range paths {
		if p.Kind != Reflected {
			continue
		}
		if l := p.PropagationLossDB(freqHz); l < best {
			best, bestIdx = l, i
		}
	}
	return bestIdx
}
