package channel

// Golden determinism tests: the allocation-free tracer (precomputed wall
// transforms + TraceInto/TraceHInto scratch reuse) must produce paths
// BIT-identical to the pre-refactor implementation. referenceTraceH below
// is a frozen verbatim copy of that implementation (it recomputes every
// mirror image and allocates fresh slices per call); TestTraceGolden
// drives both over seeded rooms, obstacles, endpoints, heights, carriers
// and bounce orders and compares every float via math.Float64bits.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

// --- frozen pre-refactor implementation ---

func referenceTraceH(t *Tracer, tx, rx geom.Vec, hTx, hRx float64) []Path {
	paths := []Path{referenceDirect(t, tx, rx, hTx, hRx)}
	if t.MaxBounces >= 1 {
		paths = append(paths, referenceSingleBounce(t, tx, rx, hTx, hRx)...)
	}
	if t.MaxBounces >= 2 {
		paths = append(paths, referenceDoubleBounce(t, tx, rx, hTx, hRx)...)
	}
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && paths[j].PropagationLossDB(t.FreqHz) < paths[j-1].PropagationLossDB(t.FreqHz); j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
		}
	}
	return paths
}

func referenceDirect(t *Tracer, tx, rx geom.Vec, hTx, hRx float64) Path {
	return Path{
		Kind:        Direct,
		Points:      []geom.Vec{tx, rx},
		Bounces:     0,
		AoDDeg:      units.NormalizeDeg(geom.DirectionDeg(tx, rx)),
		AoADeg:      units.NormalizeDeg(geom.DirectionDeg(rx, tx)),
		LengthM:     tx.Dist(rx),
		BlockLossDB: referenceLegBlockageDB(t, tx, rx, hTx, hRx),
	}
}

func referenceSingleBounce(t *Tracer, tx, rx geom.Vec, hTx, hRx float64) []Path {
	var paths []Path
	for _, w := range t.Room.Walls() {
		hit, ok := geom.SpecularPoint(tx, rx, w.Seg)
		if !ok {
			continue
		}
		l1 := tx.Dist(hit)
		total := l1 + hit.Dist(rx)
		hHit := hTx + (hRx-hTx)*l1/total
		p := Path{
			Kind:        Reflected,
			Points:      []geom.Vec{tx, hit, rx},
			Bounces:     1,
			AoDDeg:      units.NormalizeDeg(geom.DirectionDeg(tx, hit)),
			AoADeg:      units.NormalizeDeg(geom.DirectionDeg(rx, hit)),
			LengthM:     total,
			ReflLossDB:  w.Mat.ReflLossDB,
			BlockLossDB: referenceLegBlockageDB(t, tx, hit, hTx, hHit) + referenceLegBlockageDB(t, hit, rx, hHit, hRx),
		}
		paths = append(paths, p)
	}
	return paths
}

func referenceDoubleBounce(t *Tracer, tx, rx geom.Vec, hTx, hRx float64) []Path {
	var paths []Path
	walls := t.Room.Walls()
	for i, w1 := range walls {
		img1 := geom.MirrorPoint(tx, w1.Seg)
		for j, w2 := range walls {
			if i == j {
				continue
			}
			hit2, ok := geom.SpecularPoint(img1, rx, w2.Seg)
			if !ok {
				continue
			}
			hit1, ok := geom.SpecularPoint(tx, hit2, w1.Seg)
			if !ok {
				continue
			}
			l1 := tx.Dist(hit1)
			l2 := hit1.Dist(hit2)
			l3 := hit2.Dist(rx)
			total := l1 + l2 + l3
			h1 := hTx + (hRx-hTx)*l1/total
			h2 := hTx + (hRx-hTx)*(l1+l2)/total
			p := Path{
				Kind:    Reflected,
				Points:  []geom.Vec{tx, hit1, hit2, rx},
				Bounces: 2,
				AoDDeg:  units.NormalizeDeg(geom.DirectionDeg(tx, hit1)),
				AoADeg:  units.NormalizeDeg(geom.DirectionDeg(rx, hit2)),
				LengthM: total,
				ReflLossDB: w1.Mat.ReflLossDB +
					w2.Mat.ReflLossDB,
				BlockLossDB: referenceLegBlockageDB(t, tx, hit1, hTx, h1) +
					referenceLegBlockageDB(t, hit1, hit2, h1, h2) +
					referenceLegBlockageDB(t, hit2, rx, h2, hRx),
			}
			paths = append(paths, p)
		}
	}
	return paths
}

func referenceLegBlockageDB(t *Tracer, a, b geom.Vec, hA, hB float64) float64 {
	lambda := units.Wavelength(t.FreqHz)
	seg := geom.Seg(a, b)
	total := 0.0
	for _, o := range t.Room.Obstacles() {
		total += obstacleLossDB(seg, o, lambda, hA, hB)
	}
	return total
}

// --- golden comparison ---

// goldenRoom builds one seeded room: the stock office, the living room,
// or a random rectangle with extra interior walls, plus random obstacles.
func goldenRoom(rng *rand.Rand) *room.Room {
	var rm *room.Room
	switch rng.Intn(3) {
	case 0:
		rm = room.NewOffice5x5()
	case 1:
		rm = room.NewLivingRoom()
	default:
		w := 3 + rng.Float64()*5
		d := 3 + rng.Float64()*5
		var err error
		rm, err = room.New(w, d, room.Concrete)
		if err != nil {
			panic(err)
		}
		for i := rng.Intn(3); i > 0; i-- {
			a := geom.V(rng.Float64()*w, rng.Float64()*d)
			b := geom.V(rng.Float64()*w, rng.Float64()*d)
			rm.AddWall(room.Wall{Seg: geom.Seg(a, b), Mat: room.Metal})
		}
	}
	for i := rng.Intn(4); i > 0; i-- {
		p := geom.V(rng.Float64()*rm.WidthM, rng.Float64()*rm.DepthM)
		switch rng.Intn(3) {
		case 0:
			rm.AddObstacle(room.Hand(p))
		case 1:
			rm.AddObstacle(room.Body(p))
		default:
			rm.AddObstacle(room.Furniture(p, 0.15+rng.Float64()*0.3))
		}
	}
	return rm
}

func pathsBitIdentical(t *testing.T, label string, got, want []Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: path count = %d, want %d", label, len(got), len(want))
	}
	f64 := func(name string, g, w float64, i int) {
		t.Helper()
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("%s: path %d %s = %v (bits %x), want %v (bits %x)",
				label, i, name, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Bounces != w.Bounces {
			t.Errorf("%s: path %d kind/bounces = %v/%d, want %v/%d",
				label, i, g.Kind, g.Bounces, w.Kind, w.Bounces)
		}
		if len(g.Points) != len(w.Points) {
			t.Fatalf("%s: path %d point count = %d, want %d", label, i, len(g.Points), len(w.Points))
		}
		for k := range w.Points {
			f64(fmt.Sprintf("Points[%d].X", k), g.Points[k].X, w.Points[k].X, i)
			f64(fmt.Sprintf("Points[%d].Y", k), g.Points[k].Y, w.Points[k].Y, i)
		}
		f64("AoDDeg", g.AoDDeg, w.AoDDeg, i)
		f64("AoADeg", g.AoADeg, w.AoADeg, i)
		f64("LengthM", g.LengthM, w.LengthM, i)
		f64("ReflLossDB", g.ReflLossDB, w.ReflLossDB, i)
		f64("BlockLossDB", g.BlockLossDB, w.BlockLossDB, i)
	}
}

// TestTraceGolden drives the refactored tracer and the frozen reference
// over seeded configurations and demands bit-identical paths from both
// the allocating wrappers and the scratch-buffer entry points. The same
// scratch buffer is reused across every case, so slot/Points reuse bugs
// cannot hide.
func TestTraceGolden(t *testing.T) {
	freqs := []float64{units.ISM24GHz, units.Band60GHz}
	var buf []Path
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rm := goldenRoom(rng)
		freq := freqs[rng.Intn(len(freqs))]
		bounces := rng.Intn(3)
		tr := NewTracer(rm, freq, bounces)
		for c := 0; c < 8; c++ {
			tx := geom.V(rng.Float64()*rm.WidthM, rng.Float64()*rm.DepthM)
			rx := geom.V(rng.Float64()*rm.WidthM, rng.Float64()*rm.DepthM)
			hTx := 1 + rng.Float64()
			hRx := 1 + rng.Float64()
			label := fmt.Sprintf("seed=%d case=%d bounces=%d", seed, c, bounces)

			want := referenceTraceH(tr, tx, rx, hTx, hRx)
			pathsBitIdentical(t, label+" TraceH", tr.TraceH(tx, rx, hTx, hRx), want)
			buf = tr.TraceHInto(buf[:0], tx, rx, hTx, hRx)
			pathsBitIdentical(t, label+" TraceHInto", buf, want)
		}
	}
}

// TestTraceGoldenWallsAddedLater pins the cache-invalidation path: walls
// appended to the room after NewTracer must still be traced, identically
// to the reference.
func TestTraceGoldenWallsAddedLater(t *testing.T) {
	rm := room.NewOffice5x5()
	tr := NewTracer(rm, units.ISM24GHz, 2)
	tx, rx := geom.V(1.2, 1.1), geom.V(3.9, 4.2)
	// Warm the cache, then mutate the room.
	_ = tr.Trace(tx, rx)
	rm.AddWall(room.Wall{Seg: geom.Seg(geom.V(2, 2), geom.V(3.5, 2)), Mat: room.Metal})
	rm.AddObstacle(room.Head(geom.V(2.5, 3)))
	want := referenceTraceH(tr, tx, rx, HeightAPM, HeightHeadsetM)
	got := tr.TraceH(tx, rx, HeightAPM, HeightHeadsetM)
	pathsBitIdentical(t, "post-AddWall", got, want)
}

// TestTraceIntoZeroAllocs is the tentpole guard: once the scratch buffer
// has warmed up, a steady-state trace performs zero heap allocations.
func TestTraceIntoZeroAllocs(t *testing.T) {
	rm := room.NewOffice5x5()
	rm.AddObstacle(room.Hand(geom.V(2.2, 2.0)))
	rm.AddObstacle(room.Body(geom.V(3.1, 3.4)))
	tr := NewTracer(rm, units.ISM24GHz, 2)
	tx, rx := geom.V(0.5, 0.5), geom.V(4.2, 3.7)
	var buf []Path
	// Warm-up: grows the slice and every Points backing array.
	buf = tr.TraceHInto(buf[:0], tx, rx, HeightAPM, HeightHeadsetM)
	if len(buf) < 3 {
		t.Fatalf("warm-up traced %d paths, want several", len(buf))
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = tr.TraceHInto(buf[:0], tx, rx, HeightAPM, HeightHeadsetM)
	})
	if allocs != 0 {
		t.Fatalf("steady-state TraceHInto allocates %.1f objects/op, want 0", allocs)
	}
}
