package channel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

func office() *room.Room { return room.NewOffice5x5() }

func TestDirectPath(t *testing.T) {
	tr := NewTracer(office(), units.ISM24GHz, 0)
	tx, rx := geom.V(0.5, 0.5), geom.V(4.5, 3.5)
	paths := tr.Trace(tx, rx)
	if len(paths) != 1 {
		t.Fatalf("path count = %d, want 1 (direct only)", len(paths))
	}
	p := paths[0]
	if p.Kind != Direct || p.Bounces != 0 {
		t.Errorf("kind = %v bounces = %d", p.Kind, p.Bounces)
	}
	if math.Abs(p.LengthM-5) > 1e-9 {
		t.Errorf("length = %v, want 5", p.LengthM)
	}
	if p.BlockLossDB != 0 {
		t.Errorf("clear room block loss = %v", p.BlockLossDB)
	}
	// AoD and AoA are opposite directions.
	if math.Abs(units.AngleDiffDeg(p.AoDDeg, p.AoADeg+180)) > 1e-9 {
		t.Errorf("AoD %v and AoA %v not reciprocal", p.AoDDeg, p.AoADeg)
	}
}

func TestSingleBouncePaths(t *testing.T) {
	tr := NewTracer(office(), units.ISM24GHz, 1)
	tx, rx := geom.V(1, 2.5), geom.V(4, 2.5)
	paths := tr.Trace(tx, rx)
	var reflected []Path
	for _, p := range paths {
		if p.Kind == Reflected {
			reflected = append(reflected, p)
		}
	}
	if len(reflected) < 2 {
		t.Fatalf("reflected path count = %d, want ≥2 (floor plan walls)", len(reflected))
	}
	for _, p := range reflected {
		if p.Bounces != 1 || len(p.Points) != 3 {
			t.Errorf("bad reflected path: %+v", p)
		}
		// Reflected paths are strictly longer than direct.
		if p.LengthM <= 3 {
			t.Errorf("reflected length %v should exceed direct 3", p.LengthM)
		}
		if p.ReflLossDB <= 0 {
			t.Errorf("reflection must lose power, got %v", p.ReflLossDB)
		}
	}
	// Paths are sorted by total loss; first must be the direct path.
	if paths[0].Kind != Direct {
		t.Error("direct path should be lowest loss in clear room")
	}
}

func TestDoubleBouncePaths(t *testing.T) {
	tr := NewTracer(office(), units.ISM24GHz, 2)
	tx, rx := geom.V(1, 1.5), geom.V(4, 3.5)
	paths := tr.Trace(tx, rx)
	var doubles []Path
	for _, p := range paths {
		if p.Bounces == 2 {
			doubles = append(doubles, p)
		}
	}
	if len(doubles) == 0 {
		t.Fatal("expected at least one double-bounce path in a rectangular room")
	}
	for _, p := range doubles {
		if len(p.Points) != 4 {
			t.Errorf("double bounce should have 4 points, got %d", len(p.Points))
		}
		// Two bounces accumulate two reflection losses.
		if p.ReflLossDB < 2*room.Metal.ReflLossDB {
			t.Errorf("double-bounce refl loss = %v, too small", p.ReflLossDB)
		}
	}
}

func TestMaxBouncesClamp(t *testing.T) {
	tr := NewTracer(office(), units.ISM24GHz, 99)
	if tr.MaxBounces != 2 {
		t.Errorf("MaxBounces = %d, want clamp to 2", tr.MaxBounces)
	}
	tr = NewTracer(office(), units.ISM24GHz, -3)
	if tr.MaxBounces != 0 {
		t.Errorf("MaxBounces = %d, want clamp to 0", tr.MaxBounces)
	}
}

func TestHandBlockageLoss(t *testing.T) {
	rm := office()
	tr := NewTracer(rm, units.ISM24GHz, 0)
	tx, rx := geom.V(0.5, 2.5), geom.V(4.5, 2.5)
	clear := tr.Trace(tx, rx)[0]

	// Hand dead-centre on the path.
	rm.AddObstacle(room.Hand(geom.V(2.5, 2.5)))
	blocked := tr.Trace(tx, rx)[0]
	loss := blocked.BlockLossDB - clear.BlockLossDB
	// Paper §3: hand blockage degrades SNR by more than 14 dB.
	if loss < 14 {
		t.Errorf("hand blockage = %v dB, paper says >14", loss)
	}
	if loss > room.HandLossDB+1e-9 {
		t.Errorf("hand blockage = %v dB exceeds cap %v", loss, room.HandLossDB)
	}
}

func TestBlockageOrdering(t *testing.T) {
	// Deep-shadow losses must follow the paper's hand < head < body order.
	tx, rx := geom.V(0.5, 2.5), geom.V(4.5, 2.5)
	centre := geom.V(2.5, 2.5)
	losses := map[string]float64{}
	for name, obs := range map[string]room.Obstacle{
		"hand": room.Hand(centre),
		"head": room.Head(centre),
		"body": room.Body(centre),
	} {
		rm := office()
		rm.AddObstacle(obs)
		tr := NewTracer(rm, units.ISM24GHz, 0)
		losses[name] = tr.Trace(tx, rx)[0].BlockLossDB
	}
	if !(losses["hand"] < losses["head"] && losses["head"] < losses["body"]) {
		t.Errorf("blockage ordering violated: %v", losses)
	}
}

func TestGrazingBlockageIsPartial(t *testing.T) {
	rm := office()
	tr := NewTracer(rm, units.ISM24GHz, 0)
	tx, rx := geom.V(0.5, 2.5), geom.V(4.5, 2.5)
	// Hand centre offset so the disc edge just grazes the path.
	rm.AddObstacle(room.Hand(geom.V(2.5, 2.5+room.HandRadiusM+0.01)))
	p := tr.Trace(tx, rx)[0]
	if p.BlockLossDB <= 0 {
		t.Error("grazing obstacle should cause some diffraction loss")
	}
	if p.BlockLossDB >= room.HandLossDB {
		t.Errorf("grazing loss %v should be below the deep-shadow cap", p.BlockLossDB)
	}
	// Far away: no loss.
	rm.ClearObstacles()
	rm.AddObstacle(room.Hand(geom.V(2.5, 4.5)))
	if p := tr.Trace(tx, rx)[0]; p.BlockLossDB != 0 {
		t.Errorf("distant obstacle caused %v dB loss", p.BlockLossDB)
	}
}

func TestObstacleAtEndpoint(t *testing.T) {
	rm := office()
	tr := NewTracer(rm, units.ISM24GHz, 0)
	tx, rx := geom.V(0.5, 2.5), geom.V(4.5, 2.5)
	// Obstacle centred exactly on the receiver: full shadow.
	rm.AddObstacle(room.Head(rx))
	if p := tr.Trace(tx, rx)[0]; p.BlockLossDB != room.HeadLossDB {
		t.Errorf("endpoint overlap loss = %v, want %v", p.BlockLossDB, room.HeadLossDB)
	}
	// Obstacle beside the receiver but not overlapping: clear.
	rm.ClearObstacles()
	rm.AddObstacle(room.Hand(geom.V(4.5, 2.5+0.2)))
	if p := tr.Trace(tx, rx)[0]; p.BlockLossDB != 0 {
		t.Errorf("nearby endpoint obstacle loss = %v, want 0", p.BlockLossDB)
	}
}

func TestNLOSBudgetMatchesPaper(t *testing.T) {
	// Best wall reflection should sit roughly 10-25 dB below the direct
	// path (paper: NLOS mean 16-17 dB below LOS).
	tr := NewTracer(office(), units.ISM24GHz, 1)
	tx, rx := geom.V(0.7, 0.7), geom.V(4.2, 3.8)
	paths := tr.Trace(tx, rx)
	di := BestPath(paths, units.ISM24GHz)
	ri := BestReflectedPath(paths, units.ISM24GHz)
	if di < 0 || ri < 0 {
		t.Fatal("missing paths")
	}
	gap := paths[ri].PropagationLossDB(units.ISM24GHz) - paths[di].PropagationLossDB(units.ISM24GHz)
	if gap < 6 || gap > 25 {
		t.Errorf("NLOS-vs-LOS gap = %v dB, want ~8-25 (paper mean 16-17)", gap)
	}
}

func TestBudgetSNR(t *testing.T) {
	b := DefaultBudget()
	// Noise floor ~ -74.5 dBm for 1.76 GHz, NF 7.
	if nf := b.NoiseFloorDBm(); math.Abs(nf-(-74.5)) > 0.5 {
		t.Errorf("noise floor = %v", nf)
	}
	tr := NewTracer(office(), b.FreqHz, 0)
	p := tr.Trace(geom.V(1, 1), geom.V(4, 4))[0]
	// With 15 dBi arrays on both ends, a mid-room link should land in
	// the paper's LOS regime (Fig 3: mean SNR ≈ 25 dB).
	snr := b.PathSNRdB(p, 15, 15)
	if snr < 20 || snr > 30 {
		t.Errorf("LOS SNR = %v dB, want paper-like ~25", snr)
	}
	// Headset very close to the AP: "very high SNR (30-35 dB)" (§5.2).
	pc := tr.Trace(geom.V(1, 1), geom.V(1.8, 1.6))[0]
	if snr := b.PathSNRdB(pc, 15, 15); snr < 30 || snr > 40 {
		t.Errorf("close-range SNR = %v dB, want 30-35+", snr)
	}
}

type fixedGain float64

func (g fixedGain) GainDBi(float64) float64 { return float64(g) }

func TestCombinedPower(t *testing.T) {
	b := DefaultBudget()
	tr := NewTracer(office(), b.FreqHz, 1)
	paths := tr.Trace(geom.V(1, 2.5), geom.V(4, 2.5))
	// With isotropic antennas, combined power must exceed any single
	// path's power (energy adds) and be within a few dB of the direct.
	combined := b.CombinedRXPowerDBm(paths, fixedGain(0), fixedGain(0))
	direct := b.RXPowerDBm(paths[BestPath(paths, b.FreqHz)], 0, 0)
	if combined < direct {
		t.Errorf("combined %v < strongest path %v", combined, direct)
	}
	if combined > direct+6 {
		t.Errorf("combined %v implausibly above direct %v", combined, direct)
	}
	snr := b.CombinedSNRdB(paths, fixedGain(0), fixedGain(0))
	if snr != b.SNRdB(combined) {
		t.Error("CombinedSNRdB inconsistent with CombinedRXPowerDBm")
	}
}

func TestBestPathHelpers(t *testing.T) {
	if BestPath(nil, units.ISM24GHz) != -1 {
		t.Error("empty BestPath should be -1")
	}
	if BestReflectedPath(nil, units.ISM24GHz) != -1 {
		t.Error("empty BestReflectedPath should be -1")
	}
	tr := NewTracer(office(), units.ISM24GHz, 0)
	paths := tr.Trace(geom.V(1, 1), geom.V(2, 2))
	if BestReflectedPath(paths, units.ISM24GHz) != -1 {
		t.Error("direct-only trace has no reflected path")
	}
}

func TestPathKindString(t *testing.T) {
	if Direct.String() != "direct" || Reflected.String() != "reflected" {
		t.Error("PathKind strings wrong")
	}
	if PathKind(99).String() != "unknown" {
		t.Error("unknown PathKind string wrong")
	}
}

// Property: blockage loss increases monotonically (within tolerance) as an
// obstacle slides from grazing to dead-centre on the path.
func TestQuickBlockageMonotoneInPenetration(t *testing.T) {
	tx, rx := geom.V(0.5, 2.5), geom.V(4.5, 2.5)
	prev := -1.0
	for off := 0.3; off >= 0; off -= 0.01 {
		rm := office()
		rm.AddObstacle(room.Body(geom.V(2.5, 2.5+off)))
		tr := NewTracer(rm, units.ISM24GHz, 0)
		loss := tr.Trace(tx, rx)[0].BlockLossDB
		if loss < prev-1e-9 {
			t.Fatalf("loss decreased from %v to %v at offset %v", prev, loss, off)
		}
		prev = loss
	}
}

// Property: the channel is reciprocal — swapping transmitter and
// receiver (positions and heights) yields the same set of path losses,
// with departure and arrival angles exchanged.
func TestQuickChannelReciprocity(t *testing.T) {
	rm := office()
	rm.AddObstacle(room.Body(geom.V(2.2, 2.7)))
	tr := NewTracer(rm, units.ISM24GHz, 1)
	f := func(ax, ay, bx, by float64) bool {
		a := geom.V(0.4+math.Abs(math.Mod(ax, 4.2)), 0.4+math.Abs(math.Mod(ay, 4.2)))
		b := geom.V(0.4+math.Abs(math.Mod(bx, 4.2)), 0.4+math.Abs(math.Mod(by, 4.2)))
		if a.Dist(b) < 0.3 {
			return true
		}
		fwd := tr.TraceH(a, b, 1.5, 2.3)
		rev := tr.TraceH(b, a, 2.3, 1.5)
		if len(fwd) != len(rev) {
			return false
		}
		// Paths come sorted by loss; compare element-wise.
		for i := range fwd {
			if math.Abs(fwd[i].PropagationLossDB(units.ISM24GHz)-rev[i].PropagationLossDB(units.ISM24GHz)) > 1e-6 {
				return false
			}
			if math.Abs(units.AngleDiffDeg(fwd[i].AoDDeg, rev[i].AoADeg)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: total propagation loss is always at least the free-space loss
// of the direct distance (triangle inequality + nonnegative extra losses).
func TestQuickLossLowerBound(t *testing.T) {
	rm := office()
	tr := NewTracer(rm, units.ISM24GHz, 2)
	f := func(ax, ay, bx, by float64) bool {
		tx := geom.V(0.3+math.Abs(math.Mod(ax, 4.4)), 0.3+math.Abs(math.Mod(ay, 4.4)))
		rx := geom.V(0.3+math.Abs(math.Mod(bx, 4.4)), 0.3+math.Abs(math.Mod(by, 4.4)))
		if tx.Dist(rx) < 0.2 {
			return true
		}
		floor := units.FSPL(tx.Dist(rx), units.ISM24GHz)
		for _, p := range tr.Trace(tx, rx) {
			if p.PropagationLossDB(units.ISM24GHz) < floor-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
