package channel

import (
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

// PathCache adds temporal coherence to a Tracer: headsets move
// centimetres per tick and most legs of the traced scene do not change at
// all between queries, so the cache keeps the last traced path set per
// slot and revalidates it against the geometry instead of re-tracing
// from scratch.
//
// A slot is one logical leg the caller traces repeatedly (the AP→headset
// direct path, an AP→reflector feed, a reflector→headset hop). Each
// query is answered in one of three tiers:
//
//   - full hit: endpoints, heights, carrier, wall set, and every obstacle
//     are unchanged (detected via the room's obstacle-mutation epoch: one
//     integer compare when nothing moved) — the cached path set is
//     emitted as-is;
//   - revalidation: only obstacles changed (their per-obstacle epoch
//     stamps postdate the slot's snapshot) — the cached path geometry
//     (bounce points, lengths, angles, reflection losses) is still exact,
//     so only the moved obstacles' per-leg knife-edge contributions are
//     recomputed and the blockage sums rebuilt;
//   - full re-trace: an endpoint, height, the carrier, the wall set, or
//     the obstacle count changed — the cached set is discarded and the
//     tracer runs from scratch.
//
// Emissions are bit-identical to Tracer.TraceHInto. The cache stores
// paths in generation order and re-runs the tracer's stable loss sort on
// every emission, composing each path's total loss from cached spreading
// and absorption terms in the exact operation order of
// Path.PropagationLossDB; revalidated blockage sums are rebuilt
// left-associatively in room-obstacle order, exactly as legBlockageDB
// accumulates them. The golden tests in pathcache_test.go enforce
// equality against fresh traces across moving geometry.
//
// Like the Tracer scratch buffers it wraps, a PathCache is single-owner
// scratch: it must not be shared between goroutines. Steady-state
// queries of every tier are allocation-free once a slot has warmed up.
type PathCache struct {
	t      *Tracer
	slots  []pathSlot
	genBuf []Path
	stats  PathCacheStats
}

// PathCacheStats counts how queries were answered, for tests and
// diagnostics.
type PathCacheStats struct {
	// Hits are full cache hits (nothing changed).
	Hits int

	// Revalidations are queries answered by recomputing only the moved
	// obstacles' blockage contributions.
	Revalidations int

	// Misses are full re-traces (first use, moved endpoint, wall or
	// obstacle-set change, or a not-yet-recorded slot).
	Misses int
}

// legGeom is one straight leg of a cached path: its endpoints and the
// interpolated ray heights, the inputs obstacle blockage depends on.
type legGeom struct {
	a, b   geom.Vec
	hA, hB float64
}

// cachedPath is one path recorded in generation order, with the loss
// decomposition needed to revalidate blockage and re-sort without
// re-tracing.
type cachedPath struct {
	kind           PathKind
	bounces        int
	aodDeg, aoaDeg float64
	lengthM        float64
	reflLossDB     float64
	blockLossDB    float64
	fsplDB         float64
	atmosDB        float64
	npts           int
	pts            [4]geom.Vec
	nlegs          int
	legs           [3]legGeom
	contribOff     int
}

// pathSlot is the cached state of one logical leg.
type pathSlot struct {
	valid bool

	// Key: everything besides obstacles that the trace depends on.
	tx, rx     geom.Vec
	hTx, hRx   float64
	freq       float64
	maxBounces int
	wallsLen   int
	wallsHead  *room.Wall

	// Obstacle snapshot the cached contributions were computed against,
	// and the room mutation epoch it was taken at. Change detection is
	// epoch-driven: the room stamps each obstacle with the epoch of its
	// last mutation, so "what moved since this snapshot?" is an integer
	// compare per obstacle — and a single compare when nothing in the
	// room moved at all — instead of a struct compare per obstacle per
	// query.
	obs     []room.Obstacle
	epoch   uint64
	changed []bool

	// Paths in generation order, plus the flat per-(path, leg, obstacle)
	// blockage contribution table (leg-major within a path) recorded
	// once the leg proves temporally stable.
	paths      []cachedPath
	hasContrib bool
	contrib    []float64
}

// NewPathCache returns a cache over the tracer. Slots are created on
// first use; slot indices are small dense integers chosen by the caller.
func NewPathCache(t *Tracer) *PathCache {
	return &PathCache{t: t}
}

// Tracer returns the underlying tracer.
func (c *PathCache) Tracer() *Tracer { return c.t }

// Stats returns the query-tier counters.
func (c *PathCache) Stats() PathCacheStats { return c.stats }

// Invalidate discards every cached slot; the next query of each slot is
// a full re-trace.
func (c *PathCache) Invalidate() {
	for i := range c.slots {
		c.slots[i].valid = false
		c.slots[i].hasContrib = false
	}
}

// TraceHInto answers a trace query through the cache, with the exact
// semantics (and bit-identical results) of Tracer.TraceHInto: traced
// paths are appended to dst reusing its capacity, sorted ascending by
// total propagation loss, and alias dst until the next trace into it.
func (c *PathCache) TraceHInto(slot int, dst []Path, tx, rx geom.Vec, hTx, hRx float64) []Path {
	for slot >= len(c.slots) {
		c.slots = append(c.slots, pathSlot{})
	}
	s := &c.slots[slot]
	t := c.t
	ws := t.Room.Walls()
	obs := t.Room.Obstacles()
	keyOK := s.valid && s.tx == tx && s.rx == rx && s.hTx == hTx && s.hRx == hRx &&
		s.freq == t.FreqHz && s.maxBounces == t.MaxBounces &&
		s.wallsLen == len(ws) && (len(ws) == 0 || s.wallsHead == &ws[0]) &&
		len(s.obs) == len(obs)
	if !keyOK {
		c.stats.Misses++
		return c.fullTrace(s, dst, tx, rx, hTx, hRx, false)
	}
	roomEpoch := t.Room.Epoch()
	if roomEpoch == s.epoch {
		c.stats.Hits++
		return c.emit(s, dst)
	}
	// Something in the room mutated since the snapshot; obstacle i is
	// affected iff its own stamp postdates the snapshot.
	obsEpochs := t.Room.ObstacleEpochs()
	nChanged := 0
	for i := range obs {
		ch := obsEpochs[i] > s.epoch
		s.changed[i] = ch
		if ch {
			nChanged++
		}
	}
	if nChanged == 0 {
		// Mutations cancelled out (e.g. an add/remove pair restored the
		// set); every surviving obstacle is provably unchanged.
		s.epoch = roomEpoch
		c.stats.Hits++
		return c.emit(s, dst)
	}
	if !s.hasContrib {
		// The leg's endpoints repeated while its obstacles moved: it is
		// temporally stable, so this full re-trace also records the
		// per-obstacle contribution table that lets the next moved-
		// obstacle query revalidate instead.
		c.stats.Misses++
		return c.fullTrace(s, dst, tx, rx, hTx, hRx, true)
	}
	c.stats.Revalidations++
	c.revalidate(s, obs)
	s.epoch = roomEpoch
	return c.emit(s, dst)
}

// fullTrace runs the tracer from scratch, refreshes the slot's key,
// snapshot, and path records (optionally with the blockage contribution
// table), and emits the result.
func (c *PathCache) fullTrace(s *pathSlot, dst []Path, tx, rx geom.Vec, hTx, hRx float64, record bool) []Path {
	t := c.t
	c.genBuf = t.traceHGen(c.genBuf[:0], tx, rx, hTx, hRx)
	gen := c.genBuf

	ws := t.Room.Walls()
	obs := t.Room.Obstacles()
	s.valid = true
	s.tx, s.rx, s.hTx, s.hRx = tx, rx, hTx, hRx
	s.freq, s.maxBounces = t.FreqHz, t.MaxBounces
	s.wallsLen = len(ws)
	if len(ws) > 0 {
		s.wallsHead = &ws[0]
	} else {
		s.wallsHead = nil
	}
	s.obs = append(s.obs[:0], obs...)
	s.epoch = t.Room.Epoch()
	if cap(s.changed) < len(obs) {
		s.changed = make([]bool, len(obs))
	}
	s.changed = s.changed[:len(obs)]

	if cap(s.paths) < len(gen) {
		s.paths = make([]cachedPath, len(gen))
	}
	s.paths = s.paths[:len(gen)]
	s.contrib = s.contrib[:0]
	s.hasContrib = false
	freq := t.FreqHz
	for i := range gen {
		p := &gen[i]
		cp := &s.paths[i]
		*cp = cachedPath{
			kind:        p.Kind,
			bounces:     p.Bounces,
			aodDeg:      p.AoDDeg,
			aoaDeg:      p.AoADeg,
			lengthM:     p.LengthM,
			reflLossDB:  p.ReflLossDB,
			blockLossDB: p.BlockLossDB,
			fsplDB:      units.FSPL(p.LengthM, freq),
			atmosDB:     AtmosphericLossDB(p.LengthM, freq),
			npts:        len(p.Points),
		}
		copy(cp.pts[:], p.Points)
		cp.legs, cp.nlegs = pathLegs(p, hTx, hRx)
	}

	if record {
		c.recordContribs(s, obs)
	}
	return c.emit(s, dst)
}

// recordContribs fills the per-(path, leg, obstacle) contribution table
// and verifies it recomposes each path's recorded blockage exactly; a
// mismatch (which would indicate the leg derivation drifted from the
// tracer) leaves the slot permanently on the full-trace path rather than
// ever emitting a divergent revalidation.
func (c *PathCache) recordContribs(s *pathSlot, obs []room.Obstacle) {
	lambda := c.t.wavelength()
	nObs := len(obs)
	s.contrib = s.contrib[:0]
	for pi := range s.paths {
		cp := &s.paths[pi]
		cp.contribOff = len(s.contrib)
		var block float64
		for li := 0; li < cp.nlegs; li++ {
			lg := &cp.legs[li]
			seg := geom.Seg(lg.a, lg.b)
			legSum := 0.0
			for oi := 0; oi < nObs; oi++ {
				v := obstacleLossDB(seg, obs[oi], lambda, lg.hA, lg.hB)
				s.contrib = append(s.contrib, v)
				legSum += v
			}
			if li == 0 {
				block = legSum
			} else {
				block += legSum
			}
		}
		if block != cp.blockLossDB {
			s.contrib = s.contrib[:0]
			s.hasContrib = false
			return
		}
	}
	s.hasContrib = true
}

// revalidate recomputes the contributions of the changed obstacles only,
// rebuilds each path's blockage sum left-associatively in room-obstacle
// order (exactly as legBlockageDB accumulates a fresh trace), and
// refreshes the snapshot.
func (c *PathCache) revalidate(s *pathSlot, obs []room.Obstacle) {
	lambda := c.t.wavelength()
	nObs := len(obs)
	for pi := range s.paths {
		cp := &s.paths[pi]
		var block float64
		for li := 0; li < cp.nlegs; li++ {
			lg := &cp.legs[li]
			seg := geom.Seg(lg.a, lg.b)
			row := s.contrib[cp.contribOff+li*nObs : cp.contribOff+(li+1)*nObs]
			legSum := 0.0
			for oi := 0; oi < nObs; oi++ {
				if s.changed[oi] {
					row[oi] = obstacleLossDB(seg, obs[oi], lambda, lg.hA, lg.hB)
				}
				legSum += row[oi]
			}
			if li == 0 {
				block = legSum
			} else {
				block += legSum
			}
		}
		cp.blockLossDB = block
	}
	for i := range obs {
		if s.changed[i] {
			s.obs[i] = obs[i]
		}
	}
}

// emit appends the slot's paths to dst in generation order and applies
// the tracer's stable loss sort using the cached loss decomposition.
func (c *PathCache) emit(s *pathSlot, dst []Path) []Path {
	base := len(dst)
	for pi := range s.paths {
		cp := &s.paths[pi]
		dst = extendPaths(dst)
		p := &dst[len(dst)-1]
		pts := append(p.Points[:0], cp.pts[:cp.npts]...)
		*p = Path{
			Kind:        cp.kind,
			Points:      pts,
			Bounces:     cp.bounces,
			AoDDeg:      cp.aodDeg,
			AoADeg:      cp.aoaDeg,
			LengthM:     cp.lengthM,
			ReflLossDB:  cp.reflLossDB,
			BlockLossDB: cp.blockLossDB,
		}
	}
	c.sortEmitted(s, dst[base:])
	return dst
}

// sortEmitted mirrors Tracer.sortByLoss, composing each path's total
// loss from the cached spreading/absorption terms in the exact operation
// order of Path.PropagationLossDB.
func (c *PathCache) sortEmitted(s *pathSlot, paths []Path) {
	var lossArr [128]float64
	var loss []float64
	if len(paths) <= len(lossArr) {
		loss = lossArr[:len(paths)]
	} else {
		loss = make([]float64, len(paths))
	}
	for i := range paths {
		cp := &s.paths[i]
		loss[i] = cp.fsplDB + cp.atmosDB + cp.reflLossDB + cp.blockLossDB
	}
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && loss[j] < loss[j-1]; j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
			loss[j], loss[j-1] = loss[j-1], loss[j]
		}
	}
}

// pathLegs derives a path's straight legs — endpoints plus interpolated
// ray heights — from its points, using the identical expressions the
// tracer's builders evaluate (l1 = tx.Dist(hit), hHit = hTx +
// (hRx−hTx)·l1/total with total the recorded LengthM), so the recomputed
// heights are bitwise the ones the original blockage was computed with.
func pathLegs(p *Path, hTx, hRx float64) (legs [3]legGeom, n int) {
	switch p.Bounces {
	case 0:
		legs[0] = legGeom{a: p.Points[0], b: p.Points[1], hA: hTx, hB: hRx}
		return legs, 1
	case 1:
		tx, hit, rx := p.Points[0], p.Points[1], p.Points[2]
		l1 := tx.Dist(hit)
		hHit := hTx + (hRx-hTx)*l1/p.LengthM
		legs[0] = legGeom{a: tx, b: hit, hA: hTx, hB: hHit}
		legs[1] = legGeom{a: hit, b: rx, hA: hHit, hB: hRx}
		return legs, 2
	default:
		tx, hit1, hit2, rx := p.Points[0], p.Points[1], p.Points[2], p.Points[3]
		l1 := tx.Dist(hit1)
		l2 := hit1.Dist(hit2)
		h1 := hTx + (hRx-hTx)*l1/p.LengthM
		h2 := hTx + (hRx-hTx)*(l1+l2)/p.LengthM
		legs[0] = legGeom{a: tx, b: hit1, hA: hTx, hB: h1}
		legs[1] = legGeom{a: hit1, b: hit2, hA: h1, hB: h2}
		legs[2] = legGeom{a: hit2, b: rx, hA: h2, hB: hRx}
		return legs, 3
	}
}
