package channel

import (
	"math"
	"testing"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

func TestAtmosphericLoss(t *testing.T) {
	// 60 GHz oxygen band: 15 dB/km.
	if got := AtmosphericLossDB(1000, units.Band60GHz); math.Abs(got-15) > 1e-9 {
		t.Errorf("60 GHz/km = %v", got)
	}
	// Indoor distances: fractions of a dB.
	if got := AtmosphericLossDB(5, units.Band60GHz); got > 0.1 {
		t.Errorf("60 GHz indoor = %v, should be small", got)
	}
	// 24 GHz: negligible.
	if got := AtmosphericLossDB(1000, units.ISM24GHz); got > 0.2 {
		t.Errorf("24 GHz/km = %v", got)
	}
	// Sub-mmWave: essentially zero.
	if got := AtmosphericLossDB(1000, 5e9); got > 0.02 {
		t.Errorf("5 GHz/km = %v", got)
	}
}

func TestBudget60GHz(t *testing.T) {
	b := Budget60GHz()
	if b.FreqHz != units.Band60GHz {
		t.Errorf("carrier = %v", b.FreqHz)
	}
	// Same link at 60 GHz loses ~8 dB of free-space budget vs 24 GHz
	// (quadrupled frequency) with equal antenna gains.
	b24 := DefaultBudget()
	tr24 := NewTracer(room.NewOffice5x5(), b24.FreqHz, 0)
	tr60 := NewTracer(room.NewOffice5x5(), b.FreqHz, 0)
	tx, rx := geom.V(1, 1), geom.V(4, 4)
	p24 := tr24.Trace(tx, rx)[0]
	p60 := tr60.Trace(tx, rx)[0]
	gap := p60.PropagationLossDB(b.FreqHz) - p24.PropagationLossDB(b24.FreqHz)
	if gap < 7.5 || gap > 9 {
		t.Errorf("60-vs-24 GHz loss gap = %v dB, want ~8", gap)
	}
}

func TestLowFurniturePassedOver(t *testing.T) {
	// The living room's sofa (0.8 m) crosses the plan-view path but a
	// headset-height (1.7 m) link flies over it.
	rm := room.NewLivingRoom()
	tr := NewTracer(rm, units.ISM24GHz, 0)
	p := tr.Trace(geom.V(0.5, 1.5), geom.V(5.5, 1.5))[0]
	if p.BlockLossDB > 0.1 {
		t.Errorf("sofa cost %v dB at headset height, want ~0", p.BlockLossDB)
	}
	// A knee-height link would be shadowed.
	pLow := tr.TraceH(geom.V(0.5, 1.5), geom.V(5.5, 1.5), 0.5, 0.5)[0]
	if pLow.BlockLossDB < 10 {
		t.Errorf("knee-height link lost only %v dB to the sofa", pLow.BlockLossDB)
	}
}

func TestSharperDiffractionAt60GHz(t *testing.T) {
	// Shorter wavelength makes shadows harder: the same grazing
	// obstacle costs at least as much at 60 GHz as at 24 GHz.
	mk := func(freq float64) float64 {
		rm := room.NewOffice5x5()
		// Obstacle edge right at the path: deep grazing.
		rm.AddObstacle(room.Hand(geom.V(2.5, 2.5+room.HandRadiusM)))
		tr := NewTracer(rm, freq, 0)
		return tr.Trace(geom.V(0.5, 2.5), geom.V(4.5, 2.5))[0].BlockLossDB
	}
	l24 := mk(units.ISM24GHz)
	l60 := mk(units.Band60GHz)
	if l60 < l24 {
		t.Errorf("60 GHz grazing loss %v below 24 GHz %v", l60, l24)
	}
}
