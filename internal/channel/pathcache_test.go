package channel

import (
	"math/rand"
	"testing"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
)

// comparePaths requires two traced path sets to be bitwise identical,
// including order.
func comparePaths(t *testing.T, tag string, got, want []Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d paths, want %d", tag, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Bounces != w.Bounces ||
			g.AoDDeg != w.AoDDeg || g.AoADeg != w.AoADeg ||
			g.LengthM != w.LengthM || g.ReflLossDB != w.ReflLossDB ||
			g.BlockLossDB != w.BlockLossDB || len(g.Points) != len(w.Points) {
			t.Fatalf("%s: path %d differs:\n got %+v\nwant %+v", tag, i, g, w)
		}
		for j := range g.Points {
			if g.Points[j] != w.Points[j] {
				t.Fatalf("%s: path %d point %d %v != %v", tag, i, j, g.Points[j], w.Points[j])
			}
		}
	}
}

// TestPathCacheBitIdenticalUnderMotion drives a cached leg through the
// full mix of steady, obstacle-moving, and endpoint-moving queries and
// requires every emission to match a fresh uncached trace bit for bit.
func TestPathCacheBitIdenticalUnderMotion(t *testing.T) {
	rm := room.NewOffice5x5()
	body := rm.AddObstacle(room.Body(geom.V(2.5, 2.5)))
	hand := rm.AddObstacle(room.Hand(geom.V(-10, -10)))
	tr := NewTracer(rm, DefaultBudget().FreqHz, 2)
	ref := NewTracer(rm, DefaultBudget().FreqHz, 2)
	c := NewPathCache(tr)

	rng := rand.New(rand.NewSource(9))
	a, b := geom.V(0.4, 0.4), geom.V(3.4, 2.4)
	var buf, refBuf []Path
	for step := 0; step < 400; step++ {
		switch rng.Intn(6) {
		case 0:
			// Peer body drifts (possibly across the leg).
			rm.MoveObstacle(body, geom.V(rng.Float64()*5, rng.Float64()*5))
		case 1:
			// Hand toggles between parked and raised in front of the leg.
			if rng.Intn(2) == 0 {
				rm.MoveObstacle(hand, geom.V(-10, -10))
			} else {
				rm.MoveObstacle(hand, geom.V(1+rng.Float64()*3, 1+rng.Float64()*3))
			}
		case 2:
			// Receiver endpoint moves (headset walking).
			b = geom.V(0.5+rng.Float64()*4, 0.5+rng.Float64()*4)
		default:
			// Steady tick: nothing moved since the last query.
		}
		buf = c.TraceHInto(0, buf[:0], a, b, HeightAPM, HeightHeadsetM)
		refBuf = ref.TraceHInto(refBuf[:0], a, b, HeightAPM, HeightHeadsetM)
		comparePaths(t, "motion", buf, refBuf)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Revalidations == 0 || st.Misses == 0 {
		t.Fatalf("fuzz did not exercise all tiers: %+v", st)
	}
}

// TestPathCachePeerCrossesLeg pins the revalidation edge the coex rooms
// hit every tick: a peer body marching straight across a cached LoS leg
// must change the emitted blockage at every step — no stale cached paths
// — and match a fresh trace exactly, via the revalidation tier.
func TestPathCachePeerCrossesLeg(t *testing.T) {
	rm := room.NewOffice5x5()
	body := rm.AddObstacle(room.Body(geom.V(2.5, 4.5)))
	tr := NewTracer(rm, DefaultBudget().FreqHz, 1)
	ref := NewTracer(rm, DefaultBudget().FreqHz, 1)
	c := NewPathCache(tr)

	a, b := geom.V(0.4, 2.5), geom.V(4.6, 2.5)
	var buf, refBuf []Path
	// Warm the slot (miss), then trigger contribution recording (miss).
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	rm.MoveObstacle(body, geom.V(2.5, 4.4))
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)

	sawBlocked := false
	var lastDirect float64
	for i := 0; i <= 40; i++ {
		// March from y=4.0 down through the leg at y=2.5 and beyond.
		rm.MoveObstacle(body, geom.V(2.5, 4.0-float64(i)*0.1))
		before := c.Stats().Revalidations
		buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
		if c.Stats().Revalidations != before+1 {
			t.Fatalf("step %d: expected a revalidation, stats %+v", i, c.Stats())
		}
		refBuf = ref.TraceHInto(refBuf[:0], a, b, 1.5, 1.5)
		comparePaths(t, "crossing", buf, refBuf)
		for _, p := range buf {
			if p.Kind == Direct {
				if p.BlockLossDB > 10 {
					sawBlocked = true
				}
				lastDirect = p.BlockLossDB
			}
		}
	}
	if !sawBlocked {
		t.Fatal("the crossing body never blocked the cached leg; test geometry is wrong")
	}
	if lastDirect > 1 {
		t.Fatalf("body past the leg but cached blockage stuck at %v dB", lastDirect)
	}
}

// TestPathCacheAddWallForcesRetrace pins the wall-set invalidation edge:
// an AddWall after the slot is cached must force a full re-trace whose
// emission includes the new wall's reflection.
func TestPathCacheAddWallForcesRetrace(t *testing.T) {
	rm, err := room.New(5, 5, room.Drywall)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(rm, DefaultBudget().FreqHz, 1)
	ref := NewTracer(rm, DefaultBudget().FreqHz, 1)
	c := NewPathCache(tr)

	a, b := geom.V(1, 1), geom.V(4, 1)
	var buf, refBuf []Path
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	if c.Stats().Hits != 1 {
		t.Fatalf("steady queries should hit, stats %+v", c.Stats())
	}
	nBefore := len(buf)

	// A whiteboard mid-room adds a reflecting surface.
	rm.AddWall(room.Wall{Seg: geom.Seg(geom.V(1, 3), geom.V(4, 3)), Mat: room.Whiteboard})
	misses := c.Stats().Misses
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	if c.Stats().Misses != misses+1 {
		t.Fatalf("AddWall did not force a re-trace, stats %+v", c.Stats())
	}
	if len(buf) != nBefore+1 {
		t.Fatalf("new wall should add a bounce path: %d paths, had %d", len(buf), nBefore)
	}
	refBuf = ref.TraceHInto(refBuf[:0], a, b, 1.5, 1.5)
	comparePaths(t, "addwall", buf, refBuf)
}

// TestPathCacheObstacleSetChangeForcesRetrace pins the remaining
// invalidation edge: adding or removing an obstacle (a player entering
// or leaving the room) changes the obstacle count and must bypass the
// cached contributions entirely.
func TestPathCacheObstacleSetChangeForcesRetrace(t *testing.T) {
	rm := room.NewOffice5x5()
	tr := NewTracer(rm, DefaultBudget().FreqHz, 1)
	ref := NewTracer(rm, DefaultBudget().FreqHz, 1)
	c := NewPathCache(tr)

	a, b := geom.V(0.4, 2.5), geom.V(4.6, 2.5)
	var buf, refBuf []Path
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)

	idx := rm.AddObstacle(room.Body(geom.V(2.5, 2.5))) // player enters, on the leg
	misses := c.Stats().Misses
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	if c.Stats().Misses != misses+1 {
		t.Fatalf("obstacle add did not force a re-trace, stats %+v", c.Stats())
	}
	refBuf = ref.TraceHInto(refBuf[:0], a, b, 1.5, 1.5)
	comparePaths(t, "enter", buf, refBuf)

	rm.RemoveObstacle(idx) // player leaves
	misses = c.Stats().Misses
	buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
	if c.Stats().Misses != misses+1 {
		t.Fatalf("obstacle remove did not force a re-trace, stats %+v", c.Stats())
	}
	refBuf = ref.TraceHInto(refBuf[:0], a, b, 1.5, 1.5)
	comparePaths(t, "leave", buf, refBuf)
}

// TestPathCacheZeroAllocs guards the steady-state budget of all three
// warm tiers: full hits, moved-obstacle revalidations, and full
// re-traces of a moving endpoint must not allocate once the slot and the
// destination buffer have warmed up.
func TestPathCacheZeroAllocs(t *testing.T) {
	rm := room.NewOffice5x5()
	body := rm.AddObstacle(room.Body(geom.V(2.5, 2.0)))
	tr := NewTracer(rm, DefaultBudget().FreqHz, 2)
	c := NewPathCache(tr)

	a, b := geom.V(0.4, 0.4), geom.V(3.4, 2.4)
	var buf []Path
	// Warm: slot fill, contribution recording, dst growth.
	for i := 0; i < 3; i++ {
		rm.MoveObstacle(body, geom.V(2.5, 2.0+float64(i)*0.01))
		buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.7)
	}

	allocs := testing.AllocsPerRun(200, func() {
		buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.7) // hit
	})
	if allocs != 0 {
		t.Fatalf("warm hit allocates %.1f objects/op, want 0", allocs)
	}

	i := 0
	allocs = testing.AllocsPerRun(200, func() {
		i++
		rm.MoveObstacle(body, geom.V(2.5, 2.0+float64(i%7)*0.05))
		buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.7) // revalidation
	})
	if allocs != 0 {
		t.Fatalf("warm revalidation allocates %.1f objects/op, want 0", allocs)
	}

	// Moving endpoint: full re-trace tier, same buffers.
	allocs = testing.AllocsPerRun(200, func() {
		i++
		bb := geom.V(3.4, 2.4+float64(i%5)*0.01)
		buf = c.TraceHInto(0, buf[:0], a, bb, 1.5, 1.7)
	})
	if allocs != 0 {
		t.Fatalf("warm re-trace allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPathCacheEpochSubsetMove pins the epoch-driven revalidation the
// bay-batched tick relies on: when only a subset of a room's obstacles
// move in a tick, the cache must revalidate exactly the moved ones
// (taking the revalidation tier, not a full re-trace), a parked obstacle
// "moved" to its current position must not defeat the full-hit tier, and
// an add/remove pair that restores the obstacle set must be recognized
// as unchanged.
func TestPathCacheEpochSubsetMove(t *testing.T) {
	rm := room.NewOffice5x5()
	bodyA := rm.AddObstacle(room.Body(geom.V(1.5, 3.5)))
	bodyB := rm.AddObstacle(room.Body(geom.V(3.5, 3.5)))
	hand := rm.AddObstacle(room.Hand(geom.V(-10, -10)))
	tr := NewTracer(rm, DefaultBudget().FreqHz, 2)
	ref := NewTracer(rm, DefaultBudget().FreqHz, 2)
	c := NewPathCache(tr)

	a, b := geom.V(0.4, 2.5), geom.V(4.6, 2.5)
	var buf, refBuf []Path
	query := func(tag string) {
		t.Helper()
		buf = c.TraceHInto(0, buf[:0], a, b, 1.5, 1.5)
		refBuf = ref.TraceHInto(refBuf[:0], a, b, 1.5, 1.5)
		comparePaths(t, tag, buf, refBuf)
	}

	// Warm the slot, then trigger contribution recording.
	query("warm")
	rm.MoveObstacle(bodyA, geom.V(1.5, 3.4))
	query("record")

	// Tick where only bodyA of the three obstacles moves.
	rm.MoveObstacle(bodyA, geom.V(1.5, 2.6))
	rm.MoveObstacle(bodyB, geom.V(3.5, 3.5)) // parked: same position
	rm.MoveObstacle(hand, geom.V(-10, -10))  // parked: same position
	before := c.Stats()
	query("subset-move")
	after := c.Stats()
	if after.Revalidations != before.Revalidations+1 || after.Misses != before.Misses {
		t.Fatalf("subset move should revalidate: before %+v after %+v", before, after)
	}

	// Tick where every "move" is to the current position: full hit.
	rm.MoveObstacle(bodyA, geom.V(1.5, 2.6))
	rm.MoveObstacle(bodyB, geom.V(3.5, 3.5))
	rm.MoveObstacle(hand, geom.V(-10, -10))
	before = c.Stats()
	query("parked")
	after = c.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("parked tick should be a full hit: before %+v after %+v", before, after)
	}

	// Add/remove pair restoring the set: epoch advances but every
	// surviving obstacle is unchanged, so the query is still a hit.
	idx := rm.AddObstacle(room.Body(geom.V(0.2, 0.2)))
	rm.RemoveObstacle(idx)
	before = c.Stats()
	query("cancelled")
	after = c.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("cancelled mutation should be a full hit: before %+v after %+v", before, after)
	}
}
