// Package relay computes the end-to-end link budget of an
// amplify-and-forward path through a MoVR reflector.
//
// A reflector does not decode: it amplifies whatever arrives at its
// receive array — signal and its own front-end noise — and re-radiates
// both toward the headset. The headset's SNR therefore combines the
// first-hop SNR (at the reflector's amplifier input) and the second-hop
// budget, which is why MoVR can beat a long line-of-sight link when the
// reflector sits closer to the AP than the headset does (paper §5.2), and
// why it can lose a few dB when the headset is right next to the AP.
package relay

import (
	"math"

	"github.com/movr-sim/movr/internal/units"
)

// HopBudget describes one hop of the relayed link in received-power
// terms.
type HopBudget struct {
	// SignalDBm is the received signal power at the hop's output
	// reference point.
	SignalDBm float64

	// NoiseDBm is the thermal noise floor added at that point.
	NoiseDBm float64
}

// SNRdB returns the hop's standalone SNR.
func (h HopBudget) SNRdB() float64 { return h.SignalDBm - h.NoiseDBm }

// EndToEnd combines a first hop (AP → reflector amplifier input) with the
// second-hop gain (amplifier + TX array + propagation + headset array)
// and the headset's own noise floor.
//
//   - hop1.SignalDBm / hop1.NoiseDBm: at the reflector amplifier input.
//   - hop2GainDB: total gain from the amplifier input to the headset
//     receiver input (amplifier gain + reflector TX array gain − path
//     loss + headset array gain − implementation loss).
//   - headsetNoiseDBm: thermal floor of the headset receiver.
//
// The forwarded noise is hop1's noise amplified through the same hop2
// gain; the returned SNR accounts for both noise sources.
func EndToEnd(hop1 HopBudget, hop2GainDB, headsetNoiseDBm float64) float64 {
	signalAtHeadset := hop1.SignalDBm + hop2GainDB
	forwardedNoise := hop1.NoiseDBm + hop2GainDB
	totalNoise := units.AddPowersDBm(forwardedNoise, headsetNoiseDBm)
	return signalAtHeadset - totalNoise
}

// CombineSNRdB is the classic closed-form amplify-and-forward
// combination of two hop SNRs (both in dB):
//
//	γ_e2e = γ1·γ2 / (γ1 + γ2 + 1)
//
// It equals EndToEnd when the hops are expressed in normalized form and
// is used as a cross-check and for quick estimates.
func CombineSNRdB(snr1DB, snr2DB float64) float64 {
	g1 := units.DBToLinear(snr1DB)
	g2 := units.DBToLinear(snr2DB)
	return units.LinearToDB(g1 * g2 / (g1 + g2 + 1))
}

// Bound returns the theoretical ceiling of the combined SNR: the smaller
// of the two hop SNRs.
func Bound(snr1DB, snr2DB float64) float64 { return math.Min(snr1DB, snr2DB) }
