package relay

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/units"
)

func TestHopSNR(t *testing.T) {
	h := HopBudget{SignalDBm: -46, NoiseDBm: -76.5}
	if got := h.SNRdB(); math.Abs(got-30.5) > 1e-9 {
		t.Errorf("hop SNR = %v", got)
	}
}

func TestCombineSymmetricHops(t *testing.T) {
	// Equal 20 dB hops: gamma = 100*100/201 = 49.75 -> 16.97 dB.
	got := CombineSNRdB(20, 20)
	want := units.LinearToDB(100 * 100 / 201.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("combined = %v, want %v", got, want)
	}
}

func TestCombineAsymmetricApproachesWeakHop(t *testing.T) {
	// With one very strong hop, the combination approaches the weak hop.
	got := CombineSNRdB(60, 15)
	if math.Abs(got-15) > 0.2 {
		t.Errorf("combined = %v, want ≈15", got)
	}
}

func TestEndToEndMatchesClosedForm(t *testing.T) {
	// Construct hops in compatible terms and compare the two formulas.
	hop1 := HopBudget{SignalDBm: -46, NoiseDBm: -76.5} // SNR1 = 30.5
	hop2Gain := 0.4                                    // arbitrary
	headsetNoise := -74.5
	e2e := EndToEnd(hop1, hop2Gain, headsetNoise)

	snr1 := hop1.SNRdB()
	snr2 := hop1.SignalDBm + hop2Gain - headsetNoise // signal vs headset noise only
	closed := CombineSNRdB(snr1, snr2)
	// The closed form includes the +1 term; with these SNRs the two
	// should agree within a small tolerance.
	if math.Abs(e2e-closed) > 0.15 {
		t.Errorf("EndToEnd = %v, closed form = %v", e2e, closed)
	}
}

func TestEndToEndPaperScenario(t *testing.T) {
	// The §5.2 geometry: AP and reflector in opposite corners (~6.2 m),
	// headset mid-room (~3 m from reflector). Numbers per DESIGN.md.
	hop1 := HopBudget{
		SignalDBm: 0 + 15 - units.FSPL(6.2, units.ISM24GHz) + 15, // ≈ -46
		NoiseDBm:  units.ThermalNoiseDBm(units.Channel80211adBandwidth, 5),
	}
	hop2Gain := 50.0 + 15 - units.FSPL(3, units.ISM24GHz) + 15 - 10
	headsetNoise := units.ThermalNoiseDBm(units.Channel80211adBandwidth, 7)
	e2e := EndToEnd(hop1, hop2Gain, headsetNoise)
	// MoVR should deliver mid-to-high 20s dB here — above the ~22-25 dB
	// LOS, i.e. "a few dB higher than the SNR over the unblocked direct
	// path" (§1).
	if e2e < 23 || e2e > 32 {
		t.Errorf("paper-scenario e2e SNR = %v, want ~26±3", e2e)
	}
}

func TestBound(t *testing.T) {
	if Bound(10, 20) != 10 || Bound(30, 5) != 5 {
		t.Error("Bound wrong")
	}
}

// Property: combined SNR never exceeds either hop (relay can only lose).
func TestQuickCombinedBelowBound(t *testing.T) {
	f := func(a, b float64) bool {
		s1 := math.Mod(a, 50)
		s2 := math.Mod(b, 50)
		if math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		c := CombineSNRdB(s1, s2)
		return c <= Bound(s1, s2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: combined SNR is monotone in each hop SNR.
func TestQuickCombinedMonotone(t *testing.T) {
	f := func(a, b, d float64) bool {
		s1 := math.Mod(a, 40)
		s2 := math.Mod(b, 40)
		inc := math.Abs(math.Mod(d, 10))
		if math.IsNaN(s1) || math.IsNaN(s2) || math.IsNaN(inc) {
			return true
		}
		return CombineSNRdB(s1+inc, s2) >= CombineSNRdB(s1, s2)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EndToEnd degrades when the forwarded noise grows (higher
// hop1 noise floor at equal signal).
func TestQuickEndToEndNoiseMonotone(t *testing.T) {
	f := func(n float64) bool {
		extra := math.Abs(math.Mod(n, 20))
		if math.IsNaN(extra) {
			return true
		}
		base := EndToEnd(HopBudget{SignalDBm: -50, NoiseDBm: -80}, 40, -75)
		worse := EndToEnd(HopBudget{SignalDBm: -50, NoiseDBm: -80 + extra}, 40, -75)
		return worse <= base+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
