// Package room models the physical environment of the MoVR experiments: a
// floor plan of walls with mmWave reflection properties, plus the
// obstacles — hands, heads, bodies, furniture — whose blockage the paper
// studies (§3).
//
// The paper's testbed is "a 5m×5m office" with "standard furniture"; the
// NewOffice5x5 constructor reproduces it. Walls are line segments with a
// material that determines how much a specularly reflected mmWave beam is
// attenuated ("walls are not perfect reflectors and therefore scatter and
// attenuate the signal significantly", §3). Obstacles are vertical
// cylinders (discs in the 2-D plan) with a maximum shadowing loss
// calibrated to the paper's measurements.
package room

import (
	"fmt"

	"github.com/movr-sim/movr/internal/geom"
)

// Material describes how a wall surface interacts with an incident mmWave
// beam.
type Material struct {
	// Name identifies the material in reports.
	Name string

	// ReflLossDB is the power lost on a specular bounce, in dB.
	ReflLossDB float64
}

// Common wall materials with mmWave specular reflection losses drawn from
// 60 GHz indoor measurement literature (rough painted surfaces; includes
// scattering loss, which is why even "metal" office furniture is several
// dB down from an ideal mirror).
var (
	Drywall    = Material{Name: "drywall", ReflLossDB: 14}
	Concrete   = Material{Name: "concrete", ReflLossDB: 15}
	Glass      = Material{Name: "glass", ReflLossDB: 12}
	Whiteboard = Material{Name: "whiteboard", ReflLossDB: 12}
	Metal      = Material{Name: "metal", ReflLossDB: 8}
	Wood       = Material{Name: "wood", ReflLossDB: 14}
)

// Wall is a flat reflecting surface in the floor plan.
type Wall struct {
	Seg geom.Segment
	Mat Material
}

// Obstacle is a cylindrical blocker standing between transmitters and
// receivers. MaxLossDB is the deep-shadow attenuation when a beam passes
// through the obstacle's centre; partial grazing produces less loss via
// knife-edge diffraction (computed in package channel). HeightM is the
// obstacle's top: rays between elevated endpoints (a wall-mounted
// reflector, a tripod AP) can pass over people.
type Obstacle struct {
	Name      string
	Shape     geom.Circle
	MaxLossDB float64
	HeightM   float64
}

// Blocker presets calibrated to the paper's §3 measurements: a hand drops
// SNR "by more than 14 dB"; head and body blockage are progressively
// worse (Fig 3 bar ordering). Heights are above-floor tops: a raised
// hand reaches just above the face; a standing adult tops out ~1.9 m.
const (
	HandRadiusM = 0.05
	HeadRadiusM = 0.09
	BodyRadiusM = 0.20

	HandLossDB = 16
	HeadLossDB = 22
	BodyLossDB = 30

	HandHeightM = 1.9
	HeadHeightM = 1.85
	BodyHeightM = 1.9
)

// Hand returns a raised-hand blocker at pos.
func Hand(pos geom.Vec) Obstacle {
	return Obstacle{Name: "hand", Shape: geom.Circle{C: pos, R: HandRadiusM},
		MaxLossDB: HandLossDB, HeightM: HandHeightM}
}

// Head returns a head-sized blocker at pos.
func Head(pos geom.Vec) Obstacle {
	return Obstacle{Name: "head", Shape: geom.Circle{C: pos, R: HeadRadiusM},
		MaxLossDB: HeadLossDB, HeightM: HeadHeightM}
}

// Body returns a torso-sized blocker at pos (another person walking
// through the room, per the paper's third blockage scenario).
func Body(pos geom.Vec) Obstacle {
	return Obstacle{Name: "body", Shape: geom.Circle{C: pos, R: BodyRadiusM},
		MaxLossDB: BodyLossDB, HeightM: BodyHeightM}
}

// Furniture returns a furniture-sized blocker (e.g. a cabinet) at pos.
func Furniture(pos geom.Vec, radiusM float64) Obstacle {
	return Obstacle{Name: "furniture", Shape: geom.Circle{C: pos, R: radiusM},
		MaxLossDB: 35, HeightM: 1.2}
}

// Column returns a floor-to-ceiling structural column: it blocks links
// at any mounting height.
func Column(pos geom.Vec, radiusM float64) Obstacle {
	return Obstacle{Name: "column", Shape: geom.Circle{C: pos, R: radiusM},
		MaxLossDB: 40, HeightM: 3.0}
}

// Room is a floor plan: its bounding dimensions, reflecting walls, and
// current obstacles. The zero value is an empty, unbounded room; use New
// or NewOffice5x5 for a realistic environment.
type Room struct {
	// WidthM and DepthM are the bounding dimensions, for placement
	// helpers and validation.
	WidthM, DepthM float64

	walls     []Wall
	obstacles []Obstacle

	// epoch counts obstacle mutations; obsEpochs[i] is the epoch at
	// which obstacle i last changed. Together they let caches decide
	// "has anything moved since my snapshot?" with one comparison and
	// "which ones?" without comparing obstacle values.
	epoch     uint64
	obsEpochs []uint64
}

// New returns a rectangular room of the given dimensions whose four
// perimeter walls all use the given material. The room spans
// [0, width] × [0, depth].
func New(widthM, depthM float64, mat Material) (*Room, error) {
	if widthM <= 0 || depthM <= 0 {
		return nil, fmt.Errorf("room: dimensions %vx%v must be positive", widthM, depthM)
	}
	r := &Room{WidthM: widthM, DepthM: depthM}
	corners := []geom.Vec{
		geom.V(0, 0), geom.V(widthM, 0), geom.V(widthM, depthM), geom.V(0, depthM),
	}
	for i := range corners {
		r.walls = append(r.walls, Wall{
			Seg: geom.Seg(corners[i], corners[(i+1)%4]),
			Mat: mat,
		})
	}
	return r, nil
}

// NewOffice5x5 reproduces the paper's 5 m × 5 m office testbed: drywall
// perimeter with a whiteboard on the north wall, a metal cabinet along the
// east wall, and a wooden desk return — "standard furniture" that gives
// the ray tracer a realistic mix of reflectors.
func NewOffice5x5() *Room {
	r, err := New(5, 5, Drywall)
	if err != nil {
		panic(err) // fixed literal dimensions; cannot fail
	}
	// Whiteboard: a better reflector on part of the north wall.
	r.walls = append(r.walls, Wall{
		Seg: geom.Seg(geom.V(1.2, 5), geom.V(3.8, 5)),
		Mat: Whiteboard,
	})
	// Metal cabinet face along the east wall.
	r.walls = append(r.walls, Wall{
		Seg: geom.Seg(geom.V(5, 0.8), geom.V(5, 1.9)),
		Mat: Metal,
	})
	// Wooden desk return jutting into the room near the south wall.
	r.walls = append(r.walls, Wall{
		Seg: geom.Seg(geom.V(1.0, 0.75), geom.V(2.4, 0.75)),
		Mat: Wood,
	})
	return r
}

// NewLivingRoom builds a larger 6 m × 4 m domestic room: drywall with a
// window wall (glass), a TV cabinet (wood), and a sofa as standing
// furniture — the consumer deployment the paper's introduction targets.
func NewLivingRoom() *Room {
	r, err := New(6, 4, Drywall)
	if err != nil {
		panic(err) // fixed literal dimensions; cannot fail
	}
	// Window along most of the north wall.
	r.walls = append(r.walls, Wall{
		Seg: geom.Seg(geom.V(1.0, 4), geom.V(5.0, 4)),
		Mat: Glass,
	})
	// TV cabinet on the south wall.
	r.walls = append(r.walls, Wall{
		Seg: geom.Seg(geom.V(2.2, 0.4), geom.V(3.8, 0.4)),
		Mat: Wood,
	})
	// Sofa: a long low obstacle mid-room.
	r.AddObstacle(Obstacle{Name: "sofa", Shape: geom.Circle{C: geom.V(3.0, 1.5), R: 0.5},
		MaxLossDB: 30, HeightM: 0.8})
	return r
}

// AddWall appends an interior or replacement wall.
func (r *Room) AddWall(w Wall) { r.walls = append(r.walls, w) }

// Walls returns the room's reflecting surfaces. The returned slice is
// shared; callers must not modify it.
func (r *Room) Walls() []Wall { return r.walls }

// AddObstacle places an obstacle in the room and returns its index, which
// can be passed to RemoveObstacle.
func (r *Room) AddObstacle(o Obstacle) int {
	r.obstacles = append(r.obstacles, o)
	r.epoch++
	r.obsEpochs = append(r.obsEpochs, r.epoch)
	return len(r.obstacles) - 1
}

// RemoveObstacle removes the obstacle at the given index (as returned by
// AddObstacle). Removing an out-of-range index is a no-op. Indices of
// later obstacles shift down by one.
func (r *Room) RemoveObstacle(i int) {
	if i < 0 || i >= len(r.obstacles) {
		return
	}
	r.obstacles = append(r.obstacles[:i], r.obstacles[i+1:]...)
	r.obsEpochs = append(r.obsEpochs[:i], r.obsEpochs[i+1:]...)
	r.epoch++
	// Indices from i onward now name different obstacles.
	for j := i; j < len(r.obsEpochs); j++ {
		r.obsEpochs[j] = r.epoch
	}
}

// ClearObstacles removes all obstacles.
func (r *Room) ClearObstacles() {
	r.obstacles = r.obstacles[:0]
	r.obsEpochs = r.obsEpochs[:0]
	r.epoch++
}

// Obstacles returns the current obstacles. The returned slice is shared;
// callers must not modify it.
func (r *Room) Obstacles() []Obstacle { return r.obstacles }

// MoveObstacle repositions the obstacle at index i, preserving its size
// and loss. Out-of-range indices are a no-op, as is a move to the
// obstacle's current position (a parked obstacle stays "unchanged" for
// epoch-tracking caches).
func (r *Room) MoveObstacle(i int, pos geom.Vec) {
	if i < 0 || i >= len(r.obstacles) {
		return
	}
	if r.obstacles[i].Shape.C == pos {
		return
	}
	r.obstacles[i].Shape.C = pos
	r.epoch++
	r.obsEpochs[i] = r.epoch
}

// Epoch returns a counter that increases on every obstacle mutation.
// A cache that snapshots the obstacle set can compare epochs instead of
// obstacle values: an unchanged epoch guarantees an unchanged set.
func (r *Room) Epoch() uint64 { return r.epoch }

// ObstacleEpochs returns, per obstacle, the epoch at which it last
// changed: obstacle i is unchanged since a snapshot taken at epoch e iff
// ObstacleEpochs()[i] <= e. The returned slice is shared; callers must
// not modify it.
func (r *Room) ObstacleEpochs() []uint64 { return r.obsEpochs }

// InBounds reports whether p lies within the room's bounding rectangle
// (with a small margin so wall-mounted devices validate).
func (r *Room) InBounds(p geom.Vec) bool {
	const eps = 1e-9
	return p.X >= -eps && p.X <= r.WidthM+eps && p.Y >= -eps && p.Y <= r.DepthM+eps
}

// SegmentObstructions returns the obstacles whose discs the segment a→b
// passes through, in path order (by entry parameter along the segment).
func (r *Room) SegmentObstructions(a, b geom.Vec) []Obstacle {
	type hit struct {
		o Obstacle
		t float64
	}
	seg := geom.Seg(a, b)
	var hits []hit
	for _, o := range r.obstacles {
		if t0, _, ok := o.Shape.ChordParams(seg); ok {
			hits = append(hits, hit{o, t0})
		}
	}
	// Insertion sort by entry parameter; obstacle counts are tiny.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].t < hits[j-1].t; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	out := make([]Obstacle, len(hits))
	for i, h := range hits {
		out[i] = h.o
	}
	return out
}

// LOSClear reports whether the straight path a→b is free of obstacles.
// Walls are intentionally not considered: perimeter walls cannot stand
// between two in-room points, and interior reflectors (whiteboard,
// cabinet faces) are modelled as reflecting surfaces only.
func (r *Room) LOSClear(a, b geom.Vec) bool {
	seg := geom.Seg(a, b)
	for _, o := range r.obstacles {
		if o.Shape.IntersectsSegment(seg) {
			return false
		}
	}
	return true
}
