package room

import (
	"testing"

	"github.com/movr-sim/movr/internal/geom"
)

func TestLivingRoom(t *testing.T) {
	r := NewLivingRoom()
	if r.WidthM != 6 || r.DepthM != 4 {
		t.Errorf("dimensions = %vx%v", r.WidthM, r.DepthM)
	}
	// Perimeter + window + TV cabinet.
	if len(r.Walls()) != 6 {
		t.Errorf("wall count = %d, want 6", len(r.Walls()))
	}
	// The sofa ships as a standing obstacle.
	obs := r.Obstacles()
	if len(obs) != 1 || obs[0].Name != "sofa" {
		t.Fatalf("obstacles = %v", obs)
	}
	// Sofa is low: head-height links pass over it.
	if obs[0].HeightM >= 1.5 {
		t.Errorf("sofa height = %v, should be low furniture", obs[0].HeightM)
	}
	// A link across the room at headset height clears the sofa
	// vertically even though it crosses it in plan.
	a, b := geom.V(0.5, 1.5), geom.V(5.5, 1.5)
	if r.LOSClear(a, b) {
		t.Log("plan-view LOS crosses the sofa (expected); vertical clearance is the channel's job")
	}
}

func TestLivingRoomMaterials(t *testing.T) {
	r := NewLivingRoom()
	var hasGlass, hasWood bool
	for _, w := range r.Walls() {
		switch w.Mat {
		case Glass:
			hasGlass = true
		case Wood:
			hasWood = true
		}
	}
	if !hasGlass || !hasWood {
		t.Error("living room should have window and cabinet surfaces")
	}
}
