package room

import (
	"testing"

	"github.com/movr-sim/movr/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, Drywall); err == nil {
		t.Error("zero width should error")
	}
	if _, err := New(5, -1, Drywall); err == nil {
		t.Error("negative depth should error")
	}
	r, err := New(4, 3, Concrete)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Walls()) != 4 {
		t.Errorf("wall count = %d", len(r.Walls()))
	}
	for _, w := range r.Walls() {
		if w.Mat != Concrete {
			t.Errorf("wall material = %v", w.Mat)
		}
	}
}

func TestOffice5x5(t *testing.T) {
	r := NewOffice5x5()
	if r.WidthM != 5 || r.DepthM != 5 {
		t.Errorf("dimensions = %vx%v", r.WidthM, r.DepthM)
	}
	// Perimeter + whiteboard + cabinet + desk.
	if len(r.Walls()) != 7 {
		t.Errorf("wall count = %d, want 7", len(r.Walls()))
	}
	// The metal cabinet must be the lowest-loss reflector.
	bestLoss := 1e9
	for _, w := range r.Walls() {
		if w.Mat.ReflLossDB < bestLoss {
			bestLoss = w.Mat.ReflLossDB
		}
	}
	if bestLoss != Metal.ReflLossDB {
		t.Errorf("best reflector loss = %v, want metal %v", bestLoss, Metal.ReflLossDB)
	}
}

func TestInBounds(t *testing.T) {
	r := NewOffice5x5()
	if !r.InBounds(geom.V(2.5, 2.5)) {
		t.Error("centre should be in bounds")
	}
	if !r.InBounds(geom.V(0, 5)) {
		t.Error("wall corner should be in bounds")
	}
	if r.InBounds(geom.V(-0.1, 2)) || r.InBounds(geom.V(2, 5.1)) {
		t.Error("outside points should be out of bounds")
	}
}

func TestLOSAndObstacles(t *testing.T) {
	r := NewOffice5x5()
	a, b := geom.V(0.5, 2.5), geom.V(4.5, 2.5)
	if !r.LOSClear(a, b) {
		t.Fatal("empty room should have clear LOS")
	}
	idx := r.AddObstacle(Hand(geom.V(2.5, 2.5)))
	if r.LOSClear(a, b) {
		t.Error("hand on the path should block LOS")
	}
	obs := r.SegmentObstructions(a, b)
	if len(obs) != 1 || obs[0].Name != "hand" {
		t.Errorf("obstructions = %v", obs)
	}
	r.RemoveObstacle(idx)
	if !r.LOSClear(a, b) {
		t.Error("LOS should be restored after removal")
	}
}

func TestSegmentObstructionsOrdered(t *testing.T) {
	r := NewOffice5x5()
	// Add out of path order on purpose.
	r.AddObstacle(Body(geom.V(4.0, 2.5)))
	r.AddObstacle(Hand(geom.V(1.0, 2.5)))
	obs := r.SegmentObstructions(geom.V(0.2, 2.5), geom.V(4.8, 2.5))
	if len(obs) != 2 {
		t.Fatalf("obstruction count = %d", len(obs))
	}
	if obs[0].Name != "hand" || obs[1].Name != "body" {
		t.Errorf("obstructions out of order: %v, %v", obs[0].Name, obs[1].Name)
	}
}

func TestObstacleManagement(t *testing.T) {
	r := NewOffice5x5()
	i := r.AddObstacle(Head(geom.V(1, 1)))
	r.MoveObstacle(i, geom.V(2, 2))
	if got := r.Obstacles()[i].Shape.C; !got.AlmostEqual(geom.V(2, 2), 1e-12) {
		t.Errorf("moved obstacle at %v", got)
	}
	// Out-of-range ops are no-ops.
	r.MoveObstacle(99, geom.V(0, 0))
	r.RemoveObstacle(-1)
	r.RemoveObstacle(99)
	if len(r.Obstacles()) != 1 {
		t.Errorf("obstacle count = %d", len(r.Obstacles()))
	}
	r.ClearObstacles()
	if len(r.Obstacles()) != 0 {
		t.Error("ClearObstacles failed")
	}
}

func TestBlockerPresets(t *testing.T) {
	h := Hand(geom.V(0, 0))
	hd := Head(geom.V(0, 0))
	b := Body(geom.V(0, 0))
	// Paper ordering (Fig 3): hand < head < body in shadowing depth.
	if !(h.MaxLossDB < hd.MaxLossDB && hd.MaxLossDB < b.MaxLossDB) {
		t.Errorf("loss ordering violated: %v %v %v", h.MaxLossDB, hd.MaxLossDB, b.MaxLossDB)
	}
	// Hand must exceed the paper's ">14 dB" SNR drop.
	if h.MaxLossDB <= 14 {
		t.Errorf("hand loss = %v, paper says >14", h.MaxLossDB)
	}
	if !(h.Shape.R < hd.Shape.R && hd.Shape.R < b.Shape.R) {
		t.Error("radius ordering violated")
	}
	f := Furniture(geom.V(1, 1), 0.4)
	if f.Shape.R != 0.4 || f.MaxLossDB < b.MaxLossDB {
		t.Errorf("furniture preset = %+v", f)
	}
}

func TestAddWall(t *testing.T) {
	r, _ := New(5, 5, Drywall)
	r.AddWall(Wall{Seg: geom.Seg(geom.V(2, 2), geom.V(3, 2)), Mat: Metal})
	if len(r.Walls()) != 5 {
		t.Errorf("wall count = %d", len(r.Walls()))
	}
}
