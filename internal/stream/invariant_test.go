// Report invariants, exercised end to end: every streaming session —
// whatever the room, seed, or system variant — must produce an
// internally consistent Report. The checks run against real seeded
// sessions through the experiments layer (an external test package, so
// no import cycle).
package stream_test

import (
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/stream"
)

func checkInvariants(t *testing.T, label string, rep stream.Report) {
	t.Helper()
	if rep.Frames <= 0 {
		t.Fatalf("%s: no frames simulated", label)
	}
	if rep.Delivered+rep.Glitches != rep.Frames {
		t.Errorf("%s: Delivered %d + Glitches %d != Frames %d",
			label, rep.Delivered, rep.Glitches, rep.Frames)
	}
	if rep.TotalOutage < rep.LongestOutage {
		t.Errorf("%s: TotalOutage %v < LongestOutage %v",
			label, rep.TotalOutage, rep.LongestOutage)
	}
	if rep.Glitches == 0 {
		if rep.TotalOutage != 0 || rep.LongestOutage != 0 {
			t.Errorf("%s: no glitches but TotalOutage %v, LongestOutage %v",
				label, rep.TotalOutage, rep.LongestOutage)
		}
	} else {
		if rep.TotalOutage <= 0 || rep.LongestOutage <= 0 {
			t.Errorf("%s: %d glitches but TotalOutage %v, LongestOutage %v",
				label, rep.Glitches, rep.TotalOutage, rep.LongestOutage)
		}
	}
	wantFrac := float64(rep.Glitches) / float64(rep.Frames)
	if rep.GlitchFrac != wantFrac {
		t.Errorf("%s: GlitchFrac %g != Glitches/Frames %g", label, rep.GlitchFrac, wantFrac)
	}
	if rep.Delivered == 0 && (rep.MeanLatency != 0 || rep.P99Latency != 0) {
		t.Errorf("%s: nothing delivered but latencies %v/%v",
			label, rep.MeanLatency, rep.P99Latency)
	}
}

func TestReportInvariantsAcrossSeededSessions(t *testing.T) {
	// A spread of rooms, seeds and variants: bare homes (typically
	// glitch-free), the cluttered office (typically glitchy), and the
	// no-reflector variant (heavily glitchy). The invariants must hold
	// on every one.
	var (
		sawClean, sawGlitchy bool
		reports              int
	)
	for _, seed := range []int64{1, 2, 3, 11} {
		for _, tc := range []struct {
			name    string
			cfg     experiments.SessionConfig
			variant experiments.SessionVariant
		}{
			{
				name: "bare-home/tracking",
				cfg: experiments.SessionConfig{
					Seed: seed, Duration: 2 * time.Second,
					RoomW: 4.5, RoomD: 4.5,
				},
				variant: experiments.VariantMoVRTracking,
			},
			{
				name:    "office/tracking",
				cfg:     experiments.SessionConfig{Seed: seed, Duration: 2 * time.Second},
				variant: experiments.VariantMoVRTracking,
			},
			{
				name:    "office/direct-only",
				cfg:     experiments.SessionConfig{Seed: seed, Duration: 2 * time.Second},
				variant: experiments.VariantDirectOnly,
			},
		} {
			out, err := experiments.RunSessionVariant(tc.cfg, tc.variant)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tc.name, err)
			}
			checkInvariants(t, tc.name, out.Report)
			reports++
			if out.Report.Glitches == 0 {
				sawClean = true
			} else {
				sawGlitchy = true
			}
		}
	}
	// The matrix must exercise both sides of the zero-glitch branch,
	// or the "both zero when no glitches" invariant was never tested.
	if !sawClean {
		t.Error("no session in the matrix was glitch-free; pick a friendlier config")
	}
	if !sawGlitchy {
		t.Error("no session in the matrix glitched; pick a harsher config")
	}
	if reports != 12 {
		t.Fatalf("ran %d sessions, want 12", reports)
	}
}
