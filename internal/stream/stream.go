// Package stream simulates the VR video stream over the wireless link:
// uncompressed frames arrive at the display rate and must cross the link
// before the next frame lands ("the headset updates the display every
// 10ms"; VR data "cannot tolerate any degradation in SNR and data rate",
// paper §1/§2).
//
// A frame whose transmission cannot finish within its display interval
// is a glitch — the user-visible artifact the paper's Figure 1 cable
// avoids and MoVR must match.
package stream

import (
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stats"
	"github.com/movr-sim/movr/internal/units"
	"github.com/movr-sim/movr/internal/vr"
)

// RateFunc reports the link's current PHY rate in bits per second at a
// virtual time.
type RateFunc func(now time.Duration) float64

// Report summarizes a streaming session.
type Report struct {
	// Frames is the number of frames generated.
	Frames int

	// Delivered counts frames that arrived within their deadline.
	Delivered int

	// Glitches counts frames that missed the deadline (late or
	// undeliverable).
	Glitches int

	// LongestOutage is the longest run of consecutive glitched frames,
	// in time.
	LongestOutage time.Duration

	// TotalOutage is the total time the display showed stale frames —
	// the sum of every glitched frame interval.
	TotalOutage time.Duration

	// MeanLatency is the mean delivery latency of delivered frames.
	MeanLatency time.Duration

	// P99Latency is the 99th-percentile delivery latency of delivered
	// frames.
	P99Latency time.Duration

	// GlitchFrac is Glitches/Frames.
	GlitchFrac float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("frames=%d delivered=%d glitches=%d (%.1f%%) meanLat=%v p99Lat=%v worstOutage=%v",
		r.Frames, r.Delivered, r.Glitches, 100*r.GlitchFrac, r.MeanLatency, r.P99Latency, r.LongestOutage)
}

// Config describes the stream.
type Config struct {
	// Display is the headset display generating frames.
	Display vr.DisplaySpec

	// Duration is the session length.
	Duration time.Duration

	// Obs, when non-nil, receives a frame_ok or frame_miss event per
	// frame. Recording is observation only: it never feeds back into
	// delivery, so traced and untraced runs produce identical Reports.
	Obs *obs.Recorder
}

// Run simulates frame delivery: each frame interval a frame of
// Display.FrameBits() bits is offered to the link; the link drains it at
// rate(t), re-sampled every slice of the frame interval to track SNR
// changes. A frame that fails to finish within one frame interval is a
// glitch (the display shows a stale frame) and is then abandoned —
// matching a real-time uncompressed pipeline with no retransmission
// budget.
func Run(engine *sim.Engine, cfg Config, rate RateFunc) Report {
	interval := cfg.Display.FrameInterval()
	frameBits := cfg.Display.FrameBits()
	const slices = 10 // rate re-sampling granularity within a frame

	// slackBits absorbs float-rounding drift in the per-slice drain sums,
	// so a link at exactly RequiredRateBps — which finishes each frame at
	// the very last instant of its interval — counts as delivered. It is
	// ~10⁻⁵ of one bit for the HTC Vive frame, far below any physical
	// meaning.
	slackBits := frameBits * 1e-12

	rep := Report{}
	var latencies []time.Duration
	outage := time.Duration(0)

	frames := int(cfg.Duration / interval)
	for i := 0; i < frames; i++ {
		start := time.Duration(i) * interval
		engine.At(start, func() {
			rep.Frames++
			remaining := frameBits
			elapsed := time.Duration(0)
			for s := 0; s < slices; s++ {
				// Slice boundaries are fractions of the interval, so the
				// last slice ends exactly on the frame deadline. (A fixed
				// width interval/slices floors to whole nanoseconds and
				// leaves the interval's tail uncovered, glitching links
				// that are exactly fast enough.)
				next := interval * time.Duration(s+1) / slices
				r := rate(engine.Now() + elapsed)
				remaining -= r * (next - elapsed).Seconds()
				elapsed = next
				if remaining <= slackBits {
					// Frame done within this slice; refine the finish
					// time by backing out the overshoot.
					if over := -remaining; over > 0 && r > 0 {
						elapsed -= time.Duration(over / r * float64(time.Second))
					}
					break
				}
			}
			if remaining <= slackBits && elapsed <= interval {
				rep.Delivered++
				latencies = append(latencies, elapsed)
				outage = 0
				cfg.Obs.EmitAt(start, obs.KindFrameOK, int32(i), 0, elapsed.Seconds(), 0)
			} else {
				rep.Glitches++
				outage += interval
				if outage > rep.LongestOutage {
					rep.LongestOutage = outage
				}
				frac := 1 - remaining/frameBits
				if frac < 0 {
					frac = 0
				} else if frac > 1 {
					frac = 1
				}
				cfg.Obs.EmitAt(start, obs.KindFrameMiss, int32(i), 0, frac, 0)
			}
		})
	}
	engine.Run(cfg.Duration)
	rep.TotalOutage = time.Duration(rep.Glitches) * interval

	if len(latencies) > 0 {
		var sum time.Duration
		xs := make([]float64, len(latencies))
		for i, l := range latencies {
			sum += l
			xs[i] = float64(l)
		}
		rep.MeanLatency = sum / time.Duration(len(latencies))
		rep.P99Latency = time.Duration(percentile(xs, 99))
	}
	if rep.Frames > 0 {
		rep.GlitchFrac = float64(rep.Glitches) / float64(rep.Frames)
	}
	return rep
}

// percentile delegates to stats.Percentile (linear interpolation between
// order statistics) so stream reports and fleet aggregates can never
// disagree on what a percentile is. An earlier local copy truncated the
// rank to an integer index, biasing P99Latency low.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Percentile(xs, p)
}

// ConstantRate returns a RateFunc pinned at rateBps.
func ConstantRate(rateBps float64) RateFunc {
	return func(time.Duration) float64 { return rateBps }
}

// RequiredRateBps returns the minimum constant link rate that delivers
// every frame of the display within its interval — the paper's
// "multiple Gbps" requirement, derived rather than asserted.
func RequiredRateBps(d vr.DisplaySpec) float64 {
	return d.FrameBits() / d.FrameInterval().Seconds()
}

// GbpsString formats a rate for reports.
func GbpsString(rateBps float64) string {
	return fmt.Sprintf("%.2f Gbps", rateBps/units.Gbps)
}
