// Package stream simulates the VR video stream over the wireless link:
// uncompressed frames arrive at the display rate and must cross the link
// before the next frame lands ("the headset updates the display every
// 10ms"; VR data "cannot tolerate any degradation in SNR and data rate",
// paper §1/§2).
//
// A frame whose transmission cannot finish within its display interval
// is a glitch — the user-visible artifact the paper's Figure 1 cable
// avoids and MoVR must match.
package stream

import (
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stats"
	"github.com/movr-sim/movr/internal/units"
	"github.com/movr-sim/movr/internal/vr"
)

// RateFunc reports the link's current PHY rate in bits per second at a
// virtual time.
type RateFunc func(now time.Duration) float64

// Report summarizes a streaming session.
type Report struct {
	// Frames is the number of frames generated.
	Frames int

	// Delivered counts frames that arrived within their deadline.
	Delivered int

	// Glitches counts frames that missed the deadline (late or
	// undeliverable).
	Glitches int

	// LongestOutage is the longest run of consecutive glitched frames,
	// in time.
	LongestOutage time.Duration

	// TotalOutage is the total time the display showed stale frames —
	// the sum of every glitched frame interval.
	TotalOutage time.Duration

	// MeanLatency is the mean delivery latency of delivered frames.
	MeanLatency time.Duration

	// P99Latency is the 99th-percentile delivery latency of delivered
	// frames.
	P99Latency time.Duration

	// GlitchFrac is Glitches/Frames.
	GlitchFrac float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("frames=%d delivered=%d glitches=%d (%.1f%%) meanLat=%v p99Lat=%v worstOutage=%v",
		r.Frames, r.Delivered, r.Glitches, 100*r.GlitchFrac, r.MeanLatency, r.P99Latency, r.LongestOutage)
}

// Config describes the stream.
type Config struct {
	// Display is the headset display generating frames.
	Display vr.DisplaySpec

	// Duration is the session length.
	Duration time.Duration

	// Obs, when non-nil, receives a frame_ok or frame_miss event per
	// frame. Recording is observation only: it never feeds back into
	// delivery, so traced and untraced runs produce identical Reports.
	Obs *obs.Recorder

	// LatencyScratch, when it has capacity for every frame of the
	// session, seeds the delivered-frame latency buffer so callers can
	// reuse one allocation across sessions. The session owns the buffer
	// until Report; reclaim it afterwards with LatencyBuffer.
	LatencyScratch []time.Duration
}

// Run simulates frame delivery: each frame interval a frame of
// Display.FrameBits() bits is offered to the link; the link drains it at
// rate(t), re-sampled every slice of the frame interval to track SNR
// changes. A frame that fails to finish within one frame interval is a
// glitch (the display shows a stale frame) and is then abandoned —
// matching a real-time uncompressed pipeline with no retransmission
// budget.
func Run(engine *sim.Engine, cfg Config, rate RateFunc) Report {
	s := Begin(engine, cfg, rate)
	engine.Run(cfg.Duration)
	return s.Report()
}

// Session is a streaming session begun with Begin whose frame events are
// scheduled on a caller-driven engine. Splitting scheduling from the
// engine run lets several sessions share one engine (the bay-batched
// fleet runner) while executing the exact delivery logic of Run.
type Session struct {
	engine *sim.Engine
	cfg    Config
	rate   RateFunc

	interval  time.Duration
	frameBits float64
	slackBits float64
	frames    int

	next      int    // index of the next frame to generate
	tick      func() // frameTick bound once, reused by the chain
	rep       Report
	latencies []time.Duration
	outage    time.Duration
}

// Begin schedules the session's frames on engine and returns the
// session. Frames form a lazy chain — each frame event schedules the
// next — so only one frame event per session is ever queued; frame
// times and delivery arithmetic are identical to Run's eager schedule.
// The caller runs the engine to (at least) cfg.Duration, then calls
// Report.
func Begin(engine *sim.Engine, cfg Config, rate RateFunc) *Session {
	s := &Session{engine: engine, cfg: cfg, rate: rate}
	s.interval = cfg.Display.FrameInterval()
	s.frameBits = cfg.Display.FrameBits()

	// slackBits absorbs float-rounding drift in the per-slice drain sums,
	// so a link at exactly RequiredRateBps — which finishes each frame at
	// the very last instant of its interval — counts as delivered. It is
	// ~10⁻⁵ of one bit for the HTC Vive frame, far below any physical
	// meaning.
	s.slackBits = s.frameBits * 1e-12

	s.frames = int(cfg.Duration / s.interval)
	if cap(cfg.LatencyScratch) >= s.frames {
		s.latencies = cfg.LatencyScratch[:0]
	} else {
		s.latencies = make([]time.Duration, 0, s.frames)
	}
	s.tick = s.frameTick
	if s.frames > 0 {
		engine.At(0, s.tick)
	}
	return s
}

const slices = 10 // rate re-sampling granularity within a frame

// frameTick generates and drains one frame, then schedules the next.
func (s *Session) frameTick() {
	i := s.next
	s.next++
	if s.next < s.frames {
		s.engine.At(time.Duration(s.next)*s.interval, s.tick)
	}
	start := time.Duration(i) * s.interval
	s.rep.Frames++
	remaining := s.frameBits
	elapsed := time.Duration(0)
	for sl := 0; sl < slices; sl++ {
		// Slice boundaries are fractions of the interval, so the
		// last slice ends exactly on the frame deadline. (A fixed
		// width interval/slices floors to whole nanoseconds and
		// leaves the interval's tail uncovered, glitching links
		// that are exactly fast enough.)
		next := s.interval * time.Duration(sl+1) / slices
		r := s.rate(s.engine.Now() + elapsed)
		remaining -= r * (next - elapsed).Seconds()
		elapsed = next
		if remaining <= s.slackBits {
			// Frame done within this slice; refine the finish
			// time by backing out the overshoot.
			if over := -remaining; over > 0 && r > 0 {
				elapsed -= time.Duration(over / r * float64(time.Second))
			}
			break
		}
	}
	if remaining <= s.slackBits && elapsed <= s.interval {
		s.rep.Delivered++
		s.latencies = append(s.latencies, elapsed)
		s.outage = 0
		s.cfg.Obs.EmitAt(start, obs.KindFrameOK, int32(i), 0, elapsed.Seconds(), 0)
	} else {
		s.rep.Glitches++
		s.outage += s.interval
		if s.outage > s.rep.LongestOutage {
			s.rep.LongestOutage = s.outage
		}
		frac := 1 - remaining/s.frameBits
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		s.cfg.Obs.EmitAt(start, obs.KindFrameMiss, int32(i), 0, frac, 0)
	}
}

// Report finalizes the session's metrics. Call it once, after the engine
// has run to the session horizon.
func (s *Session) Report() Report {
	rep := s.rep
	rep.TotalOutage = time.Duration(rep.Glitches) * s.interval
	if len(s.latencies) > 0 {
		var sum time.Duration
		xs := make([]float64, len(s.latencies))
		for i, l := range s.latencies {
			sum += l
			xs[i] = float64(l)
		}
		rep.MeanLatency = sum / time.Duration(len(s.latencies))
		rep.P99Latency = time.Duration(percentile(xs, 99))
	}
	if rep.Frames > 0 {
		rep.GlitchFrac = float64(rep.Glitches) / float64(rep.Frames)
	}
	return rep
}

// LatencyBuffer returns the session's internal latency buffer for reuse
// as a later session's Config.LatencyScratch. Only meaningful after
// Report.
func (s *Session) LatencyBuffer() []time.Duration { return s.latencies }

// percentile delegates to stats.Percentile (linear interpolation between
// order statistics) so stream reports and fleet aggregates can never
// disagree on what a percentile is. An earlier local copy truncated the
// rank to an integer index, biasing P99Latency low.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Percentile(xs, p)
}

// ConstantRate returns a RateFunc pinned at rateBps.
func ConstantRate(rateBps float64) RateFunc {
	return func(time.Duration) float64 { return rateBps }
}

// RequiredRateBps returns the minimum constant link rate that delivers
// every frame of the display within its interval — the paper's
// "multiple Gbps" requirement, derived rather than asserted.
func RequiredRateBps(d vr.DisplaySpec) float64 {
	return d.FrameBits() / d.FrameInterval().Seconds()
}

// GbpsString formats a rate for reports.
func GbpsString(rateBps float64) string {
	return fmt.Sprintf("%.2f Gbps", rateBps/units.Gbps)
}
