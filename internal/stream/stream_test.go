package stream

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stats"
	"github.com/movr-sim/movr/internal/units"
	"github.com/movr-sim/movr/internal/vr"
)

func cfg(d time.Duration) Config {
	return Config{Display: vr.HTCVive(), Duration: d}
}

func TestPerfectLinkDeliversEverything(t *testing.T) {
	rep := Run(sim.New(), cfg(time.Second), ConstantRate(7*units.Gbps))
	if rep.Frames != 90 {
		t.Errorf("frames = %d, want 90 (90 Hz for 1 s)", rep.Frames)
	}
	if rep.Glitches != 0 || rep.Delivered != rep.Frames {
		t.Errorf("perfect link glitched: %+v", rep)
	}
	if rep.MeanLatency <= 0 || rep.MeanLatency > vr.HTCVive().FrameInterval() {
		t.Errorf("mean latency = %v", rep.MeanLatency)
	}
	if rep.GlitchFrac != 0 {
		t.Error("glitch fraction should be 0")
	}
}

func TestInsufficientRateGlitchesEverything(t *testing.T) {
	// 1 Gbps cannot carry a 5.6 Gbps stream: every frame misses.
	rep := Run(sim.New(), cfg(time.Second), ConstantRate(1*units.Gbps))
	if rep.Delivered != 0 {
		t.Errorf("delivered %d frames on a starved link", rep.Delivered)
	}
	if rep.GlitchFrac != 1 {
		t.Errorf("glitch fraction = %v", rep.GlitchFrac)
	}
	if rep.LongestOutage < 900*time.Millisecond {
		t.Errorf("longest outage = %v, want ~full session", rep.LongestOutage)
	}
}

func TestDeadLinkNoDivision(t *testing.T) {
	rep := Run(sim.New(), cfg(100*time.Millisecond), ConstantRate(0))
	if rep.Delivered != 0 || rep.Glitches != rep.Frames {
		t.Errorf("dead link report: %+v", rep)
	}
}

func TestTransientBlockageGlitchesOnlyDuring(t *testing.T) {
	// Link drops below the requirement for 200 ms mid-session — the
	// paper's "glitch in the data stream" from a hand wave (§1).
	rate := func(now time.Duration) float64 {
		if now >= 400*time.Millisecond && now < 600*time.Millisecond {
			return 2 * units.Gbps // blocked: below requirement
		}
		return 7 * units.Gbps
	}
	rep := Run(sim.New(), cfg(time.Second), rate)
	if rep.Glitches == 0 {
		t.Fatal("expected glitches during blockage")
	}
	// ~18 frames fall in the 200 ms window.
	if rep.Glitches < 15 || rep.Glitches > 22 {
		t.Errorf("glitches = %d, want ~18", rep.Glitches)
	}
	if rep.LongestOutage < 150*time.Millisecond || rep.LongestOutage > 260*time.Millisecond {
		t.Errorf("longest outage = %v, want ~200ms", rep.LongestOutage)
	}
	if rep.GlitchFrac > 0.3 {
		t.Errorf("glitch fraction = %v, most frames should deliver", rep.GlitchFrac)
	}
}

func TestRequiredRate(t *testing.T) {
	// Required rate equals the raw pixel rate for uncompressed frames.
	d := vr.HTCVive()
	req := RequiredRateBps(d)
	if math.Abs(req-d.RawRateBps()) > 0.01*d.RawRateBps() {
		t.Errorf("required = %v, raw = %v", req, d.RawRateBps())
	}
	// A link at exactly the required rate delivers every frame.
	rep := Run(sim.New(), cfg(500*time.Millisecond), ConstantRate(req*1.001))
	if rep.Glitches != 0 {
		t.Errorf("at-requirement link glitched: %+v", rep)
	}
}

func TestMarginallyFastLinkLatency(t *testing.T) {
	// Slightly above requirement: everything delivers, with latency
	// near (but below) the full interval.
	d := vr.HTCVive()
	rep := Run(sim.New(), cfg(time.Second), ConstantRate(RequiredRateBps(d)*1.05))
	if rep.Glitches != 0 {
		t.Fatalf("glitches = %d", rep.Glitches)
	}
	if rep.P99Latency > d.FrameInterval() {
		t.Errorf("p99 latency %v exceeds interval", rep.P99Latency)
	}
	if rep.MeanLatency < d.FrameInterval()/2 {
		t.Errorf("mean latency %v implausibly low for marginal link", rep.MeanLatency)
	}
}

func TestExactRequiredRateDeliversEveryFrame(t *testing.T) {
	// Regression: a link at *exactly* RequiredRateBps finishes each frame
	// at the last instant of its interval. The drain loop used to cover
	// only slices*(interval/slices) — flooring to whole nanoseconds left
	// the interval's tail unscanned, so exactly-fast-enough links could
	// glitch every frame.
	d := vr.HTCVive()
	rep := Run(sim.New(), cfg(2*time.Second), ConstantRate(RequiredRateBps(d)))
	if rep.Delivered != rep.Frames || rep.Glitches != 0 {
		t.Errorf("at-required-rate link: delivered %d of %d frames (%d glitches)",
			rep.Delivered, rep.Frames, rep.Glitches)
	}
	// Delivery takes the whole interval: latency must not exceed it.
	if rep.P99Latency > d.FrameInterval() {
		t.Errorf("p99 latency %v exceeds the frame interval %v", rep.P99Latency, d.FrameInterval())
	}
}

func TestPercentileMatchesStats(t *testing.T) {
	// stream's percentile must agree with stats.Percentile, which the
	// fleet aggregates use — a truncating local copy once biased
	// P99Latency low.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 10, 99, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1e7
		}
		for _, p := range []float64{0, 1, 25, 50, 90, 99, 99.9, 100} {
			got := percentile(xs, p)
			want := stats.Percentile(xs, p)
			if got != want {
				t.Fatalf("percentile(n=%d, p=%v) = %v, stats.Percentile = %v", n, p, got, want)
			}
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
}

func TestReportString(t *testing.T) {
	rep := Run(sim.New(), cfg(100*time.Millisecond), ConstantRate(7*units.Gbps))
	s := rep.String()
	if !strings.Contains(s, "frames=") || !strings.Contains(s, "glitches=") {
		t.Errorf("report string = %q", s)
	}
	if GbpsString(5e9) != "5.00 Gbps" {
		t.Errorf("GbpsString = %q", GbpsString(5e9))
	}
}
