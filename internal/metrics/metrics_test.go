package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "jobs submitted")
	g := r.NewGauge("jobs_running", "jobs running now")
	c.Inc()
	c.Add(4)
	g.Set(3)
	g.Add(-1)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 2 {
		t.Errorf("gauge = %d", g.Value())
	}
	out := r.String()
	for _, want := range []string{
		"# HELP jobs_total jobs submitted",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE jobs_running gauge",
		"jobs_running 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add should panic")
		}
	}()
	NewRegistry().NewCounter("c", "h").Add(-1)
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("same", "h")
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name should panic")
		}
	}()
	r.NewGauge("same", "h")
}

func TestExpositionSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zeta_total", "z")
	r.NewCounter("alpha_total", "a")
	r.NewGaugeFunc("mid_gauge", "m", func() float64 { return 1.5 })
	out := r.String()
	za := strings.Index(out, "alpha_total")
	zm := strings.Index(out, "mid_gauge")
	zz := strings.Index(out, "zeta_total")
	if !(za < zm && zm < zz) {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
	if out != r.String() {
		t.Error("exposition not deterministic across calls")
	}
	if !strings.Contains(out, "mid_gauge 1.5") {
		t.Errorf("gauge func sample missing:\n%s", out)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := r.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "q", []float64{1, 2, 3, 4})
	if h.Quantile(50) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 uniform samples, 25 per bucket.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5)
	}
	if got := h.Quantile(50); math.Abs(got-2) > 0.5 {
		t.Errorf("p50 = %g, want ~2", got)
	}
	if got := h.Quantile(95); math.Abs(got-3.8) > 0.5 {
		t.Errorf("p95 = %g, want ~3.8", got)
	}
	// A sample beyond every bound lands in +Inf and reports the largest
	// finite bound.
	h2 := r.NewHistogram("q2_seconds", "q", []float64{1})
	h2.Observe(100)
	if got := h2.Quantile(99); got != 1 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to 1", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h_seconds", "h", DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 100)
				_ = r.String()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("c=%d g=%d h=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("jobs_by_kind_total", "jobs by scenario kind", "kind")
	v.Inc("coex")
	v.Inc("coex")
	v.Inc("mixed")
	v.With("arcade").Add(3)
	if got := v.Value("coex"); got != 2 {
		t.Errorf("coex = %d, want 2", got)
	}
	if got := v.Value("never"); got != 0 {
		t.Errorf("unseen label = %d, want 0", got)
	}
	out := r.String()
	for _, want := range []string{
		"# TYPE jobs_by_kind_total counter",
		`jobs_by_kind_total{kind="arcade"} 3`,
		`jobs_by_kind_total{kind="coex"} 2`,
		`jobs_by_kind_total{kind="mixed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Children are sorted by label value for deterministic scrapes.
	if strings.Index(out, `kind="arcade"`) > strings.Index(out, `kind="coex"`) {
		t.Error("children not sorted by label value")
	}
}
