// Package metrics is a dependency-free counter/gauge/histogram registry
// with Prometheus text exposition — the observability substrate of the
// movrd daemon, and small enough for any other part of the codebase to
// adopt. All instruments are safe for concurrent use; exposition output
// is sorted by metric name so scrapes (and tests) are deterministic.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered instrument.
type metric interface {
	name() string
	help() string
	typ() string
	write(w io.Writer)
}

// Registry holds a set of named instruments.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register adds m, panicking on a duplicate name — metric names are
// compile-time constants, so a collision is a programming error.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name()]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", m.name()))
	}
	r.metrics[m.name()] = m
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name(), m.help())
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name(), m.typ())
		m.write(w)
	}
}

// String renders the registry as the exposition text.
func (r *Registry) String() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer sample.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters never go down).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) typ() string  { return "counter" }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// Gauge is an integer sample that can go up and down.
type Gauge struct {
	nm, hp string
	v      atomic.Int64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) typ() string  { return "gauge" }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
}

// CounterVec is a family of counters keyed by one label — per-scenario
// job counts and the like. Children are created on first use and live
// for the registry's lifetime, so the label must be low-cardinality
// (an enum, not user input).
type CounterVec struct {
	nm, hp, label string

	mu       sync.Mutex
	children map[string]*atomic.Int64
}

// NewCounterVec registers a single-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nm: name, hp: help, label: label, children: make(map[string]*atomic.Int64)}
	r.register(v)
	return v
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *atomic.Int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &atomic.Int64{}
		v.children[value] = c
	}
	return c
}

// Inc adds one to the child for the given label value.
func (v *CounterVec) Inc(value string) { v.With(value).Add(1) }

// Value reports the child's current count (0 if never incremented).
func (v *CounterVec) Value(value string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c.Load()
	}
	return 0
}

func (v *CounterVec) name() string { return v.nm }
func (v *CounterVec) help() string { return v.hp }
func (v *CounterVec) typ() string  { return "counter" }
func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	counts := make([]int64, len(values))
	for i, val := range values {
		counts[i] = v.children[val].Load()
	}
	v.mu.Unlock()
	for i, val := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.nm, v.label, val, counts[i])
	}
}

// gaugeFunc samples a float from a callback at exposition time — for
// values owned elsewhere (pool utilization, derived quantiles).
type gaugeFunc struct {
	nm, hp string
	fn     func() float64
}

// NewGaugeFunc registers a gauge whose value is fn() at scrape time.
// fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{nm: name, hp: help, fn: fn})
}

func (g *gaugeFunc) name() string { return g.nm }
func (g *gaugeFunc) help() string { return g.hp }
func (g *gaugeFunc) typ() string  { return "gauge" }
func (g *gaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.fn()))
}

// Histogram accumulates observations into cumulative buckets, Prometheus
// style, and can estimate quantiles locally (for surfacing p50/p95
// without a scrape pipeline).
type Histogram struct {
	nm, hp string
	bounds []float64 // ascending upper bounds, +Inf implicit

	mu     sync.Mutex
	counts []int64 // per-bucket (non-cumulative), len(bounds)+1
	sum    float64
	total  int64
}

// NewHistogram registers a histogram over the given ascending bucket
// upper bounds. The +Inf bucket is implicit.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		nm:     name,
		hp:     help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// DefaultLatencyBuckets spans 1 ms to ~100 s in roughly 1-2.5-5 steps —
// suitable for job and request latencies in seconds.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Quantile estimates the p-th quantile (p in [0, 100]) by linear
// interpolation within the bucket holding it, assuming uniform spread —
// the same estimate Prometheus's histogram_quantile makes. Returns 0
// with no observations; a quantile landing in the +Inf bucket reports
// the largest finite bound.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := p / 100 * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }
func (h *Histogram) typ() string  { return "histogram" }
func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	var cum int64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, total)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, total)
}
