package control

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMarshalRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgSetRXBeam, Seq: 1, Value: 27000},
		{Type: MsgSetGainWord, Seq: 65535, Value: 100},
		{Type: MsgAck, Seq: 0, Value: -123456},
		{Type: MsgSetModulation, Seq: 42, Value: 100000},
	}
	for _, m := range msgs {
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got != m {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil frame should fail")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short frame should fail")
	}
	b := (Message{Type: MsgAck}).Marshal()
	b[0] = 0x00
	if _, err := Unmarshal(b); err == nil {
		t.Error("bad magic should fail")
	}
	b = (Message{Type: MsgAck}).Marshal()
	b[4] ^= 0xFF // corrupt payload
	if _, err := Unmarshal(b); err == nil {
		t.Error("corrupted frame should fail checksum")
	}
}

func TestWireConversions(t *testing.T) {
	if AngleToWire(270) != 27000 {
		t.Errorf("AngleToWire(270) = %d", AngleToWire(270))
	}
	if AngleToWire(-90) != 27000 {
		t.Errorf("AngleToWire(-90) = %d, want wrapped 27000", AngleToWire(-90))
	}
	if got := WireToAngle(12345); math.Abs(got-123.45) > 1e-9 {
		t.Errorf("WireToAngle = %v", got)
	}
	if got := WireToCurrent(CurrentToWire(0.654321)); math.Abs(got-0.654321) > 1e-6 {
		t.Errorf("current round trip = %v", got)
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgSetRXBeam: "set-rx-beam", MsgSetTXBeam: "set-tx-beam",
		MsgSetBothBeams: "set-both-beams", MsgSetGainWord: "set-gain-word",
		MsgSetModulation: "set-modulation", MsgReadCurrent: "read-current",
		MsgAck: "ack", MsgNack: "nack",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
	if !strings.HasPrefix(MsgType(200).String(), "unknown") {
		t.Error("unknown type string")
	}
}

func echoHandler() Handler {
	return HandlerFunc(func(m Message) Message {
		return Message{Type: MsgAck, Value: m.Value}
	})
}

func TestLinkCall(t *testing.T) {
	l := NewLink(echoHandler(), 5*time.Millisecond, 0, 1)
	reply, err := l.Call(Message{Type: MsgSetRXBeam, Value: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgAck || reply.Value != 1234 {
		t.Errorf("reply = %+v", reply)
	}
	if l.Elapsed() != 5*time.Millisecond {
		t.Errorf("elapsed = %v", l.Elapsed())
	}
	ex, drops := l.Stats()
	if ex != 1 || drops != 0 {
		t.Errorf("stats = %d/%d", ex, drops)
	}
}

func TestLinkRetriesOnLoss(t *testing.T) {
	// 50% loss: with seeded rng the call should still eventually land,
	// and elapsed time should reflect the retries.
	l := NewLink(echoHandler(), 2*time.Millisecond, 0.5, 7)
	reply, err := l.Call(Message{Type: MsgReadCurrent})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgAck {
		t.Errorf("reply = %+v", reply)
	}
	ex, drops := l.Stats()
	if drops == 0 && ex == 1 {
		// Possible with 50% loss, but over several calls drops must
		// appear.
		for i := 0; i < 20; i++ {
			if _, err := l.Call(Message{Type: MsgReadCurrent}); err != nil {
				t.Fatal(err)
			}
		}
		_, drops = l.Stats()
		if drops == 0 {
			t.Error("expected some drops at 50% loss")
		}
	}
}

func TestLinkGivesUp(t *testing.T) {
	l := NewLink(echoHandler(), time.Millisecond, 1.0, 3) // always lose
	l.MaxRetries = 4
	if _, err := l.Call(Message{Type: MsgSetGainWord}); err == nil {
		t.Error("total loss should error out")
	}
	if _, drops := l.Stats(); drops != 5 {
		t.Errorf("drops = %d, want MaxRetries+1 = 5", drops)
	}
}

func TestLinkDefaultsAndReset(t *testing.T) {
	l := NewLink(echoHandler(), 0, 0, 1)
	if l.RTT != DefaultRTT {
		t.Errorf("default RTT = %v", l.RTT)
	}
	if _, err := l.Call(Message{Type: MsgAck}); err != nil {
		t.Fatal(err)
	}
	l.ResetClock()
	if l.Elapsed() != 0 {
		t.Error("ResetClock failed")
	}
}

// Property: every message round-trips through the codec.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(ty uint8, seq uint16, val int32) bool {
		m := Message{Type: MsgType(ty), Seq: seq, Value: val}
		got, err := Unmarshal(m.Marshal())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: single-byte corruption is always detected (magic, payload, or
// checksum).
func TestQuickCorruptionDetected(t *testing.T) {
	f := func(seq uint16, val int32, pos uint8, flip uint8) bool {
		if flip == 0 {
			return true // no corruption
		}
		m := Message{Type: MsgSetRXBeam, Seq: seq, Value: val}
		b := m.Marshal()
		i := int(pos) % len(b)
		b[i] ^= flip
		got, err := Unmarshal(b)
		// Either detected, or (only when the flip cancels out, which
		// XOR with non-zero flip cannot) unchanged.
		return err != nil || got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: wire angle encoding wraps into [0, 36000) and decodes within
// half a centidegree.
func TestQuickAngleWire(t *testing.T) {
	f := func(a float64) bool {
		deg := math.Mod(a, 1e4)
		if math.IsNaN(deg) {
			return true
		}
		w := AngleToWire(deg)
		if w < 0 || w > 36000 { // 36000 possible from rounding 359.999
			return false
		}
		back := WireToAngle(w)
		diff := math.Abs(math.Mod(back-deg, 360))
		if diff > 180 {
			diff = 360 - diff
		}
		return diff <= 0.005+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
