package control

import (
	"fmt"
	"math/rand"
	"time"
)

// Handler is the device side of the control plane: it executes one
// command and returns the reply. The MoVR reflector controller implements
// this.
type Handler interface {
	HandleControl(Message) Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Message) Message

// HandleControl calls f(m).
func (f HandlerFunc) HandleControl(m Message) Message { return f(m) }

// Link simulates the Bluetooth control channel: each request/reply
// round-trip costs latency, and frames are lost with a configurable
// probability. Time is accounted, not slept, so experiments can sum
// control-plane cost deterministically.
type Link struct {
	// RTT is the request/reply round-trip time.
	RTT time.Duration

	// LossProb is the per-round-trip probability of losing the exchange
	// (either direction).
	LossProb float64

	// MaxRetries bounds retransmissions before the call fails.
	MaxRetries int

	handler Handler
	rng     *rand.Rand

	elapsed   time.Duration
	exchanges int
	drops     int
	seq       uint16
}

// DefaultRTT models a BLE connection-interval round trip.
const DefaultRTT = 5 * time.Millisecond

// NewLink connects a simulated control link to the device handler with a
// seeded loss process.
func NewLink(h Handler, rtt time.Duration, lossProb float64, seed int64) *Link {
	if rtt <= 0 {
		rtt = DefaultRTT
	}
	return &Link{
		RTT:        rtt,
		LossProb:   lossProb,
		MaxRetries: 8,
		handler:    h,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Call sends a command over the link, retrying on loss, and returns the
// device's reply. The wire encode/decode path is exercised on every
// exchange so codec bugs cannot hide.
func (l *Link) Call(m Message) (Message, error) {
	for attempt := 0; attempt <= l.MaxRetries; attempt++ {
		l.seq++
		m.Seq = l.seq
		l.elapsed += l.RTT
		l.exchanges++
		if l.rng.Float64() < l.LossProb {
			l.drops++
			continue
		}
		// Round-trip through the real codec.
		decoded, err := Unmarshal(m.Marshal())
		if err != nil {
			return Message{}, fmt.Errorf("control: encode round-trip: %w", err)
		}
		reply := l.handler.HandleControl(decoded)
		reply.Seq = decoded.Seq
		decodedReply, err := Unmarshal(reply.Marshal())
		if err != nil {
			return Message{}, fmt.Errorf("control: reply round-trip: %w", err)
		}
		return decodedReply, nil
	}
	return Message{}, fmt.Errorf("control: %s lost after %d retries", m.Type, l.MaxRetries)
}

// Elapsed returns the total simulated control-plane time spent so far.
func (l *Link) Elapsed() time.Duration { return l.elapsed }

// Stats returns the exchange and drop counters.
func (l *Link) Stats() (exchanges, drops int) { return l.exchanges, l.drops }

// ResetClock zeroes the elapsed-time accumulator (counters are kept).
func (l *Link) ResetClock() { l.elapsed = 0 }
