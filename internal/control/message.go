// Package control implements the out-of-band control plane between the
// mmWave AP and MoVR reflectors: "MoVR has a bluetooth link with the AP
// to exchange control information. Our prototype uses an Arduino to run
// its control protocol" (§4).
//
// The wire format is a compact binary frame (little-endian, checksummed)
// so the protocol could run over a real BLE GATT characteristic
// unchanged. The simulated link injects latency and loss, and the
// endpoint implements the retry discipline a lossy control channel
// needs.
package control

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MsgType enumerates control messages.
type MsgType uint8

const (
	// MsgSetRXBeam steers the reflector's receive beam (Angle in
	// centidegrees).
	MsgSetRXBeam MsgType = iota + 1

	// MsgSetTXBeam steers the reflector's transmit beam.
	MsgSetTXBeam

	// MsgSetBothBeams steers both beams to the same angle (alignment
	// sweep state).
	MsgSetBothBeams

	// MsgSetGainWord programs the amplifier gain DAC.
	MsgSetGainWord

	// MsgSetModulation turns the OOK alignment modulation on/off.
	MsgSetModulation

	// MsgReadCurrent asks for the amplifier supply current.
	MsgReadCurrent

	// MsgAck acknowledges a command; Value carries a reading when the
	// command requested one.
	MsgAck

	// MsgNack reports a rejected command.
	MsgNack
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgSetRXBeam:
		return "set-rx-beam"
	case MsgSetTXBeam:
		return "set-tx-beam"
	case MsgSetBothBeams:
		return "set-both-beams"
	case MsgSetGainWord:
		return "set-gain-word"
	case MsgSetModulation:
		return "set-modulation"
	case MsgReadCurrent:
		return "read-current"
	case MsgAck:
		return "ack"
	case MsgNack:
		return "nack"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Message is one control frame.
type Message struct {
	// Type selects the operation.
	Type MsgType

	// Seq matches replies to requests.
	Seq uint16

	// Value carries the operand: beam angle in centidegrees, gain word,
	// modulation frequency in Hz, or a returned reading scaled by 1e6
	// (e.g. microamps for current).
	Value int32
}

// frame layout: magic(1) type(1) seq(2) value(4) checksum(1) = 9 bytes.
const (
	frameMagic = 0xA5
	// FrameLen is the encoded size of a control frame in bytes.
	FrameLen = 9
)

// Marshal encodes the message into its 9-byte frame.
func (m Message) Marshal() []byte {
	b := make([]byte, FrameLen)
	b[0] = frameMagic
	b[1] = byte(m.Type)
	binary.LittleEndian.PutUint16(b[2:4], m.Seq)
	binary.LittleEndian.PutUint32(b[4:8], uint32(m.Value))
	b[8] = checksum(b[:8])
	return b
}

// Unmarshal decodes a frame, validating magic and checksum.
func Unmarshal(b []byte) (Message, error) {
	if len(b) != FrameLen {
		return Message{}, fmt.Errorf("control: frame length %d, want %d", len(b), FrameLen)
	}
	if b[0] != frameMagic {
		return Message{}, fmt.Errorf("control: bad magic 0x%02x", b[0])
	}
	if got, want := checksum(b[:8]), b[8]; got != want {
		return Message{}, fmt.Errorf("control: checksum 0x%02x, want 0x%02x", got, want)
	}
	return Message{
		Type:  MsgType(b[1]),
		Seq:   binary.LittleEndian.Uint16(b[2:4]),
		Value: int32(binary.LittleEndian.Uint32(b[4:8])),
	}, nil
}

// checksum is a simple XOR-fold with position salt, enough to catch the
// bit errors a noisy control link produces.
func checksum(b []byte) byte {
	var c byte
	for i, v := range b {
		c ^= v + byte(i)*31
	}
	return c
}

// AngleToWire converts a world angle in degrees to the wire encoding
// (centidegrees, wrapped to [0, 36000)).
func AngleToWire(deg float64) int32 {
	d := math.Mod(deg, 360)
	if d < 0 {
		d += 360
	}
	return int32(math.Round(d * 100))
}

// WireToAngle converts the wire encoding back to degrees.
func WireToAngle(v int32) float64 { return float64(v) / 100 }

// CurrentToWire converts amperes to the wire encoding (microamps).
func CurrentToWire(amps float64) int32 { return int32(math.Round(amps * 1e6)) }

// WireToCurrent converts the wire encoding back to amperes.
func WireToCurrent(v int32) float64 { return float64(v) / 1e6 }
