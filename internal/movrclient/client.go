// Package movrclient is the Go client for the movrd v1 job API: submit
// simulation specs, poll or block for results, stream per-session
// progress events, page through the job listing, and fetch trace
// artifacts. It is the one in-repo consumer idiom for the HTTP surface
// — examples/serve and cmd/movrload both drive movrd through it, so
// any drift between server and client breaks visibly in tests.
//
// Submissions retry transparently on 429 queue_full backpressure,
// honoring the server's Retry-After hint with exponential backoff
// between attempts. All other non-2xx responses surface as *APIError
// carrying the stable machine-readable code from the v1 error
// envelope.
package movrclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one movrd instance. The zero value is not usable;
// call New. Fields may be adjusted before first use.
type Client struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:8477".
	BaseURL string

	// HTTPClient defaults to a client with no overall timeout (waits
	// and event streams are long-lived; use contexts to bound calls).
	HTTPClient *http.Client

	// MaxRetries bounds transparent retries of 429 queue_full
	// responses. 0 disables retrying; the 429 surfaces as *APIError.
	MaxRetries int

	// RetryBackoff is the first retry delay when the server sends no
	// Retry-After hint; it doubles per attempt, capped at 2s.
	RetryBackoff time.Duration
}

// New returns a client for the daemon at baseURL with modest default
// backpressure handling (4 retries, 100ms initial backoff).
func New(baseURL string) *Client {
	return &Client{
		BaseURL:      strings.TrimRight(baseURL, "/"),
		HTTPClient:   &http.Client{},
		MaxRetries:   4,
		RetryBackoff: 100 * time.Millisecond,
	}
}

// APIError is a non-2xx response decoded from the v1 error envelope.
// Branch on Code — the stable machine-readable identifier — never on
// the human-readable message.
type APIError struct {
	StatusCode int    // HTTP status
	Code       string // invalid_spec, queue_full, not_found, ...
	Message    string
	Detail     string
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

func (e *APIError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("movrd: %s (%s): %s", e.Message, e.Code, e.Detail)
	}
	return fmt.Sprintf("movrd: %s (%s)", e.Message, e.Code)
}

// IsCode reports whether err is an *APIError with the given code.
func IsCode(err error, code string) bool {
	e, ok := err.(*APIError)
	return ok && e.Code == code
}

// Job mirrors the server's job-status document. Result is the raw
// result JSON, byte-identical across fresh runs, cache hits, and
// coalesced followers of the same spec.
type Job struct {
	ID            string          `json:"id"`
	State         string          `json:"state"` // queued|running|done|failed|canceled
	Cached        bool            `json:"cached"`
	CoalescedWith string          `json:"coalesced_with,omitempty"`
	SpecSHA       string          `json:"spec_sha256"`
	Spec          json.RawMessage `json:"spec"`
	Error         string          `json:"error,omitempty"`
	ElapsedMS     int64           `json:"elapsed_ms,omitempty"`
	Result        json.RawMessage `json:"result,omitempty"`
	ResultSHA     string          `json:"result_sha256,omitempty"`

	// CacheDisposition echoes the submit response's X-Movr-Cache
	// header ("hit", "coalesced", "miss"); empty on non-submit reads.
	CacheDisposition string `json:"-"`
}

// Terminal reports whether the job has finished (done, failed, or
// canceled).
func (j *Job) Terminal() bool {
	switch j.State {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// Event is one entry of a job's progress stream.
type Event struct {
	Seq           int     `json:"seq"`
	Type          string  `json:"type"` // queued|coalesced|running|session|done|failed|canceled
	Session       string  `json:"session,omitempty"`
	Done          int     `json:"done,omitempty"`
	Total         int     `json:"total,omitempty"`
	DeliveredFrac float64 `json:"delivered_frac,omitempty"`
	Primary       string  `json:"primary,omitempty"`
	Cached        bool    `json:"cached,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Submit posts a job spec and returns the accepted job without waiting
// for completion. spec is any JSON-marshalable value — typically a
// map or a struct mirroring the movrd spec schema.
func (c *Client) Submit(ctx context.Context, spec any) (*Job, error) {
	return c.submit(ctx, spec, false)
}

// SubmitWait posts a job spec and blocks until the job is terminal,
// returning the finished job with its result.
func (c *Client) SubmitWait(ctx context.Context, spec any) (*Job, error) {
	return c.submit(ctx, spec, true)
}

func (c *Client) submit(ctx context.Context, spec any, wait bool) (*Job, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("movrclient: marshal spec: %w", err)
	}
	u := c.BaseURL + "/v1/jobs"
	if wait {
		u += "?wait=1"
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.HTTPClient.Do(req)
		if err != nil {
			return nil, err
		}
		job, err := decodeJob(resp)
		if apiErr, ok := err.(*APIError); ok &&
			apiErr.StatusCode == http.StatusTooManyRequests && attempt < c.MaxRetries {
			delay := apiErr.RetryAfter
			if delay <= 0 {
				delay = backoff
			}
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			select {
			case <-time.After(delay):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return job, err
	}
}

// Get fetches the current status (and result, if terminal) of a job.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	return c.getJob(ctx, c.BaseURL+"/v1/jobs/"+url.PathEscape(id))
}

// Cancel requests cancellation and returns the job's state after the
// request. Canceling a terminal job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	return decodeJob(resp)
}

// Wait polls until the job is terminal. poll bounds the status-check
// interval (default 50ms).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		j, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return j, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// ListOptions filter and page the job listing.
type ListOptions struct {
	State    string // queued|running|done|failed|canceled, "" for all
	Scenario string // fleet scenario label or job kind, "" for all
	Limit    int    // page size, 0 for the server default
	Cursor   string // opaque next_cursor from the previous page
}

// ListPage is one page of the job listing.
type ListPage struct {
	Jobs       []Job  `json:"jobs"`
	NextCursor string `json:"next_cursor"`
}

// List fetches one page of jobs. Pass page.NextCursor back via
// ListOptions.Cursor to continue; an empty NextCursor means the listing
// is exhausted.
func (c *Client) List(ctx context.Context, opts ListOptions) (*ListPage, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", opts.State)
	}
	if opts.Scenario != "" {
		q.Set("scenario", opts.Scenario)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	u := c.BaseURL + "/v1/jobs"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var page ListPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("movrclient: decode listing: %w", err)
	}
	return &page, nil
}

// StreamEvents follows a job's progress stream, invoking fn for each
// event in sequence order. It returns nil when the stream ends after
// the job's terminal event, or fn's error if fn rejects an event.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("movrclient: decode event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Trace fetches a completed traced job's flight-data artifact (Chrome
// trace-event JSON).
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("movrclient: metrics status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func (c *Client) getJob(ctx context.Context, u string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	return decodeJob(resp)
}

func decodeJob(resp *http.Response) (*Job, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, fmt.Errorf("movrclient: decode job: %w", err)
	}
	j.CacheDisposition = resp.Header.Get("X-Movr-Cache")
	return &j, nil
}

// decodeError turns a non-2xx response into *APIError. A body that is
// not a v1 envelope (e.g. a proxy in the path) still yields an APIError
// with the status code and raw body as the message.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Detail  string `json:"detail"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.Detail = env.Error.Detail
		return apiErr
	}
	apiErr.Code = "unknown"
	apiErr.Message = strings.TrimSpace(string(body))
	return apiErr
}
