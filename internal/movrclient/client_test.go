package movrclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/server"
)

func newDaemon(t *testing.T, opts server.Options) *Client {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return New(ts.URL)
}

func fleetSpec(seed int) map[string]any {
	return map[string]any{
		"kind": "fleet",
		"fleet": map[string]any{
			"scenario": "home", "sessions": 2, "seed": seed, "duration_ms": 100,
		},
	}
}

// TestClientRoundTrip drives the whole client surface against a real
// in-process movrd: submit-and-wait, cache-hit resubmit, status get,
// event stream, and listing.
func TestClientRoundTrip(t *testing.T) {
	c := newDaemon(t, server.Options{Workers: 2})
	ctx := context.Background()

	j, err := c.SubmitWait(ctx, fleetSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != "done" || len(j.Result) == 0 {
		t.Fatalf("job state %s, %d result bytes, error %q", j.State, len(j.Result), j.Error)
	}
	if j.CacheDisposition != "miss" {
		t.Errorf("first submit disposition %q, want miss", j.CacheDisposition)
	}

	again, err := c.SubmitWait(ctx, fleetSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheDisposition != "hit" || !again.Cached {
		t.Errorf("resubmit disposition %q cached %v, want hit/true", again.CacheDisposition, again.Cached)
	}
	if !bytes.Equal(j.Result, again.Result) {
		t.Error("cached result not byte-identical")
	}

	got, err := c.Get(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || got.State != "done" || got.ResultSHA != j.ResultSHA {
		t.Errorf("Get mismatch: %+v", got)
	}

	var types []string
	err = c.StreamEvents(ctx, j.ID, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) < 3 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Errorf("event stream %v, want queued...done", types)
	}

	page, err := c.List(ctx, ListOptions{Scenario: "home"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.NextCursor != "" {
		t.Errorf("listing: %d jobs, cursor %q", len(page.Jobs), page.NextCursor)
	}

	// Pagination through the client: limit 1 walks both jobs.
	var walked int
	opts := ListOptions{Limit: 1}
	for {
		p, err := c.List(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		walked += len(p.Jobs)
		if p.NextCursor == "" {
			break
		}
		opts.Cursor = p.NextCursor
	}
	if walked != 2 {
		t.Errorf("cursor walk visited %d jobs, want 2", walked)
	}
}

// TestClientAPIError pins the typed error surface: a rejected spec and
// an unknown job come back as *APIError with the stable code.
func TestClientAPIError(t *testing.T) {
	c := newDaemon(t, server.Options{Workers: 1})
	ctx := context.Background()

	_, err := c.SubmitWait(ctx, map[string]any{"kind": "nonsense"})
	if !IsCode(err, server.ErrCodeInvalidSpec) {
		t.Fatalf("bad spec error = %v, want code %s", err, server.ErrCodeInvalidSpec)
	}
	_, err = c.Get(ctx, "job-99999")
	if !IsCode(err, server.ErrCodeNotFound) {
		t.Fatalf("unknown job error = %v, want code %s", err, server.ErrCodeNotFound)
	}
	var apiErr *APIError
	if e, ok := err.(*APIError); ok {
		apiErr = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if apiErr.StatusCode != http.StatusNotFound || apiErr.Message == "" {
		t.Errorf("envelope fields not carried: %+v", apiErr)
	}
}

// TestClientRetriesQueueFull pins backpressure handling: the client
// retries 429 queue_full with the server's Retry-After hint and
// eventually lands the job; with retries disabled the 429 surfaces.
func TestClientRetriesQueueFull(t *testing.T) {
	// A stub daemon that bounces the first two submissions.
	var submits int
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits++
		if submits <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"queue_full","message":"job queue full","detail":"retry"}}`)
			return
		}
		w.Header().Set("X-Movr-Cache", "miss")
		json.NewEncoder(w).Encode(map[string]any{"id": "job-1", "state": "done"})
	}))
	defer stub.Close()

	c := New(stub.URL)
	c.MaxRetries = 4
	c.RetryBackoff = time.Millisecond
	// Shrink the honored Retry-After for test speed by bounding the ctx;
	// the hint is 1s, so a generous deadline still proves retries happen.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	j, err := c.SubmitWait(ctx, fleetSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != "done" || submits != 3 {
		t.Fatalf("state %s after %d submits, want done after 3", j.State, submits)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("retries took %v — Retry-After: 1 hint not honored", elapsed)
	}

	submits = 0
	c2 := New(stub.URL)
	c2.MaxRetries = 0
	_, err = c2.SubmitWait(ctx, fleetSpec(1))
	if !IsCode(err, "queue_full") {
		t.Fatalf("no-retry client error = %v, want queue_full", err)
	}
	var apiErr *APIError
	if e, ok := err.(*APIError); ok {
		apiErr = e
	}
	if apiErr == nil || apiErr.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", apiErr.RetryAfter)
	}
}
