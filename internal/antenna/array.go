// Package antenna models the electronically-steerable phased arrays used
// by the MoVR AP, headset receiver, and reflector.
//
// The model is a uniform linear array (ULA) of patch elements with analog
// phase shifters, matching the paper's prototype (§4: "Each antenna in
// MoVR is a phased-array... packing multiple antenna elements into an
// array, and controlling the phase of each element using an analog
// component called a phase shifter"). The array factor is computed from
// first principles, including phase-shifter quantization, so beamwidth,
// sidelobes, scan loss, and pointing error all emerge from the physics
// rather than being table lookups.
//
// Angles are world-frame degrees (counter-clockwise from +X), consistent
// with package geom. Each array has a boresight orientation; steering is
// clamped to ±MaxScanDeg of boresight, as real phased arrays cannot steer
// to endfire.
package antenna

import (
	"fmt"
	"math"

	"github.com/movr-sim/movr/internal/units"
)

// Default modelling constants.
const (
	// DefaultElements gives the ≈10° half-power beamwidth the paper
	// reports for its arrays (§5.1: "the beam-width of our phased array
	// is ∼10 degrees").
	DefaultElements = 10

	// DefaultSpacingWavelengths is the classic half-wavelength element
	// pitch.
	DefaultSpacingWavelengths = 0.5

	// DefaultPhaseShifterBits models the effective resolution of the
	// analog phase shifters plus their control DAC.
	DefaultPhaseShifterBits = 8

	// DefaultElementGainDBi is the gain of one patch element.
	DefaultElementGainDBi = 5.0

	// DefaultBacklobeDB is the front-to-back suppression of the array.
	DefaultBacklobeDB = 30.0

	// MaxScanDeg bounds electronic steering away from endfire.
	MaxScanDeg = 75.0

	// patternFloorDB limits how deep pattern nulls can go relative to
	// the peak; hardware never exhibits mathematically perfect nulls.
	patternFloorDB = 45.0
)

// Config describes a phased array.
type Config struct {
	// Elements is the number of radiating elements (≥ 1).
	Elements int

	// SpacingWavelengths is the element pitch in wavelengths (> 0).
	SpacingWavelengths float64

	// PhaseShifterBits is the per-element phase quantization (≥ 1).
	PhaseShifterBits int

	// ElementGainDBi is the gain of a single element.
	ElementGainDBi float64

	// BacklobeDB is front-to-back suppression relative to peak gain.
	BacklobeDB float64

	// OrientationDeg is the boresight direction in world-frame degrees.
	OrientationDeg float64
}

// DefaultConfig returns the paper-calibrated array configuration with the
// given boresight orientation.
func DefaultConfig(orientationDeg float64) Config {
	return Config{
		Elements:           DefaultElements,
		SpacingWavelengths: DefaultSpacingWavelengths,
		PhaseShifterBits:   DefaultPhaseShifterBits,
		ElementGainDBi:     DefaultElementGainDBi,
		BacklobeDB:         DefaultBacklobeDB,
		OrientationDeg:     orientationDeg,
	}
}

// Array is a steerable uniform linear phased array.
type Array struct {
	cfg         Config
	steeringRel float64 // steering angle relative to boresight, degrees
}

// New validates cfg and returns a new Array steered to boresight.
func New(cfg Config) (*Array, error) {
	if cfg.Elements < 1 {
		return nil, fmt.Errorf("antenna: Elements = %d, need ≥ 1", cfg.Elements)
	}
	if cfg.SpacingWavelengths <= 0 {
		return nil, fmt.Errorf("antenna: SpacingWavelengths = %v, need > 0", cfg.SpacingWavelengths)
	}
	if cfg.PhaseShifterBits < 1 {
		return nil, fmt.Errorf("antenna: PhaseShifterBits = %d, need ≥ 1", cfg.PhaseShifterBits)
	}
	if cfg.BacklobeDB <= 0 {
		cfg.BacklobeDB = DefaultBacklobeDB
	}
	return &Array{cfg: cfg}, nil
}

// Default returns an Array with DefaultConfig(orientationDeg). It panics
// only if the default configuration is invalid, which would be a
// programming error.
func Default(orientationDeg float64) *Array {
	a, err := New(DefaultConfig(orientationDeg))
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// OrientationDeg returns the boresight direction in world degrees.
func (a *Array) OrientationDeg() float64 { return a.cfg.OrientationDeg }

// SetOrientation re-mounts the array with a new boresight direction,
// preserving the relative steering angle.
func (a *Array) SetOrientation(deg float64) { a.cfg.OrientationDeg = deg }

// SteerTo electronically steers the main beam toward the given world
// angle. Steering is clamped to ±MaxScanDeg from boresight; the applied
// (possibly clamped) world angle is returned. Steering is instantaneous,
// matching the paper's sub-microsecond analog beam switching.
func (a *Array) SteerTo(worldDeg float64) float64 {
	rel := units.AngleDiffDeg(worldDeg, a.cfg.OrientationDeg)
	rel = math.Max(-MaxScanDeg, math.Min(MaxScanDeg, rel))
	a.steeringRel = rel
	return units.NormalizeDeg(a.cfg.OrientationDeg + rel)
}

// SteeringDeg returns the current main-beam direction in world degrees.
func (a *Array) SteeringDeg() float64 {
	return units.NormalizeDeg(a.cfg.OrientationDeg + a.steeringRel)
}

// PeakGainDBi returns the array's broadside peak gain: element gain plus
// the 10·log10(N) array factor gain.
func (a *Array) PeakGainDBi() float64 {
	return a.cfg.ElementGainDBi + 10*math.Log10(float64(a.cfg.Elements))
}

// GainDBi returns the realized gain toward the given world-frame angle
// with the current steering, including element pattern, quantized array
// factor, sidelobes, and backlobe.
func (a *Array) GainDBi(worldDeg float64) float64 {
	rel := units.AngleDiffDeg(worldDeg, a.cfg.OrientationDeg)
	peak := a.PeakGainDBi()
	if math.Abs(rel) > 90 {
		return peak - a.cfg.BacklobeDB
	}
	af := a.arrayFactor(rel)
	// Element power pattern: cos²(θ), floored so it never out-dives the
	// backlobe model.
	cosT := math.Cos(units.DegToRad(rel))
	elemDB := 20 * math.Log10(math.Max(cosT, 1e-6))
	elemDB = math.Max(elemDB, -a.cfg.BacklobeDB)
	afDB := 20 * math.Log10(math.Max(af, 1e-9))
	g := peak + afDB + elemDB
	// Hardware null floor.
	if g < peak-patternFloorDB {
		g = peak - patternFloorDB
	}
	return g
}

// arrayFactor returns the normalized |AF| in [0, 1] toward the relative
// angle relDeg, using the quantized per-element phases for the current
// steering angle.
func (a *Array) arrayFactor(relDeg float64) float64 {
	n := a.cfg.Elements
	if n == 1 {
		return 1
	}
	d := a.cfg.SpacingWavelengths
	u := math.Sin(units.DegToRad(relDeg))
	us := math.Sin(units.DegToRad(a.steeringRel))
	quant := 2 * math.Pi / float64(int(1)<<a.cfg.PhaseShifterBits)
	var re, im float64
	for i := 0; i < n; i++ {
		// Ideal steering phase, then quantized by the phase shifter.
		phi := -2 * math.Pi * d * float64(i) * us
		phi = math.Round(phi/quant) * quant
		ph := 2*math.Pi*d*float64(i)*u + phi
		re += math.Cos(ph)
		im += math.Sin(ph)
	}
	return math.Hypot(re, im) / float64(n)
}

// BeamwidthDeg returns the half-power (−3 dB) beamwidth of the main lobe
// at the current steering angle, measured numerically.
func (a *Array) BeamwidthDeg() float64 {
	centre := a.SteeringDeg()
	g0 := a.GainDBi(centre)
	const step = 0.02
	var up, down float64
	for off := step; off <= 90; off += step {
		if a.GainDBi(centre+off) < g0-3 {
			up = off
			break
		}
	}
	for off := step; off <= 90; off += step {
		if a.GainDBi(centre-off) < g0-3 {
			down = off
			break
		}
	}
	if up == 0 {
		up = 90
	}
	if down == 0 {
		down = 90
	}
	return up + down
}

// Codebook returns the world-frame steering angles of a uniform beam
// codebook with the given angular step, covering the array's full scan
// range. A non-positive step yields a single boresight entry.
func (a *Array) Codebook(stepDeg float64) []float64 {
	if stepDeg <= 0 {
		return []float64{units.NormalizeDeg(a.cfg.OrientationDeg)}
	}
	var angles []float64
	for rel := -MaxScanDeg; rel <= MaxScanDeg+1e-9; rel += stepDeg {
		angles = append(angles, units.NormalizeDeg(a.cfg.OrientationDeg+rel))
	}
	return angles
}

// Pattern samples GainDBi over relative angles [−180, 180) at the given
// step and returns parallel slices of world angles and gains. It is a
// convenience for plotting and tests.
func (a *Array) Pattern(stepDeg float64) (worldDeg, gainDBi []float64) {
	if stepDeg <= 0 {
		stepDeg = 1
	}
	for rel := -180.0; rel < 180; rel += stepDeg {
		w := units.NormalizeDeg(a.cfg.OrientationDeg + rel)
		worldDeg = append(worldDeg, w)
		gainDBi = append(gainDBi, a.GainDBi(w))
	}
	return worldDeg, gainDBi
}
