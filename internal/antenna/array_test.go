package antenna

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/movr-sim/movr/internal/units"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Elements: 0, SpacingWavelengths: 0.5, PhaseShifterBits: 8},
		{Elements: 8, SpacingWavelengths: 0, PhaseShifterBits: 8},
		{Elements: 8, SpacingWavelengths: 0.5, PhaseShifterBits: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(DefaultConfig(0)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPeakGain(t *testing.T) {
	a := Default(0)
	// 5 dBi element + 10 log10(10) = 15 dBi.
	if got := a.PeakGainDBi(); math.Abs(got-15) > 1e-9 {
		t.Errorf("PeakGainDBi = %v, want 15", got)
	}
	// Boresight gain equals peak (no scan loss, no quantization loss at 0).
	if got := a.GainDBi(0); math.Abs(got-15) > 0.1 {
		t.Errorf("boresight gain = %v, want ~15", got)
	}
}

func TestBeamwidthMatchesPaper(t *testing.T) {
	// Paper §5.1: beamwidth ~10 degrees.
	a := Default(0)
	bw := a.BeamwidthDeg()
	if bw < 8 || bw > 12 {
		t.Errorf("beamwidth = %v°, want ~10°", bw)
	}
}

func TestSteeringMovesPeak(t *testing.T) {
	a := Default(0)
	applied := a.SteerTo(30)
	if math.Abs(units.AngleDiffDeg(applied, 30)) > 1e-9 {
		t.Fatalf("applied steering = %v", applied)
	}
	// Gain at 30° must now be near peak; gain at 0° must be well down.
	g30, g0 := a.GainDBi(30), a.GainDBi(0)
	if g30 < 13 {
		t.Errorf("gain at steering = %v", g30)
	}
	if g0 > g30-8 {
		t.Errorf("gain off-beam = %v vs %v: beam did not move", g0, g30)
	}
}

func TestSteeringClamp(t *testing.T) {
	a := Default(90)
	applied := a.SteerTo(90 + 120) // request beyond scan range
	rel := units.AngleDiffDeg(applied, 90)
	if math.Abs(rel-MaxScanDeg) > 1e-9 {
		t.Errorf("steering clamped to %v, want %v", rel, MaxScanDeg)
	}
}

func TestBacklobe(t *testing.T) {
	a := Default(0)
	// Directly behind the array.
	got := a.GainDBi(180)
	want := a.PeakGainDBi() - DefaultBacklobeDB
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("backlobe gain = %v, want %v", got, want)
	}
}

func TestPatternSymmetryAtBoresight(t *testing.T) {
	a := Default(0)
	for _, off := range []float64{5, 10, 20, 40, 70} {
		gp, gm := a.GainDBi(off), a.GainDBi(-off)
		if math.Abs(gp-gm) > 0.2 {
			t.Errorf("asymmetry at ±%v°: %v vs %v", off, gp, gm)
		}
	}
}

func TestScanLoss(t *testing.T) {
	// Steering far off boresight must cost gain (element pattern).
	a := Default(0)
	a.SteerTo(0)
	g0 := a.GainDBi(0)
	a.SteerTo(60)
	g60 := a.GainDBi(60)
	if g60 >= g0-2 {
		t.Errorf("no scan loss: %v at 0° vs %v at 60°", g0, g60)
	}
}

func TestCoarsePhaseShifterDegradesPattern(t *testing.T) {
	// Ablation hook: with 2-bit phase shifters, steering error and
	// sidelobe level should be visibly worse than with 8-bit.
	fine := Default(0)
	cfg := DefaultConfig(0)
	cfg.PhaseShifterBits = 2
	coarse, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fine.SteerTo(37)
	coarse.SteerTo(37)
	if coarse.GainDBi(37) > fine.GainDBi(37)+1e-9 {
		t.Errorf("coarse quantization should not beat fine: %v vs %v",
			coarse.GainDBi(37), fine.GainDBi(37))
	}
}

func TestSingleElementIsWide(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Elements = 1
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One element: array factor is 1 everywhere in front.
	if got := a.GainDBi(0); math.Abs(got-cfg.ElementGainDBi) > 1e-9 {
		t.Errorf("single-element boresight gain = %v", got)
	}
	if bw := a.BeamwidthDeg(); bw < 60 {
		t.Errorf("single-element beamwidth = %v, want wide", bw)
	}
}

func TestCodebook(t *testing.T) {
	a := Default(90)
	cb := a.Codebook(5)
	wantLen := int(2*MaxScanDeg/5) + 1
	if len(cb) != wantLen {
		t.Errorf("codebook size = %d, want %d", len(cb), wantLen)
	}
	// First entry is boresight − MaxScanDeg.
	if math.Abs(units.AngleDiffDeg(cb[0], 90-MaxScanDeg)) > 1e-9 {
		t.Errorf("codebook[0] = %v", cb[0])
	}
	// Non-positive step degenerates to boresight.
	if cb := a.Codebook(0); len(cb) != 1 || math.Abs(units.AngleDiffDeg(cb[0], 90)) > 1e-9 {
		t.Errorf("degenerate codebook = %v", cb)
	}
}

func TestPattern(t *testing.T) {
	a := Default(0)
	ang, gain := a.Pattern(1)
	if len(ang) != 360 || len(gain) != 360 {
		t.Fatalf("pattern size = %d/%d", len(ang), len(gain))
	}
	// Defaulted step.
	ang, _ = a.Pattern(0)
	if len(ang) != 360 {
		t.Errorf("defaulted pattern size = %d", len(ang))
	}
}

func TestSetOrientation(t *testing.T) {
	a := Default(0)
	a.SteerTo(10)
	a.SetOrientation(90)
	// Relative steering preserved: world beam now at 100.
	if got := a.SteeringDeg(); math.Abs(units.AngleDiffDeg(got, 100)) > 1e-9 {
		t.Errorf("SteeringDeg after re-orient = %v", got)
	}
}

// Property: gain never exceeds peak gain (plus numeric slack).
func TestQuickGainBounded(t *testing.T) {
	a := Default(45)
	f := func(steer, probe float64) bool {
		steer = math.Mod(steer, 360)
		probe = math.Mod(probe, 360)
		if math.IsNaN(steer) || math.IsNaN(probe) {
			return true
		}
		a.SteerTo(steer)
		g := a.GainDBi(probe)
		return g <= a.PeakGainDBi()+1e-6 && g >= a.PeakGainDBi()-patternFloorDB-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the gain at the steered direction tracks peak gain minus the
// element-pattern scan loss (cos²), within a small quantization margin.
func TestQuickSteeredGainHigh(t *testing.T) {
	a := Default(0)
	f := func(steer float64) bool {
		rel := math.Mod(steer, 60) // stay well inside scan range
		if math.IsNaN(rel) {
			return true
		}
		applied := a.SteerTo(rel)
		scanLoss := -20 * math.Log10(math.Cos(units.DegToRad(rel)))
		return a.GainDBi(applied) > a.PeakGainDBi()-scanLoss-1.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
