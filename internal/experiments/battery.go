package experiments

import (
	"fmt"
	"strings"
)

// BatteryConfig parameterizes the §6 battery-life analysis.
type BatteryConfig struct {
	// MaxDrawA is the headset's maximum current draw (paper: the HTC
	// Vive draws at most 1500 mA).
	MaxDrawA float64

	// TypicalDrawA is the sustained in-game draw.
	TypicalDrawA float64

	// CapacityAh is the battery capacity (paper: a 5200 mAh pack,
	// 3.8×1.7×0.9 in).
	CapacityAh float64

	// DerateFrac is the usable-capacity derating (conversion losses,
	// cutoff voltage).
	DerateFrac float64
}

// DefaultBatteryConfig uses the paper's numbers.
func DefaultBatteryConfig() BatteryConfig {
	return BatteryConfig{
		MaxDrawA:     1.5,
		TypicalDrawA: 1.1,
		CapacityAh:   5.2,
		DerateFrac:   0.95,
	}
}

// BatteryResult reports untethered runtime.
type BatteryResult struct {
	Config          BatteryConfig
	WorstCaseHours  float64
	TypicalHours    float64
	MeetsPaperClaim bool // paper: "can run the headset for 4-5 hours"
	PaperClaimLoHrs float64
	PaperClaimHiHrs float64
}

// Battery computes how long the §6 battery substitution powers the
// headset once the USB power cable is also cut.
func Battery(cfg BatteryConfig) BatteryResult {
	if cfg.MaxDrawA <= 0 || cfg.CapacityAh <= 0 {
		cfg = DefaultBatteryConfig()
	}
	if cfg.TypicalDrawA <= 0 {
		cfg.TypicalDrawA = cfg.MaxDrawA
	}
	if cfg.DerateFrac <= 0 || cfg.DerateFrac > 1 {
		cfg.DerateFrac = 1
	}
	usable := cfg.CapacityAh * cfg.DerateFrac
	res := BatteryResult{
		Config:          cfg,
		WorstCaseHours:  usable / cfg.MaxDrawA,
		TypicalHours:    usable / cfg.TypicalDrawA,
		PaperClaimLoHrs: 4,
		PaperClaimHiHrs: 5,
	}
	res.MeetsPaperClaim = res.TypicalHours >= res.PaperClaimLoHrs &&
		res.WorstCaseHours >= 3 // worst case still a long session
	return res
}

// Render prints the runtime table.
func (r BatteryResult) Render() string {
	var b strings.Builder
	b.WriteString("§6 — Battery-life analysis (cutting the USB power cable)\n\n")
	b.WriteString(Table(
		[]string{"quantity", "value"},
		[][]string{
			{"battery capacity", fmt.Sprintf("%.1f Ah (derated ×%.2f)", r.Config.CapacityAh, r.Config.DerateFrac)},
			{"max draw", fmt.Sprintf("%.2f A", r.Config.MaxDrawA)},
			{"typical draw", fmt.Sprintf("%.2f A", r.Config.TypicalDrawA)},
			{"worst-case runtime", fmt.Sprintf("%.1f h", r.WorstCaseHours)},
			{"typical runtime", fmt.Sprintf("%.1f h", r.TypicalHours)},
			{"paper claim", fmt.Sprintf("%.0f-%.0f h", r.PaperClaimLoHrs, r.PaperClaimHiHrs)},
			{"claim reproduced", fmt.Sprintf("%v", r.MeetsPaperClaim)},
		},
	))
	return b.String()
}
