package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/movr-sim/movr/internal/baseline"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/stats"
	"github.com/movr-sim/movr/internal/units"
)

// Fig3Config parameterizes the §3 blockage study.
type Fig3Config struct {
	// Runs is the number of random headset placements per scenario.
	Runs int

	// NLOSStepDeg is the Opt-NLOS beam sweep granularity (paper: 1°).
	NLOSStepDeg float64

	// Seed fixes placements.
	Seed int64
}

// DefaultFig3Config returns the paper-scale configuration.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{Runs: 20, NLOSStepDeg: 2, Seed: 1}
}

// Fig3Scenario names the five bars of Fig 3.
type Fig3Scenario string

// The five scenarios, in the paper's bar order.
const (
	ScenarioLOS  Fig3Scenario = "LOS"
	ScenarioHand Fig3Scenario = "LOS blocked by hand"
	ScenarioHead Fig3Scenario = "LOS blocked by head"
	ScenarioBody Fig3Scenario = "LOS blocked by body"
	ScenarioNLOS Fig3Scenario = "NLOS"
)

// Fig3Row is one bar of both Fig 3 panels.
type Fig3Row struct {
	Scenario  Fig3Scenario
	SNRs      []float64
	RatesGbps []float64
	MeanSNRdB float64
	MeanGbps  float64
}

// Fig3Result holds the full reproduction of Fig 3.
type Fig3Result struct {
	Rows             []Fig3Row
	RequiredSNRdB    float64
	RequiredRateGbps float64
}

// Fig3 reproduces the §3 measurement: for random LOS placements of the
// headset in the office, measure SNR and 802.11ad rate for the clear
// line of sight, three blockage scenarios (hand, head, another person's
// body), and the best non-line-of-sight beam pair.
func Fig3(cfg Fig3Config) Fig3Result {
	if cfg.Runs <= 0 {
		cfg.Runs = 20
	}
	if cfg.NLOSStepDeg <= 0 {
		cfg.NLOSStepDeg = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	scenarios := []Fig3Scenario{ScenarioLOS, ScenarioHand, ScenarioHead, ScenarioBody, ScenarioNLOS}
	rows := make([]Fig3Row, len(scenarios))
	for i, s := range scenarios {
		rows[i].Scenario = s
	}

	// One tracer scratch buffer serves every SNR read in the serial run
	// loop — the measurement sweep allocates nothing per placement.
	var pathBuf []channel.Path
	for run := 0; run < cfg.Runs; run++ {
		w := NewWorld(1)
		pos, _ := w.RandomHeadsetPlacement(rng, 1.5)
		hs := w.NewHeadsetAt(pos, 0)

		// Bar 1: clear LOS, both ends aligned.
		var losSNR float64
		losSNR, pathBuf = w.AlignedLOSSNRBuf(hs, pathBuf)
		record(&rows[0], losSNR)

		// Bars 2-4: blockage while the beams stay on the (now blocked)
		// direct path. The blockers sit where the paper puts them: the
		// player's own hand/head in front of the headset, or another
		// person mid-path.
		towardAP := geom.DirectionDeg(hs.Pos, w.AP.Pos)
		blockers := map[Fig3Scenario]room.Obstacle{
			ScenarioHand: room.Hand(geom.FromPolar(hs.Pos, towardAP, 0.35)),
			ScenarioHead: room.Head(geom.FromPolar(hs.Pos, towardAP, 0.18)),
			ScenarioBody: room.Body(hs.Pos.Lerp(w.AP.Pos, 0.5)),
		}
		for idx, s := range []Fig3Scenario{ScenarioHand, ScenarioHead, ScenarioBody} {
			w.Room.ClearObstacles()
			w.Room.AddObstacle(blockers[s])
			w.FaceEachOther(hs)
			var snr float64
			snr, pathBuf = radio.LinkSNRdBBuf(w.Tracer, &w.AP.Radio, &hs.Radio, pathBuf)
			record(&rows[idx+1], snr)
		}

		// Bar 5: Opt-NLOS — hand blockage present, direct path ignored,
		// both beams swept everywhere.
		w.Room.ClearObstacles()
		w.Room.AddObstacle(blockers[ScenarioHand])
		var res baseline.OptNLOSResult
		res, pathBuf = baseline.OptNLOSBuf(w.Tracer, &w.AP.Radio, &hs.Radio, cfg.NLOSStepDeg, pathBuf)
		record(&rows[4], res.SNRdB)
	}

	for i := range rows {
		rows[i].MeanSNRdB = stats.Mean(rows[i].SNRs)
		rows[i].MeanGbps = stats.Mean(rows[i].RatesGbps)
	}
	req := phy.HTCViveRequirement()
	return Fig3Result{
		Rows:             rows,
		RequiredSNRdB:    req.RequiredSNRdB(),
		RequiredRateGbps: req.RateBps / units.Gbps,
	}
}

func record(r *Fig3Row, snr float64) {
	r.SNRs = append(r.SNRs, snr)
	r.RatesGbps = append(r.RatesGbps, GbpsAt(snr))
}

// Render prints both panels of Fig 3 as bar charts plus a summary table.
func (r Fig3Result) Render() string {
	labels := make([]string, len(r.Rows))
	snrs := make([]float64, len(r.Rows))
	rates := make([]float64, len(r.Rows))
	tRows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = string(row.Scenario)
		snrs[i] = row.MeanSNRdB
		rates[i] = row.MeanGbps
		tRows[i] = []string{
			string(row.Scenario),
			fmt.Sprintf("%.1f", row.MeanSNRdB),
			fmt.Sprintf("%.2f", row.MeanGbps),
			fmt.Sprintf("%d", len(row.SNRs)),
		}
	}
	var b strings.Builder
	b.WriteString("Figure 3 — Blockage impact on SNR and data rate\n\n")
	b.WriteString(BarChart("SNR by scenario (dB)", labels, snrs, -10, 30,
		"required SNR", r.RequiredSNRdB, "dB"))
	b.WriteByte('\n')
	b.WriteString(BarChart("Data rate by scenario (Gb/s)", labels, rates, 0, 7,
		"required rate", r.RequiredRateGbps, "Gb/s"))
	b.WriteByte('\n')
	b.WriteString(Table(
		[]string{"scenario", "mean SNR (dB)", "mean rate (Gb/s)", "runs"},
		tRows,
	))
	return b.String()
}
