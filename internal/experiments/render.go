package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/movr-sim/movr/internal/stats"
)

// Table renders a fixed-width text table with a header row.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// BarChart renders labelled horizontal bars with a reference line, used
// for the Fig 3 reproduction. Values are clamped at lo.
func BarChart(title string, labels []string, values []float64, lo, hi float64, refLabel string, ref float64, unit string) string {
	const width = 46
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	refCol := int((ref - lo) / span * width)
	for i, label := range labels {
		v := values[i]
		vc := math.Max(lo, math.Min(hi, v))
		n := int((vc - lo) / span * width)
		bar := strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		if refCol >= 0 && refCol < width {
			marker := "|"
			if refCol < n {
				marker = "+"
			}
			bar = bar[:refCol] + marker + bar[refCol+1:]
		}
		fmt.Fprintf(&b, "  %-18s [%s] %6.2f %s\n", label, bar, v, unit)
	}
	fmt.Fprintf(&b, "  %-18s  %s marks %q = %.2f %s\n", "", "|", refLabel, ref, unit)
	return b.String()
}

// CDFPlot renders one or more empirical CDFs as ASCII art over a shared
// x-range — the Fig 9 presentation.
func CDFPlot(title string, series map[string][]float64, width, height int) string {
	if width <= 10 {
		width = 60
	}
	if height <= 4 {
		height = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, xs := range series {
		if len(xs) == 0 {
			continue
		}
		lo = math.Min(lo, stats.Min(xs))
		hi = math.Max(hi, stats.Max(xs))
	}
	if math.IsInf(lo, 1) {
		return title + "\n  (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#'}
	names := sortedKeys(series)
	for si, name := range names {
		xs := series[name]
		if len(xs) == 0 {
			continue
		}
		cdf := stats.NewCDF(xs)
		m := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			p := cdf.At(x)
			row := height - 1 - int(p*float64(height-1))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		p := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&b, "  %4.2f |%s|\n", p, string(row))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       %-10.1f%*.1f\n", lo, width-10, hi)
	for si, name := range names {
		fmt.Fprintf(&b, "       %c = %s (n=%d)\n", markers[si%len(markers)], name, len(series[name]))
	}
	return b.String()
}

// ScatterPlot renders (x, y) pairs with an optional y=x diagonal — the
// Fig 8 presentation (estimated vs actual angle).
func ScatterPlot(title string, xs, ys []float64, diagonal bool, width, height int) string {
	if width <= 10 {
		width = 60
	}
	if height <= 4 {
		height = 20
	}
	if len(xs) == 0 || len(xs) != len(ys) {
		return title + "\n  (no data)\n"
	}
	lo := math.Min(stats.Min(xs), stats.Min(ys))
	hi := math.Max(stats.Max(xs), stats.Max(ys))
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, m byte) {
		col := int((x - lo) / (hi - lo) * float64(width-1))
		row := height - 1 - int((y-lo)/(hi-lo)*float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = m
		}
	}
	if diagonal {
		for c := 0; c < width; c++ {
			v := lo + (hi-lo)*float64(c)/float64(width-1)
			put(v, v, '.')
		}
	}
	for i := range xs {
		put(xs[i], ys[i], '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s|\n", string(row))
	}
	fmt.Fprintf(&b, "   %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   %-10.1f%*.1f\n", lo, width-10, hi)
	if diagonal {
		b.WriteString("   . = ground truth (y=x), * = estimates\n")
	}
	return b.String()
}

// LinePlot renders y(x) series as ASCII — the Fig 7 presentation.
func LinePlot(title string, xs []float64, series map[string][]float64, width, height int) string {
	if width <= 10 {
		width = 70
	}
	if height <= 4 {
		height = 14
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		lo = math.Min(lo, stats.Min(ys))
		hi = math.Max(hi, stats.Max(ys))
	}
	if math.IsInf(lo, 1) || len(xs) == 0 {
		return title + "\n  (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x'}
	names := sortedKeys(series)
	for si, name := range names {
		ys := series[name]
		m := markers[si%len(markers)]
		for i, y := range ys {
			col := int(float64(i) / float64(len(ys)-1) * float64(width-1))
			row := height - 1 - int((y-lo)/(hi-lo)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %.1f..%.1f)\n", title, lo, hi)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s|\n", string(row))
	}
	fmt.Fprintf(&b, "   %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   x: %.0f..%.0f\n", xs[0], xs[len(xs)-1])
	for si, name := range names {
		fmt.Fprintf(&b, "   %c = %s\n", markers[si%len(markers)], name)
	}
	return b.String()
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
