package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
)

// TestHeatmapParallelDeterminism: the coverage map is identical for any
// worker count (and race-clean under `go test -race`).
func TestHeatmapParallelDeterminism(t *testing.T) {
	base := HeatmapConfig{GridStep: 1.0, Yaws: []float64{0, 120, 240}, WithReflector: true}

	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8

	a := Heatmap(serial)
	b := Heatmap(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("heatmap differs between 1 and 8 workers")
	}
}

// TestFig9ParallelDeterminism: trials measure the same poses and produce
// the same CDFs for any worker count.
func TestFig9ParallelDeterminism(t *testing.T) {
	base := Fig9Config{Runs: 6, NLOSStepDeg: 10, Seed: 2}

	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8

	a := Fig9(serial)
	b := Fig9(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig 9 differs between 1 and 8 workers")
	}
}

// TestRunSessionVariant exercises the fleet-facing session entry point:
// custom rooms, mounts and blockers work; impossible rooms error instead
// of panicking; reflector variants hand off.
func TestRunSessionVariant(t *testing.T) {
	cfg := SessionConfig{
		Duration:     2 * time.Second,
		Seed:         4,
		ReEvalPeriod: 100 * time.Millisecond,
		RoomW:        6,
		RoomD:        4,
		Mounts:       []Mount{{Pos: geom.V(5.6, 3.6), FacingDeg: 225}},
		Blockers:     []room.Obstacle{room.Body(geom.V(3, 2))},
	}
	out, err := RunSessionVariant(cfg, VariantMoVRTracking)
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.Frames == 0 {
		t.Fatal("no frames streamed")
	}
	if out.Handoffs < 0 {
		t.Fatalf("handoffs = %d", out.Handoffs)
	}

	// Direct-only never has a reflector to hand off to.
	direct, err := RunSessionVariant(cfg, VariantDirectOnly)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Handoffs != 0 {
		t.Errorf("direct-only handoffs = %d, want 0", direct.Handoffs)
	}

	// A room too small to walk in is an error, not a panic.
	bad := cfg
	bad.RoomW, bad.RoomD = 0.9, 0.9
	if _, err := RunSessionVariant(bad, VariantMoVRTracking); err == nil {
		t.Error("sub-metre room should fail")
	}
}

// TestSessionExplicitFootprint: an explicit footprint — even 5 × 5 —
// builds a bare drywall room, while the zero-value default keeps the
// furnished office testbed.
func TestSessionExplicitFootprint(t *testing.T) {
	office, err := sessionWorld(SessionConfig{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	bare, err := sessionWorld(SessionConfig{RoomW: 5, RoomD: 5}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bare.Room.Walls()); got != 4 {
		t.Errorf("explicit 5x5 room has %d walls, want 4 bare perimeter walls", got)
	}
	if got := len(office.Room.Walls()); got <= 4 {
		t.Errorf("default room has %d walls, want the furnished office", got)
	}
}

// TestSessionVariantSubset: cfg.Variants limits which variants run, and
// the handoff map covers exactly those.
func TestSessionVariantSubset(t *testing.T) {
	cfg := SessionConfig{
		Duration:     2 * time.Second,
		Seed:         6,
		ReEvalPeriod: 100 * time.Millisecond,
		Variants:     []SessionVariant{VariantMoVRTracking},
	}
	r := Session(cfg)
	if len(r.Reports) != 1 || len(r.Handoffs) != 1 {
		t.Fatalf("reports=%d handoffs=%d, want 1 each", len(r.Reports), len(r.Handoffs))
	}
	if _, ok := r.Reports[VariantMoVRTracking]; !ok {
		t.Error("tracking variant missing")
	}
	// Render lists only the variants that ran — no phantom zero rows.
	out := r.Render()
	if strings.Contains(out, string(VariantDirectOnly)) {
		t.Error("render shows a variant that never ran")
	}
	if !strings.Contains(out, string(VariantMoVRTracking)) {
		t.Error("render missing the variant that ran")
	}
}
