package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/align"
	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/fleet/pool"
	"github.com/movr-sim/movr/internal/gainctl"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/stats"
)

// ablate fans a sweep's points across the fleet worker pool. Each point
// computes one row independently; rows come back in sweep order, so the
// tables are identical to a serial run. Sweep points cannot fail — only
// a worker panic surfaces, re-raised here as an error naming the
// failing point (the pool recovers the original panic, so its value and
// stack are folded into the message).
func ablate[T any](n int, point func(i int) T) []T {
	rows, err := pool.Map(context.Background(), n, 0, func(_ context.Context, i int) (T, error) {
		return point(i), nil
	})
	if err != nil {
		panic(err)
	}
	return rows
}

// GainBackoffRow is one point of the gain-control margin ablation.
type GainBackoffRow struct {
	BackoffSteps int
	// MeanGainDB is the achieved amplifier gain (higher = more SNR).
	MeanGainDB float64
	// MeanMarginDB is the stability margin left.
	MeanMarginDB float64
	// UnstableFrac is how often ±jitter beam drift destabilizes the
	// loop before the next gain-control run.
	UnstableFrac float64
}

// AblationGainBackoff quantifies the §4.2 design choice "keeps the
// amplification gain just below this point": a small back-off maximizes
// gain but risks instability when beam tracking moves the leakage; a
// large back-off is safe but wastes SNR.
func AblationGainBackoff(seed int64) []GainBackoffRow {
	backoffs := []int{1, 2, 4, 8, 16}
	const trials = 40

	// Pre-draw each trial's randomness serially, in the historical
	// backoff-major order, so the parallel sweep below measures exactly
	// the devices and drifts a serial run would.
	type draw struct {
		devSeed        int64
		beamDeg, drift float64
	}
	rng := rand.New(rand.NewSource(seed))
	draws := make([][]draw, len(backoffs))
	for bi := range backoffs {
		draws[bi] = make([]draw, trials)
		for i := range draws[bi] {
			draws[bi][i] = draw{
				devSeed: rng.Int63n(1 << 30),
				beamDeg: 270 + rng.Float64()*60 - 30,
				drift:   rng.Float64()*10 - 5,
			}
		}
	}

	return ablate(len(backoffs), func(bi int) GainBackoffRow {
		cfg := gainctl.DefaultConfig()
		cfg.BackoffSteps = backoffs[bi]
		var gains, margins []float64
		unstable := 0
		for i := 0; i < trials; i++ {
			d := draws[bi][i]
			devCfg := reflector.DefaultConfig(geom.V(2.5, 5), 270)
			devCfg.BaseIsolationDB = 42 // isolation regime where the knee binds
			devCfg.MinLeakageDB = 25
			devCfg.Seed = d.devSeed
			dev, err := reflector.New(devCfg)
			if err != nil {
				panic(err)
			}
			dev.SetBothBeams(d.beamDeg)
			res := gainctl.Optimize(dev, -60, cfg)
			gains = append(gains, res.GainDB)
			margins = append(margins, res.MarginDB)
			// Beam drift before the next optimization pass.
			dev.SetTXBeam(d.beamDeg + d.drift)
			if !dev.Stable() {
				unstable++
			}
		}
		return GainBackoffRow{
			BackoffSteps: backoffs[bi],
			MeanGainDB:   stats.Mean(gains),
			MeanMarginDB: stats.Mean(margins),
			UnstableFrac: float64(unstable) / trials,
		}
	})
}

// PhaseBitsRow is one point of the phase-shifter resolution ablation.
type PhaseBitsRow struct {
	Bits int
	// SteeredGainDBi is the realized gain at a 37° steer.
	SteeredGainDBi float64
	// AlignErrDeg is the mean Fig 8-style alignment error.
	AlignErrDeg float64
}

// AblationPhaseBits quantifies how much phase-shifter resolution the
// arrays need: coarse quantization costs steered gain and alignment
// accuracy.
func AblationPhaseBits(seed int64) []PhaseBitsRow {
	allBits := []int{1, 2, 3, 4, 6, 8}
	return ablate(len(allBits), func(i int) PhaseBitsRow {
		bits := allBits[i]
		aCfg := antenna.DefaultConfig(0)
		aCfg.PhaseShifterBits = bits
		arr, err := antenna.New(aCfg)
		if err != nil {
			panic(err)
		}
		arr.SteerTo(37)
		gain := arr.GainDBi(37)

		// Mini Fig 8 with this resolution on the reflector arrays.
		var errs []float64
		rng := rand.New(rand.NewSource(seed))
		for run := 0; run < 6; run++ {
			w := NewWorld(0)
			devCfg := reflector.DefaultConfig(geom.V(1+rng.Float64()*3, 5), 270)
			devCfg.RXArray.PhaseShifterBits = bits
			devCfg.TXArray.PhaseShifterBits = bits
			devCfg.Seed = rng.Int63n(1 << 30)
			dev, err := reflector.New(devCfg)
			if err != nil {
				panic(err)
			}
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, seed+int64(run))
			sCfg := align.DefaultConfig()
			sCfg.Seed = seed + int64(run)
			sw, err := align.NewSweeper(w.AP, dev, link, w.Tracer, sCfg)
			if err != nil {
				panic(err)
			}
			r, err := sw.Hierarchical()
			if err != nil {
				continue
			}
			errs = append(errs, align.ErrorDeg(r.ReflBeamDeg, align.GroundTruthDeg(dev, w.AP)))
		}
		return PhaseBitsRow{
			Bits:           bits,
			SteeredGainDBi: gain,
			AlignErrDeg:    stats.Mean(errs),
		}
	})
}

// SweepStepRow is one point of the alignment-granularity ablation.
type SweepStepRow struct {
	CoarseStepDeg float64
	MeanErrDeg    float64
	MeanTime      time.Duration
	Measurements  int
}

// AblationSweepStep trades alignment time against accuracy by varying
// the hierarchical sweep's coarse step.
func AblationSweepStep(seed int64) []SweepStepRow {
	steps := []float64{3, 5, 7, 10, 15}
	return ablate(len(steps), func(i int) SweepStepRow {
		step := steps[i]
		var errs []float64
		var total time.Duration
		meas := 0
		const runs = 6
		rng := rand.New(rand.NewSource(seed))
		for run := 0; run < runs; run++ {
			w := NewWorld(0)
			devCfg := reflector.DefaultConfig(geom.V(1+rng.Float64()*3, 5), 270)
			devCfg.Seed = rng.Int63n(1 << 30)
			dev, err := reflector.New(devCfg)
			if err != nil {
				panic(err)
			}
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, seed+int64(run))
			sCfg := align.DefaultConfig()
			sCfg.CoarseStepDeg = step
			sCfg.Seed = seed + int64(run)
			sw, err := align.NewSweeper(w.AP, dev, link, w.Tracer, sCfg)
			if err != nil {
				panic(err)
			}
			r, err := sw.Hierarchical()
			if err != nil {
				continue
			}
			errs = append(errs, align.ErrorDeg(r.ReflBeamDeg, align.GroundTruthDeg(dev, w.AP)))
			total += r.TotalTime()
			meas += r.Measurements
		}
		return SweepStepRow{
			CoarseStepDeg: step,
			MeanErrDeg:    stats.Mean(errs),
			MeanTime:      total / runs,
			Measurements:  meas / runs,
		}
	})
}

// TrackingPeriodRow is one point of the pose-tracking cadence ablation.
type TrackingPeriodRow struct {
	Period     time.Duration
	GlitchFrac float64
}

// AblationTrackingPeriod sweeps the pose-driven re-steering cadence of
// the §6 tracking proposal: how often must the link manager act on VR
// pose for the stream to survive player motion?
func AblationTrackingPeriod(seed int64) []TrackingPeriodRow {
	periods := []time.Duration{
		20 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
	}
	return ablate(len(periods), func(i int) TrackingPeriodRow {
		cfg := SessionConfig{
			Duration:     10 * time.Second,
			Seed:         seed,
			ReEvalPeriod: periods[i],
		}.withDefaults()
		trace, err := sessionTrace(cfg)
		if err != nil {
			panic(err) // config is structurally valid
		}
		out, err := runVariant(cfg, trace, VariantMoVRTracking)
		if err != nil {
			panic(err) // config is structurally valid
		}
		return TrackingPeriodRow{Period: periods[i], GlitchFrac: out.Report.GlitchFrac}
	})
}

// RenderTrackingAblation prints the cadence table.
func RenderTrackingAblation(rows []TrackingPeriodRow) string {
	var b strings.Builder
	b.WriteString("Ablation — pose-tracking cadence (§6 future work)\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{r.Period.String(), fmt.Sprintf("%.1f%%", 100*r.GlitchFrac)})
	}
	b.WriteString(Table([]string{"re-steer period", "glitch rate"}, t))
	return b.String()
}

// RenderAblations prints all three ablation tables.
func RenderAblations(backoff []GainBackoffRow, bits []PhaseBitsRow, steps []SweepStepRow) string {
	var b strings.Builder
	b.WriteString("Ablation — gain-control back-off (§4.2 \"just below this point\")\n")
	var rows [][]string
	for _, r := range backoff {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.BackoffSteps),
			fmt.Sprintf("%.1f", r.MeanGainDB),
			fmt.Sprintf("%.1f", r.MeanMarginDB),
			fmt.Sprintf("%.0f%%", 100*r.UnstableFrac),
		})
	}
	b.WriteString(Table([]string{"backoff steps", "mean gain (dB)", "mean margin (dB)", "unstable after drift"}, rows))

	b.WriteString("\nAblation — phase-shifter resolution\n")
	rows = rows[:0]
	for _, r := range bits {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Bits),
			fmt.Sprintf("%.1f", r.SteeredGainDBi),
			fmt.Sprintf("%.1f", r.AlignErrDeg),
		})
	}
	b.WriteString(Table([]string{"bits", "gain at 37° steer (dBi)", "mean align err (deg)"}, rows))

	b.WriteString("\nAblation — alignment sweep granularity\n")
	rows = rows[:0]
	for _, r := range steps {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f°", r.CoarseStepDeg),
			fmt.Sprintf("%.1f", r.MeanErrDeg),
			r.MeanTime.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%d", r.Measurements),
		})
	}
	b.WriteString(Table([]string{"coarse step", "mean err (deg)", "mean time", "measurements"}, rows))
	return b.String()
}
