package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/align"
	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/gainctl"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/stats"
)

// GainBackoffRow is one point of the gain-control margin ablation.
type GainBackoffRow struct {
	BackoffSteps int
	// MeanGainDB is the achieved amplifier gain (higher = more SNR).
	MeanGainDB float64
	// MeanMarginDB is the stability margin left.
	MeanMarginDB float64
	// UnstableFrac is how often ±jitter beam drift destabilizes the
	// loop before the next gain-control run.
	UnstableFrac float64
}

// AblationGainBackoff quantifies the §4.2 design choice "keeps the
// amplification gain just below this point": a small back-off maximizes
// gain but risks instability when beam tracking moves the leakage; a
// large back-off is safe but wastes SNR.
func AblationGainBackoff(seed int64) []GainBackoffRow {
	rng := rand.New(rand.NewSource(seed))
	var rows []GainBackoffRow
	for _, backoff := range []int{1, 2, 4, 8, 16} {
		cfg := gainctl.DefaultConfig()
		cfg.BackoffSteps = backoff
		var gains, margins []float64
		unstable := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			devCfg := reflector.DefaultConfig(geom.V(2.5, 5), 270)
			devCfg.BaseIsolationDB = 42 // isolation regime where the knee binds
			devCfg.MinLeakageDB = 25
			devCfg.Seed = rng.Int63n(1 << 30)
			dev, err := reflector.New(devCfg)
			if err != nil {
				panic(err)
			}
			beam := 270 + rng.Float64()*60 - 30
			dev.SetBothBeams(beam)
			res := gainctl.Optimize(dev, -60, cfg)
			gains = append(gains, res.GainDB)
			margins = append(margins, res.MarginDB)
			// Beam drift before the next optimization pass.
			dev.SetTXBeam(beam + rng.Float64()*10 - 5)
			if !dev.Stable() {
				unstable++
			}
		}
		rows = append(rows, GainBackoffRow{
			BackoffSteps: backoff,
			MeanGainDB:   stats.Mean(gains),
			MeanMarginDB: stats.Mean(margins),
			UnstableFrac: float64(unstable) / trials,
		})
	}
	return rows
}

// PhaseBitsRow is one point of the phase-shifter resolution ablation.
type PhaseBitsRow struct {
	Bits int
	// SteeredGainDBi is the realized gain at a 37° steer.
	SteeredGainDBi float64
	// AlignErrDeg is the mean Fig 8-style alignment error.
	AlignErrDeg float64
}

// AblationPhaseBits quantifies how much phase-shifter resolution the
// arrays need: coarse quantization costs steered gain and alignment
// accuracy.
func AblationPhaseBits(seed int64) []PhaseBitsRow {
	var rows []PhaseBitsRow
	for _, bits := range []int{1, 2, 3, 4, 6, 8} {
		aCfg := antenna.DefaultConfig(0)
		aCfg.PhaseShifterBits = bits
		arr, err := antenna.New(aCfg)
		if err != nil {
			panic(err)
		}
		arr.SteerTo(37)
		gain := arr.GainDBi(37)

		// Mini Fig 8 with this resolution on the reflector arrays.
		var errs []float64
		rng := rand.New(rand.NewSource(seed))
		for run := 0; run < 6; run++ {
			w := NewWorld(0)
			devCfg := reflector.DefaultConfig(geom.V(1+rng.Float64()*3, 5), 270)
			devCfg.RXArray.PhaseShifterBits = bits
			devCfg.TXArray.PhaseShifterBits = bits
			devCfg.Seed = rng.Int63n(1 << 30)
			dev, err := reflector.New(devCfg)
			if err != nil {
				panic(err)
			}
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, seed+int64(run))
			sCfg := align.DefaultConfig()
			sCfg.Seed = seed + int64(run)
			sw, err := align.NewSweeper(w.AP, dev, link, w.Tracer, sCfg)
			if err != nil {
				panic(err)
			}
			r, err := sw.Hierarchical()
			if err != nil {
				continue
			}
			errs = append(errs, align.ErrorDeg(r.ReflBeamDeg, align.GroundTruthDeg(dev, w.AP)))
		}
		rows = append(rows, PhaseBitsRow{
			Bits:           bits,
			SteeredGainDBi: gain,
			AlignErrDeg:    stats.Mean(errs),
		})
	}
	return rows
}

// SweepStepRow is one point of the alignment-granularity ablation.
type SweepStepRow struct {
	CoarseStepDeg float64
	MeanErrDeg    float64
	MeanTime      time.Duration
	Measurements  int
}

// AblationSweepStep trades alignment time against accuracy by varying
// the hierarchical sweep's coarse step.
func AblationSweepStep(seed int64) []SweepStepRow {
	var rows []SweepStepRow
	for _, step := range []float64{3, 5, 7, 10, 15} {
		var errs []float64
		var total time.Duration
		meas := 0
		const runs = 6
		rng := rand.New(rand.NewSource(seed))
		for run := 0; run < runs; run++ {
			w := NewWorld(0)
			devCfg := reflector.DefaultConfig(geom.V(1+rng.Float64()*3, 5), 270)
			devCfg.Seed = rng.Int63n(1 << 30)
			dev, err := reflector.New(devCfg)
			if err != nil {
				panic(err)
			}
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, seed+int64(run))
			sCfg := align.DefaultConfig()
			sCfg.CoarseStepDeg = step
			sCfg.Seed = seed + int64(run)
			sw, err := align.NewSweeper(w.AP, dev, link, w.Tracer, sCfg)
			if err != nil {
				panic(err)
			}
			r, err := sw.Hierarchical()
			if err != nil {
				continue
			}
			errs = append(errs, align.ErrorDeg(r.ReflBeamDeg, align.GroundTruthDeg(dev, w.AP)))
			total += r.TotalTime()
			meas += r.Measurements
		}
		rows = append(rows, SweepStepRow{
			CoarseStepDeg: step,
			MeanErrDeg:    stats.Mean(errs),
			MeanTime:      total / runs,
			Measurements:  meas / runs,
		})
	}
	return rows
}

// TrackingPeriodRow is one point of the pose-tracking cadence ablation.
type TrackingPeriodRow struct {
	Period     time.Duration
	GlitchFrac float64
}

// AblationTrackingPeriod sweeps the pose-driven re-steering cadence of
// the §6 tracking proposal: how often must the link manager act on VR
// pose for the stream to survive player motion?
func AblationTrackingPeriod(seed int64) []TrackingPeriodRow {
	var rows []TrackingPeriodRow
	for _, period := range []time.Duration{
		20 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
	} {
		cfg := SessionConfig{
			Duration:     10 * time.Second,
			Seed:         seed,
			ReEvalPeriod: period,
		}
		trace, err := sessionTrace(cfg)
		if err != nil {
			panic(err) // config is structurally valid
		}
		rep := runVariant(cfg, trace, VariantMoVRTracking)
		rows = append(rows, TrackingPeriodRow{Period: period, GlitchFrac: rep.GlitchFrac})
	}
	return rows
}

// RenderTrackingAblation prints the cadence table.
func RenderTrackingAblation(rows []TrackingPeriodRow) string {
	var b strings.Builder
	b.WriteString("Ablation — pose-tracking cadence (§6 future work)\n")
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{r.Period.String(), fmt.Sprintf("%.1f%%", 100*r.GlitchFrac)})
	}
	b.WriteString(Table([]string{"re-steer period", "glitch rate"}, t))
	return b.String()
}

// RenderAblations prints all three ablation tables.
func RenderAblations(backoff []GainBackoffRow, bits []PhaseBitsRow, steps []SweepStepRow) string {
	var b strings.Builder
	b.WriteString("Ablation — gain-control back-off (§4.2 \"just below this point\")\n")
	var rows [][]string
	for _, r := range backoff {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.BackoffSteps),
			fmt.Sprintf("%.1f", r.MeanGainDB),
			fmt.Sprintf("%.1f", r.MeanMarginDB),
			fmt.Sprintf("%.0f%%", 100*r.UnstableFrac),
		})
	}
	b.WriteString(Table([]string{"backoff steps", "mean gain (dB)", "mean margin (dB)", "unstable after drift"}, rows))

	b.WriteString("\nAblation — phase-shifter resolution\n")
	rows = rows[:0]
	for _, r := range bits {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Bits),
			fmt.Sprintf("%.1f", r.SteeredGainDBi),
			fmt.Sprintf("%.1f", r.AlignErrDeg),
		})
	}
	b.WriteString(Table([]string{"bits", "gain at 37° steer (dBi)", "mean align err (deg)"}, rows))

	b.WriteString("\nAblation — alignment sweep granularity\n")
	rows = rows[:0]
	for _, r := range steps {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f°", r.CoarseStepDeg),
			fmt.Sprintf("%.1f", r.MeanErrDeg),
			r.MeanTime.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%d", r.Measurements),
		})
	}
	b.WriteString(Table([]string{"coarse step", "mean err (deg)", "mean time", "measurements"}, rows))
	return b.String()
}
