// Package experiments reproduces every table and figure in the paper's
// evaluation (§3 Fig 3, §4.2 Fig 7, §5.1 Fig 8, §5.2 Fig 9) plus the §6
// discussion analyses (battery life, latency budget) and an end-to-end
// VR streaming session that exercises the paper's proposed future work
// (pose-driven beam tracking).
//
// Every experiment takes a seed and is bit-for-bit reproducible. Results
// are returned as data and rendered as text tables/plots by render.go.
package experiments

import (
	"math/rand"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

// World is the standard experimental testbed: the paper's 5 m × 5 m
// office with an AP in the south-west corner.
type World struct {
	Room   *room.Room
	Budget channel.Budget
	Tracer *channel.Tracer
	AP     *radio.AP
}

// NewWorld builds the testbed with reflections traced to the given
// order, at the paper's 24 GHz prototype carrier.
func NewWorld(maxBounces int) *World {
	return NewWorldWithBudget(maxBounces, channel.DefaultBudget())
}

// APPos is the AP's standard position in every generated world: tucked
// into the south-west corner.
var APPos = geom.V(0.4, 0.4)

// NewWorldWithBudget builds the testbed with an explicit link budget —
// e.g. channel.Budget60GHz() to study the 802.11ad band the paper's
// rate tables come from.
func NewWorldWithBudget(maxBounces int, b channel.Budget) *World {
	rm := room.NewOffice5x5()
	return &World{
		Room:   rm,
		Budget: b,
		Tracer: channel.NewTracer(rm, b.FreqHz, maxBounces),
		AP:     radio.NewAP(APPos, antenna.Default(45), b),
	}
}

// NewSizedWorld builds a bare rectangular drywall room of the given
// footprint with the AP in the south-west corner — the generic testbed
// the fleet scenarios (arcades, homes) deploy into when the paper's
// office does not fit.
func NewSizedWorld(widthM, depthM float64, maxBounces int) (*World, error) {
	rm, err := room.New(widthM, depthM, room.Drywall)
	if err != nil {
		return nil, err
	}
	b := channel.DefaultBudget()
	return &World{
		Room:   rm,
		Budget: b,
		Tracer: channel.NewTracer(rm, b.FreqHz, maxBounces),
		AP:     radio.NewAP(APPos, antenna.Default(45), b),
	}, nil
}

// NewHeadsetAt places a headset radio at pos facing yawDeg.
func (w *World) NewHeadsetAt(pos geom.Vec, yawDeg float64) *radio.Headset {
	return radio.NewHeadset(pos, antenna.Default(yawDeg), w.Budget)
}

// RandomHeadsetPlacement draws a headset position with line of sight to
// the AP (the §3 procedure: "place the headset in a random location that
// has a line-of-sight to the transmitter") at least minDist from it,
// plus a uniformly random facing.
func (w *World) RandomHeadsetPlacement(rng *rand.Rand, minDist float64) (geom.Vec, float64) {
	for {
		p := geom.V(0.5+rng.Float64()*4.0, 0.5+rng.Float64()*4.0)
		if p.Dist(w.AP.Pos) < minDist {
			continue
		}
		if !w.Room.LOSClear(w.AP.Pos, p) {
			continue
		}
		return p, rng.Float64() * 360
	}
}

// FaceEachOther steers AP and headset at each other with the headset
// physically oriented toward the AP — the measurement posture for LOS
// readings (the §3/§5.2 rigs used positioners).
func (w *World) FaceEachOther(hs *radio.Headset) {
	hs.SetYaw(geom.DirectionDeg(hs.Pos, w.AP.Pos))
	w.AP.SteerToward(hs.Pos)
	hs.SteerToward(w.AP.Pos)
}

// AlignedLOSSNR returns the SNR with both ends aligned on the direct
// path.
func (w *World) AlignedLOSSNR(hs *radio.Headset) float64 {
	w.FaceEachOther(hs)
	return radio.LinkSNRdB(w.Tracer, &w.AP.Radio, &hs.Radio)
}

// AlignedLOSSNRBuf is AlignedLOSSNR with a caller-retained tracer scratch
// buffer (radio.LinkSNRdBBuf semantics), for measurement loops that read
// many placements without per-read allocations.
func (w *World) AlignedLOSSNRBuf(hs *radio.Headset, buf []channel.Path) (float64, []channel.Path) {
	w.FaceEachOther(hs)
	return radio.LinkSNRdBBuf(w.Tracer, &w.AP.Radio, &hs.Radio, buf)
}

// GbpsAt converts an SNR to the 802.11ad rate in Gb/s.
func GbpsAt(snrDB float64) float64 {
	return phy.RateBps(snrDB) / units.Gbps
}
