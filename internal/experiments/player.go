package experiments

import (
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/vr"
)

// playerState is one session's complete simulation state, split out of
// the monolithic session loop into a step-world half (applyWorld) and an
// evaluate-player half (controlTick) so a caller can either run one
// player on its own engine (the classic per-session path) or batch a
// bay's K players on a shared engine (RunBayLockstep), with identical
// per-player event ordering — and therefore byte-identical results —
// either way.
type playerState struct {
	cfg     SessionConfig
	variant SessionVariant
	trace   vr.Trace
	engine  *sim.Engine

	w   *World
	hs  *radio.Headset
	mgr *linkmgr.Manager

	peerTraces []vr.Trace
	peerIdx    []int
	peerPlayer []int
	sched      *coex.Scheduler
	geo        *coex.Geometry
	handIdx    int

	rec *obs.Recorder

	// bay, when non-nil, shares per-tick world state (the geometry
	// snapshot's pose row, the venue interference penalty) across the
	// bay's players; values are only consumed when stamped with the
	// exact query time, so they are bitwise the ones the per-session
	// path would compute itself.
	bay *bayTick

	currentRate float64
	req         phy.VRRequirement

	// Reactive-policy state: consecutive failing evaluations, and the
	// deadline of an in-flight alignment sweep.
	failStreak     int
	realignUntil   time.Duration
	realignPending bool

	// Handoff accounting: a handoff is a change of the serving path
	// between two usable configurations (direct ↔ reflector-i or
	// reflector-i ↔ reflector-j). Dropping to or recovering from
	// PathNone is an outage, not a handoff.
	handoffs   int
	havePath   bool
	lastChoice linkmgr.PathChoice
	lastRefl   int
}

// newPlayerState wires a session's world, link manager, shared-medium
// scheduler, and recorder onto the given engine — everything runVariant
// historically did before scheduling its cadences.
func newPlayerState(cfg SessionConfig, trace vr.Trace, variant SessionVariant, engine *sim.Engine) (*playerState, error) {
	w, err := sessionWorld(cfg)
	if err != nil {
		return nil, err
	}
	start := trace.At(0)
	hs := w.NewHeadsetAt(start.Pos, start.YawDeg)
	mgr := linkmgr.New(w.Tracer, w.AP, hs)

	ps := &playerState{
		cfg:          cfg,
		variant:      variant,
		trace:        trace,
		engine:       engine,
		w:            w,
		hs:           hs,
		mgr:          mgr,
		req:          mgr.Req,
		realignUntil: -1,
		lastChoice:   linkmgr.PathNone,
		lastRefl:     -1,
	}

	if variant != VariantDirectOnly {
		mounts := cfg.Mounts
		if mounts == nil {
			mounts = DefaultMounts(cfg.RoomW, cfg.RoomD)
		}
		for _, mount := range mounts {
			dev := reflector.Default(mount.Pos, mount.FacingDeg)
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, cfg.Seed)
			idx := mgr.AddReflector(dev, link)
			if err := mgr.AlignFromGeometry(idx); err != nil {
				panic(err) // index valid by construction
			}
			// Point the reflector at the session-start pose; the static
			// variant never moves it again.
			mgr.PrimeReflector(idx)
		}
	}

	// Static scenery blockers (furniture, bystanders, other players)
	// stand for the whole session.
	for _, b := range cfg.Blockers {
		w.Room.AddObstacle(b)
	}

	// Shared-medium rooms: every other player is a dynamic obstacle
	// moving along its own trace, and the stream's rate is gated by this
	// session's TDMA airtime share of the room's one 60 GHz channel.
	if cfg.Coex != nil {
		rm := *cfg.Coex
		// The scheduler must see the motion actually being streamed as
		// this player's trace; peers stay as configured.
		players := append([]vr.Trace(nil), rm.Players...)
		if rm.Self >= 0 && rm.Self < len(players) {
			players[rm.Self] = trace
		}
		rm.Players = players
		if rm.Period <= 0 {
			rm.Period = cfg.ReEvalPeriod
		}
		ps.sched, err = coex.NewScheduler(rm, w.AP.Pos)
		if err != nil && rm.Geometry != nil {
			// The room snapshot is an optimization hint: a caller whose
			// Self trace differs from the one the snapshot was built
			// with (Coex.Players[Self] "should be" this session's
			// motion, but is substituted regardless) falls back to live
			// evaluation rather than failing the session.
			rm.Geometry = nil
			ps.sched, err = coex.NewScheduler(rm, w.AP.Pos)
		}
		if err != nil {
			return nil, err
		}
		ps.geo = rm.Geometry
		for i, tr := range players {
			if i == rm.Self {
				continue
			}
			ps.peerTraces = append(ps.peerTraces, tr)
			ps.peerPlayer = append(ps.peerPlayer, i)
			ps.peerIdx = append(ps.peerIdx, w.Room.AddObstacle(room.Body(tr.At(0).Pos)))
		}
	}

	// The hand blocker follows the trace; one obstacle slot is reused.
	ps.handIdx = w.Room.AddObstacle(room.Hand(geom.V(-10, -10))) // parked off-room

	// Event recording: stamp in the session engine's sim time and open
	// the session span. All recorder methods are nil-safe, but the wiring
	// stays behind a nil check: the engine.Now method value would
	// allocate a closure per session even on untraced runs.
	rec := cfg.Obs
	if cfg.ObsFor != nil {
		rec = cfg.ObsFor(variant)
	}
	ps.rec = rec
	if rec != nil {
		rec.SetClock(engine.Now)
		rec.EmitAt(0, obs.KindSessionStart, 0, 0, 0, 0)
		if cfg.AdmissionQueued > 0 {
			rec.EmitAt(0, obs.KindAdmissionQueued, int32(cfg.AdmissionQueued), 0, 0, 0)
		}
		if cfg.AdmissionRejected > 0 {
			rec.EmitAt(0, obs.KindAdmissionRejected, int32(cfg.AdmissionRejected), 0, 0, 0)
		}
		mgr.Obs = rec
		if ps.sched != nil {
			ps.sched.SetRecorder(rec)
		}
	}
	return ps, nil
}

// peerPos reads a peer's position from the bay's already-fetched pose
// row when one covers the query time, from the room-owned snapshot when
// one covers the query (bit-identical by construction), and from the
// peer's trace otherwise.
func (ps *playerState) peerPos(j int, t time.Duration) geom.Vec {
	if ps.geo != nil {
		if bt := ps.bay; bt != nil && bt.geo == ps.geo && bt.rowOK && bt.rowAt == t {
			return bt.row[ps.peerPlayer[j]]
		}
		if p, ok := ps.geo.PoseAt(ps.peerPlayer[j], t); ok {
			return p
		}
	}
	return ps.peerTraces[j].At(t).Pos
}

// rateOf folds the bay's external-interference penalty (cross-bay
// leakage, set by the venue layer as Coex.ExtSINRPenaltyDB) into a
// link state's deliverable rate: the serving path's SNR drops by the
// current window's penalty and the MCS is re-picked at the degraded
// SINR. The zero-penalty path returns the state's own rate — the
// same phy.RateBps derivation — so interference-free bays (and every
// pre-venue caller, where the input is nil) are bit-identical to the
// historical code.
func (ps *playerState) rateOf(st linkmgr.LinkState) float64 {
	if ps.sched == nil || !ps.sched.HasExtInterference() || st.RateBps <= 0 {
		return st.RateBps
	}
	var pen float64
	if bt := ps.bay; bt != nil && bt.penOK && bt.penAt == ps.engine.Now() {
		pen = bt.pen
	} else {
		pen = ps.sched.ExtPenaltyDB(ps.engine.Now())
	}
	if pen <= 0 {
		return st.RateBps
	}
	return phy.RateBps(st.SNRdB - pen)
}

// notePath updates the handoff accounting with a controller decision.
func (ps *playerState) notePath(st linkmgr.LinkState) {
	if st.Choice == linkmgr.PathNone {
		return
	}
	switched := st.Choice != ps.lastChoice ||
		(st.Choice == linkmgr.PathReflector && st.ReflectorIdx != ps.lastRefl)
	if ps.havePath && switched {
		ps.handoffs++
	}
	ps.havePath = true
	ps.lastChoice = st.Choice
	ps.lastRefl = st.ReflectorIdx
}

// applyWorld is the step-world half of the session tick: the physical
// geometry (pose, raised hand, peer bodies) evolves at the trace rate
// regardless of how often the controller acts. The delivered rate is
// re-read passively — whatever configuration is applied, through
// whatever the geometry now is.
func (ps *playerState) applyWorld(p vr.Pose) {
	for j, idx := range ps.peerIdx {
		ps.w.Room.MoveObstacle(idx, ps.peerPos(j, ps.engine.Now()))
	}
	if p.HandRaised {
		ps.w.Room.MoveObstacle(ps.handIdx, p.HandPos())
	} else {
		ps.w.Room.MoveObstacle(ps.handIdx, geom.V(-10, -10))
	}
	ps.hs.MoveTo(p.Pos)
	ps.hs.SetYaw(p.YawDeg)
	if ps.realignPending && ps.engine.Now() < ps.realignUntil {
		ps.currentRate = 0 // alignment sweep holds the link down
		return
	}
	ps.currentRate = ps.rateOf(ps.mgr.Reassess())
}

// controlTick is the evaluate-player half of the session tick: the
// variant's policy acts at ReEvalPeriod.
func (ps *playerState) controlTick(p vr.Pose) {
	var st linkmgr.LinkState
	switch ps.variant {
	case VariantDirectOnly, VariantMoVRTracking:
		st = ps.mgr.Step(p.Pos, p.YawDeg)
	case VariantMoVRStatic:
		st = ps.mgr.BestFrozen()
	case VariantMoVRReactive:
		now := ps.engine.Now()
		if ps.realignPending && now < ps.realignUntil {
			return // sweep in progress
		}
		if ps.realignPending {
			// Sweep done: beams re-pointed for the current pose.
			ps.realignPending = false
			for i := range ps.mgr.Reflectors() {
				ps.mgr.PrimeReflector(i)
			}
		}
		st = ps.mgr.BestFrozen()
		if !ps.req.MetByRate(st.RateBps) {
			ps.failStreak++
			if ps.failStreak >= 2 {
				ps.failStreak = 0
				ps.realignPending = true
				ps.realignUntil = now + realignSweepCost
			}
		} else {
			ps.failStreak = 0
		}
	}
	ps.notePath(st)
	ps.currentRate = ps.rateOf(st)
}

// rateFn returns the stream's rate function: the player's current link
// rate, gated by its coex airtime share when the medium is shared.
func (ps *playerState) rateFn() stream.RateFunc {
	fn := stream.RateFunc(func(now time.Duration) float64 { return ps.currentRate })
	if ps.sched != nil {
		fn = ps.sched.Wrap(fn)
	}
	return fn
}

// finish closes the session span on the recorder.
func (ps *playerState) finish(rep stream.Report) {
	ps.rec.EmitAt(ps.cfg.Duration, obs.KindSessionEnd, int32(rep.Delivered), int32(rep.Frames), 0, 0)
}
