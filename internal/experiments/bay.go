// Bay-batched lockstep execution: a bay (one shared room of K players)
// becomes the unit of execution instead of a session. One engine steps
// the room-tick once — fetch the shared geometry snapshot's pose row
// once, resolve the venue interference penalty once — then evaluates
// every player's link/stream state against that stepped world in
// player-index order.
//
// Determinism contract: results are byte-identical to running each
// player through the per-session path. Per-player event ordering is
// preserved exactly (initial apply-then-control, world ticks before
// nothing, control ticks before coincident world ticks, frames on the
// display grid), and players share no mutable state — each has a
// private world, link manager, and scheduler; the shared snapshot and
// bay-tick values are read-only and stamped with the exact query time —
// so cross-player interleaving at equal timestamps cannot influence any
// player's results. The fleet property tests pin this equivalence
// across scenario kinds, policies, and worker counts.

package experiments

import (
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/vr"
)

// BayPlayer describes one player of a bay-batched run.
type BayPlayer struct {
	Cfg     SessionConfig
	Variant SessionVariant

	// LatencyScratch, when it has capacity for every frame of the
	// session, seeds the player's stream latency buffer. RunBayLockstep
	// writes the (possibly regrown) buffer back to this field so callers
	// can recycle it across bays.
	LatencyScratch []time.Duration
}

// BayPlayerError attributes a bay-run failure to one player.
type BayPlayerError struct {
	Player int
	Err    error
}

func (e *BayPlayerError) Error() string { return fmt.Sprintf("bay player %d: %v", e.Player, e.Err) }
func (e *BayPlayerError) Unwrap() error { return e.Err }

// bayTick holds the per-room-tick values shared by a bay's players:
// the geometry snapshot's pose row and the venue interference penalty,
// each computed once per tick instead of once per player. Consumers
// check the stamped time against their query time, so a stale value is
// never used (control ticks at window boundaries fall back to their own
// scheduler lookup, exactly like the per-session path).
type bayTick struct {
	geo *coex.Geometry

	row   []geom.Vec
	rowOK bool
	rowAt time.Duration

	pen   float64
	penOK bool
	penAt time.Duration
}

// step advances the shared tick state to virtual time now.
func (bt *bayTick) step(now time.Duration, sched *coex.Scheduler) {
	bt.row, bt.rowOK = bt.geo.PosesAtTick(now)
	bt.rowAt = now
	if sched != nil && sched.HasExtInterference() {
		// The penalty is a pure per-window table lookup on the bay's
		// shared ExtSINRPenaltyDB, identical across the bay's players
		// for the same time.
		bt.pen = sched.ExtPenaltyDB(now)
		bt.penOK = true
		bt.penAt = now
	}
}

// RunBayLockstep runs a bay of co-located sessions in lockstep on one
// shared engine. All players must share the same room-owned geometry
// snapshot, session duration, and re-evaluation period (the fleet
// grouper guarantees this; ad-hoc callers get a BayPlayerError).
// Outcomes are returned in player order and are byte-identical to
// running each player via RunSessionVariant.
func RunBayLockstep(players []BayPlayer) ([]VariantOutcome, error) {
	if len(players) == 0 {
		return nil, nil
	}
	engine := sim.New()
	states := make([]*playerState, len(players))
	var bt *bayTick
	var duration, period time.Duration
	for i := range players {
		cfg := players[i].Cfg.withDefaults()
		if i == 0 {
			if cfg.Coex == nil || cfg.Coex.Geometry == nil {
				return nil, &BayPlayerError{0, fmt.Errorf("bay run requires a shared geometry snapshot")}
			}
			duration, period = cfg.Duration, cfg.ReEvalPeriod
			bt = &bayTick{geo: cfg.Coex.Geometry}
		} else if cfg.Coex == nil || cfg.Coex.Geometry != bt.geo ||
			cfg.Duration != duration || cfg.ReEvalPeriod != period {
			return nil, &BayPlayerError{i, fmt.Errorf("bay players disagree on geometry/duration/period")}
		}
		// Regenerate the player's own trace exactly as the per-session
		// path does — never trust Coex.Players[Self] to be it.
		trace, err := sessionTrace(cfg)
		if err != nil {
			return nil, &BayPlayerError{i, err}
		}
		ps, err := newPlayerState(cfg, trace, players[i].Variant, engine)
		if err != nil {
			return nil, &BayPlayerError{i, err}
		}
		ps.bay = bt
		states[i] = ps
	}

	// Initial state, then both cadences — per player, the identical
	// apply-then-control-then-frames order the per-session path
	// produces, batched across the bay.
	bt.step(0, states[0].sched)
	for _, ps := range states {
		ps.applyWorld(ps.trace.At(0))
	}
	for _, ps := range states {
		ps.controlTick(ps.trace.At(0))
	}
	engine.Every(0, WorldTick, func() {
		now := engine.Now()
		bt.step(now, states[0].sched)
		for _, ps := range states {
			ps.applyWorld(ps.trace.At(now))
		}
	})
	engine.Every(0, period, func() {
		now := engine.Now()
		for _, ps := range states {
			ps.controlTick(ps.trace.At(now))
		}
	})

	sessions := make([]*stream.Session, len(states))
	for i, ps := range states {
		sessions[i] = stream.Begin(engine, stream.Config{
			Display:        vr.HTCVive(),
			Duration:       ps.cfg.Duration,
			Obs:            ps.rec,
			LatencyScratch: players[i].LatencyScratch,
		}, ps.rateFn())
	}
	engine.Run(duration)

	outs := make([]VariantOutcome, len(states))
	for i, ps := range states {
		rep := sessions[i].Report()
		ps.finish(rep)
		players[i].LatencyScratch = sessions[i].LatencyBuffer()
		outs[i] = VariantOutcome{Report: rep, Handoffs: ps.handoffs}
	}
	return outs, nil
}
