package experiments

import (
	"strings"
	"testing"
)

func TestHeatmapReflectorExtendsCoverage(t *testing.T) {
	// Coarse grid and orientation set keep the test quick.
	cfg := HeatmapConfig{GridStep: 1.0, Yaws: []float64{0, 90, 180, 270}}
	without := Heatmap(cfg)
	cfg.WithReflector = true
	with := Heatmap(cfg)
	if with.MeanCoverage <= without.MeanCoverage {
		t.Errorf("reflector coverage %v should beat bare AP %v",
			with.MeanCoverage, without.MeanCoverage)
	}
	// With one AP alone, adversarial orientations leave big gaps.
	if without.MeanCoverage > 0.8 {
		t.Errorf("bare-AP coverage %v implausibly high", without.MeanCoverage)
	}
	// With a reflector, most cells cover most orientations.
	if with.MeanCoverage < 0.6 {
		t.Errorf("reflector coverage %v too low", with.MeanCoverage)
	}
	out := with.Render("coverage with MoVR")
	if !strings.Contains(out, "#") || !strings.Contains(out, "orientations") {
		t.Errorf("render = %q", out)
	}
	// Shape integrity.
	if len(with.Cover) != len(with.Ys) || len(with.Cover[0]) != len(with.Xs) {
		t.Error("grid shape mismatch")
	}
}

func TestHeatmapDefaults(t *testing.T) {
	cfg := HeatmapConfig{} // degenerate: defaults kick in
	cfg.GridStep = 2.0     // keep it fast
	r := Heatmap(cfg)
	if len(r.Xs) == 0 || len(r.Ys) == 0 {
		t.Fatal("empty grid")
	}
	if r.MeanCoverage < 0 || r.MeanCoverage > 1 {
		t.Errorf("mean coverage = %v", r.MeanCoverage)
	}
}
