package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/units"
	"github.com/movr-sim/movr/internal/vr"
)

// Mount describes one reflector installation point: a wall/corner
// position and the direction the device faces into the room.
type Mount struct {
	Pos       geom.Vec
	FacingDeg float64
}

// DefaultMounts returns the standard two-reflector install for a room of
// the given footprint: one in the corner opposite the AP and one mid-way
// along the west wall, so some reflector is in the headset's field for
// most head orientations ("One or more MoVR reflectors can be installed
// in a room", §4). For the 5 m × 5 m office this reproduces the
// historical fixed install.
func DefaultMounts(roomW, roomD float64) []Mount {
	return []Mount{
		{Pos: geom.V(roomW-0.4, roomD-0.4), FacingDeg: 225}, // far corner
		{Pos: geom.V(0, roomD/2), FacingDeg: 0},             // west wall
	}
}

// SessionConfig parameterizes the end-to-end VR streaming session — the
// paper's §6 future work ("designing a fast beam-tracking algorithm that
// leverages [tracking] information and evaluating the end-to-end
// performance of this system"). The zero value of every optional field
// reproduces the historical single-room setup, so existing callers are
// unaffected; the fleet engine uses the extra fields to simulate diverse
// deployments (arcades, homes, cluttered rooms).
type SessionConfig struct {
	// Duration is the play-session length.
	Duration time.Duration

	// Seed drives the motion trace.
	Seed int64

	// ReEvalPeriod is how often the link controller re-evaluates paths
	// from pose (tracking mode).
	ReEvalPeriod time.Duration

	// RoomW and RoomD override the room footprint in metres. Zero keeps
	// the paper's 5 m × 5 m office testbed (with its furniture walls);
	// an explicit footprint — even 5 × 5 — builds a bare drywall room.
	RoomW, RoomD float64

	// Mounts overrides the reflector installation. Nil keeps the
	// default two-reflector install for the room size; an explicit
	// empty slice installs no reflectors.
	Mounts []Mount

	// Blockers are extra static obstacles standing in the room for the
	// whole session — furniture, bystanders, other players.
	Blockers []room.Obstacle

	// Coex, when non-nil, makes the room's 60 GHz medium genuinely
	// shared: the other players in Coex.Players walk their own motion
	// traces as dynamic body obstacles in this session's world, and the
	// session's link rate is gated by its TDMA airtime share — slots at
	// Coex.Period sized by Coex.Policy (round-robin, proportional-fair
	// or deadline-aware; idle slots reclaimed), weighted by
	// Coex.Weights, behind the optional Coex.UplinkSlot pose-report
	// reservation. Nil keeps the historical behavior — the session has
	// the medium to itself. Coex.Players[Coex.Self] should be this
	// session's own motion (the scheduler substitutes the session trace
	// there regardless, so the schedule always sees the physical motion
	// being streamed).
	Coex *coex.Room

	// Variants selects which system variants Session runs. Nil runs all
	// four.
	Variants []SessionVariant

	// AdmissionQueued and AdmissionRejected record how many players the
	// venue admission controller held back from this session's bay
	// (queued for a later slot vs. turned away). They are bookkeeping
	// only — the held-back players never enter the world — but the
	// counts are emitted on the session's event stream so venue traces
	// show where capacity ran out. The fleet generator sets them on one
	// session per bay.
	AdmissionQueued   int
	AdmissionRejected int

	// Obs, when non-nil, records the session's event stream: link
	// transitions and reassessments from the controller, per-window
	// slot grants from the coex scheduler, and per-frame delivery from
	// the stream. Events are stamped in sim time from the session's own
	// engine, so traces are byte-identical across runs. Recording never
	// feeds back into the simulation. When a session runs multiple
	// variants their events land in this one recorder interleaved; use
	// ObsFor to keep variants apart.
	Obs *obs.Recorder

	// ObsFor, when non-nil, resolves the recorder per variant and takes
	// precedence over Obs. Returning nil disables recording for that
	// variant.
	ObsFor func(SessionVariant) *obs.Recorder

	// sizedRoom records (via withDefaults) that the footprint was set
	// explicitly rather than defaulted, so an explicit 5 × 5 room is
	// still built as bare drywall, not the furnished office.
	sizedRoom bool
}

// withDefaults fills the zero-valued knobs.
func (cfg SessionConfig) withDefaults() SessionConfig {
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.ReEvalPeriod <= 0 {
		cfg.ReEvalPeriod = 50 * time.Millisecond
	}
	cfg.sizedRoom = cfg.RoomW > 0 && cfg.RoomD > 0
	if !cfg.sizedRoom {
		cfg.RoomW, cfg.RoomD = 5, 5
	}
	return cfg
}

// DefaultSessionConfig returns a 30 s session with 50 ms tracking
// cadence.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Duration:     30 * time.Second,
		Seed:         1,
		ReEvalPeriod: 50 * time.Millisecond,
	}
}

// SessionVariant identifies a system configuration under test.
type SessionVariant string

// The four variants the session experiment compares.
const (
	VariantDirectOnly   SessionVariant = "direct only (no MoVR)"
	VariantMoVRStatic   SessionVariant = "MoVR, static beams"
	VariantMoVRReactive SessionVariant = "MoVR + SNR-triggered realign"
	VariantMoVRTracking SessionVariant = "MoVR + pose tracking"
)

// SessionVariants lists the variants in comparison order.
var SessionVariants = []SessionVariant{
	VariantDirectOnly, VariantMoVRStatic, VariantMoVRReactive, VariantMoVRTracking,
}

// realignSweepCost is the link downtime of one hierarchical alignment
// sweep (measured by the latency experiment: ~300 ms of control traffic
// and tone transmission, during which the data stream is off the air).
const realignSweepCost = 300 * time.Millisecond

// WorldTick is the cadence the physical geometry (poses, raised hands,
// peer bodies) advances at during a session, independent of the
// controller's ReEvalPeriod. Room snapshots (coex.BuildGeometry) must
// be sampled on this grid to answer the session's pose queries.
const WorldTick = 10 * time.Millisecond

// BuildCoexGeometry precomputes the room-owned geometry snapshot for a
// shared room exactly as the session engine will query it: poses on the
// WorldTick grid from the standard AP position, window schedules out to
// the session duration. A zero rm.Period resolves to the session
// default tracking cadence, matching runVariant. The returned snapshot
// is shared read-only by every co-located session (set it as the
// room's Geometry field).
func BuildCoexGeometry(rm coex.Room, duration time.Duration) (*coex.Geometry, error) {
	if rm.Period <= 0 {
		rm.Period = DefaultSessionConfig().ReEvalPeriod
	}
	if duration <= 0 {
		duration = DefaultSessionConfig().Duration
	}
	return coex.BuildGeometry(rm, APPos, WorldTick, duration)
}

// SessionResult aggregates streaming reports per variant.
type SessionResult struct {
	Config  SessionConfig
	Trace   vr.Stats
	Reports map[SessionVariant]stream.Report

	// Handoffs counts serving-path switches per variant (direct ↔
	// reflector or reflector ↔ reflector); outage transitions are not
	// handoffs.
	Handoffs map[SessionVariant]int
}

// VariantOutcome is the result of running one system variant of a
// session: the streaming report plus the controller's handoff count.
type VariantOutcome struct {
	Report   stream.Report
	Handoffs int
}

// RunSessionVariant runs a single system variant of the configured
// session end to end. Unlike Session it reports configuration problems
// (an unstreamable room, a trace that cannot be generated) as errors
// instead of panicking, which lets the fleet engine propagate them from
// worker goroutines.
func RunSessionVariant(cfg SessionConfig, variant SessionVariant) (VariantOutcome, error) {
	cfg = cfg.withDefaults()
	trace, err := sessionTrace(cfg)
	if err != nil {
		return VariantOutcome{}, err
	}
	return runVariant(cfg, trace, variant)
}

// Session runs the same seeded motion trace (walking, head rotation,
// hand raises) through four system variants and reports frame delivery:
//
//   - direct only: the player's own motion and hand block the stream.
//   - MoVR with beams frozen at session start: helps until the player
//     moves away from the initial geometry.
//   - MoVR with SNR-triggered re-alignment (§4.1: "the headset tracks
//     the SNR and can trigger a new measurement if the SNR begins to
//     degrade"): beams stay frozen until the link fails, then a
//     ~300 ms alignment sweep re-points them — during which the stream
//     is down.
//   - MoVR with pose-driven tracking (the paper's §6 proposal): the
//     link manager re-steers every ReEvalPeriod from VR tracking data,
//     with no sweeps in the loop.
//
// Session panics on an unstreamable configuration (e.g. a room too
// small for motion); callers wiring user-supplied geometry should use
// RunSessionVariant, which reports such problems as errors.
func Session(cfg SessionConfig) SessionResult {
	cfg = cfg.withDefaults()
	trace, err := sessionTrace(cfg)
	if err != nil {
		panic(err) // unstreamable config; see doc comment
	}

	res := SessionResult{
		Config:   cfg,
		Trace:    vr.Summarize(trace),
		Reports:  map[SessionVariant]stream.Report{},
		Handoffs: map[SessionVariant]int{},
	}
	variants := cfg.Variants
	if variants == nil {
		variants = SessionVariants
	}
	for _, variant := range variants {
		out, err := runVariant(cfg, trace, variant)
		if err != nil {
			panic(err) // unstreamable config; see doc comment
		}
		res.Reports[variant] = out.Report
		res.Handoffs[variant] = out.Handoffs
	}
	return res
}

// sessionTrace builds the seeded motion trace for a session config.
func sessionTrace(cfg SessionConfig) (vr.Trace, error) {
	trCfg := vr.DefaultTraceConfig(cfg.RoomW, cfg.RoomD, cfg.Seed)
	trCfg.Duration = cfg.Duration
	return vr.Generate(trCfg)
}

// sessionWorld builds the session's world: the stock office testbed for
// the default footprint, a bare drywall room otherwise.
func sessionWorld(cfg SessionConfig) (*World, error) {
	if !cfg.sizedRoom {
		return NewWorld(1), nil
	}
	return NewSizedWorld(cfg.RoomW, cfg.RoomD, 1)
}

// runVariant wires a fresh world per variant (via playerState, which
// holds the step-world and evaluate-player halves of the loop) and
// streams over it on a private engine.
func runVariant(cfg SessionConfig, trace vr.Trace, variant SessionVariant) (VariantOutcome, error) {
	engine := sim.New()
	ps, err := newPlayerState(cfg, trace, variant, engine)
	if err != nil {
		return VariantOutcome{}, err
	}

	// Initial state, then both cadences.
	start := trace.At(0)
	ps.applyWorld(start)
	ps.controlTick(start)
	engine.Every(0, WorldTick, func() {
		ps.applyWorld(trace.At(engine.Now()))
	})
	engine.Every(0, cfg.ReEvalPeriod, func() {
		ps.controlTick(trace.At(engine.Now()))
	})

	rep := stream.Run(engine, stream.Config{
		Display:  vr.HTCVive(),
		Duration: cfg.Duration,
		Obs:      ps.rec,
	}, ps.rateFn())
	ps.finish(rep)
	return VariantOutcome{Report: rep, Handoffs: ps.handoffs}, nil
}

// Render prints the session comparison.
func (r SessionResult) Render() string {
	var b strings.Builder
	b.WriteString("End-to-end VR session (paper §6 future work: pose-driven beam tracking)\n\n")
	fmt.Fprintf(&b, "Motion: %.1f m walked, hand raised %.0f%% of time, yaw range %.0f°\n\n",
		r.Trace.DistanceM, 100*r.Trace.HandUpFrac, r.Trace.YawRangeDeg)
	var rows [][]string
	for _, v := range SessionVariants {
		// A Variants subset leaves some variants unrun; skip them
		// rather than rendering phantom all-zero rows.
		rep, ok := r.Reports[v]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			string(v),
			fmt.Sprintf("%d", rep.Frames),
			fmt.Sprintf("%.1f%%", 100*rep.GlitchFrac),
			rep.LongestOutage.Truncate(time.Millisecond).String(),
			rep.P99Latency.Truncate(100 * time.Microsecond).String(),
		})
	}
	b.WriteString(Table(
		[]string{"variant", "frames", "glitch rate", "worst outage", "p99 latency"},
		rows,
	))
	return b.String()
}

// RequiredRateGbpsForDisplay is a convenience for reports.
func RequiredRateGbpsForDisplay() float64 {
	return stream.RequiredRateBps(vr.HTCVive()) / units.Gbps
}
