package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/sim"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/units"
	"github.com/movr-sim/movr/internal/vr"
)

// SessionConfig parameterizes the end-to-end VR streaming session — the
// paper's §6 future work ("designing a fast beam-tracking algorithm that
// leverages [tracking] information and evaluating the end-to-end
// performance of this system").
type SessionConfig struct {
	// Duration is the play-session length.
	Duration time.Duration

	// Seed drives the motion trace.
	Seed int64

	// ReEvalPeriod is how often the link controller re-evaluates paths
	// from pose (tracking mode).
	ReEvalPeriod time.Duration
}

// DefaultSessionConfig returns a 30 s session with 50 ms tracking
// cadence.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Duration:     30 * time.Second,
		Seed:         1,
		ReEvalPeriod: 50 * time.Millisecond,
	}
}

// SessionVariant identifies a system configuration under test.
type SessionVariant string

// The four variants the session experiment compares.
const (
	VariantDirectOnly   SessionVariant = "direct only (no MoVR)"
	VariantMoVRStatic   SessionVariant = "MoVR, static beams"
	VariantMoVRReactive SessionVariant = "MoVR + SNR-triggered realign"
	VariantMoVRTracking SessionVariant = "MoVR + pose tracking"
)

// SessionVariants lists the variants in comparison order.
var SessionVariants = []SessionVariant{
	VariantDirectOnly, VariantMoVRStatic, VariantMoVRReactive, VariantMoVRTracking,
}

// realignSweepCost is the link downtime of one hierarchical alignment
// sweep (measured by the latency experiment: ~300 ms of control traffic
// and tone transmission, during which the data stream is off the air).
const realignSweepCost = 300 * time.Millisecond

// SessionResult aggregates streaming reports per variant.
type SessionResult struct {
	Config  SessionConfig
	Trace   vr.Stats
	Reports map[SessionVariant]stream.Report
}

// Session runs the same seeded motion trace (walking, head rotation,
// hand raises) through four system variants and reports frame delivery:
//
//   - direct only: the player's own motion and hand block the stream.
//   - MoVR with beams frozen at session start: helps until the player
//     moves away from the initial geometry.
//   - MoVR with SNR-triggered re-alignment (§4.1: "the headset tracks
//     the SNR and can trigger a new measurement if the SNR begins to
//     degrade"): beams stay frozen until the link fails, then a
//     ~300 ms alignment sweep re-points them — during which the stream
//     is down.
//   - MoVR with pose-driven tracking (the paper's §6 proposal): the
//     link manager re-steers every ReEvalPeriod from VR tracking data,
//     with no sweeps in the loop.
func Session(cfg SessionConfig) SessionResult {
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.ReEvalPeriod <= 0 {
		cfg.ReEvalPeriod = 50 * time.Millisecond
	}
	trace, err := sessionTrace(cfg)
	if err != nil {
		panic(err) // config is structurally valid
	}

	res := SessionResult{
		Config:  cfg,
		Trace:   vr.Summarize(trace),
		Reports: map[SessionVariant]stream.Report{},
	}
	for _, variant := range SessionVariants {
		res.Reports[variant] = runVariant(cfg, trace, variant)
	}
	return res
}

// sessionTrace builds the seeded motion trace for a session config.
func sessionTrace(cfg SessionConfig) (vr.Trace, error) {
	trCfg := vr.DefaultTraceConfig(5, 5, cfg.Seed)
	trCfg.Duration = cfg.Duration
	return vr.Generate(trCfg)
}

// runVariant wires a fresh world per variant and streams over it.
func runVariant(cfg SessionConfig, trace vr.Trace, variant SessionVariant) stream.Report {
	w := NewWorld(1)
	start := trace.At(0)
	hs := w.NewHeadsetAt(start.Pos, start.YawDeg)
	mgr := linkmgr.New(w.Tracer, w.AP, hs)

	if variant != VariantDirectOnly {
		// A realistic install: two reflectors on different walls, so
		// some reflector is in the headset's field for most head
		// orientations ("One or more MoVR reflectors can be installed
		// in a room", §4).
		for _, mount := range []struct {
			pos geom.Vec
			deg float64
		}{
			{geom.V(4.6, 4.6), 225}, // far corner
			{geom.V(0, 2.5), 0},     // west wall
		} {
			dev := reflector.Default(mount.pos, mount.deg)
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, cfg.Seed)
			idx := mgr.AddReflector(dev, link)
			if err := mgr.AlignFromGeometry(idx); err != nil {
				panic(err) // index valid by construction
			}
			// Point the reflector at the session-start pose; the static
			// variant never moves it again.
			mgr.PrimeReflector(idx)
		}
	}

	// The hand blocker follows the trace; one obstacle slot is reused.
	handIdx := w.Room.AddObstacle(room.Hand(geom.V(-10, -10))) // parked off-room

	engine := sim.New()
	currentRate := 0.0
	req := mgr.Req
	// Reactive-policy state: consecutive failing evaluations, and the
	// deadline of an in-flight alignment sweep.
	failStreak := 0
	realignUntil := time.Duration(-1)
	realignPending := false

	// World tick: the physical geometry (pose, raised hand) evolves at
	// the trace rate regardless of how often the controller acts. The
	// delivered rate is re-read passively — whatever configuration is
	// applied, through whatever the geometry now is.
	const worldTick = 10 * time.Millisecond
	applyWorld := func(p vr.Pose) {
		if p.HandRaised {
			w.Room.MoveObstacle(handIdx, p.HandPos())
		} else {
			w.Room.MoveObstacle(handIdx, geom.V(-10, -10))
		}
		hs.MoveTo(p.Pos)
		hs.SetYaw(p.YawDeg)
		if realignPending && engine.Now() < realignUntil {
			currentRate = 0 // alignment sweep holds the link down
			return
		}
		currentRate = mgr.Reassess().RateBps
	}

	// Controller tick: the variant's policy acts at ReEvalPeriod.
	control := func(p vr.Pose) {
		var st linkmgr.LinkState
		switch variant {
		case VariantDirectOnly, VariantMoVRTracking:
			st = mgr.Step(p.Pos, p.YawDeg)
		case VariantMoVRStatic:
			st = mgr.BestFrozen()
		case VariantMoVRReactive:
			now := engine.Now()
			if realignPending && now < realignUntil {
				return // sweep in progress
			}
			if realignPending {
				// Sweep done: beams re-pointed for the current pose.
				realignPending = false
				for i := range mgr.Reflectors() {
					mgr.PrimeReflector(i)
				}
			}
			st = mgr.BestFrozen()
			if !req.MetByRate(st.RateBps) {
				failStreak++
				if failStreak >= 2 {
					failStreak = 0
					realignPending = true
					realignUntil = now + realignSweepCost
				}
			} else {
				failStreak = 0
			}
		}
		currentRate = st.RateBps
	}

	// Initial state, then both cadences.
	applyWorld(start)
	control(start)
	engine.Every(0, worldTick, func() {
		applyWorld(trace.At(engine.Now()))
	})
	engine.Every(0, cfg.ReEvalPeriod, func() {
		control(trace.At(engine.Now()))
	})

	return stream.Run(engine, stream.Config{
		Display:  vr.HTCVive(),
		Duration: cfg.Duration,
	}, func(now time.Duration) float64 { return currentRate })
}

// Render prints the session comparison.
func (r SessionResult) Render() string {
	var b strings.Builder
	b.WriteString("End-to-end VR session (paper §6 future work: pose-driven beam tracking)\n\n")
	fmt.Fprintf(&b, "Motion: %.1f m walked, hand raised %.0f%% of time, yaw range %.0f°\n\n",
		r.Trace.DistanceM, 100*r.Trace.HandUpFrac, r.Trace.YawRangeDeg)
	var rows [][]string
	for _, v := range SessionVariants {
		rep := r.Reports[v]
		rows = append(rows, []string{
			string(v),
			fmt.Sprintf("%d", rep.Frames),
			fmt.Sprintf("%.1f%%", 100*rep.GlitchFrac),
			rep.LongestOutage.Truncate(time.Millisecond).String(),
			rep.P99Latency.Truncate(100 * time.Microsecond).String(),
		})
	}
	b.WriteString(Table(
		[]string{"variant", "frames", "glitch rate", "worst outage", "p99 latency"},
		rows,
	))
	return b.String()
}

// RequiredRateGbpsForDisplay is a convenience for reports.
func RequiredRateGbpsForDisplay() float64 {
	return stream.RequiredRateBps(vr.HTCVive()) / units.Gbps
}
