package experiments

import (
	"fmt"
	"strings"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/baseline"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
)

// DeploymentRow compares one deployment option.
type DeploymentRow struct {
	Name string

	// CoverageFrac is the fraction of (position, orientation) poses at
	// which some path meets the VR rate.
	CoverageFrac float64

	// CablingM is the HDMI cable run the option needs (reflectors need
	// none — only power).
	CablingM float64

	// FullTransceivers counts complete mmWave radios (the cost driver
	// §1 cites: "multiple full-fledged mmWave transceivers will
	// significantly increase the cost").
	FullTransceivers int
}

// DeploymentResult is the §1 deployment-alternatives comparison.
type DeploymentResult struct {
	Rows  []DeploymentRow
	Poses int
}

// Deployment quantifies the paper's §1 argument against the "naïve
// solution" of deploying multiple mmWave transmitters: it compares a
// single AP, multi-AP deployments, and one AP plus MoVR reflectors on a
// grid of headset positions × head orientations, counting VR-grade
// coverage, cabling, and full-transceiver cost.
func Deployment() DeploymentResult {
	req := phy.HTCViveRequirement()
	pcPos := geom.V(0.3, 0.3)

	apMounts := [][3]float64{{0.4, 0.4, 45}, {4.6, 4.6, 225}, {0.4, 4.6, 315}}
	reflMounts := [][3]float64{{4.6, 4.6, 225}, {0, 2.5, 0}}

	type option struct {
		name  string
		nAPs  int
		nRefl int
	}
	options := []option{
		{"1 AP (no MoVR)", 1, 0},
		{"2 APs", 2, 0},
		{"3 APs", 3, 0},
		{"1 AP + 1 reflector", 1, 1},
		{"1 AP + 2 reflectors", 1, 2},
	}

	res := DeploymentResult{}
	for _, opt := range options {
		covered, poses := 0, 0
		cabling := 0.0
		for x := 1.0; x <= 4.0; x += 1.0 {
			for y := 1.0; y <= 4.0; y += 1.0 {
				for yaw := 0.0; yaw < 360; yaw += 45 {
					poses++
					if deploymentCovers(opt.nAPs, opt.nRefl, apMounts, reflMounts, geom.V(x, y), yaw, req) {
						covered++
					}
				}
			}
		}
		// Cabling: HDMI runs from the PC to every AP (wall-routed).
		deploy := baseline.MultiAP{}
		for i := 0; i < opt.nAPs; i++ {
			m := apMounts[i]
			deploy.APs = append(deploy.APs, radio.NewAP(geom.V(m[0], m[1]), antenna.Default(m[2]), channel.DefaultBudget()))
		}
		cabling = deploy.CablingM(pcPos)
		res.Rows = append(res.Rows, DeploymentRow{
			Name:             opt.name,
			CoverageFrac:     float64(covered) / float64(poses),
			CablingM:         cabling,
			FullTransceivers: opt.nAPs + 1, // APs + the headset radio
		})
		res.Poses = poses
	}
	return res
}

// deploymentCovers reports whether some path sustains VR for the pose.
func deploymentCovers(nAPs, nRefl int, apMounts, reflMounts [][3]float64, pos geom.Vec, yaw float64, req phy.VRRequirement) bool {
	for a := 0; a < nAPs; a++ {
		w := NewWorld(1)
		m := apMounts[a]
		w.AP.Pos = geom.V(m[0], m[1])
		w.AP.Array.SetOrientation(m[2])
		hs := w.NewHeadsetAt(pos, yaw)
		mgr := linkmgr.New(w.Tracer, w.AP, hs)
		for rIdx := 0; rIdx < nRefl; rIdx++ {
			rm := reflMounts[rIdx]
			dev := reflector.Default(geom.V(rm[0], rm[1]), rm[2])
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, 1)
			idx := mgr.AddReflector(dev, link)
			if err := mgr.AlignFromGeometry(idx); err != nil {
				panic(err) // index valid by construction
			}
		}
		if st := mgr.Best(); req.MetByRate(st.RateBps) {
			return true
		}
	}
	return false
}

// Render prints the deployment comparison.
func (r DeploymentResult) Render() string {
	var b strings.Builder
	b.WriteString("§1 — Deployment alternatives (coverage vs cost)\n\n")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.0f%%", 100*row.CoverageFrac),
			fmt.Sprintf("%.1f m", row.CablingM),
			fmt.Sprintf("%d", row.FullTransceivers),
		})
	}
	b.WriteString(Table([]string{"deployment", "VR coverage", "HDMI cabling", "full transceivers"}, rows))
	fmt.Fprintf(&b, "\n%d poses (4×4 grid × 8 orientations). Reflectors need no cabling and no\n", r.Poses)
	b.WriteString("baseband — the §1 argument for programmable mirrors over more transmitters.\n")
	return b.String()
}
