package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/movr-sim/movr/internal/baseline"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/fleet/pool"
	"github.com/movr-sim/movr/internal/gainctl"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/stats"
)

// Fig9Config parameterizes the SNR-performance study.
type Fig9Config struct {
	// Runs is the number of random headset placements (paper: 20).
	Runs int

	// NLOSStepDeg is the Opt-NLOS sweep granularity.
	NLOSStepDeg float64

	// Seed fixes placements.
	Seed int64

	// Workers bounds the trial parallelism (<= 0 means GOMAXPROCS).
	// Results are identical for every worker count.
	Workers int

	// Runner, when non-nil, executes trials on a shared persistent pool
	// instead of an ephemeral one (Workers is then ignored) — how the
	// movrd scheduler keeps concurrent API jobs inside one capacity
	// bound. Results are identical either way.
	Runner *pool.Runner
}

// DefaultFig9Config mirrors the paper.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Runs: 20, NLOSStepDeg: 2, Seed: 1}
}

// Fig9Result holds per-scenario SNR improvements relative to LOS (dB).
type Fig9Result struct {
	// LOSImp is identically zero (the reference), kept for the CDF.
	LOSImp []float64

	// OptNLOSImp is the best-reflection improvement (negative).
	OptNLOSImp []float64

	// MoVRImp is the reflector-path improvement.
	MoVRImp []float64

	OptNLOSSummary stats.Summary
	MoVRSummary    stats.Summary
}

// Fig9 reproduces the §5.2 experiment: AP in one corner, MoVR reflector
// in the opposite corner, headset at random poses. For each pose it
// measures (1) clear LOS SNR, (2) the best Opt-NLOS SNR under blockage,
// and (3) the MoVR-delivered SNR under the same blockage, reporting each
// as improvement over LOS.
func Fig9(cfg Fig9Config) Fig9Result {
	res, err := Fig9Context(context.Background(), cfg)
	if err != nil {
		panic(err) // the background context never cancels; only a worker panic lands here
	}
	return res
}

// Fig9Context is Fig9 with cancellation: ctx aborts the study between
// trials (the movrd job API's DELETE), reported as the context error.
func Fig9Context(ctx context.Context, cfg Fig9Config) (Fig9Result, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 20
	}
	if cfg.NLOSStepDeg <= 0 {
		cfg.NLOSStepDeg = 2
	}
	// Placements keep a play-area distance from the AP (standing on top
	// of the base station is not a VR pose); the paper's own §5.2 notes
	// the close-to-AP corner cases separately. The rejection sampling is
	// drawn serially from one stream against a clean world — the exact
	// historical draw sequence — so parallelizing the trials below
	// changes nothing about which poses are measured.
	rng := rand.New(rand.NewSource(cfg.Seed))
	placeWorld := NewWorld(1)
	places := make([]geom.Vec, cfg.Runs)
	for run := range places {
		places[run], _ = placeWorld.RandomHeadsetPlacement(rng, 1.5)
	}

	// Each trial builds its own world and writes into its own slot, so
	// the trials fan out across the fleet worker pool deterministically.
	type trial struct{ nlosImp, movrImp float64 }
	runTrial := func(_ context.Context, run int) (trial, error) {
		w := NewWorld(1)
		// Reflector in the corner opposite the AP (paper's placement).
		dev := reflector.Default(geom.V(4.6, 4.6), 225)
		link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, cfg.Seed+int64(run))

		hs := w.NewHeadsetAt(places[run], 0)

		// One tracer scratch buffer serves the trial's measurements
		// (trial-local: trials fan out across pool workers).
		var pathBuf []channel.Path

		// Scenario LOS: clear room, aligned.
		var losSNR float64
		losSNR, pathBuf = w.AlignedLOSSNRBuf(hs, pathBuf)

		// Blockage for the other two scenarios: the player's hand in
		// front of the headset toward the AP.
		towardAP := geom.DirectionDeg(hs.Pos, w.AP.Pos)
		w.Room.AddObstacle(room.Hand(geom.FromPolar(hs.Pos, towardAP, 0.35)))

		// Scenario Opt-NLOS: sweep everything, direct path excluded.
		nlos, _ := baseline.OptNLOSBuf(w.Tracer, &w.AP.Radio, &hs.Radio, cfg.NLOSStepDeg, pathBuf)

		// Scenario MoVR: same blockage, reflector path. The headset
		// turns toward the reflector (the measurement posture; in play
		// this is the head orientation that caused the blockage).
		hs.SetYaw(geom.DirectionDeg(hs.Pos, dev.Pos()))
		m := linkmgr.New(w.Tracer, w.AP, hs)
		m.GainCfg = gainctl.DefaultConfig()
		idx := m.AddReflector(dev, link)
		if err := m.AlignFromGeometry(idx); err != nil {
			panic(err) // index is valid by construction
		}
		movrSNR, ok := m.EvaluateReflector(idx)
		if !ok {
			// Unusable reflector path: record a deep negative.
			movrSNR = losSNR - 40
		}
		return trial{nlosImp: nlos.SNRdB - losSNR, movrImp: movrSNR - losSNR}, nil
	}
	var (
		trials []trial
		err    error
	)
	if cfg.Runner != nil {
		trials, err = pool.MapOn(ctx, cfg.Runner, cfg.Runs, runTrial)
	} else {
		trials, err = pool.Map(ctx, cfg.Runs, cfg.Workers, runTrial)
	}
	if err != nil {
		return Fig9Result{}, err
	}

	res := Fig9Result{}
	for range trials {
		res.LOSImp = append(res.LOSImp, 0)
	}
	for _, tr := range trials {
		res.OptNLOSImp = append(res.OptNLOSImp, tr.nlosImp)
		res.MoVRImp = append(res.MoVRImp, tr.movrImp)
	}

	res.OptNLOSSummary = stats.Summarize(res.OptNLOSImp)
	res.MoVRSummary = stats.Summarize(res.MoVRImp)
	return res, nil
}

// Render prints the CDF plot and summaries.
func (r Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — SNR improvement relative to LOS\n\n")
	b.WriteString(CDFPlot("CDF of SNR improvement vs LOS (dB)", map[string][]float64{
		"LOS":      r.LOSImp,
		"Opt.NLOS": r.OptNLOSImp,
		"MoVR":     r.MoVRImp,
	}, 60, 16))
	b.WriteByte('\n')
	b.WriteString(Table(
		[]string{"scenario", "mean (dB)", "min (dB)", "max (dB)"},
		[][]string{
			{"Opt. NLOS", fmt.Sprintf("%.1f", r.OptNLOSSummary.Mean),
				fmt.Sprintf("%.1f", r.OptNLOSSummary.Min), fmt.Sprintf("%.1f", r.OptNLOSSummary.Max)},
			{"MoVR", fmt.Sprintf("%.1f", r.MoVRSummary.Mean),
				fmt.Sprintf("%.1f", r.MoVRSummary.Min), fmt.Sprintf("%.1f", r.MoVRSummary.Max)},
		},
	))
	return b.String()
}
