package experiments

import (
	"fmt"
	"strings"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/stats"
)

// Fig7Config parameterizes the leakage characterization.
type Fig7Config struct {
	// RXAngles are the fixed receive-beam angles, in the paper's
	// array-relative convention (boresight = 90°). Fig 7 uses 50° and
	// 65°.
	RXAngles []float64

	// TXFromDeg..TXToDeg is the transmit-beam sweep range (paper:
	// 40-140°).
	TXFromDeg, TXToDeg float64

	// StepDeg is the sweep granularity.
	StepDeg float64

	// Seed selects the device instance.
	Seed int64
}

// DefaultFig7Config mirrors the paper's axes.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		RXAngles:  []float64{50, 65},
		TXFromDeg: 40,
		TXToDeg:   140,
		StepDeg:   1,
		Seed:      1,
	}
}

// Fig7Result holds leakage sweeps per RX angle. Leakage values are
// negative dB (coupling gain), matching the paper's y-axis.
type Fig7Result struct {
	TXAngles []float64
	// LeakageDB maps "Rx angle 50" style labels to per-TX-angle leakage
	// values (negative dB).
	LeakageDB map[string][]float64
}

// Fig7 reproduces the TX→RX leakage characterization: sweep the transmit
// beam with the receive beam fixed and record the coupling. The paper's
// angles are array-relative with broadside at 90°; the device here is
// mounted at 90° world so the conventions coincide.
func Fig7(cfg Fig7Config) Fig7Result {
	if len(cfg.RXAngles) == 0 {
		cfg.RXAngles = []float64{50, 65}
	}
	if cfg.StepDeg <= 0 {
		cfg.StepDeg = 1
	}
	devCfg := reflector.DefaultConfig(geom.V(2.5, 0), 90)
	devCfg.Seed = cfg.Seed
	dev, err := reflector.New(devCfg)
	if err != nil {
		panic(err) // default-derived config cannot fail
	}
	res := Fig7Result{LeakageDB: map[string][]float64{}}
	for a := cfg.TXFromDeg; a <= cfg.TXToDeg+1e-9; a += cfg.StepDeg {
		res.TXAngles = append(res.TXAngles, a)
	}
	for _, rx := range cfg.RXAngles {
		dev.SetRXBeam(rx) // paper convention == world angle at mount 90
		key := fmt.Sprintf("Rx angle %.0f", rx)
		vals := make([]float64, 0, len(res.TXAngles))
		for _, tx := range res.TXAngles {
			dev.SetTXBeam(tx)
			vals = append(vals, -dev.LeakageDB())
		}
		res.LeakageDB[key] = vals
	}
	return res
}

// Swing returns the peak-to-peak leakage variation for a series label.
func (r Fig7Result) Swing(key string) float64 {
	vals := r.LeakageDB[key]
	if len(vals) == 0 {
		return 0
	}
	return stats.Max(vals) - stats.Min(vals)
}

// Render prints the leakage sweeps as a line plot plus summary table.
func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — TX→RX leakage vs beam angles\n\n")
	b.WriteString(LinePlot("Leakage (dB) vs TX beam angle", r.TXAngles, r.LeakageDB, 70, 14))
	b.WriteByte('\n')
	var rows [][]string
	for _, key := range sortedKeys(r.LeakageDB) {
		vals := r.LeakageDB[key]
		rows = append(rows, []string{
			key,
			fmt.Sprintf("%.1f", stats.Min(vals)),
			fmt.Sprintf("%.1f", stats.Max(vals)),
			fmt.Sprintf("%.1f", r.Swing(key)),
		})
	}
	b.WriteString(Table([]string{"series", "min (dB)", "max (dB)", "swing (dB)"}, rows))
	return b.String()
}
