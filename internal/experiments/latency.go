package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/align"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/vr"
)

// LatencyConfig parameterizes the §6 latency-budget analysis.
type LatencyConfig struct {
	// Seed drives the measured alignment runs.
	Seed int64
}

// LatencyRow is one component of the control-path budget.
type LatencyRow struct {
	Component string
	Time      time.Duration
	// WithinFrame reports whether the component fits inside one display
	// update (the 10 ms deadline).
	WithinFrame bool
}

// LatencyResult is the full budget table.
type LatencyResult struct {
	FrameBudget time.Duration
	Rows        []LatencyRow

	// ExhaustiveAlign and HierarchicalAlign are the measured sweep
	// costs, reported separately because they are the slow path the
	// paper calls out.
	ExhaustiveAlign   time.Duration
	HierarchicalAlign time.Duration
}

// Latency reproduces the §6 argument: every steady-state component of
// MoVR's design is far faster than the 10 ms display update; only the
// full beam-alignment sweep is slow, which is why the paper proposes
// pose-assisted tracking (implemented in linkmgr) to take it off the
// critical path. Alignment costs are measured by running the actual
// protocol, not asserted.
func Latency(cfg LatencyConfig) LatencyResult {
	frame := vr.HTCVive().FrameInterval()
	res := LatencyResult{FrameBudget: frame}

	// Constants from the hardware model.
	phaseShifterUpdate := 500 * time.Nanosecond // DAC + analog settle (§6: sub-µs)
	beamSwitch := time.Microsecond              // full array retarget
	gainStep := 2 * time.Microsecond            // DAC write
	controlRTT := control.DefaultRTT            // Bluetooth exchange
	poseRetarget := controlRTT + beamSwitch     // tracking-driven re-steer

	// Measure the alignment sweeps on the standard rig.
	w := NewWorld(0)
	dev := reflector.Default(geom.V(2.5, 5), 270)
	link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, cfg.Seed)
	aCfg := align.DefaultConfig()
	aCfg.Seed = cfg.Seed
	sw, err := align.NewSweeper(w.AP, dev, link, w.Tracer, aCfg)
	if err != nil {
		panic(err) // default config cannot fail validation
	}
	if ex, err := sw.Exhaustive(); err == nil {
		res.ExhaustiveAlign = ex.TotalTime()
	}
	if hi, err := sw.Hierarchical(); err == nil {
		res.HierarchicalAlign = hi.TotalTime()
	}

	add := func(name string, d time.Duration) {
		res.Rows = append(res.Rows, LatencyRow{
			Component:   name,
			Time:        d,
			WithinFrame: d <= frame,
		})
	}
	add("phase shifter update", phaseShifterUpdate)
	add("beam switch (electronic)", beamSwitch)
	add("amplifier gain step", gainStep)
	add("control-link round trip", controlRTT)
	add("pose-assisted re-steer", poseRetarget)
	add("hierarchical alignment sweep", res.HierarchicalAlign)
	add("exhaustive alignment sweep", res.ExhaustiveAlign)
	return res
}

// Render prints the budget table.
func (r LatencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6 — Latency budget (frame deadline %v)\n\n", r.FrameBudget)
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Component, row.Time.String(), fmt.Sprintf("%v", row.WithinFrame)}
	}
	b.WriteString(Table([]string{"component", "time", "fits in frame"}, rows))
	b.WriteString("\nThe alignment sweep is the only component beyond the frame budget —\n")
	b.WriteString("MoVR runs it once at install/startup and uses pose tracking afterwards.\n")
	return b.String()
}
