package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/movr-sim/movr/internal/align"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/stats"
	"github.com/movr-sim/movr/internal/units"
)

// Fig8Config parameterizes the beam-alignment accuracy study.
type Fig8Config struct {
	// Runs is the number of random reflector placements (paper: 100).
	Runs int

	// Exhaustive selects the full joint sweep instead of the
	// hierarchical one (slower; same accuracy).
	Exhaustive bool

	// ControlLossProb injects control-frame loss.
	ControlLossProb float64

	// Seed fixes placements and measurement noise.
	Seed int64
}

// DefaultFig8Config mirrors the paper: 100 runs, 1° sweeps.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Runs: 100, Seed: 1}
}

// Fig8Result holds estimated-vs-actual incidence angles, in the paper's
// array-relative convention (boresight = 90°, plotted range 40-140°).
type Fig8Result struct {
	ActualDeg    []float64
	EstimatedDeg []float64
	Errors       []float64
	MeanErrDeg   float64
	MaxErrDeg    float64
	P95ErrDeg    float64
}

// Fig8 reproduces the §5.1 experiment: place the MoVR reflector at a
// random location and orientation, run the backscatter alignment sweep,
// and compare the estimated angle of incidence against the geometric
// ground truth. The paper reports errors within 2° of the actual angle.
func Fig8(cfg Fig8Config) Fig8Result {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Fig8Result{}

	for run := 0; run < cfg.Runs; run++ {
		w := NewWorld(0)
		dev, mount := randomReflectorPlacement(w, rng)
		truthWorld := align.GroundTruthDeg(dev, w.AP)
		// Keep placements whose incidence angle lands in the paper's
		// plotted 40-140° (relative) band.
		rel := units.AngleDiffDeg(truthWorld, mount)
		if rel < -50 || rel > 50 {
			run--
			continue
		}
		link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, cfg.ControlLossProb, cfg.Seed+int64(run))
		aCfg := align.DefaultConfig()
		aCfg.Seed = cfg.Seed + int64(run)*7919
		sw, err := align.NewSweeper(w.AP, dev, link, w.Tracer, aCfg)
		if err != nil {
			panic(err) // default config cannot fail validation
		}
		var result align.Result
		if cfg.Exhaustive {
			result, err = sw.Exhaustive()
		} else {
			result, err = sw.Hierarchical()
		}
		if err != nil {
			// A lost control link aborts this run; record nothing.
			continue
		}
		estRel := units.AngleDiffDeg(result.ReflBeamDeg, mount)
		res.ActualDeg = append(res.ActualDeg, rel+90)
		res.EstimatedDeg = append(res.EstimatedDeg, estRel+90)
		res.Errors = append(res.Errors, align.ErrorDeg(result.ReflBeamDeg, truthWorld))
	}

	res.MeanErrDeg = stats.Mean(res.Errors)
	res.MaxErrDeg = stats.Max(res.Errors)
	res.P95ErrDeg = stats.Percentile(res.Errors, 95)
	return res
}

// randomReflectorPlacement puts a reflector at a random position on a
// random wall, with its mount direction perturbed ±25° off the wall
// normal, ensuring the AP is on its front side.
func randomReflectorPlacement(w *World, rng *rand.Rand) (*reflector.Reflector, float64) {
	for {
		wallPick := rng.Intn(4)
		t := 0.5 + rng.Float64()*4.0
		var pos geom.Vec
		var normal float64
		switch wallPick {
		case 0: // north wall, facing south
			pos, normal = geom.V(t, 5), 270
		case 1: // east wall, facing west
			pos, normal = geom.V(5, t), 180
		case 2: // west wall, facing east
			pos, normal = geom.V(0, t), 0
		default: // south wall, facing north
			pos, normal = geom.V(t, 0), 90
		}
		mount := units.NormalizeDeg(normal + (rng.Float64()*50 - 25))
		cfg := reflector.DefaultConfig(pos, mount)
		cfg.Seed = rng.Int63n(1 << 30)
		dev, err := reflector.New(cfg)
		if err != nil {
			continue
		}
		// The AP must be within the device's forward hemisphere.
		rel := units.AngleDiffDeg(geom.DirectionDeg(pos, w.AP.Pos), mount)
		if rel < -70 || rel > 70 {
			continue
		}
		if pos.Dist(w.AP.Pos) < 1 {
			continue
		}
		return dev, mount
	}
}

// Render prints the estimated-vs-actual scatter and error summary.
func (r Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8 — Beam alignment accuracy\n\n")
	b.WriteString(ScatterPlot("Estimated vs actual incidence angle (deg, boresight=90)",
		r.ActualDeg, r.EstimatedDeg, true, 60, 20))
	b.WriteByte('\n')
	b.WriteString(Table(
		[]string{"runs", "mean err (deg)", "p95 err (deg)", "max err (deg)"},
		[][]string{{
			fmt.Sprintf("%d", len(r.Errors)),
			fmt.Sprintf("%.2f", r.MeanErrDeg),
			fmt.Sprintf("%.2f", r.P95ErrDeg),
			fmt.Sprintf("%.2f", r.MaxErrDeg),
		}},
	))
	return b.String()
}
