package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/fleet/pool"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/phy"
	"github.com/movr-sim/movr/internal/reflector"
)

// HeatmapConfig parameterizes the coverage map.
type HeatmapConfig struct {
	// GridStep is the sampling pitch in metres.
	GridStep float64

	// Yaws is the set of head orientations probed per cell; a cell
	// counts as covered at the fraction of yaws whose best path meets
	// the VR requirement.
	Yaws []float64

	// WithReflector toggles the MoVR reflector install.
	WithReflector bool

	// Workers bounds the grid-cell parallelism (<= 0 means GOMAXPROCS).
	// Every worker count produces identical results: cells are
	// independent and land in fixed grid slots.
	Workers int

	// Runner, when non-nil, executes cells on a shared persistent pool
	// instead of an ephemeral one (Workers is then ignored) — how the
	// movrd scheduler keeps concurrent API jobs inside one capacity
	// bound. Results are identical either way.
	Runner *pool.Runner
}

// DefaultHeatmapConfig probes a 0.5 m grid over 8 orientations.
func DefaultHeatmapConfig(withReflector bool) HeatmapConfig {
	yaws := make([]float64, 8)
	for i := range yaws {
		yaws[i] = float64(i) * 45
	}
	return HeatmapConfig{GridStep: 0.5, Yaws: yaws, WithReflector: withReflector}
}

// HeatmapResult is a grid of coverage fractions in [0, 1].
type HeatmapResult struct {
	Xs, Ys []float64
	// Cover[iy][ix] is the fraction of orientations covered at the
	// cell.
	Cover [][]float64

	// YawCount is the number of orientations probed per cell.
	YawCount int

	MeanCoverage float64
}

// Heatmap maps VR-grade coverage across the office: for every grid cell
// and head orientation, can some path (direct or reflector) sustain the
// required rate? It visualizes the claim behind Fig 5's cartoon — the
// reflector fills the shadowed orientations.
func Heatmap(cfg HeatmapConfig) HeatmapResult {
	res, err := HeatmapContext(context.Background(), cfg)
	if err != nil {
		panic(err) // the background context never cancels; only a worker panic lands here
	}
	return res
}

// HeatmapContext is Heatmap with cancellation: ctx aborts the sweep
// between cells (the movrd job API's DELETE), reported as the context
// error.
func HeatmapContext(ctx context.Context, cfg HeatmapConfig) (HeatmapResult, error) {
	if cfg.GridStep <= 0 {
		cfg.GridStep = 0.5
	}
	if len(cfg.Yaws) == 0 {
		cfg.Yaws = []float64{0, 90, 180, 270}
	}
	req := phy.HTCViveRequirement()
	res := HeatmapResult{YawCount: len(cfg.Yaws)}
	for x := 0.5; x <= 4.5+1e-9; x += cfg.GridStep {
		res.Xs = append(res.Xs, x)
	}
	for y := 0.5; y <= 4.5+1e-9; y += cfg.GridStep {
		res.Ys = append(res.Ys, y)
	}
	res.Cover = make([][]float64, len(res.Ys))
	for iy := range res.Cover {
		res.Cover[iy] = make([]float64, len(res.Xs))
	}

	// Cells are independent — each builds its own world — so they fan
	// out across the fleet worker pool and write into their own grid
	// slot; aggregation below is order-independent arithmetic over the
	// fixed grid, so results are identical for any worker count.
	cells := len(res.Xs) * len(res.Ys)
	runCell := func(_ context.Context, cell int) error {
		iy, ix := cell/len(res.Xs), cell%len(res.Xs)
		x, y := res.Xs[ix], res.Ys[iy]
		// One world and link manager per cell; each yaw probe re-steers
		// through the tracking step, reusing the manager's tracer
		// scratch. Every evaluation re-derives beams and gain from the
		// current pose alone, so per-cell reuse is result-identical to
		// the historical world-per-yaw construction.
		w := NewWorld(1)
		hs := w.NewHeadsetAt(geom.V(x, y), cfg.Yaws[0])
		mgr := linkmgr.New(w.Tracer, w.AP, hs)
		if cfg.WithReflector {
			dev := reflector.Default(geom.V(4.6, 4.6), 225)
			link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0, 1)
			idx := mgr.AddReflector(dev, link)
			if err := mgr.AlignFromGeometry(idx); err != nil {
				panic(err) // index valid by construction
			}
		}
		covered := 0
		for _, yaw := range cfg.Yaws {
			if st := mgr.Step(geom.V(x, y), yaw); req.MetByRate(st.RateBps) {
				covered++
			}
		}
		res.Cover[iy][ix] = float64(covered) / float64(len(cfg.Yaws))
		return nil
	}
	var err error
	if cfg.Runner != nil {
		err = cfg.Runner.ForEach(ctx, cells, runCell)
	} else {
		err = pool.ForEach(ctx, cells, cfg.Workers, runCell)
	}
	if err != nil {
		return HeatmapResult{}, err
	}

	total := 0.0
	for _, row := range res.Cover {
		for _, frac := range row {
			total += frac
		}
	}
	res.MeanCoverage = total / float64(cells)
	return res, nil
}

// Render draws the coverage map as ASCII shades: '#' full coverage, '.'
// none.
func (r HeatmapResult) Render(title string) string {
	shades := []byte(".:-=+*%#")
	var b strings.Builder
	fmt.Fprintf(&b, "%s (mean %.0f%% of orientations covered)\n", title, 100*r.MeanCoverage)
	b.WriteString("  AP at south-west corner; reflector (if any) at north-east.\n")
	// Render north (max y) at the top.
	for iy := len(r.Ys) - 1; iy >= 0; iy-- {
		b.WriteString("  |")
		for ix := range r.Xs {
			v := r.Cover[iy][ix]
			idx := int(v * float64(len(shades)-1))
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "  shades: '.'=0%% ... '#'=100%% of %d orientations\n", r.YawCount)
	return b.String()
}
