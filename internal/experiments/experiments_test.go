package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/stats"
)

// TestFig3ReproducesPaperShape checks the §3 result: LOS ≈ 25 dB mean at
// ~7 Gb/s; hand blockage costs >14 dB; scenarios are ordered LOS > hand
// > head > body; NLOS sits ~10-25 dB below LOS; every non-LOS scenario
// fails the VR requirement.
func TestFig3ReproducesPaperShape(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.Runs = 8
	cfg.NLOSStepDeg = 4
	r := Fig3(cfg)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[Fig3Scenario]Fig3Row{}
	for _, row := range r.Rows {
		byName[row.Scenario] = row
	}
	los := byName[ScenarioLOS]
	if los.MeanSNRdB < 20 || los.MeanSNRdB > 30 {
		t.Errorf("LOS mean SNR = %v, paper: ~25", los.MeanSNRdB)
	}
	if los.MeanGbps < 6 {
		t.Errorf("LOS mean rate = %v, paper: almost 7", los.MeanGbps)
	}
	hand := byName[ScenarioHand]
	if drop := los.MeanSNRdB - hand.MeanSNRdB; drop < 14 {
		t.Errorf("hand blockage drop = %v dB, paper: >14", drop)
	}
	if !(hand.MeanSNRdB > byName[ScenarioHead].MeanSNRdB &&
		byName[ScenarioHead].MeanSNRdB > byName[ScenarioBody].MeanSNRdB) {
		t.Error("blockage ordering violated")
	}
	nlosGap := los.MeanSNRdB - byName[ScenarioNLOS].MeanSNRdB
	if nlosGap < 8 || nlosGap > 28 {
		t.Errorf("NLOS gap = %v dB, paper: ~16", nlosGap)
	}
	// Every blocked/NLOS scenario fails VR (Fig 3 bottom).
	for _, s := range []Fig3Scenario{ScenarioHand, ScenarioHead, ScenarioBody, ScenarioNLOS} {
		if byName[s].MeanGbps >= r.RequiredRateGbps {
			t.Errorf("%s rate %v should fail requirement %v", s, byName[s].MeanGbps, r.RequiredRateGbps)
		}
	}
	if los.MeanGbps < r.RequiredRateGbps {
		t.Error("LOS should meet the requirement")
	}
	out := r.Render()
	for _, want := range []string{"Figure 3", "LOS", "NLOS", "required"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFig7ReproducesPaperShape checks the leakage characterization:
// values in the tens of negative dB with ≥12 dB swings, different for
// the two RX angles.
func TestFig7ReproducesPaperShape(t *testing.T) {
	r := Fig7(DefaultFig7Config())
	if len(r.TXAngles) != 101 {
		t.Fatalf("TX angles = %d, want 101 (40..140)", len(r.TXAngles))
	}
	if len(r.LeakageDB) != 2 {
		t.Fatalf("series = %d", len(r.LeakageDB))
	}
	for key, vals := range r.LeakageDB {
		if len(vals) != len(r.TXAngles) {
			t.Fatalf("%s: %d values", key, len(vals))
		}
		for _, v := range vals {
			if v > -25 || v < -100 {
				t.Errorf("%s: leakage %v outside plausible band", key, v)
			}
		}
		if r.Swing(key) < 12 {
			t.Errorf("%s: swing %v dB, paper shows ~20", key, r.Swing(key))
		}
	}
	// The two RX angles give different curves.
	a := r.LeakageDB["Rx angle 50"]
	b := r.LeakageDB["Rx angle 65"]
	if stats.MeanAbsError(a, b) < 1 {
		t.Error("RX angle should change the leakage curve")
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Error("render missing title")
	}
}

// TestFig8ReproducesPaperShape checks alignment accuracy: errors within
// 2° (paper §5.1), estimates tracking ground truth.
func TestFig8ReproducesPaperShape(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Runs = 12
	r := Fig8(cfg)
	if len(r.Errors) != cfg.Runs {
		t.Fatalf("errors = %d", len(r.Errors))
	}
	if r.MaxErrDeg > 2.5 {
		t.Errorf("max error = %v°, paper: within 2", r.MaxErrDeg)
	}
	if r.MeanErrDeg > 1.5 {
		t.Errorf("mean error = %v°", r.MeanErrDeg)
	}
	// The estimated-vs-actual fit should be essentially y = x.
	slope, intercept := stats.LinearFit(r.ActualDeg, r.EstimatedDeg)
	if math.Abs(slope-1) > 0.05 {
		t.Errorf("fit slope = %v", slope)
	}
	if math.Abs(intercept) > 5 {
		t.Errorf("fit intercept = %v", intercept)
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Error("render missing title")
	}
}

// TestFig9ReproducesPaperShape checks the headline result: Opt-NLOS mean
// ≈ −17 dB (as low as −27); MoVR mostly at or above LOS with a small
// negative tail.
func TestFig9ReproducesPaperShape(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.Runs = 20
	cfg.NLOSStepDeg = 4
	r := Fig9(cfg)
	if len(r.MoVRImp) != cfg.Runs || len(r.OptNLOSImp) != cfg.Runs {
		t.Fatal("missing runs")
	}
	if r.OptNLOSSummary.Mean > -10 || r.OptNLOSSummary.Mean < -26 {
		t.Errorf("Opt-NLOS mean improvement = %v, paper: ~-17", r.OptNLOSSummary.Mean)
	}
	if r.OptNLOSSummary.Min < -35 {
		t.Errorf("Opt-NLOS min = %v, paper: ~-27", r.OptNLOSSummary.Min)
	}
	// MoVR delivers at or above LOS for most poses ("for most cases,
	// the SNR delivered with MoVR is higher than the SNR delivered over
	// the line-of-sight path", §5.2).
	above := 0
	for _, v := range r.MoVRImp {
		if v >= 0 {
			above++
		}
	}
	if frac := float64(above) / float64(len(r.MoVRImp)); frac < 0.55 {
		t.Errorf("MoVR above LOS for only %.0f%% of poses", 100*frac)
	}
	if r.MoVRSummary.Mean < -1.5 || r.MoVRSummary.Mean > 8 {
		t.Errorf("MoVR mean improvement = %v, paper: around +a few dB", r.MoVRSummary.Mean)
	}
	// A negative tail exists (paper: −3 dB near the AP; our 2-D floor
	// plan adds rare player-on-the-feed-line poses, see EXPERIMENTS.md)
	// but stays bounded.
	if r.MoVRSummary.Min < -25 {
		t.Errorf("MoVR min improvement = %v, tail too deep", r.MoVRSummary.Min)
	}
	// MoVR must crush Opt-NLOS.
	if r.MoVRSummary.Mean < r.OptNLOSSummary.Mean+8 {
		t.Error("MoVR should dominate Opt-NLOS")
	}
	if !strings.Contains(r.Render(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestBatteryMatchesPaperClaim(t *testing.T) {
	r := Battery(DefaultBatteryConfig())
	// Paper: 5200 mAh at ≤1500 mA runs "4-5 hours". Worst case is
	// bounded below by capacity/max-draw ≈ 3.3-3.5 h; typical draw
	// lands in the claimed band.
	if r.WorstCaseHours < 3 || r.WorstCaseHours > 4 {
		t.Errorf("worst case = %v h", r.WorstCaseHours)
	}
	if r.TypicalHours < 4 || r.TypicalHours > 5 {
		t.Errorf("typical = %v h, paper: 4-5", r.TypicalHours)
	}
	if !r.MeetsPaperClaim {
		t.Error("claim should reproduce")
	}
	// Degenerate config falls back to defaults.
	r2 := Battery(BatteryConfig{})
	if r2.TypicalHours != r.TypicalHours {
		t.Error("default fallback broken")
	}
	if !strings.Contains(r.Render(), "runtime") {
		t.Error("render missing content")
	}
}

func TestLatencyBudget(t *testing.T) {
	r := Latency(LatencyConfig{Seed: 3})
	if r.FrameBudget < 10*time.Millisecond || r.FrameBudget > 12*time.Millisecond {
		t.Errorf("frame budget = %v", r.FrameBudget)
	}
	within := map[string]bool{}
	for _, row := range r.Rows {
		within[row.Component] = row.WithinFrame
	}
	// §6: steady-state components all fit in the frame budget.
	for _, c := range []string{"phase shifter update", "beam switch (electronic)",
		"amplifier gain step", "control-link round trip", "pose-assisted re-steer"} {
		if !within[c] {
			t.Errorf("%s should fit within a frame", c)
		}
	}
	// The sweeps do not — that is the paper's motivation for tracking.
	if within["exhaustive alignment sweep"] {
		t.Error("exhaustive sweep should exceed the frame budget")
	}
	if within["hierarchical alignment sweep"] {
		t.Error("hierarchical sweep should exceed the frame budget")
	}
	if r.ExhaustiveAlign <= r.HierarchicalAlign {
		t.Error("exhaustive should cost more than hierarchical")
	}
	if !strings.Contains(r.Render(), "Latency budget") {
		t.Error("render missing title")
	}
}

// TestSessionShowsMoVRValue runs the end-to-end extension: glitch rates
// must order direct ≥ static ≥ reactive ≥ tracking (within a small
// tolerance for the reactive policy's sweep downtime).
func TestSessionShowsMoVRValue(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Duration = 8 * time.Second
	cfg.Seed = 5
	r := Session(cfg)
	direct := r.Reports[VariantDirectOnly]
	static := r.Reports[VariantMoVRStatic]
	reactive := r.Reports[VariantMoVRReactive]
	tracking := r.Reports[VariantMoVRTracking]
	if direct.Frames == 0 {
		t.Fatal("no frames")
	}
	if tracking.GlitchFrac > direct.GlitchFrac {
		t.Errorf("tracking MoVR glitch %.2f worse than direct-only %.2f",
			tracking.GlitchFrac, direct.GlitchFrac)
	}
	if tracking.GlitchFrac > static.GlitchFrac {
		t.Errorf("tracking glitch %.2f worse than static %.2f",
			tracking.GlitchFrac, static.GlitchFrac)
	}
	// The §4.1 reactive policy sits between static and tracking: its
	// sweeps recover the link eventually but cost downtime.
	if reactive.GlitchFrac > static.GlitchFrac+0.05 {
		t.Errorf("reactive glitch %.2f should not exceed static %.2f",
			reactive.GlitchFrac, static.GlitchFrac)
	}
	if tracking.GlitchFrac > reactive.GlitchFrac+0.05 {
		t.Errorf("tracking glitch %.2f should not exceed reactive %.2f",
			tracking.GlitchFrac, reactive.GlitchFrac)
	}
	// Motion must actually occur.
	if r.Trace.DistanceM < 1 {
		t.Error("trace barely moved")
	}
	out := r.Render()
	if !strings.Contains(out, "VR session") || !strings.Contains(out, string(VariantMoVRReactive)) {
		t.Error("render missing content")
	}
}

// TestDeploymentComparison checks the §1 argument: reflectors extend
// coverage without cabling; multi-AP extends coverage with it.
func TestDeploymentComparison(t *testing.T) {
	r := Deployment()
	if len(r.Rows) != 5 || r.Poses == 0 {
		t.Fatalf("rows=%d poses=%d", len(r.Rows), r.Poses)
	}
	byName := map[string]DeploymentRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	oneAP := byName["1 AP (no MoVR)"]
	twoAP := byName["2 APs"]
	oneRefl := byName["1 AP + 1 reflector"]
	twoRefl := byName["1 AP + 2 reflectors"]
	// Adding either APs or reflectors must not reduce coverage.
	if twoAP.CoverageFrac < oneAP.CoverageFrac {
		t.Error("2 APs should not reduce coverage")
	}
	if oneRefl.CoverageFrac < oneAP.CoverageFrac {
		t.Error("a reflector should not reduce coverage")
	}
	if twoRefl.CoverageFrac < oneRefl.CoverageFrac {
		t.Error("a second reflector should not reduce coverage")
	}
	// Reflectors add coverage meaningfully.
	if twoRefl.CoverageFrac < oneAP.CoverageFrac+0.2 {
		t.Errorf("two reflectors raised coverage only %v -> %v",
			oneAP.CoverageFrac, twoRefl.CoverageFrac)
	}
	// Cost: reflectors need no extra cabling or transceivers.
	if oneRefl.CablingM != oneAP.CablingM || oneRefl.FullTransceivers != oneAP.FullTransceivers {
		t.Error("reflectors should cost no cabling/transceivers")
	}
	if twoAP.CablingM <= oneAP.CablingM || twoAP.FullTransceivers != oneAP.FullTransceivers+1 {
		t.Error("extra APs should cost cabling and a transceiver")
	}
	if !strings.Contains(r.Render(), "Deployment alternatives") {
		t.Error("render broken")
	}
}

// TestAblationTrackingPeriod: slower tracking cannot glitch less.
func TestAblationTrackingPeriod(t *testing.T) {
	rows := AblationTrackingPeriod(3)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Allow small non-monotonicity from discrete frame boundaries, but
	// the slowest cadence must be clearly worse than the fastest.
	if rows[len(rows)-1].GlitchFrac+1e-9 < rows[0].GlitchFrac {
		t.Errorf("500ms tracking (%.2f) should not beat 20ms (%.2f)",
			rows[len(rows)-1].GlitchFrac, rows[0].GlitchFrac)
	}
	if !strings.Contains(RenderTrackingAblation(rows), "cadence") {
		t.Error("render broken")
	}
}

func TestAblations(t *testing.T) {
	backoff := AblationGainBackoff(1)
	if len(backoff) != 5 {
		t.Fatalf("backoff rows = %d", len(backoff))
	}
	// Larger back-off: no more gain, no more drift-instability.
	first, last := backoff[0], backoff[len(backoff)-1]
	if last.MeanGainDB > first.MeanGainDB+1e-9 {
		t.Error("more backoff should not raise gain")
	}
	if last.UnstableFrac > first.UnstableFrac+1e-9 {
		t.Error("more backoff should not raise instability")
	}
	if first.MeanMarginDB >= last.MeanMarginDB {
		t.Error("margin should grow with backoff")
	}

	bits := AblationPhaseBits(2)
	if len(bits) != 6 {
		t.Fatalf("bits rows = %d", len(bits))
	}
	// 8-bit must be at least as good as 1-bit on steered gain.
	if bits[0].SteeredGainDBi > bits[len(bits)-1].SteeredGainDBi {
		t.Error("coarse phases should not beat fine phases")
	}

	steps := AblationSweepStep(3)
	if len(steps) != 5 {
		t.Fatalf("step rows = %d", len(steps))
	}
	// Coarser sweeps are faster.
	if steps[0].MeanTime < steps[len(steps)-1].MeanTime {
		t.Error("finer coarse step should cost more time")
	}

	out := RenderAblations(backoff, bits, steps)
	for _, want := range []string{"back-off", "phase-shifter", "granularity"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation render missing %q", want)
		}
	}
}

// TestBand60GHzNeedsBiggerArrays quantifies why the prototype runs at
// 24 GHz while products target 60 GHz: with the same 10-element arrays,
// the quadrupled carrier costs ~8 dB of link budget, pushing mid-room
// LOS below the paper's 25 dB regime — real 60 GHz radios buy it back
// with 32+ element arrays.
func TestBand60GHzNeedsBiggerArrays(t *testing.T) {
	w24 := NewWorld(0)
	w60 := NewWorldWithBudget(0, channel.Budget60GHz())
	pos := geom.V(3.4, 3.0)
	hs24 := w24.NewHeadsetAt(pos, 0)
	hs60 := w60.NewHeadsetAt(pos, 0)
	snr24 := w24.AlignedLOSSNR(hs24)
	snr60 := w60.AlignedLOSSNR(hs60)
	gap := snr24 - snr60
	if gap < 7.5 || gap > 9.5 {
		t.Errorf("24-vs-60 GHz LOS gap = %v dB, want ~8", gap)
	}
	// Same-size arrays at 60 GHz: marginal for VR at this range.
	if snr60 > snr24 {
		t.Error("60 GHz should not beat 24 GHz at equal aperture count")
	}
	// A 32-element 60 GHz array (≈10 dB vs 10 elements... 10log10(32/10)
	// = 5 dB per side) restores the budget.
	cfg := antenna.DefaultConfig(0)
	cfg.Elements = 32
	big, err := antenna.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gainBoost := 2 * (big.PeakGainDBi() - antenna.Default(0).PeakGainDBi())
	if snr60+gainBoost < snr24 {
		t.Errorf("32-element arrays (%+.1f dB) should recover the 60 GHz budget", gainBoost)
	}
}

func TestRenderHelpers(t *testing.T) {
	tbl := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(tbl, "333") || !strings.Contains(tbl, "--") {
		t.Errorf("table = %q", tbl)
	}
	bc := BarChart("t", []string{"x"}, []float64{5}, 0, 10, "ref", 7, "dB")
	if !strings.Contains(bc, "#") || !strings.Contains(bc, "ref") {
		t.Errorf("bar chart = %q", bc)
	}
	cdf := CDFPlot("t", map[string][]float64{"s": {1, 2, 3}}, 40, 8)
	if !strings.Contains(cdf, "s (n=3)") {
		t.Errorf("cdf plot = %q", cdf)
	}
	if !strings.Contains(CDFPlot("t", map[string][]float64{}, 0, 0), "no data") {
		t.Error("empty cdf should say no data")
	}
	sc := ScatterPlot("t", []float64{1, 2}, []float64{1, 2}, true, 30, 8)
	if !strings.Contains(sc, "*") {
		t.Errorf("scatter = %q", sc)
	}
	if !strings.Contains(ScatterPlot("t", nil, nil, false, 0, 0), "no data") {
		t.Error("empty scatter should say no data")
	}
	lp := LinePlot("t", []float64{1, 2, 3}, map[string][]float64{"s": {1, 2, 3}}, 30, 8)
	if !strings.Contains(lp, "s") {
		t.Errorf("line plot = %q", lp)
	}
	if GbpsAt(25) < 6 {
		t.Error("GbpsAt(25) should be ~6.76")
	}
	if RequiredRateGbpsForDisplay() < 5 {
		t.Error("required display rate should be ~5.6 Gb/s")
	}
}
