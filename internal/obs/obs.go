// Package obs is the simulator's structured event recorder — the
// observability layer that explains results instead of just scoring
// them. The link controller records handoffs and path invalidations,
// the coex scheduler records per-window slot grants and blockage
// reclaims, the stream records frame deadline hits and misses, and the
// session harness records lifecycle spans; exporters render the whole
// thing as JSONL or Chrome trace-event JSON loadable in Perfetto.
//
// Three properties are load-bearing:
//
//   - Determinism: events carry sim-time, never wall time, and are
//     recorded in simulation callback order, so the same seed produces
//     a byte-identical trace file on every run, shard, and worker
//     count. Recording never feeds back into the simulation — a traced
//     run produces exactly the reports an untraced run does.
//   - Zero cost when off: every Recorder method is nil-receiver safe,
//     so instrumented hot paths pay one pointer test when tracing is
//     disabled. AllocsPerRun guards pin this at 0 allocs/op.
//   - Allocation-free when on: events are fixed-size values (no
//     pointers, no strings) recorded into a pre-allocated ring, so the
//     steady-state recording path performs zero heap allocations too.
//
// The ring buffer bounds memory per session: when full, the newest
// event overwrites the oldest and the drop is counted, so a trace
// always holds the most recent window of activity plus an exact
// account of what it lost.
package obs

import (
	"math"
	"time"
)

// Kind identifies what an Event describes. The A/B/X/Y payload fields
// are interpreted per kind — see the constant docs.
type Kind uint8

// Event kinds. The zero Kind is invalid, so a zeroed Event is
// recognizably empty.
const (
	// KindSessionStart opens a session's lifecycle span. No payload.
	KindSessionStart Kind = iota + 1

	// KindSessionEnd closes the span. A = frames delivered, B = frames
	// total.
	KindSessionEnd

	// KindLinkUp is the controller establishing (or recovering) a
	// usable path. A = path code (0 direct, 1+i reflector i),
	// X = SNR dB.
	KindLinkUp

	// KindLinkDown is a path invalidation: the serving configuration
	// stopped sustaining any MCS. X = SNR dB at the failure.
	KindLinkDown

	// KindHandoff is a switch between two usable paths. A = previous
	// path code, B = new path code, X = SNR dB on the new path.
	KindHandoff

	// KindReassess is a passive SNR re-read of the serving path (the
	// world-tick measurement between controller actions). A = path
	// code, X = SNR dB, Y = PHY rate bps.
	KindReassess

	// KindSlotGrant is one scheduling window's TDMA sub-slot for this
	// session. T is the window start; A = window index, X/Y = slot
	// start/end in seconds of virtual time.
	KindSlotGrant

	// KindSlotReclaim marks a window in which this session was
	// body-blocked and its airtime was reclaimed for the active
	// players. A = window index.
	KindSlotReclaim

	// KindAirtime is the policy's share decision for one window:
	// A = window index, X = received downlink fraction of the window,
	// Y = entitled fraction (this player's weight share).
	KindAirtime

	// KindFrameOK is a frame delivered within its deadline.
	// A = frame index, X = delivery latency in seconds.
	KindFrameOK

	// KindFrameMiss is a frame that missed its deadline (a glitch).
	// A = frame index, X = fraction of the frame's bits that did
	// arrive before the deadline — the partial-delivery context.
	KindFrameMiss

	// KindBayInterference is one scheduling window's external (cross-
	// bay) SINR penalty, emitted by a coex scheduler whose room carries
	// a venue interference input. A = window index, X = penalty in dB.
	KindBayInterference

	// KindAdmissionQueued records that venue admission control deferred
	// players from this session's bay: they wait outside instead of
	// starving the admitted players' airtime. A = queued player count.
	KindAdmissionQueued

	// KindAdmissionRejected records that venue admission control turned
	// players of this session's bay away outright. A = rejected player
	// count.
	KindAdmissionRejected

	kindMax // sentinel; keep last
)

// kindNames is the canonical wire vocabulary, indexed by Kind.
var kindNames = [kindMax]string{
	KindSessionStart: "session_start",
	KindSessionEnd:   "session_end",
	KindLinkUp:       "link_up",
	KindLinkDown:     "link_down",
	KindHandoff:      "handoff",
	KindReassess:     "reassess",
	KindSlotGrant:    "slot_grant",
	KindSlotReclaim:  "slot_reclaim",
	KindAirtime:      "airtime",
	KindFrameOK:      "frame_ok",
	KindFrameMiss:    "frame_miss",

	KindBayInterference:   "bay_interference",
	KindAdmissionQueued:   "admission_queued",
	KindAdmissionRejected: "admission_rejected",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if k > 0 && k < kindMax {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind inverts String. ok=false for unknown names.
func ParseKind(name string) (Kind, bool) {
	for k := Kind(1); k < kindMax; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// Event is one recorded occurrence. It is a fixed-size value — no
// pointers, no strings — so recording one into the ring allocates
// nothing. T is virtual (simulation) time; A/B/X/Y are payload fields
// whose meaning the Kind defines.
type Event struct {
	T    time.Duration `json:"t"`
	Kind Kind          `json:"k"`
	A    int32         `json:"a,omitempty"`
	B    int32         `json:"b,omitempty"`
	X    float64       `json:"x,omitempty"`
	Y    float64       `json:"y,omitempty"`
}

// DefaultCapacity is the ring size NewRecorder uses for capacity <= 0:
// at ~40 bytes per event, about 1.3 MB per session — comfortably more
// than a 30 s session emits at the default cadences.
const DefaultCapacity = 32768

// Recorder is a per-session ring buffer of events. A nil *Recorder is
// valid and records nothing at (almost) zero cost — instrument hot
// paths unconditionally and leave the field nil to disable tracing.
// A Recorder is not safe for concurrent use; sessions are simulated
// single-threaded, so each session owns its own.
type Recorder struct {
	clock   func() time.Duration
	buf     []Event
	start   int // index of the oldest event
	n       int // live events
	dropped uint64
}

// NewRecorder builds a recorder with the given ring capacity
// (DefaultCapacity when <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// SetClock installs the virtual-time source Emit stamps events with —
// normally the session engine's Now. Nil-receiver safe.
func (r *Recorder) SetClock(clock func() time.Duration) {
	if r == nil {
		return
	}
	r.clock = clock
}

// Enabled reports whether events are being recorded — the guard for
// instrumentation that must do extra work (beyond the emit itself)
// only when tracing is on.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records an event stamped with the recorder clock (T=0 with no
// clock installed). Nil-receiver safe and allocation-free.
func (r *Recorder) Emit(k Kind, a, b int32, x, y float64) {
	if r == nil {
		return
	}
	t := time.Duration(0)
	if r.clock != nil {
		t = r.clock()
	}
	r.EmitAt(t, k, a, b, x, y)
}

// EmitAt records an event at an explicit virtual time — for emitters
// whose event time is not "now" (a window start, a frame start).
// Non-finite payload values are sanitized (NaN → 0, ±Inf → ±MaxFloat64)
// so every recorded event is JSON-encodable. Nil-receiver safe and
// allocation-free.
func (r *Recorder) EmitAt(t time.Duration, k Kind, a, b int32, x, y float64) {
	if r == nil {
		return
	}
	ev := Event{T: t, Kind: k, A: a, B: b, X: sanitize(x), Y: sanitize(y)}
	if r.n == len(r.buf) {
		// Full: the newest event overwrites the oldest, which counts
		// as dropped.
		r.buf[r.start] = ev
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.dropped++
		return
	}
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = ev
	r.n++
}

// sanitize maps non-finite floats to JSON-encodable stand-ins.
func sanitize(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// Len reports the number of live events in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped reports how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the recorded events in emission order (nil when none).
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	head := copy(out, r.buf[r.start:min(r.start+r.n, len(r.buf))])
	copy(out[head:], r.buf[:r.n-head])
	return out
}

// Reset empties the ring and zeroes the drop count; the capacity and
// clock are kept.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.start, r.n, r.dropped = 0, 0, 0
}

// SessionTrace is one session's recorded events plus its identity and
// drop accounting — the unit the exporters serialize.
type SessionTrace struct {
	// ID labels the session (a fleet spec ID like "coex/r0/h0", or a
	// variant name for single-session runs).
	ID string `json:"id"`

	// Dropped counts events the ring overwrote.
	Dropped uint64 `json:"dropped,omitempty"`

	// Events are the recorded events in emission order.
	Events []Event `json:"events"`
}

// Trace is a full multi-session event capture, sessions in spec order.
type Trace struct {
	Sessions []SessionTrace `json:"sessions"`
}

// Collect drains a recorder into a SessionTrace under the given ID.
func Collect(id string, r *Recorder) SessionTrace {
	return SessionTrace{ID: id, Dropped: r.Dropped(), Events: r.Events()}
}
