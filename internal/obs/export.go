// Trace serialization. Two formats, both deterministic (struct-driven
// field order, shortest-round-trip float formatting — byte-identical
// output for equal traces):
//
//   - JSONL: one object per line, a session meta line followed by that
//     session's events — the grep/jq-friendly canonical form.
//   - Chrome trace-event JSON: a {"traceEvents": [...]} document
//     loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//     Sessions render as processes, with a lifecycle span, an airtime
//     track (slot grants as slices, blockage reclaims as instant
//     events), a frame track (deliveries as slices, glitches as
//     instants) and a link track (handoffs and path invalidations),
//     plus SNR/rate/airtime counter series. The document also embeds
//     the canonical Trace under the top-level "movr" key — viewers
//     ignore it, and ReadTrace round-trips from it exactly.
//
// ReadTrace auto-detects the format.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// jsonlLine is the JSONL wire record: a session meta line (Meta=true,
// Events/Dropped set) or one event (Kind etc. set).
type jsonlLine struct {
	SID     string  `json:"sid"`
	Meta    bool    `json:"meta,omitempty"`
	Events  int     `json:"events,omitempty"`
	Dropped uint64  `json:"dropped,omitempty"`
	TNS     int64   `json:"t_ns,omitempty"`
	Kind    string  `json:"kind,omitempty"`
	A       int32   `json:"a,omitempty"`
	B       int32   `json:"b,omitempty"`
	X       float64 `json:"x,omitempty"`
	Y       float64 `json:"y,omitempty"`
}

// WriteJSONL renders the trace as JSON lines: for each session a meta
// line, then its events in order.
func (tr Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range tr.Sessions {
		if err := enc.Encode(jsonlLine{SID: s.ID, Meta: true, Events: len(s.Events), Dropped: s.Dropped}); err != nil {
			return err
		}
		for _, ev := range s.Events {
			line := jsonlLine{
				SID:  s.ID,
				TNS:  ev.T.Nanoseconds(),
				Kind: ev.Kind.String(),
				A:    ev.A,
				B:    ev.B,
				X:    ev.X,
				Y:    ev.Y,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readJSONL parses the WriteJSONL format.
func readJSONL(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line jsonlLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return Trace{}, fmt.Errorf("obs: jsonl line %d: %w", lineNo, err)
		}
		if line.Meta {
			tr.Sessions = append(tr.Sessions, SessionTrace{ID: line.SID, Dropped: line.Dropped})
			continue
		}
		if len(tr.Sessions) == 0 {
			return Trace{}, fmt.Errorf("obs: jsonl line %d: event before any session meta line", lineNo)
		}
		s := &tr.Sessions[len(tr.Sessions)-1]
		if line.SID != s.ID {
			return Trace{}, fmt.Errorf("obs: jsonl line %d: event sid %q under session %q", lineNo, line.SID, s.ID)
		}
		k, ok := ParseKind(line.Kind)
		if !ok {
			return Trace{}, fmt.Errorf("obs: jsonl line %d: unknown event kind %q", lineNo, line.Kind)
		}
		s.Events = append(s.Events, Event{
			T: time.Duration(line.TNS), Kind: k, A: line.A, B: line.B, X: line.X, Y: line.Y,
		})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// Chrome trace-event JSON. Track (tid) layout per session process:
const (
	tidLifecycle = 1 // session span
	tidAirtime   = 2 // slot grants + blockage reclaims
	tidFrames    = 3 // frame deliveries + glitches
	tidLink      = 4 // handoffs, link up/down
)

// chromeDoc is the JSON object format of the trace-event spec, plus
// the embedded canonical trace under "movr" (unknown top-level keys
// are legal metadata viewers ignore).
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Movr            Trace         `json:"movr"`
}

type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	S    string  `json:"s,omitempty"`
	Args any     `json:"args,omitempty"`
}

func usec(t time.Duration) float64 { return float64(t.Nanoseconds()) / 1e3 }

// WriteChrome renders the trace as a Chrome trace-event JSON document
// loadable in Perfetto, with the canonical trace embedded for exact
// round-tripping.
func (tr Trace) WriteChrome(w io.Writer) error {
	doc := chromeDoc{
		TraceEvents:     tr.chromeEvents(),
		DisplayTimeUnit: "ms",
		Movr:            tr,
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvents builds the visualization events for every session.
func (tr Trace) chromeEvents() []chromeEvent {
	type nameArg struct {
		Name string `json:"name"`
	}
	evs := make([]chromeEvent, 0, 64)
	for i, s := range tr.Sessions {
		pid := i + 1
		evs = append(evs,
			chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: nameArg{s.ID}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidLifecycle, Args: nameArg{"session"}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidAirtime, Args: nameArg{"airtime"}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidFrames, Args: nameArg{"frames"}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidLink, Args: nameArg{"link"}},
		)
		evs = append(evs, sessionSpan(pid, s)...)
		for _, ev := range s.Events {
			evs = append(evs, renderEvent(pid, ev)...)
		}
	}
	return evs
}

// sessionSpan renders the lifecycle complete-event from the session
// start/end markers (falling back to the event extent when either is
// missing).
func sessionSpan(pid int, s SessionTrace) []chromeEvent {
	if len(s.Events) == 0 {
		return nil
	}
	start, end := s.Events[0].T, s.Events[0].T
	var delivered, frames int32
	for _, ev := range s.Events {
		if ev.T < start {
			start = ev.T
		}
		if ev.T > end {
			end = ev.T
		}
		switch ev.Kind {
		case KindSessionStart:
			start = ev.T
		case KindSessionEnd:
			end = ev.T
			delivered, frames = ev.A, ev.B
		}
	}
	return []chromeEvent{{
		Name: "session", Ph: "X", Pid: pid, Tid: tidLifecycle,
		Ts: usec(start), Dur: usec(end - start),
		Args: struct {
			Delivered int32 `json:"delivered"`
			Frames    int32 `json:"frames"`
		}{delivered, frames},
	}}
}

// renderEvent maps one canonical event onto its visualization form.
func renderEvent(pid int, ev Event) []chromeEvent {
	switch ev.Kind {
	case KindSessionStart, KindSessionEnd:
		return nil // folded into the lifecycle span
	case KindLinkUp:
		return []chromeEvent{{Name: "link_up", Ph: "i", Pid: pid, Tid: tidLink, Ts: usec(ev.T), S: "t",
			Args: struct {
				Path  int32   `json:"path"`
				SNRdB float64 `json:"snr_db"`
			}{ev.A, ev.X}}}
	case KindLinkDown:
		return []chromeEvent{{Name: "link_down", Ph: "i", Pid: pid, Tid: tidLink, Ts: usec(ev.T), S: "t",
			Args: struct {
				SNRdB float64 `json:"snr_db"`
			}{ev.X}}}
	case KindHandoff:
		return []chromeEvent{{Name: "handoff", Ph: "i", Pid: pid, Tid: tidLink, Ts: usec(ev.T), S: "t",
			Args: struct {
				From  int32   `json:"from"`
				To    int32   `json:"to"`
				SNRdB float64 `json:"snr_db"`
			}{ev.A, ev.B, ev.X}}}
	case KindReassess:
		return []chromeEvent{
			{Name: "snr_db", Ph: "C", Pid: pid, Ts: usec(ev.T),
				Args: struct {
					SNRdB float64 `json:"snr_db"`
				}{ev.X}},
			{Name: "rate_gbps", Ph: "C", Pid: pid, Ts: usec(ev.T),
				Args: struct {
					RateGbps float64 `json:"rate_gbps"`
				}{ev.Y / 1e9}},
		}
	case KindSlotGrant:
		start := time.Duration(ev.X * float64(time.Second))
		end := time.Duration(ev.Y * float64(time.Second))
		return []chromeEvent{{Name: "slot", Ph: "X", Pid: pid, Tid: tidAirtime,
			Ts: usec(start), Dur: usec(end - start),
			Args: struct {
				Win int32 `json:"win"`
			}{ev.A}}}
	case KindSlotReclaim:
		return []chromeEvent{{Name: "blocked", Ph: "i", Pid: pid, Tid: tidAirtime, Ts: usec(ev.T), S: "t",
			Args: struct {
				Win int32 `json:"win"`
			}{ev.A}}}
	case KindAirtime:
		return []chromeEvent{{Name: "airtime", Ph: "C", Pid: pid, Ts: usec(ev.T),
			Args: struct {
				Received float64 `json:"received"`
				Entitled float64 `json:"entitled"`
			}{ev.X, ev.Y}}}
	case KindFrameOK:
		return []chromeEvent{{Name: "frame", Ph: "X", Pid: pid, Tid: tidFrames,
			Ts: usec(ev.T), Dur: ev.X * 1e6,
			Args: struct {
				Frame int32 `json:"frame"`
			}{ev.A}}}
	case KindFrameMiss:
		return []chromeEvent{{Name: "glitch", Ph: "i", Pid: pid, Tid: tidFrames, Ts: usec(ev.T), S: "t",
			Args: struct {
				Frame         int32   `json:"frame"`
				DeliveredFrac float64 `json:"delivered_frac"`
			}{ev.A, ev.X}}}
	}
	return nil
}

// ReadTrace parses a trace in either serialized format, auto-detected:
// a Chrome document (a JSON object embedding "movr") or JSONL.
func ReadTrace(r io.Reader) (Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Trace{}, err
	}
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return Trace{}, fmt.Errorf("obs: empty trace input")
	}
	// A Chrome document is one JSON object spanning the whole input; a
	// JSONL file's first line is a small object of its own. Try the
	// Chrome shape first — a JSONL input fails it immediately (trailing
	// lines), and vice versa.
	if trimmed[0] == '{' {
		var doc struct {
			Movr *Trace `json:"movr"`
		}
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		if err := dec.Decode(&doc); err == nil && !dec.More() && doc.Movr != nil {
			return *doc.Movr, nil
		}
	}
	return readJSONL(bytes.NewReader(trimmed))
}

// ReadTraceFile reads and parses a trace file.
func ReadTraceFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// WriteFile writes the trace to path, choosing the format from the
// extension: .jsonl writes JSONL, everything else the Chrome document.
func (tr Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.writeByExt(path, f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func (tr Trace) writeByExt(path string, w io.Writer) error {
	if strings.HasSuffix(path, ".jsonl") {
		return tr.WriteJSONL(w)
	}
	return tr.WriteChrome(w)
}
