package obs

import (
	"math"
	"testing"
	"time"
)

func TestNilRecorderIsNoOpAndFree(t *testing.T) {
	var r *Recorder
	// Every method must be nil-safe.
	r.SetClock(func() time.Duration { return time.Second })
	r.Emit(KindHandoff, 1, 2, 3, 4)
	r.EmitAt(time.Second, KindFrameOK, 1, 0, 0.5, 0)
	r.Reset()
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder holds state")
	}

	allocs := testing.AllocsPerRun(200, func() {
		r.Emit(KindReassess, 0, 0, 12.5, 2e9)
		r.EmitAt(time.Millisecond, KindFrameMiss, 3, 0, 0.25, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates: %v allocs/op", allocs)
	}
}

func TestRecordZeroAllocsSteadyState(t *testing.T) {
	r := NewRecorder(64)
	clock := time.Duration(0)
	r.SetClock(func() time.Duration { return clock })
	allocs := testing.AllocsPerRun(500, func() {
		clock += time.Millisecond
		r.Emit(KindReassess, 1, 0, 15.0, 3e9)
		r.EmitAt(clock, KindFrameOK, 7, 0, 0.004, 0)
	})
	if allocs != 0 {
		t.Fatalf("live recorder allocates in steady state: %v allocs/op", allocs)
	}
	if r.Dropped() == 0 {
		t.Fatal("expected ring wrap during the alloc loop")
	}
}

func TestRingOrderAndOverflow(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.EmitAt(time.Duration(i)*time.Millisecond, KindFrameOK, int32(i), 0, 0, 0)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	// The newest four events survive, in emission order.
	for i, ev := range evs {
		want := int32(6 + i)
		if ev.A != want {
			t.Errorf("event %d: A = %d, want %d", i, ev.A, want)
		}
		if ev.T != time.Duration(want)*time.Millisecond {
			t.Errorf("event %d: T = %v, want %v", i, ev.T, time.Duration(want)*time.Millisecond)
		}
	}

	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	r.EmitAt(0, KindSessionStart, 0, 0, 0, 0)
	if got := r.Len(); got != 1 {
		t.Fatalf("Len after Reset+Emit = %d, want 1", got)
	}
}

func TestRingWrapSplitCopy(t *testing.T) {
	// Force a wrapped ring (start > 0) and check Events stitches the
	// two halves back in order.
	r := NewRecorder(5)
	for i := 0; i < 8; i++ {
		r.EmitAt(0, KindFrameOK, int32(i), 0, 0, 0)
	}
	evs := r.Events()
	want := []int32{3, 4, 5, 6, 7}
	for i, ev := range evs {
		if ev.A != want[i] {
			t.Fatalf("wrapped Events[%d].A = %d, want %d", i, ev.A, want[i])
		}
	}
}

func TestEmitSanitizesNonFinite(t *testing.T) {
	r := NewRecorder(8)
	r.EmitAt(0, KindLinkDown, 0, 0, math.Inf(-1), math.NaN())
	r.EmitAt(0, KindLinkUp, 0, 0, math.Inf(1), 0)
	evs := r.Events()
	if evs[0].X != -math.MaxFloat64 {
		t.Errorf("-Inf not clamped: %v", evs[0].X)
	}
	if evs[0].Y != 0 {
		t.Errorf("NaN not zeroed: %v", evs[0].Y)
	}
	if evs[1].X != math.MaxFloat64 {
		t.Errorf("+Inf not clamped: %v", evs[1].X)
	}
}

func TestClockStampsEmit(t *testing.T) {
	r := NewRecorder(8)
	now := 42 * time.Millisecond
	r.SetClock(func() time.Duration { return now })
	r.Emit(KindHandoff, 0, 1, 10, 0)
	if got := r.Events()[0].T; got != now {
		t.Fatalf("Emit T = %v, want %v", got, now)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
}
