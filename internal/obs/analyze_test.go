package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAnalyzeSummarizes(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := Trace{Sessions: []SessionTrace{{
		ID:      "s0",
		Dropped: 2,
		Events: []Event{
			{T: 0, Kind: KindSessionStart},
			{T: 0, Kind: KindAirtime, A: 0, X: 0.2, Y: 0.25},
			{T: ms(11), Kind: KindFrameOK, A: 0, X: 0.004},
			// A three-frame miss burst...
			{T: ms(22), Kind: KindFrameMiss, A: 1, X: 0.5},
			{T: ms(33), Kind: KindFrameMiss, A: 2, X: 0},
			{T: ms(44), Kind: KindFrameMiss, A: 3, X: 0.1},
			{T: ms(50), Kind: KindSlotReclaim, A: 1},
			{T: ms(50), Kind: KindAirtime, A: 1, X: 0, Y: 0.25},
			{T: ms(55), Kind: KindFrameOK, A: 4, X: 0.003},
			// ...then a shorter one.
			{T: ms(66), Kind: KindFrameMiss, A: 5, X: 0},
			{T: ms(100), Kind: KindSlotReclaim, A: 2},
			{T: ms(150), Kind: KindSlotReclaim, A: 3},
			{T: ms(150), Kind: KindAirtime, A: 3, X: 0.1, Y: 0.25},
			{T: ms(250), Kind: KindSlotReclaim, A: 5}, // new episode
			{T: ms(160), Kind: KindHandoff, A: 0, B: 1, X: 20},
			{T: ms(170), Kind: KindLinkDown, X: -2},
			{T: ms(180), Kind: KindReassess, A: 1, X: 14, Y: 2e9},
			{T: ms(200), Kind: KindSessionEnd, A: 2, B: 6},
		},
	}}}

	a := Analyze(tr)
	if len(a.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(a.Sessions))
	}
	s := a.Sessions[0]
	if s.Frames != 6 || s.Delivered != 2 {
		t.Errorf("frames/delivered = %d/%d, want 6/2", s.Frames, s.Delivered)
	}
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4", s.Misses)
	}
	if s.WorstMissBurst != 3 {
		t.Errorf("worst miss burst = %d, want 3", s.WorstMissBurst)
	}
	if s.WorstMissStart != ms(22) {
		t.Errorf("worst miss burst start = %v, want %v", s.WorstMissStart, ms(22))
	}
	if s.Handoffs != 1 || s.LinkDowns != 1 || s.Reassessions != 1 {
		t.Errorf("link counts = %d/%d/%d, want 1/1/1", s.Handoffs, s.LinkDowns, s.Reassessions)
	}
	if s.Windows != 3 {
		t.Errorf("windows = %d, want 3", s.Windows)
	}
	if s.BlockedWindows != 4 {
		t.Errorf("blocked windows = %d, want 4", s.BlockedWindows)
	}
	// Reclaimed windows 1,2,3 then 5: two episodes, longest run 3.
	if s.BlockedEpisodes != 2 {
		t.Errorf("blocked episodes = %d, want 2", s.BlockedEpisodes)
	}
	if s.LongestBlockedRun != 3 {
		t.Errorf("longest blocked run = %d, want 3", s.LongestBlockedRun)
	}
	if want := (0.2 + 0 + 0.1) / 3; !almost(s.MeanReceived, want) {
		t.Errorf("mean received = %v, want %v", s.MeanReceived, want)
	}
	if !almost(s.MeanEntitled, 0.25) {
		t.Errorf("mean entitled = %v, want 0.25", s.MeanEntitled)
	}
	if a.TotalDropped != 2 {
		t.Errorf("total dropped = %d, want 2", a.TotalDropped)
	}

	out := a.Render()
	for _, want := range []string{"s0", "worst miss burst", "handoffs", "airtime", "entitled"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func almost(got, want float64) bool {
	d := got - want
	return d < 1e-12 && d > -1e-12
}

// TestAnalyzeVenueEvents pins the venue additions end to end: the new
// kinds keep stable wire names, the analyzer condenses per-window
// SINR penalties into episode statistics (zero-penalty windows break
// an episode without counting), admission bookkeeping is summed, and
// the rendering surfaces both.
func TestAnalyzeVenueEvents(t *testing.T) {
	for kind, name := range map[Kind]string{
		KindBayInterference:   "bay_interference",
		KindAdmissionQueued:   "admission_queued",
		KindAdmissionRejected: "admission_rejected",
	} {
		if kind.String() != name {
			t.Errorf("kind %d wire name %q, want %q", kind, kind.String(), name)
		}
		if parsed, ok := ParseKind(name); !ok || parsed != kind {
			t.Errorf("ParseKind(%q) = %d, %v", name, parsed, ok)
		}
	}

	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := Trace{Sessions: []SessionTrace{{
		ID: "venue/b0/h0",
		Events: []Event{
			{T: 0, Kind: KindSessionStart},
			{T: 0, Kind: KindAdmissionQueued, A: 2},
			{T: 0, Kind: KindAdmissionRejected, A: 1},
			// Windows 0-1 penalized, window 2 clean, windows 3-4 penalized:
			// two episodes over four interfered windows.
			{T: 0, Kind: KindBayInterference, A: 0, X: 0.5},
			{T: ms(50), Kind: KindBayInterference, A: 1, X: 1.5},
			{T: ms(100), Kind: KindBayInterference, A: 2, X: 0},
			{T: ms(150), Kind: KindBayInterference, A: 3, X: 1.0},
			{T: ms(200), Kind: KindBayInterference, A: 4, X: 1.0},
			{T: ms(250), Kind: KindSessionEnd, A: 3, B: 5},
		},
	}}}
	s := Analyze(tr).Sessions[0]
	if s.InterferedWindows != 4 {
		t.Errorf("interfered windows = %d, want 4", s.InterferedWindows)
	}
	if s.InterferenceEpisodes != 2 {
		t.Errorf("interference episodes = %d, want 2", s.InterferenceEpisodes)
	}
	if !almost(s.MeanPenaltyDB, 1.0) {
		t.Errorf("mean penalty = %v dB, want 1.0", s.MeanPenaltyDB)
	}
	if s.MaxPenaltyDB != 1.5 {
		t.Errorf("max penalty = %v dB, want 1.5", s.MaxPenaltyDB)
	}
	if s.AdmissionQueued != 2 || s.AdmissionRejected != 1 {
		t.Errorf("admission queued/rejected = %d/%d, want 2/1", s.AdmissionQueued, s.AdmissionRejected)
	}

	out := Analyze(tr).Render()
	for _, want := range []string{"interference", "episodes", "admission", "queued"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeFallsBackToCountingFrames(t *testing.T) {
	// Session-end marker lost to the ring: frames counted from events.
	tr := Trace{Sessions: []SessionTrace{{
		ID: "s0",
		Events: []Event{
			{T: 0, Kind: KindFrameOK, A: 0},
			{T: 1, Kind: KindFrameMiss, A: 1},
			{T: 2, Kind: KindFrameOK, A: 2},
		},
		Dropped: 10,
	}}}
	s := Analyze(tr).Sessions[0]
	if s.Frames != 3 || s.Delivered != 2 {
		t.Fatalf("frames/delivered = %d/%d, want 3/2", s.Frames, s.Delivered)
	}
}
