package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// sampleTrace exercises every event kind across two sessions, including
// a drop count and an empty session.
func sampleTrace() Trace {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return Trace{Sessions: []SessionTrace{
		{
			ID: "coex/r0/h0",
			Events: []Event{
				{T: 0, Kind: KindSessionStart},
				{T: 0, Kind: KindLinkUp, A: 0, X: 18.5},
				{T: ms(10), Kind: KindReassess, A: 0, X: 17.25, Y: 2.3e9},
				{T: 0, Kind: KindSlotGrant, A: 0, X: 0.0003, Y: 0.0125},
				{T: 0, Kind: KindAirtime, A: 0, X: 0.244, Y: 0.25},
				{T: ms(50), Kind: KindSlotReclaim, A: 1},
				{T: ms(50), Kind: KindAirtime, A: 1, X: 0, Y: 0.25},
				{T: ms(11), Kind: KindFrameOK, A: 0, X: 0.0041},
				{T: ms(22), Kind: KindFrameMiss, A: 1, X: 0.62},
				{T: ms(33), Kind: KindHandoff, A: 0, B: 2, X: 21.0},
				{T: ms(44), Kind: KindLinkDown, X: -3.5},
				{T: ms(100), Kind: KindSessionEnd, A: 7, B: 9},
			},
			Dropped: 3,
		},
		{ID: "coex/r0/h1", Events: nil},
	}}
}

func TestJSONLDeterministicAndRoundTrips(t *testing.T) {
	tr := sampleTrace()
	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSONL is not byte-deterministic")
	}
	back, err := ReadTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("JSONL round-trip mismatch:\n got %+v\nwant %+v", back, tr)
	}
}

func TestChromeDeterministicAndRoundTrips(t *testing.T) {
	tr := sampleTrace()
	var a, b bytes.Buffer
	if err := tr.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteChrome is not byte-deterministic")
	}
	back, err := ReadTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("Chrome round-trip mismatch:\n got %+v\nwant %+v", back, tr)
	}
}

// TestChromeSchema checks the viewer-facing shape of the document: a
// traceEvents array whose entries carry the trace-event-format required
// fields, with sessions as named processes, slot grants as complete
// slices, and blockage reclaims as instant events.
func TestChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var processNames, slots, instants, counters, frames int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" {
			t.Fatalf("event without ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event without pid: %v", ev)
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("non-metadata event without ts: %v", ev)
			}
		}
		switch {
		case ph == "M" && name == "process_name":
			processNames++
		case ph == "X" && name == "slot":
			slots++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("slot slice without dur: %v", ev)
			}
		case ph == "X" && name == "frame":
			frames++
		case ph == "i":
			instants++
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant event without thread scope: %v", ev)
			}
		case ph == "C":
			counters++
		}
	}
	if processNames != 2 {
		t.Errorf("process_name metadata = %d, want 2 (one per session)", processNames)
	}
	if slots == 0 {
		t.Error("no slot-grant slices")
	}
	if frames == 0 {
		t.Error("no frame slices")
	}
	if instants == 0 {
		t.Error("no instant events (blockage/glitch/link)")
	}
	if counters == 0 {
		t.Error("no counter series")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Error("garbage accepted")
	}
	// An event line before any session meta line is malformed.
	if _, err := ReadTrace(bytes.NewReader([]byte(`{"sid":"x","t_ns":1,"kind":"frame_ok"}` + "\n"))); err == nil {
		t.Error("orphan event line accepted")
	}
}

func TestWriteFilePicksFormatByExtension(t *testing.T) {
	tr := sampleTrace()
	dir := t.TempDir()
	chromePath := dir + "/trace.json"
	jsonlPath := dir + "/trace.jsonl"
	if err := tr.WriteFile(chromePath); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFile(jsonlPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{chromePath, jsonlPath} {
		back, err := ReadTraceFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("%s: round-trip mismatch", p)
		}
	}
}
