package obs

import (
	"fmt"
	"strings"
	"time"
)

// SessionSummary condenses one session's event stream into the
// questions a trace exists to answer: how often the link moved, how
// long blockage held the session off the air, where the worst glitch
// burst sat, and whether the airtime the player received matched what
// its weight entitled it to.
type SessionSummary struct {
	ID      string
	Events  int
	Dropped uint64

	// Start and End bound the session span.
	Start, End time.Duration

	// Frames/Delivered come from the session-end marker (falling back
	// to counting frame events when the ring dropped it).
	Frames, Delivered int

	// Link dynamics.
	Handoffs     int
	LinkDowns    int // path invalidations (drops to no usable path)
	Reassessions int

	// Airtime (coex sessions; zero Windows for private rooms).
	Windows           int // scheduling windows observed
	BlockedWindows    int // windows whose slot was reclaimed (blockage)
	BlockedEpisodes   int // runs of consecutive blocked windows
	LongestBlockedRun int // windows in the longest such run
	MeanReceived      float64
	MeanEntitled      float64

	// Cross-bay interference (venue sessions; all zero when the bay has
	// no co-channel neighbors). An episode is a run of consecutive
	// penalized windows; the means are taken over penalized windows
	// only.
	InterferedWindows    int
	InterferenceEpisodes int
	MeanPenaltyDB        float64
	MaxPenaltyDB         float64

	// Venue admission bookkeeping (recorded on one session per bay).
	AdmissionQueued   int
	AdmissionRejected int

	// Deadline misses.
	Misses          int
	WorstMissBurst  int           // consecutive missed frames
	WorstMissStart  time.Duration // first frame of that burst
	WorstMissFrames [2]int32      // frame index range of that burst
}

// Analysis is the movrtrace -analyze product: per-session summaries in
// trace order plus totals.
type Analysis struct {
	Sessions     []SessionSummary
	TotalEvents  int
	TotalDropped uint64
}

// Analyze summarizes a trace.
func Analyze(tr Trace) Analysis {
	a := Analysis{Sessions: make([]SessionSummary, 0, len(tr.Sessions))}
	for _, s := range tr.Sessions {
		sum := summarizeSession(s)
		a.TotalEvents += sum.Events
		a.TotalDropped += sum.Dropped
		a.Sessions = append(a.Sessions, sum)
	}
	return a
}

func summarizeSession(s SessionTrace) SessionSummary {
	sum := SessionSummary{ID: s.ID, Events: len(s.Events), Dropped: s.Dropped}
	if len(s.Events) == 0 {
		return sum
	}
	sum.Start, sum.End = s.Events[0].T, s.Events[0].T

	var (
		frames, delivered        int // counted from frame events (fallback)
		missRun                  int
		missRunStart             time.Duration
		missRunFirst             int32
		lastBlockedWin           int32 = -2
		lastPenWin               int32 = -2
		receivedSum, entitledSum float64
		penaltySum               float64
	)
	endMiss := func(last int32) {
		if missRun > sum.WorstMissBurst {
			sum.WorstMissBurst = missRun
			sum.WorstMissStart = missRunStart
			sum.WorstMissFrames = [2]int32{missRunFirst, last}
		}
		missRun = 0
	}
	var lastMissIdx int32 = -1
	for _, ev := range s.Events {
		if ev.T < sum.Start {
			sum.Start = ev.T
		}
		if ev.T > sum.End {
			sum.End = ev.T
		}
		switch ev.Kind {
		case KindSessionEnd:
			sum.Delivered, sum.Frames = int(ev.A), int(ev.B)
		case KindHandoff:
			sum.Handoffs++
		case KindLinkDown:
			sum.LinkDowns++
		case KindReassess:
			sum.Reassessions++
		case KindAirtime:
			sum.Windows++
			receivedSum += ev.X
			entitledSum += ev.Y
		case KindSlotReclaim:
			sum.BlockedWindows++
			if ev.A != lastBlockedWin+1 {
				sum.BlockedEpisodes++
			}
			lastBlockedWin = ev.A
		case KindBayInterference:
			// The scheduler emits every window's penalty; only positive
			// ones degrade the link, so zeros end an episode without
			// counting.
			if ev.X > 0 {
				sum.InterferedWindows++
				penaltySum += ev.X
				if ev.X > sum.MaxPenaltyDB {
					sum.MaxPenaltyDB = ev.X
				}
				if ev.A != lastPenWin+1 {
					sum.InterferenceEpisodes++
				}
				lastPenWin = ev.A
			}
		case KindAdmissionQueued:
			sum.AdmissionQueued += int(ev.A)
		case KindAdmissionRejected:
			sum.AdmissionRejected += int(ev.A)
		case KindFrameOK:
			frames++
			delivered++
			endMiss(lastMissIdx)
		case KindFrameMiss:
			frames++
			if missRun == 0 {
				missRunStart = ev.T
				missRunFirst = ev.A
			}
			missRun++
			lastMissIdx = ev.A
			sum.Misses++
		}
	}
	endMiss(lastMissIdx)
	if sum.Frames == 0 {
		sum.Frames, sum.Delivered = frames, delivered
	}
	if sum.Windows > 0 {
		sum.MeanReceived = receivedSum / float64(sum.Windows)
		sum.MeanEntitled = entitledSum / float64(sum.Windows)
	}
	if sum.InterferedWindows > 0 {
		sum.MeanPenaltyDB = penaltySum / float64(sum.InterferedWindows)
	}
	sum.LongestBlockedRun = longestBlockedRun(s.Events)
	return sum
}

// longestBlockedRun finds the longest run of consecutive reclaimed
// windows (by window index).
func longestBlockedRun(events []Event) int {
	longest, run := 0, 0
	var prev int32 = -2
	for _, ev := range events {
		if ev.Kind != KindSlotReclaim {
			continue
		}
		if ev.A == prev+1 {
			run++
		} else {
			run = 1
		}
		prev = ev.A
		if run > longest {
			longest = run
		}
	}
	return longest
}

// Render prints the analysis as text.
func (a Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d sessions, %d events (%d dropped)\n",
		len(a.Sessions), a.TotalEvents, a.TotalDropped)
	for _, s := range a.Sessions {
		fmt.Fprintf(&b, "\n%s: %d events", s.ID, s.Events)
		if s.Dropped > 0 {
			fmt.Fprintf(&b, " (%d dropped — oldest events overwritten)", s.Dropped)
		}
		fmt.Fprintf(&b, ", span %v..%v\n", s.Start, s.End)
		if s.Frames > 0 {
			fmt.Fprintf(&b, "  frames: %d/%d delivered (%.1f%%), %d deadline misses\n",
				s.Delivered, s.Frames, 100*float64(s.Delivered)/float64(s.Frames), s.Misses)
		}
		if s.WorstMissBurst > 0 {
			fmt.Fprintf(&b, "  worst miss burst: %d consecutive frames (#%d..#%d) starting at %v\n",
				s.WorstMissBurst, s.WorstMissFrames[0], s.WorstMissFrames[1], s.WorstMissStart)
		}
		fmt.Fprintf(&b, "  link: %d handoffs, %d path invalidations, %d reassessments\n",
			s.Handoffs, s.LinkDowns, s.Reassessions)
		if s.Windows > 0 {
			fmt.Fprintf(&b, "  airtime: blocked %d/%d windows (%d episodes, longest %d); received %.1f%% vs entitled %.1f%%\n",
				s.BlockedWindows, s.Windows, s.BlockedEpisodes, s.LongestBlockedRun,
				100*s.MeanReceived, 100*s.MeanEntitled)
		}
		if s.InterferedWindows > 0 {
			fmt.Fprintf(&b, "  interference: SINR penalty in %d windows (%d episodes), mean %.2f dB, max %.2f dB\n",
				s.InterferedWindows, s.InterferenceEpisodes, s.MeanPenaltyDB, s.MaxPenaltyDB)
		}
		if s.AdmissionQueued > 0 || s.AdmissionRejected > 0 {
			fmt.Fprintf(&b, "  admission: %d players queued, %d rejected beyond bay capacity\n",
				s.AdmissionQueued, s.AdmissionRejected)
		}
	}
	return b.String()
}
