package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postForError submits a body expecting rejection and returns the
// response (body still readable) for envelope assertions.
func postForError(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// fetchEnvelope decodes the v1 error envelope from a non-2xx response.
func fetchEnvelope(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var env apiErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not an envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code/message: %+v", env.Error)
	}
	return env.Error
}

// TestErrorEnvelope pins the v1 contract: every non-2xx response is
// {"error":{"code","message","detail"}} with a stable machine-readable
// code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	t.Run("malformed body 400 invalid_spec", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if got := fetchEnvelope(t, resp).Code; got != ErrCodeInvalidSpec {
			t.Errorf("code %q, want %q", got, ErrCodeInvalidSpec)
		}
	})

	t.Run("out-of-bounds spec 400 invalid_spec", func(t *testing.T) {
		resp := postForError(t, ts, `{"kind":"fleet","fleet":{"scenario":"home","sessions":-1}}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if got := fetchEnvelope(t, resp).Code; got != ErrCodeInvalidSpec {
			t.Errorf("code %q, want %q", got, ErrCodeInvalidSpec)
		}
	})

	t.Run("unknown spec version 400 invalid_spec", func(t *testing.T) {
		resp := postForError(t, ts, `{"v":2,"kind":"fleet","fleet":{"scenario":"home","sessions":2}}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		e := fetchEnvelope(t, resp)
		if e.Code != ErrCodeInvalidSpec {
			t.Errorf("code %q, want %q", e.Code, ErrCodeInvalidSpec)
		}
		if !strings.Contains(e.Message+e.Detail, "version") {
			t.Errorf("envelope does not mention the version: %+v", e)
		}
	})

	t.Run("unknown job 404 not_found", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/jobs/job-99999")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
		if got := fetchEnvelope(t, resp).Code; got != ErrCodeNotFound {
			t.Errorf("code %q, want %q", got, ErrCodeNotFound)
		}
	})

	t.Run("bad list limit 400 invalid_argument", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/jobs?limit=zero")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if got := fetchEnvelope(t, resp).Code; got != ErrCodeInvalidArgument {
			t.Errorf("code %q, want %q", got, ErrCodeInvalidArgument)
		}
	})
}

// TestQueueFullEnvelope pins backpressure: a full queue answers 429
// with code queue_full and a Retry-After hint.
func TestQueueFullEnvelope(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 1})
	fn, release := blockingExec()
	defer release()
	s.Scheduler().execFn = fn

	// Distinct seeds so nothing coalesces: one runs, one queues, the
	// third must bounce.
	var last *http.Response
	for seed := 1; seed <= 3; seed++ {
		body := fmt.Sprintf(`{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"seed":%d,"duration_ms":100}}`, seed)
		last = postForError(t, ts, body)
		if seed < 3 {
			last.Body.Close()
		}
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", last.StatusCode)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	if got := fetchEnvelope(t, last).Code; got != ErrCodeQueueFull {
		t.Errorf("code %q, want %q", got, ErrCodeQueueFull)
	}
}

type listPage struct {
	Jobs       []jobView `json:"jobs"`
	NextCursor string    `json:"next_cursor"`
}

func getList(t *testing.T, ts *httptest.Server, query string) listPage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("list %q: status %d: %s", query, resp.StatusCode, body)
	}
	var page listPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestListFiltersAndPagination pins GET /v1/jobs: deterministic
// ascending-ID order, state and scenario filters, and opaque-cursor
// pagination that tiles the filtered set exactly.
func TestListFiltersAndPagination(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	scenarios := []string{"home", "coex", "home", "home", "coex"}
	for i, sc := range scenarios {
		body := fmt.Sprintf(`{"kind":"fleet","fleet":{"scenario":%q,"sessions":2,"seed":%d,"duration_ms":100}}`, sc, i+1)
		resp, v := postJob(t, ts, body, true)
		if resp.StatusCode != http.StatusOK || v.State != StateDone {
			t.Fatalf("job %d (%s): status %d state %s", i, sc, resp.StatusCode, v.State)
		}
	}

	all := getList(t, ts, "")
	if len(all.Jobs) != len(scenarios) {
		t.Fatalf("unfiltered list has %d jobs, want %d", len(all.Jobs), len(scenarios))
	}
	for i := 1; i < len(all.Jobs); i++ {
		if jobNumericID(all.Jobs[i-1].ID) >= jobNumericID(all.Jobs[i].ID) {
			t.Fatalf("list not in ascending ID order: %s before %s", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}
	if all.NextCursor != "" {
		t.Error("complete page carries a next_cursor")
	}

	if got := getList(t, ts, "?state=done"); len(got.Jobs) != len(scenarios) {
		t.Errorf("state=done returned %d jobs, want %d", len(got.Jobs), len(scenarios))
	}
	if got := getList(t, ts, "?state=failed"); len(got.Jobs) != 0 {
		t.Errorf("state=failed returned %d jobs, want 0", len(got.Jobs))
	}
	home := getList(t, ts, "?scenario=home")
	if len(home.Jobs) != 3 {
		t.Fatalf("scenario=home returned %d jobs, want 3", len(home.Jobs))
	}
	for _, v := range home.Jobs {
		if v.Spec.Fleet == nil || v.Spec.Fleet.Scenario != "home" {
			t.Errorf("scenario filter leaked job %s", v.ID)
		}
	}

	// Cursor walk with limit=2 over the home subset: pages tile the
	// filtered list exactly, in order, with no duplicates, and the last
	// page drops next_cursor.
	var walked []string
	query := "?scenario=home&limit=2"
	for hops := 0; ; hops++ {
		if hops > 10 {
			t.Fatal("cursor walk did not terminate")
		}
		page := getList(t, ts, query)
		for _, v := range page.Jobs {
			walked = append(walked, v.ID)
		}
		if page.NextCursor == "" {
			if len(page.Jobs) == 2 && hops == 0 {
				t.Error("full first page without next_cursor while more jobs remain")
			}
			break
		}
		if len(page.Jobs) != 2 {
			t.Fatalf("short page %d carries next_cursor", hops)
		}
		query = "?scenario=home&limit=2&cursor=" + page.NextCursor
	}
	if len(walked) != len(home.Jobs) {
		t.Fatalf("cursor walk visited %d jobs, want %d", len(walked), len(home.Jobs))
	}
	for i, id := range walked {
		if id != home.Jobs[i].ID {
			t.Fatalf("cursor walk order diverges at %d: %s vs %s", i, id, home.Jobs[i].ID)
		}
	}

	// Cursors are opaque: garbage is rejected, not misparsed.
	resp, err := http.Get(ts.URL + "/v1/jobs?cursor=garbage!!")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage cursor status %d, want 400", resp.StatusCode)
	}
	if got := fetchEnvelope(t, resp).Code; got != ErrCodeInvalidArgument {
		t.Errorf("code %q, want %q", got, ErrCodeInvalidArgument)
	}

	// Unknown state filter is invalid_argument too.
	resp2, err := http.Get(ts.URL + "/v1/jobs?state=sleeping")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad state filter status %d, want 400", resp2.StatusCode)
	}
	if got := fetchEnvelope(t, resp2).Code; got != ErrCodeInvalidArgument {
		t.Errorf("code %q, want %q", got, ErrCodeInvalidArgument)
	}
}
