package server

import (
	"strings"
	"testing"
)

// TestSpecVersionFoldsAway pins the v1 versioning contract: v omitted
// and v:1 are the same spec (bit-identical canonical hash, so every
// pre-version pinned hash and cache entry stays valid), and any other
// version is rejected.
func TestSpecVersionFoldsAway(t *testing.T) {
	base := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 4, Seed: 3}}
	v1 := base
	v1.V = 1
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := v1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h0 != h1 {
		t.Fatalf("v:1 changed the canonical hash: %s vs %s", h1, h0)
	}
	norm, err := v1.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.V != 0 {
		t.Fatalf("normalized V = %d, want 0 (folded away)", norm.V)
	}
	v2 := base
	v2.V = 2
	if _, err := v2.Hash(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v:2 not rejected as an unknown version: %v", err)
	}
}

// TestAggModeHashing pins the aggregation field's hash behavior: the
// exact default folds away (pre-streaming hashes unchanged), streaming
// is a distinct cacheable spec, and unknown modes are invalid.
func TestAggModeHashing(t *testing.T) {
	base := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "mixed", Sessions: 4, Seed: 9}}
	exact := base
	exact.Fleet = &FleetJobSpec{Scenario: "mixed", Sessions: 4, Seed: 9, Agg: "exact"}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hExact, err := exact.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h0 != hExact {
		t.Fatalf(`agg "exact" changed the canonical hash`)
	}
	streamSpec := base
	streamSpec.Fleet = &FleetJobSpec{Scenario: "mixed", Sessions: 4, Seed: 9, Agg: "stream"}
	hStream, err := streamSpec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hStream == h0 {
		t.Fatal("streaming spec hashes equal to the exact spec — the cache would serve the wrong result shape")
	}
	bad := base
	bad.Fleet = &FleetJobSpec{Scenario: "mixed", Sessions: 4, Seed: 9, Agg: "approx"}
	if _, err := bad.Hash(); err == nil {
		t.Fatal("unknown agg mode accepted")
	}
}

// TestShardSpecHashing pins the shard field's hash behavior: shard 0/1
// (and the zero value) fold away so unsharded specs keep their hashes,
// distinct shards of one job hash distinctly, and out-of-range
// coordinates are invalid.
func TestShardSpecHashing(t *testing.T) {
	mk := func(sh *ShardSpec) JobSpec {
		return JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 8, Seed: 5, Shard: sh}}
	}
	h0, err := mk(nil).Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []*ShardSpec{{}, {Index: 0, Count: 1}} {
		h, err := mk(sh).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != h0 {
			t.Fatalf("shard %+v changed the canonical hash", *sh)
		}
	}
	norm, err := mk(&ShardSpec{Index: 0, Count: 1}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Fleet.Shard != nil {
		t.Fatal("shard 0/1 did not fold away in the normalized spec")
	}
	seen := map[string]bool{h0: true}
	for i := 0; i < 4; i++ {
		h, err := mk(&ShardSpec{Index: i, Count: 4}).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if seen[h] {
			t.Fatalf("shard %d/4 hash collides with another spec", i)
		}
		seen[h] = true
	}
	for _, sh := range []ShardSpec{
		{Index: 0, Count: -1},
		{Index: 4, Count: 4},
		{Index: -1, Count: 4},
		{Index: 0, Count: 9}, // count > sessions
	} {
		sh := sh
		if _, err := mk(&sh).Hash(); err == nil {
			t.Fatalf("invalid shard %+v accepted", sh)
		}
	}
	// Normalization must not alias the caller's ShardSpec.
	in := &ShardSpec{Index: 1, Count: 4}
	norm, err = mk(in).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Fleet.Shard == in {
		t.Fatal("normalized spec aliases the caller's ShardSpec")
	}
}
