// Package server exposes the whole simulator as a long-lived HTTP/JSON
// service — the movrd daemon's engine. It has four layers:
//
//   - an API layer: POST /v1/jobs accepts a scenario spec (a fleet
//     scenario, a Fig 9 study, or a coverage map), GET /v1/jobs/{id}
//     reports status and result, GET /v1/jobs/{id}/events streams
//     per-session progress as SSE, plus /healthz and /metrics;
//   - a job scheduler that multiplexes every concurrent API job onto one
//     shared bounded session pool (internal/fleet/pool.Runner), with
//     per-job cancellation, a bounded queue, and 429 backpressure;
//   - a deterministic result cache keyed by a canonical hash of the job
//     spec — fleet results are byte-identical for a given seed set, so a
//     cache hit returns the exact bytes a fresh run would produce;
//   - a metrics layer (Prometheus text format on /metrics) built on
//     internal/metrics.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/venue"
)

// Service limits: jobs are interactive API calls, not batch runs, so
// the spec is bounded before it reaches the engine.
const (
	maxFleetSessions  = 256     // sessions × variants, the real work bound
	maxFleetDuration  = 120_000 // ms
	minFleetReEvalMS  = 5       // finer cadence multiplies tick work ~linearly
	maxFig9Runs       = 500
	minFig9StepDeg    = 0.5 // OptNLOS sweeps both beams: work ~ (360/step)²
	minMapGridStep    = 0.1
	defaultSessions   = 8
	defaultDurationMS = 2000
	defaultReEvalMS   = 50
)

// specVersion is the job-API spec version this server speaks.
const specVersion = 1

// Aggregation modes of a fleet job.
const (
	aggExact  = "exact"
	aggStream = "stream"
)

// JobSpec is the wire format of POST /v1/jobs: a kind plus the matching
// sub-spec. Exactly one sub-spec may be set, and it must match Kind
// (a nil sub-spec of the right kind means "all defaults").
type JobSpec struct {
	// V is the spec version; 0 and 1 both mean v1 (the only version),
	// and normalize to the omitted field — so every spec hash from
	// before the version field stays unchanged. Unknown versions are
	// rejected as invalid.
	V int `json:"v,omitempty"`

	// Kind selects the experiment: "fleet", "fig9" or "map".
	Kind string `json:"kind"`

	Fleet *FleetJobSpec `json:"fleet,omitempty"`
	Fig9  *Fig9JobSpec  `json:"fig9,omitempty"`
	Map   *MapJobSpec   `json:"map,omitempty"`
}

// ShardSpec selects one contiguous session-range shard of a fleet job:
// the expanded session list is split into Count equal(±1) contiguous
// ranges and only range Index runs. The shard coordinates participate
// in the canonical hash — each shard is its own cacheable job — and
// shard 0/1 (the whole job) normalizes to the omitted field, so
// unsharded specs keep their pre-shard hashes.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// FleetJobSpec parameterizes a multi-session fleet run.
type FleetJobSpec struct {
	// Scenario is the generator kind: mixed|arcade|home|dense|coex|
	// coexpf|coexedf|venue (default mixed). The coexpf/coexedf
	// shorthands normalize to scenario "coex" with the matching
	// coex_policy.
	Scenario string `json:"scenario,omitempty"`

	// Sessions is the session count (default 8, max 256).
	Sessions int `json:"sessions,omitempty"`

	// Seed drives the whole scenario deterministically.
	Seed int64 `json:"seed"`

	// DurationMS is the per-session play length in milliseconds
	// (default 2000, max 120000).
	DurationMS int `json:"duration_ms,omitempty"`

	// ReEvalMS is the tracking cadence in milliseconds (default 50).
	ReEvalMS int `json:"reeval_ms,omitempty"`

	// Variants lists the system variants to run, each applied to the
	// full spec set: direct|static|reactive|tracking. Default tracking.
	Variants []string `json:"variants,omitempty"`

	// HeadsetsPerRoom sets how many players share each coex bay's
	// 60 GHz medium (coex-family scenarios only; default 4, max 8). It
	// must be zero for every other scenario, and is omitted from the
	// canonical encoding when zero — so specs from before the coex
	// scenario keep their hashes and cached results stay valid.
	HeadsetsPerRoom int `json:"headsets_per_room,omitempty"`

	// CoexPolicy selects the airtime policy of every coex bay's TDMA
	// scheduler: rr|pf|edf (coex-family scenarios only). Normalization
	// folds the round-robin default to the empty string — so pre-policy
	// coex specs keep their hashes — and folds the coexpf/coexedf
	// scenario shorthands into scenario "coex" with the matching
	// policy, so the two spellings share one cache entry.
	CoexPolicy string `json:"coex_policy,omitempty"`

	// Bays sets how many bays the venue scenario lays out on its grid
	// (venue scenario only; default 4, max 64). Like every venue field
	// it must be zero for every other scenario and is omitted from the
	// canonical encoding when unset — so pre-venue specs keep their
	// hashes and cached results stay valid.
	Bays int `json:"bays,omitempty"`

	// Channels is the venue's channel budget for bay assignment (venue
	// scenario only; default 3, max 4).
	Channels int `json:"channels,omitempty"`

	// Assign selects the venue's channel-assignment strategy:
	// color|fixed (venue scenario only; default color).
	Assign string `json:"assign,omitempty"`

	// InterferenceOff disables cross-bay interference (venue scenario
	// only), leaving the venue a replication of independent coex bays.
	InterferenceOff bool `json:"interference_off,omitempty"`

	// Admission selects what happens to players beyond a bay's TDMA
	// admission capacity: queue|reject (venue scenario only; default
	// queue). In reject mode the daemon refuses an over-capacity
	// submission outright with an admission_denied error instead of
	// running the truncated venue.
	Admission string `json:"admission,omitempty"`

	// Trace records a per-session structured event trace during the run
	// and exposes it at GET /v1/jobs/{id}/trace as Chrome trace-event
	// JSON (Perfetto-loadable). Traced jobs bypass the result cache —
	// the trace is part of the product, and the cache stores only
	// result bytes. False is omitted from the canonical encoding, so
	// pre-trace specs keep their hashes.
	Trace bool `json:"trace,omitempty"`

	// Agg selects the aggregation path: "exact" (default — every
	// per-session outcome retained in the result) or "stream"
	// (constant-memory mergeable sketches; the result carries the
	// aggregate plus sketch state and no per-session list). Exact is
	// canonically spelled as the omitted field, so pre-streaming specs
	// keep their hashes.
	Agg string `json:"agg,omitempty"`

	// Shard, when set, runs only one contiguous session-range shard of
	// the job (see ShardSpec). Shard count may not exceed Sessions, so
	// every shard is non-empty.
	Shard *ShardSpec `json:"shard,omitempty"`
}

// Fig9JobSpec parameterizes the §5.2 SNR-improvement study.
type Fig9JobSpec struct {
	// Runs is the number of random headset placements (default 20,
	// max 500).
	Runs int `json:"runs,omitempty"`

	// NLOSStepDeg is the Opt-NLOS sweep granularity (default 2,
	// min 0.5 — sweep work grows quadratically as the step shrinks).
	NLOSStepDeg float64 `json:"nlos_step_deg,omitempty"`

	// Seed fixes the placements.
	Seed int64 `json:"seed"`
}

// MapJobSpec parameterizes a coverage heatmap.
type MapJobSpec struct {
	// GridStep is the sampling pitch in metres (default 0.5, min 0.1).
	GridStep float64 `json:"grid_step,omitempty"`

	// WithReflector toggles the MoVR reflector install.
	WithReflector bool `json:"with_reflector"`
}

// variantNames maps the wire vocabulary to the session variants.
var variantNames = map[string]experiments.SessionVariant{
	"direct":   experiments.VariantDirectOnly,
	"static":   experiments.VariantMoVRStatic,
	"reactive": experiments.VariantMoVRReactive,
	"tracking": experiments.VariantMoVRTracking,
}

// Normalize validates the spec and fills every defaultable field with
// its explicit value, so that logically identical specs normalize to
// the same value — the property the canonical Hash (and therefore the
// result cache) keys on.
func (s JobSpec) Normalize() (JobSpec, error) {
	if s.V != 0 && s.V != specVersion {
		return JobSpec{}, fmt.Errorf("spec: unknown spec version %d (this server speaks v%d)", s.V, specVersion)
	}
	set := 0
	for _, sub := range []bool{s.Fleet != nil, s.Fig9 != nil, s.Map != nil} {
		if sub {
			set++
		}
	}
	if set > 1 {
		return JobSpec{}, fmt.Errorf("spec: more than one experiment sub-spec set")
	}
	switch s.Kind {
	case "fleet":
		if s.Fig9 != nil || s.Map != nil {
			return JobSpec{}, fmt.Errorf("spec: kind %q with mismatched sub-spec", s.Kind)
		}
		f := FleetJobSpec{}
		if s.Fleet != nil {
			f = *s.Fleet
		}
		nf, err := f.normalize()
		if err != nil {
			return JobSpec{}, err
		}
		return JobSpec{Kind: "fleet", Fleet: &nf}, nil
	case "fig9":
		if s.Fleet != nil || s.Map != nil {
			return JobSpec{}, fmt.Errorf("spec: kind %q with mismatched sub-spec", s.Kind)
		}
		f := Fig9JobSpec{}
		if s.Fig9 != nil {
			f = *s.Fig9
		}
		nf, err := f.normalize()
		if err != nil {
			return JobSpec{}, err
		}
		return JobSpec{Kind: "fig9", Fig9: &nf}, nil
	case "map":
		if s.Fleet != nil || s.Fig9 != nil {
			return JobSpec{}, fmt.Errorf("spec: kind %q with mismatched sub-spec", s.Kind)
		}
		m := MapJobSpec{}
		if s.Map != nil {
			m = *s.Map
		}
		nm, err := m.normalize()
		if err != nil {
			return JobSpec{}, err
		}
		return JobSpec{Kind: "map", Map: &nm}, nil
	case "":
		return JobSpec{}, fmt.Errorf("spec: missing kind (fleet|fig9|map)")
	default:
		return JobSpec{}, fmt.Errorf("spec: unknown kind %q (fleet|fig9|map)", s.Kind)
	}
}

func (f FleetJobSpec) normalize() (FleetJobSpec, error) {
	if f.Scenario == "" {
		f.Scenario = string(fleet.KindMixed)
	}
	if _, err := fleet.ParseKind(f.Scenario); err != nil {
		return FleetJobSpec{}, fmt.Errorf("spec: %w", err)
	}
	// The venue scenario's natural size is its whole bay grid, so an
	// unset session count defaults to bays × players rather than the
	// generic default.
	if f.Sessions == 0 && f.Scenario == string(fleet.KindVenue) {
		bays := f.Bays
		if bays == 0 {
			bays = fleet.DefaultVenueBays
		}
		ppb := f.HeadsetsPerRoom
		if ppb == 0 {
			ppb = fleet.DefaultCoexHeadsets
		}
		f.Sessions = bays * ppb
	}
	switch {
	case f.Sessions == 0:
		f.Sessions = defaultSessions
	case f.Sessions < 0:
		return FleetJobSpec{}, fmt.Errorf("spec: sessions %d must be positive", f.Sessions)
	case f.Sessions > maxFleetSessions:
		return FleetJobSpec{}, fmt.Errorf("spec: sessions %d exceeds the limit of %d", f.Sessions, maxFleetSessions)
	}
	switch {
	case f.DurationMS == 0:
		f.DurationMS = defaultDurationMS
	case f.DurationMS < 0:
		return FleetJobSpec{}, fmt.Errorf("spec: duration_ms %d must be positive", f.DurationMS)
	case f.DurationMS > maxFleetDuration:
		return FleetJobSpec{}, fmt.Errorf("spec: duration_ms %d exceeds the limit of %d", f.DurationMS, maxFleetDuration)
	}
	switch {
	case f.ReEvalMS == 0:
		f.ReEvalMS = defaultReEvalMS
	case f.ReEvalMS < 0:
		return FleetJobSpec{}, fmt.Errorf("spec: reeval_ms %d must be positive", f.ReEvalMS)
	case f.ReEvalMS < minFleetReEvalMS:
		return FleetJobSpec{}, fmt.Errorf("spec: reeval_ms %d below the minimum of %d", f.ReEvalMS, minFleetReEvalMS)
	}
	// Fold the policy-suffixed scenario shorthands into the canonical
	// form — scenario "coex" plus an explicit policy — so both
	// spellings of one workload share a single cache entry.
	fold := func(kind fleet.Kind, policy coex.PolicyName) error {
		if f.CoexPolicy != "" && f.CoexPolicy != string(policy) {
			return fmt.Errorf("spec: scenario %q conflicts with coex_policy %q", kind, f.CoexPolicy)
		}
		f.Scenario = string(fleet.KindCoex)
		f.CoexPolicy = string(policy)
		return nil
	}
	switch fleet.Kind(f.Scenario) {
	case fleet.KindCoexPF:
		if err := fold(fleet.KindCoexPF, coex.PolicyPF); err != nil {
			return FleetJobSpec{}, err
		}
	case fleet.KindCoexEDF:
		if err := fold(fleet.KindCoexEDF, coex.PolicyEDF); err != nil {
			return FleetJobSpec{}, err
		}
	}
	if fleet.IsCoexKind(fleet.Kind(f.Scenario)) {
		switch {
		case f.HeadsetsPerRoom == 0:
			f.HeadsetsPerRoom = fleet.DefaultCoexHeadsets
		case f.HeadsetsPerRoom < 0:
			return FleetJobSpec{}, fmt.Errorf("spec: headsets_per_room %d must be positive", f.HeadsetsPerRoom)
		case f.HeadsetsPerRoom > fleet.MaxCoexHeadsets:
			return FleetJobSpec{}, fmt.Errorf("spec: headsets_per_room %d exceeds the limit of %d", f.HeadsetsPerRoom, fleet.MaxCoexHeadsets)
		}
		if _, err := coex.ParsePolicy(f.CoexPolicy); err != nil {
			return FleetJobSpec{}, fmt.Errorf("spec: %w", err)
		}
		if f.CoexPolicy == string(coex.PolicyRR) {
			// The round-robin default is canonically spelled as the
			// empty (omitted) field, so pre-policy specs keep their
			// hashes and cached results stay valid.
			f.CoexPolicy = ""
		}
	} else {
		if f.HeadsetsPerRoom != 0 {
			return FleetJobSpec{}, fmt.Errorf("spec: headsets_per_room is only meaningful for the %q scenario family", fleet.KindCoex)
		}
		if f.CoexPolicy != "" {
			return FleetJobSpec{}, fmt.Errorf("spec: coex_policy is only meaningful for the %q scenario family", fleet.KindCoex)
		}
	}
	if f.Scenario == string(fleet.KindVenue) {
		switch {
		case f.Bays == 0:
			f.Bays = fleet.DefaultVenueBays
		case f.Bays < 0:
			return FleetJobSpec{}, fmt.Errorf("spec: bays %d must be positive", f.Bays)
		case f.Bays > fleet.MaxVenueBays:
			return FleetJobSpec{}, fmt.Errorf("spec: bays %d exceeds the limit of %d", f.Bays, fleet.MaxVenueBays)
		}
		switch {
		case f.Channels == 0:
			f.Channels = venue.DefaultChannels
		case f.Channels < 0:
			return FleetJobSpec{}, fmt.Errorf("spec: channels %d must be positive", f.Channels)
		case f.Channels > venue.MaxChannels:
			return FleetJobSpec{}, fmt.Errorf("spec: channels %d exceeds the limit of %d", f.Channels, venue.MaxChannels)
		}
		mode, err := venue.ParseAssignMode(f.Assign)
		if err != nil {
			return FleetJobSpec{}, fmt.Errorf("spec: %w", err)
		}
		f.Assign = string(mode)
		adm, err := fleet.ParseAdmission(f.Admission)
		if err != nil {
			return FleetJobSpec{}, fmt.Errorf("spec: %w", err)
		}
		f.Admission = adm
	} else if f.Bays != 0 || f.Channels != 0 || f.Assign != "" || f.InterferenceOff || f.Admission != "" {
		return FleetJobSpec{}, fmt.Errorf("spec: bays/channels/assign/interference_off/admission are only meaningful for the %q scenario", fleet.KindVenue)
	}
	if len(f.Variants) == 0 {
		f.Variants = []string{"tracking"}
	}
	seen := map[string]bool{}
	norm := make([]string, 0, len(f.Variants))
	for _, v := range f.Variants {
		if _, ok := variantNames[v]; !ok {
			return FleetJobSpec{}, fmt.Errorf("spec: unknown variant %q (direct|static|reactive|tracking)", v)
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		norm = append(norm, v)
	}
	f.Variants = norm
	// The session limit bounds actual work: the scenario set runs once
	// per variant.
	if total := f.Sessions * len(f.Variants); total > maxFleetSessions {
		return FleetJobSpec{}, fmt.Errorf("spec: sessions %d × %d variants = %d exceeds the limit of %d",
			f.Sessions, len(f.Variants), total, maxFleetSessions)
	}
	switch f.Agg {
	case "":
		// The venue scenario defaults to the streaming path — hundreds
		// of sessions at constant memory; everywhere else the exact
		// default is canonically spelled as the omitted field, so
		// pre-streaming specs keep their hashes.
		if f.Scenario == string(fleet.KindVenue) {
			f.Agg = aggStream
		}
	case aggExact:
		// Venue keeps an explicit "exact" explicit (its default is
		// stream, so the two must normalize apart).
		if f.Scenario != string(fleet.KindVenue) {
			f.Agg = ""
		}
	case aggStream:
	default:
		return FleetJobSpec{}, fmt.Errorf("spec: unknown agg %q (exact|stream)", f.Agg)
	}
	if f.Shard != nil {
		sh := *f.Shard
		switch {
		case sh == ShardSpec{} || sh == ShardSpec{Index: 0, Count: 1}:
			// The whole job is canonically spelled as the omitted field,
			// so unsharded specs keep their pre-shard hashes.
			f.Shard = nil
		case sh.Count < 1:
			return FleetJobSpec{}, fmt.Errorf("spec: shard count %d must be at least 1", sh.Count)
		case sh.Index < 0 || sh.Index >= sh.Count:
			return FleetJobSpec{}, fmt.Errorf("spec: shard index %d outside [0,%d)", sh.Index, sh.Count)
		case sh.Count > f.Sessions:
			return FleetJobSpec{}, fmt.Errorf("spec: shard count %d exceeds sessions %d", sh.Count, f.Sessions)
		default:
			// Copy so the normalized spec never aliases the caller's.
			f.Shard = &sh
		}
	}
	return f, nil
}

func (f Fig9JobSpec) normalize() (Fig9JobSpec, error) {
	switch {
	case f.Runs == 0:
		f.Runs = 20
	case f.Runs < 0:
		return Fig9JobSpec{}, fmt.Errorf("spec: runs %d must be positive", f.Runs)
	case f.Runs > maxFig9Runs:
		return Fig9JobSpec{}, fmt.Errorf("spec: runs %d exceeds the limit of %d", f.Runs, maxFig9Runs)
	}
	switch {
	case f.NLOSStepDeg == 0:
		f.NLOSStepDeg = 2
	case f.NLOSStepDeg < 0:
		return Fig9JobSpec{}, fmt.Errorf("spec: nlos_step_deg must be positive")
	case f.NLOSStepDeg < minFig9StepDeg:
		return Fig9JobSpec{}, fmt.Errorf("spec: nlos_step_deg %g below the minimum of %g", f.NLOSStepDeg, minFig9StepDeg)
	}
	return f, nil
}

func (m MapJobSpec) normalize() (MapJobSpec, error) {
	switch {
	case m.GridStep == 0:
		m.GridStep = 0.5
	case m.GridStep < minMapGridStep:
		return MapJobSpec{}, fmt.Errorf("spec: grid_step %g below the minimum of %g", m.GridStep, minMapGridStep)
	}
	return m, nil
}

// Hash returns the canonical spec hash — SHA-256 over the JSON encoding
// of the normalized spec (struct field order is fixed, so the encoding
// is canonical). Two submissions normalize to equal specs iff they hash
// equal; the result cache keys on it.
func (s JobSpec) Hash() (string, error) {
	norm, err := s.Normalize()
	if err != nil {
		return "", err
	}
	return hashNormalized(norm)
}

// hashNormalized is the one place the canonical encoding is defined;
// Hash and the scheduler's Submit both key through it.
func hashNormalized(norm JobSpec) (string, error) {
	raw, err := json.Marshal(norm)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// fleetDuration converts the wire milliseconds to the engine duration.
func (f FleetJobSpec) fleetDuration() time.Duration {
	return time.Duration(f.DurationMS) * time.Millisecond
}

func (f FleetJobSpec) reEvalPeriod() time.Duration {
	return time.Duration(f.ReEvalMS) * time.Millisecond
}
