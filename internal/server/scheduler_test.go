package server

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/fleet/pool"
)

// mustScheduler builds a scheduler or fails the test (the only error
// source is an unusable cache directory).
func mustScheduler(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s, err := NewScheduler(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// blockingExec returns an execFn that blocks until release is closed
// (or the job is cancelled), plus the release function.
func blockingExec() (func(ctx context.Context, spec JobSpec, runner *pool.Runner, onSession func(int, int, fleet.SessionOutcome)) ([]byte, *TraceArtifact, error), func()) {
	release := make(chan struct{})
	fn := func(ctx context.Context, spec JobSpec, runner *pool.Runner, onSession func(int, int, fleet.SessionOutcome)) ([]byte, *TraceArtifact, error) {
		select {
		case <-release:
			return []byte(`{"ok":true}`), nil, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return fn, func() { close(release) }
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state (state %s)", j.ID, j.State())
	}
}

func specN(seed int64) JobSpec {
	return JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Scenario: "home", Sessions: 1, Seed: seed, DurationMS: 100,
	}}
}

func TestSchedulerQueueBackpressure(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 1})
	defer s.Close()
	fn, release := blockingExec()
	s.execFn = fn

	// First job occupies the single executor; second fills the queue.
	j1, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until j1 is actually dequeued so j2 deterministically lands
	// in the queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := s.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(specN(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := s.met.jobsQueued.Value(); got != 1 {
		t.Errorf("jobs_queued = %d, want 1", got)
	}

	release()
	waitTerminal(t, j1)
	waitTerminal(t, j2)
	if j1.State() != StateDone || j2.State() != StateDone {
		t.Errorf("states = %s, %s", j1.State(), j2.State())
	}
	// The queue drained: submissions flow again.
	j4, err := s.Submit(specN(4))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j4)
}

func TestSchedulerCancelQueuedAndRunning(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 2})
	defer s.Close()
	fn, release := blockingExec()
	defer release()
	s.execFn = fn

	running, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for running.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}

	if !s.Cancel(queued.ID) {
		t.Fatal("Cancel(queued) = false")
	}
	waitTerminal(t, queued)
	if queued.State() != StateCanceled {
		t.Errorf("queued job state = %s, want canceled", queued.State())
	}

	if !s.Cancel(running.ID) {
		t.Fatal("Cancel(running) = false")
	}
	waitTerminal(t, running)
	if running.State() != StateCanceled {
		t.Errorf("running job state = %s, want canceled", running.State())
	}
	if s.Cancel("job-999") {
		t.Error("Cancel on unknown ID reported success")
	}
	if got := s.met.jobsCanceled.Value(); got != 2 {
		t.Errorf("jobs_canceled = %d, want 2", got)
	}
}

func TestSchedulerCacheHitSkipsExecution(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 2})
	defer s.Close()

	j1, err := s.Submit(specN(7))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	if j1.State() != StateDone {
		t.Fatalf("job 1: state %s, err %q", j1.State(), j1.Err())
	}
	r1, cached := j1.Result()
	if cached {
		t.Error("first run reported cached")
	}

	j2, err := s.Submit(specN(7))
	if err != nil {
		t.Fatal(err)
	}
	// A cache hit is terminal at submit time — no waiting.
	if j2.State() != StateDone {
		t.Fatalf("cache-hit job state = %s", j2.State())
	}
	r2, cached := j2.Result()
	if !cached {
		t.Error("second run not served from cache")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("cached result differs from the original bytes")
	}
	if h, m := s.met.cacheHits.Value(), s.met.cacheMisses.Value(); h != 1 || m != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestSchedulerEventStream(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 2})
	defer s.Close()
	j, err := s.Submit(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Scenario: "home", Sessions: 3, Seed: 5, DurationMS: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("state %s err %q", j.State(), j.Err())
	}
	evs, terminal, _ := j.EventsSince(0)
	if !terminal {
		t.Error("EventsSince not terminal after done")
	}
	var types []string
	sessions := 0
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type == "session" {
			sessions++
			if ev.Total != 3 || ev.Session == "" {
				t.Errorf("bad session event: %+v", ev)
			}
			continue
		}
		types = append(types, ev.Type)
	}
	if sessions != 3 {
		t.Errorf("%d session events, want 3", sessions)
	}
	want := []string{"queued", "running", "done"}
	if len(types) != len(want) {
		t.Fatalf("lifecycle events %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("lifecycle events %v, want %v", types, want)
		}
	}
}

func TestSchedulerRejectsInvalidSpec(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(JobSpec{Kind: "warp"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSchedulerCloseTerminatesQueuedJobs(t *testing.T) {
	// A waiter blocked on a queued job must be released by Close, or
	// ?wait=1 handlers would wedge graceful shutdown.
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 2})
	fn, release := blockingExec()
	defer release()
	s.execFn = fn

	running, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for running.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	waitTerminal(t, queued)
	if st := queued.State(); st != StateCanceled {
		t.Errorf("queued job state after Close = %s", st)
	}
	waitTerminal(t, running)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
	if got := s.met.jobsQueued.Value(); got != 0 {
		t.Errorf("jobs_queued after Close = %d", got)
	}
}

func TestSchedulerRejectionLeavesNoTrace(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 1})
	defer s.Close()
	fn, release := blockingExec()
	defer release()
	s.execFn = fn

	j1, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(specN(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(specN(int64(10 + i))); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit %d: err = %v, want ErrQueueFull", i, err)
		}
	}
	// Rejected submissions must not linger in the registry or the
	// creation-order slice (they'd leak under sustained backpressure),
	// and must not skew the admission metrics.
	s.mu.Lock()
	orderLen, jobsLen := len(s.order), len(s.jobs)
	s.mu.Unlock()
	if orderLen != 2 || jobsLen != 2 {
		t.Errorf("after rejections: order=%d jobs=%d, want 2/2", orderLen, jobsLen)
	}
	if got := s.met.jobsRejected.Value(); got != 5 {
		t.Errorf("jobs_rejected = %d, want 5", got)
	}
	if got := s.met.jobsSubmitted.Value(); got != 2 {
		t.Errorf("jobs_submitted = %d, want 2 (rejections must not count)", got)
	}
	if got := s.met.cacheMisses.Value(); got != 2 {
		t.Errorf("cache_misses = %d, want 2 (rejections must not count)", got)
	}
}

func TestSchedulerCancelWinsOverCompletedResult(t *testing.T) {
	// An executor that ignores ctx and returns a result anyway: if the
	// job was cancelled first, the terminal state must still be
	// canceled, not done.
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1})
	defer s.Close()
	release := make(chan struct{})
	s.execFn = func(ctx context.Context, spec JobSpec, runner *pool.Runner, onSession func(int, int, fleet.SessionOutcome)) ([]byte, *TraceArtifact, error) {
		<-release
		return []byte(`{"ok":true}`), nil, nil // deliberately ignores ctx
	}

	j, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.Cancel(j.ID)
	close(release)
	waitTerminal(t, j)
	if st := j.State(); st != StateCanceled {
		t.Errorf("state = %s, want canceled", st)
	}
	if res, _ := j.Result(); res != nil {
		t.Error("canceled job exposed a result")
	}
}

func TestSchedulerShutdownRejectsSubmissions(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1})
	s.Close()
	if _, err := s.Submit(specN(1)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("err = %v, want ErrShuttingDown", err)
	}
}

// TestExecuteDeterministic is the cache's correctness foundation: the
// same normalized spec executes to byte-identical result documents for
// every job kind, whatever the shared pool's capacity.
func TestExecuteDeterministic(t *testing.T) {
	for name, raw := range map[string]JobSpec{
		"fleet": {Kind: "fleet", Fleet: &FleetJobSpec{
			Scenario: "dense", Sessions: 3, Seed: 11, DurationMS: 200,
			Variants: []string{"tracking", "direct"},
		}},
		"fig9": {Kind: "fig9", Fig9: &Fig9JobSpec{Runs: 4, NLOSStepDeg: 10, Seed: 2}},
		"map":  {Kind: "map", Map: &MapJobSpec{GridStep: 1.0, WithReflector: true}},
	} {
		t.Run(name, func(t *testing.T) {
			spec, err := raw.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			a, _, err := execute(context.Background(), spec, pool.NewRunner(1), nil)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := execute(context.Background(), spec, pool.NewRunner(4), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Error("execute is not deterministic across runner capacities")
			}
		})
	}
}

// TestExecuteHonorsContextForEveryKind: cancellation must reach every
// job kind's work loop, not just fleet sessions.
func TestExecuteHonorsContextForEveryKind(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, raw := range []JobSpec{
		{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 1, DurationMS: 100}},
		{Kind: "fig9"},
		{Kind: "map"},
	} {
		spec, err := raw.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := execute(ctx, spec, pool.NewRunner(1), nil); !errors.Is(err, context.Canceled) {
			t.Errorf("kind %s: err = %v, want context.Canceled", raw.Kind, err)
		}
	}
}
