package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/fleet/pool"
	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/venue"
)

// TraceArtifact is a completed job's flight-data recording: the
// Chrome trace-event document (Perfetto-loadable) the trace endpoint
// serves, plus the count summary the job view reports. Deterministic —
// a given spec produces byte-identical Chrome bytes on every run.
type TraceArtifact struct {
	Chrome   []byte
	Sessions int
	Events   int
	Dropped  uint64
}

// payload is the deterministic result document of a completed job: the
// structured result of the experiment that ran, plus the same text
// rendering the movrsim CLI prints. Serialized once and cached as raw
// bytes, so a cache hit is bit-for-bit the fresh run.
type payload struct {
	Kind   string                     `json:"kind"`
	Fleet  *fleet.Result              `json:"fleet,omitempty"`
	Fig9   *experiments.Fig9Result    `json:"fig9,omitempty"`
	Map    *experiments.HeatmapResult `json:"map,omitempty"`
	Render string                     `json:"render"`
}

// execute runs a normalized spec to completion and returns the result
// bytes plus — for fleet jobs with the trace flag — the recorded trace
// artifact. Every kind's units of work — fleet sessions, fig9 trials,
// map cells — execute on the shared runner, so concurrent jobs together
// never exceed its capacity; fleet jobs additionally report per-session
// completions through onSession. ctx cancels a job between work units.
func execute(ctx context.Context, spec JobSpec, runner *pool.Runner, onSession func(done, total int, o fleet.SessionOutcome)) ([]byte, *TraceArtifact, error) {
	var p payload
	var trace *TraceArtifact
	switch spec.Kind {
	case "fleet":
		res, title, tr, err := executeFleet(ctx, *spec.Fleet, runner, onSession)
		if err != nil {
			return nil, nil, err
		}
		trace = tr
		p = payload{Kind: "fleet", Fleet: &res, Render: res.Render(title)}
	case "fig9":
		f := *spec.Fig9
		cfg := experiments.Fig9Config{
			Runs:        f.Runs,
			NLOSStepDeg: f.NLOSStepDeg,
			Seed:        f.Seed,
			Runner:      runner,
		}
		res, err := experiments.Fig9Context(ctx, cfg)
		if err != nil {
			return nil, nil, err
		}
		p = payload{Kind: "fig9", Fig9: &res, Render: res.Render()}
	case "map":
		m := *spec.Map
		cfg := experiments.DefaultHeatmapConfig(m.WithReflector)
		cfg.GridStep = m.GridStep
		cfg.Runner = runner
		res, err := experiments.HeatmapContext(ctx, cfg)
		if err != nil {
			return nil, nil, err
		}
		title := "VR coverage — bare AP"
		if m.WithReflector {
			title = "VR coverage — AP + MoVR reflector"
		}
		p = payload{Kind: "map", Map: &res, Render: res.Render(title)}
	default:
		return nil, nil, fmt.Errorf("execute: unknown kind %q", spec.Kind)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, nil, fmt.Errorf("execute: encode result: %w", err)
	}
	return raw, trace, nil
}

// executeFleet expands the fleet job spec into session specs — the full
// scenario set once per requested variant, IDs suffixed "@variant" —
// and runs them on the shared pool.
func executeFleet(ctx context.Context, f FleetJobSpec, runner *pool.Runner, onSession func(done, total int, o fleet.SessionOutcome)) (fleet.Result, string, *TraceArtifact, error) {
	kind, err := fleet.ParseKind(f.Scenario)
	if err != nil {
		return fleet.Result{}, "", nil, err
	}
	scfg := fleet.ScenarioConfig{
		Seed:                 f.Seed,
		Duration:             f.fleetDuration(),
		ReEvalPeriod:         f.reEvalPeriod(),
		HeadsetsPerRoom:      f.HeadsetsPerRoom,
		CoexPolicy:           coex.PolicyName(f.CoexPolicy),
		VenueBays:            f.Bays,
		VenueChannels:        f.Channels,
		VenueAssign:          venue.AssignMode(f.Assign),
		VenueInterferenceOff: f.InterferenceOff,
		VenueAdmission:       f.Admission,
	}
	base, err := kind.Specs(f.Sessions, scfg)
	if err != nil {
		return fleet.Result{}, "", nil, err
	}
	specs := make([]fleet.Spec, 0, len(base)*len(f.Variants))
	for _, name := range f.Variants {
		variant := variantNames[name]
		for _, sp := range base {
			sp.ID = sp.ID + "@" + name
			sp.Variant = variant
			specs = append(specs, sp)
		}
	}
	// Sharding slices the expanded list, but streaming sketches are
	// always sized from the FULL set — every shard of one job spec gets
	// identical sketch ranges, the precondition for merging their
	// states. The shard coordinates are part of the canonical hash, so
	// each shard caches independently.
	var col fleet.Collector
	if f.Agg == aggStream {
		col = fleet.StreamCollectorFor(specs)
	}
	if f.Shard != nil {
		sh := fleet.Shard{Index: f.Shard.Index, Count: f.Shard.Count}
		if err := sh.Validate(); err != nil {
			return fleet.Result{}, "", nil, err
		}
		// Bay-aligned: no shard splits a bay, so sharded jobs keep the
		// bay-batched execution path; merging shards still reassembles
		// the full run exactly.
		specs = sh.SliceAligned(specs)
	}
	var recs []*obs.Recorder
	if f.Trace {
		recs = fleet.AttachTraceRecorders(specs, 0)
	}
	res, err := fleet.RunCollect(ctx, specs, fleet.Config{Runner: runner, OnSession: onSession}, col)
	if err != nil {
		return fleet.Result{}, "", nil, err
	}
	var trace *TraceArtifact
	if f.Trace {
		tr := fleet.CollectTrace(specs, recs)
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			return fleet.Result{}, "", nil, fmt.Errorf("encode trace: %w", err)
		}
		trace = &TraceArtifact{Chrome: buf.Bytes(), Sessions: len(tr.Sessions)}
		for _, st := range tr.Sessions {
			trace.Events += len(st.Events)
			trace.Dropped += st.Dropped
		}
	}
	title := kind.Title()
	if f.CoexPolicy != "" {
		title += " [policy=" + f.CoexPolicy + "]"
	}
	if fleet.IsVenueKind(kind) {
		title += fmt.Sprintf(" [bays=%d channels=%d assign=%s]", f.Bays, f.Channels, f.Assign)
	}
	if len(f.Variants) > 1 {
		title += " [" + strings.Join(f.Variants, "+") + "]"
	}
	if f.Shard != nil {
		title += fmt.Sprintf(" [shard %d/%d]", f.Shard.Index, f.Shard.Count)
	}
	return res, title, trace, nil
}
