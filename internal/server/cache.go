package server

import (
	"container/list"
	"sync"
)

// cache is the deterministic result cache: canonical spec hash → result
// bytes, LRU-evicted at a fixed entry bound. Because every job is a
// pure function of its normalized spec, a hit returns exactly the bytes
// a fresh run would produce — correctness is testable bit for bit.
type cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

func newCache(maxEntries int) *cache {
	if maxEntries < 1 {
		maxEntries = 256
	}
	return &cache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and refreshes its recency.
func (c *cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes it.
func (c *cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len reports the entry count.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
