package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/fleet/pool"
)

// State is a job's lifecycle position.
type State string

// The job states. Queued and Running are transient; the rest are
// terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry in a job's progress stream — what the SSE endpoint
// sends, one JSON object per event.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued|coalesced|running|session|done|failed|canceled

	// Session events: which session finished and how far along the job
	// is.
	Session       string  `json:"session,omitempty"`
	Done          int     `json:"done,omitempty"`
	Total         int     `json:"total,omitempty"`
	DeliveredFrac float64 `json:"delivered_frac,omitempty"`

	// Coalesced events: the in-flight primary job this submission was
	// folded into.
	Primary string `json:"primary,omitempty"`

	// Terminal events.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Job is one submitted simulation. All mutable state is behind mu;
// accessors return snapshots.
type Job struct {
	// ID is the scheduler-assigned handle ("job-1", "job-2", ...).
	ID string

	// Spec is the normalized spec; Hash its canonical hash.
	Spec JobSpec
	Hash string

	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{} // closed on terminal transition

	mu        sync.Mutex
	state     State
	errMsg    string
	result    []byte
	resultSHA string // hex SHA-256 of result, computed once when set
	trace     *TraceArtifact
	cached    bool
	coalesced string // ID of the in-flight primary this job was folded into
	created   time.Time
	started   time.Time
	finished  time.Time
	events    []Event
	updated   chan struct{} // closed and replaced on every event
}

// resultDigest hashes result bytes once, at the moment they are set;
// status views reuse it instead of rehashing per request.
func resultDigest(res []byte) string {
	sum := sha256.Sum256(res)
	return hex.EncodeToString(sum[:])
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the result bytes (nil unless done) and whether they
// came from the cache.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.cached
}

// Coalesced returns the ID of the in-flight primary job this
// submission was folded into ("" for jobs that executed themselves or
// were served from the cache).
func (j *Job) Coalesced() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.coalesced
}

// Trace returns the job's recorded trace artifact (nil unless the job
// was submitted with the fleet trace flag and completed).
func (j *Job) Trace() *TraceArtifact {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Err returns the failure message ("" unless failed/canceled).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// appendEventLocked records ev (stamping its sequence number) and wakes
// every EventsSince waiter. Callers hold j.mu.
func (j *Job) appendEventLocked(ev Event) {
	ev.Seq = len(j.events) + 1
	j.events = append(j.events, ev)
	close(j.updated)
	j.updated = make(chan struct{})
}

// EventsSince returns the events after sequence number `after`, whether
// the job is terminal, and a channel closed on the next change — enough
// to stream without missed wakeups: read events, and if none and not
// terminal, wait on the channel.
func (j *Job) EventsSince(after int) (evs []Event, terminal bool, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < len(j.events) {
		evs = append([]Event(nil), j.events[after:]...)
	}
	return evs, j.state.Terminal(), j.updated
}

// Submission errors the API layer maps to HTTP statuses.
var (
	// ErrQueueFull is backpressure: the job queue is at capacity (429).
	ErrQueueFull = errors.New("server: job queue full")

	// ErrShuttingDown rejects submissions during shutdown (503).
	ErrShuttingDown = errors.New("server: shutting down")

	// ErrAdmissionDenied refuses a venue job whose per-bay player count
	// exceeds the TDMA admission capacity under admission=reject (409).
	ErrAdmissionDenied = errors.New("server: admission denied")
)

// Options tunes the scheduler.
type Options struct {
	// Workers is the shared session-pool capacity every concurrent job
	// multiplexes onto (<= 0 means GOMAXPROCS).
	Workers int

	// QueueDepth bounds the jobs waiting to execute; a full queue
	// rejects submissions with ErrQueueFull (default 16).
	QueueDepth int

	// MaxJobs bounds the jobs executing concurrently (default 4; their
	// sessions still share the one pool).
	MaxJobs int

	// CacheEntries bounds the result cache (default 256).
	CacheEntries int

	// RetainJobs bounds the finished-job records kept for GET
	// (default 1024; oldest terminal records are dropped first).
	RetainJobs int

	// CacheDir, when non-empty, backs the result cache with an
	// append-only on-disk store (<CacheDir>/results.log): every
	// completed result is fsync'd to it, and a restarted daemon serves
	// persisted entries without re-executing. Empty keeps the cache
	// memory-only.
	CacheDir string
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 1024
	}
	return o
}

// Scheduler multiplexes API jobs onto one shared bounded session pool:
// a bounded queue feeds MaxJobs executor goroutines, each job's
// sessions run on the Runner, and results land in the deterministic
// cache.
type Scheduler struct {
	opts   Options
	runner *pool.Runner
	cache  *cache
	store  *store // durable cache tier; nil without Options.CacheDir
	met    *serverMetrics

	queue    chan *Job
	baseCtx  context.Context
	shutdown context.CancelFunc
	wg       sync.WaitGroup
	followWG sync.WaitGroup // coalesced-follower watchers

	// execFn runs a job spec; the default is execute. Tests substitute
	// blocking or failing executors to probe scheduling behaviour
	// without timing games. Written only before the first Submit.
	execFn func(ctx context.Context, spec JobSpec, runner *pool.Runner, onSession func(done, total int, o fleet.SessionOutcome)) ([]byte, *TraceArtifact, error)

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	order    []string // creation order, for retention pruning
	inflight map[string]*Job
	nextID   int
}

// NewScheduler builds the scheduler and starts its executors. With
// Options.CacheDir it also opens (compacting) the durable result store;
// an unusable cache directory is the only error.
func NewScheduler(opts Options) (*Scheduler, error) {
	opts = opts.withDefaults()
	var st *store
	if opts.CacheDir != "" {
		var err error
		if st, err = openStore(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	runner := pool.NewRunner(opts.Workers)
	c := newCache(opts.CacheEntries)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:     opts,
		runner:   runner,
		cache:    c,
		store:    st,
		met:      newServerMetrics(runner, c, st),
		queue:    make(chan *Job, opts.QueueDepth),
		baseCtx:  ctx,
		shutdown: cancel,
		execFn:   execute,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	for i := 0; i < opts.MaxJobs; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// cacheGet checks the memory tier, then the durable store (promoting a
// disk hit into memory so repeats stay off the disk).
func (s *Scheduler) cacheGet(hash string) ([]byte, bool) {
	if res, ok := s.cache.Get(hash); ok {
		return res, true
	}
	if s.store != nil {
		if res, ok := s.store.Get(hash); ok {
			s.cache.Put(hash, res)
			s.met.storeHits.Inc()
			return res, true
		}
	}
	return nil, false
}

// cachePut stores a completed result in both tiers. A store append
// failure (disk full, yanked volume) degrades durability, not service:
// it is counted and the in-memory entry still serves.
func (s *Scheduler) cachePut(hash string, res []byte) {
	s.cache.Put(hash, res)
	if s.store != nil {
		if err := s.store.Put(hash, res); err != nil {
			s.met.storeErrors.Inc()
		}
	}
}

// Metrics exposes the registry (for the /metrics handler and tests).
func (s *Scheduler) Metrics() *serverMetrics { return s.met }

// Close stops accepting jobs, cancels everything in flight, and waits
// for the executors to drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	s.shutdown()
	for _, j := range jobs {
		j.cancel()
	}
	s.wg.Wait()

	// The executors are gone; jobs still sitting in the queue would
	// otherwise never reach a terminal state, wedging every ?wait=1
	// handler blocked on them. Nothing can enqueue any more (Submit
	// checks closed under s.mu before the enqueue), so draining here is
	// complete.
drain:
	for {
		select {
		case j := <-s.queue:
			s.met.jobsQueued.Add(-1)
			s.finishCanceled(j, "scheduler shut down")
		default:
			break drain
		}
	}
	// Every primary is now terminal, so the follower watchers all wake
	// and finish; no new ones can start once closed is set.
	s.followWG.Wait()
	if s.store != nil {
		_ = s.store.Close()
	}
}

// finishCanceled moves a job that will never run from queued straight
// to canceled, atomically — the transition happens only if the job is
// still queued, so it cannot collide with an executor that already
// claimed it. Reports whether it transitioned.
func (s *Scheduler) finishCanceled(j *Job, msg string) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateCanceled
	j.errMsg = msg
	j.finished = time.Now()
	j.appendEventLocked(Event{Type: "canceled"})
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	s.clearInflight(j)
	s.met.jobsCanceled.Inc()
	return true
}

// clearInflight drops the job's coalescing registration, if it is the
// current primary for its hash. New identical submissions will then
// hit the cache (the primary's result lands there before this runs) or
// execute afresh.
func (s *Scheduler) clearInflight(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	s.mu.Unlock()
}

// newJob allocates a job record and registers it. The closed check
// shares the registration critical section, so no job can be born after
// Close has started tearing the registry down.
func (s *Scheduler) newJob(spec JobSpec, hash string) (*Job, error) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrShuttingDown
	}
	j := s.newJobLocked(spec, hash, ctx, cancel)
	s.mu.Unlock()
	return j, nil
}

// newJobLocked is newJob's registration core; the caller holds s.mu and
// has already rejected a closed scheduler.
func (s *Scheduler) newJobLocked(spec JobSpec, hash string, ctx context.Context, cancel context.CancelFunc) *Job {
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.nextID),
		Spec:    spec,
		Hash:    hash,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
		updated: make(chan struct{}),
	}
	j.appendEventLocked(Event{Type: "queued"})
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.pruneLocked()
	return j
}

// pruneLocked drops the oldest terminal job records beyond the
// retention bound. Live jobs are never dropped, so the map can exceed
// the bound only by the number of jobs in flight.
func (s *Scheduler) pruneLocked() {
	for len(s.jobs) > s.opts.RetainJobs {
		pruned := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
			if j.State().Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return
		}
	}
}

// removeLocked unregisters a job that was never admitted (queue full,
// shutdown race). Callers hold s.mu. The ID is the newest, so the scan
// runs from the back.
func (s *Scheduler) removeLocked(id string) {
	delete(s.jobs, id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Submit validates and normalizes spec, then serves it the cheapest
// correct way: from the result cache (the job is born done, with the
// exact bytes a fresh run would produce), by coalescing onto an
// identical in-flight job (the follower subscribes to the primary's
// outcome and never enqueues), or by enqueueing it. A full queue
// returns ErrQueueFull — the API layer's 429. Only admitted submissions
// count toward the submission and cache metrics; rejections count
// separately.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	hash, err := hashNormalized(norm)
	if err != nil {
		return nil, err
	}
	if err := s.admitVenue(norm); err != nil {
		return nil, err
	}

	// Traced jobs bypass the cache and coalescing entirely: both return
	// result bytes only, silently losing the trace the caller asked for.
	traced := norm.Fleet != nil && norm.Fleet.Trace
	if !traced {
		if res, ok := s.cacheGet(hash); ok {
			j, err := s.newJob(norm, hash)
			if err != nil {
				return nil, err
			}
			j.mu.Lock()
			j.state = StateDone
			j.cached = true
			j.result = res
			j.resultSHA = resultDigest(res)
			j.started = j.created
			j.finished = j.created
			j.appendEventLocked(Event{Type: "done", Cached: true})
			j.mu.Unlock()
			j.cancel() // nothing will ever use the context
			close(j.done)
			s.met.jobsSubmitted.Inc()
			s.met.jobsByScenario.Inc(scenarioLabel(norm))
			s.met.cacheHits.Inc()
			s.met.jobsDone.Inc()
			return j, nil
		}
	}

	// Admission: one critical section covers the closed check, the
	// coalescing lookup, the registration, and the enqueue — so a
	// concurrent identical submission cannot slip between lookup and
	// registration (becoming a second primary), and nothing can enqueue
	// behind Close's drain.
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrShuttingDown
	}
	if !traced {
		if primary, ok := s.inflight[hash]; ok {
			j := s.newJobLocked(norm, hash, ctx, cancel)
			j.mu.Lock()
			j.coalesced = primary.ID
			j.appendEventLocked(Event{Type: "coalesced", Primary: primary.ID})
			j.mu.Unlock()
			s.followWG.Add(1) // inside s.mu: Close cannot Wait between the closed check and this Add
			s.mu.Unlock()
			s.met.jobsSubmitted.Inc()
			s.met.jobsByScenario.Inc(scenarioLabel(norm))
			s.met.jobsCoalesced.Inc()
			go s.followPrimary(j, primary)
			return j, nil
		}
	}
	j := s.newJobLocked(norm, hash, ctx, cancel)
	select {
	case s.queue <- j:
		if !traced {
			s.inflight[hash] = j
		}
		s.mu.Unlock()
		s.met.jobsSubmitted.Inc()
		s.met.jobsByScenario.Inc(scenarioLabel(norm))
		s.met.cacheMisses.Inc()
		s.met.jobsQueued.Add(1)
		return j, nil
	default:
		s.removeLocked(j.ID)
		s.mu.Unlock()
		j.cancel()
		s.met.jobsRejected.Inc()
		return nil, ErrQueueFull
	}
}

// admitVenue runs policy-driven admission control on a normalized venue
// spec before any queueing: each bay's TDMA window only fits
// fleet.VenueCapacity players under the configured policy, and players
// beyond it are queued (the job runs with the admitted set, the
// generator records the overflow) or — under admission=reject — refuse
// the whole submission with ErrAdmissionDenied, the API's 409. The
// admission counters account players across the venue either way.
// Non-venue specs pass through untouched.
func (s *Scheduler) admitVenue(norm JobSpec) error {
	if norm.Kind != "fleet" || norm.Fleet == nil || norm.Fleet.Scenario != string(fleet.KindVenue) {
		return nil
	}
	f := norm.Fleet
	capacity := fleet.VenueCapacity(f.HeadsetsPerRoom, fleet.ScenarioConfig{
		ReEvalPeriod: f.reEvalPeriod(),
		CoexPolicy:   coex.PolicyName(f.CoexPolicy),
	})
	overflow := f.HeadsetsPerRoom - capacity
	if overflow > 0 && f.Admission == fleet.AdmissionReject {
		s.met.admissionRejected.Add(int64(overflow * f.Bays))
		policy := f.CoexPolicy
		if policy == "" {
			policy = string(coex.PolicyRR)
		}
		return fmt.Errorf("%w: %d players per bay exceeds the %s policy's admission capacity of %d",
			ErrAdmissionDenied, f.HeadsetsPerRoom, policy, capacity)
	}
	s.met.admissionAdmitted.Add(int64(capacity * f.Bays))
	if overflow > 0 {
		s.met.admissionQueued.Add(int64(overflow * f.Bays))
	}
	return nil
}

// followPrimary mirrors the primary's terminal state onto a coalesced
// follower once the primary finishes — all waiters on an identical
// in-flight spec share one execution. A follower canceled before the
// primary finishes detaches without affecting it.
func (s *Scheduler) followPrimary(j, primary *Job) {
	defer s.followWG.Done()
	select {
	case <-j.done: // follower canceled directly (finishCanceled closed it)
		return
	case <-primary.Done():
	}
	primary.mu.Lock()
	state, errMsg := primary.state, primary.errMsg
	result, resultSHA := primary.result, primary.resultSHA
	primary.mu.Unlock()

	j.mu.Lock()
	if j.state != StateQueued { // lost the race to a direct cancel
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	switch state {
	case StateDone:
		j.state = StateDone
		j.result = result
		j.resultSHA = resultSHA
		j.cached = true // computed by the primary, not this job
		j.appendEventLocked(Event{Type: "done"})
	case StateFailed:
		j.state = StateFailed
		j.errMsg = errMsg
		j.appendEventLocked(Event{Type: "failed", Error: errMsg})
	default:
		j.state = StateCanceled
		j.errMsg = "coalesced primary canceled"
		j.appendEventLocked(Event{Type: "canceled"})
	}
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	switch j.State() {
	case StateDone:
		s.met.jobsDone.Inc()
	case StateFailed:
		s.met.jobsFailed.Inc()
	default:
		s.met.jobsCanceled.Inc()
	}
}

// scenarioLabel is the per-scenario job-counter label of a normalized
// spec: the fleet scenario kind for fleet jobs, the job kind otherwise.
func scenarioLabel(norm JobSpec) string {
	if norm.Kind == "fleet" && norm.Fleet != nil {
		return norm.Fleet.Scenario
	}
	return norm.Kind
}

// Get looks a job up by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every retained job in creation order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel cancels a job: a queued job terminates immediately (its queue
// slot is reclaimed when an executor dequeues the husk), a running
// job's context is cancelled — the shared pool stops claiming its work
// units and the executor marks it canceled. Returns false for unknown
// IDs.
func (s *Scheduler) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	if !s.finishCanceled(j, "canceled while queued") {
		j.cancel()
	}
	return true
}

// executor drains the queue, running one job at a time on the shared
// pool.
func (s *Scheduler) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.met.jobsQueued.Add(-1)
			s.run(j)
		}
	}
}

// run executes one dequeued job through its full lifecycle.
func (s *Scheduler) run(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.created)
	j.appendEventLocked(Event{Type: "running"})
	j.mu.Unlock()
	s.met.queueWait.Observe(queueWait.Seconds())
	s.met.jobsRunning.Add(1)
	defer s.met.jobsRunning.Add(-1)

	onSession := func(done, total int, o fleet.SessionOutcome) {
		s.met.sessionsDone.Inc()
		j.mu.Lock()
		j.appendEventLocked(Event{
			Type:          "session",
			Session:       o.ID,
			Done:          done,
			Total:         total,
			DeliveredFrac: o.DeliveredFrac,
		})
		j.mu.Unlock()
	}
	result, trace, err := s.execFn(j.ctx, j.Spec, s.runner, onSession)

	j.mu.Lock()
	j.finished = time.Now()
	elapsed := j.finished.Sub(j.started)
	switch {
	// Cancellation wins even over a completed result: a DELETE that
	// raced the job's last work unit still reports canceled.
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errMsg = "canceled"
		j.appendEventLocked(Event{Type: "canceled"})
	case err == nil:
		j.state = StateDone
		j.result = result
		j.resultSHA = resultDigest(result)
		j.trace = trace
		j.appendEventLocked(Event{Type: "done"})
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.appendEventLocked(Event{Type: "failed", Error: j.errMsg})
	}
	j.mu.Unlock()
	j.cancel()
	close(j.done)

	switch j.State() {
	case StateDone:
		// Traced jobs stay out of the result cache: a later identical
		// submission must re-run to produce its own trace (Submit
		// bypasses Get for them symmetrically).
		if trace == nil {
			s.cachePut(j.Hash, result)
		} else {
			s.met.tracedJobs.Inc()
			s.met.traceEvents.Add(int64(trace.Events))
			s.met.traceDropped.Add(int64(trace.Dropped))
		}
		s.met.jobsDone.Inc()
		s.met.jobLatency.Observe(elapsed.Seconds())
	case StateCanceled:
		s.met.jobsCanceled.Inc()
	default:
		s.met.jobsFailed.Inc()
	}
	// Deregister from coalescing only after the result is cached: an
	// identical submission always either coalesces (before this) or
	// cache-hits (after) — never re-executes a completed spec.
	s.clearInflight(j)
}
