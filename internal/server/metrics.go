package server

import (
	"github.com/movr-sim/movr/internal/fleet/pool"
	"github.com/movr-sim/movr/internal/metrics"
)

// serverMetrics wires the daemon's instruments into one registry; the
// /metrics handler renders it in Prometheus text format.
type serverMetrics struct {
	reg *metrics.Registry

	jobsSubmitted *metrics.Counter
	jobsRejected  *metrics.Counter
	jobsDone      *metrics.Counter
	jobsFailed    *metrics.Counter
	jobsCanceled  *metrics.Counter
	jobsQueued    *metrics.Gauge
	jobsRunning   *metrics.Gauge

	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter

	jobsCoalesced *metrics.Counter
	storeHits     *metrics.Counter
	storeErrors   *metrics.Counter

	sessionsDone *metrics.Counter
	jobLatency   *metrics.Histogram
	queueWait    *metrics.Histogram
	httpRequests *metrics.Counter

	jobsByScenario *metrics.CounterVec

	tracedJobs   *metrics.Counter
	traceEvents  *metrics.Counter
	traceDropped *metrics.Counter

	admissionAdmitted *metrics.Counter
	admissionQueued   *metrics.Counter
	admissionRejected *metrics.Counter
}

func newServerMetrics(runner *pool.Runner, c *cache, st *store) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:           reg,
		jobsSubmitted: reg.NewCounter("movrd_jobs_submitted_total", "Jobs accepted by POST /v1/jobs."),
		jobsRejected:  reg.NewCounter("movrd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full."),
		jobsDone:      reg.NewCounter("movrd_jobs_done_total", "Jobs completed successfully (cache hits included)."),
		jobsFailed:    reg.NewCounter("movrd_jobs_failed_total", "Jobs that ended in error."),
		jobsCanceled:  reg.NewCounter("movrd_jobs_canceled_total", "Jobs canceled before completing."),
		jobsQueued:    reg.NewGauge("movrd_jobs_queued", "Jobs waiting in the scheduler queue."),
		jobsRunning:   reg.NewGauge("movrd_jobs_running", "Jobs currently executing."),
		cacheHits:     reg.NewCounter("movrd_cache_hits_total", "Submissions served from the result cache."),
		cacheMisses:   reg.NewCounter("movrd_cache_misses_total", "Submissions that had to run."),
		jobsCoalesced: reg.NewCounter("movrd_jobs_coalesced_total", "Submissions folded onto an identical in-flight job instead of executing."),
		storeHits:     reg.NewCounter("movrd_store_hits_total", "Cache lookups served from the durable on-disk store."),
		storeErrors:   reg.NewCounter("movrd_store_errors_total", "Failed appends to the durable result store."),
		sessionsDone:  reg.NewCounter("movrd_sessions_completed_total", "Fleet sessions completed across all jobs."),
		jobLatency:    reg.NewHistogram("movrd_job_latency_seconds", "Wall-clock latency of executed jobs (cache hits excluded).", metrics.DefaultLatencyBuckets()),
		queueWait:     reg.NewHistogram("movrd_job_queue_wait_seconds", "Time jobs spent queued between submission and execution start (cache hits excluded).", metrics.DefaultLatencyBuckets()),
		httpRequests:  reg.NewCounter("movrd_http_requests_total", "HTTP requests served."),
		jobsByScenario: reg.NewCounterVec("movrd_jobs_by_scenario_total",
			"Admitted jobs by scenario kind (fleet scenario for fleet jobs, job kind otherwise).", "scenario"),
		tracedJobs:   reg.NewCounter("movrd_traced_jobs_total", "Completed jobs that recorded an event trace."),
		traceEvents:  reg.NewCounter("movrd_trace_events_total", "Events captured across all completed traced jobs."),
		traceDropped: reg.NewCounter("movrd_trace_events_dropped_total", "Events lost to per-session ring-buffer overflow across traced jobs."),
		admissionAdmitted: reg.NewCounter("movrd_admission_admitted_total",
			"Venue players admitted by the bay admission controller, summed over submitted venue jobs."),
		admissionQueued: reg.NewCounter("movrd_admission_queued_total",
			"Venue players queued beyond bay capacity, summed over submitted venue jobs."),
		admissionRejected: reg.NewCounter("movrd_admission_rejected_total",
			"Venue players rejected beyond bay capacity, including submissions refused with admission_denied."),
	}
	reg.NewGaugeFunc("movrd_cache_entries", "Entries in the result cache.",
		func() float64 { return float64(c.Len()) })
	if st != nil {
		reg.NewGaugeFunc("movrd_store_entries", "Entries in the durable on-disk result store.",
			func() float64 { return float64(st.Len()) })
	}
	reg.NewGaugeFunc("movrd_cache_hit_ratio", "Cache hits / submissions, 0 before any submission.",
		func() float64 {
			h, ms := float64(m.cacheHits.Value()), float64(m.cacheMisses.Value())
			if h+ms == 0 {
				return 0
			}
			return h / (h + ms)
		})
	reg.NewGaugeFunc("movrd_pool_capacity", "Shared session pool capacity.",
		func() float64 { return float64(runner.Capacity()) })
	reg.NewGaugeFunc("movrd_pool_in_use", "Shared session pool slots executing right now.",
		func() float64 { return float64(runner.InUse()) })
	reg.NewGaugeFunc("movrd_pool_utilization", "Pool slots in use / capacity.",
		func() float64 { return float64(runner.InUse()) / float64(runner.Capacity()) })
	reg.NewGaugeFunc("movrd_job_latency_p50_seconds", "Estimated median executed-job latency.",
		func() float64 { return m.jobLatency.Quantile(50) })
	reg.NewGaugeFunc("movrd_job_latency_p95_seconds", "Estimated p95 executed-job latency.",
		func() float64 { return m.jobLatency.Quantile(95) })
	return m
}
