package server

import (
	"strings"
	"testing"
)

func TestNormalizeFillsFleetDefaults(t *testing.T) {
	norm, err := JobSpec{Kind: "fleet"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	f := norm.Fleet
	if f == nil {
		t.Fatal("nil fleet sub-spec after normalize")
	}
	if f.Scenario != "mixed" || f.Sessions != defaultSessions ||
		f.DurationMS != defaultDurationMS || f.ReEvalMS != defaultReEvalMS {
		t.Errorf("defaults not filled: %+v", f)
	}
	if len(f.Variants) != 1 || f.Variants[0] != "tracking" {
		t.Errorf("variants = %v, want [tracking]", f.Variants)
	}
}

func TestHashCanonicalization(t *testing.T) {
	// A fully-defaulted spec and an explicitly-spelled-out equivalent
	// must hash identically — that equality is what makes the result
	// cache correct.
	implicit := JobSpec{Kind: "fleet"}
	explicit := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Scenario:   "mixed",
		Sessions:   defaultSessions,
		DurationMS: defaultDurationMS,
		ReEvalMS:   defaultReEvalMS,
		Variants:   []string{"tracking"},
	}}
	h1, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("equivalent specs hash differently:\n%s\n%s", h1, h2)
	}

	other := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Seed: 9}}
	h3, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("different seeds hash identically")
	}
	if len(h1) != 64 {
		t.Errorf("hash %q is not hex SHA-256", h1)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"missing kind", JobSpec{}, "missing kind"},
		{"unknown kind", JobSpec{Kind: "warp"}, "unknown kind"},
		{"mismatched subspec", JobSpec{Kind: "fig9", Fleet: &FleetJobSpec{}}, "mismatched"},
		{"two subspecs", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{}, Map: &MapJobSpec{}}, "more than one"},
		{"bad scenario", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "stadium"}}, "unknown scenario"},
		{"negative sessions", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Sessions: -1}}, "must be positive"},
		{"too many sessions", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Sessions: maxFleetSessions + 1}}, "exceeds"},
		{"too long", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{DurationMS: maxFleetDuration + 1}}, "exceeds"},
		{"bad variant", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Variants: []string{"quantum"}}}, "unknown variant"},
		{"variants multiply past the cap", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
			Sessions: maxFleetSessions, Variants: []string{"tracking", "direct"},
		}}, "exceeds"},
		{"reeval too fine", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{ReEvalMS: 1}}, "below the minimum"},
		{"negative runs", JobSpec{Kind: "fig9", Fig9: &Fig9JobSpec{Runs: -2}}, "must be positive"},
		{"tiny nlos step", JobSpec{Kind: "fig9", Fig9: &Fig9JobSpec{NLOSStepDeg: 0.01}}, "below the minimum"},
		{"tiny grid", JobSpec{Kind: "map", Map: &MapJobSpec{GridStep: 0.01}}, "grid_step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNormalizeDedupesVariants(t *testing.T) {
	norm, err := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Variants: []string{"tracking", "direct", "tracking"},
	}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	got := norm.Fleet.Variants
	if len(got) != 2 || got[0] != "tracking" || got[1] != "direct" {
		t.Errorf("variants = %v, want [tracking direct]", got)
	}
}

// TestCoexFieldHashes pins the cache-correctness contract of the coex
// scenario's headsets_per_room field: specs differing only in
// coexistence settings must hash apart (no stale cache hits), while the
// zero value hashes exactly as specs did before the field existed (a
// redeploy must not orphan every cached result).
func TestCoexFieldHashes(t *testing.T) {
	coex2 := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", HeadsetsPerRoom: 2}}
	coex4 := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", HeadsetsPerRoom: 4}}
	h2, err := coex2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h4, err := coex4.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h4 {
		t.Error("specs differing only in headsets_per_room hash identically")
	}

	// Zero headsets_per_room on the coex scenario means the default bay.
	implicit := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex"}}
	hImplicit, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hImplicit != h4 {
		t.Error("coex with implicit headsets_per_room should hash like the explicit default of 4")
	}

	// The field is coex-only: any other scenario must reject it rather
	// than silently fork the cache key space.
	bad := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "mixed", HeadsetsPerRoom: 2}}
	if _, err := bad.Normalize(); err == nil {
		t.Error("headsets_per_room accepted on a non-coex scenario")
	}
}

// TestCoexPolicyFieldHashes pins the cache-correctness contract of the
// coex_policy field: policies hash apart (no stale cache hits across
// policies), the round-robin default hashes exactly as coex specs did
// before the field existed, and the coexpf/coexedf scenario shorthands
// normalize — and therefore hash — identically to their canonical
// scenario-plus-policy spelling.
func TestCoexPolicyFieldHashes(t *testing.T) {
	hash := func(s JobSpec) string {
		t.Helper()
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", Seed: 7}})
	pf := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", CoexPolicy: "pf", Seed: 7}})
	edf := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", CoexPolicy: "edf", Seed: 7}})
	if base == pf || base == edf || pf == edf {
		t.Error("specs differing only in coex_policy must hash apart")
	}

	// The round-robin default, spelled explicitly, is the same spec.
	if rr := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", CoexPolicy: "rr", Seed: 7}}); rr != base {
		t.Error("explicit coex_policy \"rr\" should hash like the implicit default")
	}

	// The scenario shorthands are the same specs as their canonical
	// spellings.
	if got := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coexpf", Seed: 7}}); got != pf {
		t.Error("scenario \"coexpf\" should hash like scenario \"coex\" + coex_policy \"pf\"")
	}
	if got := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coexedf", Seed: 7}}); got != edf {
		t.Error("scenario \"coexedf\" should hash like scenario \"coex\" + coex_policy \"edf\"")
	}

	// Shorthand kinds accept a matching explicit policy and reject a
	// conflicting one.
	if got := hash(JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coexpf", CoexPolicy: "pf", Seed: 7}}); got != pf {
		t.Error("scenario \"coexpf\" with matching coex_policy should hash like the shorthand alone")
	}
	bad := []JobSpec{
		{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coexpf", CoexPolicy: "edf"}},
		{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", CoexPolicy: "fifo"}},
		{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "mixed", CoexPolicy: "pf"}},
	}
	for i, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("case %d: Normalize accepted an invalid coex_policy combination", i)
		}
	}
}

// TestPrePolicyCoexHashesUnchanged pins the canonical hashes of three
// coex specs as computed before the coex_policy field existed (captured
// from the previous revision). If any moves, every cached coex result
// would be orphaned on upgrade.
func TestPrePolicyCoexHashesUnchanged(t *testing.T) {
	pinned := []struct {
		spec JobSpec
		hash string
	}{
		{
			JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", Seed: 7}},
			"cca3cea5afad6fdc0b845a0d143d43fcba0bb5798071bbc88a98463a923fc7de",
		},
		{
			JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", HeadsetsPerRoom: 2, Seed: 7}},
			"003776d27ff890ec9437a63a7842466c2aa65eeae76373747a535e23b6cfef01",
		},
		{
			JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "coex", Sessions: 16, HeadsetsPerRoom: 8, Seed: 42, DurationMS: 1000}},
			"c26891c17f575890200e1a876333972de50e4189454ebbc35e1a86d394ca9410",
		},
	}
	for i, c := range pinned {
		h, err := c.spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != c.hash {
			t.Errorf("case %d: hash = %s, want the pre-policy hash %s", i, h, c.hash)
		}
	}
}

// TestPreCoexHashesUnchanged pins the canonical hashes of two specs as
// computed before the coex field existed (captured from the previous
// revision). If either moves, every pre-coex cached result would be
// orphaned on upgrade — or worse, a changed normalization could alias
// distinct specs.
func TestPreCoexHashesUnchanged(t *testing.T) {
	pinned := []struct {
		spec JobSpec
		hash string
	}{
		{
			JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "mixed", Sessions: 8, Seed: 42}},
			"274c87eaa36dc6fd9aab4f2a62eb53f60854cc631f36f7ca58f4c050786d809a",
		},
		{
			JobSpec{Kind: "fleet"},
			"afefca6d8d97374b03849208f9147e59021c46aa04b8cf3371fd62a75c1b8e8b",
		},
	}
	for i, c := range pinned {
		h, err := c.spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != c.hash {
			t.Errorf("case %d: hash = %s, want the pre-coex hash %s", i, h, c.hash)
		}
	}
}

func TestHashStableWithTraceFalse(t *testing.T) {
	// trace:false must fold away under omitempty so every pre-trace
	// spec keeps its hash (and its cached results stay valid); only
	// trace:true changes the identity.
	plain := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Seed: 5}}
	off := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Seed: 5, Trace: false}}
	on := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Seed: 5, Trace: true}}
	hPlain, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hOff, err := off.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hOn, err := on.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hPlain != hOff {
		t.Errorf("trace:false changed the spec hash:\n%s\n%s", hPlain, hOff)
	}
	if hOn == hPlain {
		t.Error("trace:true must change the spec hash")
	}
}
