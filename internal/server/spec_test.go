package server

import (
	"strings"
	"testing"
)

func TestNormalizeFillsFleetDefaults(t *testing.T) {
	norm, err := JobSpec{Kind: "fleet"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	f := norm.Fleet
	if f == nil {
		t.Fatal("nil fleet sub-spec after normalize")
	}
	if f.Scenario != "mixed" || f.Sessions != defaultSessions ||
		f.DurationMS != defaultDurationMS || f.ReEvalMS != defaultReEvalMS {
		t.Errorf("defaults not filled: %+v", f)
	}
	if len(f.Variants) != 1 || f.Variants[0] != "tracking" {
		t.Errorf("variants = %v, want [tracking]", f.Variants)
	}
}

func TestHashCanonicalization(t *testing.T) {
	// A fully-defaulted spec and an explicitly-spelled-out equivalent
	// must hash identically — that equality is what makes the result
	// cache correct.
	implicit := JobSpec{Kind: "fleet"}
	explicit := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Scenario:   "mixed",
		Sessions:   defaultSessions,
		DurationMS: defaultDurationMS,
		ReEvalMS:   defaultReEvalMS,
		Variants:   []string{"tracking"},
	}}
	h1, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("equivalent specs hash differently:\n%s\n%s", h1, h2)
	}

	other := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Seed: 9}}
	h3, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("different seeds hash identically")
	}
	if len(h1) != 64 {
		t.Errorf("hash %q is not hex SHA-256", h1)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"missing kind", JobSpec{}, "missing kind"},
		{"unknown kind", JobSpec{Kind: "warp"}, "unknown kind"},
		{"mismatched subspec", JobSpec{Kind: "fig9", Fleet: &FleetJobSpec{}}, "mismatched"},
		{"two subspecs", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{}, Map: &MapJobSpec{}}, "more than one"},
		{"bad scenario", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "stadium"}}, "unknown scenario"},
		{"negative sessions", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Sessions: -1}}, "must be positive"},
		{"too many sessions", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Sessions: maxFleetSessions + 1}}, "exceeds"},
		{"too long", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{DurationMS: maxFleetDuration + 1}}, "exceeds"},
		{"bad variant", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Variants: []string{"quantum"}}}, "unknown variant"},
		{"variants multiply past the cap", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
			Sessions: maxFleetSessions, Variants: []string{"tracking", "direct"},
		}}, "exceeds"},
		{"reeval too fine", JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{ReEvalMS: 1}}, "below the minimum"},
		{"negative runs", JobSpec{Kind: "fig9", Fig9: &Fig9JobSpec{Runs: -2}}, "must be positive"},
		{"tiny nlos step", JobSpec{Kind: "fig9", Fig9: &Fig9JobSpec{NLOSStepDeg: 0.01}}, "below the minimum"},
		{"tiny grid", JobSpec{Kind: "map", Map: &MapJobSpec{GridStep: 0.01}}, "grid_step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNormalizeDedupesVariants(t *testing.T) {
	norm, err := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Variants: []string{"tracking", "direct", "tracking"},
	}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	got := norm.Fleet.Variants
	if len(got) != 2 || got[0] != "tracking" || got[1] != "direct" {
		t.Errorf("variants = %v, want [tracking direct]", got)
	}
}
