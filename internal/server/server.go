package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Server is the HTTP front-end over a Scheduler: the movrd daemon's
// handler. Routes:
//
//	POST   /v1/jobs             submit a JobSpec; ?wait=1 blocks until done
//	GET    /v1/jobs             list retained jobs (summaries)
//	GET    /v1/jobs/{id}        job status + result
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events per-session progress as SSE
//	GET    /v1/jobs/{id}/trace  recorded event trace (fleet jobs with trace:true)
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// New builds a server (and its scheduler) from options. The only
// error source is an unusable Options.CacheDir.
func New(opts Options) (*Server, error) {
	sched, err := NewScheduler(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	return s, nil
}

// Scheduler exposes the underlying scheduler (tests, embedding).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Close shuts the scheduler down.
func (s *Server) Close() { s.sched.Close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.sched.met.httpRequests.Inc()
	s.mux.ServeHTTP(w, r)
}

// jobView is the job-status JSON document. Result is raw bytes from the
// executor/cache, embedded verbatim — the field is byte-identical
// across a fresh run and a cache hit of the same spec.
type jobView struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`

	// CoalescedWith names the in-flight primary job this submission was
	// folded into (identical spec hash); empty for jobs that executed
	// themselves.
	CoalescedWith string `json:"coalesced_with,omitempty"`

	SpecSHA256 string    `json:"spec_sha256"`
	Spec       JobSpec   `json:"spec"`
	Error      string    `json:"error,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	// Zero StartedAt/FinishedAt are omitted via pointer + omitempty
	// rather than the Go 1.24-only `omitzero` option, so the wire format
	// is identical across every toolchain in the CI matrix.
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	ElapsedMS  int64           `json:"elapsed_ms,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	ResultSHA  string          `json:"result_sha256,omitempty"`

	// Trace flight-data (fleet jobs submitted with trace:true). The
	// trace itself is served by GET /v1/jobs/{id}/trace.
	TraceSessions int    `json:"trace_sessions,omitempty"`
	TraceEvents   int    `json:"trace_events,omitempty"`
	TraceDropped  uint64 `json:"trace_dropped,omitempty"`
}

// view snapshots a job. withResult=false gives the list summary.
func view(j *Job, withResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:            j.ID,
		State:         j.state,
		Cached:        j.cached,
		CoalescedWith: j.coalesced,
		SpecSHA256:    j.Hash,
		Spec:          j.Spec,
		Error:         j.errMsg,
		CreatedAt:     j.created,
	}
	if !j.started.IsZero() {
		started := j.started
		v.StartedAt = &started
	}
	if !j.finished.IsZero() {
		finished := j.finished
		v.FinishedAt = &finished
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		v.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	}
	if j.result != nil {
		v.ResultSHA = j.resultSHA
		if withResult {
			v.Result = j.result
		}
	}
	if j.trace != nil {
		v.TraceSessions = j.trace.Sessions
		v.TraceEvents = j.trace.Events
		v.TraceDropped = j.trace.Dropped
	}
	return v
}

// wantWait interprets the wait query parameter: absent, "0" and
// "false" mean fire-and-forget; anything else blocks.
func wantWait(v string) bool {
	return v != "" && v != "0" && v != "false"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Stable machine-readable error codes of the v1 envelope. Every
// non-2xx response carries exactly one of them; clients branch on the
// code, never on the human-readable message.
const (
	// ErrCodeInvalidSpec rejects a malformed or out-of-bounds job spec
	// (400).
	ErrCodeInvalidSpec = "invalid_spec"

	// ErrCodeInvalidArgument rejects a malformed query parameter —
	// bad cursor, unknown state filter, out-of-range limit (400).
	ErrCodeInvalidArgument = "invalid_argument"

	// ErrCodeNotFound is an unknown job ID or missing sub-resource
	// (404).
	ErrCodeNotFound = "not_found"

	// ErrCodeJobCanceled marks a sub-resource unavailable because the
	// job was canceled before producing it (404).
	ErrCodeJobCanceled = "job_canceled"

	// ErrCodeAdmissionDenied refuses a venue job whose per-bay player
	// count exceeds the TDMA admission capacity under admission=reject
	// (409) — resubmit with fewer players per bay, a roomier airtime
	// policy, or admission=queue.
	ErrCodeAdmissionDenied = "admission_denied"

	// ErrCodeQueueFull is backpressure: the job queue is at capacity;
	// retry after the Retry-After delay (429).
	ErrCodeQueueFull = "queue_full"

	// ErrCodeShuttingDown rejects work during daemon shutdown (503).
	ErrCodeShuttingDown = "shutting_down"
)

// APIError is the one JSON shape of every non-2xx response:
//
//	{"error": {"code": "...", "message": "...", "detail": "..."}}
//
// Code is stable and machine-readable; Message is a short human
// phrase; Detail carries request-specific context and may be empty.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

type apiErrorEnvelope struct {
	Error APIError `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, message, detail string) {
	writeJSON(w, status, apiErrorEnvelope{Error: APIError{Code: code, Message: message, Detail: detail}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sched.met.reg.WritePrometheus(w)
}

// handleSubmit accepts a JobSpec. The response carries an X-Movr-Cache
// header ("hit", "coalesced" or "miss"). Without ?wait the answer is
// 202 Accepted with the queued job (or 200 with the finished job on a
// cache hit); with ?wait=1 the handler blocks until the job is terminal
// and always answers 200 — unless the client goes away first.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidSpec, "malformed job spec", err.Error())
		return
	}
	job, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, ErrCodeQueueFull, "job queue full", "retry after the Retry-After delay")
		return
	case errors.Is(err, ErrAdmissionDenied):
		writeError(w, http.StatusConflict, ErrCodeAdmissionDenied, "admission denied", err.Error())
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, ErrCodeShuttingDown, "server shutting down", "")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, ErrCodeInvalidSpec, "invalid job spec", err.Error())
		return
	}

	_, cached := job.Result()
	cacheHeader := "miss"
	switch {
	case cached:
		cacheHeader = "hit"
	case job.Coalesced() != "":
		cacheHeader = "coalesced"
	}
	w.Header().Set("X-Movr-Cache", cacheHeader)

	if wantWait(r.URL.Query().Get("wait")) {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			// Client gone; the job keeps running (its result is still
			// cacheable for the next submission).
			return
		}
		writeJSON(w, http.StatusOK, view(job, true))
		return
	}
	status := http.StatusAccepted
	if job.State().Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, view(job, true))
}

// List defaults and bounds.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
	listCursorPrefix = "jobs.v1."
)

// encodeListCursor builds the opaque pagination cursor: resume strictly
// after the job with this numeric ID. Opaque (base64) so clients cannot
// grow a dependency on its contents.
func encodeListCursor(lastID int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(fmt.Sprintf("%s%d", listCursorPrefix, lastID)))
}

func decodeListCursor(cursor string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return 0, fmt.Errorf("not a cursor from this API")
	}
	rest, ok := strings.CutPrefix(string(raw), listCursorPrefix)
	if !ok {
		return 0, fmt.Errorf("not a cursor from this API")
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 {
		return 0, fmt.Errorf("not a cursor from this API")
	}
	return id, nil
}

// jobNumericID extracts N from "job-N" (0 if malformed — sorts first).
func jobNumericID(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// handleList serves GET /v1/jobs?state=&scenario=&limit=&cursor=: the
// retained jobs in deterministic creation order (ascending job ID),
// optionally filtered by lifecycle state and scenario label, paginated
// by an opaque cursor. The page carries next_cursor while more filtered
// jobs remain.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()

	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxListLimit {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument,
				"invalid limit", fmt.Sprintf("limit must be an integer in [1,%d], got %q", maxListLimit, v))
			return
		}
		limit = n
	}
	stateFilter := q.Get("state")
	switch State(stateFilter) {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument,
			"invalid state filter", fmt.Sprintf("unknown state %q (queued|running|done|failed|canceled)", stateFilter))
		return
	}
	scenarioFilter := q.Get("scenario")
	after := 0
	if v := q.Get("cursor"); v != "" {
		id, err := decodeListCursor(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "invalid cursor", err.Error())
			return
		}
		after = id
	}

	views := make([]jobView, 0, limit)
	nextCursor := ""
	for _, j := range s.sched.Jobs() { // creation order = ascending ID
		if jobNumericID(j.ID) <= after {
			continue
		}
		v := view(j, false)
		if stateFilter != "" && v.State != State(stateFilter) {
			continue
		}
		if scenarioFilter != "" && scenarioLabel(v.Spec) != scenarioFilter {
			continue
		}
		if len(views) == limit {
			// One filtered job beyond the page ⇒ there is a next page.
			nextCursor = encodeListCursor(jobNumericID(views[len(views)-1].ID))
			break
		}
		views = append(views, v)
	}
	resp := map[string]any{"jobs": views}
	if nextCursor != "" {
		resp["next_cursor"] = nextCursor
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown job", fmt.Sprintf("no job %q among the retained records", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, view(j, true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.sched.Cancel(j.ID)
	writeJSON(w, http.StatusOK, view(j, false))
}

// handleTrace serves a completed job's recorded event trace as Chrome
// trace-event JSON (Perfetto-loadable). Jobs not submitted with the
// fleet trace flag — or not yet done — have no trace and answer 404
// with a hint.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	tr := j.Trace()
	if tr == nil {
		code := ErrCodeNotFound
		if j.State() == StateCanceled {
			code = ErrCodeJobCanceled
		}
		writeError(w, http.StatusNotFound, code, "no trace for this job",
			fmt.Sprintf("job %s has no trace (submit a fleet spec with trace:true and wait for it to finish)", j.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(tr.Chrome)
}

// handleEvents streams the job's progress as server-sent events: one
// `data:` line per Event, ending after the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	seq := 0
	for {
		evs, terminal, updated := j.EventsSince(seq)
		for _, ev := range evs {
			raw, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", raw)
			seq = ev.Seq
		}
		if canFlush {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}
