package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// store is the durable tier of the result cache: an append-only log of
// (spec hash → result bytes) records under the daemon's cache
// directory. Each Put appends one fsync'd record, so a completed job's
// result survives a crash the instant Put returns; a restarted daemon
// serves it from disk instead of re-burning the compute.
//
// On-disk layout (<dir>/results.log), one record per entry:
//
//	uint32 keyLen | uint32 valLen | key | val | uint32 crc32(key‖val)
//
// (little-endian; IEEE CRC). The log is append-only during operation.
// Open rebuilds the index by scanning the log, keeps the last record
// per key, truncates any torn tail (a crash mid-append leaves a short
// or CRC-failing final record — dropped, never propagated), and
// compacts: live records are rewritten in sorted-key order to a temp
// file that atomically replaces the log, so dead duplicates never
// accumulate across restarts.
type store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]storePos // value location in f
	size  int64               // append offset
}

type storePos struct {
	off int64 // offset of the value bytes
	len int
}

const (
	storeLogName = "results.log"
	storeHdrLen  = 8 // two uint32 lengths
	storeCRCLen  = 4

	// storeMaxRecord bounds a single record's key+value size; a scanned
	// length beyond it means a corrupt header, handled like a torn tail.
	storeMaxRecord = 1 << 30
)

// openStore opens (creating if needed) the durable result store in dir.
func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	path := filepath.Join(dir, storeLogName)
	entries, err := scanStoreLog(path)
	if err != nil {
		return nil, err
	}
	if err := compactStoreLog(path, entries); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s := &store{f: f, path: path, index: make(map[string]storePos, len(entries))}
	// The compacted layout is deterministic, so the index can be rebuilt
	// arithmetically — but re-scanning the file we just wrote verifies
	// the bytes that will actually be served.
	if err := s.reindex(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scanStoreLog reads every valid record of the log (last write per key
// wins) and stops at the first torn or corrupt record, whose offset is
// where a crash interrupted an append — everything before it is intact.
func scanStoreLog(path string) (map[string][]byte, error) {
	entries := make(map[string][]byte)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return entries, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read log: %w", err)
	}
	off := 0
	for off+storeHdrLen <= len(raw) {
		keyLen := int(binary.LittleEndian.Uint32(raw[off:]))
		valLen := int(binary.LittleEndian.Uint32(raw[off+4:]))
		recEnd := off + storeHdrLen + keyLen + valLen + storeCRCLen
		if keyLen > storeMaxRecord || valLen > storeMaxRecord || recEnd > len(raw) {
			break // torn tail
		}
		body := raw[off+storeHdrLen : recEnd-storeCRCLen]
		wantCRC := binary.LittleEndian.Uint32(raw[recEnd-storeCRCLen:])
		if crc32.ChecksumIEEE(body) != wantCRC {
			break // corrupt tail
		}
		key := string(body[:keyLen])
		entries[key] = append([]byte(nil), body[keyLen:]...)
		off = recEnd
	}
	return entries, nil
}

// compactStoreLog rewrites the live entries (sorted by key, so the
// compacted file is deterministic) to a temp file and atomically
// renames it over the log.
func compactStoreLog(path string, entries map[string][]byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), storeLogName+".compact-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := tmp.Write(encodeStoreRecord(k, entries[k])); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best-effort: the data file itself is already synced
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

func encodeStoreRecord(key string, val []byte) []byte {
	rec := make([]byte, storeHdrLen+len(key)+len(val)+storeCRCLen)
	binary.LittleEndian.PutUint32(rec, uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	copy(rec[storeHdrLen:], key)
	copy(rec[storeHdrLen+len(key):], val)
	body := rec[storeHdrLen : storeHdrLen+len(key)+len(val)]
	binary.LittleEndian.PutUint32(rec[len(rec)-storeCRCLen:], crc32.ChecksumIEEE(body))
	return rec
}

// reindex rebuilds the in-memory index from the (just-compacted) log.
func (s *store) reindex() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat: %w", err)
	}
	s.size = info.Size()
	off := int64(0)
	hdr := make([]byte, storeHdrLen)
	for off+storeHdrLen <= s.size {
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("store: reindex: %w", err)
		}
		keyLen := int64(binary.LittleEndian.Uint32(hdr))
		valLen := int64(binary.LittleEndian.Uint32(hdr[4:]))
		recEnd := off + storeHdrLen + keyLen + valLen + storeCRCLen
		if recEnd > s.size {
			return fmt.Errorf("store: reindex: torn record at %d after compaction", off)
		}
		key := make([]byte, keyLen)
		if _, err := s.f.ReadAt(key, off+storeHdrLen); err != nil {
			return fmt.Errorf("store: reindex: %w", err)
		}
		s.index[string(key)] = storePos{off: off + storeHdrLen + keyLen, len: int(valLen)}
		off = recEnd
	}
	return nil
}

// Get reads the stored result bytes for key from disk.
func (s *store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	pos, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	val := make([]byte, pos.len)
	if _, err := s.f.ReadAt(val, pos.off); err != nil && err != io.EOF {
		return nil, false
	}
	return val, true
}

// Put appends one fsync'd record. Results are deterministic functions
// of the key (the canonical spec hash), so an already-stored key is a
// no-op — the log never grows on repeat submissions.
func (s *store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return nil
	}
	rec := encodeStoreRecord(key, val)
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.index[key] = storePos{off: s.size + storeHdrLen + int64(len(key)), len: len(val)}
	s.size += int64(len(rec))
	return nil
}

// Len reports the stored entry count.
func (s *store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close closes the log file.
func (s *store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
