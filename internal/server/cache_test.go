package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", []byte("alpha2"))
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("alpha2")) {
		t.Fatalf("overwrite lost: %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0; k1 is now least recent
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}
