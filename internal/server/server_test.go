package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string, wait bool) (*http.Response, jobView) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	}
	return resp, v
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestResubmitServedFromCacheByteIdentical is the PR's acceptance
// criterion: submitting the same job spec twice returns byte-identical
// result JSON, the second served from the cache, and /metrics reports
// the hit.
func TestResubmitServedFromCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := `{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"seed":3,"duration_ms":150}}`

	resp1, v1 := postJob(t, ts, body, true)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d", resp1.StatusCode)
	}
	if got := resp1.Header.Get("X-Movr-Cache"); got != "miss" {
		t.Errorf("first submit X-Movr-Cache = %q, want miss", got)
	}
	if v1.State != StateDone || v1.Cached || len(v1.Result) == 0 {
		t.Fatalf("first submit: state=%s cached=%v result=%d bytes, error=%q",
			v1.State, v1.Cached, len(v1.Result), v1.Error)
	}

	// A logically identical spec spelled differently (explicit defaults)
	// must still hit.
	body2 := `{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"seed":3,"duration_ms":150,"reeval_ms":50,"variants":["tracking"]}}`
	resp2, v2 := postJob(t, ts, body2, true)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Movr-Cache"); got != "hit" {
		t.Errorf("second submit X-Movr-Cache = %q, want hit", got)
	}
	if !v2.Cached || v2.State != StateDone {
		t.Errorf("second submit: cached=%v state=%s", v2.Cached, v2.State)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Error("resubmitted result JSON is not byte-identical")
	}
	if v1.ResultSHA == "" || v1.ResultSHA != v2.ResultSHA {
		t.Errorf("result hashes differ: %q vs %q", v1.ResultSHA, v2.ResultSHA)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mtext := mb.String()
	for _, want := range []string{
		"movrd_cache_hits_total 1",
		"movrd_cache_misses_total 1",
		"movrd_cache_hit_ratio 0.5",
		"movrd_jobs_done_total 2",
		"movrd_jobs_submitted_total 2",
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(mtext, "movrd_job_latency_seconds_count 1") {
		t.Error("/metrics should report exactly one executed-job latency sample (the hit must not add one)")
	}
}

func TestSubmitAsyncThenPoll(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, v := postJob(t, ts, `{"kind":"fleet","fleet":{"scenario":"arcade","sessions":2,"seed":1,"duration_ms":100}}`, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		gresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var gv jobView
		json.NewDecoder(gresp.Body).Decode(&gv)
		gresp.Body.Close()
		if gv.State.Terminal() {
			if gv.State != StateDone || len(gv.Result) == 0 {
				t.Fatalf("job ended %s: %s", gv.State, gv.Error)
			}
			var payload struct {
				Kind   string `json:"kind"`
				Render string `json:"render"`
			}
			if err := json.Unmarshal(gv.Result, &payload); err != nil {
				t.Fatalf("result is not JSON: %v", err)
			}
			if payload.Kind != "fleet" || !strings.Contains(payload.Render, "sessions") {
				t.Errorf("unexpected payload kind=%q render=%q...", payload.Kind, payload.Render[:min(60, len(payload.Render))])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The list endpoint knows the job.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}
	if len(list.Jobs[0].Result) != 0 {
		t.Error("list summaries should not embed result bytes")
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"bad json":      `{"kind":`,
		"unknown field": `{"kind":"fleet","fleet":{"sessons":3}}`,
		"unknown kind":  `{"kind":"warp"}`,
		"bad scenario":  `{"kind":"fleet","fleet":{"scenario":"stadium"}}`,
	} {
		resp, _ := postJob(t, ts, body, false)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestSubmitBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 1})
	fn, release := blockingExec()
	defer release()
	s.Scheduler().execFn = fn

	_, v1 := postJob(t, ts, `{"kind":"fleet","fleet":{"seed":1}}`, false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := s.Scheduler().Get(v1.ID)
		if ok && j.State() == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := postJob(t, ts, `{"kind":"fleet","fleet":{"seed":2}}`, false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d, want 202 (queued)", resp.StatusCode)
	}
	resp3, _ := postJob(t, ts, `{"kind":"fleet","fleet":{"seed":3}}`, false)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestCancelEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	fn, release := blockingExec()
	defer release()
	s.Scheduler().execFn = fn

	_, v := postJob(t, ts, `{"kind":"fleet","fleet":{"seed":1}}`, false)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	j, _ := s.Scheduler().Get(v.ID)
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not terminate the job")
	}
	if st := j.State(); st != StateCanceled {
		t.Errorf("state after cancel = %s", st)
	}
}

func TestWantWait(t *testing.T) {
	for v, want := range map[string]bool{
		"": false, "0": false, "false": false,
		"1": true, "true": true, "yes": true,
	} {
		if got := wantWait(v); got != want {
			t.Errorf("wantWait(%q) = %v, want %v", v, got, want)
		}
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-404")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	_, v := postJob(t, ts, `{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"seed":9,"duration_ms":100}}`, false)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// The stream ends at the terminal event, so reading to EOF is
	// bounded.
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 { // queued, running, 2 sessions, done
		t.Fatalf("got %d events: %+v", len(events), events)
	}
	if events[0].Type != "queued" {
		t.Errorf("first event %q", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != "done" {
		t.Errorf("last event %q, want done", last.Type)
	}
	sessions := 0
	for _, ev := range events {
		if ev.Type == "session" {
			sessions++
		}
	}
	if sessions != 2 {
		t.Errorf("%d session events, want 2", sessions)
	}
}

func TestMetricsExposesPoolGauges(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	text := b.String()
	for _, want := range []string{
		"movrd_pool_capacity 3",
		"movrd_pool_in_use 0",
		"movrd_jobs_running 0",
		"# TYPE movrd_job_latency_seconds histogram",
		"movrd_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSubmitCoexJob drives the new coex scenario through the whole
// daemon path: spec normalization (headsets_per_room), scheduling,
// fleet execution with the shared-medium sessions, and result
// rendering.
func TestSubmitCoexJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, v := postJob(t, ts,
		`{"kind":"fleet","fleet":{"scenario":"coex","sessions":2,"seed":3,"duration_ms":300,"headsets_per_room":2}}`,
		true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if v.State != "done" {
		t.Fatalf("job state = %q, want done", v.State)
	}
	if !strings.Contains(string(v.Result), "shared medium") {
		t.Error("result render is missing the coex banner")
	}
	// The field is rejected outside the coex scenario.
	resp, _ = postJob(t, ts,
		`{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"headsets_per_room":2}}`, true)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-coex headsets_per_room accepted with status %d", resp.StatusCode)
	}
}

// TestTraceEndpoint covers the flight-data path end to end: a fleet job
// submitted with trace:true serves a Perfetto-loadable Chrome trace at
// /v1/jobs/{id}/trace, reports event counts in its job view, and never
// touches the result cache; jobs without the flag answer 404.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := `{"kind":"fleet","fleet":{"scenario":"coex","sessions":2,"seed":7,"duration_ms":200,"trace":true}}`

	resp1, v1 := postJob(t, ts, body, true)
	if resp1.StatusCode != http.StatusOK || v1.State != StateDone {
		t.Fatalf("traced submit: status %d state %s error %q", resp1.StatusCode, v1.State, v1.Error)
	}
	if v1.TraceSessions == 0 || v1.TraceEvents == 0 {
		t.Errorf("job view trace counts = %d sessions / %d events, want nonzero",
			v1.TraceSessions, v1.TraceEvents)
	}

	tresp, err := http.Get(ts.URL + "/v1/jobs/" + v1.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d", tresp.StatusCode)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace body is not Chrome trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace document has no traceEvents")
	}

	// Traced jobs bypass the cache in both directions: resubmitting the
	// same traced spec re-runs (miss), and the run is never Put — so a
	// later identical submission also misses.
	resp2, v2 := postJob(t, ts, body, true)
	if got := resp2.Header.Get("X-Movr-Cache"); got != "miss" {
		t.Errorf("traced resubmit X-Movr-Cache = %q, want miss", got)
	}
	if v2.Cached {
		t.Error("traced resubmit must not be served from cache")
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Error("traced re-run result JSON is not byte-identical (determinism)")
	}

	// A job without the flag has no trace.
	_, v3 := postJob(t, ts, `{"kind":"fleet","fleet":{"scenario":"home","sessions":1,"seed":3,"duration_ms":100}}`, true)
	nresp, err := http.Get(ts.URL + "/v1/jobs/" + v3.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace endpoint status %d, want 404", nresp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mtext := mb.String()
	for _, want := range []string{
		"movrd_traced_jobs_total 2",
		`movrd_jobs_by_scenario_total{scenario="coex"} 2`,
		`movrd_jobs_by_scenario_total{scenario="home"} 1`,
		"movrd_job_queue_wait_seconds_count 3",
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
