package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestVenueSpecNormalization pins the venue scenario's canonical form:
// every venue knob defaults explicitly (bays 4, channels 3, greedy
// coloring, queue admission), sessions size to the whole bay grid, the
// aggregation defaults to streaming, and normalization is idempotent —
// re-normalizing a normalized spec changes nothing, so a spec and its
// canonical spelling share one cache entry.
func TestVenueSpecNormalization(t *testing.T) {
	norm, err := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "venue"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	f := norm.Fleet
	if f.Bays != 4 || f.Channels != 3 || f.Assign != "color" || f.Admission != "queue" {
		t.Errorf("venue defaults not filled: bays=%d channels=%d assign=%q admission=%q",
			f.Bays, f.Channels, f.Assign, f.Admission)
	}
	if f.Sessions != 16 {
		t.Errorf("sessions = %d, want the full 4-bay × 4-player grid", f.Sessions)
	}
	if f.Agg != "stream" {
		t.Errorf("agg = %q, want the streaming default", f.Agg)
	}

	again, err := norm.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := again.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("venue normalization is not idempotent")
	}

	// Explicit bays win the session sizing; explicit exact agg survives
	// normalization (the venue default is stream, so the two must hash
	// apart).
	exact, err := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{
		Scenario: "venue", Bays: 16, HeadsetsPerRoom: 4, Agg: "exact",
	}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Fleet.Sessions != 64 {
		t.Errorf("sessions = %d, want 16 bays × 4 players", exact.Fleet.Sessions)
	}
	if exact.Fleet.Agg != "exact" {
		t.Errorf("agg = %q, venue must keep an explicit exact", exact.Fleet.Agg)
	}
	he, err := exact.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if he == h1 {
		t.Error("venue exact and stream aggregation must hash apart")
	}
}

// TestVenueSpecValidation pins the venue field bounds and the rule that
// venue knobs are meaningless — and rejected — on every other scenario.
func TestVenueSpecValidation(t *testing.T) {
	bad := []struct {
		name string
		spec FleetJobSpec
		want string
	}{
		{"too many bays", FleetJobSpec{Scenario: "venue", Bays: 65}, "exceeds"},
		{"negative bays", FleetJobSpec{Scenario: "venue", Bays: -1}, "must be positive"},
		{"too many channels", FleetJobSpec{Scenario: "venue", Channels: 5}, "exceeds"},
		{"unknown assign", FleetJobSpec{Scenario: "venue", Assign: "roulette"}, "assignment mode"},
		{"unknown admission", FleetJobSpec{Scenario: "venue", Admission: "waitlist"}, "admission"},
		{"bays on coex", FleetJobSpec{Scenario: "coex", Bays: 2}, "only meaningful"},
		{"admission on mixed", FleetJobSpec{Scenario: "mixed", Admission: "queue"}, "only meaningful"},
		{"interference_off on home", FleetJobSpec{Scenario: "home", InterferenceOff: true}, "only meaningful"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec
			_, err := JobSpec{Kind: "fleet", Fleet: &spec}.Normalize()
			if err == nil {
				t.Fatalf("Normalize accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestVenueFieldHashes pins cache correctness for the venue knobs:
// specs differing in any venue field hash apart, while implicit and
// explicit defaults share one hash.
func TestVenueFieldHashes(t *testing.T) {
	hash := func(f FleetJobSpec) string {
		t.Helper()
		h, err := JobSpec{Kind: "fleet", Fleet: &f}.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := hash(FleetJobSpec{Scenario: "venue", Seed: 7})
	variants := map[string]string{
		"bays":             hash(FleetJobSpec{Scenario: "venue", Seed: 7, Bays: 9}),
		"channels":         hash(FleetJobSpec{Scenario: "venue", Seed: 7, Channels: 2}),
		"assign":           hash(FleetJobSpec{Scenario: "venue", Seed: 7, Assign: "fixed"}),
		"interference_off": hash(FleetJobSpec{Scenario: "venue", Seed: 7, InterferenceOff: true}),
		"admission":        hash(FleetJobSpec{Scenario: "venue", Seed: 7, Admission: "reject"}),
	}
	seen := map[string]string{base: "base"}
	for field, h := range variants {
		if prev, dup := seen[h]; dup {
			t.Errorf("venue specs differing in %s and %s hash identically", field, prev)
		}
		seen[h] = field
	}
	explicit := hash(FleetJobSpec{
		Scenario: "venue", Seed: 7,
		Bays: 4, Channels: 3, Assign: "color", Admission: "queue",
		Sessions: 16, Agg: "stream",
	})
	if explicit != base {
		t.Error("explicitly spelled venue defaults should hash like the implicit spec")
	}
}

// TestVenueAdmissionEndpoint is the movrd admission-control contract: a
// venue job whose per-bay player count exceeds the policy's schedulable
// capacity is rejected at submit time with the typed admission_denied
// envelope (409) when admission is "reject", admitted with the overflow
// queued when admission is "queue" (the default), and both paths are
// visible in /metrics.
func TestVenueAdmissionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// EDF fits 4 players of 11.1 ms frame slots into a 50 ms window: 6
	// players per bay overflows by 2, across 2 bays.
	over := `{"kind":"fleet","fleet":{"scenario":"venue","bays":2,"headsets_per_room":6,"coex_policy":"edf","duration_ms":150,"admission":"reject"}}`
	resp := postForError(t, ts, over)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("over-capacity reject submit: status %d, want 409", resp.StatusCode)
	}
	e := fetchEnvelope(t, resp)
	if e.Code != ErrCodeAdmissionDenied {
		t.Errorf("code %q, want %q", e.Code, ErrCodeAdmissionDenied)
	}
	if !strings.Contains(e.Message+e.Detail, "capacity") {
		t.Errorf("envelope should name the capacity: %+v", e)
	}

	// The same bay under the queue default is admitted: the 4 schedulable
	// players run, the 2 overflow players are queued per bay.
	queued := `{"kind":"fleet","fleet":{"scenario":"venue","bays":2,"headsets_per_room":6,"coex_policy":"edf","duration_ms":150}}`
	qresp, view := postJob(t, ts, queued, true)
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("queue submit: status %d", qresp.StatusCode)
	}
	if view.State != StateDone {
		t.Fatalf("queue submit: state %s, error %q", view.State, view.Error)
	}

	// A within-capacity reject-mode venue is admitted outright.
	fits := `{"kind":"fleet","fleet":{"scenario":"venue","bays":1,"headsets_per_room":2,"duration_ms":150,"admission":"reject"}}`
	fresp, fview := postJob(t, ts, fits, true)
	if fresp.StatusCode != http.StatusOK || fview.State != StateDone {
		t.Fatalf("within-capacity reject submit: status %d state %s", fresp.StatusCode, fview.State)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"movrd_admission_rejected_total 4",
		"movrd_admission_queued_total 4",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "movrd_admission_admitted_total") {
		t.Error("/metrics missing the admitted counter")
	}
}
