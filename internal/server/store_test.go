package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/fleet/pool"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.Get("missing"); ok {
		t.Fatal("empty store claims an entry")
	}
	want := map[string][]byte{
		"aaaa": []byte(`{"x":1}`),
		"bbbb": []byte(`{"y":[2,3]}`),
		"cccc": {},
	}
	for k, v := range want {
		if err := st.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Re-putting an existing key must not grow the log: results are
	// deterministic functions of the hash.
	size := st.size
	if err := st.Put("aaaa", want["aaaa"]); err != nil {
		t.Fatal(err)
	}
	if st.size != size {
		t.Fatal("re-put of an existing key grew the log")
	}
	for k, v := range want {
		got, ok := st.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	if st.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(want))
	}

	// Reopen (compacts): every entry survives byte for byte.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for k, v := range want {
		got, ok := st2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("after reopen: Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
}

// TestStoreTornTailTruncated pins crash tolerance: a record half-written
// at crash time (torn tail) is dropped on open, and every record before
// it survives.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("key1", []byte("value-one")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("key2", []byte("value-two")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, storeLogName)
	for name, taint := range map[string]func([]byte) []byte{
		// A crash mid-append leaves a prefix of the record.
		"short-record": func(raw []byte) []byte {
			return append(raw, encodeStoreRecord("key3", []byte("value-three"))[:7]...)
		},
		// Bit rot in the tail record fails its CRC.
		"corrupt-crc": func(raw []byte) []byte {
			rec := encodeStoreRecord("key3", []byte("value-three"))
			rec[len(rec)-1] ^= 0xFF
			return append(raw, rec...)
		},
		// Garbage lengths must not drive a huge allocation.
		"garbage-header": func(raw []byte) []byte {
			return append(raw, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3)
		},
	} {
		intact, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, taint(intact), 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := openStore(dir)
		if err != nil {
			t.Fatalf("%s: open after taint: %v", name, err)
		}
		for k, v := range map[string]string{"key1": "value-one", "key2": "value-two"} {
			got, ok := st2.Get(k)
			if !ok || string(got) != v {
				t.Fatalf("%s: lost intact entry %q (got %q, %v)", name, k, got, ok)
			}
		}
		if _, ok := st2.Get("key3"); ok {
			t.Fatalf("%s: torn record served", name)
		}
		if st2.Len() != 2 {
			t.Fatalf("%s: Len = %d, want 2", name, st2.Len())
		}
		st2.Close()
		// Restore the intact log for the next taint.
		if err := os.WriteFile(path, intact, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreCompaction pins that restart compaction drops dead records:
// many overwrites of one key collapse to a single live record on open.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, storeLogName)
	// Build a log with heavy duplication by writing records directly
	// (the store itself refuses duplicate appends).
	var raw []byte
	for i := 0; i < 50; i++ {
		raw = append(raw, encodeStoreRecord("dup", []byte(fmt.Sprintf("v%d", i)))...)
	}
	raw = append(raw, encodeStoreRecord("other", []byte("keep"))...)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got, ok := st.Get("dup"); !ok || string(got) != "v49" {
		t.Fatalf("last write should win: got %q, %v", got, ok)
	}
	if got, ok := st.Get("other"); !ok || string(got) != "keep" {
		t.Fatalf("lost entry: got %q, %v", got, ok)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(encodeStoreRecord("dup", []byte("v49"))) + len(encodeStoreRecord("other", []byte("keep"))))
	if info.Size() != want {
		t.Fatalf("compacted log is %d bytes, want %d (dead records kept?)", info.Size(), want)
	}
}

// TestCrashRestartServesPersistedResult is the PR's durability
// acceptance test: a daemon that dies after completing a job serves the
// persisted result on reboot — byte-identical, marked cached, without
// re-executing the spec.
func TestCrashRestartServesPersistedResult(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 2, Seed: 11, DurationMS: 100}}

	s1 := mustScheduler(t, Options{Workers: 2, CacheDir: dir})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	if j1.State() != StateDone {
		t.Fatalf("job state %s: %s", j1.State(), j1.Err())
	}
	want, _ := j1.Result()
	// Crash: the scheduler is abandoned, never Closed. Put fsyncs per
	// append, so the result must already be durable.

	s2 := mustScheduler(t, Options{Workers: 2, CacheDir: dir})
	defer s2.Close()
	// Any execution attempt on the restarted daemon is a test failure:
	// the result must come from the durable store.
	s2.execFn = func(ctx context.Context, spec JobSpec, runner *pool.Runner, onSession func(int, int, fleet.SessionOutcome)) ([]byte, *TraceArtifact, error) {
		return nil, nil, fmt.Errorf("re-executed a persisted spec")
	}
	j2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j2)
	res, cached := j2.Result()
	if j2.State() != StateDone || !cached {
		t.Fatalf("restarted daemon did not serve from the durable store (state %s, cached %v, err %q)",
			j2.State(), cached, j2.Err())
	}
	if !bytes.Equal(res, want) {
		t.Fatal("persisted result differs from the original run")
	}
	if s2.met.storeHits.Value() != 1 {
		t.Fatalf("store hits = %d, want 1", s2.met.storeHits.Value())
	}

	s1.Close()
}
