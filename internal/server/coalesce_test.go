package server

import (
	"bytes"
	"testing"
	"time"
)

// TestCoalesceIdenticalInflight pins single-flight semantics: a spec
// submitted while an identical spec is executing never runs twice — the
// second job follows the first and finishes with the same bytes.
func TestCoalesceIdenticalInflight(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 4})
	defer s.Close()
	fn, release := blockingExec()
	s.execFn = fn

	spec := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 2, Seed: 3, DurationMS: 100}}
	primary, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, primary, StateRunning)

	follower, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if follower.ID == primary.ID {
		t.Fatal("coalesced submission reused the primary's job ID")
	}
	if follower.Coalesced() != primary.ID {
		t.Fatalf("follower coalesced with %q, want %q", follower.Coalesced(), primary.ID)
	}
	// A third identical submit piles onto the same primary.
	third, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if third.Coalesced() != primary.ID {
		t.Fatalf("third submission coalesced with %q, want %q", third.Coalesced(), primary.ID)
	}
	// Followers hold no queue slot: the depth-4 queue still takes four
	// distinct jobs with the primary running and two followers attached.
	for seed := int64(100); seed < 104; seed++ {
		other := spec
		f := *spec.Fleet
		f.Seed = seed
		other.Fleet = &f
		if _, err := s.Submit(other); err != nil {
			t.Fatalf("seed %d rejected — followers consumed queue slots: %v", seed, err)
		}
	}

	release()
	for _, j := range []*Job{primary, follower, third} {
		waitTerminal(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %s state %s: %s", j.ID, j.State(), j.Err())
		}
	}
	pr, pc := primary.Result()
	fr, fc := follower.Result()
	if pc {
		t.Fatal("primary marked cached")
	}
	if !fc {
		t.Fatal("follower not marked cached")
	}
	if !bytes.Equal(pr, fr) {
		t.Fatal("follower result differs from primary")
	}
	if got := s.met.jobsCoalesced.Value(); got != 2 {
		t.Fatalf("jobsCoalesced = %d, want 2", got)
	}
	// The follower's event log records the merge and the terminal state.
	evs, _, _ := follower.EventsSince(0)
	var sawCoalesced, sawDone bool
	for _, e := range evs {
		switch e.Type {
		case "coalesced":
			sawCoalesced = e.Primary == primary.ID
		case "done":
			sawDone = true
		}
	}
	if !sawCoalesced || !sawDone {
		t.Fatalf("follower events missing coalesced/done: %+v", evs)
	}
}

// TestCoalesceFollowerCancel pins independence: canceling a follower
// neither cancels nor disturbs the primary.
func TestCoalesceFollowerCancel(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1})
	defer s.Close()
	fn, release := blockingExec()
	s.execFn = fn

	spec := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 2, Seed: 4, DurationMS: 100}}
	primary, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, primary, StateRunning)
	follower, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if follower.Coalesced() != primary.ID {
		t.Fatal("second submit did not coalesce")
	}
	if !s.Cancel(follower.ID) {
		t.Fatal("follower cancel refused")
	}
	waitTerminal(t, follower)
	if follower.State() != StateCanceled {
		t.Fatalf("follower state %s, want canceled", follower.State())
	}
	if primary.State() != StateRunning {
		t.Fatalf("primary state %s after follower cancel, want running", primary.State())
	}
	release()
	waitTerminal(t, primary)
	if primary.State() != StateDone {
		t.Fatalf("primary state %s: %s", primary.State(), primary.Err())
	}
}

// TestCoalescePrimaryCancelPropagates pins the other direction: when
// the primary is canceled its followers cannot produce a result, so
// they terminate canceled too.
func TestCoalescePrimaryCancelPropagates(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1})
	defer s.Close()
	fn, release := blockingExec()
	defer release()
	s.execFn = fn

	spec := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 2, Seed: 5, DurationMS: 100}}
	primary, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, primary, StateRunning)
	follower, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if follower.Coalesced() != primary.ID {
		t.Fatal("second submit did not coalesce")
	}
	if !s.Cancel(primary.ID) {
		t.Fatal("primary cancel refused")
	}
	waitTerminal(t, primary)
	waitTerminal(t, follower)
	if follower.State() != StateCanceled {
		t.Fatalf("follower state %s, want canceled", follower.State())
	}
}

// TestCoalesceClearedAfterCompletion pins the no-stale-merge property:
// once the primary finishes, an identical submit is a cache hit (born
// done), not a follower of a dead job — and never a re-execution.
func TestCoalesceClearedAfterCompletion(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1})
	defer s.Close()
	fn, release := blockingExec()
	s.execFn = fn

	spec := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 2, Seed: 6, DurationMS: 100}}
	primary, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, primary, StateRunning)
	release()
	waitTerminal(t, primary)

	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Coalesced() != "" {
		t.Fatalf("post-completion submit coalesced with %q, want cache hit", again.Coalesced())
	}
	waitTerminal(t, again)
	res, cached := again.Result()
	if again.State() != StateDone || !cached {
		t.Fatalf("resubmit state %s cached %v, want done from cache", again.State(), cached)
	}
	want, _ := primary.Result()
	if !bytes.Equal(res, want) {
		t.Fatal("cached result differs from primary")
	}
}

// TestTracedJobsNeverCoalesce: trace artifacts are per-job (ring-buffer
// recorders attach to one execution), so traced submissions bypass
// single-flight entirely.
func TestTracedJobsNeverCoalesce(t *testing.T) {
	s := mustScheduler(t, Options{Workers: 1, MaxJobs: 1, QueueDepth: 4})
	defer s.Close()
	fn, release := blockingExec()
	s.execFn = fn

	spec := JobSpec{Kind: "fleet", Fleet: &FleetJobSpec{Scenario: "home", Sessions: 2, Seed: 7, DurationMS: 100, Trace: true}}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateRunning)
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Coalesced() != "" {
		t.Fatalf("traced job coalesced with %q", second.Coalesced())
	}
	release()
	waitTerminal(t, first)
	waitTerminal(t, second)
	if got := s.met.jobsCoalesced.Value(); got != 0 {
		t.Fatalf("jobsCoalesced = %d for traced jobs, want 0", got)
	}
}

// waitState polls until the job reaches the given state (tests only).
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", j.ID, want, j.State())
}
