// Package amplifier models the reflector's variable-gain amplifier chain:
// the paper's prototype cascades a Quinstar QLW-2440 LNA, a Hittite
// HMC712LP3C voltage-variable attenuator, and a Hittite HMC-C020 power
// amplifier, driven by an AD7228 DAC and monitored by a TI INA169 current
// sensor (§5).
//
// Three behaviours matter to MoVR's algorithms and are modelled here:
//
//  1. Gain is set digitally in small steps across a wide range.
//  2. The output compresses toward a saturated power P_sat (Rapp model);
//     a saturated amplifier produces "garbage signals".
//  3. Supply current rises gently with output power in normal operation
//     but spikes as the device enters compression — "amplifiers draw
//     significantly higher current as they get close to saturation mode"
//     (§4.2) — which is the only observable MoVR's gain control has.
//
// The amplifier also exposes an on/off port used as the OOK modulator for
// the backscatter alignment protocol (§4.1).
package amplifier

import (
	"fmt"
	"math"

	"github.com/movr-sim/movr/internal/units"
)

// Config describes the amplifier chain.
type Config struct {
	// MinGainDB and MaxGainDB bound the programmable gain.
	MinGainDB, MaxGainDB float64

	// StepDB is the gain resolution of the control DAC.
	StepDB float64

	// PsatDBm is the saturated output power.
	PsatDBm float64

	// RappP is the Rapp model smoothness factor (typically 2-3).
	RappP float64

	// NoiseFigureDB is the chain's noise figure, dominated by the LNA.
	NoiseFigureDB float64

	// QuiescentA is the idle supply current (amperes).
	QuiescentA float64

	// SlopeA is the additional current drawn at full (saturated) output
	// in linear operation.
	SlopeA float64

	// SpikeA is the extra current consumed once the device enters
	// compression — the signature the gain-control algorithm detects.
	SpikeA float64
}

// DefaultConfig returns a chain calibrated to the prototype's parts: up
// to 50 dB of cascade gain in 0.5 dB steps, +20 dBm saturated output,
// 5 dB noise figure.
func DefaultConfig() Config {
	return Config{
		MinGainDB:     0,
		MaxGainDB:     50,
		StepDB:        0.5,
		PsatDBm:       20,
		RappP:         2,
		NoiseFigureDB: 5,
		QuiescentA:    0.35,
		SlopeA:        0.45,
		SpikeA:        0.6,
	}
}

// VGA is a variable-gain amplifier chain with an on/off modulation port
// and a supply-current model.
type VGA struct {
	cfg     Config
	word    int
	enabled bool

	// satMw caches DBmToMilliwatts(PsatDBm), fixed at construction;
	// lazily filled for zero-value literals.
	satMw float64
}

// New validates cfg and returns a VGA set to minimum gain, enabled.
func New(cfg Config) (*VGA, error) {
	if cfg.MaxGainDB < cfg.MinGainDB {
		return nil, fmt.Errorf("amplifier: MaxGainDB %v < MinGainDB %v", cfg.MaxGainDB, cfg.MinGainDB)
	}
	if cfg.StepDB <= 0 {
		return nil, fmt.Errorf("amplifier: StepDB %v must be positive", cfg.StepDB)
	}
	if cfg.RappP <= 0 {
		return nil, fmt.Errorf("amplifier: RappP %v must be positive", cfg.RappP)
	}
	return &VGA{cfg: cfg, enabled: true, satMw: units.DBmToMilliwatts(cfg.PsatDBm)}, nil
}

// Default returns a VGA with DefaultConfig.
func Default() *VGA {
	v, err := New(DefaultConfig())
	if err != nil {
		panic(err) // fixed literal config; cannot fail
	}
	return v
}

// Config returns the amplifier configuration.
func (v *VGA) Config() Config { return v.cfg }

// Words returns the number of valid gain words.
func (v *VGA) Words() int {
	return int((v.cfg.MaxGainDB-v.cfg.MinGainDB)/v.cfg.StepDB) + 1
}

// SetGainWord programs the DAC. Out-of-range words are clamped; the
// applied word is returned.
func (v *VGA) SetGainWord(w int) int {
	if w < 0 {
		w = 0
	}
	if max := v.Words() - 1; w > max {
		w = max
	}
	v.word = w
	return w
}

// GainWord returns the current DAC word.
func (v *VGA) GainWord() int { return v.word }

// GainDB returns the current small-signal gain.
func (v *VGA) GainDB() float64 { return v.cfg.MinGainDB + float64(v.word)*v.cfg.StepDB }

// SetGainDB programs the nearest representable gain and returns it.
func (v *VGA) SetGainDB(g float64) float64 {
	w := int(math.Round((g - v.cfg.MinGainDB) / v.cfg.StepDB))
	v.SetGainWord(w)
	return v.GainDB()
}

// SetEnabled switches the chain on or off; the off state is the "0" of
// the backscatter OOK modulation.
func (v *VGA) SetEnabled(on bool) { v.enabled = on }

// Enabled reports whether the chain is on.
func (v *VGA) Enabled() bool { return v.enabled }

// OutputPowerDBm returns the output power for a given input power,
// applying the Rapp saturation model:
//
//	v_out = g·v_in / (1 + (g·v_in/v_sat)^(2p))^(1/(2p))
//
// A disabled amplifier outputs nothing (−Inf dBm).
func (v *VGA) OutputPowerDBm(inDBm float64) float64 {
	if !v.enabled {
		return math.Inf(-1)
	}
	ideal := inDBm + v.GainDB()
	// Work in normalized voltage: x = v_ideal/v_sat in linear amplitude.
	x := math.Pow(10, (ideal-v.cfg.PsatDBm)/20)
	p2 := 2 * v.cfg.RappP
	out := x / math.Pow(1+math.Pow(x, p2), 1/p2)
	return v.cfg.PsatDBm + 20*math.Log10(out)
}

// CompressionDB returns how far the output is compressed below the ideal
// linear output, in dB (0 = fully linear).
func (v *VGA) CompressionDB(inDBm float64) float64 {
	if !v.enabled {
		return 0
	}
	return inDBm + v.GainDB() - v.OutputPowerDBm(inDBm)
}

// Saturated reports whether the device is meaningfully compressed
// (≥ 1 dB) at the given input power — the paper's "saturation mode" in
// which the output is garbage.
func (v *VGA) Saturated(inDBm float64) bool { return v.CompressionDB(inDBm) >= 1 }

// SupplyCurrentA models the DC current drawn from the supply at the given
// input power. It rises smoothly with output power in linear operation
// and spikes as compression sets in; the spike is what the INA169-based
// sensing in the gain-control algorithm detects.
func (v *VGA) SupplyCurrentA(inDBm float64) float64 {
	if !v.enabled {
		return 0.02 // standby draw
	}
	// The envelope term and the compression term both need the output
	// power; evaluate the (pure) Rapp model once and derive the
	// compression depth from it, exactly as CompressionDB does.
	out := v.OutputPowerDBm(inDBm)
	outLin := units.DBmToMilliwatts(out)
	satLin := v.satMw
	if satLin == 0 { // zero-value literal VGA; New precomputes this
		satLin = units.DBmToMilliwatts(v.cfg.PsatDBm)
		v.satMw = satLin
	}
	frac := outLin / satLin
	if frac > 1 {
		frac = 1
	}
	// Class-AB-like: current grows with the output envelope.
	i := v.cfg.QuiescentA + v.cfg.SlopeA*math.Sqrt(frac)
	// Compression spike: logistic in compression depth, centred at 1 dB.
	c := inDBm + v.GainDB() - out
	i += v.cfg.SpikeA / (1 + math.Exp(-(c-1)/0.15))
	return i
}
