package amplifier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{MinGainDB: 10, MaxGainDB: 0, StepDB: 0.5, RappP: 2},
		{MinGainDB: 0, MaxGainDB: 60, StepDB: 0, RappP: 2},
		{MinGainDB: 0, MaxGainDB: 60, StepDB: 0.5, RappP: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestGainWords(t *testing.T) {
	v := Default()
	if v.Words() != 101 {
		t.Errorf("Words = %d, want 101 (0-50 dB in 0.5 steps)", v.Words())
	}
	if v.GainDB() != 0 {
		t.Errorf("initial gain = %v, want min", v.GainDB())
	}
	v.SetGainWord(20)
	if v.GainDB() != 10 {
		t.Errorf("gain at word 20 = %v, want 10", v.GainDB())
	}
	// Clamping.
	if got := v.SetGainWord(-5); got != 0 {
		t.Errorf("negative word clamped to %d", got)
	}
	if got := v.SetGainWord(1000); got != 100 {
		t.Errorf("oversized word clamped to %d", got)
	}
	// SetGainDB rounds to the nearest step.
	if got := v.SetGainDB(33.3); got != 33.5 {
		t.Errorf("SetGainDB(33.3) = %v, want 33.5", got)
	}
	if got := v.SetGainDB(200); got != 50 {
		t.Errorf("SetGainDB(200) = %v, want clamp to 50", got)
	}
}

func TestLinearRegionGain(t *testing.T) {
	v := Default()
	v.SetGainDB(30)
	// Small signal far below saturation: out = in + gain.
	out := v.OutputPowerDBm(-60)
	if math.Abs(out-(-30)) > 0.01 {
		t.Errorf("linear output = %v, want -30", out)
	}
	if v.Saturated(-60) {
		t.Error("should not be saturated at tiny input")
	}
	if c := v.CompressionDB(-60); c > 0.01 {
		t.Errorf("compression at tiny input = %v", c)
	}
}

func TestSaturation(t *testing.T) {
	v := Default()
	v.SetGainDB(50)
	// Ideal output would be +30 dBm, 10 dB above Psat: deeply compressed.
	out := v.OutputPowerDBm(-20)
	if out > v.Config().PsatDBm+0.1 {
		t.Errorf("output %v exceeds Psat %v", out, v.Config().PsatDBm)
	}
	if !v.Saturated(-20) {
		t.Error("should be saturated")
	}
	// Output monotone in input even while compressed.
	if v.OutputPowerDBm(-15) < out {
		t.Error("output should not decrease with more input")
	}
}

func TestDisabled(t *testing.T) {
	v := Default()
	v.SetEnabled(false)
	if v.Enabled() {
		t.Error("Enabled should be false")
	}
	if !math.IsInf(v.OutputPowerDBm(-30), -1) {
		t.Error("disabled output should be -Inf")
	}
	if i := v.SupplyCurrentA(-30); i > 0.05 {
		t.Errorf("standby current = %v", i)
	}
	if v.Saturated(-30) || v.CompressionDB(-30) != 0 {
		t.Error("disabled amp can't be saturated")
	}
	v.SetEnabled(true)
	if math.IsInf(v.OutputPowerDBm(-30), -1) {
		t.Error("re-enabled amp should amplify")
	}
}

func TestCurrentSpikeAtCompression(t *testing.T) {
	// Walk the gain up in steps at fixed input; the per-step current
	// delta must jump sharply when compression sets in — this is the
	// knee the §4.2 algorithm detects.
	v := Default()
	in := -25.0
	prev := math.NaN()
	kneeWord := -1
	for w := 0; w < v.Words(); w++ {
		v.SetGainWord(w)
		i := v.SupplyCurrentA(in)
		if !math.IsNaN(prev) {
			if d := i - prev; kneeWord < 0 && d > 0.05 {
				kneeWord = w
			}
		}
		prev = i
	}
	if kneeWord < 0 {
		t.Fatal("no current knee found")
	}
	kneeGain := v.Config().MinGainDB + float64(kneeWord)*v.Config().StepDB
	// The knee should sit within a few dB of the gain at which the
	// ideal output crosses Psat: gain = Psat − in = 45.
	if math.Abs(kneeGain-45) > 5 {
		t.Errorf("current knee at gain %v dB, want ~45", kneeGain)
	}
}

func TestCurrentMonotoneInGain(t *testing.T) {
	v := Default()
	prev := -1.0
	for w := 0; w < v.Words(); w++ {
		v.SetGainWord(w)
		i := v.SupplyCurrentA(-40)
		if i < prev-1e-12 {
			t.Fatalf("current decreased at word %d", w)
		}
		prev = i
	}
}

func TestOOKModulationContrast(t *testing.T) {
	// The backscatter protocol needs a large on/off contrast.
	v := Default()
	v.SetGainDB(40)
	on := v.OutputPowerDBm(-40)
	v.SetEnabled(false)
	off := v.OutputPowerDBm(-40)
	if !math.IsInf(off, -1) || on < -10 {
		t.Errorf("OOK contrast insufficient: on=%v off=%v", on, off)
	}
}

// Property: output power never exceeds Psat + epsilon, and never exceeds
// the ideal linear output.
func TestQuickOutputBounds(t *testing.T) {
	v := Default()
	f := func(in, g float64) bool {
		in = math.Mod(in, 80) - 60 // -140..20 dBm
		g = math.Abs(math.Mod(g, 60))
		if math.IsNaN(in) || math.IsNaN(g) {
			return true
		}
		v.SetGainDB(g)
		out := v.OutputPowerDBm(in)
		return out <= v.Config().PsatDBm+1e-9 && out <= in+v.GainDB()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: supply current is bounded by quiescent + slope + spike.
func TestQuickCurrentBounds(t *testing.T) {
	v := Default()
	cfg := v.Config()
	maxI := cfg.QuiescentA + cfg.SlopeA + cfg.SpikeA
	f := func(in, g float64) bool {
		in = math.Mod(in, 100) - 50
		g = math.Abs(math.Mod(g, 60))
		if math.IsNaN(in) || math.IsNaN(g) {
			return true
		}
		v.SetGainDB(g)
		i := v.SupplyCurrentA(in)
		return i >= cfg.QuiescentA-1e-12 && i <= maxI+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compression is monotone nondecreasing in input power.
func TestQuickCompressionMonotone(t *testing.T) {
	v := Default()
	v.SetGainDB(50)
	f := func(a, b float64) bool {
		p1 := math.Mod(a, 60) - 50
		p2 := math.Mod(b, 60) - 50
		if math.IsNaN(p1) || math.IsNaN(p2) {
			return true
		}
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return v.CompressionDB(p1) <= v.CompressionDB(p2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
