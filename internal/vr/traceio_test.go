package vr

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultTraceConfig(5, 5, 9)
	cfg.Duration = 2 * time.Second
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(orig) {
		t.Fatalf("length %d vs %d", len(loaded), len(orig))
	}
	for i := range orig {
		if !loaded[i].Pos.AlmostEqual(orig[i].Pos, 1e-9) ||
			loaded[i].HandRaised != orig[i].HandRaised {
			t.Fatalf("sample %d differs: %+v vs %+v", i, loaded[i], orig[i])
		}
		// Timestamps survive within a millisecond-scale rounding.
		if d := loaded[i].T - orig[i].T; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("sample %d time differs by %v", i, d)
		}
	}
}

func TestTraceLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"samples":[]}`)); err == nil {
		t.Error("bad version should fail")
	}
	bad := `{"version":1,"samples":[{"t_ms":10,"x":1,"y":1},{"t_ms":5,"x":1,"y":1}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("non-monotone timestamps should fail")
	}
}

func TestTraceLoadEmpty(t *testing.T) {
	tr, err := Load(strings.NewReader(`{"version":1,"samples":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 0 {
		t.Error("empty trace should load empty")
	}
}
