package vr

import (
	"math"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/units"
)

func TestHTCViveDisplay(t *testing.T) {
	d := HTCVive()
	// 2160*1200*24*90 = 5.6 Gbps — "multiple Gbps" (paper §1).
	raw := d.RawRateBps()
	if math.Abs(raw-5.598e9) > 1e7 {
		t.Errorf("raw rate = %v", raw)
	}
	if raw < 2*units.Gbps {
		t.Error("VR raw rate must be multiple Gbps")
	}
	// 90 Hz -> ~11 ms frame interval (paper: "updates the display every
	// 10ms").
	if iv := d.FrameInterval(); iv < 10*time.Millisecond || iv > 12*time.Millisecond {
		t.Errorf("frame interval = %v", iv)
	}
	if d.FrameBits() != 2160*1200*24 {
		t.Errorf("frame bits = %v", d.FrameBits())
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(TraceConfig{Duration: 0, Step: time.Millisecond, RoomW: 5, RoomD: 5}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Generate(TraceConfig{Duration: time.Second, Step: 0, RoomW: 5, RoomD: 5}); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := Generate(TraceConfig{Duration: time.Second, Step: time.Millisecond, RoomW: 0.5, RoomD: 5}); err == nil {
		t.Error("tiny room should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig(5, 5, 42)
	cfg.Duration = 2 * time.Second
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	cfg.Seed = 43
	c, _ := Generate(cfg)
	same := true
	for i := range a {
		if a[i].Pos != c[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different traces")
	}
}

func TestTraceStaysInRoom(t *testing.T) {
	cfg := DefaultTraceConfig(5, 5, 7)
	cfg.Duration = 30 * time.Second
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr {
		if p.Pos.X < 0 || p.Pos.X > 5 || p.Pos.Y < 0 || p.Pos.Y > 5 {
			t.Fatalf("pose outside room: %+v", p)
		}
	}
}

func TestTraceRealism(t *testing.T) {
	cfg := DefaultTraceConfig(5, 5, 11)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tr)
	// Walking speed near the configured mean.
	if s.MeanSpeedMps < 0.2 || s.MeanSpeedMps > 1.2 {
		t.Errorf("mean speed = %v m/s", s.MeanSpeedMps)
	}
	// Hands up a noticeable but minor fraction of the time.
	if s.HandUpFrac <= 0 || s.HandUpFrac > 0.6 {
		t.Errorf("hand-up fraction = %v", s.HandUpFrac)
	}
	// The player actually looks around.
	if s.YawRangeDeg < 45 {
		t.Errorf("yaw range = %v°, too static", s.YawRangeDeg)
	}
	if s.Samples != int(cfg.Duration/cfg.Step)+1 {
		t.Errorf("samples = %d", s.Samples)
	}
}

func TestTraceAt(t *testing.T) {
	tr := Trace{
		{T: 0, YawDeg: 10},
		{T: time.Second, YawDeg: 20},
		{T: 2 * time.Second, YawDeg: 30},
	}
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{-time.Second, 10},
		{0, 10},
		{500 * time.Millisecond, 10},
		{time.Second, 20},
		{1500 * time.Millisecond, 20},
		{5 * time.Second, 30},
	}
	for _, c := range cases {
		if got := tr.At(c.d); got.YawDeg != c.want {
			t.Errorf("At(%v).Yaw = %v, want %v", c.d, got.YawDeg, c.want)
		}
	}
	if (Trace{}).At(0) != (Pose{}) {
		t.Error("empty trace At should be zero pose")
	}
	if tr.Duration() != 2*time.Second {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if (Trace{}).Duration() != 0 {
		t.Error("empty Duration should be 0")
	}
}

func TestHandPos(t *testing.T) {
	p := Pose{Pos: geom.V(0, 0), YawDeg: 0}
	h := p.HandPos()
	if math.Abs(h.X-0.35) > 1e-9 || math.Abs(h.Y) > 1e-9 {
		t.Errorf("hand at %v", h)
	}
	p.YawDeg = 90
	h = p.HandPos()
	if math.Abs(h.Y-0.35) > 1e-9 || math.Abs(h.X) > 1e-9 {
		t.Errorf("rotated hand at %v", h)
	}
}
