package vr

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/movr-sim/movr/internal/geom"
)

// traceFile is the JSON wire format for a motion trace.
type traceFile struct {
	Version int          `json:"version"`
	Samples []poseSample `json:"samples"`
}

type poseSample struct {
	TMs        float64 `json:"t_ms"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	YawDeg     float64 `json:"yaw_deg"`
	HandRaised bool    `json:"hand,omitempty"`
}

// traceFileVersion is the current wire-format version.
const traceFileVersion = 1

// Save writes the trace as JSON, suitable for replaying a session across
// tools or committing a regression fixture.
func (t Trace) Save(w io.Writer) error {
	f := traceFile{Version: traceFileVersion, Samples: make([]poseSample, len(t))}
	for i, p := range t {
		f.Samples[i] = poseSample{
			TMs:        float64(p.T) / float64(time.Millisecond),
			X:          p.Pos.X,
			Y:          p.Pos.Y,
			YawDeg:     p.YawDeg,
			HandRaised: p.HandRaised,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Load reads a trace previously written by Save, validating version and
// time ordering.
func Load(r io.Reader) (Trace, error) {
	var f traceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("vr: decoding trace: %w", err)
	}
	if f.Version != traceFileVersion {
		return nil, fmt.Errorf("vr: unsupported trace version %d", f.Version)
	}
	t := make(Trace, len(f.Samples))
	prev := -1.0
	for i, s := range f.Samples {
		if s.TMs < prev {
			return nil, fmt.Errorf("vr: trace timestamps not monotone at sample %d", i)
		}
		prev = s.TMs
		t[i] = Pose{
			T:          time.Duration(s.TMs * float64(time.Millisecond)),
			Pos:        geom.V(s.X, s.Y),
			YawDeg:     s.YawDeg,
			HandRaised: s.HandRaised,
		}
	}
	return t, nil
}
