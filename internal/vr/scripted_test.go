package vr

import (
	"math"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/units"
)

func TestStandingTrace(t *testing.T) {
	pos := geom.V(2.5, 2.5)
	tr := StandingTrace(pos, 90, 10*time.Second, 10*time.Millisecond, 3)
	if len(tr) != 1001 {
		t.Fatalf("samples = %d", len(tr))
	}
	handUp := 0
	for _, p := range tr {
		if !p.Pos.AlmostEqual(pos, 1e-12) {
			t.Fatal("standing trace moved")
		}
		// Yaw stays within the scan arc.
		if d := math.Abs(units.AngleDiffDeg(p.YawDeg, 90)); d > 41 {
			t.Fatalf("yaw %v outside scan arc", p.YawDeg)
		}
		if p.HandRaised {
			handUp++
		}
	}
	if handUp == 0 {
		t.Error("no hand raises in a shooter trace")
	}
	s := Summarize(tr)
	if s.DistanceM > 1e-9 {
		t.Error("distance should be zero")
	}
}

func TestPacingTrace(t *testing.T) {
	a, b := geom.V(1, 1), geom.V(4, 1)
	tr := PacingTrace(a, b, 1.0, 12*time.Second, 20*time.Millisecond)
	// Round trip period = 6 s: the trace covers two full trips.
	s := Summarize(tr)
	if s.DistanceM < 10 || s.DistanceM > 13 {
		t.Errorf("distance = %v, want ~12 m", s.DistanceM)
	}
	// Positions stay on the segment.
	for _, p := range tr {
		if p.Pos.Y != 1 || p.Pos.X < 1-1e-9 || p.Pos.X > 4+1e-9 {
			t.Fatalf("pose off the pacing line: %v", p.Pos)
		}
	}
	// Yaw flips 180° between the outbound leg (t=0.2 s) and the return
	// leg (t=3.2 s of the 6 s round trip).
	if tr[10].YawDeg == tr[160].YawDeg {
		t.Error("yaw should flip at the turn")
	}
	// Degenerate inputs survive.
	same := PacingTrace(a, a, 0, time.Second, 100*time.Millisecond)
	if len(same) == 0 {
		t.Error("degenerate pacing trace empty")
	}
}
