// Package vr models the virtual-reality side of the system: the headset's
// display requirements and the player's motion — walking, head rotation,
// and the hand gestures whose blockage the paper measures.
//
// Traces are generated deterministically from a seed so every experiment
// is reproducible.
package vr

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/units"
)

// DisplaySpec describes the headset display pipeline.
type DisplaySpec struct {
	// Width and Height are the combined panel resolution in pixels.
	Width, Height int

	// RefreshHz is the refresh rate.
	RefreshHz float64

	// BitsPerPixel is the uncompressed colour depth.
	BitsPerPixel int
}

// HTCVive returns the display of the paper's testbed headset: dual
// 1080×1200 panels (2160×1200 combined) at 90 Hz.
func HTCVive() DisplaySpec {
	return DisplaySpec{Width: 2160, Height: 1200, RefreshHz: 90, BitsPerPixel: 24}
}

// RawRateBps returns the uncompressed pixel rate in bits per second —
// the "multiple Gbps" the paper's introduction cites.
func (d DisplaySpec) RawRateBps() float64 {
	return float64(d.Width) * float64(d.Height) * float64(d.BitsPerPixel) * d.RefreshHz
}

// FrameBits returns the size of one uncompressed frame in bits.
func (d DisplaySpec) FrameBits() float64 {
	return float64(d.Width) * float64(d.Height) * float64(d.BitsPerPixel)
}

// FrameInterval returns the display update period (the paper's 10 ms
// deadline at 90-100 Hz).
func (d DisplaySpec) FrameInterval() time.Duration {
	return time.Duration(float64(time.Second) / d.RefreshHz)
}

// String describes the display.
func (d DisplaySpec) String() string {
	return fmt.Sprintf("%dx%d@%.0fHz (%.1f Gbps raw)", d.Width, d.Height, d.RefreshHz, d.RawRateBps()/units.Gbps)
}

// Pose is one sample of the player's tracked state.
type Pose struct {
	// T is the trace timestamp.
	T time.Duration

	// Pos is the headset position in the floor plan.
	Pos geom.Vec

	// YawDeg is the direction the player faces.
	YawDeg float64

	// HandRaised reports whether the player's hand is up in front of
	// the headset (the paper's hand-blockage scenario).
	HandRaised bool
}

// HandPos returns the position of the raised hand: in front of the face,
// along the gaze direction.
func (p Pose) HandPos() geom.Vec { return geom.FromPolar(p.Pos, p.YawDeg, 0.35) }

// Trace is a time-ordered sequence of poses.
type Trace []Pose

// Duration returns the trace length in time.
func (t Trace) Duration() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].T
}

// At returns the pose active at time d (the latest sample at or before
// d); it returns the first pose for times before the trace starts.
func (t Trace) At(d time.Duration) Pose {
	if len(t) == 0 {
		return Pose{}
	}
	lo, hi := 0, len(t)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t[mid].T <= d {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return t[lo]
}

// TraceConfig drives the synthetic motion generator.
type TraceConfig struct {
	// Duration is the total trace length.
	Duration time.Duration

	// Step is the sampling interval.
	Step time.Duration

	// RoomW and RoomD bound the walkable area (a margin is applied).
	RoomW, RoomD float64

	// WalkSpeedMps is the average walking speed.
	WalkSpeedMps float64

	// YawRateDps is the RMS head-rotation rate in degrees per second.
	YawRateDps float64

	// YawDriftDps is a slow persistent rotation (sign chosen from the
	// seed) so the player sweeps the full circle over a session, as
	// room-scale VR players do.
	YawDriftDps float64

	// HandRaiseRate is the average number of hand-raise events per
	// second of play.
	HandRaiseRate float64

	// HandRaiseDur is how long a raised hand stays up.
	HandRaiseDur time.Duration

	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultTraceConfig returns a lively room-scale VR session: 60 s at
// 100 Hz sampling, ~0.5 m/s wandering, brisk head motion, a hand raise
// every few seconds.
func DefaultTraceConfig(roomW, roomD float64, seed int64) TraceConfig {
	return TraceConfig{
		Duration:      60 * time.Second,
		Step:          10 * time.Millisecond,
		RoomW:         roomW,
		RoomD:         roomD,
		WalkSpeedMps:  0.5,
		YawRateDps:    60,
		YawDriftDps:   25,
		HandRaiseRate: 0.25,
		HandRaiseDur:  800 * time.Millisecond,
		Seed:          seed,
	}
}

// Generate synthesizes a motion trace: a smooth random walk with
// reflective room boundaries, an Ornstein-Uhlenbeck-style heading
// process, and Poisson hand-raise events.
func Generate(cfg TraceConfig) (Trace, error) {
	if cfg.Duration <= 0 || cfg.Step <= 0 {
		return nil, fmt.Errorf("vr: Duration %v and Step %v must be positive", cfg.Duration, cfg.Step)
	}
	if cfg.RoomW <= 1 || cfg.RoomD <= 1 {
		return nil, fmt.Errorf("vr: room %vx%v too small for motion", cfg.RoomW, cfg.RoomD)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Duration/cfg.Step) + 1
	dt := cfg.Step.Seconds()
	margin := 0.5

	pos := geom.V(
		margin+rng.Float64()*(cfg.RoomW-2*margin),
		margin+rng.Float64()*(cfg.RoomD-2*margin),
	)
	heading := rng.Float64() * 360
	yaw := rng.Float64() * 360
	yawVel := 0.0
	drift := cfg.YawDriftDps
	if rng.Intn(2) == 0 {
		drift = -drift
	}
	handUntil := time.Duration(-1)

	trace := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * cfg.Step
		// Walk: heading drifts, speed jitters around the mean.
		heading += rng.NormFloat64() * 25 * dt * 10
		speed := cfg.WalkSpeedMps * (0.6 + 0.8*rng.Float64())
		step := geom.FromPolar(geom.V(0, 0), heading, speed*dt)
		pos = pos.Add(step)
		// Reflect off the walkable-area boundary.
		if pos.X < margin {
			pos.X = 2*margin - pos.X
			heading = 180 - heading
		}
		if pos.X > cfg.RoomW-margin {
			pos.X = 2*(cfg.RoomW-margin) - pos.X
			heading = 180 - heading
		}
		if pos.Y < margin {
			pos.Y = 2*margin - pos.Y
			heading = -heading
		}
		if pos.Y > cfg.RoomD-margin {
			pos.Y = 2*(cfg.RoomD-margin) - pos.Y
			heading = -heading
		}
		// Head yaw: mean-reverting angular velocity (players scan the
		// scene) on top of a slow persistent drift (they also turn all
		// the way around over a session).
		yawVel += (-1.5*yawVel + rng.NormFloat64()*cfg.YawRateDps*3) * dt
		yaw = units.NormalizeDeg(yaw + (yawVel+drift)*dt)
		// Hand raises: Poisson arrivals with fixed hold time.
		if handUntil < t && rng.Float64() < cfg.HandRaiseRate*dt {
			handUntil = t + cfg.HandRaiseDur
		}
		trace = append(trace, Pose{
			T:          t,
			Pos:        pos,
			YawDeg:     yaw,
			HandRaised: t < handUntil,
		})
	}
	return trace, nil
}

// StandingTrace synthesizes a "standing shooter" session: the player
// stays put, scans left and right, and raises a hand to aim every few
// seconds — the minimal-motion workload where hand blockage dominates.
func StandingTrace(pos geom.Vec, faceDeg float64, dur, step time.Duration, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(dur/step) + 1
	trace := make(Trace, 0, n)
	handUntil := time.Duration(-1)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * step
		// Scan ±40° around the facing direction with a slow sinusoid.
		scan := 40 * math.Sin(2*math.Pi*t.Seconds()/8)
		if handUntil < t && rng.Float64() < 0.4*step.Seconds() {
			handUntil = t + 1200*time.Millisecond
		}
		trace = append(trace, Pose{
			T:          t,
			Pos:        pos,
			YawDeg:     units.NormalizeDeg(faceDeg + scan),
			HandRaised: t < handUntil,
		})
	}
	return trace
}

// PacingTrace synthesizes a back-and-forth walking session between two
// waypoints, facing the direction of travel — the workload where head
// rotation (turning at each end) dominates.
func PacingTrace(a, b geom.Vec, speedMps float64, dur, step time.Duration) Trace {
	if speedMps <= 0 {
		speedMps = 0.5
	}
	n := int(dur/step) + 1
	trace := make(Trace, 0, n)
	leg := a.Dist(b)
	if leg == 0 {
		leg = 1e-9
	}
	period := 2 * leg / speedMps
	for i := 0; i < n; i++ {
		t := time.Duration(i) * step
		phase := math.Mod(t.Seconds(), period) / period // 0..1 over a round trip
		var pos geom.Vec
		var yaw float64
		if phase < 0.5 {
			pos = a.Lerp(b, phase*2)
			yaw = geom.DirectionDeg(a, b)
		} else {
			pos = b.Lerp(a, (phase-0.5)*2)
			yaw = geom.DirectionDeg(b, a)
		}
		trace = append(trace, Pose{T: t, Pos: pos, YawDeg: units.NormalizeDeg(yaw)})
	}
	return trace
}

// Stats summarizes a trace for sanity checks and reports.
type Stats struct {
	Samples      int
	DistanceM    float64
	MeanSpeedMps float64
	HandUpFrac   float64
	YawRangeDeg  float64
}

// Summarize computes trace statistics.
func Summarize(t Trace) Stats {
	s := Stats{Samples: len(t)}
	if len(t) < 2 {
		return s
	}
	handUp := 0
	minYaw, maxYaw := math.Inf(1), math.Inf(-1)
	for i, p := range t {
		if i > 0 {
			s.DistanceM += p.Pos.Dist(t[i-1].Pos)
		}
		if p.HandRaised {
			handUp++
		}
		if p.YawDeg < minYaw {
			minYaw = p.YawDeg
		}
		if p.YawDeg > maxYaw {
			maxYaw = p.YawDeg
		}
	}
	s.MeanSpeedMps = s.DistanceM / t.Duration().Seconds()
	s.HandUpFrac = float64(handUp) / float64(len(t))
	s.YawRangeDeg = maxYaw - minYaw
	return s
}
