package sim

import (
	"testing"
	"time"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	n := e.Run(time.Second)
	if n != 3 {
		t.Fatalf("executed %d", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := New()
	var seen time.Duration
	e.After(15*time.Millisecond, func() {
		seen = e.Now()
		e.After(10*time.Millisecond, func() { seen = e.Now() })
	})
	e.Run(time.Second)
	if seen != 25*time.Millisecond {
		t.Errorf("nested time = %v", seen)
	}
	if e.Now() != time.Second {
		t.Errorf("Now after run = %v, want horizon", e.Now())
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	ran := false
	e.At(50*time.Millisecond, func() {
		e.At(10*time.Millisecond, func() { ran = true }) // in the past
	})
	e.Run(100 * time.Millisecond)
	if !ran {
		t.Error("past-scheduled event should run at current time")
	}
	// Negative delay clamps to zero.
	e2 := New()
	e2.After(-time.Second, func() { ran = true })
	if e2.Run(time.Second) != 1 {
		t.Error("negative delay should still run")
	}
}

func TestHorizonStopsRun(t *testing.T) {
	e := New()
	count := 0
	e.Every(0, 10*time.Millisecond, func() { count++ })
	e.Run(95 * time.Millisecond)
	// Ticks at 0,10,...,90 = 10 events.
	if count != 10 {
		t.Errorf("tick count = %d, want 10", count)
	}
	if e.Pending() == 0 {
		t.Error("next tick should remain queued")
	}
	// Continue running: the queue resumes where it stopped.
	e.Run(125 * time.Millisecond)
	if count != 13 {
		t.Errorf("tick count after resume = %d, want 13", count)
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	e := New()
	ran := false
	e.At(time.Second, func() { ran = true })
	e.Run(time.Second)
	if !ran {
		t.Error("event exactly at horizon should run")
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	e.Every(0, time.Millisecond, func() {
		count++
		if count == 5 {
			e.Halt()
		}
	})
	e.Run(time.Second)
	if count != 5 {
		t.Errorf("halted at %d events", count)
	}
}

func TestEveryInvalidPeriod(t *testing.T) {
	e := New()
	e.Every(0, 0, func() { t.Fatal("should never run") })
	if e.Pending() != 0 {
		t.Error("invalid period should schedule nothing")
	}
}
