// Package sim is a small discrete-event simulation engine: a virtual
// clock and an ordered event queue. The VR streaming experiments use it
// to interleave frame generation, link re-evaluation, motion updates, and
// blockage events with microsecond bookkeeping and no wall-clock cost.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine runs events in virtual time.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	halted bool

	// free recycles executed event structs, so steady-state periodic
	// schedules (Every, frame chains) allocate nothing.
	free []*event
}

// New returns an Engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t; times in the past run at
// the current time.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	heap.Push(&e.queue, ev)
}

// After schedules fn delay after the current time.
func (e *Engine) After(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Every schedules fn at the given period starting at start, until the
// engine is halted or the run horizon ends.
func (e *Engine) Every(start, period time.Duration, fn func()) {
	if period <= 0 {
		return
	}
	var tick func()
	next := start
	tick = func() {
		fn()
		next += period
		e.At(next, tick)
	}
	e.At(start, tick)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in order until the queue empties or virtual time
// would pass the horizon. It returns the number of events executed.
// Events scheduled exactly at the horizon still run.
func (e *Engine) Run(horizon time.Duration) int {
	executed := 0
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		fn := next.fn
		// Recycle before running fn so a reschedule inside it (Every's
		// tick, a frame chain) reuses this struct immediately.
		next.fn = nil
		e.free = append(e.free, next)
		fn()
		executed++
	}
	if e.now < horizon && !e.halted {
		e.now = horizon
	}
	return executed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
