package venue

import (
	"math"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/vr"
)

func mustGrid(t *testing.T, bays int) Layout {
	t.Helper()
	l, err := Grid(bays, 8, 8, room.Drywall)
	if err != nil {
		t.Fatalf("Grid(%d): %v", bays, err)
	}
	return l
}

func TestGridShape(t *testing.T) {
	cases := []struct {
		bays, rows, cols int
	}{
		{1, 1, 1},
		{2, 1, 2},
		{4, 2, 2},
		{5, 2, 3},
		{9, 3, 3},
		{16, 4, 4},
		{64, 8, 8},
	}
	for _, c := range cases {
		l := mustGrid(t, c.bays)
		if l.Rows != c.rows || l.Cols != c.cols || l.Bays() != c.bays {
			t.Errorf("Grid(%d) = %dx%d grid of %d bays, want %dx%d of %d",
				c.bays, l.Rows, l.Cols, l.Bays(), c.rows, c.cols, c.bays)
		}
		if l.Rows*l.Cols < c.bays {
			t.Errorf("Grid(%d): %dx%d cells cannot hold %d bays", c.bays, l.Rows, l.Cols, c.bays)
		}
	}
	if _, err := Grid(0, 8, 8, room.Drywall); err == nil {
		t.Error("Grid accepted zero bays")
	}
	if _, err := Grid(4, 0, 8, room.Drywall); err == nil {
		t.Error("Grid accepted a zero-width bay")
	}
}

func TestGridPlacement(t *testing.T) {
	// 5 bays on a 2x3 grid: bay 4 starts the second row.
	l := mustGrid(t, 5)
	if got, want := l.Origin(0), geom.V(0, 0); got != want {
		t.Errorf("Origin(0) = %v, want %v", got, want)
	}
	if got, want := l.Origin(4), geom.V(8, 8); got != want {
		t.Errorf("Origin(4) = %v, want %v", got, want)
	}
	if got, want := l.Center(2), geom.V(20, 4); got != want {
		t.Errorf("Center(2) = %v, want %v", got, want)
	}
}

func TestWallsBetween(t *testing.T) {
	// 3x3 grid, bays 0..8 row-major; center bay is 4.
	l := mustGrid(t, 9)
	cases := []struct{ a, b, walls int }{
		{4, 1, 1}, // orthogonal: one shared partition
		{4, 0, 2}, // diagonal: two partitions
		{0, 2, 2}, // two bays along a row
		{0, 8, 4}, // opposite corners
		{4, 4, 0},
	}
	for _, c := range cases {
		if got := l.WallsBetween(c.a, c.b); got != c.walls {
			t.Errorf("WallsBetween(%d, %d) = %d, want %d", c.a, c.b, got, c.walls)
		}
		if got := l.WallsBetween(c.b, c.a); got != c.walls {
			t.Errorf("WallsBetween(%d, %d) = %d, want %d (symmetry)", c.b, c.a, got, c.walls)
		}
	}
}

func TestInNeighborhood(t *testing.T) {
	l := mustGrid(t, 9)
	// The center bay's neighborhood is every other bay of a 3x3 grid.
	for b := 0; b < 9; b++ {
		want := b != 4
		if got := l.InNeighborhood(4, b); got != want {
			t.Errorf("InNeighborhood(4, %d) = %v, want %v", b, got, want)
		}
	}
	// A corner sees only its three adjacent cells.
	wantFor0 := map[int]bool{1: true, 3: true, 4: true}
	for b := 0; b < 9; b++ {
		if got := l.InNeighborhood(0, b); got != wantFor0[b] {
			t.Errorf("InNeighborhood(0, %d) = %v, want %v", b, got, wantFor0[b])
		}
	}
}

func TestAssignChannelsColoring(t *testing.T) {
	// Four channels four-color any 8-neighborhood grid: no co-channel
	// neighbors anywhere.
	l := mustGrid(t, 16)
	chans, err := AssignChannels(l, MaxChannels, AssignColoring)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < l.Bays(); b++ {
		if n := l.CoChannelNeighbors(chans, b); n != 0 {
			t.Errorf("bay %d has %d co-channel neighbors under 4-channel coloring", b, n)
		}
	}

	// Three channels cannot avoid every conflict on a 4x4 grid, but
	// coloring must beat fixed assignment overall.
	colored, err := AssignChannels(l, DefaultChannels, AssignColoring)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := AssignChannels(l, DefaultChannels, AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	conflicts := func(chans []int) int {
		total := 0
		for b := 0; b < l.Bays(); b++ {
			total += l.CoChannelNeighbors(chans, b)
		}
		return total
	}
	if c, f := conflicts(colored), conflicts(fixed); c >= f {
		t.Errorf("coloring left %d co-channel pairs, fixed %d — coloring should win", c, f)
	}
}

func TestAssignChannelsFixed(t *testing.T) {
	l := mustGrid(t, 6)
	chans, err := AssignChannels(l, 2, AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	for b, ch := range chans {
		if ch != b%2 {
			t.Errorf("fixed: bay %d on channel %d, want %d", b, ch, b%2)
		}
	}
	// One channel makes every neighborhood co-channel — the worst case
	// the acceptance tests lean on.
	one, err := AssignChannels(l, 1, AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	for b := range one {
		if one[b] != 0 {
			t.Fatalf("single-channel assignment gave bay %d channel %d", b, one[b])
		}
	}
}

func TestAssignChannelsValidation(t *testing.T) {
	l := mustGrid(t, 4)
	if _, err := AssignChannels(l, MaxChannels+1, AssignColoring); err == nil {
		t.Error("AssignChannels accepted a channel count beyond the band")
	}
	if _, err := AssignChannels(l, 0, AssignColoring); err != nil {
		t.Errorf("AssignChannels rejected the default channel count: %v", err)
	}
	if _, err := AssignChannels(l, 2, AssignMode("roulette")); err == nil {
		t.Error("AssignChannels accepted an unknown mode")
	}
}

func TestParseAssignMode(t *testing.T) {
	if m, err := ParseAssignMode(""); err != nil || m != AssignColoring {
		t.Errorf("ParseAssignMode(\"\") = %q, %v", m, err)
	}
	for _, m := range AssignModes() {
		got, err := ParseAssignMode(string(m))
		if err != nil || got != m {
			t.Errorf("ParseAssignMode(%q) = %q, %v", m, got, err)
		}
	}
	if _, err := ParseAssignMode("roulette"); err == nil {
		t.Error("ParseAssignMode accepted an unknown mode")
	}
}

// buildGeos builds per-bay geometry snapshots with distinct player
// traces per bay, mirroring what the fleet generator feeds
// InterferenceTable.
func buildGeos(t *testing.T, bays, players int, dur time.Duration) []*coex.Geometry {
	t.Helper()
	geos := make([]*coex.Geometry, bays)
	ap := geom.V(0.5, 0.5)
	for b := range geos {
		traces := make([]vr.Trace, players)
		for i := range traces {
			cfg := vr.DefaultTraceConfig(8, 8, int64(1000+b*players+i))
			cfg.Duration = dur
			tr, err := vr.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			traces[i] = tr
		}
		rm := coex.Room{Players: traces, Period: 50 * time.Millisecond}
		geo, err := coex.BuildGeometry(rm, ap, 10*time.Millisecond, dur)
		if err != nil {
			t.Fatal(err)
		}
		geos[b] = geo
	}
	return geos
}

func TestInterferenceTable(t *testing.T) {
	const dur = time.Second
	l := mustGrid(t, 2)
	geos := buildGeos(t, 2, 2, dur)
	p := DefaultParams(geom.V(0.5, 0.5))
	coChannel := []int{0, 0}

	pen := InterferenceTable(l, coChannel, 0, geos, p)
	if int64(len(pen)) != geos[0].Windows() {
		t.Fatalf("table has %d windows, snapshot %d", len(pen), geos[0].Windows())
	}
	positive := 0
	for w, v := range pen {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("window %d penalty %v out of range", w, v)
		}
		if v > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("an adjacent co-channel bay imposed no penalty in any window")
	}

	// Determinism: recomputing from the same snapshots is bit-identical.
	again := InterferenceTable(l, coChannel, 0, geos, p)
	for w := range pen {
		if pen[w] != again[w] {
			t.Fatalf("window %d: %v then %v — table is not deterministic", w, pen[w], again[w])
		}
	}

	// Separate channels silence the neighbor entirely.
	quiet := InterferenceTable(l, []int{0, 1}, 0, geos, p)
	for w, v := range quiet {
		if v != 0 {
			t.Fatalf("window %d: cross-channel neighbor leaked %v dB", w, v)
		}
	}
}

// TestInterferenceWallAttenuation pins the geometry sensitivity: the
// same neighbor behind a concrete partition must interfere less than
// behind drywall.
func TestInterferenceWallAttenuation(t *testing.T) {
	const dur = time.Second
	geos := buildGeos(t, 2, 2, dur)
	p := DefaultParams(geom.V(0.5, 0.5))
	chans := []int{0, 0}

	drywall := mustGrid(t, 2)
	concrete, err := Grid(2, 8, 8, room.Concrete)
	if err != nil {
		t.Fatal(err)
	}
	thin := InterferenceTable(drywall, chans, 0, geos, p)
	thick := InterferenceTable(concrete, chans, 0, geos, p)
	sum := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s
	}
	if st, sk := sum(thin), sum(thick); sk >= st {
		t.Errorf("concrete partition (%f dB total) should attenuate more than drywall (%f dB)", sk, st)
	}
}
