// Package venue lifts the simulator's single-room assumption into a
// venue hierarchy: a rectangular grid of adjacent 60 GHz VR bays — the
// paper's arcade deployment story at building scale. Bays are regular
// coex rooms (one AP, a handful of players, a TDMA schedule), but their
// channels are no longer private: a bay's signal leaks through the
// partition walls into its neighbors, so co-channel bays interfere.
//
// The package models three things, all deterministic and cheap:
//
//   - geometry: Layout places bays on a row-major grid and prices the
//     leakage between any two of them (free-space spreading plus one
//     wall-penetration loss per partition crossed, reusing the channel
//     layer's per-material calibration — channel.TransmissionLossDB);
//   - channel assignment: AssignChannels colors the bay grid so
//     neighbors avoid co-channel interference — a greedy graph-coloring
//     assigner over the interference neighborhood, plus a fixed
//     round-robin mode that pins assignments for determinism studies
//     (and, with one channel, builds the worst co-channel case);
//   - interference: InterferenceTable folds the neighbors' transmit
//     activity into one per-window SINR penalty per bay, read entirely
//     from the neighbors' room-owned geometry snapshots (coex.Geometry:
//     who holds each window's slots, and where they stand) — so
//     cross-bay coupling costs one table per bay, not a tracer run, and
//     is bit-reproducible across runs, shards and worker counts.
package venue

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

// DefaultChannels is the number of 60 GHz channels available for bay
// assignment when none is configured — the three non-overlapping
// 802.11ad channels usable worldwide. MaxChannels is the band's full
// channelization.
const (
	DefaultChannels = 3
	MaxChannels     = 4
)

// AssignMode names a channel-assignment strategy. It is the shared
// vocabulary of the movrsim -assign flag and the movrd job API's assign
// field.
type AssignMode string

const (
	// AssignColoring greedily colors the bay grid so no two bays within
	// each other's interference neighborhood share a channel when the
	// channel budget allows — the default.
	AssignColoring AssignMode = "color"

	// AssignFixed pins bay b to channel b mod channels, whatever the
	// adjacency: a deterministic worst-ish case useful for pinning
	// interference studies (with channels=1 every bay is co-channel).
	AssignFixed AssignMode = "fixed"
)

// AssignModes lists the recognised modes in menu order.
func AssignModes() []AssignMode { return []AssignMode{AssignColoring, AssignFixed} }

// AssignModeNames renders the menu for usage strings: "color|fixed".
func AssignModeNames() string {
	names := make([]string, 0, 2)
	for _, m := range AssignModes() {
		names = append(names, string(m))
	}
	return strings.Join(names, "|")
}

// ParseAssignMode validates an assignment-mode name. The empty string is
// the default greedy coloring.
func ParseAssignMode(s string) (AssignMode, error) {
	if s == "" {
		return AssignColoring, nil
	}
	for _, m := range AssignModes() {
		if s == string(m) {
			return m, nil
		}
	}
	return "", fmt.Errorf("unknown assignment mode %q (%s)", s, AssignModeNames())
}

// Layout places a venue's bays on a row-major rectangular grid. Bay b
// sits at grid cell (b/Cols, b%Cols); the last row may be partial. Every
// bay has the same footprint, and adjacent bays share one partition wall
// of the layout's material.
type Layout struct {
	// Rows and Cols give the grid shape; Bays() ≤ Rows×Cols bays exist.
	Rows, Cols int

	// BayW and BayD are each bay's footprint in metres.
	BayW, BayD float64

	// Wall is the partition material between adjacent bays; its
	// through-wall penetration loss (channel.TransmissionLossDB) is
	// charged once per partition a leaking signal crosses.
	Wall room.Material

	nBays int
}

// Grid builds a near-square layout for the given bay count.
func Grid(bays int, bayW, bayD float64, wall room.Material) (Layout, error) {
	if bays <= 0 {
		return Layout{}, fmt.Errorf("venue: bay count %d must be positive", bays)
	}
	if bayW <= 0 || bayD <= 0 {
		return Layout{}, fmt.Errorf("venue: bay footprint %.1f×%.1f must be positive", bayW, bayD)
	}
	cols := int(math.Ceil(math.Sqrt(float64(bays))))
	rows := (bays + cols - 1) / cols
	return Layout{Rows: rows, Cols: cols, BayW: bayW, BayD: bayD, Wall: wall, nBays: bays}, nil
}

// Bays returns the number of bays in the venue.
func (l Layout) Bays() int { return l.nBays }

// cell returns bay b's grid coordinates.
func (l Layout) cell(b int) (row, col int) { return b / l.Cols, b % l.Cols }

// Origin returns bay b's south-west corner in venue coordinates; bay-
// local positions (player poses, the AP) offset from it.
func (l Layout) Origin(b int) geom.Vec {
	r, c := l.cell(b)
	return geom.V(float64(c)*l.BayW, float64(r)*l.BayD)
}

// Center returns bay b's floor-plan center in venue coordinates — the
// reference point interference is evaluated at.
func (l Layout) Center(b int) geom.Vec {
	return l.Origin(b).Add(geom.V(l.BayW/2, l.BayD/2))
}

// WallsBetween returns how many partition walls a straight leak from bay
// a into bay b must cross: the grid's Manhattan distance (orthogonal
// neighbors share one wall, diagonal neighbors two).
func (l Layout) WallsBetween(a, b int) int {
	ra, ca := l.cell(a)
	rb, cb := l.cell(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// InNeighborhood reports whether bays a and b sit within each other's
// interference neighborhood: the eight surrounding grid cells. Beyond
// that ring at least two partitions and a full bay of free-space
// spreading separate the APs, which puts the leakage below the noise
// floor for every realistic wall material.
func (l Layout) InNeighborhood(a, b int) bool {
	if a == b {
		return false
	}
	ra, ca := l.cell(a)
	rb, cb := l.cell(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr <= 1 && dc <= 1
}

// CoChannelNeighbors returns how many bays in b's interference
// neighborhood share its channel under the given assignment — the
// degree the acceptance tests sweep.
func (l Layout) CoChannelNeighbors(chans []int, b int) int {
	n := 0
	for nb := 0; nb < l.Bays(); nb++ {
		if l.InNeighborhood(b, nb) && chans[nb] == chans[b] {
			n++
		}
	}
	return n
}

// AssignChannels assigns each bay one of `channels` channels under the
// given mode and returns the per-bay channel indices. Coloring visits
// bays row-major and first-fits the lowest channel unused inside the
// bay's already-colored interference neighborhood; when the budget is
// too small to avoid every conflict (an 8-neighborhood grid needs four
// colors), it falls back to the channel least used among those
// neighbors, so the residual co-channel pressure spreads evenly instead
// of piling onto channel 0. Fixed mode pins bay b to channel b mod
// channels regardless of adjacency. Both are pure functions of the
// layout, so assignments never perturb determinism.
func AssignChannels(l Layout, channels int, mode AssignMode) ([]int, error) {
	if channels <= 0 {
		channels = DefaultChannels
	}
	if channels > MaxChannels {
		return nil, fmt.Errorf("venue: %d channels exceeds the %d-channel 60 GHz band", channels, MaxChannels)
	}
	mode, err := ParseAssignMode(string(mode))
	if err != nil {
		return nil, err
	}
	chans := make([]int, l.Bays())
	if mode == AssignFixed {
		for b := range chans {
			chans[b] = b % channels
		}
		return chans, nil
	}
	used := make([]int, channels)
	for b := range chans {
		for ch := range used {
			used[ch] = 0
		}
		for nb := 0; nb < b; nb++ {
			if l.InNeighborhood(b, nb) {
				used[chans[nb]]++
			}
		}
		best := 0
		for ch := 1; ch < channels; ch++ {
			if used[ch] < used[best] {
				best = ch
			}
		}
		chans[b] = best
	}
	return chans, nil
}

// Params tunes the interference model. The zero value of every field is
// invalid; build from DefaultParams.
type Params struct {
	// Budget is the link budget the bays transmit under — the same one
	// the sessions' SNRs are computed against, so the penalty and the
	// signal share a noise floor.
	Budget channel.Budget

	// APLocal is each bay's AP position in bay-local coordinates, and
	// APOrientationDeg its array's mounting orientation (world frame;
	// bays are translated, never rotated, so local and venue angles
	// coincide).
	APLocal          geom.Vec
	APOrientationDeg float64

	// RXGainDBi is the victim-side antenna gain toward the interference
	// (0 = the conservative sidelobe assumption: the headset's beam
	// points at its own AP, not at the neighbor's).
	RXGainDBi float64
}

// DefaultParams returns the interference model matched to the session
// engine's worlds: its link budget, and the AP tucked into each bay's
// south-west corner facing the room diagonal (experiments.NewSizedWorld
// builds exactly this; the fleet generator passes the shared position
// in rather than this package importing the experiments layer).
func DefaultParams(apLocal geom.Vec) Params {
	return Params{
		Budget:           channel.DefaultBudget(),
		APLocal:          apLocal,
		APOrientationDeg: 45,
	}
}

// InterferenceTable computes bay's per-window external SINR penalty in
// dB: pen[w] is how far the bay's SNR drops during scheduling window w
// because co-channel neighbors are on the air. geos holds every bay's
// room-owned geometry snapshot and chans the channel assignment.
//
// The model, per co-channel neighbor within the interference
// neighborhood and per window: the neighbor's AP serves the players its
// snapshot says hold slots, steering its beam at each one's snapshot
// pose in turn; the victim bay (evaluated at its floor-plan center)
// receives that transmission through the neighbor AP's pattern gain
// toward it — mainlobe when the served player happens to line up with
// the victim, sidelobe otherwise — attenuated by free-space spreading,
// atmospheric absorption, and one wall-penetration loss per partition
// crossed. Slot powers are weighted by their fraction of the window and
// summed across neighbors; the penalty is the bay-wide SINR degradation
// 10·log10(1 + I/N) against the budget's noise floor. The budget's
// implementation loss is deliberately not charged: it prices decoding
// the signal, and interference degrades the victim whether or not
// anyone decodes it.
//
// Everything is read from snapshots and static geometry — no rng, no
// tracer — so the table is a pure function of the venue configuration.
func InterferenceTable(l Layout, chans []int, bay int, geos []*coex.Geometry, p Params) []float64 {
	g := geos[bay]
	pen := make([]float64, g.Windows())
	victim := l.Center(bay)
	noiseMW := units.DBmToMilliwatts(p.Budget.NoiseFloorDBm())
	wallLoss := channel.TransmissionLossDB(l.Wall)

	acc := make([]float64, len(pen)) // interference power per window, mW
	arr := antenna.Default(p.APOrientationDeg)
	for nb := 0; nb < l.Bays(); nb++ {
		if !l.InNeighborhood(bay, nb) || chans[nb] != chans[bay] {
			continue
		}
		ng := geos[nb]
		origin := l.Origin(nb)
		apPos := origin.Add(p.APLocal)
		d := apPos.Dist(victim)
		baseLossDB := units.FSPL(d, p.Budget.FreqHz) +
			channel.AtmosphericLossDB(d, p.Budget.FreqHz) +
			float64(l.WallsBetween(bay, nb))*wallLoss
		victimDeg := geom.DirectionDeg(apPos, victim)
		period := ng.Period()

		nWins := int64(len(acc))
		if ng.Windows() < nWins {
			nWins = ng.Windows()
		}
		for w := int64(0); w < nWins; w++ {
			winStart := period * time.Duration(w)
			for i := 0; i < ng.Players(); i++ {
				s, e, active := ng.SlotAt(w, i)
				if !active || e <= s {
					continue
				}
				// Steer the neighbor's AP at the served player's
				// snapshot pose; off-grid misses (a period that is not
				// a step multiple) fall back to the bay center.
				target := origin.Add(geom.V(l.BayW/2, l.BayD/2))
				if pos, ok := ng.PoseAt(i, winStart); ok {
					target = origin.Add(pos)
				}
				arr.SteerTo(geom.DirectionDeg(apPos, target))
				iDBm := p.Budget.TXPowerDBm + arr.GainDBi(victimDeg) + p.RXGainDBi - baseLossDB
				acc[w] += units.DBmToMilliwatts(iDBm) * (float64(e-s) / float64(period))
			}
		}
	}
	for w := range pen {
		pen[w] = units.LinearToDB(1 + acc[w]/noiseMW)
	}
	return pen
}
