// Package bench is the repo's performance-regression subsystem: a named
// benchmark suite over the simulator's hot paths (tracer micro, link
// tracking step, a Fig 9 trial, one fleet scenario per Kind, and a full
// movrd submit→result round trip), a harness that runs each benchmark
// with warmup and repetitions while sampling wall time and allocator
// counters, and a schema-versioned JSON report (BENCH_<git-sha>.json)
// that the CI gate (scripts/bench_gate.sh) compares against the
// committed BENCH_baseline.json.
//
// The harness is deliberately self-contained (no testing.B): per-rep
// wall-clock samples give honest p50/p95 figures, and runtime.MemStats
// deltas give allocs/op and bytes/op — the machine-independent numbers
// the gate enforces strictly.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it when fields
// change meaning; the gate refuses to compare across versions. v2 added
// the Workers and GOMAXPROCS parallelism stamps — per-op wall times from
// runs under different parallelism are not comparable, so the gate
// refuses those too.
const SchemaVersion = 2

// Spec is one benchmark in the suite.
type Spec struct {
	// Name is the stable identifier the gate keys on (e.g.
	// "tracer/office2b").
	Name string

	// Warmup and Reps are the unmeasured and measured repetition counts.
	Warmup, Reps int

	// OpsPerRep batches fast operations inside one timed repetition so
	// per-rep samples stay above timer resolution; reported figures are
	// per operation.
	OpsPerRep int

	// Setup, when non-nil, builds per-benchmark state before any
	// repetition and returns a cleanup (either may be nil).
	Setup func() (cleanup func(), err error)

	// Op runs one repetition (OpsPerRep operations).
	Op func() error

	// AllocBound, when positive, is an absolute allocs/op ceiling
	// enforced at run time — the run itself fails if the measured count
	// exceeds it, independent of any baseline comparison. Use it to pin
	// a hard-won allocation budget (e.g. fleet/venue16x4 after the
	// bay-batched scratch reuse) so the bound travels with the suite
	// instead of living only in a committed baseline file.
	AllocBound float64
}

// Result is one benchmark's measured outcome.
type Result struct {
	Name        string  `json:"name"`
	Reps        int     `json:"reps"`
	OpsPerRep   int     `json:"ops_per_rep"`
	NsPerOp     float64 `json:"ns_per_op"`
	P50Ns       float64 `json:"p50_ns"`
	P95Ns       float64 `json:"p95_ns"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the full suite outcome — the BENCH_*.json document.
type Report struct {
	SchemaVersion int      `json:"schema_version"`
	GitSHA        string   `json:"git_sha"`
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	CPUs          int      `json:"cpus"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Workers       int      `json:"workers"`
	CreatedUTC    string   `json:"created_utc"`
	Benchmarks    []Result `json:"benchmarks"`
}

// Options tunes a suite run.
type Options struct {
	// Fast trims warmup and repetition counts (CI smoke, -fast). The
	// operation under each benchmark is identical either way, so fast
	// and full reports remain comparable per op.
	Fast bool

	// GitSHA overrides revision detection (normally from the build info
	// or the MOVR_GIT_SHA environment variable).
	GitSHA string

	// Workers stamps the suite's pinned worker-pool width into the
	// report (<= 0 means the suite default). It is a recording knob, not
	// an override: the suite's parallel entries pin their own widths so
	// any two reports compare like for like, and Compare refuses reports
	// whose stamps disagree.
	Workers int

	// CPUProfileDir and MemProfileDir, when non-empty, write one pprof
	// profile per benchmark into the directory (created if absent):
	// <name>.cpu.pprof covering exactly the measured repetitions, and
	// <name>.mem.pprof capturing the heap after them ('/' in benchmark
	// names becomes '_'). Profiling perturbs wall times slightly, so
	// gate comparisons should use unprofiled runs.
	CPUProfileDir string
	MemProfileDir string

	// Log, when non-nil, receives one progress line per benchmark.
	Log func(format string, args ...any)
}

// GitSHA resolves the revision stamped into reports: explicit option,
// then $MOVR_GIT_SHA, then the VCS revision embedded by the Go
// toolchain, then "unknown".
func (o Options) gitSHA() string {
	if o.GitSHA != "" {
		return shortSHA(o.GitSHA)
	}
	if env := os.Getenv("MOVR_GIT_SHA"); env != "" {
		return shortSHA(env)
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return shortSHA(s.Value)
			}
		}
	}
	return "unknown"
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// workers resolves the parallelism stamp: explicit option, else the
// suite's pinned width.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return suiteWorkers
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Run executes every spec in order and assembles the report.
func Run(specs []Spec, opts Options) (Report, error) {
	rep := Report{
		SchemaVersion: SchemaVersion,
		GitSHA:        opts.gitSHA(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       opts.workers(),
		CreatedUTC:    time.Now().UTC().Format(time.RFC3339),
	}
	for _, sp := range specs {
		res, err := runOne(sp, opts)
		if err != nil {
			return Report{}, fmt.Errorf("bench %s: %w", sp.Name, err)
		}
		opts.logf("%-24s %12.0f ns/op  %8.1f allocs/op  (p95 %.0f ns)",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.P95Ns)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, nil
}

// runOne measures a single spec: warmup reps, then timed reps with
// MemStats deltas bracketing the measured phase.
func runOne(sp Spec, opts Options) (Result, error) {
	warmup, reps := sp.Warmup, sp.Reps
	if opts.Fast {
		warmup = max(1, warmup/4)
		reps = max(3, reps/4)
	}
	ops := max(1, sp.OpsPerRep)

	if sp.Setup != nil {
		cleanup, err := sp.Setup()
		if err != nil {
			return Result{}, err
		}
		if cleanup != nil {
			defer cleanup()
		}
	}
	for i := 0; i < warmup; i++ {
		if err := sp.Op(); err != nil {
			return Result{}, fmt.Errorf("warmup rep %d: %w", i, err)
		}
	}

	samples := make([]float64, reps) // per-op ns, one sample per rep
	runtime.GC()
	stopCPU, err := startCPUProfile(opts.CPUProfileDir, sp.Name)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := sp.Op(); err != nil {
			stopCPU()
			return Result{}, fmt.Errorf("rep %d: %w", i, err)
		}
		samples[i] = float64(time.Since(start).Nanoseconds()) / float64(ops)
	}
	runtime.ReadMemStats(&after)
	stopCPU()
	if err := writeMemProfile(opts.MemProfileDir, sp.Name); err != nil {
		return Result{}, err
	}

	totalOps := float64(reps) * float64(ops)
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(reps)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	res := Result{
		Name:        sp.Name,
		Reps:        reps,
		OpsPerRep:   ops,
		NsPerOp:     mean,
		P50Ns:       percentile(sorted, 50),
		P95Ns:       percentile(sorted, 95),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / totalOps,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / totalOps,
	}
	if sp.AllocBound > 0 && res.AllocsPerOp > sp.AllocBound {
		return Result{}, fmt.Errorf("%.2f allocs/op exceeds the spec's hard bound of %.0f", res.AllocsPerOp, sp.AllocBound)
	}
	return res, nil
}

// profilePath builds <dir>/<name><suffix>, flattening the '/' that
// benchmark names use as a namespace separator.
func profilePath(dir, name, suffix string) string {
	return filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+suffix)
}

// startCPUProfile begins a per-benchmark CPU profile when dir is set and
// returns the stop function (a no-op otherwise).
func startCPUProfile(dir, name string) (stop func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(profilePath(dir, name, ".cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile %s: %w", name, err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile snapshots the heap after a benchmark's measured reps
// when dir is set. The GC run makes the profile reflect live retention
// rather than whatever garbage the last rep left behind.
func writeMemProfile(dir, name string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(profilePath(dir, name, ".mem.pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// percentile reads the p-th percentile (nearest-rank) from an ascending
// sample set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// FileName returns the report's canonical file name, BENCH_<sha>.json.
func (r Report) FileName() string { return "BENCH_" + r.GitSHA + ".json" }

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Render formats the report as a text table for terminals.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "movr benchmark suite — schema v%d, rev %s, %s %s/%s, %d CPUs (GOMAXPROCS %d, %d workers)\n\n",
		r.SchemaVersion, r.GitSHA, r.GoVersion, r.GOOS, r.GOARCH, r.CPUs, r.GOMAXPROCS, r.Workers)
	fmt.Fprintf(&b, "%-24s %14s %14s %14s %12s %12s\n",
		"benchmark", "ns/op", "p50 ns", "p95 ns", "B/op", "allocs/op")
	for _, res := range r.Benchmarks {
		fmt.Fprintf(&b, "%-24s %14.0f %14.0f %14.0f %12.1f %12.2f\n",
			res.Name, res.NsPerOp, res.P50Ns, res.P95Ns, res.BytesPerOp, res.AllocsPerOp)
	}
	return b.String()
}
