package bench

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// tinySpec is a fast deterministic benchmark for harness tests.
func tinySpec(name string) Spec {
	sink := 0.0
	return Spec{
		Name:      name,
		Warmup:    1,
		Reps:      5,
		OpsPerRep: 10,
		Op: func() error {
			for i := 0; i < 10; i++ {
				sink += math.Sqrt(float64(i))
			}
			return nil
		},
	}
}

func TestRunAndRoundTrip(t *testing.T) {
	rep, err := Run([]Spec{tinySpec("micro/sqrt")}, Options{GitSHA: "deadbeefcafe0123"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Errorf("schema = %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	if rep.GitSHA != "deadbeefcafe" {
		t.Errorf("git sha = %q, want 12-char truncation", rep.GitSHA)
	}
	if rep.FileName() != "BENCH_deadbeefcafe.json" {
		t.Errorf("file name = %q", rep.FileName())
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(rep.Benchmarks))
	}
	res := rep.Benchmarks[0]
	if res.Reps != 5 || res.OpsPerRep != 10 {
		t.Errorf("reps/ops = %d/%d, want 5/10", res.Reps, res.OpsPerRep)
	}
	if res.NsPerOp <= 0 || res.P95Ns < res.P50Ns {
		t.Errorf("suspicious timings: %+v", res)
	}

	path := filepath.Join(t.TempDir(), rep.FileName())
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.GitSHA != rep.GitSHA || len(back.Benchmarks) != 1 || back.Benchmarks[0] != res {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rep)
	}
	if !strings.Contains(rep.Render(), "micro/sqrt") {
		t.Error("Render omits the benchmark name")
	}
}

func TestGitSHAFromEnv(t *testing.T) {
	t.Setenv("MOVR_GIT_SHA", "0123456789abcdef")
	if got := (Options{}).gitSHA(); got != "0123456789ab" {
		t.Errorf("env sha = %q", got)
	}
}

func report(results ...Result) Report {
	return Report{SchemaVersion: SchemaVersion, Benchmarks: results}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 2})
	fresh := report(Result{Name: "a", NsPerOp: 1400, AllocsPerOp: 2})
	c := Compare(base, fresh, DefaultTolerance())
	if !c.OK() {
		t.Fatalf("within-tolerance run failed: %v", c.Regressions)
	}
}

func TestCompareTimeRegressionFails(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 1000})
	fresh := report(Result{Name: "a", NsPerOp: 1600})
	c := Compare(base, fresh, DefaultTolerance())
	if c.OK() {
		t.Fatal("60% slowdown passed a 50% gate")
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 0})
	fresh := report(Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 1})
	c := Compare(base, fresh, DefaultTolerance())
	if c.OK() {
		t.Fatal("new allocation passed a zero-alloc gate")
	}
	// An explicit allowance admits it.
	if c := Compare(base, fresh, Tolerance{TimePct: 50, Allocs: 1}); !c.OK() {
		t.Fatalf("allowance of 1 alloc still failed: %v", c.Regressions)
	}
}

func TestCompareAllocSlackIsCapped(t *testing.T) {
	// Scheduling jitter on a macro benchmark passes...
	base := report(Result{Name: "fleet", NsPerOp: 1, AllocsPerOp: 1028})
	fresh := report(Result{Name: "fleet", NsPerOp: 1, AllocsPerOp: 1028.4})
	if c := Compare(base, fresh, DefaultTolerance()); !c.OK() {
		t.Fatalf("jitter failed the gate: %v", c.Regressions)
	}
	// ...but a real regression of a few allocs/op does not hide in the
	// 1% relative margin: the slack is capped at ~2 allocs/op.
	fresh.Benchmarks[0].AllocsPerOp = 1033
	if c := Compare(base, fresh, DefaultTolerance()); c.OK() {
		t.Fatal("+5 allocs/op passed a zero-tolerance gate")
	}
	// On ten-thousand-alloc entries the cap scales to 0.1% of baseline:
	// pool-scheduling jitter of a few allocs passes, but a regression of
	// one alloc per session (the venue entries run 64 per op) does not.
	base = report(Result{Name: "venue", NsPerOp: 1, AllocsPerOp: 10480})
	fresh = report(Result{Name: "venue", NsPerOp: 1, AllocsPerOp: 10488})
	if c := Compare(base, fresh, DefaultTolerance()); !c.OK() {
		t.Fatalf("+8 allocs/op on a 10k base failed the gate: %v", c.Regressions)
	}
	fresh.Benchmarks[0].AllocsPerOp = 10480 + 64
	if c := Compare(base, fresh, DefaultTolerance()); c.OK() {
		t.Fatal("+64 allocs/op (one per session) passed a zero-tolerance gate")
	}
}

func TestCompareTimeNotEnforcedAcrossHostShapes(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 1000})
	base.CPUs = 1
	fresh := report(Result{Name: "a", NsPerOp: 5000})
	fresh.CPUs = 4
	c := Compare(base, fresh, DefaultTolerance())
	if !c.OK() {
		t.Fatalf("time bound enforced across differing host shapes: %v", c.Regressions)
	}
	if len(c.Notes) == 0 {
		t.Error("cross-host time excess not noted")
	}
	// Allocs stay strict regardless of host shape.
	fresh.Benchmarks[0].AllocsPerOp = 3
	if c := Compare(base, fresh, DefaultTolerance()); c.OK() {
		t.Fatal("alloc regression passed under host-shape mismatch")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report(Result{Name: "a"}, Result{Name: "b"})
	fresh := report(Result{Name: "a"})
	if c := Compare(base, fresh, DefaultTolerance()); c.OK() {
		t.Fatal("shrunken suite passed the gate")
	}
}

func TestCompareNewBenchmarkIsNoted(t *testing.T) {
	base := report(Result{Name: "a"})
	fresh := report(Result{Name: "a"}, Result{Name: "b"})
	c := Compare(base, fresh, DefaultTolerance())
	if !c.OK() {
		t.Fatalf("new benchmark failed the gate: %v", c.Regressions)
	}
	if len(c.Notes) == 0 {
		t.Error("new benchmark not noted")
	}
}

func TestCompareParallelismMismatchRefused(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 1000})
	fresh := report(Result{Name: "a", NsPerOp: 1000})
	base.Workers, fresh.Workers = 2, 4
	if c := Compare(base, fresh, DefaultTolerance()); c.OK() {
		t.Fatal("worker-width mismatch passed the gate")
	}
	// Same hardware class but a different GOMAXPROCS is refused too.
	fresh.Workers = 2
	base.CPUs, fresh.CPUs = 8, 8
	base.GOMAXPROCS, fresh.GOMAXPROCS = 8, 4
	if c := Compare(base, fresh, DefaultTolerance()); c.OK() {
		t.Fatal("GOMAXPROCS mismatch on matching CPUs passed the gate")
	}
	// Across host shapes GOMAXPROCS naturally differs; the host-shape
	// demotion already covers that case, so it is not a refusal.
	base.CPUs = 4
	base.GOMAXPROCS = 4
	if c := Compare(base, fresh, DefaultTolerance()); !c.OK() {
		t.Fatalf("cross-host GOMAXPROCS difference refused: %v", c.Regressions)
	}
}

func TestAllocBoundEnforcedAtRunTime(t *testing.T) {
	sink := make([][]byte, 0, 16)
	sp := Spec{
		Name:       "micro/alloc",
		Warmup:     1,
		Reps:       3,
		AllocBound: 0.5,
		Op: func() error {
			sink = append(sink[:0], make([]byte, 1))
			return nil
		},
	}
	if _, err := Run([]Spec{sp}, Options{GitSHA: "test"}); err == nil {
		t.Fatal("allocating op passed a 0.5 allocs/op hard bound")
	}
	sp.AllocBound = 1000
	if _, err := Run([]Spec{sp}, Options{GitSHA: "test"}); err != nil {
		t.Fatalf("op within its alloc bound failed: %v", err)
	}
}

func TestProfileDirsWritten(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run([]Spec{tinySpec("micro/prof")},
		Options{GitSHA: "test", CPUProfileDir: dir, MemProfileDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(rep.Benchmarks))
	}
	for _, name := range []string{"micro_prof.cpu.pprof", "micro_prof.mem.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

func TestReportStampsParallelism(t *testing.T) {
	rep, err := Run([]Spec{tinySpec("micro/stamp")}, Options{GitSHA: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != suiteWorkers {
		t.Errorf("workers = %d, want suite default %d", rep.Workers, suiteWorkers)
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", rep.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if rep, err = Run(nil, Options{GitSHA: "test", Workers: 7}); err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 7 {
		t.Errorf("explicit workers stamp = %d, want 7", rep.Workers)
	}
}

func TestCompareSchemaMismatchFails(t *testing.T) {
	base := report()
	base.SchemaVersion = SchemaVersion + 1
	if c := Compare(base, report(), DefaultTolerance()); c.OK() {
		t.Fatal("schema mismatch passed the gate")
	}
}

// TestSuiteShape pins the named suite: the stable benchmark names the
// committed baseline keys on.
func TestSuiteShape(t *testing.T) {
	want := []string{
		"tracer/office2b", "linkmgr/step", "coex/snapshot", "fig9/trial",
		"obs/record", "obs/off",
		"fleet/mixed", "fleet/arcade", "fleet/home", "fleet/dense",
		"fleet/coex", "fleet/coexpf", "fleet/coexedf", "fleet/venue",
		"fleet/venue16x4", "fleet/venue16x4w4",
		"server/aggregate_stream",
		"movrd/submit",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite size = %d, want %d", len(suite), len(want))
	}
	for i, sp := range suite {
		if sp.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, sp.Name, want[i])
		}
		if sp.Reps <= 0 || sp.Op == nil {
			t.Errorf("suite[%d] %q has no work", i, sp.Name)
		}
	}
}

// TestSuiteTracerRuns executes the cheapest real suite entries end to
// end (fast mode) so a broken benchmark cannot reach CI unnoticed.
func TestSuiteTracerRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full ops per rep; skip in -short")
	}
	var specs []Spec
	for _, sp := range Suite() {
		if sp.Name == "tracer/office2b" || sp.Name == "linkmgr/step" {
			specs = append(specs, sp)
		}
	}
	rep, err := Run(specs, Options{Fast: true, GitSHA: "test"})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Benchmarks {
		if res.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", res.Name, res.NsPerOp)
		}
		// The tentpole promise: the tracer and tracking step hot paths
		// are allocation-free in steady state (small slack for runtime
		// background allocations landing in the measured window).
		if res.AllocsPerOp > 0.05 {
			t.Errorf("%s: allocs/op = %.3f, want ~0", res.Name, res.AllocsPerOp)
		}
	}
}
