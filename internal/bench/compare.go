package bench

import (
	"fmt"
	"strings"
)

// Tolerance bounds how much a fresh run may regress against the
// baseline before the gate fails.
type Tolerance struct {
	// TimePct is the allowed ns/op increase in percent. Wall time is
	// machine-sensitive, so the gate default is generous (50) — large
	// enough to absorb CI-runner noise, small enough to catch a hot path
	// going quadratic.
	TimePct float64

	// Allocs is the allowed absolute allocs/op increase. Allocation
	// counts are machine-independent, so the default is 0: a hot path
	// that starts allocating fails the gate outright.
	Allocs float64
}

// DefaultTolerance returns the gate defaults.
func DefaultTolerance() Tolerance { return Tolerance{TimePct: 50, Allocs: 0} }

// allocNoiseFloor absorbs background runtime allocations (timer wheel,
// GC bookkeeping) that occasionally land inside a measured window and
// show up as milli-allocs per op in batched micro-benchmarks. A real
// regression adds at least one allocation per operation — orders of
// magnitude above this floor.
const allocNoiseFloor = 0.01

// allocSlack is the noise margin of an alloc comparison against baseline
// value ba: the absolute floor plus 1% relative, capped at 2 allocs/op
// or 0.1% of the baseline, whichever is larger. The relative term
// absorbs the goroutine-scheduling jitter of the macro benchmarks —
// observed at a handful of allocs per op on the ten-thousand-alloc
// venue entries, where worker overlap decides how many pooled scratch
// buffers get re-created after the pre-measurement GC — while the cap
// keeps the guarantee tight: a real regression adds at least one
// allocation per step, and every macro benchmark runs tens of steps
// (the venue entries, 64 sessions) per op, far above 0.1%.
func allocSlack(ba float64) float64 {
	rel := 0.01 * ba
	lim := 2.0
	if scaled := 0.001 * ba; scaled > lim {
		lim = scaled
	}
	if rel > lim {
		rel = lim
	}
	return allocNoiseFloor + rel
}

// Delta is one benchmark's movement between baseline and fresh run,
// reported for every suite entry whether or not a bound was violated.
type Delta struct {
	// Name is the suite entry.
	Name string

	// BaseNsPerOp and FreshNsPerOp are the per-op wall times; BaseNsPerOp
	// is zero when the benchmark is new in the fresh run.
	BaseNsPerOp, FreshNsPerOp float64

	// Pct is the relative time change in percent, negative for
	// improvements; meaningless when New.
	Pct float64

	// BaseAllocs and FreshAllocs are the per-op allocation counts.
	BaseAllocs, FreshAllocs float64

	// New marks a benchmark present only in the fresh run (not gated).
	New bool
}

// Comparison is the outcome of holding a fresh report against a
// baseline.
type Comparison struct {
	// Regressions fails the gate: one line per violated bound.
	Regressions []string

	// Notes are informational (new benchmarks, improvements).
	Notes []string

	// Deltas holds one entry per benchmark, in baseline order with
	// fresh-only entries appended — the full movement table, not just
	// the violations.
	Deltas []Delta
}

// OK reports whether the fresh run passed.
func (c Comparison) OK() bool { return len(c.Regressions) == 0 }

// Render formats the comparison for terminals: the per-entry delta
// table (every benchmark's baseline vs fresh ns/op and relative
// change), then notes, then any violated bounds, then the verdict.
func (c Comparison) Render() string {
	var b strings.Builder
	if len(c.Deltas) > 0 {
		fmt.Fprintf(&b, "%-24s %15s %15s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
		for _, d := range c.Deltas {
			if d.New {
				fmt.Fprintf(&b, "%-24s %15s %15.0f %9s\n", d.Name, "—", d.FreshNsPerOp, "new")
				continue
			}
			fmt.Fprintf(&b, "%-24s %15.0f %15.0f %+8.1f%%\n", d.Name, d.BaseNsPerOp, d.FreshNsPerOp, d.Pct)
		}
	}
	for _, n := range c.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, r := range c.Regressions {
		fmt.Fprintf(&b, "REGRESSION: %s\n", r)
	}
	if c.OK() {
		b.WriteString("bench gate: PASS\n")
	} else {
		fmt.Fprintf(&b, "bench gate: FAIL (%d regressions)\n", len(c.Regressions))
	}
	return b.String()
}

// Compare holds fresh against baseline under the tolerance. Every
// baseline benchmark must be present in fresh (a shrunken suite cannot
// silently pass); benchmarks new in fresh are noted, not gated.
func Compare(baseline, fresh Report, tol Tolerance) Comparison {
	var c Comparison
	if baseline.SchemaVersion != fresh.SchemaVersion {
		c.Regressions = append(c.Regressions, fmt.Sprintf(
			"schema version mismatch: baseline v%d vs fresh v%d — re-baseline with `movrsim bench`",
			baseline.SchemaVersion, fresh.SchemaVersion))
		return c
	}
	// Parallelism mismatches are refused outright, not demoted: per-op
	// wall time depends directly on how many sessions run concurrently,
	// so numbers from runs with different worker widths — or different
	// GOMAXPROCS on the same hardware class — measure different
	// workloads, and neither the time nor the alloc comparison means
	// anything.
	if baseline.Workers != fresh.Workers {
		c.Regressions = append(c.Regressions, fmt.Sprintf(
			"parallelism mismatch: baseline ran with %d workers, fresh with %d — reports are not comparable; re-baseline",
			baseline.Workers, fresh.Workers))
		return c
	}
	if baseline.CPUs == fresh.CPUs && baseline.GOMAXPROCS != fresh.GOMAXPROCS {
		c.Regressions = append(c.Regressions, fmt.Sprintf(
			"parallelism mismatch: same CPU count but baseline GOMAXPROCS=%d vs fresh %d — reports are not comparable; re-baseline",
			baseline.GOMAXPROCS, fresh.GOMAXPROCS))
		return c
	}
	// Wall-time bounds only mean what they say when baseline and fresh
	// ran on comparable hardware. On a host-shape mismatch the ns/op
	// comparisons are demoted to advisory notes — a baseline from a
	// developer laptop must not hard-fail CI runners (or vice versa) —
	// while the machine-independent allocs/op gate stays strict. Commit
	// a baseline generated on gate-class hardware to arm the time gate.
	enforceTime := baseline.CPUs == fresh.CPUs &&
		baseline.GOOS == fresh.GOOS && baseline.GOARCH == fresh.GOARCH
	if !enforceTime {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"host shape differs from baseline (%d CPUs %s/%s vs %d CPUs %s/%s): ns/op bounds reported but not enforced — re-baseline on gate-class hardware to arm the time gate",
			fresh.CPUs, fresh.GOOS, fresh.GOARCH, baseline.CPUs, baseline.GOOS, baseline.GOARCH))
	}
	freshByName := make(map[string]Result, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		freshByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		baseNames[base.Name] = true
		got, ok := freshByName[base.Name]
		if !ok {
			c.Regressions = append(c.Regressions, fmt.Sprintf(
				"%s: present in baseline but missing from the fresh run", base.Name))
			continue
		}
		d := Delta{
			Name:         base.Name,
			BaseNsPerOp:  base.NsPerOp,
			FreshNsPerOp: got.NsPerOp,
			BaseAllocs:   base.AllocsPerOp,
			FreshAllocs:  got.AllocsPerOp,
		}
		if base.NsPerOp > 0 {
			d.Pct = 100 * (got.NsPerOp - base.NsPerOp) / base.NsPerOp
		}
		c.Deltas = append(c.Deltas, d)
		if limit := base.NsPerOp * (1 + tol.TimePct/100); got.NsPerOp > limit {
			msg := fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%% (limit %.0f)",
				base.Name, got.NsPerOp, base.NsPerOp, tol.TimePct, limit)
			if enforceTime {
				c.Regressions = append(c.Regressions, msg)
			} else {
				c.Notes = append(c.Notes, msg+" [not enforced: host shape differs]")
			}
		}
		if ga, ba := got.AllocsPerOp, base.AllocsPerOp; ga > ba+tol.Allocs+allocSlack(ba) {
			c.Regressions = append(c.Regressions, fmt.Sprintf(
				"%s: %.2f allocs/op exceeds baseline %.2f (+%.2f allowed)",
				base.Name, ga, ba, tol.Allocs+allocSlack(ba)))
		}
		if base.NsPerOp > 0 && got.NsPerOp < base.NsPerOp*0.8 {
			c.Notes = append(c.Notes, fmt.Sprintf(
				"%s: improved %.0f → %.0f ns/op; consider re-baselining",
				base.Name, base.NsPerOp, got.NsPerOp))
		}
	}
	for _, r := range fresh.Benchmarks {
		if !baseNames[r.Name] {
			c.Notes = append(c.Notes, fmt.Sprintf(
				"%s: new benchmark (not in baseline, not gated)", r.Name))
			c.Deltas = append(c.Deltas, Delta{
				Name: r.Name, FreshNsPerOp: r.NsPerOp, FreshAllocs: r.AllocsPerOp, New: true,
			})
		}
	}
	return c
}
