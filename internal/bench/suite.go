package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/fleet"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/linkmgr"
	"github.com/movr-sim/movr/internal/obs"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/server"
	"github.com/movr-sim/movr/internal/stream"
	"github.com/movr-sim/movr/internal/vr"
)

// suiteWorkers pins the worker-pool width every parallel benchmark uses,
// so reports from machines with different core counts stay comparable.
const suiteWorkers = 2

// Suite returns the named benchmark suite in report order. Benchmark
// workloads are fixed — Options.Fast trims only repetition counts — so
// any two reports compare per-op like for like. The per-scenario fleet
// entries cover every generator kind, the coex airtime-policy family
// (fleet/coex, fleet/coexpf, fleet/coexedf) included, so a policy that
// starts allocating per window or regressing the scheduler hot path
// trips the bench gate.
func Suite() []Spec {
	specs := []Spec{tracerSpec(), linkmgrSpec(), coexSnapshotSpec(), fig9Spec(), obsRecordSpec(), obsOffSpec()}
	for _, kind := range fleet.Kinds {
		specs = append(specs, fleetSpec(kind))
	}
	return append(specs,
		venueSpec("fleet/venue16x4", suiteWorkers),
		venueSpec("fleet/venue16x4w4", 4),
		aggregateStreamSpec(), movrdSpec())
}

// tracerSpec measures one steady-state TraceHInto in the furnished
// office at full reflection order with two blockers standing — the
// innermost loop of every experiment, which the tentpole refactor made
// allocation-free.
func tracerSpec() Spec {
	rm := room.NewOffice5x5()
	rm.AddObstacle(room.Hand(geom.V(2.2, 2.0)))
	rm.AddObstacle(room.Body(geom.V(3.1, 3.4)))
	budget := channel.DefaultBudget()
	tr := channel.NewTracer(rm, budget.FreqHz, 2)
	tx, rx := geom.V(0.5, 0.5), geom.V(4.2, 3.7)
	var buf []channel.Path
	return Spec{
		Name:      "tracer/office2b",
		Warmup:    5,
		Reps:      30,
		OpsPerRep: 2000,
		Op: func() error {
			for i := 0; i < 2000; i++ {
				buf = tr.TraceHInto(buf[:0], tx, rx, channel.HeightAPM, channel.HeightHeadsetM)
			}
			if len(buf) == 0 {
				return fmt.Errorf("no paths traced")
			}
			return nil
		},
	}
}

// linkmgrSpec measures one pose-tracking controller step (direct +
// reflector evaluation including gain control) — the per-timestep cost of
// every live session.
func linkmgrSpec() Spec {
	rm := room.NewOffice5x5()
	rm.AddObstacle(room.Body(geom.V(2.4, 2.6)))
	budget := channel.DefaultBudget()
	tr := channel.NewTracer(rm, budget.FreqHz, 1)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), budget)
	hs := radio.NewHeadset(geom.V(3.4, 2.4), antenna.Default(60), budget)
	mgr := linkmgr.New(tr, ap, hs)
	dev := reflector.Default(geom.V(4.6, 4.6), 225)
	link := control.NewLink(reflector.NewController(dev), 0, 0, 1)
	idx := mgr.AddReflector(dev, link)
	step := 0
	return Spec{
		Name:      "linkmgr/step",
		Warmup:    3,
		Reps:      20,
		OpsPerRep: 50,
		Setup: func() (func(), error) {
			return nil, mgr.AlignFromGeometry(idx)
		},
		Op: func() error {
			for i := 0; i < 50; i++ {
				step++
				st := mgr.Step(geom.V(3.4, 2.4), float64(40+step%40))
				if st.SNRdB == 0 {
					return fmt.Errorf("no link state")
				}
			}
			return nil
		},
	}
}

// coexSnapshotSpec measures the room-owned geometry snapshot layer:
// building the full pose table and window-schedule table for a
// four-player shared bay (coex.BuildGeometry — one airtime-policy
// evaluation per window over the horizon) and then serving one
// session's schedule reads from it across every window. This is the
// per-room cost the fleet generator pays once so its sessions stop
// re-running the policy N times per window.
func coexSnapshotSpec() Spec {
	const dur = 2 * time.Second
	traces := make([]vr.Trace, 4)
	var genErr error
	for i := range traces {
		trCfg := vr.DefaultTraceConfig(8, 8, int64(20+i))
		trCfg.Duration = dur
		traces[i], genErr = vr.Generate(trCfg)
		if genErr != nil {
			break
		}
	}
	rm := coex.Room{
		Players:    traces,
		Period:     50 * time.Millisecond,
		Policy:     coex.PolicyPF,
		UplinkSlot: 300 * time.Microsecond,
	}
	return Spec{
		Name:   "coex/snapshot",
		Warmup: 3,
		Reps:   20,
		Op: func() error {
			if genErr != nil {
				return genErr
			}
			geo, err := experiments.BuildCoexGeometry(rm, dur)
			if err != nil {
				return err
			}
			snap := rm
			snap.Geometry = geo
			s, err := coex.NewScheduler(snap, experiments.APPos)
			if err != nil {
				return err
			}
			sum := 0.0
			for t := time.Duration(0); t < dur; t += time.Millisecond {
				sum += s.Share(t)
			}
			if sum <= 0 {
				return fmt.Errorf("schedule never granted airtime")
			}
			return nil
		},
	}
}

// fig9Spec measures a reduced Fig 9 trial set (the §5.2 SNR-improvement
// study): placement, LOS read, Opt-NLOS sweep, and MoVR reflector
// evaluation per trial.
func fig9Spec() Spec {
	cfg := experiments.Fig9Config{Runs: 2, NLOSStepDeg: 6, Seed: 1, Workers: 1}
	return Spec{
		Name:   "fig9/trial",
		Warmup: 2,
		Reps:   10,
		Op: func() error {
			res, err := experiments.Fig9Context(context.Background(), cfg)
			if err != nil {
				return err
			}
			if len(res.MoVRImp) != cfg.Runs {
				return fmt.Errorf("trial count = %d, want %d", len(res.MoVRImp), cfg.Runs)
			}
			return nil
		},
	}
}

// obsRecordSpec prices one enabled-recorder Emit in steady state — the
// marginal cost tracing adds to every instrumented event site once the
// ring buffer has wrapped. Pairs with obs/off below to show the
// enabled-vs-disabled overhead in one report.
func obsRecordSpec() Spec {
	rec := obs.NewRecorder(1024)
	return Spec{
		Name:      "obs/record",
		Warmup:    3,
		Reps:      20,
		OpsPerRep: 100000,
		Op: func() error {
			for i := 0; i < 100000; i++ {
				rec.EmitAt(time.Duration(i), obs.KindFrameOK, int32(i), 0, 0.5, 0)
			}
			if rec.Len() == 0 {
				return fmt.Errorf("recorder captured nothing")
			}
			return nil
		},
	}
}

// obsOffSpec prices the same event site with tracing disabled: every
// instrumented package calls through a nil *Recorder, so this is the
// cost untraced production runs pay — it must stay at a nil check.
func obsOffSpec() Spec {
	var rec *obs.Recorder
	return Spec{
		Name:      "obs/off",
		Warmup:    3,
		Reps:      20,
		OpsPerRep: 100000,
		Op: func() error {
			for i := 0; i < 100000; i++ {
				rec.EmitAt(time.Duration(i), obs.KindFrameOK, int32(i), 0, 0.5, 0)
			}
			if rec.Len() != 0 {
				return fmt.Errorf("nil recorder captured events")
			}
			return nil
		},
	}
}

// fleetSpec measures a small fleet run of the given scenario kind: spec
// generation plus concurrent session simulation and aggregation.
func fleetSpec(kind fleet.Kind) Spec {
	cfg := fleet.ScenarioConfig{
		Seed:         1,
		Duration:     500 * time.Millisecond,
		ReEvalPeriod: 50 * time.Millisecond,
	}
	specs, specErr := kind.Specs(4, cfg)
	return Spec{
		Name:   "fleet/" + string(kind),
		Warmup: 2,
		Reps:   10,
		Op: func() error {
			if specErr != nil {
				return specErr
			}
			res, err := fleet.Run(context.Background(), specs, fleet.Config{Workers: suiteWorkers})
			if err != nil {
				return err
			}
			if res.Agg.Sessions != len(specs) {
				return fmt.Errorf("sessions = %d, want %d", res.Agg.Sessions, len(specs))
			}
			return nil
		},
	}
}

// venueSpec measures the venue scenario at its quickstart scale — 16
// bays × 4 players, 64 sessions — through the streaming collector, the
// aggregation path venue jobs default to (StreamCollectorFor keeps RSS
// constant however many bays the venue grows). The run covers the whole
// venue pipeline: bay grid layout, greedy channel coloring, per-bay
// geometry snapshots, cross-bay interference tables, and the penalized
// bay-batched session simulations. The suite carries it at two pinned
// worker widths (fleet/venue16x4 at the suite default, fleet/venue16x4w4
// at 4 workers) so scaling regressions in the bay-batched pool path show
// up; each entry's width is part of its name, keeping every cross-report
// comparison like for like. The alloc bound is a hard run-time ceiling
// set at the pre-bay-batching baseline (~21.5k allocs/op): the scratch
// reuse that batching bought must never silently erode past where the
// per-session path started.
func venueSpec(name string, workers int) Spec {
	cfg := fleet.ScenarioConfig{
		Seed:         1,
		Duration:     500 * time.Millisecond,
		ReEvalPeriod: 50 * time.Millisecond,
	}
	specs, specErr := fleet.Venue(16, 4, cfg)
	return Spec{
		Name:       name,
		Warmup:     1,
		Reps:       5,
		AllocBound: 21500,
		Op: func() error {
			if specErr != nil {
				return specErr
			}
			col := fleet.StreamCollectorFor(specs)
			res, err := fleet.RunCollect(context.Background(), specs, fleet.Config{Workers: workers}, col)
			if err != nil {
				return err
			}
			if res.Agg.Sessions != len(specs) || len(specs) != 64 {
				return fmt.Errorf("sessions = %d of %d specs, want 64", res.Agg.Sessions, len(specs))
			}
			return nil
		},
	}
}

// aggregateStreamSpec prices one session fold into the streaming
// collector — the per-session cost that replaces holding a
// SessionOutcome in memory when a job runs with agg:"stream". The fold
// is the constant-memory guarantee's hot path, so it must stay
// allocation-free: the suite's zero alloc-regression gate pins it at 0
// allocs/op.
func aggregateStreamSpec() Spec {
	var col *fleet.StreamCollector
	outcome := fleet.SessionOutcome{
		ID: "bench/s0",
		Report: stream.Report{
			Frames:        7200,
			Delivered:     7000,
			Glitches:      200,
			GlitchFrac:    200.0 / 7200,
			LongestOutage: 120 * time.Millisecond,
			TotalOutage:   340 * time.Millisecond,
		},
		DeliveredFrac: 7000.0 / 7200,
		Handoffs:      3,
	}
	return Spec{
		Name:      "server/aggregate_stream",
		Warmup:    3,
		Reps:      20,
		OpsPerRep: 100000,
		Setup: func() (func(), error) {
			col = fleet.NewStreamCollector(10)
			return nil, nil
		},
		Op: func() error {
			for i := 0; i < 100000; i++ {
				col.Add(i, outcome)
			}
			if col.Result().Stream.Sessions == 0 {
				return fmt.Errorf("collector folded nothing")
			}
			return nil
		},
	}
}

// movrdSpec measures the daemon's submit→result round trip in process:
// spec decode, normalization and hashing, scheduling onto the shared
// pool, fleet execution, result encoding — everything but the TCP socket.
// Every repetition submits a distinct seed, so the result cache never
// short-circuits the work being measured.
func movrdSpec() Spec {
	var srv *server.Server
	seed := 0
	return Spec{
		Name:   "movrd/submit",
		Warmup: 2,
		Reps:   10,
		Setup: func() (func(), error) {
			var err error
			srv, err = server.New(server.Options{Workers: suiteWorkers})
			if err != nil {
				return nil, err
			}
			return srv.Close, nil
		},
		Op: func() error {
			seed++
			body := fmt.Sprintf(
				`{"kind":"fleet","fleet":{"scenario":"home","sessions":2,"seed":%d,"duration_ms":200}}`, seed)
			req := httptest.NewRequest("POST", "/v1/jobs?wait=1", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				return fmt.Errorf("submit returned %d: %s", rec.Code, rec.Body.String())
			}
			var view struct {
				State  string `json:"state"`
				Cached bool   `json:"cached"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
				return err
			}
			if view.State != "done" {
				return fmt.Errorf("job state = %q, want done", view.State)
			}
			if view.Cached {
				return fmt.Errorf("job unexpectedly served from cache")
			}
			return nil
		},
	}
}
