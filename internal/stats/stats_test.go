package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	// Sample std dev of the classic data set is ~2.138.
	if s := StdDev(xs); math.Abs(s-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummary(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := c.Quantile(1); q != 4 {
		t.Errorf("Quantile(1) = %v", q)
	}
	xs, ps := c.Points()
	if len(xs) != 4 || len(ps) != 4 || ps[3] != 1 {
		t.Errorf("Points = %v %v", xs, ps)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("histogram shapes: %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d", total)
	}
	// Degenerate all-equal sample still bins.
	_, counts = Histogram([]float64{2, 2, 2}, 3)
	if counts[0] != 3 {
		t.Errorf("degenerate histogram = %v", counts)
	}
	if e, c := Histogram(nil, 4); e != nil || c != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Errorf("fit = %v, %v", slope, intercept)
	}
	if s, _ := LinearFit([]float64{1}, []float64{2}); !math.IsNaN(s) {
		t.Error("underdetermined fit should be NaN")
	}
	if s, _ := LinearFit([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(s) {
		t.Error("zero-variance fit should be NaN")
	}
}

func TestErrors(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 5}
	if got := MeanAbsError(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("MAE = %v", got)
	}
	if got := MaxAbsError(a, b); got != 2 {
		t.Errorf("MaxAE = %v", got)
	}
	if !math.IsNaN(MeanAbsError(a, b[:2])) {
		t.Error("length mismatch should be NaN")
	}
}

// Property: CDF is monotonically nondecreasing.
func TestQuickCDFMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	c := NewCDF(xs)
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is bounded by min and max and monotone in p.
func TestQuickPercentileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 57)
	for i := range xs {
		xs[i] = rng.Float64()*200 - 100
	}
	f := func(p1, p2 float64) bool {
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if math.IsNaN(p1) || math.IsNaN(p2) {
			return true
		}
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2+1e-12 && v1 >= Min(xs)-1e-12 && v2 <= Max(xs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are approximate inverses on the sample points.
func TestQuickQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sort.Float64s(xs)
	c := NewCDF(xs)
	for i, x := range xs {
		q := float64(i+1) / float64(len(xs))
		if got := c.Quantile(q); math.Abs(got-x) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, x)
		}
	}
}
