// Package stats provides the small statistical toolkit the experiment
// harness uses to summarize Monte-Carlo runs: means, percentiles,
// empirical CDFs, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n−1 denominator),
// or 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest value in xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary aggregates the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P25:    Percentile(xs, 25),
		Median: Median(xs),
		P75:    Percentile(xs, 75),
		P95:    Percentile(xs, 95),
		Max:    Max(xs),
	}
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input slice is
// not modified.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples backing the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v such that At(v) ≥ q, for
// q in (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns the step points of the CDF as parallel slices of sample
// values and cumulative probabilities, suitable for plotting.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	xs = append([]float64(nil), c.sorted...)
	ps = make([]float64, n)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// Histogram bins the sample xs into n equal-width bins spanning
// [min, max]. It returns the bin edges (n+1 values) and counts (n values).
// An empty sample or non-positive n yields nil slices.
func Histogram(xs []float64, n int) (edges []float64, counts []int) {
	if len(xs) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	counts = make([]int, n)
	for _, x := range xs {
		i := int((x - lo) / (hi - lo) * float64(n))
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	return edges, counts
}

// LinearFit returns the slope and intercept of the least-squares line
// through (xs[i], ys[i]). It returns NaNs when the fit is undefined
// (fewer than two points, mismatched lengths, or zero variance in xs).
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// MeanAbsError returns the mean absolute difference between parallel
// slices a and b, or NaN when the lengths differ or are zero.
func MeanAbsError(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// MaxAbsError returns the maximum absolute difference between parallel
// slices a and b, or NaN when the lengths differ or are zero.
func MaxAbsError(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
