package fleet

import (
	"context"
	"testing"

	"github.com/movr-sim/movr/internal/coex"
)

// Golden coexistence results: the shared-room pipeline — trace
// generation, room-owned geometry snapshot, TDMA scheduling, peer-body
// blockage, streaming — is deterministic end to end, so the pinned
// seed-7 bay must reproduce these exact frame counts on every run and
// after every refactor. The values were frozen from the pre-snapshot
// implementation; the room-owned Geometry and the temporally coherent
// path cache must not move them by a single frame.

// coexGolden pins per-session (frames, delivered) under each policy.
var coexGolden = map[coex.PolicyName]struct {
	mean      float64
	delivered [4]int
}{
	coex.PolicyRR:  {mean: 0.097222222222222224, delivered: [4]int{0, 35, 0, 35}},
	coex.PolicyPF:  {mean: 0.14999999999999999, delivered: [4]int{0, 108, 0, 0}},
	coex.PolicyEDF: {mean: 0.12916666666666665, delivered: [4]int{0, 41, 0, 52}},
}

func TestCoexGoldenSeed7Frozen(t *testing.T) {
	for policy, want := range coexGolden {
		cfg := coexTestCfg()
		if policy != coex.PolicyRR {
			cfg.CoexPolicy = policy
		}
		res, err := Run(context.Background(), Coex(1, 4, cfg), Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Agg.DeliveredFrac.Mean; got != want.mean {
			t.Errorf("%s: mean delivered %.17g, golden %.17g", policy, got, want.mean)
		}
		if len(res.Sessions) != 4 {
			t.Fatalf("%s: %d sessions, want 4", policy, len(res.Sessions))
		}
		for i, r := range res.Sessions {
			if r.Report.Frames != 180 {
				t.Errorf("%s session %s: %d frames, golden 180", policy, r.ID, r.Report.Frames)
			}
			if r.Report.Delivered != want.delivered[i] {
				t.Errorf("%s session %s: %d delivered, golden %d", policy, r.ID, r.Report.Delivered, want.delivered[i])
			}
		}
	}
}

// TestCoexGeometryOnOffByteIdentical is the tentpole's end-to-end
// equivalence pin: a bay whose sessions read the room-owned geometry
// snapshot must produce byte-identical streaming reports to the same
// bay with the snapshot stripped (live per-session evaluation) — every
// field of every session's report, not just the aggregate.
func TestCoexGeometryOnOffByteIdentical(t *testing.T) {
	cfg := coexTestCfg()
	withGeo := Coex(1, 4, cfg)

	without := make([]Spec, len(withGeo))
	for i, sp := range withGeo {
		rm := *sp.Session.Coex
		if rm.Geometry == nil {
			t.Fatalf("session %q: fleet generator attached no room geometry", sp.ID)
		}
		rm.Geometry = nil
		sp.Session.Coex = &rm
		without[i] = sp
	}

	resGeo, err := Run(context.Background(), withGeo, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resLive, err := Run(context.Background(), without, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resGeo.Sessions) != len(resLive.Sessions) {
		t.Fatalf("%d vs %d sessions", len(resGeo.Sessions), len(resLive.Sessions))
	}
	for i := range resGeo.Sessions {
		g, l := resGeo.Sessions[i], resLive.Sessions[i]
		if g.ID != l.ID {
			t.Fatalf("session order diverged: %q vs %q", g.ID, l.ID)
		}
		if g.Report != l.Report {
			t.Errorf("session %q: snapshot report %+v != live report %+v", g.ID, g.Report, l.Report)
		}
		if g.Handoffs != l.Handoffs {
			t.Errorf("session %q: snapshot handoffs %d != live %d", g.ID, g.Handoffs, l.Handoffs)
		}
	}
}
