// Package fleet is the concurrent multi-session simulation engine: it
// runs N independent VR sessions — distinct rooms, seeds, reflector
// deployments, and motion traces — across a bounded worker pool and
// aggregates their streaming reports into fleet-level statistics
// (delivered-rate percentiles, blockage-outage time, reflector-handoff
// counts).
//
// Determinism is a hard guarantee: every session is seeded and fully
// self-contained (its own world, devices, and trace), outcomes land in
// spec order whatever worker computed them, and aggregation walks that
// order — so the same spec set yields byte-identical results for any
// worker count. This is the load-bearing property that lets the test
// suite compare a 1-worker run against an 8-worker run bit for bit.
//
// The scenario generators in scenario.go build spec sets for deployments
// beyond the paper's single office: arcades with many headsets per room,
// homes with one headset per room across many rooms, and dense-blocker
// stress rooms.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/fleet/pool"
	"github.com/movr-sim/movr/internal/stats"
	"github.com/movr-sim/movr/internal/stream"
)

// Spec describes one independent VR session in the fleet.
type Spec struct {
	// ID labels the session in reports (e.g. "arcade/r0/h2").
	ID string

	// Variant is the system variant under test; empty means the paper's
	// §6 pose-tracking proposal.
	Variant experiments.SessionVariant

	// Session is the full per-session configuration: room footprint,
	// reflector mounts, blockers, motion seed, duration.
	Session experiments.SessionConfig
}

// Config tunes a fleet run.
type Config struct {
	// Workers bounds the session parallelism (<= 0 means GOMAXPROCS).
	// The worker count never changes results, only wall-clock time.
	Workers int

	// Runner, when non-nil, executes sessions on a shared persistent
	// pool instead of an ephemeral one, so many concurrent fleet runs
	// together never exceed the Runner's capacity — the movrd job
	// scheduler multiplexes every API job onto a single Runner. Workers
	// is ignored when Runner is set. Results are identical either way.
	Runner *pool.Runner

	// OnSession, when non-nil, is invoked once per session as it
	// completes, from the worker goroutine that ran it — the hook the
	// movrd event stream and progress bars build on. Sessions complete
	// in arbitrary order, so the callback must be safe for concurrent
	// use; done is the number of sessions finished so far (including
	// this one) and total is len(specs). The callback never changes
	// results.
	OnSession func(done, total int, outcome SessionOutcome)

	// DisableBayBatch forces every session through the per-session
	// execution path even when consecutive specs form a batchable bay.
	// Results are byte-identical either way (the property tests pin
	// this); the switch exists for those tests and for A/B timing.
	DisableBayBatch bool
}

// SessionOutcome is one session's result.
type SessionOutcome struct {
	ID      string
	Seed    int64
	Variant experiments.SessionVariant

	// Report is the session's frame-delivery report.
	Report stream.Report

	// Handoffs counts serving-path switches during the session.
	Handoffs int

	// DeliveredFrac is Report.Delivered / Report.Frames.
	DeliveredFrac float64
}

// Quantiles summarizes one per-session metric across the fleet.
type Quantiles struct {
	P50, P95, P99, Mean, Min, Max float64
}

// quantilesOf computes the summary; stats.Percentile sorts a copy, so
// the input order — and therefore the worker count — cannot matter.
func quantilesOf(xs []float64) Quantiles {
	return Quantiles{
		P50:  stats.Percentile(xs, 50),
		P95:  stats.Percentile(xs, 95),
		P99:  stats.Percentile(xs, 99),
		Mean: stats.Mean(xs),
		Min:  stats.Min(xs),
		Max:  stats.Max(xs),
	}
}

// Aggregate is the fleet-level statistic set.
type Aggregate struct {
	Sessions int

	// Frames, Delivered and Glitches are fleet-wide totals.
	Frames, Delivered, Glitches int

	// DeliveredFrac summarizes per-session delivered-frame fractions.
	DeliveredFrac Quantiles

	// GlitchFrac summarizes per-session glitch fractions.
	GlitchFrac Quantiles

	// OutageSeconds summarizes per-session total blockage-outage time.
	OutageSeconds Quantiles

	// WorstOutage is the longest single outage across every session.
	WorstOutage time.Duration

	// Handoffs summarizes per-session reflector-handoff counts;
	// TotalHandoffs is the fleet-wide sum.
	Handoffs      Quantiles
	TotalHandoffs int
}

// Result is a completed fleet run.
type Result struct {
	// Sessions holds per-session outcomes in spec order. Streaming-
	// collector runs keep only constant-size sketch state and leave
	// Sessions nil (folded away in JSON).
	Sessions []SessionOutcome `json:",omitempty"`

	// Agg is the fleet-level aggregate over Sessions.
	Agg Aggregate

	// Stream is the mergeable sketch state of a streaming-collector
	// run: what sharded jobs carry so their aggregates can be merged.
	// Nil on the exact path.
	Stream *StreamState `json:",omitempty"`
}

// Run simulates every spec across the worker pool and aggregates the
// outcomes through the exact collector — every outcome retained in
// spec order. The same specs produce byte-identical Results for any
// cfg.Workers; the first failing session cancels the rest and is
// returned as the error.
func Run(ctx context.Context, specs []Spec, cfg Config) (Result, error) {
	return RunCollect(ctx, specs, cfg, NewExactCollector(len(specs)))
}

// RunCollect simulates every spec across the worker pool, feeding each
// outcome to col as it completes, and returns col's Result. With an
// ExactCollector this is exactly Run; with a StreamCollector the run
// holds constant memory whatever len(specs) — no per-session slice is
// ever allocated. A nil col defaults to the exact collector.
func RunCollect(ctx context.Context, specs []Spec, cfg Config, col Collector) (Result, error) {
	if len(specs) == 0 {
		return Result{}, fmt.Errorf("fleet: no sessions to run")
	}
	if col == nil {
		col = NewExactCollector(len(specs))
	}
	var completed atomic.Int64
	emit := func(i int, variant experiments.SessionVariant, out experiments.VariantOutcome) {
		sp := specs[i]
		o := SessionOutcome{
			ID:       sp.ID,
			Seed:     sp.Session.Seed,
			Variant:  variant,
			Report:   out.Report,
			Handoffs: out.Handoffs,
		}
		if out.Report.Frames > 0 {
			o.DeliveredFrac = float64(out.Report.Delivered) / float64(out.Report.Frames)
		}
		col.Add(i, o)
		if cfg.OnSession != nil {
			cfg.OnSession(int(completed.Add(1)), len(specs), o)
		}
	}
	runOne := func(i int) error {
		sp := specs[i]
		out, err := experiments.RunSessionVariant(sp.Session, specVariant(sp))
		if err != nil {
			return fmt.Errorf("session %q: %w", sp.ID, err)
		}
		emit(i, specVariant(sp), out)
		return nil
	}
	runBay := func(g specGroup) error {
		scr := bayScratchPool.Get().(*bayScratch)
		defer bayScratchPool.Put(scr)
		k := g.hi - g.lo
		for len(scr.lat) < k {
			scr.lat = append(scr.lat, nil)
		}
		players := scr.players[:0]
		for i := g.lo; i < g.hi; i++ {
			players = append(players, experiments.BayPlayer{
				Cfg:            specs[i].Session,
				Variant:        specVariant(specs[i]),
				LatencyScratch: scr.lat[i-g.lo],
			})
		}
		scr.players = players
		outs, err := experiments.RunBayLockstep(players)
		if err != nil {
			var be *experiments.BayPlayerError
			if errors.As(err, &be) {
				return fmt.Errorf("session %q: %w", specs[g.lo+be.Player].ID, be.Err)
			}
			return err
		}
		for j, out := range outs {
			scr.lat[j] = players[j].LatencyScratch
			emit(g.lo+j, specVariant(specs[g.lo+j]), out)
		}
		return nil
	}
	// The pool's unit of work is a group: a bay run in lockstep, or a
	// single session. Grouping only batches; outcomes still land per
	// session in spec order, so results are unchanged.
	groups := bayGroups(specs, cfg.DisableBayBatch)
	run := func(_ context.Context, gi int) error {
		g := groups[gi]
		if g.hi-g.lo == 1 {
			return runOne(g.lo)
		}
		return runBay(g)
	}
	var err error
	if cfg.Runner != nil {
		err = cfg.Runner.ForEach(ctx, len(groups), run)
	} else {
		err = pool.ForEach(ctx, len(groups), cfg.Workers, run)
	}
	if err != nil {
		return Result{}, err
	}
	return col.Result(), nil
}

// specVariant resolves a spec's variant; empty means the paper's §6
// pose-tracking proposal.
func specVariant(sp Spec) experiments.SessionVariant {
	if sp.Variant == "" {
		return experiments.VariantMoVRTracking
	}
	return sp.Variant
}

// specGroup is a contiguous run of specs executed together: one bay in
// lockstep, or a single session.
type specGroup struct{ lo, hi int }

// bayRunLen reports how many specs starting at i form one bay-batchable
// run: K >= 2 consecutive Coex sessions sharing the same room-owned
// geometry snapshot (pointer-identical, the way the scenario generators
// build bays), each with Self equal to its offset in the run, a player
// count equal to the run length, and matching duration and control
// cadence. Anything else — including a bay truncated by a spec-set or
// shard boundary — returns 1, falling back to the per-session path,
// which is byte-identical by the bay determinism contract.
func bayRunLen(specs []Spec, i int) int {
	c := specs[i].Session.Coex
	if c == nil || c.Geometry == nil || c.Self != 0 {
		return 1
	}
	k := len(c.Players)
	if k < 2 || i+k > len(specs) {
		return 1
	}
	for j := 1; j < k; j++ {
		cj := specs[i+j].Session.Coex
		if cj == nil || cj.Geometry != c.Geometry || cj.Self != j || len(cj.Players) != k ||
			specs[i+j].Session.Duration != specs[i].Session.Duration ||
			specs[i+j].Session.ReEvalPeriod != specs[i].Session.ReEvalPeriod {
			return 1
		}
	}
	return k
}

// bayGroups partitions specs into contiguous execution groups.
func bayGroups(specs []Spec, disable bool) []specGroup {
	groups := make([]specGroup, 0, len(specs))
	for i := 0; i < len(specs); {
		n := 1
		if !disable {
			n = bayRunLen(specs, i)
		}
		groups = append(groups, specGroup{i, i + n})
		i += n
	}
	return groups
}

// BayLen reports the bay-batched run length at the head of specs — the
// granularity shard boundaries should align to so no shard splits a bay
// (see Shard.AlignedRange). 1 when the first spec runs alone.
func BayLen(specs []Spec) int {
	if len(specs) == 0 {
		return 1
	}
	return bayRunLen(specs, 0)
}

// bayScratch is the per-worker reusable state of bay runs: the player
// slice and each player's stream latency buffer, recycled across bays
// through bayScratchPool so steady-state fleet runs stop allocating
// them.
type bayScratch struct {
	players []experiments.BayPlayer
	lat     [][]time.Duration
}

var bayScratchPool = sync.Pool{New: func() any { return new(bayScratch) }}

// aggregate folds per-session outcomes (in spec order) into the fleet
// statistics.
func aggregate(outcomes []SessionOutcome) Aggregate {
	agg := Aggregate{Sessions: len(outcomes)}
	delivered := make([]float64, len(outcomes))
	glitch := make([]float64, len(outcomes))
	outage := make([]float64, len(outcomes))
	handoffs := make([]float64, len(outcomes))
	for i, o := range outcomes {
		agg.Frames += o.Report.Frames
		agg.Delivered += o.Report.Delivered
		agg.Glitches += o.Report.Glitches
		agg.TotalHandoffs += o.Handoffs
		if o.Report.LongestOutage > agg.WorstOutage {
			agg.WorstOutage = o.Report.LongestOutage
		}
		delivered[i] = o.DeliveredFrac
		glitch[i] = o.Report.GlitchFrac
		outage[i] = o.Report.TotalOutage.Seconds()
		handoffs[i] = float64(o.Handoffs)
	}
	agg.DeliveredFrac = quantilesOf(delivered)
	agg.GlitchFrac = quantilesOf(glitch)
	agg.OutageSeconds = quantilesOf(outage)
	agg.Handoffs = quantilesOf(handoffs)
	return agg
}

// Render prints the fleet summary as a text table.
func (r Result) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d sessions, %d frames (%d delivered, %d glitched)\n\n",
		title, r.Agg.Sessions, r.Agg.Frames, r.Agg.Delivered, r.Agg.Glitches)
	row := func(name string, q Quantiles, fmtv func(float64) string) []string {
		return []string{name, fmtv(q.P50), fmtv(q.P95), fmtv(q.P99), fmtv(q.Mean), fmtv(q.Min), fmtv(q.Max)}
	}
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
	secs := func(v float64) string { return fmt.Sprintf("%.2fs", v) }
	count := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	b.WriteString(experiments.Table(
		[]string{"per-session metric", "p50", "p95", "p99", "mean", "min", "max"},
		[][]string{
			row("delivered rate", r.Agg.DeliveredFrac, pct),
			row("glitch rate", r.Agg.GlitchFrac, pct),
			row("blockage outage", r.Agg.OutageSeconds, secs),
			row("reflector handoffs", r.Agg.Handoffs, count),
		},
	))
	fmt.Fprintf(&b, "\nworst single outage %v; %d handoffs fleet-wide\n",
		r.Agg.WorstOutage.Truncate(time.Millisecond), r.Agg.TotalHandoffs)
	return b.String()
}
