package fleet

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/fleet/pool"
)

func tinySpecs(t *testing.T, n int) []Spec {
	t.Helper()
	specs, err := KindHome.Specs(n, ScenarioConfig{Seed: 7, Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != n {
		t.Fatalf("generated %d specs, want %d", len(specs), n)
	}
	return specs
}

// TestRunOnSharedRunnerMatchesEphemeralPool is the determinism contract
// the movrd scheduler relies on: a fleet run multiplexed onto a shared
// Runner is identical to the same run on its own ephemeral pool.
func TestRunOnSharedRunnerMatchesEphemeralPool(t *testing.T) {
	specs := tinySpecs(t, 4)
	plain, err := Run(context.Background(), specs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(context.Background(), specs, Config{Runner: pool.NewRunner(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, shared) {
		t.Fatal("shared-Runner result differs from ephemeral-pool result")
	}
}

func TestRunOnSessionSeesEveryCompletion(t *testing.T) {
	specs := tinySpecs(t, 5)
	var (
		mu    sync.Mutex
		seen  = map[string]bool{}
		dones []int
		total int
	)
	res, err := Run(context.Background(), specs, Config{
		Workers: 3,
		OnSession: func(done, tot int, o SessionOutcome) {
			mu.Lock()
			defer mu.Unlock()
			seen[o.ID] = true
			dones = append(dones, done)
			total = tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(specs) {
		t.Errorf("total = %d, want %d", total, len(specs))
	}
	if len(dones) != len(specs) {
		t.Fatalf("callback fired %d times for %d sessions", len(dones), len(specs))
	}
	for _, sp := range specs {
		if !seen[sp.ID] {
			t.Errorf("no completion event for session %q", sp.ID)
		}
	}
	// done values are a permutation of 1..n — each fires exactly once.
	hit := make([]bool, len(specs)+1)
	for _, d := range dones {
		if d < 1 || d > len(specs) || hit[d] {
			t.Fatalf("done sequence %v is not a permutation of 1..%d", dones, len(specs))
		}
		hit[d] = true
	}
	// The callback must not have perturbed the result.
	plain, err := Run(context.Background(), specs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Fatal("OnSession changed the fleet result")
	}
}
