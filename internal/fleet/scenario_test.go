package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestScenarioKindsDeterministicAndDistinct asserts, for every scenario
// kind, the two properties the job API's result cache depends on: the
// same seed generates an identical spec set on every call, and every
// session in a set carries a distinct ID.
func TestScenarioKindsDeterministicAndDistinct(t *testing.T) {
	cfg := ScenarioConfig{Seed: 42, Duration: 2 * time.Second}
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			const n = 13
			a := kind.Specs(n, cfg)
			b := kind.Specs(n, cfg)
			if len(a) == 0 {
				t.Fatalf("%s generated no specs", kind)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: same seed generated different spec sets", kind)
			}
			ids := make(map[string]bool, len(a))
			for _, sp := range a {
				if sp.ID == "" {
					t.Fatalf("%s: empty session ID", kind)
				}
				if ids[sp.ID] {
					t.Fatalf("%s: duplicate session ID %q", kind, sp.ID)
				}
				ids[sp.ID] = true
			}

			// A different seed must move at least the session seeds.
			other := cfg
			other.Seed = 43
			c := kind.Specs(n, other)
			if reflect.DeepEqual(a, c) {
				t.Fatalf("%s: seeds 42 and 43 generated identical spec sets", kind)
			}
		})
	}
}

func TestScenarioKindSessionCounts(t *testing.T) {
	cfg := ScenarioConfig{Seed: 1}
	for _, kind := range Kinds {
		for _, n := range []int{1, 4, 9} {
			if got := len(kind.Specs(n, cfg)); got != n {
				t.Errorf("%s.Specs(%d) generated %d sessions", kind, n, got)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, kind := range Kinds {
		got, err := ParseKind(string(kind))
		if err != nil || got != kind {
			t.Errorf("ParseKind(%q) = %q, %v", kind, got, err)
		}
	}
	if _, err := ParseKind("stadium"); err == nil {
		t.Error("ParseKind accepted an unknown scenario")
	} else if !strings.Contains(err.Error(), KindNames()) {
		t.Errorf("error %q should list the valid kinds", err)
	}
}
