package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestScenarioKindsDeterministicAndDistinct asserts, for every scenario
// kind, the two properties the job API's result cache depends on: the
// same seed generates an identical spec set on every call, and every
// session in a set carries a distinct ID.
func TestScenarioKindsDeterministicAndDistinct(t *testing.T) {
	cfg := ScenarioConfig{Seed: 42, Duration: 2 * time.Second}
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			const n = 13
			a := mustSpecs(t, kind, n, cfg)
			b := mustSpecs(t, kind, n, cfg)
			if len(a) == 0 {
				t.Fatalf("%s generated no specs", kind)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: same seed generated different spec sets", kind)
			}
			ids := make(map[string]bool, len(a))
			for _, sp := range a {
				if sp.ID == "" {
					t.Fatalf("%s: empty session ID", kind)
				}
				if ids[sp.ID] {
					t.Fatalf("%s: duplicate session ID %q", kind, sp.ID)
				}
				ids[sp.ID] = true
			}

			// A different seed must move at least the session seeds.
			other := cfg
			other.Seed = 43
			c := mustSpecs(t, kind, n, other)
			if reflect.DeepEqual(a, c) {
				t.Fatalf("%s: seeds 42 and 43 generated identical spec sets", kind)
			}
		})
	}
}

func mustSpecs(t *testing.T, kind Kind, n int, cfg ScenarioConfig) []Spec {
	t.Helper()
	specs, err := kind.Specs(n, cfg)
	if err != nil {
		t.Fatalf("%s.Specs: %v", kind, err)
	}
	return specs
}

func TestScenarioKindSessionCounts(t *testing.T) {
	cfg := ScenarioConfig{Seed: 1}
	for _, kind := range Kinds {
		for _, n := range []int{1, 4, 9} {
			if got := len(mustSpecs(t, kind, n, cfg)); got != n {
				t.Errorf("%s.Specs(%d) generated %d sessions", kind, n, got)
			}
		}
	}
}

// TestKindRoundTrip pins the full kind surface: every recognised kind
// round-trips through ParseKind, generates specs without error, and
// renders a kind-specific title — while an unknown kind is rejected by
// both ParseKind and Specs with the same menu message.
func TestKindRoundTrip(t *testing.T) {
	cfg := ScenarioConfig{Seed: 3, Duration: time.Second}
	for _, kind := range Kinds {
		parsed, err := ParseKind(string(kind))
		if err != nil || parsed != kind {
			t.Fatalf("ParseKind(%q) = %q, %v", kind, parsed, err)
		}
		specs, err := parsed.Specs(3, cfg)
		if err != nil {
			t.Fatalf("%s.Specs: %v", kind, err)
		}
		if len(specs) != 3 {
			t.Fatalf("%s.Specs(3) generated %d specs", kind, len(specs))
		}
		if title := parsed.Title(); title == "Fleet" || title == "" {
			t.Errorf("%s.Title() = %q, want a kind-specific banner", kind, title)
		}
	}

	unknown := Kind("stadium")
	if _, err := ParseKind(string(unknown)); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
	specs, err := unknown.Specs(3, cfg)
	if err == nil {
		t.Fatal("Specs accepted an unknown kind")
	}
	if specs != nil {
		t.Error("Specs returned specs alongside an error")
	}
	if !strings.Contains(err.Error(), KindNames()) {
		t.Errorf("Specs error %q should list the valid kinds", err)
	}
}

func TestParseKind(t *testing.T) {
	for _, kind := range Kinds {
		got, err := ParseKind(string(kind))
		if err != nil || got != kind {
			t.Errorf("ParseKind(%q) = %q, %v", kind, got, err)
		}
	}
	if _, err := ParseKind("stadium"); err == nil {
		t.Error("ParseKind accepted an unknown scenario")
	} else if !strings.Contains(err.Error(), KindNames()) {
		t.Errorf("error %q should list the valid kinds", err)
	}
}
