package fleet

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/obs"
)

// traceScenario builds a small shared-room fleet that exercises every
// event source: the coex scheduler (slot grants, blockage reclaims,
// airtime), the link controller (handoffs, reassessments) and the
// stream (frame delivery).
func traceScenario(t *testing.T) []Spec {
	t.Helper()
	specs, err := Kind("coex").Specs(4, ScenarioConfig{
		Duration: 2 * time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func runTraced(t *testing.T, workers int) (Result, obs.Trace) {
	t.Helper()
	specs := traceScenario(t)
	recs := AttachTraceRecorders(specs, 0)
	res, err := Run(context.Background(), specs, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res, CollectTrace(specs, recs)
}

// TestTraceDeterministic is the acceptance gate: the same seeded fleet
// must produce a byte-identical event file across runs and across
// worker counts, in both export formats.
func TestTraceDeterministic(t *testing.T) {
	_, tr1 := runTraced(t, 1)
	_, tr4 := runTraced(t, 4)

	if !reflect.DeepEqual(tr1, tr4) {
		t.Fatal("trace differs across worker counts")
	}

	var c1, c4, j1, j4 bytes.Buffer
	if err := tr1.WriteChrome(&c1); err != nil {
		t.Fatal(err)
	}
	if err := tr4.WriteChrome(&c4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c4.Bytes()) {
		t.Fatal("Chrome trace bytes differ across runs")
	}
	if err := tr1.WriteJSONL(&j1); err != nil {
		t.Fatal(err)
	}
	if err := tr4.WriteJSONL(&j4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j4.Bytes()) {
		t.Fatal("JSONL trace bytes differ across runs")
	}

	// The trace must actually contain the stack's event vocabulary.
	kinds := map[obs.Kind]int{}
	for _, s := range tr1.Sessions {
		if s.ID == "" {
			t.Fatal("session trace without spec ID")
		}
		for _, ev := range s.Events {
			kinds[ev.Kind]++
		}
	}
	for _, k := range []obs.Kind{
		obs.KindSessionStart, obs.KindSessionEnd, obs.KindReassess,
		obs.KindSlotGrant, obs.KindAirtime, obs.KindFrameOK,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in a coex fleet trace", k)
		}
	}
}

// TestTracingDoesNotChangeResults pins the observation-only contract:
// a traced run and an untraced run of the same specs produce identical
// stream reports.
func TestTracingDoesNotChangeResults(t *testing.T) {
	plain := traceScenario(t)
	resPlain, err := Run(context.Background(), plain, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resTraced, _ := runTraced(t, 2)

	if len(resPlain.Sessions) != len(resTraced.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(resPlain.Sessions), len(resTraced.Sessions))
	}
	for i := range resPlain.Sessions {
		if !reflect.DeepEqual(resPlain.Sessions[i], resTraced.Sessions[i]) {
			t.Errorf("session %d differs with tracing on:\n off %+v\n  on %+v",
				i, resPlain.Sessions[i], resTraced.Sessions[i])
		}
	}
}
