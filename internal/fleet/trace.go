package fleet

import (
	"github.com/movr-sim/movr/internal/obs"
)

// AttachTraceRecorders equips every spec with a fresh per-session event
// recorder (capacity events each; <= 0 means obs.DefaultCapacity) and
// returns the recorders in spec order. Each session owns its recorder
// exclusively — the fleet engine runs sessions on separate goroutines,
// and a recorder is single-writer by design — so tracing composes with
// any worker count. Collect the result after Run with CollectTrace.
func AttachTraceRecorders(specs []Spec, capacity int) []*obs.Recorder {
	if capacity <= 0 {
		capacity = obs.DefaultCapacity
	}
	recs := make([]*obs.Recorder, len(specs))
	for i := range specs {
		recs[i] = obs.NewRecorder(capacity)
		specs[i].Session.Obs = recs[i]
	}
	return recs
}

// CollectTrace snapshots the recorders into a Trace, sessions in spec
// order under their spec IDs — the same order Run reports outcomes in,
// so a trace is byte-identical for any worker count.
func CollectTrace(specs []Spec, recs []*obs.Recorder) obs.Trace {
	tr := obs.Trace{Sessions: make([]obs.SessionTrace, 0, len(recs))}
	for i, rec := range recs {
		id := ""
		if i < len(specs) {
			id = specs[i].ID
		}
		tr.Sessions = append(tr.Sessions, obs.Collect(id, rec))
	}
	return tr
}
