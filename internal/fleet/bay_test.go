package fleet

import (
	"context"
	"testing"

	"github.com/movr-sim/movr/internal/coex"
)

// TestBayBatchByteIdentical is the bay-batched execution contract as a
// property test: for every coexistence scenario kind, under every
// scheduler policy and every worker count, the bay-batched path (the
// default) must reproduce the per-session path byte for byte — whole
// SessionOutcome structs compared with ==, fleet aggregate included.
// This is what licenses bay batching as a pure performance change.
func TestBayBatchByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		kind   Kind
		policy coex.PolicyName
	}{
		{"coex-rr", KindCoex, ""},
		{"coex-pf", KindCoexPF, ""},
		{"coex-edf", KindCoexEDF, ""},
		{"venue-rr", KindVenue, ""},
		{"venue-pf", KindVenue, coex.PolicyPF},
		{"venue-edf", KindVenue, coex.PolicyEDF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := coexTestCfg()
			cfg.CoexPolicy = tc.policy
			specs, err := tc.kind.Specs(8, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Run(context.Background(), specs, Config{Workers: 2, DisableBayBatch: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := Run(context.Background(), specs, Config{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Sessions) != len(ref.Sessions) {
					t.Fatalf("workers=%d: %d sessions batched, %d per-session", workers, len(got.Sessions), len(ref.Sessions))
				}
				for i := range ref.Sessions {
					if got.Sessions[i] != ref.Sessions[i] {
						t.Errorf("workers=%d session %q:\n  batched     %+v\n  per-session %+v",
							workers, ref.Sessions[i].ID, got.Sessions[i], ref.Sessions[i])
					}
				}
				if got.Agg != ref.Agg {
					t.Errorf("workers=%d: batched aggregate %+v != per-session %+v", workers, got.Agg, ref.Agg)
				}
			}
		})
	}
}

// TestBayGroupsFallBack pins the eligibility edges of bay grouping: a
// bay truncated by a slice boundary, or specs with mismatched geometry,
// must fall back to single-session groups rather than batch wrongly.
func TestBayGroupsFallBack(t *testing.T) {
	specs := Coex(2, 4, coexTestCfg())
	if n := len(specs); n != 8 {
		t.Fatalf("Coex(2, 4) generated %d specs, want 8", n)
	}
	if groups := bayGroups(specs, false); len(groups) != 2 ||
		groups[0] != (specGroup{0, 4}) || groups[1] != (specGroup{4, 8}) {
		t.Fatalf("full bays grouped as %v, want [{0 4} {4 8}]", groups)
	}
	// Truncate mid-bay: the second bay's head claims 4 players but only
	// 2 specs remain, so every remaining spec must run alone.
	trunc := bayGroups(specs[:6], false)
	want := []specGroup{{0, 4}, {4, 5}, {5, 6}}
	if len(trunc) != len(want) {
		t.Fatalf("truncated bays grouped as %v, want %v", trunc, want)
	}
	for i := range want {
		if trunc[i] != want[i] {
			t.Fatalf("truncated bays grouped as %v, want %v", trunc, want)
		}
	}
	// A slice starting mid-bay (Self != 0 at the head) never batches.
	for i, g := range bayGroups(specs[1:5], false) {
		if g.hi-g.lo != 1 {
			t.Fatalf("mid-bay slice group %d is %v, want singleton", i, g)
		}
	}
	if groups := bayGroups(specs, true); len(groups) != len(specs) {
		t.Fatalf("DisableBayBatch grouped %d groups for %d specs", len(groups), len(specs))
	}
}

// TestAlignedRangeTilesBays checks that bay-aligned sharding still tiles
// the spec set exactly — every spec lands in exactly one shard — that no
// shard boundary falls inside a bay while there are bays enough to go
// around, and that with more shards than bays it degrades to the
// unaligned split (every shard keeps work; the split bays just run
// per-session) instead of handing some shard an empty range.
func TestAlignedRangeTilesBays(t *testing.T) {
	specs := Coex(3, 4, coexTestCfg())
	n, bay := len(specs), BayLen(specs) // 12 specs, 3 bays of 4
	if bay != 4 {
		t.Fatalf("BayLen = %d, want 4", bay)
	}
	nBays := n / bay
	for count := 1; count <= 5; count++ {
		prev := 0
		for idx := 0; idx < count; idx++ {
			lo, hi := (Shard{Index: idx, Count: count}).AlignedRange(n, bay)
			if lo != prev {
				t.Fatalf("count=%d shard %d: lo=%d, want %d (gap or overlap)", count, idx, lo, prev)
			}
			if count <= nBays && (lo%bay != 0 || (hi%bay != 0 && hi != n)) {
				t.Fatalf("count=%d shard %d: [%d,%d) splits a bay of %d", count, idx, lo, hi, bay)
			}
			if count <= n && hi == lo {
				t.Fatalf("count=%d shard %d: empty range [%d,%d) with %d specs to go around", count, idx, lo, hi, n)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("count=%d: shards cover [0,%d), want [0,%d)", count, prev, n)
		}
	}
}
