package fleet

import (
	"context"
	"testing"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/venue"
)

func mustVenue(t *testing.T, bays, headsetsPerRoom int, cfg ScenarioConfig) []Spec {
	t.Helper()
	specs, err := Venue(bays, headsetsPerRoom, cfg)
	if err != nil {
		t.Fatalf("Venue(%d, %d): %v", bays, headsetsPerRoom, err)
	}
	return specs
}

// TestVenueOneBayByteIdenticalToCoex is the venue layer's bit-identity
// guard: a 1-bay venue has no neighbors, so its sessions must reproduce
// the equivalent single-room coex run byte for byte — every field of
// every streaming report, under every policy. This pins the venue
// generator to the exact rng draw order and rate path of the coex
// scenario it generalizes.
func TestVenueOneBayByteIdenticalToCoex(t *testing.T) {
	for _, policy := range []coex.PolicyName{"", coex.PolicyPF, coex.PolicyEDF} {
		cfg := coexTestCfg()
		cfg.CoexPolicy = policy
		coexSpecs := Coex(1, 4, cfg)
		venueSpecs := mustVenue(t, 1, 4, cfg)
		if len(venueSpecs) != len(coexSpecs) {
			t.Fatalf("policy %q: venue generated %d sessions, coex %d", policy, len(venueSpecs), len(coexSpecs))
		}
		for i := range venueSpecs {
			if len(venueSpecs[i].Session.Coex.ExtSINRPenaltyDB) != 0 {
				t.Fatalf("policy %q: 1-bay venue session %q carries an interference table", policy, venueSpecs[i].ID)
			}
		}
		resCoex, err := Run(context.Background(), coexSpecs, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		resVenue, err := Run(context.Background(), venueSpecs, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range resCoex.Sessions {
			c, v := resCoex.Sessions[i], resVenue.Sessions[i]
			if v.Report != c.Report {
				t.Errorf("policy %q session %d: venue report %+v != coex report %+v", policy, i, v.Report, c.Report)
			}
			if v.Handoffs != c.Handoffs {
				t.Errorf("policy %q session %d: venue handoffs %d != coex %d", policy, i, v.Handoffs, c.Handoffs)
			}
		}
		if resVenue.Agg.DeliveredFrac.Mean != resCoex.Agg.DeliveredFrac.Mean {
			t.Errorf("policy %q: venue mean %v != coex mean %v", policy,
				resVenue.Agg.DeliveredFrac.Mean, resCoex.Agg.DeliveredFrac.Mean)
		}
	}
}

// bayMeanDelivered runs the specs and averages delivered fraction over
// the sessions of one bay (IDs "venue/b<bay>/h*").
func bayMeanDelivered(t *testing.T, specs []Spec, bay int) float64 {
	t.Helper()
	res, err := Run(context.Background(), specs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	prefix := "venue/b"
	sum, n := 0.0, 0
	for i, sp := range specs {
		if len(sp.ID) > len(prefix) && sp.ID[len(prefix)] == byte('0'+bay) {
			r := res.Sessions[i].Report
			sum += float64(r.Delivered) / float64(r.Frames)
			n++
		}
	}
	if n == 0 {
		t.Fatalf("no sessions found for bay %d", bay)
	}
	return sum / float64(n)
}

// TestVenueInterferenceMonotone is the venue acceptance property: the
// more co-channel neighbors a bay has, the less it delivers. The victim
// is bay 1, whose strongest interferer is bay 0 — bay 0's AP steers its
// mainlobe east at its own players and the spillover crosses the shared
// partition into bay 1. Bays are built in index order from one seeded
// rng, so bay 1's traces and schedule are identical in every
// configuration below; only its co-channel neighborhood moves:
//
//	2 bays, fixed 2 channels → 0 co-channel neighbors
//	2 bays, fixed 1 channel  → 1 co-channel neighbor (bay 0)
//	5 bays, fixed 1 channel  → 4 co-channel neighbors (bays 0, 2, 3, 4)
//
// and because interference power is additive over neighbors, mean
// delivered must strictly decrease down that list. Greedy coloring on
// the default 3-channel budget must then recover most of the
// single-channel loss venue-wide.
func TestVenueInterferenceMonotone(t *testing.T) {
	run := func(bays, channels int, mode venue.AssignMode) []Spec {
		cfg := coexTestCfg()
		cfg.VenueChannels = channels
		cfg.VenueAssign = mode
		return mustVenue(t, bays, 4, cfg)
	}
	clear := bayMeanDelivered(t, run(2, 2, venue.AssignFixed), 1)
	one := bayMeanDelivered(t, run(2, 1, venue.AssignFixed), 1)
	four := bayMeanDelivered(t, run(5, 1, venue.AssignFixed), 1)

	t.Logf("bay 1 mean delivered: 0 neighbors=%.4f, 1 neighbor=%.4f, 4 neighbors=%.4f", clear, one, four)
	if !(one < clear) {
		t.Errorf("one co-channel neighbor (%.4f) should deliver strictly less than none (%.4f)", one, clear)
	}
	if !(four < one) {
		t.Errorf("four co-channel neighbors (%.4f) should deliver strictly less than one (%.4f)", four, one)
	}

	// Channel assignment as the remedy: venue-wide, greedy coloring on
	// three channels must claw back at least half of what a single
	// shared channel costs against the interference-free baseline.
	offCfg := coexTestCfg()
	offCfg.VenueInterferenceOff = true
	baseline := meanDelivered(t, mustVenue(t, 5, 4, offCfg))
	worst := meanDelivered(t, run(5, 1, venue.AssignFixed))
	colored := meanDelivered(t, run(5, 3, venue.AssignColoring))

	t.Logf("venue mean delivered: baseline=%.4f colored=%.4f worst=%.4f", baseline, colored, worst)
	if !(worst < baseline) {
		t.Fatalf("single-channel venue (%.4f) should deliver less than interference-free (%.4f)", worst, baseline)
	}
	if colored > baseline {
		t.Errorf("coloring (%.4f) cannot beat the interference-free baseline (%.4f)", colored, baseline)
	}
	if recovered := (colored - worst) / (baseline - worst); recovered < 0.5 {
		t.Errorf("coloring recovered only %.0f%% of the single-channel loss", 100*recovered)
	}
}

// TestVenueInterferenceTables pins which sessions carry an interference
// input: co-channel neighbors get a table sized to the room's window
// horizon, conflict-free bays and interference-off venues get none.
func TestVenueInterferenceTables(t *testing.T) {
	cfg := coexTestCfg()
	cfg.VenueChannels = 1
	cfg.VenueAssign = venue.AssignFixed
	specs := mustVenue(t, 2, 2, cfg)
	if len(specs) != 4 {
		t.Fatalf("generated %d sessions, want 4", len(specs))
	}
	for _, sp := range specs {
		rm := sp.Session.Coex
		if rm == nil {
			t.Fatalf("session %q has no coex room", sp.ID)
		}
		if len(rm.ExtSINRPenaltyDB) == 0 {
			t.Errorf("session %q: co-channel bay carries no interference table", sp.ID)
		} else if int64(len(rm.ExtSINRPenaltyDB)) != rm.Geometry.Windows() {
			t.Errorf("session %q: table covers %d windows, snapshot %d",
				sp.ID, len(rm.ExtSINRPenaltyDB), rm.Geometry.Windows())
		}
	}

	off := cfg
	off.VenueInterferenceOff = true
	for _, sp := range mustVenue(t, 2, 2, off) {
		if len(sp.Session.Coex.ExtSINRPenaltyDB) != 0 {
			t.Errorf("interference-off session %q carries a table", sp.ID)
		}
	}
}

// TestVenueAdmission pins the capacity model and both overflow
// behaviors: the deadline-aware policy fits 4 players into the default
// 50 ms window (one 11.1 ms frame slot each), so a 6-player bay admits
// 4 and queues or rejects 2 — recorded on each bay's first session.
func TestVenueAdmission(t *testing.T) {
	if got := coex.MaxAdmissible(coex.PolicyEDF, 6, 0, 0, 0); got != 4 {
		t.Fatalf("MaxAdmissible(edf, 6) = %d, want 4", got)
	}
	if got := coex.MaxAdmissible(coex.PolicyRR, 6, 0, 0, 0); got != 6 {
		t.Fatalf("MaxAdmissible(rr, 6) = %d, want 6", got)
	}

	cfg := coexTestCfg()
	cfg.CoexPolicy = coex.PolicyEDF
	if got := VenueCapacity(6, cfg); got != 4 {
		t.Fatalf("VenueCapacity(6, edf) = %d, want 4", got)
	}

	for admission, wantQueued := range map[string]bool{AdmissionQueue: true, AdmissionReject: false} {
		c := cfg
		c.VenueAdmission = admission
		specs := mustVenue(t, 2, 6, c)
		if len(specs) != 8 {
			t.Fatalf("%s: generated %d sessions, want 2 bays × 4 admitted", admission, len(specs))
		}
		for i, sp := range specs {
			queued, rejected := sp.Session.AdmissionQueued, sp.Session.AdmissionRejected
			if i%4 == 0 {
				want := [2]int{2, 0}
				if !wantQueued {
					want = [2]int{0, 2}
				}
				if queued != want[0] || rejected != want[1] {
					t.Errorf("%s session %q: queued=%d rejected=%d, want %v", admission, sp.ID, queued, rejected, want)
				}
			} else if queued != 0 || rejected != 0 {
				t.Errorf("%s session %q: carries admission bookkeeping", admission, sp.ID)
			}
			if len(sp.Session.Coex.Players) != 4 {
				t.Errorf("%s session %q: %d players in the room, want the 4 admitted", admission, sp.ID, len(sp.Session.Coex.Players))
			}
		}
	}

	if _, err := Venue(2, 4, ScenarioConfig{Seed: 1, VenueAdmission: "waitlist"}); err == nil {
		t.Error("Venue accepted an unknown admission behavior")
	}
	if _, err := Venue(MaxVenueBays+1, 4, ScenarioConfig{Seed: 1}); err == nil {
		t.Error("Venue accepted a bay count beyond the maximum")
	}
}

// TestVenueWorkerCountInvariant extends the fleet determinism guarantee
// to the venue scenario: the same venue produces identical reports
// whatever the worker count, interference tables included.
func TestVenueWorkerCountInvariant(t *testing.T) {
	cfg := coexTestCfg()
	cfg.VenueChannels = 1
	cfg.VenueAssign = venue.AssignFixed
	specs := mustVenue(t, 2, 2, cfg)

	res1, err := Run(context.Background(), specs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Run(context.Background(), specs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Sessions {
		if res1.Sessions[i].Report != res4.Sessions[i].Report {
			t.Errorf("session %q: reports diverge across worker counts", res1.Sessions[i].ID)
		}
	}
	if res1.Agg.DeliveredFrac.Mean != res4.Agg.DeliveredFrac.Mean {
		t.Error("aggregate mean diverges across worker counts")
	}
}

// TestVenueN pins the sizing rules the movrd spec layer and the CLI
// rely on: explicit VenueBays wins, otherwise enough default-size bays
// to hold n, always truncated to n sessions.
func TestVenueN(t *testing.T) {
	cfg := coexTestCfg()
	specs, err := VenueN(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("VenueN(6) generated %d sessions", len(specs))
	}

	cfg.VenueBays = 3
	cfg.HeadsetsPerRoom = 2
	specs, err = VenueN(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("VenueN(100) with 3 bays × 2 players generated %d sessions, want all 6", len(specs))
	}
	if IsVenueKind(KindCoex) || !IsVenueKind(KindVenue) {
		t.Error("IsVenueKind must single out the venue kind")
	}
	if !IsCoexKind(KindVenue) {
		t.Error("venue sessions contend for shared air — IsCoexKind must include the kind")
	}
}
