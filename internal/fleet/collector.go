package fleet

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file is the streaming-aggregation and sharding layer of the
// fleet engine: a Collector abstraction over "what happens to each
// SessionOutcome as it completes", an exact collector (the historical
// path — every outcome retained, aggregates computed over the full
// list), a constant-memory streaming collector built on mergeable
// fixed-bin sketches, and the contiguous session-range Shard split
// whose per-shard results merge back to the unsharded answer.
//
// Determinism contract:
//
//   - The exact path is bit-identical to the pre-Collector fleet.Run:
//     outcomes land in spec order and aggregation walks that order.
//     Merging exact shard results in shard order reproduces the
//     unsharded Result byte for byte.
//   - The streaming path folds outcomes in completion order, which the
//     worker pool does not fix — so every streaming accumulator is
//     exactly order-invariant by construction: integer counters,
//     fixed-point (1e-9-quantized) sums, min/max, and integer bin
//     counts. The same outcome multiset yields the same StreamState
//     bit for bit whatever the completion or merge order.
//
// Accuracy contract of the streaming path (documented error bounds):
//
//   - Sessions, Frames, Delivered, Glitches, TotalHandoffs and
//     WorstOutage are exact. Min and Max of every metric are exact.
//   - Means are quantized at 1e-9 per sample: |mean_stream − mean_exact|
//     ≤ 0.5e-9 (plus ordinary float rounding).
//   - Percentiles come from a fixed-bin histogram sketch and are within
//     one bin width of the exact (stats.Percentile) value:
//     MetricSketch.ErrorBound() = (Hi−Lo)/bins. With 4096 bins that is
//     ≈ 0.000245 for the delivered/glitch fractions (range [0,1]) and
//     maxOutage/4096 for outage seconds; handoff percentiles use
//     width-1 bins and are within 1 handoff (exact location, sub-bin
//     interpolation only) while the per-session count stays below 4096.

// sketchBins is the fixed resolution of every percentile sketch. The
// serialized state is ~4·sketchBins int64 counters per aggregate —
// constant in the session count.
const sketchBins = 4096

// fpScale is the fixed-point quantum of streaming sums: samples are
// accumulated as round(x·1e9) in int64, making addition exactly
// commutative and associative — the property that keeps completion
// order and merge order out of the result.
const fpScale = 1e9

// streamSchemaV versions the serialized StreamState; merges across
// schema versions are rejected rather than silently misinterpreted.
const streamSchemaV = 1

// Collector consumes per-session outcomes as the pool completes them
// and produces the run's Result. Add is called once per spec index,
// from worker goroutines, in completion order — implementations must be
// safe for concurrent use and must not depend on call order for the
// deterministic parts of their output.
type Collector interface {
	// Add records outcome o of spec index i.
	Add(i int, o SessionOutcome)

	// Result finalizes and returns the aggregate view.
	Result() Result
}

// ExactCollector is the historical aggregation path: every outcome is
// retained in spec order and the Aggregate is computed over the full
// list. Memory is O(sessions); results are bit-identical to pre-
// Collector fleet.Run.
type ExactCollector struct {
	outcomes []SessionOutcome
}

// NewExactCollector sizes the collector for n specs.
func NewExactCollector(n int) *ExactCollector {
	return &ExactCollector{outcomes: make([]SessionOutcome, n)}
}

// Add stores o at its spec index. Distinct indices never race, so no
// lock is needed.
func (c *ExactCollector) Add(i int, o SessionOutcome) { c.outcomes[i] = o }

// Result returns outcomes in spec order plus their aggregate.
func (c *ExactCollector) Result() Result {
	return Result{Sessions: c.outcomes, Agg: aggregate(c.outcomes)}
}

// MetricSketch is a mergeable constant-size summary of one per-session
// metric: exact count, min, max and fixed-point sum, plus a fixed-bin
// histogram over [Lo, Hi) for percentile estimates. All accumulators
// are integers or order-invariant extrema, so any fold or merge order
// produces the identical state.
type MetricSketch struct {
	Count int64   `json:"count"`
	SumFP int64   `json:"sum_fp"` // Σ round(x·1e9), exactly order-invariant
	Min   float64 `json:"min"`    // exact; 0 until Count > 0
	Max   float64 `json:"max"`    // exact; 0 until Count > 0
	Lo    float64 `json:"lo"`     // sketch range, fixed at construction
	Hi    float64 `json:"hi"`
	Bins  []int64 `json:"bins"`
}

func newMetricSketch(lo, hi float64) MetricSketch {
	if hi <= lo {
		hi = lo + 1
	}
	return MetricSketch{Lo: lo, Hi: hi, Bins: make([]int64, sketchBins)}
}

// ErrorBound is the guaranteed worst-case absolute error of Quantile
// against the exact stats.Percentile over the same samples: one bin
// width. (Values outside [Lo, Hi) clamp into the edge bins, so samples
// beyond the declared range can exceed the bound — the fleet
// constructors size ranges so that cannot happen.)
func (m MetricSketch) ErrorBound() float64 {
	if len(m.Bins) == 0 {
		return math.Inf(1)
	}
	return (m.Hi - m.Lo) / float64(len(m.Bins))
}

func (m *MetricSketch) binOf(x float64) int {
	i := int((x - m.Lo) / (m.Hi - m.Lo) * float64(len(m.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(m.Bins) {
		i = len(m.Bins) - 1
	}
	return i
}

func (m *MetricSketch) add(x float64) {
	if m.Count == 0 || x < m.Min {
		m.Min = x
	}
	if m.Count == 0 || x > m.Max {
		m.Max = x
	}
	m.Count++
	m.SumFP += int64(math.Round(x * fpScale))
	m.Bins[m.binOf(x)]++
}

// merge folds o into m. Both sketches must share a range and
// resolution; integer adds and extrema keep the merge exactly
// commutative and associative.
func (m *MetricSketch) merge(o MetricSketch) error {
	if m.Lo != o.Lo || m.Hi != o.Hi || len(m.Bins) != len(o.Bins) {
		return fmt.Errorf("fleet: sketch shapes differ ([%g,%g)×%d vs [%g,%g)×%d)",
			m.Lo, m.Hi, len(m.Bins), o.Lo, o.Hi, len(o.Bins))
	}
	if o.Count == 0 {
		return nil
	}
	if m.Count == 0 || o.Min < m.Min {
		m.Min = o.Min
	}
	if m.Count == 0 || o.Max > m.Max {
		m.Max = o.Max
	}
	m.Count += o.Count
	m.SumFP += o.SumFP
	for i := range m.Bins {
		m.Bins[i] += o.Bins[i]
	}
	return nil
}

// Mean returns the fixed-point mean (NaN when empty).
func (m MetricSketch) Mean() float64 {
	if m.Count == 0 {
		return math.NaN()
	}
	return float64(m.SumFP) / fpScale / float64(m.Count)
}

// orderStat reconstructs the k-th (0-based) order statistic from the
// histogram: the bin holding it is located exactly by cumulative
// counts, and the position inside the bin is interpolated. The true
// order statistic lies in the same bin (counting is exact), so the
// estimate is within one bin width of it.
func (m MetricSketch) orderStat(k int64) float64 {
	binW := (m.Hi - m.Lo) / float64(len(m.Bins))
	var cum int64
	for b, c := range m.Bins {
		if c == 0 {
			continue
		}
		if k < cum+c {
			frac := (float64(k-cum) + 0.5) / float64(c)
			v := m.Lo + binW*(float64(b)+frac)
			// Clamp into the observed range: both the estimate and the
			// true value live in bin ∩ [Min, Max], an interval no wider
			// than the bin.
			if v < m.Min {
				v = m.Min
			}
			if v > m.Max {
				v = m.Max
			}
			return v
		}
		cum += c
	}
	return m.Max
}

// Quantile estimates the p-th percentile with the same rank
// interpolation stats.Percentile uses, within ErrorBound of it.
func (m MetricSketch) Quantile(p float64) float64 {
	if m.Count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return m.Min
	}
	if p >= 100 {
		return m.Max
	}
	rank := p / 100 * float64(m.Count-1)
	lo := int64(math.Floor(rank))
	hi := int64(math.Ceil(rank))
	vlo := m.orderStat(lo)
	if lo == hi {
		return vlo
	}
	frac := rank - float64(lo)
	return vlo*(1-frac) + m.orderStat(hi)*frac
}

// Summary renders the sketch as the fleet Quantiles set; Min, Max are
// exact, Mean fixed-point, percentiles within ErrorBound.
func (m MetricSketch) Summary() Quantiles {
	return Quantiles{
		P50:  m.Quantile(50),
		P95:  m.Quantile(95),
		P99:  m.Quantile(99),
		Mean: m.Mean(),
		Min:  minOrNaN(m),
		Max:  maxOrNaN(m),
	}
}

func minOrNaN(m MetricSketch) float64 {
	if m.Count == 0 {
		return math.NaN()
	}
	return m.Min
}

func maxOrNaN(m MetricSketch) float64 {
	if m.Count == 0 {
		return math.NaN()
	}
	return m.Max
}

// StreamState is the complete, serializable state of a streaming
// aggregation: constant-size whatever the session count, mergeable
// across shards, and exactly order-invariant. It is what a sharded
// movrd job embeds in its result so an external merger can reconstruct
// the fleet-wide aggregate.
type StreamState struct {
	SchemaV       int          `json:"schema_v"`
	Sessions      int          `json:"sessions"`
	Frames        int64        `json:"frames"`
	Delivered     int64        `json:"delivered"`
	Glitches      int64        `json:"glitches"`
	TotalHandoffs int64        `json:"total_handoffs"`
	WorstOutageNS int64        `json:"worst_outage_ns"`
	DeliveredFrac MetricSketch `json:"delivered_frac"`
	GlitchFrac    MetricSketch `json:"glitch_frac"`
	OutageSeconds MetricSketch `json:"outage_seconds"`
	Handoffs      MetricSketch `json:"handoffs"`
}

func newStreamState(maxOutageSeconds float64) StreamState {
	if maxOutageSeconds <= 0 {
		maxOutageSeconds = 1
	}
	return StreamState{
		SchemaV:       streamSchemaV,
		DeliveredFrac: newMetricSketch(0, 1),
		GlitchFrac:    newMetricSketch(0, 1),
		OutageSeconds: newMetricSketch(0, maxOutageSeconds),
		// Width-1 bins: handoff counts below sketchBins land each in
		// their own bin, so percentile error is sub-bin interpolation
		// only (≤ 1 handoff).
		Handoffs: newMetricSketch(0, sketchBins),
	}
}

func (st *StreamState) add(o SessionOutcome) {
	st.Sessions++
	st.Frames += int64(o.Report.Frames)
	st.Delivered += int64(o.Report.Delivered)
	st.Glitches += int64(o.Report.Glitches)
	st.TotalHandoffs += int64(o.Handoffs)
	if ns := int64(o.Report.LongestOutage); ns > st.WorstOutageNS {
		st.WorstOutageNS = ns
	}
	st.DeliveredFrac.add(o.DeliveredFrac)
	st.GlitchFrac.add(o.Report.GlitchFrac)
	st.OutageSeconds.add(o.Report.TotalOutage.Seconds())
	st.Handoffs.add(float64(o.Handoffs))
}

// Aggregate derives the fleet Aggregate from the sketch state: totals
// and worst outage exact, quantiles within the documented bounds.
func (st StreamState) Aggregate() Aggregate {
	return Aggregate{
		Sessions:      st.Sessions,
		Frames:        int(st.Frames),
		Delivered:     int(st.Delivered),
		Glitches:      int(st.Glitches),
		DeliveredFrac: st.DeliveredFrac.Summary(),
		GlitchFrac:    st.GlitchFrac.Summary(),
		OutageSeconds: st.OutageSeconds.Summary(),
		WorstOutage:   time.Duration(st.WorstOutageNS),
		Handoffs:      st.Handoffs.Summary(),
		TotalHandoffs: int(st.TotalHandoffs),
	}
}

// clone deep-copies the state (the bin slices are owned).
func (st StreamState) clone() StreamState {
	out := st
	out.DeliveredFrac.Bins = append([]int64(nil), st.DeliveredFrac.Bins...)
	out.GlitchFrac.Bins = append([]int64(nil), st.GlitchFrac.Bins...)
	out.OutageSeconds.Bins = append([]int64(nil), st.OutageSeconds.Bins...)
	out.Handoffs.Bins = append([]int64(nil), st.Handoffs.Bins...)
	return out
}

// MergeStreamStates folds shard states into one. The merge is exactly
// commutative and associative — any argument order yields bit-identical
// output — so independent shard runners need no coordination beyond
// sharing the sketch ranges (which equal-duration shards of one job
// spec do by construction).
func MergeStreamStates(states ...StreamState) (StreamState, error) {
	if len(states) == 0 {
		return StreamState{}, fmt.Errorf("fleet: no stream states to merge")
	}
	out := states[0].clone()
	if out.SchemaV != streamSchemaV {
		return StreamState{}, fmt.Errorf("fleet: stream state schema %d, want %d", out.SchemaV, streamSchemaV)
	}
	for _, st := range states[1:] {
		if st.SchemaV != streamSchemaV {
			return StreamState{}, fmt.Errorf("fleet: stream state schema %d, want %d", st.SchemaV, streamSchemaV)
		}
		out.Sessions += st.Sessions
		out.Frames += st.Frames
		out.Delivered += st.Delivered
		out.Glitches += st.Glitches
		out.TotalHandoffs += st.TotalHandoffs
		if st.WorstOutageNS > out.WorstOutageNS {
			out.WorstOutageNS = st.WorstOutageNS
		}
		for _, m := range []struct {
			dst *MetricSketch
			src MetricSketch
		}{
			{&out.DeliveredFrac, st.DeliveredFrac},
			{&out.GlitchFrac, st.GlitchFrac},
			{&out.OutageSeconds, st.OutageSeconds},
			{&out.Handoffs, st.Handoffs},
		} {
			if err := m.dst.merge(m.src); err != nil {
				return StreamState{}, err
			}
		}
	}
	return out, nil
}

// StreamCollector folds outcomes into a StreamState as they complete:
// the constant-memory aggregation path. Safe for concurrent Add; the
// state is order-invariant, so worker scheduling cannot change the
// result.
type StreamCollector struct {
	mu sync.Mutex
	st StreamState
}

// NewStreamCollector builds a streaming collector whose outage sketch
// spans [0, maxOutageSeconds] — a session's total outage can never
// exceed its duration, so pass the longest session duration of the run.
// Every shard of one job must use the same value or the shard states
// will refuse to merge.
func NewStreamCollector(maxOutageSeconds float64) *StreamCollector {
	return &StreamCollector{st: newStreamState(maxOutageSeconds)}
}

// StreamCollectorFor sizes the collector for a spec set: the outage
// range is the longest session duration. Shards slicing one spec set
// get identical ranges from their full (pre-slice) set.
func StreamCollectorFor(specs []Spec) *StreamCollector {
	maxOutage := 0.0
	for _, sp := range specs {
		if d := sp.Session.Duration.Seconds(); d > maxOutage {
			maxOutage = d
		}
	}
	return NewStreamCollector(maxOutage)
}

// Add folds outcome o into the running state. The spec index is unused:
// the state is order-invariant by construction.
func (c *StreamCollector) Add(_ int, o SessionOutcome) {
	c.mu.Lock()
	c.st.add(o)
	c.mu.Unlock()
}

// State returns a deep copy of the current accumulated state.
func (c *StreamCollector) State() StreamState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.clone()
}

// Result returns the streaming Result: aggregate plus mergeable state,
// no per-session list.
func (c *StreamCollector) Result() Result {
	st := c.State()
	return Result{Agg: st.Aggregate(), Stream: &st}
}

// Shard selects the Index-th of Count contiguous session-range slices
// of a spec set. The ranges tile [0, n) exactly: every spec lands in
// exactly one shard, and concatenating the shards in index order
// reproduces the original set.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Validate checks the shard coordinates.
func (s Shard) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("fleet: shard count %d must be at least 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("fleet: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// Range returns the half-open spec-index range [lo, hi) of this shard
// over n specs. Ranges are contiguous, disjoint, and differ in size by
// at most one.
func (s Shard) Range(n int) (lo, hi int) {
	return n * s.Index / s.Count, n * (s.Index + 1) / s.Count
}

// Slice returns the shard's sub-slice of specs (sharing the backing
// array).
func (s Shard) Slice(specs []Spec) []Spec {
	lo, hi := s.Range(len(specs))
	return specs[lo:hi]
}

// AlignedRange returns the shard's half-open spec-index range with
// boundaries aligned to bay-size multiples, so no shard splits a bay
// and every shard keeps the bay-batched fast path. Spec sets built by
// the scenario generators lay bays out contiguously at offsets that
// are multiples of the bay size, which is exactly what this alignment
// preserves. The ranges still tile [0, n) exactly (shards covering the
// same bays, differing in bay count by at most one); with bay <= 1
// this is Range. Merged results are unchanged by alignment: outcomes
// are per session and shards concatenate in index order either way.
// With more shards than bays, alignment would leave some shards empty
// where the unaligned split gave every shard work, so it falls back to
// Range — the split bays run per-session, byte-identical by the bay
// determinism contract.
func (s Shard) AlignedRange(n, bay int) (lo, hi int) {
	if bay <= 1 {
		return s.Range(n)
	}
	nBays := (n + bay - 1) / bay
	if nBays < s.Count {
		return s.Range(n)
	}
	lo = nBays * s.Index / s.Count * bay
	hi = nBays * (s.Index + 1) / s.Count * bay
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// SliceAligned returns the shard's bay-aligned sub-slice of specs
// (sharing the backing array), aligning to the spec set's own bay size
// (BayLen).
func (s Shard) SliceAligned(specs []Spec) []Spec {
	lo, hi := s.AlignedRange(len(specs), BayLen(specs))
	return specs[lo:hi]
}

// MergeShardResults reassembles per-shard Results — given in shard
// index order — into the fleet-wide Result. Exact results (Sessions
// retained) concatenate and re-aggregate, reproducing the unsharded
// run byte for byte; streaming results merge their states, which is
// additionally order-invariant. Mixing the two paths is an error.
func MergeShardResults(parts ...Result) (Result, error) {
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("fleet: no shard results to merge")
	}
	streaming := parts[0].Stream != nil
	for i, p := range parts {
		if (p.Stream != nil) != streaming {
			return Result{}, fmt.Errorf("fleet: shard %d mixes exact and streaming results", i)
		}
	}
	if streaming {
		states := make([]StreamState, len(parts))
		for i, p := range parts {
			states[i] = *p.Stream
		}
		st, err := MergeStreamStates(states...)
		if err != nil {
			return Result{}, err
		}
		return Result{Agg: st.Aggregate(), Stream: &st}, nil
	}
	total := 0
	for _, p := range parts {
		total += len(p.Sessions)
	}
	all := make([]SessionOutcome, 0, total)
	for _, p := range parts {
		all = append(all, p.Sessions...)
	}
	return Result{Sessions: all, Agg: aggregate(all)}, nil
}
