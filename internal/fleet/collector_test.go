package fleet

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/stream"
)

// syntheticOutcomes builds n deterministic outcomes spanning the metric
// ranges, without running any simulation — fast fodder for the
// order-invariance and memory properties.
func syntheticOutcomes(n int, seed int64) []SessionOutcome {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SessionOutcome, n)
	for i := range out {
		frames := 100 + rng.Intn(200)
		delivered := rng.Intn(frames + 1)
		glitches := frames - delivered
		out[i] = SessionOutcome{
			ID:   "synth",
			Seed: int64(i),
			Report: stream.Report{
				Frames:        frames,
				Delivered:     delivered,
				Glitches:      glitches,
				GlitchFrac:    float64(glitches) / float64(frames),
				TotalOutage:   time.Duration(rng.Int63n(int64(2 * time.Second))),
				LongestOutage: time.Duration(rng.Int63n(int64(time.Second))),
			},
			Handoffs:      rng.Intn(20),
			DeliveredFrac: float64(delivered) / float64(frames),
		}
	}
	return out
}

// TestStreamStateOrderInvariant pins the property the whole streaming
// design rests on: folding the same outcomes in any order — including
// split across collectors merged in any order — yields bit-identical
// state, so worker scheduling can never leak into results.
func TestStreamStateOrderInvariant(t *testing.T) {
	outcomes := syntheticOutcomes(257, 11)
	baseline := NewStreamCollector(2)
	for i, o := range outcomes {
		baseline.Add(i, o)
	}
	want, err := json.Marshal(baseline.State())
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(outcomes))
		c := NewStreamCollector(2)
		for _, i := range perm {
			c.Add(i, outcomes[i])
		}
		got, err := json.Marshal(c.State())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d: permuted fold produced different state", trial)
		}
	}

	// Split into uneven parts, merge in shuffled orders.
	for trial := 0; trial < 5; trial++ {
		cuts := []int{0, 31, 100, 181, len(outcomes)}
		parts := make([]StreamState, 0, len(cuts)-1)
		for p := 0; p+1 < len(cuts); p++ {
			c := NewStreamCollector(2)
			for i := cuts[p]; i < cuts[p+1]; i++ {
				c.Add(i, outcomes[i])
			}
			parts = append(parts, c.State())
		}
		perm := rng.Perm(len(parts))
		shuffled := make([]StreamState, len(parts))
		for i, j := range perm {
			shuffled[i] = parts[j]
		}
		merged, err := MergeStreamStates(shuffled...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d: shuffled merge produced different state", trial)
		}
	}
}

// TestShardRangesPartition checks the shard math: for any n and count,
// the ranges tile [0, n) contiguously with sizes differing by at most
// one.
func TestShardRangesPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100, 101, 4096} {
		for count := 1; count <= 10; count++ {
			next, minSz, maxSz := 0, n, 0
			for i := 0; i < count; i++ {
				sh := Shard{Index: i, Count: count}
				if err := sh.Validate(); err != nil {
					t.Fatal(err)
				}
				lo, hi := sh.Range(n)
				if lo != next || hi < lo {
					t.Fatalf("n=%d count=%d shard %d: range [%d,%d), want lo=%d", n, count, i, lo, hi, next)
				}
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d count=%d: ranges cover [0,%d), want [0,%d)", n, count, next, n)
			}
			if count <= n && maxSz-minSz > 1 {
				t.Fatalf("n=%d count=%d: shard sizes span [%d,%d]", n, count, minSz, maxSz)
			}
		}
	}
	if err := (Shard{Index: 2, Count: 2}).Validate(); err == nil {
		t.Fatal("index == count validated")
	}
	if err := (Shard{Index: 0, Count: 0}).Validate(); err == nil {
		t.Fatal("count 0 validated")
	}
}

// TestShardMergeMatchesUnsharded is the sharding property test across
// scenario kinds × shard counts: the exact path must merge to the
// unsharded Result byte for byte, and the streaming path must merge to
// the unsharded streaming state bit for bit with percentiles within the
// sketch bound of the exact aggregate.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	cfg := ScenarioConfig{
		Duration:     300 * time.Millisecond,
		ReEvalPeriod: 50 * time.Millisecond,
		Seed:         7,
	}
	kinds := []Kind{KindMixed, KindHome, KindCoex}
	if testing.Short() {
		kinds = []Kind{KindMixed}
	}
	for _, kind := range kinds {
		specs, err := kind.Specs(8, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		unsharded, err := Run(context.Background(), specs, Config{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		wantExact, err := json.Marshal(unsharded)
		if err != nil {
			t.Fatal(err)
		}
		streamRef, err := RunCollect(context.Background(), specs, Config{Workers: 2}, StreamCollectorFor(specs))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		wantStream, err := json.Marshal(streamRef.Stream)
		if err != nil {
			t.Fatal(err)
		}

		for _, count := range []int{2, 3, 4} {
			exactParts := make([]Result, count)
			streamParts := make([]Result, count)
			for i := 0; i < count; i++ {
				sh := Shard{Index: i, Count: count}
				part := sh.Slice(specs)
				if exactParts[i], err = Run(context.Background(), part, Config{Workers: 2}); err != nil {
					t.Fatalf("%s shard %d/%d: %v", kind, i, count, err)
				}
				// Every shard sizes its sketches from the FULL spec set,
				// exactly as independent shard runners of one job spec do.
				if streamParts[i], err = RunCollect(context.Background(), part, Config{Workers: 2}, StreamCollectorFor(specs)); err != nil {
					t.Fatalf("%s shard %d/%d: %v", kind, i, count, err)
				}
			}

			mergedExact, err := MergeShardResults(exactParts...)
			if err != nil {
				t.Fatal(err)
			}
			gotExact, err := json.Marshal(mergedExact)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotExact) != string(wantExact) {
				t.Fatalf("%s %d-shard exact merge differs from unsharded run", kind, count)
			}

			mergedStream, err := MergeShardResults(streamParts...)
			if err != nil {
				t.Fatal(err)
			}
			gotStream, err := json.Marshal(mergedStream.Stream)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotStream) != string(wantStream) {
				t.Fatalf("%s %d-shard stream merge differs from unsharded streaming run", kind, count)
			}
			assertStreamWithinBound(t, unsharded.Agg, mergedStream)
		}
	}
}

// assertStreamWithinBound checks every streaming-aggregate field
// against the exact aggregate: totals and extrema exact, means within
// fixed-point quantization, percentiles within the documented sketch
// bound.
func assertStreamWithinBound(t *testing.T, exact Aggregate, streamed Result) {
	t.Helper()
	st := streamed.Stream
	if st == nil {
		t.Fatal("streaming result carries no state")
	}
	agg := streamed.Agg
	if agg.Sessions != exact.Sessions || agg.Frames != exact.Frames ||
		agg.Delivered != exact.Delivered || agg.Glitches != exact.Glitches ||
		agg.TotalHandoffs != exact.TotalHandoffs || agg.WorstOutage != exact.WorstOutage {
		t.Fatalf("streaming totals differ from exact:\n  stream %+v\n  exact  %+v", agg, exact)
	}
	check := func(name string, got, want Quantiles, sketch MetricSketch) {
		bound := sketch.ErrorBound()
		for _, c := range []struct {
			label string
			g, w  float64
			tol   float64
		}{
			{"p50", got.P50, want.P50, bound},
			{"p95", got.P95, want.P95, bound},
			{"p99", got.P99, want.P99, bound},
			{"mean", got.Mean, want.Mean, 1e-6},
			{"min", got.Min, want.Min, 0},
			{"max", got.Max, want.Max, 0},
		} {
			if math.Abs(c.g-c.w) > c.tol {
				t.Errorf("%s %s: stream %v vs exact %v exceeds bound %v", name, c.label, c.g, c.w, c.tol)
			}
		}
	}
	check("delivered_frac", agg.DeliveredFrac, exact.DeliveredFrac, st.DeliveredFrac)
	check("glitch_frac", agg.GlitchFrac, exact.GlitchFrac, st.GlitchFrac)
	check("outage_seconds", agg.OutageSeconds, exact.OutageSeconds, st.OutageSeconds)
	check("handoffs", agg.Handoffs, exact.Handoffs, st.Handoffs)
}

// TestStreamWithinBoundSeed7 pins the streaming error bound on the
// seed-7 coex fixture: the percentile sketch must track the exact
// aggregate within MetricSketch.ErrorBound on a real policy-scheduled
// workload, and totals must be exact.
func TestStreamWithinBoundSeed7(t *testing.T) {
	cfg := ScenarioConfig{
		Duration:     500 * time.Millisecond,
		ReEvalPeriod: 50 * time.Millisecond,
		Seed:         7,
	}
	specs, err := KindCoex.Specs(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(context.Background(), specs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunCollect(context.Background(), specs, Config{Workers: 2}, StreamCollectorFor(specs))
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Sessions != nil {
		t.Fatal("streaming run retained per-session outcomes")
	}
	assertStreamWithinBound(t, exact.Agg, streamed)
}

// TestRunCollectExactMatchesRun pins that the Collector refactor did
// not move the exact path: RunCollect with an ExactCollector is Run.
func TestRunCollectExactMatchesRun(t *testing.T) {
	specs := shortScenario(6, 3)
	a, err := Run(context.Background(), specs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCollect(context.Background(), specs, Config{Workers: 2}, NewExactCollector(len(specs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunCollect(ExactCollector) differs from Run")
	}
	c, err := RunCollect(context.Background(), specs, Config{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("RunCollect(nil) differs from Run")
	}
}

// TestStreamCollectorConstantMemory is the constant-RSS acceptance
// check at the collector level: folding an outcome allocates nothing,
// and the state size is fixed at construction — so a 100k-session job
// holds the same collector memory as an 8-session one.
func TestStreamCollectorConstantMemory(t *testing.T) {
	c := NewStreamCollector(2)
	outcomes := syntheticOutcomes(1024, 5)
	i := 0
	allocs := testing.AllocsPerRun(100000, func() {
		c.Add(i, outcomes[i%len(outcomes)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("StreamCollector.Add allocates %.1f objects/op, want 0", allocs)
	}
	st := c.State()
	if st.Sessions < 100000 {
		t.Fatalf("folded %d sessions, want >= 100000", st.Sessions)
	}
	if got := st.Aggregate(); got.Sessions != st.Sessions || got.Frames == 0 {
		t.Fatalf("aggregate over 100k synthetic sessions looks empty: %+v", got)
	}
}

// TestStreamQuantileAgainstExact fuzzes the sketch estimator against
// stats.Percentile over random samples, checking the documented bound
// directly.
func TestStreamQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(400)
		m := newMetricSketch(0, 1)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
			m.add(xs[i])
		}
		for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
			got := m.Quantile(p)
			want := exactPercentile(xs, p)
			if math.Abs(got-want) > m.ErrorBound() {
				t.Fatalf("trial %d n=%d p%.0f: sketch %v vs exact %v exceeds %v",
					trial, n, p, got, want, m.ErrorBound())
			}
		}
	}
	var empty MetricSketch
	if !math.IsNaN(empty.Quantile(50)) || !math.IsNaN(empty.Mean()) {
		t.Fatal("empty sketch should summarize to NaN")
	}
}

// exactPercentile mirrors stats.Percentile without importing it into
// the fleet package's test (avoiding a reference implementation drift
// would hide): sort a copy, interpolate at rank p/100·(n−1).
func exactPercentile(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp) == 1 {
		return cp[0]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo < 0 {
		lo, hi = 0, 0
	}
	if hi >= len(cp) {
		lo, hi = len(cp)-1, len(cp)-1
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// TestMergeRejectsMismatches pins the guard rails: mismatched sketch
// shapes, schema versions, and mixed exact/stream merges must error
// rather than silently corrupt aggregates.
func TestMergeRejectsMismatches(t *testing.T) {
	a := NewStreamCollector(1).State()
	b := NewStreamCollector(2).State()
	if _, err := MergeStreamStates(a, b); err == nil {
		t.Fatal("merging sketches with different outage ranges succeeded")
	}
	bad := a.clone()
	bad.SchemaV = 99
	if _, err := MergeStreamStates(a, bad); err == nil {
		t.Fatal("merging mismatched schema versions succeeded")
	}
	if _, err := MergeStreamStates(); err == nil {
		t.Fatal("merging zero states succeeded")
	}
	exact := Result{Sessions: []SessionOutcome{{}}}
	streamed := Result{Stream: &a}
	if _, err := MergeShardResults(exact, streamed); err == nil {
		t.Fatal("merging mixed exact/stream shard results succeeded")
	}
	if _, err := MergeShardResults(); err == nil {
		t.Fatal("merging zero shard results succeeded")
	}
}
