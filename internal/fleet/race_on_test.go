//go:build race

package fleet

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation overhead makes wall-clock speedup
// assertions meaningless.
const raceEnabled = true
