package fleet

import (
	"fmt"
	"math/rand"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/venue"
)

// DefaultVenueBays is the bay count the venue scenario lays out when
// none is configured; MaxVenueBays bounds it so a venue job cannot
// outgrow the session budget (MaxVenueBays × MaxCoexHeadsets is still
// within movrd's per-job session cap).
const (
	DefaultVenueBays = 4
	MaxVenueBays     = 64
)

// Admission behaviors for players beyond a bay's capacity
// (ScenarioConfig.VenueAdmission and the movrd admission field).
const (
	AdmissionQueue  = "queue"
	AdmissionReject = "reject"
)

// ParseAdmission validates an admission-behavior name; empty means
// AdmissionQueue.
func ParseAdmission(s string) (string, error) {
	switch s {
	case "":
		return AdmissionQueue, nil
	case AdmissionQueue, AdmissionReject:
		return s, nil
	}
	return "", fmt.Errorf("unknown admission behavior %q (%s|%s)", s, AdmissionQueue, AdmissionReject)
}

// Venue generates a venue-scale deployment: `bays` contended coex bays
// (identical to Coex's 8 m × 8 m three-reflector rooms) laid out on a
// near-square grid with shared drywall partitions, so the bays' 60 GHz
// channels are no longer private. Per bay, on top of everything Coex
// models:
//
//   - channel assignment: each bay gets one of cfg.VenueChannels
//     channels under cfg.VenueAssign (greedy coloring by default; see
//     venue.AssignChannels);
//   - cross-bay interference: a bay with co-channel neighbors carries a
//     per-window SINR penalty computed from those neighbors' geometry
//     snapshots (venue.InterferenceTable) — folded into every session's
//     link budget via the coex scheduler's external-interference input;
//   - admission control: players beyond the bay's schedulable capacity
//     (coex.MaxAdmissible for the policy and window timing) are queued
//     or rejected per cfg.VenueAdmission. They never enter the world;
//     the bay's first session records the overflow on its event stream.
//
// A 1-bay venue has no neighbors, leaks nowhere, and generates
// byte-identical results to the equivalent Coex room — the guard that
// pins the venue layer to the single-room physics.
func Venue(bays, headsetsPerRoom int, cfg ScenarioConfig) ([]Spec, error) {
	if bays <= 0 {
		bays = DefaultVenueBays
	}
	if bays > MaxVenueBays {
		return nil, fmt.Errorf("venue: %d bays exceeds the maximum %d", bays, MaxVenueBays)
	}
	if headsetsPerRoom <= 0 {
		headsetsPerRoom = DefaultCoexHeadsets
	}
	cfg = cfg.withDefaults()
	admission, err := ParseAdmission(cfg.VenueAdmission)
	if err != nil {
		return nil, err
	}

	const w, d = 8, 8
	layout, err := venue.Grid(bays, w, d, room.Drywall)
	if err != nil {
		return nil, err
	}
	chans, err := venue.AssignChannels(layout, cfg.VenueChannels, cfg.VenueAssign)
	if err != nil {
		return nil, err
	}

	// Admission: the TDMA window only fits so many players under the
	// configured policy and uplink reservation; the rest are held back
	// before any world is built.
	admitted := coex.MaxAdmissible(cfg.CoexPolicy, headsetsPerRoom, cfg.ReEvalPeriod, 0, cfg.CoexUplink)
	if admitted > headsetsPerRoom {
		admitted = headsetsPerRoom
	}
	overflow := headsetsPerRoom - admitted

	rng := rand.New(rand.NewSource(cfg.Seed))
	mounts := append(experiments.DefaultMounts(w, d),
		experiments.Mount{Pos: geom.V(w/2, 0), FacingDeg: 90})
	weights := cycleWeights(admitted, cfg.CoexWeights)

	// Phase 1: build every bay first — admitted players, traces and the
	// room-owned geometry snapshot — in the exact rng order Coex draws,
	// so a 1-bay venue is bit-identical to a 1-room coex run.
	bayData := make([]coexBay, bays)
	geos := make([]*coex.Geometry, bays)
	for b := 0; b < bays; b++ {
		bayData[b] = buildCoexBay(rng, admitted, w, d, weights, cfg)
		geos[b] = bayData[b].geo
	}

	// Phase 2: with every bay's transmit schedule known, price the
	// cross-bay leakage. Interference-free bays (no co-channel neighbor,
	// or interference switched off) keep an empty table and with it the
	// exact historical rate path.
	params := venue.DefaultParams(experiments.APPos)
	ext := make([][]float64, bays)
	if !cfg.VenueInterferenceOff {
		for b := 0; b < bays; b++ {
			if layout.CoChannelNeighbors(chans, b) == 0 {
				continue
			}
			ext[b] = venue.InterferenceTable(layout, chans, b, geos, params)
		}
	}

	var specs []Spec
	for b := 0; b < bays; b++ {
		for h := 0; h < admitted; h++ {
			sess := cfg.session(bayData[b].seeds[h])
			sess.RoomW, sess.RoomD = w, d
			sess.Mounts = mounts
			sess.Coex = &coex.Room{
				Players:          bayData[b].traces,
				Self:             h,
				Period:           cfg.ReEvalPeriod,
				Policy:           cfg.CoexPolicy,
				Weights:          weights,
				UplinkSlot:       cfg.CoexUplink,
				Geometry:         geos[b],
				ExtSINRPenaltyDB: ext[b],
			}
			if h == 0 && overflow > 0 {
				// The bay's first session carries the admission
				// bookkeeping so venue traces show where capacity ran
				// out.
				if admission == AdmissionReject {
					sess.AdmissionRejected = overflow
				} else {
					sess.AdmissionQueued = overflow
				}
			}
			specs = append(specs, Spec{
				ID:      fmt.Sprintf("venue/b%d/h%d", b, h),
				Session: sess,
			})
		}
	}
	return specs, nil
}

// VenueN generates a venue sized for roughly n sessions: cfg.VenueBays
// bays when configured, otherwise enough bays of cfg.HeadsetsPerRoom
// players (default 4) to hold n, truncated to n. A truncated bay's
// missing players still contend for airtime, block beams and leak into
// neighboring bays — they just are not simulated as sessions of their
// own.
func VenueN(n int, cfg ScenarioConfig) ([]Spec, error) {
	perRoom := cfg.HeadsetsPerRoom
	if perRoom <= 0 {
		perRoom = DefaultCoexHeadsets
	}
	bays := cfg.VenueBays
	if bays <= 0 {
		bays = (n + perRoom - 1) / perRoom
	}
	specs, err := Venue(bays, perRoom, cfg)
	if err != nil {
		return nil, err
	}
	if len(specs) > n {
		specs = specs[:n]
	}
	return specs, nil
}

// VenueCapacity reports how many of a bay's configured players the
// venue's admission controller will admit — the capacity movrd checks
// submissions against.
func VenueCapacity(headsetsPerRoom int, cfg ScenarioConfig) int {
	if headsetsPerRoom <= 0 {
		headsetsPerRoom = DefaultCoexHeadsets
	}
	cfg = cfg.withDefaults()
	admitted := coex.MaxAdmissible(cfg.CoexPolicy, headsetsPerRoom, cfg.ReEvalPeriod, 0, cfg.CoexUplink)
	if admitted > headsetsPerRoom {
		admitted = headsetsPerRoom
	}
	return admitted
}

// venueSessions reports how many sessions VenueN would generate before
// truncation — bays × admitted players.
func venueSessions(bays, headsetsPerRoom int, cfg ScenarioConfig) int {
	if bays <= 0 {
		bays = DefaultVenueBays
	}
	return bays * VenueCapacity(headsetsPerRoom, cfg)
}
