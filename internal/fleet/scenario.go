package fleet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/coex"
	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/venue"
	"github.com/movr-sim/movr/internal/vr"
)

// ScenarioConfig tunes the generated sessions. Zero values give a 5 s
// session at the paper's 50 ms tracking cadence.
type ScenarioConfig struct {
	// Duration is the per-session play length.
	Duration time.Duration

	// ReEvalPeriod is the tracking cadence.
	ReEvalPeriod time.Duration

	// Seed drives everything: room sizes, player stations, blocker
	// placement, and every per-session motion seed. The same seed
	// always generates the same spec set.
	Seed int64

	// HeadsetsPerRoom sets how many players share each coex bay's
	// medium (coex-family scenarios only; 0 means 4).
	HeadsetsPerRoom int

	// CoexPolicy selects the airtime policy of every coex bay's TDMA
	// scheduler (coex-family scenarios only; empty means round-robin).
	// The coexpf and coexedf kinds force it to pf and edf respectively.
	CoexPolicy coex.PolicyName

	// CoexUplink reserves a pose-report uplink sub-slot of this length
	// per active player at the head of every scheduling window of a
	// coex bay, subtracted from the downlink airtime (0 = off).
	CoexUplink time.Duration

	// CoexWeights are per-player airtime weights applied to every coex
	// bay, cycled when a bay holds more players than weights. Nil means
	// equal weights.
	CoexWeights []float64

	// VenueBays sets how many adjacent bays the venue scenario lays out
	// on its grid (venue scenario only; 0 means DefaultVenueBays).
	VenueBays int

	// VenueChannels is the venue's channel budget for bay assignment
	// (venue scenario only; 0 means venue.DefaultChannels).
	VenueChannels int

	// VenueAssign selects the venue's channel-assignment strategy
	// (venue scenario only; empty means greedy coloring).
	VenueAssign venue.AssignMode

	// VenueInterferenceOff disables cross-bay interference, leaving the
	// venue a pure replication of independent coex bays — the knob the
	// bit-identity guard and A/B studies flip.
	VenueInterferenceOff bool

	// VenueAdmission selects what happens to players beyond a bay's
	// admission capacity (coex.MaxAdmissible): AdmissionQueue (the
	// default) holds them for a later slot, AdmissionReject turns them
	// away. Either way they never enter the world; the choice only
	// changes which admission event the bay's trace carries.
	VenueAdmission string
}

func (cfg ScenarioConfig) withDefaults() ScenarioConfig {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.ReEvalPeriod <= 0 {
		cfg.ReEvalPeriod = 50 * time.Millisecond
	}
	return cfg
}

// session builds the common per-session config.
func (cfg ScenarioConfig) session(seed int64) experiments.SessionConfig {
	return experiments.SessionConfig{
		Duration:     cfg.Duration,
		Seed:         seed,
		ReEvalPeriod: cfg.ReEvalPeriod,
	}
}

// Kind names a scenario generator. It is the shared vocabulary of the
// movrsim CLI's -scenario flag and the movrd job API's fleet scenario
// field, so the two front-ends cannot drift apart.
type Kind string

// The recognised scenario kinds.
const (
	KindMixed  Kind = "mixed"
	KindArcade Kind = "arcade"
	KindHome   Kind = "home"
	KindDense  Kind = "dense"
	KindCoex   Kind = "coex"

	// KindCoexPF and KindCoexEDF are the coex scenario with the
	// proportional-fair and deadline-aware airtime policies forced on —
	// shorthand kinds so the policy family is one -scenario flag away
	// and gets its own bench suite entries.
	KindCoexPF  Kind = "coexpf"
	KindCoexEDF Kind = "coexedf"

	// KindVenue is the venue-scale scenario: a grid of adjacent coex
	// bays whose channels leak through the partition walls, with
	// per-bay channel assignment, cross-bay interference and admission
	// control (see Venue).
	KindVenue Kind = "venue"
)

// Kinds lists the recognised scenario kinds in menu order.
var Kinds = []Kind{KindMixed, KindArcade, KindHome, KindDense, KindCoex, KindCoexPF, KindCoexEDF, KindVenue}

// IsCoexKind reports whether the kind is a shared-medium scenario — the
// family the players-per-bay, airtime-policy and uplink knobs apply to.
// The venue kind is in the family: its bays are coex rooms.
func IsCoexKind(k Kind) bool {
	return k == KindCoex || k == KindCoexPF || k == KindCoexEDF || k == KindVenue
}

// IsVenueKind reports whether the kind is the venue scenario — the only
// kind the bays, channels, assignment and admission knobs apply to.
func IsVenueKind(k Kind) bool { return k == KindVenue }

// KindNames renders the menu for usage strings:
// "mixed|arcade|home|dense|coex|coexpf|coexedf|venue".
func KindNames() string {
	names := make([]string, len(Kinds))
	for i, k := range Kinds {
		names[i] = string(k)
	}
	return strings.Join(names, "|")
}

// ParseKind validates a scenario name.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if s == string(k) {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown scenario %q (%s)", s, KindNames())
}

// Specs generates the deterministic spec set for n sessions of kind k.
// An unknown kind is an error carrying the same menu ParseKind prints —
// it used to yield a silent nil, which front-ends could mistake for an
// empty scenario.
func (k Kind) Specs(n int, cfg ScenarioConfig) ([]Spec, error) {
	switch k {
	case KindMixed:
		return Mixed(n, cfg), nil
	case KindArcade:
		return ArcadeN(n, cfg), nil
	case KindHome:
		return Homes(n, cfg), nil
	case KindDense:
		return DenseBlockers(n, defaultDenseBlockers, cfg), nil
	case KindCoex:
		return CoexN(n, cfg), nil
	case KindCoexPF:
		cfg.CoexPolicy = coex.PolicyPF
		return CoexN(n, cfg), nil
	case KindCoexEDF:
		cfg.CoexPolicy = coex.PolicyEDF
		return CoexN(n, cfg), nil
	case KindVenue:
		return VenueN(n, cfg)
	}
	return nil, fmt.Errorf("unknown scenario %q (%s)", string(k), KindNames())
}

// Title is the human-readable report banner for the kind.
func (k Kind) Title() string {
	switch k {
	case KindMixed:
		return "Fleet — mixed deployments (arcade + homes + dense blockers)"
	case KindArcade:
		return "Fleet — VR arcade (8×8 m bays, 4 players each)"
	case KindHome:
		return "Fleet — homes (one headset per room)"
	case KindDense:
		return fmt.Sprintf("Fleet — dense-blocker stress (office + %d obstacles)", defaultDenseBlockers)
	case KindCoex:
		return "Fleet — VR arcade, shared medium (TDMA airtime + inter-player blockage)"
	case KindCoexPF:
		return "Fleet — VR arcade, shared medium (proportional-fair airtime + inter-player blockage)"
	case KindCoexEDF:
		return "Fleet — VR arcade, shared medium (deadline-aware airtime + inter-player blockage)"
	case KindVenue:
		return "Fleet — venue (bay grid, cross-bay interference + channel assignment + admission)"
	}
	return "Fleet"
}

// defaultDenseBlockers is the obstacle count Kind.Specs uses for the
// dense scenario — the historical movrsim default.
const defaultDenseBlockers = 6

// Arcade generates a VR-arcade deployment: `rooms` large 8 m × 8 m bays,
// each with three wall-mounted reflectors and `headsetsPerRoom` players.
// Every player is an independent session in the shared geometry, with
// the other players' bodies standing as blockers at their stations — the
// multi-user room VirtualNexus-style scenarios motivate.
func Arcade(rooms, headsetsPerRoom int, cfg ScenarioConfig) []Spec {
	if rooms <= 0 {
		rooms = 1
	}
	if headsetsPerRoom <= 0 {
		headsetsPerRoom = 4
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const w, d = 8, 8
	// The standard install plus a third reflector on the south wall for
	// the bay's extra span.
	mounts := append(experiments.DefaultMounts(w, d),
		experiments.Mount{Pos: geom.V(w/2, 0), FacingDeg: 90})

	var specs []Spec
	for r := 0; r < rooms; r++ {
		stations := scatter(rng, headsetsPerRoom, 1.2, w-1.2, 1.2, d-1.2, 1.0)
		seeds := make([]int64, headsetsPerRoom)
		for h := range seeds {
			seeds[h] = rng.Int63()
		}
		for h := 0; h < headsetsPerRoom; h++ {
			sess := cfg.session(seeds[h])
			sess.RoomW, sess.RoomD = w, d
			sess.Mounts = mounts
			for j, st := range stations {
				if j != h {
					sess.Blockers = append(sess.Blockers, room.Body(st))
				}
			}
			specs = append(specs, Spec{
				ID:      fmt.Sprintf("arcade/r%d/h%d", r, h),
				Session: sess,
			})
		}
	}
	return specs
}

// ArcadeN generates four-player arcade bays sized for exactly n
// sessions: enough rooms to hold them, truncated to n.
func ArcadeN(n int, cfg ScenarioConfig) []Spec {
	const perRoom = 4
	specs := Arcade((n+perRoom-1)/perRoom, perRoom, cfg)
	if len(specs) > n {
		specs = specs[:n]
	}
	return specs
}

// Coex generates contended VR-arcade bays: the same 8 m × 8 m
// three-reflector rooms as Arcade, but the bay's one 60 GHz channel is
// genuinely shared. Each player transmits only during its TDMA slots of
// the tracking cadence, sized by cfg.CoexPolicy (round-robin by
// default; slots of body-blocked players are reclaimed by the others —
// coex.Scheduler), optionally behind a per-player pose-uplink
// reservation (cfg.CoexUplink) and per-player weights
// (cfg.CoexWeights), and every other player's body follows its own
// motion trace through the room as a dynamic obstacle instead of
// standing at a fixed station. This is the first workload where
// per-player delivered rate degrades as headsetsPerRoom grows.
func Coex(rooms, headsetsPerRoom int, cfg ScenarioConfig) []Spec {
	if rooms <= 0 {
		rooms = 1
	}
	if headsetsPerRoom <= 0 {
		headsetsPerRoom = DefaultCoexHeadsets
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const w, d = 8, 8
	mounts := append(experiments.DefaultMounts(w, d),
		experiments.Mount{Pos: geom.V(w/2, 0), FacingDeg: 90})

	// One weight vector serves every bay (cycled over the room's
	// players); every session of a room shares the same backing slice,
	// like the trace set.
	weights := cycleWeights(headsetsPerRoom, cfg.CoexWeights)

	var specs []Spec
	for r := 0; r < rooms; r++ {
		bay := buildCoexBay(rng, headsetsPerRoom, w, d, weights, cfg)
		for h := 0; h < headsetsPerRoom; h++ {
			sess := cfg.session(bay.seeds[h])
			sess.RoomW, sess.RoomD = w, d
			sess.Mounts = mounts
			sess.Coex = &coex.Room{
				Players:    bay.traces,
				Self:       h,
				Period:     cfg.ReEvalPeriod,
				Policy:     cfg.CoexPolicy,
				Weights:    weights,
				UplinkSlot: cfg.CoexUplink,
				Geometry:   bay.geo,
			}
			specs = append(specs, Spec{
				ID:      fmt.Sprintf("coex/r%d/h%d", r, h),
				Session: sess,
			})
		}
	}
	return specs
}

// cycleWeights materializes the per-player weight vector for an n-player
// bay: the configured weights cycled out to length n, nil when none are
// configured (equal weights).
func cycleWeights(n int, from []float64) []float64 {
	if len(from) == 0 {
		return nil
	}
	w := make([]float64, n)
	for h := range w {
		w[h] = from[h%len(from)]
	}
	return w
}

// coexBay is one shared-medium bay's generated state: every player's
// motion seed and trace, and the room-owned geometry snapshot all of the
// bay's sessions share.
type coexBay struct {
	seeds  []int64
	traces []vr.Trace
	geo    *coex.Geometry
}

// buildCoexBay draws one bay's players and snapshot from rng. Both the
// coex and venue generators route every bay through this builder in bay
// order, so a venue consumes the rng stream exactly as the same number
// of coex rooms would — the venue↔coex bit-identity guard depends on it.
//
// Every player's trace is generated up front exactly the way the session
// will regenerate its own (same room, seed and duration), so each
// session's scheduler sees the identical room: peers from these traces,
// itself from its live session trace. The geometry snapshot — every
// player's pose grid and the full window schedule — is built once here
// and shared read-only by all of the bay's sessions, so each session
// reads the schedule instead of re-running the airtime policy per
// window.
func buildCoexBay(rng *rand.Rand, headsets int, w, d float64, weights []float64, cfg ScenarioConfig) coexBay {
	seeds := make([]int64, headsets)
	for h := range seeds {
		seeds[h] = rng.Int63()
	}
	traces := make([]vr.Trace, headsets)
	for h, seed := range seeds {
		trCfg := vr.DefaultTraceConfig(w, d, seed)
		trCfg.Duration = cfg.Duration
		tr, err := vr.Generate(trCfg)
		if err != nil {
			panic(err) // 8×8 m bay always fits the motion generator
		}
		traces[h] = tr
	}
	geo, err := experiments.BuildCoexGeometry(coex.Room{
		Players:    traces,
		Period:     cfg.ReEvalPeriod,
		Policy:     cfg.CoexPolicy,
		Weights:    weights,
		UplinkSlot: cfg.CoexUplink,
	}, cfg.Duration)
	if err != nil {
		panic(err) // traces validated by generation above
	}
	return coexBay{seeds: seeds, traces: traces, geo: geo}
}

// DefaultCoexHeadsets matches the arcade bay's four players; both
// front-ends (the movrsim -players flag and the movrd headsets_per_room
// field) default to it, so CLI runs and daemon jobs describe the same
// bay. MaxCoexHeadsets bounds the per-room count: each extra headset
// adds a dynamic obstacle to every co-located session's world, so cost
// grows quadratically with the room's population.
const (
	DefaultCoexHeadsets = 4
	MaxCoexHeadsets     = 8
)

// CoexN generates shared-medium arcade bays sized for exactly n
// sessions: cfg.HeadsetsPerRoom players per bay (default 4), enough
// rooms to hold them, truncated to n. A truncated bay's missing players
// still contend for airtime and block beams — they just are not
// simulated as sessions of their own.
func CoexN(n int, cfg ScenarioConfig) []Spec {
	perRoom := cfg.HeadsetsPerRoom
	if perRoom <= 0 {
		perRoom = DefaultCoexHeadsets
	}
	specs := Coex((n+perRoom-1)/perRoom, perRoom, cfg)
	if len(specs) > n {
		specs = specs[:n]
	}
	return specs
}

// Homes generates a consumer deployment: n homes, each a differently
// sized bare room (3.5–6.5 m per side) with a single far-corner
// reflector and one headset — the paper §1's living-room install,
// multiplied across households.
func Homes(n int, cfg ScenarioConfig) []Spec {
	if n <= 0 {
		n = 8
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		w := 3.5 + rng.Float64()*3
		d := 3.5 + rng.Float64()*3
		sess := cfg.session(rng.Int63())
		sess.RoomW, sess.RoomD = w, d
		sess.Mounts = experiments.DefaultMounts(w, d)[:1] // far corner only
		specs = append(specs, Spec{
			ID:      fmt.Sprintf("home/%d", i),
			Session: sess,
		})
	}
	return specs
}

// DenseBlockers generates a stress deployment: n sessions in the paper's
// office with the standard two-reflector install, but with `blockers`
// extra standing obstacles — furniture and bystanders — cluttering the
// room. This probes how much scenery the reflector geometry can route
// around before coverage collapses.
func DenseBlockers(n, blockers int, cfg ScenarioConfig) []Spec {
	if n <= 0 {
		n = 8
	}
	if blockers <= 0 {
		blockers = 6
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		sess := cfg.session(rng.Int63())
		spots := scatter(rng, blockers, 0.8, 4.2, 0.8, 4.2, 0.6)
		for j, p := range spots {
			if j%2 == 0 {
				sess.Blockers = append(sess.Blockers, room.Furniture(p, 0.2+rng.Float64()*0.15))
			} else {
				sess.Blockers = append(sess.Blockers, room.Body(p))
			}
		}
		specs = append(specs, Spec{
			ID:      fmt.Sprintf("dense/%d", i),
			Session: sess,
		})
	}
	return specs
}

// Mixed interleaves the three deployment kinds into roughly n sessions —
// the default fleet workload of the movrsim CLI.
func Mixed(n int, cfg ScenarioConfig) []Spec {
	if n <= 0 {
		n = 12
	}
	cfg = cfg.withDefaults()
	third := n / 3
	rest := n - 2*third

	var specs []Spec
	if third > 0 {
		sub := cfg
		sub.Seed = cfg.Seed + 0x9E3779B9
		specs = append(specs, ArcadeN(third, sub)...)

		sub.Seed = cfg.Seed + 2*0x9E3779B9
		specs = append(specs, Homes(third, sub)...)
	}
	sub := cfg
	sub.Seed = cfg.Seed + 3*0x9E3779B9
	specs = append(specs, DenseBlockers(rest, 6, sub)...)
	return specs
}

// scatter draws n points in the rectangle [x0,x1]×[y0,y1], each at least
// minGap from the others and 1.5 m from the AP corner. The rejection
// budget is bounded so pathological inputs still terminate: a crowded
// rectangle relaxes the gap between points but never the AP keep-out
// (standing on the base station is not a VR pose).
func scatter(rng *rand.Rand, n int, x0, x1, y0, y1, minGap float64) []geom.Vec {
	pts := make([]geom.Vec, 0, n)
	for len(pts) < n {
		var p geom.Vec
		for attempt := 0; attempt < 4096; attempt++ {
			p = geom.V(x0+rng.Float64()*(x1-x0), y0+rng.Float64()*(y1-y0))
			if p.Dist(experiments.APPos) < 1.5 {
				continue // never give up the keep-out
			}
			if attempt >= 64 {
				break // crowded: give up on the inter-point gap
			}
			clear := true
			for _, q := range pts {
				if p.Dist(q) < minGap {
					clear = false
					break
				}
			}
			if clear {
				break
			}
		}
		pts = append(pts, p)
	}
	return pts
}
