package fleet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/movr-sim/movr/internal/experiments"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
)

// ScenarioConfig tunes the generated sessions. Zero values give a 5 s
// session at the paper's 50 ms tracking cadence.
type ScenarioConfig struct {
	// Duration is the per-session play length.
	Duration time.Duration

	// ReEvalPeriod is the tracking cadence.
	ReEvalPeriod time.Duration

	// Seed drives everything: room sizes, player stations, blocker
	// placement, and every per-session motion seed. The same seed
	// always generates the same spec set.
	Seed int64
}

func (cfg ScenarioConfig) withDefaults() ScenarioConfig {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.ReEvalPeriod <= 0 {
		cfg.ReEvalPeriod = 50 * time.Millisecond
	}
	return cfg
}

// session builds the common per-session config.
func (cfg ScenarioConfig) session(seed int64) experiments.SessionConfig {
	return experiments.SessionConfig{
		Duration:     cfg.Duration,
		Seed:         seed,
		ReEvalPeriod: cfg.ReEvalPeriod,
	}
}

// Kind names a scenario generator. It is the shared vocabulary of the
// movrsim CLI's -scenario flag and the movrd job API's fleet scenario
// field, so the two front-ends cannot drift apart.
type Kind string

// The recognised scenario kinds.
const (
	KindMixed  Kind = "mixed"
	KindArcade Kind = "arcade"
	KindHome   Kind = "home"
	KindDense  Kind = "dense"
)

// Kinds lists the recognised scenario kinds in menu order.
var Kinds = []Kind{KindMixed, KindArcade, KindHome, KindDense}

// KindNames renders the menu for usage strings: "mixed|arcade|home|dense".
func KindNames() string {
	names := make([]string, len(Kinds))
	for i, k := range Kinds {
		names[i] = string(k)
	}
	return strings.Join(names, "|")
}

// ParseKind validates a scenario name.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if s == string(k) {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown scenario %q (%s)", s, KindNames())
}

// Specs generates the deterministic spec set for n sessions of kind k.
// An unknown kind yields nil (use ParseKind to validate input first).
func (k Kind) Specs(n int, cfg ScenarioConfig) []Spec {
	switch k {
	case KindMixed:
		return Mixed(n, cfg)
	case KindArcade:
		return ArcadeN(n, cfg)
	case KindHome:
		return Homes(n, cfg)
	case KindDense:
		return DenseBlockers(n, defaultDenseBlockers, cfg)
	}
	return nil
}

// Title is the human-readable report banner for the kind.
func (k Kind) Title() string {
	switch k {
	case KindMixed:
		return "Fleet — mixed deployments (arcade + homes + dense blockers)"
	case KindArcade:
		return "Fleet — VR arcade (8×8 m bays, 4 players each)"
	case KindHome:
		return "Fleet — homes (one headset per room)"
	case KindDense:
		return fmt.Sprintf("Fleet — dense-blocker stress (office + %d obstacles)", defaultDenseBlockers)
	}
	return "Fleet"
}

// defaultDenseBlockers is the obstacle count Kind.Specs uses for the
// dense scenario — the historical movrsim default.
const defaultDenseBlockers = 6

// Arcade generates a VR-arcade deployment: `rooms` large 8 m × 8 m bays,
// each with three wall-mounted reflectors and `headsetsPerRoom` players.
// Every player is an independent session in the shared geometry, with
// the other players' bodies standing as blockers at their stations — the
// multi-user room VirtualNexus-style scenarios motivate.
func Arcade(rooms, headsetsPerRoom int, cfg ScenarioConfig) []Spec {
	if rooms <= 0 {
		rooms = 1
	}
	if headsetsPerRoom <= 0 {
		headsetsPerRoom = 4
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const w, d = 8, 8
	// The standard install plus a third reflector on the south wall for
	// the bay's extra span.
	mounts := append(experiments.DefaultMounts(w, d),
		experiments.Mount{Pos: geom.V(w/2, 0), FacingDeg: 90})

	var specs []Spec
	for r := 0; r < rooms; r++ {
		stations := scatter(rng, headsetsPerRoom, 1.2, w-1.2, 1.2, d-1.2, 1.0)
		seeds := make([]int64, headsetsPerRoom)
		for h := range seeds {
			seeds[h] = rng.Int63()
		}
		for h := 0; h < headsetsPerRoom; h++ {
			sess := cfg.session(seeds[h])
			sess.RoomW, sess.RoomD = w, d
			sess.Mounts = mounts
			for j, st := range stations {
				if j != h {
					sess.Blockers = append(sess.Blockers, room.Body(st))
				}
			}
			specs = append(specs, Spec{
				ID:      fmt.Sprintf("arcade/r%d/h%d", r, h),
				Session: sess,
			})
		}
	}
	return specs
}

// ArcadeN generates four-player arcade bays sized for exactly n
// sessions: enough rooms to hold them, truncated to n.
func ArcadeN(n int, cfg ScenarioConfig) []Spec {
	const perRoom = 4
	specs := Arcade((n+perRoom-1)/perRoom, perRoom, cfg)
	if len(specs) > n {
		specs = specs[:n]
	}
	return specs
}

// Homes generates a consumer deployment: n homes, each a differently
// sized bare room (3.5–6.5 m per side) with a single far-corner
// reflector and one headset — the paper §1's living-room install,
// multiplied across households.
func Homes(n int, cfg ScenarioConfig) []Spec {
	if n <= 0 {
		n = 8
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		w := 3.5 + rng.Float64()*3
		d := 3.5 + rng.Float64()*3
		sess := cfg.session(rng.Int63())
		sess.RoomW, sess.RoomD = w, d
		sess.Mounts = experiments.DefaultMounts(w, d)[:1] // far corner only
		specs = append(specs, Spec{
			ID:      fmt.Sprintf("home/%d", i),
			Session: sess,
		})
	}
	return specs
}

// DenseBlockers generates a stress deployment: n sessions in the paper's
// office with the standard two-reflector install, but with `blockers`
// extra standing obstacles — furniture and bystanders — cluttering the
// room. This probes how much scenery the reflector geometry can route
// around before coverage collapses.
func DenseBlockers(n, blockers int, cfg ScenarioConfig) []Spec {
	if n <= 0 {
		n = 8
	}
	if blockers <= 0 {
		blockers = 6
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		sess := cfg.session(rng.Int63())
		spots := scatter(rng, blockers, 0.8, 4.2, 0.8, 4.2, 0.6)
		for j, p := range spots {
			if j%2 == 0 {
				sess.Blockers = append(sess.Blockers, room.Furniture(p, 0.2+rng.Float64()*0.15))
			} else {
				sess.Blockers = append(sess.Blockers, room.Body(p))
			}
		}
		specs = append(specs, Spec{
			ID:      fmt.Sprintf("dense/%d", i),
			Session: sess,
		})
	}
	return specs
}

// Mixed interleaves the three deployment kinds into roughly n sessions —
// the default fleet workload of the movrsim CLI.
func Mixed(n int, cfg ScenarioConfig) []Spec {
	if n <= 0 {
		n = 12
	}
	cfg = cfg.withDefaults()
	third := n / 3
	rest := n - 2*third

	var specs []Spec
	if third > 0 {
		sub := cfg
		sub.Seed = cfg.Seed + 0x9E3779B9
		specs = append(specs, ArcadeN(third, sub)...)

		sub.Seed = cfg.Seed + 2*0x9E3779B9
		specs = append(specs, Homes(third, sub)...)
	}
	sub := cfg
	sub.Seed = cfg.Seed + 3*0x9E3779B9
	specs = append(specs, DenseBlockers(rest, 6, sub)...)
	return specs
}

// scatter draws n points in the rectangle [x0,x1]×[y0,y1], each at least
// minGap from the others and 1.5 m from the AP corner. The rejection
// budget is bounded so pathological inputs still terminate: a crowded
// rectangle relaxes the gap between points but never the AP keep-out
// (standing on the base station is not a VR pose).
func scatter(rng *rand.Rand, n int, x0, x1, y0, y1, minGap float64) []geom.Vec {
	pts := make([]geom.Vec, 0, n)
	for len(pts) < n {
		var p geom.Vec
		for attempt := 0; attempt < 4096; attempt++ {
			p = geom.V(x0+rng.Float64()*(x1-x0), y0+rng.Float64()*(y1-y0))
			if p.Dist(experiments.APPos) < 1.5 {
				continue // never give up the keep-out
			}
			if attempt >= 64 {
				break // crowded: give up on the inter-point gap
			}
			clear := true
			for _, q := range pts {
				if p.Dist(q) < minGap {
					clear = false
					break
				}
			}
			if clear {
				break
			}
		}
		pts = append(pts, p)
	}
	return pts
}
