package fleet

import (
	"context"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/coex"
)

// coexTestCfg is the seeded configuration every coexistence test runs
// under; 2 s at the 50 ms cadence is long enough for rotation and
// blockage diversity while staying fast.
func coexTestCfg() ScenarioConfig {
	return ScenarioConfig{Seed: 7, Duration: 2 * time.Second}
}

func meanDelivered(t *testing.T, specs []Spec) float64 {
	t.Helper()
	res, err := Run(context.Background(), specs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Agg.DeliveredFrac.Mean
}

// TestCoexContentionMonotone is the headline property of the coex
// workload: sharing one 60 GHz medium hurts, and hurts more the more
// players share it. With the same seed and duration, mean per-player
// delivered rate is strictly ordered
//
//	coex 4 players < coex 2 players < independent arcade sessions
//
// — the independent arcade baseline gives every player the full channel
// (contention-free), so it upper-bounds both shared rooms.
func TestCoexContentionMonotone(t *testing.T) {
	cfg := coexTestCfg()
	arcade := meanDelivered(t, Arcade(1, 4, cfg))
	coex2 := meanDelivered(t, Coex(1, 2, cfg))
	coex4 := meanDelivered(t, Coex(1, 4, cfg))

	t.Logf("mean delivered: arcade=%.4f coex2=%.4f coex4=%.4f", arcade, coex2, coex4)
	if !(coex4 < coex2) {
		t.Errorf("4-player bay (%.4f) should deliver strictly less than 2-player bay (%.4f)", coex4, coex2)
	}
	if !(coex2 < arcade) {
		t.Errorf("2-player shared bay (%.4f) should deliver strictly less than independent arcade (%.4f)", coex2, arcade)
	}
}

// TestCoexPolicyAcceptance is the airtime-policy acceptance property:
// under 4-player contention on the pinned seed, the proportional-fair
// and deadline-aware policies each deliver a mean per-player rate at
// least as high as the round-robin default — pf by steering airtime to
// the players whose tracked geometry can use it, edf by refusing to
// split airtime across display frame deadlines (a slot boundary in the
// middle of a frame interval wastes the air on both sides of it).
func TestCoexPolicyAcceptance(t *testing.T) {
	cfg := coexTestCfg()
	rr := meanDelivered(t, Coex(1, 4, cfg))

	pfCfg := cfg
	pfCfg.CoexPolicy = coex.PolicyPF
	pf := meanDelivered(t, Coex(1, 4, pfCfg))

	edfCfg := cfg
	edfCfg.CoexPolicy = coex.PolicyEDF
	edf := meanDelivered(t, Coex(1, 4, edfCfg))

	t.Logf("mean delivered under 4-player contention: rr=%.4f pf=%.4f edf=%.4f", rr, pf, edf)
	if pf < rr {
		t.Errorf("proportional-fair mean delivered %.4f fell below round-robin %.4f", pf, rr)
	}
	if edf < rr {
		t.Errorf("deadline-aware mean delivered %.4f fell below round-robin %.4f", edf, rr)
	}
}

// TestCoexPolicyKindsThreadThePolicy pins the policy plumbing: the
// coexpf/coexedf kinds (and the explicit CoexPolicy knob) arrive in
// every generated session's coex room, along with the uplink and weight
// knobs, while the plain coex kind stays on the round-robin default.
func TestCoexPolicyKindsThreadThePolicy(t *testing.T) {
	cfg := coexTestCfg()
	cfg.CoexUplink = 300 * time.Microsecond
	cfg.CoexWeights = []float64{1, 2}
	for kind, want := range map[Kind]coex.PolicyName{
		KindCoex:    "",
		KindCoexPF:  coex.PolicyPF,
		KindCoexEDF: coex.PolicyEDF,
	} {
		specs := mustSpecs(t, kind, 4, cfg)
		for _, sp := range specs {
			rm := sp.Session.Coex
			if rm == nil {
				t.Fatalf("%s session %q has no coex room", kind, sp.ID)
			}
			if rm.Policy != want {
				t.Errorf("%s session %q: policy %q, want %q", kind, sp.ID, rm.Policy, want)
			}
			if rm.UplinkSlot != cfg.CoexUplink {
				t.Errorf("%s session %q: uplink %v, want %v", kind, sp.ID, rm.UplinkSlot, cfg.CoexUplink)
			}
			if len(rm.Weights) != 4 || rm.Weights[0] != 1 || rm.Weights[1] != 2 || rm.Weights[2] != 1 || rm.Weights[3] != 2 {
				t.Errorf("%s session %q: weights %v, want the cycled [1 2 1 2]", kind, sp.ID, rm.Weights)
			}
		}
	}
	if !IsCoexKind(KindCoex) || !IsCoexKind(KindCoexPF) || !IsCoexKind(KindCoexEDF) {
		t.Error("IsCoexKind must cover the whole coex family")
	}
	if IsCoexKind(KindMixed) || IsCoexKind(KindArcade) {
		t.Error("IsCoexKind must reject non-coex kinds")
	}
}

// TestLegacyKindsCarryNoCoex guards the byte-identity of the historical
// scenarios: the coex machinery must be dormant for every pre-existing
// kind, so their generated sessions — and therefore their aggregates —
// are untouched by this subsystem.
func TestLegacyKindsCarryNoCoex(t *testing.T) {
	cfg := coexTestCfg()
	for _, kind := range []Kind{KindMixed, KindArcade, KindHome, KindDense} {
		specs := mustSpecs(t, kind, 8, cfg)
		for _, sp := range specs {
			if sp.Session.Coex != nil {
				t.Errorf("%s session %q carries a coex config", kind, sp.ID)
			}
		}
	}
}

// TestCoexRoomsShareTraces pins the invariant the per-session schedulers
// rely on: every session in a bay is built over the identical player
// list, with itself at its own slot.
func TestCoexRoomsShareTraces(t *testing.T) {
	specs := Coex(2, 3, coexTestCfg())
	if len(specs) != 6 {
		t.Fatalf("generated %d specs, want 6", len(specs))
	}
	for r := 0; r < 2; r++ {
		first := specs[r*3].Session.Coex
		for h := 0; h < 3; h++ {
			c := specs[r*3+h].Session.Coex
			if c == nil {
				t.Fatalf("room %d session %d has no coex config", r, h)
			}
			if c.Self != h {
				t.Errorf("room %d session %d: Self = %d", r, h, c.Self)
			}
			if len(c.Players) != 3 {
				t.Fatalf("room %d session %d: %d players", r, h, len(c.Players))
			}
			for p := range c.Players {
				if &c.Players[p][0] != &first.Players[p][0] {
					t.Errorf("room %d session %d: player %d trace not shared with the room", r, h, p)
				}
			}
		}
	}
	// Rooms must not share traces with each other.
	if &specs[0].Session.Coex.Players[0][0] == &specs[3].Session.Coex.Players[0][0] {
		t.Error("distinct rooms share a player trace")
	}
}
