package fleet_test

import (
	"context"
	"fmt"
	"time"

	"github.com/movr-sim/movr/internal/fleet"
)

// ExampleCoex builds one shared-medium arcade bay — four headsets
// contending for a single 60 GHz channel, each co-player's body a
// moving obstacle on everyone else's mmWave paths — runs it, and reads
// the per-player delivered-rate reports. The generator precomputes the
// bay's room-owned geometry snapshot (window schedule + peer poses)
// once and shares it across all four sessions, and the whole pipeline
// is deterministic: this exact output is pinned on every run.
func ExampleCoex() {
	specs := fleet.Coex(1, 4, fleet.ScenarioConfig{
		Seed:     7,
		Duration: 2 * time.Second,
	})
	res, err := fleet.Run(context.Background(), specs, fleet.Config{Workers: 2})
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	for _, s := range res.Sessions {
		fmt.Printf("%s delivered %3d/%d frames (%5.1f%%)\n",
			s.ID, s.Report.Delivered, s.Report.Frames, 100*s.DeliveredFrac)
	}
	fmt.Printf("bay mean delivered rate: %.4f\n", res.Agg.DeliveredFrac.Mean)
	// Output:
	// coex/r0/h0 delivered   0/180 frames (  0.0%)
	// coex/r0/h1 delivered  35/180 frames ( 19.4%)
	// coex/r0/h2 delivered   0/180 frames (  0.0%)
	// coex/r0/h3 delivered  35/180 frames ( 19.4%)
	// bay mean delivered rate: 0.0972
}
