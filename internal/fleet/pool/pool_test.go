package pool

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0, 100} {
		var ran atomic.Int64
		err := ForEach(context.Background(), 50, workers, func(ctx context.Context, i int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, ran.Load())
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), 40, workers, func(ctx context.Context, i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(context.Background(), 10, 1, func(ctx context.Context, i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "item 3") {
		t.Errorf("error %q should name the failing item", err)
	}
	// Sequential single worker: nothing after the failing item runs.
	if len(ran) != 4 {
		t.Errorf("ran %v; items after the failure should be skipped", ran)
	}
}

func TestForEachErrorCancelsContext(t *testing.T) {
	boom := errors.New("boom")
	otherStarted := make(chan struct{})
	var once sync.Once
	var sawCancel atomic.Bool
	err := ForEach(context.Background(), 100, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			// Fail only once a sibling item is in flight, so the
			// cancellation has a live observer.
			select {
			case <-otherStarted:
			case <-time.After(time.Second):
			}
			return boom
		}
		once.Do(func() { close(otherStarted) })
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(time.Second):
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !sawCancel.Load() {
		t.Error("no in-flight item observed the cancelled context after an error")
	}
}

func TestForEachHonorsExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 1000, 1, func(ctx context.Context, i int) error {
		if i == 5 {
			cancel()
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 10 {
		t.Errorf("ran %d items after external cancel", n)
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	err := ForEach(context.Background(), 8, 2, func(ctx context.Context, i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
}

func TestMapKeepsIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 7} {
		out, err := Map(context.Background(), 64, workers, func(ctx context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapDiscardsOnError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 4, 2, func(ctx context.Context, i int) (int, error) {
		return i, boom
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil results and an error", out, err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0,100) = %d", w)
	}
	if w := Workers(16, 4); w != 4 {
		t.Errorf("Workers(16,4) = %d, want clamped to n", w)
	}
	if w := Workers(-3, 0); w != 1 {
		t.Errorf("Workers(-3,0) = %d, want 1", w)
	}
}

func TestRunnerRunsEverything(t *testing.T) {
	r := NewRunner(3)
	var ran atomic.Int64
	if err := r.ForEach(context.Background(), 50, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50", ran.Load())
	}
}

func TestRunnerBoundsConcurrencyAcrossCalls(t *testing.T) {
	// Two concurrent ForEach calls share the same 3 slots: their summed
	// in-flight item count must never exceed the Runner's capacity.
	r := NewRunner(3)
	var cur, peak atomic.Int64
	item := func(ctx context.Context, i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[c] = r.ForEach(context.Background(), 30, item)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak in-flight %d exceeds shared capacity 3", p)
	}
}

func TestRunnerCancelReleasesWaiter(t *testing.T) {
	// One caller occupies the only slot; a second caller blocked on slot
	// acquisition must return promptly when its own context is
	// cancelled.
	r := NewRunner(1)
	hold := make(chan struct{})
	started := make(chan struct{})
	go r.ForEach(context.Background(), 1, func(ctx context.Context, i int) error {
		close(started)
		<-hold
		return nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- r.ForEach(ctx, 5, func(ctx context.Context, i int) error { return nil })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller stayed blocked on a busy Runner")
	}
	close(hold)
}

func TestRunnerPropagatesErrorAndPanic(t *testing.T) {
	r := NewRunner(2)
	boom := errors.New("boom")
	err := r.ForEach(context.Background(), 10, func(ctx context.Context, i int) error {
		if i == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "item 4") {
		t.Fatalf("err = %v", err)
	}
	err = r.ForEach(context.Background(), 4, func(ctx context.Context, i int) error {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
	// The Runner must still be usable after failures: every slot was
	// returned.
	var ran atomic.Int64
	if err := r.ForEach(context.Background(), 8, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil || ran.Load() != 8 {
		t.Fatalf("post-failure run: ran=%d err=%v", ran.Load(), err)
	}
}

func TestMapOnKeepsIndexOrder(t *testing.T) {
	r := NewRunner(7)
	out, err := MapOn(context.Background(), r, 64, func(ctx context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunnerCapacityAndInUse(t *testing.T) {
	r := NewRunner(4)
	if r.Capacity() != 4 {
		t.Fatalf("Capacity = %d", r.Capacity())
	}
	if r.InUse() != 0 {
		t.Fatalf("idle InUse = %d", r.InUse())
	}
	if NewRunner(0).Capacity() < 1 {
		t.Fatal("NewRunner(0) should default to GOMAXPROCS")
	}
}
