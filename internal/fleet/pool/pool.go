// Package pool is the bounded worker pool under the fleet engine. It
// runs n independent work items on at most w goroutines, propagates the
// first error (cancelling the remaining items), converts worker panics
// into errors, and — crucially for the simulator — keeps results in item
// order so that downstream aggregation is byte-identical regardless of
// the worker count or scheduling.
//
// The experiment sweeps (heatmap cells, Fig 9 trials, ablation points)
// and the multi-session fleet engine all fan out through this package.
// The package-level ForEach/Map bound one call; Runner is the same
// contract as a persistent pool whose capacity is shared across many
// concurrent calls (the movrd job scheduler's substrate).
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 become
// runtime.GOMAXPROCS(0), and the count never exceeds n (no idle
// goroutines are spawned).
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS). Items are claimed in index
// order. The first error cancels the shared context and is returned;
// items not yet claimed when the error occurs are skipped. A panic in fn
// is recovered and reported as an error rather than crashing the
// process. With workers == 1 execution is strictly sequential in index
// order.
//
// An ephemeral pool is exactly a one-shot Runner, so this delegates —
// the two paths cannot drift apart behaviorally.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	return NewRunner(Workers(workers, n)).ForEach(ctx, n, fn)
}

// Map runs fn over [0, n) through ForEach and returns the results in
// index order — the slot for item i holds fn's result for i, whatever
// worker computed it. On error the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Runner is a persistent bounded worker pool shared by many concurrent
// ForEach/MapOn calls. Where the package-level functions bound the
// parallelism of one call, a Runner bounds the parallelism of every
// call that goes through it put together: the movrd scheduler
// multiplexes all concurrent API jobs onto a single Runner so the
// machine never runs more sessions at once than its capacity, however
// many jobs are in flight.
//
// A slot is held only while an item executes, never while a call waits,
// so concurrent calls interleave item-by-item instead of serializing
// whole jobs. Determinism is unchanged: results land in index slots, so
// a run through a Runner is byte-identical to a run through Map.
type Runner struct {
	slots chan struct{}
	inUse atomic.Int64
}

// NewRunner builds a shared pool with the given capacity (<= 0 means
// GOMAXPROCS).
func NewRunner(capacity int) *Runner {
	if capacity < 1 {
		capacity = runtime.GOMAXPROCS(0)
	}
	r := &Runner{slots: make(chan struct{}, capacity)}
	for i := 0; i < capacity; i++ {
		r.slots <- struct{}{}
	}
	return r
}

// Capacity reports the slot count.
func (r *Runner) Capacity() int { return cap(r.slots) }

// InUse reports how many slots are currently executing items — a
// utilization gauge, inherently racy and only for monitoring.
func (r *Runner) InUse() int { return int(r.inUse.Load()) }

// ForEach runs fn(ctx, i) for every i in [0, n), each item executing
// only while holding one of the Runner's shared slots. Items are
// claimed in index order; error/panic/cancellation semantics match the
// package-level ForEach. Cancelling ctx releases the call promptly even
// when every slot is busy with other callers' items.
func (r *Runner) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	// Spawning more goroutines than slots is pointless; they would all
	// block on acquisition.
	workers := Workers(r.Capacity(), n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("pool: item %d panicked: %v\n%s", i, r, debug.Stack()))
			}
		}()
		if err := fn(ctx, i); err != nil {
			fail(fmt.Errorf("pool: item %d: %w", i, err))
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				select {
				case <-r.slots:
				case <-ctx.Done():
					return
				}
				r.inUse.Add(1)
				run(i)
				r.inUse.Add(-1)
				r.slots <- struct{}{}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// MapOn runs fn over [0, n) through r.ForEach and returns the results
// in index order, exactly as Map does for an ephemeral pool. (A free
// function because Go methods cannot introduce type parameters.)
func MapOn[T any](ctx context.Context, r *Runner, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := r.ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
