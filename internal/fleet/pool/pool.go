// Package pool is the bounded worker pool under the fleet engine. It
// runs n independent work items on at most w goroutines, propagates the
// first error (cancelling the remaining items), converts worker panics
// into errors, and — crucially for the simulator — keeps results in item
// order so that downstream aggregation is byte-identical regardless of
// the worker count or scheduling.
//
// The experiment sweeps (heatmap cells, Fig 9 trials, ablation points)
// and the multi-session fleet engine all fan out through this package.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 become
// runtime.GOMAXPROCS(0), and the count never exceeds n (no idle
// goroutines are spawned).
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS). Items are claimed in index
// order. The first error cancels the shared context and is returned;
// items not yet claimed when the error occurs are skipped. A panic in fn
// is recovered and reported as an error rather than crashing the
// process. With workers == 1 execution is strictly sequential in index
// order.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				// The original stack dies with this recover; fold it
				// into the error so the crash site stays debuggable.
				fail(fmt.Errorf("pool: item %d panicked: %v\n%s", i, r, debug.Stack()))
			}
		}()
		if err := fn(ctx, i); err != nil {
			fail(fmt.Errorf("pool: item %d: %w", i, err))
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) through ForEach and returns the results in
// index order — the slot for item i holds fn's result for i, whatever
// worker computed it. On error the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
