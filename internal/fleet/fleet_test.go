package fleet

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/experiments"
)

// shortScenario is a small mixed fleet that keeps unit tests quick.
func shortScenario(n int, seed int64) []Spec {
	return Mixed(n, ScenarioConfig{
		Duration:     1 * time.Second,
		ReEvalPeriod: 100 * time.Millisecond,
		Seed:         seed,
	})
}

// TestFleetDeterministicAcrossWorkers is the engine's core guarantee:
// the same specs produce byte-identical results — outcomes, aggregates,
// and rendered report — no matter how many workers run them.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	specs := shortScenario(9, 7)
	serial, err := Run(context.Background(), specs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Run(context.Background(), specs, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
		if serial.Render("fleet") != par.Render("fleet") {
			t.Fatalf("workers=%d: rendered reports differ", workers)
		}
	}
}

// TestFleet64Sessions is the acceptance-scale determinism check: 64
// sessions on 8 workers must aggregate identically to 1 worker.
func TestFleet64Sessions(t *testing.T) {
	n := 64
	if testing.Short() {
		n = 16
	}
	specs := Mixed(n, ScenarioConfig{
		Duration:     500 * time.Millisecond,
		ReEvalPeriod: 100 * time.Millisecond,
		Seed:         42,
	})
	if len(specs) != n {
		t.Fatalf("Mixed(%d) generated %d specs", n, len(specs))
	}
	serial, err := Run(context.Background(), specs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), specs, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Agg, par.Agg) {
		t.Fatal("64-session aggregates differ between 1 and 8 workers")
	}
	if serial.Agg.Sessions != n || serial.Agg.Frames == 0 {
		t.Fatalf("aggregate looks empty: %+v", serial.Agg)
	}
}

// TestFleetParallelSpeedup checks the point of the worker pool: on a
// multi-core box, 8 workers beat 1. Skipped where wall clock is not
// meaningful (few cores, race-detector instrumentation), and retried
// once so noisy-neighbor scheduling jitter cannot redden a build.
func TestFleetParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race detector skews wall-clock timing")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("only %d CPUs; speedup not measurable", runtime.NumCPU())
	}
	specs := shortScenario(16, 3)

	measure := func(workers int) time.Duration {
		t0 := time.Now()
		if _, err := Run(context.Background(), specs, Config{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	for attempt := 0; ; attempt++ {
		serial := measure(1)
		parallel := measure(8)
		if parallel < serial {
			t.Logf("serial %v, 8 workers %v (%.1fx)", serial, parallel, float64(serial)/float64(parallel))
			return
		}
		if attempt == 1 {
			t.Fatalf("8 workers (%v) not faster than 1 worker (%v) after retry", parallel, serial)
		}
		t.Logf("attempt %d: 8 workers (%v) >= 1 worker (%v); retrying once", attempt, parallel, serial)
	}
}

func TestFleetErrorPropagation(t *testing.T) {
	specs := shortScenario(4, 1)
	// An unstreamable room: too small for motion-trace generation.
	bad := Spec{ID: "broken/0", Session: experiments.SessionConfig{
		Duration: time.Second,
		RoomW:    0.9,
		RoomD:    0.9,
	}}
	specs = append(specs[:2:2], append([]Spec{bad}, specs[2:]...)...)

	for _, workers := range []int{1, 4} {
		res, err := Run(context.Background(), specs, Config{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: bad session should fail the run", workers)
		}
		if !strings.Contains(err.Error(), "broken/0") {
			t.Errorf("workers=%d: error %q should name the failing session", workers, err)
		}
		if res.Sessions != nil {
			t.Errorf("workers=%d: failed run should not return outcomes", workers)
		}
	}
}

func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, shortScenario(4, 1), Config{Workers: 2})
	if err == nil {
		t.Fatal("cancelled context should abort the run")
	}
}

func TestFleetEmptySpecs(t *testing.T) {
	if _, err := Run(context.Background(), nil, Config{}); err == nil {
		t.Fatal("empty fleet should be an error")
	}
}

func TestFleetAggregateSanity(t *testing.T) {
	res, err := Run(context.Background(), shortScenario(6, 11), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Agg
	if agg.Sessions != 6 || len(res.Sessions) != 6 {
		t.Fatalf("sessions = %d/%d", agg.Sessions, len(res.Sessions))
	}
	frames, delivered, handoffs := 0, 0, 0
	for _, o := range res.Sessions {
		frames += o.Report.Frames
		delivered += o.Report.Delivered
		handoffs += o.Handoffs
		if o.DeliveredFrac < 0 || o.DeliveredFrac > 1 {
			t.Errorf("%s: delivered frac %v", o.ID, o.DeliveredFrac)
		}
		if o.Variant != experiments.VariantMoVRTracking {
			t.Errorf("%s: variant %q, want default tracking", o.ID, o.Variant)
		}
	}
	if agg.Frames != frames || agg.Delivered != delivered || agg.TotalHandoffs != handoffs {
		t.Error("totals disagree with per-session outcomes")
	}
	q := agg.DeliveredFrac
	if q.Min > q.P50 || q.P50 > q.Max || q.P95 > q.Max || q.P99 > q.Max {
		t.Errorf("quantile ordering broken: %+v", q)
	}
	out := res.Render("mixed fleet")
	for _, want := range []string{"6 sessions", "delivered rate", "p99", "handoffs"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioGeneratorsDeterministic(t *testing.T) {
	cfg := ScenarioConfig{Seed: 5}
	type gen struct {
		name string
		make func() []Spec
	}
	for _, g := range []gen{
		{"arcade", func() []Spec { return Arcade(2, 3, cfg) }},
		{"homes", func() []Spec { return Homes(5, cfg) }},
		{"dense", func() []Spec { return DenseBlockers(4, 6, cfg) }},
		{"mixed", func() []Spec { return Mixed(10, cfg) }},
	} {
		a, b := g.make(), g.make()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed generated different specs", g.name)
		}
		seen := map[int64]bool{}
		for _, sp := range a {
			if sp.ID == "" {
				t.Errorf("%s: empty spec ID", g.name)
			}
			if seen[sp.Session.Seed] {
				t.Errorf("%s: duplicate session seed %d", g.name, sp.Session.Seed)
			}
			seen[sp.Session.Seed] = true
		}
	}
}

func TestScenarioShapes(t *testing.T) {
	cfg := ScenarioConfig{Seed: 9}

	arcade := Arcade(2, 3, cfg)
	if len(arcade) != 6 {
		t.Fatalf("arcade specs = %d", len(arcade))
	}
	for _, sp := range arcade {
		if sp.Session.RoomW != 8 || sp.Session.RoomD != 8 {
			t.Errorf("%s: room %vx%v", sp.ID, sp.Session.RoomW, sp.Session.RoomD)
		}
		if len(sp.Session.Mounts) != 3 {
			t.Errorf("%s: %d mounts, want 3", sp.ID, len(sp.Session.Mounts))
		}
		if len(sp.Session.Blockers) != 2 {
			t.Errorf("%s: %d co-player blockers, want 2", sp.ID, len(sp.Session.Blockers))
		}
	}

	homes := Homes(5, cfg)
	if len(homes) != 5 {
		t.Fatalf("home specs = %d", len(homes))
	}
	for _, sp := range homes {
		if sp.Session.RoomW < 3.5 || sp.Session.RoomW > 6.5 ||
			sp.Session.RoomD < 3.5 || sp.Session.RoomD > 6.5 {
			t.Errorf("%s: room %vx%v outside home range", sp.ID, sp.Session.RoomW, sp.Session.RoomD)
		}
		if len(sp.Session.Mounts) != 1 {
			t.Errorf("%s: %d mounts, want 1", sp.ID, len(sp.Session.Mounts))
		}
	}

	dense := DenseBlockers(4, 6, cfg)
	if len(dense) != 4 {
		t.Fatalf("dense specs = %d", len(dense))
	}
	for _, sp := range dense {
		if len(sp.Session.Blockers) != 6 {
			t.Errorf("%s: %d blockers, want 6", sp.ID, len(sp.Session.Blockers))
		}
		if sp.Session.RoomW != 0 {
			t.Errorf("%s: dense rooms should use the stock office", sp.ID)
		}
	}
}

func BenchmarkFleetRun(b *testing.B) {
	specs := Mixed(8, ScenarioConfig{
		Duration:     500 * time.Millisecond,
		ReEvalPeriod: 100 * time.Millisecond,
		Seed:         1,
	})
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "workers=1", 8: "workers=8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), specs, Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
