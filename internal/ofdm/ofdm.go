// Package ofdm implements the OFDM modem the simulated AP and headset use
// for data-plane SNR measurement: "The AP transmits packets consisting of
// OFDM symbols and the headset's receiver receives these packets and
// computes the SNR" (paper §5.2).
//
// The modem uses the 802.11ad OFDM PHY numerology (512-point FFT, 336
// data subcarriers, 128-sample cyclic prefix) and supports the standard's
// constellations. SNR is estimated from the error vector magnitude (EVM)
// of received training symbols after single-tap least-squares
// equalization — the same genie-aided measurement a lab vector signal
// analyzer performs.
package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/movr-sim/movr/internal/dsp"
)

// Modulation selects a subcarrier constellation.
type Modulation int

const (
	// QPSK carries 2 bits per subcarrier.
	QPSK Modulation = iota
	// QAM16 carries 4 bits per subcarrier.
	QAM16
	// QAM64 carries 6 bits per subcarrier.
	QAM64
)

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return "unknown"
	}
}

// BitsPerSymbol returns the bits carried per subcarrier.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// Config is the OFDM numerology.
type Config struct {
	// NFFT is the FFT size (power of two).
	NFFT int

	// DataCarriers is the number of occupied data subcarriers
	// (≤ NFFT−1; DC is never occupied).
	DataCarriers int

	// CPLen is the cyclic prefix length in samples.
	CPLen int

	// Mod is the subcarrier constellation.
	Mod Modulation
}

// DefaultConfig returns the 802.11ad OFDM PHY numerology.
func DefaultConfig() Config {
	return Config{NFFT: 512, DataCarriers: 336, CPLen: 128, Mod: QPSK}
}

// Modem modulates and demodulates OFDM symbols.
type Modem struct {
	cfg      Config
	carriers []int // occupied bin indices
}

// NewModem validates cfg and returns a Modem.
func NewModem(cfg Config) (*Modem, error) {
	if !dsp.IsPow2(cfg.NFFT) {
		return nil, fmt.Errorf("ofdm: NFFT %d must be a power of two", cfg.NFFT)
	}
	if cfg.DataCarriers < 1 || cfg.DataCarriers > cfg.NFFT-1 {
		return nil, fmt.Errorf("ofdm: DataCarriers %d out of range for NFFT %d", cfg.DataCarriers, cfg.NFFT)
	}
	if cfg.CPLen < 0 || cfg.CPLen >= cfg.NFFT {
		return nil, fmt.Errorf("ofdm: CPLen %d out of range", cfg.CPLen)
	}
	if cfg.Mod.BitsPerSymbol() == 0 {
		return nil, fmt.Errorf("ofdm: unknown modulation %d", cfg.Mod)
	}
	m := &Modem{cfg: cfg}
	// Occupy subcarriers symmetrically around DC (bin 0 excluded):
	// positive bins 1..h, negative bins NFFT-1..NFFT-h'.
	half := cfg.DataCarriers / 2
	for k := 1; k <= half; k++ {
		m.carriers = append(m.carriers, k)
	}
	for k := 1; k <= cfg.DataCarriers-half; k++ {
		m.carriers = append(m.carriers, cfg.NFFT-k)
	}
	return m, nil
}

// Config returns the modem's numerology.
func (m *Modem) Config() Config { return m.cfg }

// SymbolLen returns the time-domain length of one OFDM symbol including
// its cyclic prefix.
func (m *Modem) SymbolLen() int { return m.cfg.NFFT + m.cfg.CPLen }

// constellation returns the unit-average-power constellation points of
// the configured modulation in Gray order.
func (m *Modem) constellation() []complex128 {
	switch m.cfg.Mod {
	case QPSK:
		s := math.Sqrt2
		return []complex128{
			complex(1/s, 1/s), complex(-1/s, 1/s),
			complex(1/s, -1/s), complex(-1/s, -1/s),
		}
	case QAM16:
		return squareQAM([]float64{-3, -1, 3, 1}, math.Sqrt(10))
	case QAM64:
		return squareQAM([]float64{-7, -5, -1, -3, 7, 5, 1, 3}, math.Sqrt(42))
	default:
		return nil
	}
}

// squareQAM builds a square constellation from per-axis Gray-ordered
// levels, normalized by norm to unit average power.
func squareQAM(levels []float64, norm float64) []complex128 {
	pts := make([]complex128, 0, len(levels)*len(levels))
	for _, re := range levels {
		for _, im := range levels {
			pts = append(pts, complex(re/norm, im/norm))
		}
	}
	return pts
}

// RandomSymbols draws n random constellation points from rng, for use as
// training data.
func (m *Modem) RandomSymbols(n int, rng *rand.Rand) []complex128 {
	c := m.constellation()
	out := make([]complex128, n)
	for i := range out {
		out[i] = c[rng.Intn(len(c))]
	}
	return out
}

// Modulate converts one OFDM symbol's worth of constellation points (one
// per data carrier) into time-domain samples with cyclic prefix. The
// output is scaled so that average time-domain power equals the average
// constellation power times DataCarriers/NFFT.
func (m *Modem) Modulate(points []complex128) ([]complex128, error) {
	if len(points) != m.cfg.DataCarriers {
		return nil, fmt.Errorf("ofdm: got %d points, need %d", len(points), m.cfg.DataCarriers)
	}
	grid := make([]complex128, m.cfg.NFFT)
	for i, k := range m.carriers {
		grid[k] = points[i]
	}
	td, err := dsp.IFFT(grid)
	if err != nil {
		return nil, err
	}
	// IFFT includes 1/N; rescale by sqrt(N) to preserve per-carrier
	// power in a measurement-friendly way.
	scale := complex(math.Sqrt(float64(m.cfg.NFFT)), 0)
	for i := range td {
		td[i] *= scale
	}
	// Prepend cyclic prefix.
	out := make([]complex128, 0, m.SymbolLen())
	out = append(out, td[m.cfg.NFFT-m.cfg.CPLen:]...)
	out = append(out, td...)
	return out, nil
}

// Demodulate strips the cyclic prefix and returns the received
// constellation points for one OFDM symbol.
func (m *Modem) Demodulate(samples []complex128) ([]complex128, error) {
	if len(samples) != m.SymbolLen() {
		return nil, fmt.Errorf("ofdm: got %d samples, need %d", len(samples), m.SymbolLen())
	}
	td := samples[m.cfg.CPLen:]
	grid, err := dsp.FFT(td)
	if err != nil {
		return nil, err
	}
	scale := complex(1/math.Sqrt(float64(m.cfg.NFFT)), 0)
	pts := make([]complex128, len(m.carriers))
	for i, k := range m.carriers {
		pts[i] = grid[k] * scale
	}
	return pts, nil
}

// EstimateSNRdB performs the EVM-based SNR measurement: it equalizes the
// received points against the known reference with a single least-squares
// complex tap, then returns reference power over residual error power in
// dB. It returns +Inf for a noiseless channel and an error for mismatched
// or empty inputs.
func EstimateSNRdB(received, reference []complex128) (float64, error) {
	if len(received) != len(reference) || len(received) == 0 {
		return 0, fmt.Errorf("ofdm: EVM needs equal non-empty slices (got %d, %d)", len(received), len(reference))
	}
	var num complex128
	var den float64
	for i := range reference {
		num += received[i] * cmplx.Conj(reference[i])
		den += real(reference[i])*real(reference[i]) + imag(reference[i])*imag(reference[i])
	}
	if den == 0 {
		return 0, fmt.Errorf("ofdm: all-zero reference")
	}
	h := num / complex(den, 0)
	var sig, errPow float64
	for i := range reference {
		ref := h * reference[i]
		d := received[i] - ref
		sig += real(ref)*real(ref) + imag(ref)*imag(ref)
		errPow += real(d)*real(d) + imag(d)*imag(d)
	}
	if errPow == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/errPow), nil
}

// HardDemap slices each received point to the nearest constellation point
// and returns the indices.
func (m *Modem) HardDemap(points []complex128) []int {
	c := m.constellation()
	out := make([]int, len(points))
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for j, s := range c {
			if d := cmplx.Abs(p - s); d < bestD {
				best, bestD = j, d
			}
		}
		out[i] = best
	}
	return out
}

// MeasureAtSNR performs the full data-plane SNR measurement the paper's
// headset does (§5.2): modulate nSymbols random OFDM symbols, pass them
// through a flat channel with AWGN at the given per-subcarrier SNR,
// demodulate, and return the EVM-estimated SNR. It is the closed loop
// that validates the analytic link budget against the signal path.
func (m *Modem) MeasureAtSNR(snrDB float64, nSymbols int, seed int64) (float64, error) {
	if nSymbols < 1 {
		return 0, fmt.Errorf("ofdm: nSymbols %d must be ≥ 1", nSymbols)
	}
	rng := rand.New(rand.NewSource(seed))
	var rxAll, refAll []complex128
	for s := 0; s < nSymbols; s++ {
		ref := m.RandomSymbols(m.cfg.DataCarriers, rng)
		td, err := m.Modulate(ref)
		if err != nil {
			return 0, err
		}
		// Flat channel gain (arbitrary complex scale the EVM estimator
		// must absorb) plus AWGN at the requested in-band SNR.
		gain := complex(0.8, -0.4)
		for i := range td {
			td[i] *= gain
		}
		sig := 0.0
		for _, v := range td {
			sig += real(v)*real(v) + imag(v)*imag(v)
		}
		sig /= float64(len(td))
		perCarrier := sig * float64(m.cfg.NFFT) / float64(m.cfg.DataCarriers)
		noise := perCarrier / math.Pow(10, snrDB/10)
		sigma := math.Sqrt(noise / 2)
		for i := range td {
			td[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		rx, err := m.Demodulate(td)
		if err != nil {
			return 0, err
		}
		rxAll = append(rxAll, rx...)
		refAll = append(refAll, ref...)
	}
	return EstimateSNRdB(rxAll, refAll)
}

// SymbolErrorRate compares hard decisions on received points against the
// reference points and returns the fraction that decoded incorrectly.
func (m *Modem) SymbolErrorRate(received, reference []complex128) float64 {
	if len(received) != len(reference) || len(received) == 0 {
		return math.NaN()
	}
	rx := m.HardDemap(received)
	ref := m.HardDemap(reference)
	errors := 0
	for i := range rx {
		if rx[i] != ref[i] {
			errors++
		}
	}
	return float64(errors) / float64(len(rx))
}
