package ofdm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/movr-sim/movr/internal/dsp"
)

func TestNewModemValidation(t *testing.T) {
	bad := []Config{
		{NFFT: 500, DataCarriers: 336, CPLen: 128, Mod: QPSK}, // not pow2
		{NFFT: 512, DataCarriers: 0, CPLen: 128, Mod: QPSK},   // no carriers
		{NFFT: 512, DataCarriers: 512, CPLen: 128, Mod: QPSK}, // too many
		{NFFT: 512, DataCarriers: 336, CPLen: 512, Mod: QPSK}, // CP too long
		{NFFT: 512, DataCarriers: 336, CPLen: -1, Mod: QPSK},  // negative CP
		{NFFT: 512, DataCarriers: 336, CPLen: 128, Mod: 99},   // bad modulation
	}
	for i, cfg := range bad {
		if _, err := NewModem(cfg); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
	m, err := NewModem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.SymbolLen() != 640 {
		t.Errorf("symbol length = %d, want 640", m.SymbolLen())
	}
}

func TestModulationMeta(t *testing.T) {
	if QPSK.BitsPerSymbol() != 2 || QAM16.BitsPerSymbol() != 4 || QAM64.BitsPerSymbol() != 6 {
		t.Error("bits per symbol wrong")
	}
	if Modulation(9).BitsPerSymbol() != 0 {
		t.Error("unknown modulation should have 0 bits")
	}
	if QPSK.String() != "QPSK" || QAM16.String() != "16QAM" || QAM64.String() != "64QAM" || Modulation(9).String() != "unknown" {
		t.Error("modulation names wrong")
	}
}

func TestConstellationUnitPower(t *testing.T) {
	for _, mod := range []Modulation{QPSK, QAM16, QAM64} {
		cfg := DefaultConfig()
		cfg.Mod = mod
		m, err := NewModem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := m.constellation()
		if len(c) != 1<<mod.BitsPerSymbol() {
			t.Errorf("%v: %d points", mod, len(c))
		}
		p := 0.0
		for _, s := range c {
			p += real(s)*real(s) + imag(s)*imag(s)
		}
		p /= float64(len(c))
		if math.Abs(p-1) > 1e-9 {
			t.Errorf("%v average power = %v, want 1", mod, p)
		}
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	for _, mod := range []Modulation{QPSK, QAM16, QAM64} {
		cfg := DefaultConfig()
		cfg.Mod = mod
		m, _ := NewModem(cfg)
		rng := rand.New(rand.NewSource(42))
		ref := m.RandomSymbols(cfg.DataCarriers, rng)
		td, err := m.Modulate(ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(td) != m.SymbolLen() {
			t.Fatalf("time-domain length = %d", len(td))
		}
		rx, err := m.Demodulate(td)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if d := rx[i] - ref[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("%v: point %d differs: %v vs %v", mod, i, rx[i], ref[i])
			}
		}
		// Noiseless EVM SNR is limited only by FFT round-off: enormous.
		snr, err := EstimateSNRdB(rx, ref)
		if err != nil {
			t.Fatal(err)
		}
		if snr < 150 {
			t.Errorf("noiseless SNR = %v, want > 150 dB", snr)
		}
	}
}

func TestModulateSizeErrors(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	if _, err := m.Modulate(make([]complex128, 3)); err == nil {
		t.Error("short input should error")
	}
	if _, err := m.Demodulate(make([]complex128, 3)); err == nil {
		t.Error("short demod input should error")
	}
}

func TestEVMSNRTracksAppliedSNR(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	for _, wantSNR := range []float64{5, 15, 25} {
		var rxAll, refAll []complex128
		// Average over several symbols for a tight estimate.
		for s := 0; s < 8; s++ {
			ref := m.RandomSymbols(m.Config().DataCarriers, rng)
			td, err := m.Modulate(ref)
			if err != nil {
				t.Fatal(err)
			}
			// Apply channel: complex gain + AWGN at the target
			// per-subcarrier SNR. White time-domain noise of power P
			// lands P in every FFT bin, while the signal occupies only
			// DataCarriers of NFFT bins, so in-band SNR is the
			// full-band ratio scaled by NFFT/DataCarriers.
			gain := complex(0.5, 0.3)
			for i := range td {
				td[i] *= gain
			}
			cfg := m.Config()
			sigPow := dsp.SignalPower(td)
			perCarrier := sigPow * float64(cfg.NFFT) / float64(cfg.DataCarriers)
			noisePow := perCarrier / math.Pow(10, wantSNR/10)
			dsp.AddNoise(td, noisePow, rng)
			rx, err := m.Demodulate(td)
			if err != nil {
				t.Fatal(err)
			}
			rxAll = append(rxAll, rx...)
			refAll = append(refAll, ref...)
		}
		got, err := EstimateSNRdB(rxAll, refAll)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-wantSNR) > 1.0 {
			t.Errorf("estimated SNR = %v, want %v ± 1", got, wantSNR)
		}
	}
}

func TestEVMErrors(t *testing.T) {
	if _, err := EstimateSNRdB(nil, nil); err == nil {
		t.Error("empty inputs should error")
	}
	if _, err := EstimateSNRdB(make([]complex128, 2), make([]complex128, 3)); err == nil {
		t.Error("mismatched inputs should error")
	}
	if _, err := EstimateSNRdB(make([]complex128, 2), make([]complex128, 2)); err == nil {
		t.Error("all-zero reference should error")
	}
}

func TestSymbolErrorRate(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	ref := m.RandomSymbols(1000, rng)
	// Clean copy: zero errors.
	if ser := m.SymbolErrorRate(ref, ref); ser != 0 {
		t.Errorf("clean SER = %v", ser)
	}
	// Heavy noise: plenty of errors.
	noisy := append([]complex128(nil), ref...)
	dsp.AddNoise(noisy, 2.0, rng)
	if ser := m.SymbolErrorRate(noisy, ref); ser < 0.05 {
		t.Errorf("noisy SER = %v, want > 0.05", ser)
	}
	if !math.IsNaN(m.SymbolErrorRate(ref, ref[:10])) {
		t.Error("mismatched SER should be NaN")
	}
}

func TestQAM64MoreFragileThanQPSK(t *testing.T) {
	// At equal SNR, 64QAM must suffer a higher symbol error rate — the
	// reason higher MCS needs higher SNR.
	rng := rand.New(rand.NewSource(5))
	sers := map[Modulation]float64{}
	for _, mod := range []Modulation{QPSK, QAM64} {
		cfg := DefaultConfig()
		cfg.Mod = mod
		m, _ := NewModem(cfg)
		ref := m.RandomSymbols(4000, rng)
		noisy := append([]complex128(nil), ref...)
		dsp.AddNoise(noisy, math.Pow(10, -12.0/10), rng) // 12 dB SNR
		sers[mod] = m.SymbolErrorRate(noisy, ref)
	}
	if sers[QAM64] <= sers[QPSK] {
		t.Errorf("SER(64QAM)=%v should exceed SER(QPSK)=%v", sers[QAM64], sers[QPSK])
	}
}

func TestCarrierLayoutAvoidsDC(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	for _, k := range m.carriers {
		if k == 0 {
			t.Fatal("DC bin must not be occupied")
		}
		if k < 0 || k >= m.Config().NFFT {
			t.Fatalf("carrier bin %d out of range", k)
		}
	}
	if len(m.carriers) != m.Config().DataCarriers {
		t.Errorf("carrier count = %d", len(m.carriers))
	}
}
