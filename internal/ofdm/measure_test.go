package ofdm

import (
	"math"
	"testing"
)

func TestMeasureAtSNRTracksTarget(t *testing.T) {
	m, err := NewModem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []float64{8, 15, 22, 30} {
		got, err := m.MeasureAtSNR(want, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1.0 {
			t.Errorf("measured %v for target %v", got, want)
		}
	}
}

func TestMeasureAtSNRValidation(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	if _, err := m.MeasureAtSNR(20, 0, 1); err == nil {
		t.Error("zero symbols should fail")
	}
}

func TestMeasureAtSNRDeterministic(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	a, err := m.MeasureAtSNR(18, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MeasureAtSNR(18, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed differs: %v vs %v", a, b)
	}
	c, err := m.MeasureAtSNR(18, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed should differ")
	}
}

// TestDataPlaneValidatesLinkBudget is the closed loop the paper's §5.2
// measurement procedure implies: the SNR the headset's OFDM receiver
// estimates from received symbols must agree with the analytic link
// budget that produced it.
func TestDataPlaneValidatesLinkBudget(t *testing.T) {
	m, _ := NewModem(DefaultConfig())
	analyticSNR := 24.5 // a typical Fig 3 LOS budget result
	measured, err := m.MeasureAtSNR(analyticSNR, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-analyticSNR) > 0.8 {
		t.Errorf("data-plane SNR %v diverges from budget %v", measured, analyticSNR)
	}
}
