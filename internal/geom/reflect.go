package geom

import "math"

// MirrorPoint returns p reflected across the infinite line that contains
// the segment wall. This is the "image source" of the image method used to
// construct specular reflection paths.
func MirrorPoint(p Vec, wall Segment) Vec {
	d := wall.B.Sub(wall.A)
	len2 := d.Dot(d)
	if len2 == 0 {
		return p
	}
	t := p.Sub(wall.A).Dot(d) / len2
	foot := wall.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// SpecularPoint computes the point on wall at which a ray from tx reflects
// specularly to reach rx, using the image method: the reflection point is
// where the line from the mirror image of tx to rx crosses the wall. It
// returns false when no such point exists on the segment (the geometry does
// not admit a single-bounce path off this wall), including the degenerate
// cases where tx or rx lies on the wall's line or they are on opposite
// sides of it.
func SpecularPoint(tx, rx Vec, wall Segment) (Vec, bool) {
	n := wall.Normal()
	sideTx := rx.Sub(wall.A) // placeholder to keep symmetry clear; see below
	_ = sideTx
	dTx := tx.Sub(wall.A).Dot(n)
	dRx := rx.Sub(wall.A).Dot(n)
	// Both endpoints must be strictly on the same side of the wall for a
	// physical reflection off the wall's face.
	if dTx*dRx <= 1e-15 {
		return Vec{}, false
	}
	img := MirrorPoint(tx, wall)
	hit, ok := wall.Intersect(Seg(img, rx))
	if !ok {
		return Vec{}, false
	}
	return hit, true
}

// ReflectDir returns direction d reflected about a surface with unit
// normal n.
func ReflectDir(d, n Vec) Vec {
	n = n.Unit()
	return d.Sub(n.Scale(2 * d.Dot(n)))
}

// PolylineLength returns the total length of a path through the given
// points.
func PolylineLength(pts []Vec) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// IncidenceAngleDeg returns the angle (degrees, in [0, 90]) between an
// incoming ray direction and the wall's surface normal at a reflection
// point, useful for angle-dependent reflection losses.
func IncidenceAngleDeg(incoming Vec, wall Segment) float64 {
	n := wall.Normal()
	cos := math.Abs(incoming.Unit().Dot(n))
	cos = math.Min(1, math.Max(-1, cos))
	return math.Acos(cos) * 180 / math.Pi
}
