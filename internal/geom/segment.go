package geom

import "math"

// Segment is a line segment between two endpoints.
type Segment struct {
	A, B Vec
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Vec { return s.A.Lerp(s.B, 0.5) }

// Dir returns the unit direction from A to B.
func (s Segment) Dir() Vec { return s.B.Sub(s.A).Unit() }

// Normal returns the unit normal of the segment (Dir rotated 90° CCW).
func (s Segment) Normal() Vec { return s.Dir().Perp() }

// PointAt returns the point at parameter t along the segment, where t = 0
// is A and t = 1 is B.
func (s Segment) PointAt(t float64) Vec { return s.A.Lerp(s.B, t) }

// Intersect returns the intersection point of two segments and true when
// they cross (including touching at endpoints). Collinear overlapping
// segments report no single intersection point and return false.
func (s Segment) Intersect(o Segment) (Vec, bool) {
	d1 := s.B.Sub(s.A)
	d2 := o.B.Sub(o.A)
	denom := d1.Cross(d2)
	if math.Abs(denom) < 1e-15 {
		return Vec{}, false // parallel or collinear
	}
	diff := o.A.Sub(s.A)
	t := diff.Cross(d2) / denom
	u := diff.Cross(d1) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Vec{}, false
	}
	return s.A.Add(d1.Scale(t)), true
}

// Intersects reports whether two segments cross.
func (s Segment) Intersects(o Segment) bool {
	_, ok := s.Intersect(o)
	return ok
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec) Vec {
	d := s.B.Sub(s.A)
	len2 := d.Dot(d)
	if len2 == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / len2
	t = math.Max(0, math.Min(1, t))
	return s.A.Add(d.Scale(t))
}

// DistanceTo returns the shortest distance from p to the segment.
func (s Segment) DistanceTo(p Vec) float64 { return s.ClosestPoint(p).Dist(p) }

// Circle is a disc with centre C and radius R, used to model cylindrical
// obstacles (a hand, a head, a torso) in the floor plan.
type Circle struct {
	C Vec
	R float64
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Vec) bool { return c.C.Dist(p) <= c.R }

// SegmentClearance returns the distance from the circle's edge to the
// segment: positive when the segment misses the circle (by that margin),
// negative when the segment cuts through it (by the penetration depth).
func (c Circle) SegmentClearance(s Segment) float64 {
	return s.DistanceTo(c.C) - c.R
}

// IntersectsSegment reports whether the segment passes through the circle.
func (c Circle) IntersectsSegment(s Segment) bool {
	return c.SegmentClearance(s) < 0
}

// ChordParams returns the parameters t0 <= t1 along the segment (as in
// Segment.PointAt) at which it enters and exits the circle, and true when
// the segment actually intersects the circle's interior.
func (c Circle) ChordParams(s Segment) (t0, t1 float64, ok bool) {
	d := s.B.Sub(s.A)
	f := s.A.Sub(c.C)
	a := d.Dot(d)
	if a == 0 {
		return 0, 0, false
	}
	b := 2 * f.Dot(d)
	cc := f.Dot(f) - c.R*c.R
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	t0 = (-b - sq) / (2 * a)
	t1 = (-b + sq) / (2 * a)
	if t1 < 0 || t0 > 1 {
		return 0, 0, false
	}
	return math.Max(t0, 0), math.Min(t1, 1), true
}
