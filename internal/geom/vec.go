// Package geom provides the 2-D computational geometry the MoVR simulator
// is built on: vectors, segments, circles, intersection tests, and the
// image-method specular reflection used by the mmWave ray tracer.
//
// The simulated world is a top-down 2-D floor plan. Angles are expressed
// in degrees, measured counter-clockwise from the +X axis, matching the
// convention used by the antenna and channel packages.
package geom

import "math"

// Vec is a point or direction in the 2-D plane.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v − w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v×w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Perp returns v rotated 90° counter-clockwise.
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// Rotate returns v rotated by deg degrees counter-clockwise about the
// origin.
func (v Vec) Rotate(deg float64) Vec {
	r := deg * math.Pi / 180
	c, s := math.Cos(r), math.Sin(r)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// AngleDeg returns the direction of v in degrees, counter-clockwise from
// +X, in (−180, 180].
func (v Vec) AngleDeg() float64 { return math.Atan2(v.Y, v.X) * 180 / math.Pi }

// Lerp linearly interpolates between v (t = 0) and w (t = 1).
func (v Vec) Lerp(w Vec, t float64) Vec { return v.Add(w.Sub(v).Scale(t)) }

// AlmostEqual reports whether v and w are within tol of each other in both
// coordinates.
func (v Vec) AlmostEqual(w Vec, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol
}

// FromPolar returns the point at the given distance from origin o in the
// direction deg degrees (counter-clockwise from +X).
func FromPolar(o Vec, deg, dist float64) Vec {
	r := deg * math.Pi / 180
	return Vec{o.X + dist*math.Cos(r), o.Y + dist*math.Sin(r)}
}

// DirectionDeg returns the bearing in degrees of the vector from a to b.
func DirectionDeg(a, b Vec) float64 { return b.Sub(a).AngleDeg() }
