package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	a, b := V(1, 2), V(3, -1)
	if got := a.Add(b); got != V(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := V(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := V(0, 0).Dist(V(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnitAndPerp(t *testing.T) {
	u := V(10, 0).Unit()
	if !u.AlmostEqual(V(1, 0), 1e-12) {
		t.Errorf("Unit = %v", u)
	}
	if got := V(0, 0).Unit(); got != V(0, 0) {
		t.Errorf("Unit(0) = %v", got)
	}
	if got := V(1, 0).Perp(); !got.AlmostEqual(V(0, 1), 1e-12) {
		t.Errorf("Perp = %v", got)
	}
}

func TestRotateAndAngle(t *testing.T) {
	got := V(1, 0).Rotate(90)
	if !got.AlmostEqual(V(0, 1), 1e-12) {
		t.Errorf("Rotate 90 = %v", got)
	}
	if a := V(0, 1).AngleDeg(); math.Abs(a-90) > 1e-12 {
		t.Errorf("AngleDeg = %v", a)
	}
	if a := V(-1, 0).AngleDeg(); math.Abs(a-180) > 1e-12 {
		t.Errorf("AngleDeg = %v", a)
	}
}

func TestFromPolarAndDirection(t *testing.T) {
	p := FromPolar(V(1, 1), 0, 2)
	if !p.AlmostEqual(V(3, 1), 1e-12) {
		t.Errorf("FromPolar = %v", p)
	}
	p = FromPolar(V(0, 0), 90, 3)
	if !p.AlmostEqual(V(0, 3), 1e-12) {
		t.Errorf("FromPolar 90 = %v", p)
	}
	if d := DirectionDeg(V(0, 0), V(0, 5)); math.Abs(d-90) > 1e-12 {
		t.Errorf("DirectionDeg = %v", d)
	}
}

func TestSegmentIntersect(t *testing.T) {
	s1 := Seg(V(0, 0), V(2, 2))
	s2 := Seg(V(0, 2), V(2, 0))
	p, ok := s1.Intersect(s2)
	if !ok || !p.AlmostEqual(V(1, 1), 1e-12) {
		t.Errorf("Intersect = %v, %v", p, ok)
	}
	// Non-crossing.
	s3 := Seg(V(3, 3), V(4, 4))
	if _, ok := s1.Intersect(s3); ok {
		t.Error("disjoint collinear segments should not intersect")
	}
	// Parallel.
	s4 := Seg(V(0, 1), V(2, 3))
	if _, ok := s1.Intersect(s4); ok {
		t.Error("parallel segments should not intersect")
	}
	// Touching at endpoint counts.
	s5 := Seg(V(2, 2), V(3, 0))
	if _, ok := s1.Intersect(s5); !ok {
		t.Error("segments touching at endpoint should intersect")
	}
}

func TestClosestPointAndDistance(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	if got := s.ClosestPoint(V(5, 3)); !got.AlmostEqual(V(5, 0), 1e-12) {
		t.Errorf("ClosestPoint = %v", got)
	}
	// Beyond endpoint clamps.
	if got := s.ClosestPoint(V(-4, 3)); !got.AlmostEqual(V(0, 0), 1e-12) {
		t.Errorf("ClosestPoint clamp = %v", got)
	}
	if got := s.DistanceTo(V(5, 3)); math.Abs(got-3) > 1e-12 {
		t.Errorf("DistanceTo = %v", got)
	}
	// Degenerate zero-length segment.
	z := Seg(V(1, 1), V(1, 1))
	if got := z.DistanceTo(V(4, 5)); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistanceTo = %v", got)
	}
}

func TestCircleClearance(t *testing.T) {
	c := Circle{C: V(5, 1), R: 0.5}
	s := Seg(V(0, 0), V(10, 0))
	// Distance from centre to segment is 1; clearance 0.5.
	if got := c.SegmentClearance(s); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("clearance = %v", got)
	}
	if c.IntersectsSegment(s) {
		t.Error("segment should miss circle")
	}
	c2 := Circle{C: V(5, 0.2), R: 0.5}
	if !c2.IntersectsSegment(s) {
		t.Error("segment should hit circle")
	}
	if got := c2.SegmentClearance(s); math.Abs(got+0.3) > 1e-12 {
		t.Errorf("penetration = %v, want -0.3", got)
	}
}

func TestChordParams(t *testing.T) {
	c := Circle{C: V(5, 0), R: 1}
	s := Seg(V(0, 0), V(10, 0))
	t0, t1, ok := c.ChordParams(s)
	if !ok {
		t.Fatal("expected chord")
	}
	if math.Abs(t0-0.4) > 1e-12 || math.Abs(t1-0.6) > 1e-12 {
		t.Errorf("chord params = %v, %v", t0, t1)
	}
	// Miss entirely.
	if _, _, ok := (Circle{C: V(5, 3), R: 1}).ChordParams(s); ok {
		t.Error("expected no chord")
	}
	// Chord clamped to segment range.
	s2 := Seg(V(4.5, 0), V(5, 0))
	t0, t1, ok = c.ChordParams(s2)
	if !ok || t0 != 0 || t1 != 1 {
		t.Errorf("interior segment chord = %v,%v,%v", t0, t1, ok)
	}
}

func TestMirrorPoint(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 0)) // the X axis
	img := MirrorPoint(V(3, 4), wall)
	if !img.AlmostEqual(V(3, -4), 1e-12) {
		t.Errorf("MirrorPoint = %v", img)
	}
	// Point on the wall is its own image.
	img = MirrorPoint(V(2, 0), wall)
	if !img.AlmostEqual(V(2, 0), 1e-12) {
		t.Errorf("on-wall MirrorPoint = %v", img)
	}
	// Degenerate wall returns p unchanged.
	img = MirrorPoint(V(1, 2), Seg(V(5, 5), V(5, 5)))
	if !img.AlmostEqual(V(1, 2), 1e-12) {
		t.Errorf("degenerate MirrorPoint = %v", img)
	}
}

func TestSpecularPoint(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 0))
	tx, rx := V(2, 2), V(8, 2)
	hit, ok := SpecularPoint(tx, rx, wall)
	if !ok {
		t.Fatal("expected specular point")
	}
	// Symmetric geometry: reflection at x = 5.
	if !hit.AlmostEqual(V(5, 0), 1e-12) {
		t.Errorf("specular point = %v", hit)
	}
	// Equal angles property: |tx->hit| + |hit->rx| == |img(tx)->rx|.
	img := MirrorPoint(tx, wall)
	wantLen := img.Dist(rx)
	gotLen := tx.Dist(hit) + hit.Dist(rx)
	if math.Abs(wantLen-gotLen) > 1e-9 {
		t.Errorf("path length %v != image distance %v", gotLen, wantLen)
	}
}

func TestSpecularPointRejections(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 0))
	// Opposite sides: no single-bounce reflection.
	if _, ok := SpecularPoint(V(2, 2), V(8, -2), wall); ok {
		t.Error("opposite sides should not reflect")
	}
	// Reflection point beyond the wall segment.
	if _, ok := SpecularPoint(V(20, 2), V(30, 2), wall); ok {
		t.Error("reflection point off-segment should fail")
	}
	// Point on the wall line.
	if _, ok := SpecularPoint(V(2, 0), V(8, 2), wall); ok {
		t.Error("tx on wall line should fail")
	}
}

func TestReflectDir(t *testing.T) {
	d := ReflectDir(V(1, -1).Unit(), V(0, 1))
	if !d.AlmostEqual(V(1, 1).Unit(), 1e-12) {
		t.Errorf("ReflectDir = %v", d)
	}
}

func TestPolylineLength(t *testing.T) {
	if got := PolylineLength([]Vec{V(0, 0), V(3, 4), V(3, 10)}); math.Abs(got-11) > 1e-12 {
		t.Errorf("PolylineLength = %v", got)
	}
	if got := PolylineLength([]Vec{V(1, 1)}); got != 0 {
		t.Errorf("single point length = %v", got)
	}
	if got := PolylineLength(nil); got != 0 {
		t.Errorf("nil length = %v", got)
	}
}

func TestIncidenceAngle(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 0))
	// Ray straight down onto the wall: 0 degrees from normal.
	if got := IncidenceAngleDeg(V(0, -1), wall); math.Abs(got) > 1e-9 {
		t.Errorf("normal incidence = %v", got)
	}
	// 45-degree incidence.
	if got := IncidenceAngleDeg(V(1, -1), wall); math.Abs(got-45) > 1e-9 {
		t.Errorf("45 incidence = %v", got)
	}
}

// Property: mirror of mirror is the identity.
func TestQuickMirrorInvolution(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 3))
	f := func(x, y float64) bool {
		x, y = math.Mod(x, 100), math.Mod(y, 100)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := V(x, y)
		return MirrorPoint(MirrorPoint(p, wall), wall).AlmostEqual(p, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the specular path length equals the image distance (Fermat).
func TestQuickSpecularFermat(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 0))
	f := func(ax, ay, bx, by float64) bool {
		tx := V(1+math.Abs(math.Mod(ax, 8)), 0.1+math.Abs(math.Mod(ay, 5)))
		rx := V(1+math.Abs(math.Mod(bx, 8)), 0.1+math.Abs(math.Mod(by, 5)))
		hit, ok := SpecularPoint(tx, rx, wall)
		if !ok {
			return true // geometry may legitimately reject
		}
		img := MirrorPoint(tx, wall)
		return math.Abs(tx.Dist(hit)+hit.Dist(rx)-img.Dist(rx)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rotation preserves vector length.
func TestQuickRotatePreservesNorm(t *testing.T) {
	f := func(x, y, deg float64) bool {
		x, y = math.Mod(x, 1e3), math.Mod(y, 1e3)
		deg = math.Mod(deg, 720)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(deg) {
			return true
		}
		v := V(x, y)
		return math.Abs(v.Rotate(deg).Norm()-v.Norm()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
