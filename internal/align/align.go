// Package align implements MoVR's backscatter beam-alignment protocol
// (paper §4.1): finding the reflector's angle of incidence toward the AP
// even though the reflector can neither transmit nor receive.
//
// The AP transmits a tone at f1 while the reflector sets both beams to a
// candidate angle θ1 and on/off-modulates its amplifier at f2. Whatever
// the reflector captures is amplified and re-radiated back toward the AP,
// where it arrives OOK-modulated — its energy sits at f1±f2 — while the
// AP's own TX→RX leakage stays at f1. A narrowband FFT at the AP
// separates the two, and the (θ1, θ2) pair that maximizes the f2 sideband
// power is the best alignment. The measurement here is performed on
// actual synthesized complex baseband samples, not a formula: leakage
// tone at DC, square-wave-modulated reflection, thermal noise, FFT,
// sideband integration.
package align

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/dsp"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/units"
)

// Config tunes the alignment measurement and sweep.
type Config struct {
	// ModFreqHz is f2, the OOK modulation frequency.
	ModFreqHz float64

	// SampleRateHz is the AP measurement receiver's complex sample
	// rate.
	SampleRateHz float64

	// Samples is the FFT size per measurement (power of two).
	Samples int

	// APStepDeg and ReflStepDeg are the sweep granularities.
	APStepDeg, ReflStepDeg float64

	// CoarseStepDeg is the first-pass granularity of the hierarchical
	// sweep.
	CoarseStepDeg float64

	// AlignGainDB is the safe amplifier gain programmed for the sweep
	// (low enough that no beam combination saturates the loop).
	AlignGainDB float64

	// Seed drives the measurement noise.
	Seed int64
}

// DefaultConfig returns the calibrated protocol parameters: f2 = 100 kHz
// sampled at 1.6 MHz with 256-point FFTs (f2 sits exactly on bin 16),
// 1° sweeps refined from a 7° coarse pass.
func DefaultConfig() Config {
	return Config{
		ModFreqHz:     100 * units.KHz,
		SampleRateHz:  1.6 * units.MHz,
		Samples:       256,
		APStepDeg:     1,
		ReflStepDeg:   1,
		CoarseStepDeg: 7,
		AlignGainDB:   20,
		Seed:          1,
	}
}

// Sweeper runs the alignment protocol between one AP and one reflector.
type Sweeper struct {
	AP     *radio.AP
	Dev    *reflector.Reflector
	Link   *control.Link
	Tracer *channel.Tracer

	cfg Config
	rng *rand.Rand
}

// NewSweeper validates the configuration and builds a Sweeper.
func NewSweeper(ap *radio.AP, dev *reflector.Reflector, link *control.Link, tr *channel.Tracer, cfg Config) (*Sweeper, error) {
	if !dsp.IsPow2(cfg.Samples) {
		return nil, fmt.Errorf("align: Samples %d must be a power of two", cfg.Samples)
	}
	if cfg.ModFreqHz <= 0 || cfg.SampleRateHz <= 0 {
		return nil, fmt.Errorf("align: modulation %v Hz / sample rate %v Hz must be positive", cfg.ModFreqHz, cfg.SampleRateHz)
	}
	if cfg.ModFreqHz >= cfg.SampleRateHz/2 {
		return nil, fmt.Errorf("align: modulation %v Hz exceeds Nyquist for %v Hz sampling", cfg.ModFreqHz, cfg.SampleRateHz)
	}
	if cfg.APStepDeg <= 0 || cfg.ReflStepDeg <= 0 || cfg.CoarseStepDeg <= 0 {
		return nil, fmt.Errorf("align: sweep steps must be positive")
	}
	return &Sweeper{AP: ap, Dev: dev, Link: link, Tracer: tr, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the sweeper configuration.
func (s *Sweeper) Config() Config { return s.cfg }

// reflectedPowerDBm computes the power of the reflector-returned tone at
// the AP's measurement receiver for the current beam settings, tracing
// the direct AP↔reflector leg both ways (blockage included) at the
// devices' mounting heights.
func (s *Sweeper) reflectedPowerDBm() float64 {
	paths := s.Tracer.TraceH(s.AP.Pos, s.Dev.Pos(), s.AP.HeightM, s.Dev.HeightM())
	p := paths[0] // direct leg (Trace always returns it first or sorted; take direct explicitly)
	for _, cand := range paths {
		if cand.Kind == channel.Direct {
			p = cand
			break
		}
	}
	loss := p.PropagationLossDB(s.AP.Budget.FreqHz)
	inbound := s.AP.Budget.TXPowerDBm + s.AP.GainDBi(p.AoDDeg) - loss + s.Dev.RXGainDBi(p.AoADeg)
	out := s.Dev.OutputPowerDBm(inbound)
	if math.IsInf(out, -1) {
		return math.Inf(-1)
	}
	return out + s.Dev.TXGainDBi(p.AoADeg) - loss + s.AP.GainDBi(p.AoDDeg)
}

// MeasureSidebandPower performs one protocol measurement: command the
// reflector to θ1 (both beams) with modulation on, steer the AP to θ2,
// synthesize the AP's baseband capture, and integrate the power at ±f2.
// It returns the sideband power in dBm.
func (s *Sweeper) MeasureSidebandPower(apBeamDeg, reflBeamDeg float64) (float64, error) {
	if _, err := s.Link.Call(control.Message{
		Type:  control.MsgSetBothBeams,
		Value: control.AngleToWire(reflBeamDeg),
	}); err != nil {
		return 0, err
	}
	s.AP.SteerTo(apBeamDeg)
	return s.measureCurrentSetting()
}

// measureCurrentSetting synthesizes and analyzes one capture with the
// beams as they are.
func (s *Sweeper) measureCurrentSetting() (float64, error) {
	n := s.cfg.Samples
	fNorm := s.cfg.ModFreqHz / s.cfg.SampleRateHz
	// Leakage tone at DC (the AP hears its own transmission).
	leakAmp := math.Sqrt(units.DBmToMilliwatts(s.AP.LeakagePowerDBm()))
	x := dsp.Tone(n, 0, leakAmp, 0)
	// Reflected tone, OOK-modulated by the reflector's amplifier.
	reflPow := s.reflectedPowerDBm()
	if !math.IsInf(reflPow, -1) {
		refl := dsp.Tone(n, 0, math.Sqrt(units.DBmToMilliwatts(reflPow)), s.rng.Float64()*2*math.Pi)
		mod := dsp.SquareWave(n, fNorm)
		dsp.Modulate(refl, mod)
		dsp.AddInPlace(x, refl)
	}
	// Thermal noise over the measurement band.
	noiseMw := units.DBmToMilliwatts(s.AP.MeasNoiseFloorDBm())
	dsp.AddNoise(x, noiseMw, s.rng)

	spec, err := dsp.PowerSpectrum(x)
	if err != nil {
		return 0, err
	}
	bin := dsp.BinForFreq(n, fNorm)
	power := dsp.BandPower(spec, bin, 1) + dsp.BandPower(spec, len(spec)-bin, 1)
	return units.MilliwattsToDBm(power), nil
}

// Result reports an alignment sweep outcome.
type Result struct {
	// APBeamDeg is the AP beam angle of the best measurement (θ2).
	APBeamDeg float64

	// ReflBeamDeg is the reflector beam angle of the best measurement
	// (θ1) — the estimated angle of incidence.
	ReflBeamDeg float64

	// PeakPowerDBm is the sideband power at the winning pair.
	PeakPowerDBm float64

	// Measurements is the number of (θ1, θ2) pairs probed.
	Measurements int

	// ControlTime is the simulated Bluetooth time consumed.
	ControlTime time.Duration

	// AirTime is the simulated RF dwell time consumed
	// (Samples/SampleRate per measurement).
	AirTime time.Duration
}

// TotalTime returns control plus air time.
func (r Result) TotalTime() time.Duration { return r.ControlTime + r.AirTime }

// Exhaustive runs the full joint sweep the paper describes: "it tries
// every possible combination of θ1 and θ2 while the AP is transmitting a
// signal and measuring the power of reflected signal".
func (s *Sweeper) Exhaustive() (Result, error) {
	apAngles := s.AP.Array.Codebook(s.cfg.APStepDeg)
	devAngles := codebookFor(s.Dev, s.cfg.ReflStepDeg)
	return s.sweep(apAngles, devAngles)
}

// Hierarchical runs a coarse joint sweep followed by a fine sweep around
// the coarse winner — the practical variant that keeps alignment time
// manageable.
func (s *Sweeper) Hierarchical() (Result, error) {
	coarse, err := s.sweep(
		s.AP.Array.Codebook(s.cfg.CoarseStepDeg),
		codebookFor(s.Dev, s.cfg.CoarseStepDeg),
	)
	if err != nil {
		return Result{}, err
	}
	span := s.cfg.CoarseStepDeg
	fine, err := s.sweep(
		angleRange(coarse.APBeamDeg-span, coarse.APBeamDeg+span, s.cfg.APStepDeg),
		angleRange(coarse.ReflBeamDeg-span, coarse.ReflBeamDeg+span, s.cfg.ReflStepDeg),
	)
	if err != nil {
		return Result{}, err
	}
	fine.Measurements += coarse.Measurements
	fine.ControlTime += coarse.ControlTime
	fine.AirTime += coarse.AirTime
	return fine, nil
}

// Refine runs a narrow sweep around externally predicted angles — the
// §4.1 shortcut: "MoVR does not need to repeat the full angle
// measurement process. Because the VR system constantly tracks the
// headset's position, we can simply leverage this information to
// determine the best angle." The prediction (e.g. from pose geometry)
// seeds a ±spanDeg window swept at the fine step.
func (s *Sweeper) Refine(predAPDeg, predReflDeg, spanDeg float64) (Result, error) {
	if spanDeg <= 0 {
		spanDeg = 5
	}
	return s.sweep(
		angleRange(predAPDeg-spanDeg, predAPDeg+spanDeg, s.cfg.APStepDeg),
		angleRange(predReflDeg-spanDeg, predReflDeg+spanDeg, s.cfg.ReflStepDeg),
	)
}

// sweep measures every (θ1, θ2) pair, with the reflector beam in the
// outer loop so each θ1 costs one control exchange.
func (s *Sweeper) sweep(apAngles, reflAngles []float64) (Result, error) {
	if err := s.prepare(); err != nil {
		return Result{}, err
	}
	res := Result{PeakPowerDBm: math.Inf(-1)}
	dwell := time.Duration(float64(s.cfg.Samples) / s.cfg.SampleRateHz * float64(time.Second))
	startCtl := s.Link.Elapsed()
	for _, reflBeam := range reflAngles {
		if _, err := s.Link.Call(control.Message{
			Type:  control.MsgSetBothBeams,
			Value: control.AngleToWire(reflBeam),
		}); err != nil {
			return Result{}, err
		}
		for _, apBeam := range apAngles {
			s.AP.SteerTo(apBeam)
			p, err := s.measureCurrentSetting()
			if err != nil {
				return Result{}, err
			}
			res.Measurements++
			res.AirTime += dwell
			if p > res.PeakPowerDBm {
				res.PeakPowerDBm = p
				res.APBeamDeg = apBeam
				res.ReflBeamDeg = s.Dev.RXBeamDeg()
			}
		}
	}
	res.ControlTime = s.Link.Elapsed() - startCtl
	if err := s.finish(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// prepare programs the safe alignment gain and starts modulation.
func (s *Sweeper) prepare() error {
	gainWord := int(math.Round((s.cfg.AlignGainDB - s.Dev.Amp().Config().MinGainDB) / s.Dev.Amp().Config().StepDB))
	if _, err := s.Link.Call(control.Message{Type: control.MsgSetGainWord, Value: int32(gainWord)}); err != nil {
		return err
	}
	_, err := s.Link.Call(control.Message{Type: control.MsgSetModulation, Value: int32(s.cfg.ModFreqHz)})
	return err
}

// finish stops modulation.
func (s *Sweeper) finish() error {
	_, err := s.Link.Call(control.Message{Type: control.MsgSetModulation, Value: 0})
	return err
}

// codebookFor builds a world-frame codebook for the reflector's arrays.
func codebookFor(dev *reflector.Reflector, stepDeg float64) []float64 {
	var angles []float64
	for rel := -75.0; rel <= 75+1e-9; rel += stepDeg {
		angles = append(angles, units.NormalizeDeg(dev.MountDeg()+rel))
	}
	return angles
}

// angleRange returns angles from lo to hi inclusive at the given step.
func angleRange(lo, hi, step float64) []float64 {
	var out []float64
	for a := lo; a <= hi+1e-9; a += step {
		out = append(out, units.NormalizeDeg(a))
	}
	return out
}

// GroundTruthDeg returns the true angle of incidence: the direction from
// the reflector to the AP, which is what the sweep estimates.
func GroundTruthDeg(dev *reflector.Reflector, ap *radio.AP) float64 {
	return units.NormalizeDeg(geom.DirectionDeg(dev.Pos(), ap.Pos))
}

// ErrorDeg returns the absolute angular error of an estimate against the
// ground truth.
func ErrorDeg(estimateDeg, truthDeg float64) float64 {
	return math.Abs(units.AngleDiffDeg(estimateDeg, truthDeg))
}
