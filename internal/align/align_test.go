package align

import (
	"math"
	"testing"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/control"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/radio"
	"github.com/movr-sim/movr/internal/reflector"
	"github.com/movr-sim/movr/internal/room"
)

// rig builds an AP in the south-west corner and a reflector on the north
// wall, the standard alignment geometry.
func rig(reflPos geom.Vec, seed int64) (*Sweeper, *radio.AP, *reflector.Reflector) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 0)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), b)
	dev := reflector.Default(reflPos, 270)
	ctl := reflector.NewController(dev)
	link := control.NewLink(ctl, control.DefaultRTT, 0, seed)
	cfg := DefaultConfig()
	cfg.Seed = seed
	s, err := NewSweeper(ap, dev, link, tr, cfg)
	if err != nil {
		panic(err)
	}
	return s, ap, dev
}

func TestNewSweeperValidation(t *testing.T) {
	s, ap, dev := rig(geom.V(2.5, 5), 1)
	bad := []func(*Config){
		func(c *Config) { c.Samples = 100 },
		func(c *Config) { c.ModFreqHz = 0 },
		func(c *Config) { c.SampleRateHz = 0 },
		func(c *Config) { c.ModFreqHz = 1e6 }, // over Nyquist at 1.6 MHz
		func(c *Config) { c.APStepDeg = 0 },
		func(c *Config) { c.ReflStepDeg = -1 },
		func(c *Config) { c.CoarseStepDeg = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewSweeper(ap, dev, s.Link, s.Tracer, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSidebandDetectable(t *testing.T) {
	// When both beams point correctly, the f2 sideband power must stand
	// far above the measurement at a badly wrong beam pair.
	s, ap, dev := rig(geom.V(2.5, 5), 2)
	truthRefl := GroundTruthDeg(dev, ap)
	truthAP := geom.DirectionDeg(ap.Pos, dev.Pos())

	if err := s.prepare(); err != nil {
		t.Fatal(err)
	}
	good, err := s.MeasureSidebandPower(truthAP, truthRefl)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.MeasureSidebandPower(truthAP+50, truthRefl-50)
	if err != nil {
		t.Fatal(err)
	}
	if good < bad+20 {
		t.Errorf("aligned sideband %v dBm not well above misaligned %v dBm", good, bad)
	}
	// The good measurement must also clear the noise floor decisively.
	if good < ap.MeasNoiseFloorDBm()+10 {
		t.Errorf("sideband %v dBm too close to noise floor %v", good, ap.MeasNoiseFloorDBm())
	}
}

func TestHierarchicalFindsAngles(t *testing.T) {
	// Fig 8's claim: estimated angle within 2° of ground truth.
	for _, pos := range []geom.Vec{
		geom.V(2.5, 5), geom.V(1.3, 5), geom.V(3.8, 5),
	} {
		s, ap, dev := rig(pos, 3)
		res, err := s.Hierarchical()
		if err != nil {
			t.Fatal(err)
		}
		truth := GroundTruthDeg(dev, ap)
		if e := ErrorDeg(res.ReflBeamDeg, truth); e > 2 {
			t.Errorf("pos %v: reflector angle error %v°, want ≤2", pos, e)
		}
		truthAP := geom.DirectionDeg(ap.Pos, dev.Pos())
		if e := ErrorDeg(res.APBeamDeg, truthAP); e > 2 {
			t.Errorf("pos %v: AP angle error %v°, want ≤2", pos, e)
		}
		if res.Measurements == 0 || res.TotalTime() <= 0 {
			t.Error("missing accounting")
		}
	}
}

func TestExhaustiveMatchesHierarchical(t *testing.T) {
	// The exhaustive sweep is the paper's reference procedure; the
	// hierarchical one must agree within the fine step.
	s, _, _ := rig(geom.V(2.5, 5), 4)
	ex, err := s.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	s2, _, _ := rig(geom.V(2.5, 5), 4)
	hi, err := s2.Hierarchical()
	if err != nil {
		t.Fatal(err)
	}
	if ErrorDeg(ex.ReflBeamDeg, hi.ReflBeamDeg) > 3 {
		t.Errorf("exhaustive %v vs hierarchical %v", ex.ReflBeamDeg, hi.ReflBeamDeg)
	}
	// Exhaustive costs far more measurements.
	if ex.Measurements < 5*hi.Measurements {
		t.Errorf("exhaustive %d vs hierarchical %d measurements", ex.Measurements, hi.Measurements)
	}
}

func TestAlignmentTimeDominatedByExhaustive(t *testing.T) {
	// §6: "Finding the best beam alignment is the most time consuming
	// process in the design." The exhaustive sweep should cost seconds,
	// far beyond the 10 ms frame budget.
	s, _, _ := rig(geom.V(2.5, 5), 5)
	ex, err := s.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if ex.TotalTime().Seconds() < 1 {
		t.Errorf("exhaustive alignment = %v, expected seconds", ex.TotalTime())
	}
	s2, _, _ := rig(geom.V(2.5, 5), 5)
	hi, err := s2.Hierarchical()
	if err != nil {
		t.Fatal(err)
	}
	if hi.TotalTime() >= ex.TotalTime() {
		t.Error("hierarchical should be faster than exhaustive")
	}
}

func TestBlockageDegradesMeasurement(t *testing.T) {
	// A floor-to-ceiling column between AP and reflector weakens the
	// backscatter. (A person would not: the AP→reflector ray runs above
	// head height — that is the point of mounting reflectors high.)
	s, ap, dev := rig(geom.V(2.5, 5), 6)
	if err := s.prepare(); err != nil {
		t.Fatal(err)
	}
	truthAP := geom.DirectionDeg(ap.Pos, dev.Pos())
	truthRefl := GroundTruthDeg(dev, ap)
	clear, err := s.MeasureSidebandPower(truthAP, truthRefl)
	if err != nil {
		t.Fatal(err)
	}
	mid := ap.Pos.Lerp(dev.Pos(), 0.5)
	s.Tracer.Room.AddObstacle(room.Column(mid, 0.2))
	blocked, err := s.MeasureSidebandPower(truthAP, truthRefl)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip passes the blocker twice: ≥ 2×body-loss weaker, less
	// sideband-vs-noise margin.
	if blocked > clear-30 {
		t.Errorf("blocked measurement %v dBm, clear %v dBm", blocked, clear)
	}
}

func TestLossyControlLinkStillAligns(t *testing.T) {
	// Failure injection: 20% control-frame loss; retries must absorb it.
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 0)
	ap := radio.NewAP(geom.V(0.4, 0.4), antenna.Default(45), b)
	dev := reflector.Default(geom.V(2.5, 5), 270)
	link := control.NewLink(reflector.NewController(dev), control.DefaultRTT, 0.2, 11)
	cfg := DefaultConfig()
	cfg.Seed = 11
	s, err := NewSweeper(ap, dev, link, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Hierarchical()
	if err != nil {
		t.Fatal(err)
	}
	truth := GroundTruthDeg(dev, ap)
	if e := ErrorDeg(res.ReflBeamDeg, truth); e > 2 {
		t.Errorf("angle error with lossy link = %v°", e)
	}
	_, drops := link.Stats()
	if drops == 0 {
		t.Error("expected some control drops at 20% loss")
	}
}

func TestRefineMatchesFullSweepCheaply(t *testing.T) {
	// §4.1's tracking shortcut: seeding the sweep with pose-predicted
	// angles must find the same alignment at a fraction of the cost.
	s, ap, dev := rig(geom.V(2.5, 5), 8)
	predRefl := align0GroundTruth(dev, ap) + 3 // pose prediction, 3° stale
	predAP := geom.DirectionDeg(ap.Pos, dev.Pos()) - 3
	ref, err := s.Refine(predAP, predRefl, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := GroundTruthDeg(dev, ap)
	if e := ErrorDeg(ref.ReflBeamDeg, truth); e > 2 {
		t.Errorf("refined angle error = %v°", e)
	}
	// Cost comparison against the hierarchical sweep.
	s2, _, _ := rig(geom.V(2.5, 5), 8)
	full, err := s2.Hierarchical()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Measurements*3 > full.Measurements {
		t.Errorf("refine used %d measurements vs full %d — not cheap enough",
			ref.Measurements, full.Measurements)
	}
	if ref.TotalTime() >= full.TotalTime() {
		t.Error("refine should be faster than the full sweep")
	}
	// Degenerate span defaults sanely.
	if _, err := s.Refine(predAP, predRefl, 0); err != nil {
		t.Fatal(err)
	}
}

// align0GroundTruth is a tiny indirection so the test reads naturally.
func align0GroundTruth(dev *reflector.Reflector, ap *radio.AP) float64 {
	return GroundTruthDeg(dev, ap)
}

func TestErrorDeg(t *testing.T) {
	if got := ErrorDeg(359, 1); math.Abs(got-2) > 1e-9 {
		t.Errorf("wrap-around error = %v", got)
	}
	if got := ErrorDeg(10, 10); got != 0 {
		t.Errorf("zero error = %v", got)
	}
}
