// Package radio models the full mmWave transceivers in the system: the
// access point ("mmWave AP") wired to the VR PC and the receiver mounted
// on the headset. Unlike the MoVR reflector, these are complete radios
// with transmit and receive chains.
//
// The AP additionally models the transmit-to-receive self-interference
// that matters during reflector alignment: "the transmitted signal leaks
// from the AP's transmit antenna to its receive antenna" (§4.1). The
// backscatter protocol in package align separates the reflected signal
// from this leakage in the frequency domain.
package radio

import (
	"fmt"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/units"
)

// Radio is a positioned mmWave transceiver with a steerable phased array.
type Radio struct {
	// Name identifies the radio in logs and reports.
	Name string

	// Pos is the radio's location in the floor plan.
	Pos geom.Vec

	// HeightM is the antenna height above the floor (used by the 2.5-D
	// blockage model).
	HeightM float64

	// Array is the steerable antenna.
	Array *antenna.Array

	// Budget carries TX power and receiver noise parameters.
	Budget channel.Budget
}

// New returns a Radio at pos using the given array and link budget, at
// the default endpoint height.
func New(name string, pos geom.Vec, arr *antenna.Array, budget channel.Budget) *Radio {
	return &Radio{Name: name, Pos: pos, HeightM: channel.DefaultEndpointHeightM, Array: arr, Budget: budget}
}

// SteerToward points the radio's beam at the target position and returns
// the applied world angle.
func (r *Radio) SteerToward(target geom.Vec) float64 {
	return r.Array.SteerTo(geom.DirectionDeg(r.Pos, target))
}

// SteerTo points the radio's beam at a world angle and returns the
// applied (possibly clamped) angle.
func (r *Radio) SteerTo(deg float64) float64 { return r.Array.SteerTo(deg) }

// GainDBi returns the array's realized gain toward a world angle.
func (r *Radio) GainDBi(deg float64) float64 { return r.Array.GainDBi(deg) }

// EIRPDBm returns the effective isotropic radiated power toward a world
// angle with the current steering.
func (r *Radio) EIRPDBm(deg float64) float64 {
	return r.Budget.TXPowerDBm + r.Array.GainDBi(deg)
}

// String describes the radio.
func (r *Radio) String() string {
	return fmt.Sprintf("%s@(%.2f,%.2f) beam=%.1f°", r.Name, r.Pos.X, r.Pos.Y, r.Array.SteeringDeg())
}

// LinkSNRdB computes the data-plane SNR from tx to rx over all traced
// paths, with both arrays at their current steering. This is the quantity
// the headset's receiver reports.
//
// LinkSNRdB allocates a fresh path slice per call; steady-state loops
// (the link manager's tracking step) should hold a scratch buffer and
// call LinkSNRdBBuf.
func LinkSNRdB(tr *channel.Tracer, tx, rx *Radio) float64 {
	snr, _ := LinkSNRdBBuf(tr, tx, rx, nil)
	return snr
}

// LinkSNRdBBuf is LinkSNRdB with a caller-retained scratch buffer: paths
// are traced into buf's storage (channel.Tracer.TraceHInto semantics),
// and the possibly-grown buffer is returned for the next call. Once the
// buffer has warmed up the computation is allocation-free.
func LinkSNRdBBuf(tr *channel.Tracer, tx, rx *Radio, buf []channel.Path) (float64, []channel.Path) {
	buf = tr.TraceHInto(buf[:0], tx.Pos, rx.Pos, tx.HeightM, rx.HeightM)
	return tx.Budget.CombinedSNRdB(buf, tx.Array, rx.Array), buf
}

// LinkSNRAligned steers both radios at each other along the direct path
// and returns the resulting SNR — the paper's LOS measurement.
func LinkSNRAligned(tr *channel.Tracer, tx, rx *Radio) float64 {
	tx.SteerToward(rx.Pos)
	rx.SteerToward(tx.Pos)
	return LinkSNRdB(tr, tx, rx)
}

// AP is the mmWave access point connected to the VR PC. It can transmit
// and receive simultaneously during reflector alignment, subject to
// finite TX→RX isolation.
type AP struct {
	Radio

	// SelfIsolationDB is the TX-to-RX antenna isolation: the leakage
	// tone arrives at the measurement receiver at
	// TXPower − SelfIsolationDB.
	SelfIsolationDB float64

	// MeasBandwidthHz is the bandwidth of the narrowband measurement
	// receiver used during alignment (far narrower than the data
	// channel, so weak backscatter sidebands stay above its noise
	// floor).
	MeasBandwidthHz float64

	// MeasNoiseFigureDB is the measurement receiver's noise figure.
	MeasNoiseFigureDB float64
}

// DefaultSelfIsolationDB is a typical same-board TX/RX antenna isolation.
const DefaultSelfIsolationDB = 35

// DefaultMeasBandwidthHz is the alignment receiver bandwidth (1 MHz).
const DefaultMeasBandwidthHz = 1 * units.MHz

// NewAP returns an AP at pos (tripod height) with the default
// self-interference and measurement-receiver parameters.
func NewAP(pos geom.Vec, arr *antenna.Array, budget channel.Budget) *AP {
	return &AP{
		Radio:             Radio{Name: "ap", Pos: pos, HeightM: channel.HeightAPM, Array: arr, Budget: budget},
		SelfIsolationDB:   DefaultSelfIsolationDB,
		MeasBandwidthHz:   DefaultMeasBandwidthHz,
		MeasNoiseFigureDB: 7,
	}
}

// LeakagePowerDBm returns the power of the AP's own transmit signal as
// seen by its measurement receiver.
func (a *AP) LeakagePowerDBm() float64 {
	return a.Budget.TXPowerDBm - a.SelfIsolationDB
}

// MeasNoiseFloorDBm returns the measurement receiver's noise floor.
func (a *AP) MeasNoiseFloorDBm() float64 {
	return units.ThermalNoiseDBm(a.MeasBandwidthHz, a.MeasNoiseFigureDB)
}

// Headset is the mmWave receiver mounted on the VR headset. Its array
// orientation follows the wearer's head yaw.
type Headset struct {
	Radio

	// YawDeg is the wearer's head yaw; the array boresight tracks it.
	YawDeg float64
}

// NewHeadset returns a headset radio at pos facing yawDeg, at standing
// head height.
func NewHeadset(pos geom.Vec, arr *antenna.Array, budget channel.Budget) *Headset {
	h := &Headset{Radio: Radio{Name: "headset", Pos: pos, HeightM: channel.HeightHeadsetM, Array: arr, Budget: budget}}
	h.SetYaw(arr.OrientationDeg())
	return h
}

// SetYaw rotates the wearer's head (and therefore the array boresight).
func (h *Headset) SetYaw(deg float64) {
	h.YawDeg = units.NormalizeDeg(deg)
	h.Array.SetOrientation(h.YawDeg)
}

// MoveTo repositions the headset.
func (h *Headset) MoveTo(p geom.Vec) { h.Pos = p }
