package radio

import (
	"math"
	"strings"
	"testing"

	"github.com/movr-sim/movr/internal/antenna"
	"github.com/movr-sim/movr/internal/channel"
	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/room"
	"github.com/movr-sim/movr/internal/units"
)

func testWorld() (*room.Room, *channel.Tracer, *Radio, *Radio) {
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	tx := New("tx", geom.V(0.5, 0.5), antenna.Default(45), b)
	rx := New("rx", geom.V(4.5, 4.5), antenna.Default(225), b)
	return rm, tr, tx, rx
}

func TestSteerToward(t *testing.T) {
	_, _, tx, rx := testWorld()
	applied := tx.SteerToward(rx.Pos)
	if math.Abs(units.AngleDiffDeg(applied, 45)) > 1e-9 {
		t.Errorf("steered to %v, want 45", applied)
	}
	if got := tx.Array.SteeringDeg(); math.Abs(units.AngleDiffDeg(got, 45)) > 1e-9 {
		t.Errorf("array steering = %v", got)
	}
}

func TestEIRP(t *testing.T) {
	_, _, tx, _ := testWorld()
	tx.SteerTo(45)
	eirp := tx.EIRPDBm(45)
	want := tx.Budget.TXPowerDBm + tx.Array.GainDBi(45)
	if eirp != want {
		t.Errorf("EIRP = %v, want %v", eirp, want)
	}
}

func TestLinkSNRAlignedIsPaperLOS(t *testing.T) {
	_, tr, tx, rx := testWorld()
	snr := LinkSNRAligned(tr, tx, rx)
	// Corner-to-corner (5.66 m) LOS: low-to-mid 20s dB.
	if snr < 17 || snr > 30 {
		t.Errorf("LOS SNR = %v, want paper-like 20s", snr)
	}
	// Misaligning the RX beam must lose a lot of SNR.
	rx.SteerTo(rx.Array.OrientationDeg() + 50)
	mis := LinkSNRdB(tr, tx, rx)
	if mis > snr-8 {
		t.Errorf("misaligned SNR %v not much below aligned %v", mis, snr)
	}
}

func TestLinkSNRWithBlockage(t *testing.T) {
	rm, tr, tx, rx := testWorld()
	aligned := LinkSNRAligned(tr, tx, rx)
	rm.AddObstacle(room.Hand(geom.V(2.5, 2.5)))
	blocked := LinkSNRdB(tr, tx, rx)
	drop := aligned - blocked
	// Paper §3: hand blockage drops SNR by >14 dB. (With reflections in
	// the trace the combined drop can be a little smaller than the
	// direct-path-only drop; allow 12+.)
	if drop < 12 {
		t.Errorf("hand blockage dropped SNR by only %v dB", drop)
	}
}

func TestAPLeakageAndNoise(t *testing.T) {
	b := channel.DefaultBudget()
	ap := NewAP(geom.V(0.3, 0.3), antenna.Default(45), b)
	// Leakage = TX power - isolation.
	if got := ap.LeakagePowerDBm(); got != b.TXPowerDBm-DefaultSelfIsolationDB {
		t.Errorf("leakage = %v", got)
	}
	// 1 MHz measurement bandwidth: noise floor ≈ -174+60+7 = -107 dBm.
	if got := ap.MeasNoiseFloorDBm(); math.Abs(got-(-107)) > 1 {
		t.Errorf("measurement noise floor = %v, want ~-107", got)
	}
	// Leakage towers over the measurement noise floor — the §4.1 problem.
	if ap.LeakagePowerDBm() < ap.MeasNoiseFloorDBm()+50 {
		t.Error("leakage should dominate the measurement receiver")
	}
}

func TestHeadsetYaw(t *testing.T) {
	b := channel.DefaultBudget()
	hs := NewHeadset(geom.V(2, 2), antenna.Default(90), b)
	if hs.YawDeg != 90 {
		t.Errorf("initial yaw = %v", hs.YawDeg)
	}
	hs.SetYaw(-30)
	if hs.YawDeg != 330 {
		t.Errorf("yaw = %v, want normalized 330", hs.YawDeg)
	}
	if got := hs.Array.OrientationDeg(); got != 330 {
		t.Errorf("array orientation = %v, should follow yaw", got)
	}
	hs.MoveTo(geom.V(3, 3))
	if !hs.Pos.AlmostEqual(geom.V(3, 3), 1e-12) {
		t.Error("MoveTo failed")
	}
}

func TestHeadRotationKillsLink(t *testing.T) {
	// The paper's Fig 2 scenario: "user rotated her head" so the
	// headset's array faces away from the AP.
	rm := room.NewOffice5x5()
	b := channel.DefaultBudget()
	tr := channel.NewTracer(rm, b.FreqHz, 1)
	ap := NewAP(geom.V(0.3, 2.5), antenna.Default(0), b)
	hs := NewHeadset(geom.V(4, 2.5), antenna.Default(180), b)
	ap.SteerToward(hs.Pos)
	hs.SteerToward(ap.Pos)
	facing := LinkSNRdB(tr, &ap.Radio, &hs.Radio)

	// Turn the head 180°: boresight now away from AP; the AP direction
	// is in the array's backlobe.
	hs.SetYaw(0)
	hs.SteerToward(ap.Pos) // steering clamps to scan range; backlobe remains
	away := LinkSNRdB(tr, &ap.Radio, &hs.Radio)
	if away > facing-15 {
		t.Errorf("head rotation only cost %v dB", facing-away)
	}
}

func TestString(t *testing.T) {
	_, _, tx, _ := testWorld()
	if s := tx.String(); !strings.Contains(s, "tx@") {
		t.Errorf("String = %q", s)
	}
}
