package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDBLinearRoundTrip(t *testing.T) {
	for _, db := range []float64{-120, -30, -3, 0, 3, 10, 20, 60} {
		got := LinearToDB(DBToLinear(db))
		if !almostEqual(got, db, 1e-9) {
			t.Errorf("round trip of %v dB = %v", db, got)
		}
	}
}

func TestDBLinearKnownValues(t *testing.T) {
	cases := []struct {
		db  float64
		lin float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-10, 0.1},
		{3, 1.9952623149688795},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); !almostEqual(got, c.lin, 1e-9) {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.lin)
		}
	}
}

func TestLinearToDBNonPositive(t *testing.T) {
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-5), -1) {
		t.Error("LinearToDB(-5) should be -Inf")
	}
	if !math.IsInf(MilliwattsToDBm(0), -1) {
		t.Error("MilliwattsToDBm(0) should be -Inf")
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBmToMilliwatts(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("0 dBm = %v mW, want 1", got)
	}
	if got := DBmToMilliwatts(30); !almostEqual(got, 1000, 1e-9) {
		t.Errorf("30 dBm = %v mW, want 1000", got)
	}
	if got := WattsToDBm(1); !almostEqual(got, 30, 1e-9) {
		t.Errorf("1 W = %v dBm, want 30", got)
	}
	if got := DBmToWatts(30); !almostEqual(got, 1, 1e-12) {
		t.Errorf("30 dBm = %v W, want 1", got)
	}
}

func TestAddPowersDBm(t *testing.T) {
	// Two equal powers add to +3.01 dB.
	got := AddPowersDBm(10, 10)
	if !almostEqual(got, 10+10*math.Log10(2), 1e-9) {
		t.Errorf("10+10 dBm = %v", got)
	}
	// -Inf contributions are ignored.
	got = AddPowersDBm(10, math.Inf(-1))
	if !almostEqual(got, 10, 1e-9) {
		t.Errorf("10 + (-Inf) dBm = %v, want 10", got)
	}
	// Empty sum is -Inf (no power).
	if !math.IsInf(AddPowersDBm(), -1) {
		t.Error("empty AddPowersDBm should be -Inf")
	}
}

func TestWavelength(t *testing.T) {
	// 24 GHz -> 12.5 mm, 60 GHz -> ~5 mm.
	if got := Wavelength(ISM24GHz); !almostEqual(got, 0.012491, 1e-5) {
		t.Errorf("lambda(24 GHz) = %v", got)
	}
	if got := Wavelength(Band60GHz); !almostEqual(got, 0.004958, 1e-5) {
		t.Errorf("lambda(60.48 GHz) = %v", got)
	}
}

func TestFSPLKnownValue(t *testing.T) {
	// FSPL at 1 m, 24 GHz: 20 log10(4*pi*1/0.012491) = 60.05 dB.
	got := FSPL(1, ISM24GHz)
	if !almostEqual(got, 60.05, 0.05) {
		t.Errorf("FSPL(1 m, 24 GHz) = %v, want ~60.05", got)
	}
	// Doubling the distance adds 6.02 dB.
	d1, d2 := FSPL(2, ISM24GHz), FSPL(4, ISM24GHz)
	if !almostEqual(d2-d1, 6.0206, 1e-3) {
		t.Errorf("doubling distance added %v dB, want 6.02", d2-d1)
	}
}

func TestFSPLNearFieldClamp(t *testing.T) {
	// Below one wavelength the loss clamps to the one-wavelength value
	// (≈ 22 dB) and never goes negative.
	got := FSPL(1e-6, ISM24GHz)
	want := 20 * math.Log10(4*math.Pi)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("near-field FSPL = %v, want %v", got, want)
	}
}

func TestThermalNoise(t *testing.T) {
	// Density must be ~ -173.98 dBm/Hz.
	if got := NoiseDensityDBmPerHz(); !almostEqual(got, -173.975, 0.01) {
		t.Errorf("noise density = %v dBm/Hz", got)
	}
	// 802.11ad channel with NF 6 dB: -173.98 + 10log10(1.76e9) + 6 = -75.5 dBm.
	got := ThermalNoiseDBm(Channel80211adBandwidth, 6)
	if !almostEqual(got, -75.52, 0.1) {
		t.Errorf("noise floor = %v dBm, want ~-75.5", got)
	}
}

func TestNormalizeDeg(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {-90, 270}, {450, 90}, {-720, 0}, {359.5, 359.5},
	}
	for _, c := range cases {
		if got := NormalizeDeg(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalizeDeg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAngleDiffDeg(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{10, 350, 20},
		{350, 10, -20},
		{180, 0, 180},
		{0, 180, 180}, // (-180, 180]: -180 maps to +180
		{90, 90, 0},
		{270, 90, 180},
	}
	for _, c := range cases {
		if got := AngleDiffDeg(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AngleDiffDeg(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: dB -> linear -> dB is the identity over a wide range.
func TestQuickDBRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		db := math.Mod(x, 200) // keep within a sane dynamic range
		if math.IsNaN(db) {
			return true
		}
		return almostEqual(LinearToDB(DBToLinear(db)), db, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddPowersDBm is no less than its largest operand and no more
// than largest + 10·log10(n).
func TestQuickAddPowersBounds(t *testing.T) {
	f := func(a, b, c float64) bool {
		ps := []float64{math.Mod(a, 60), math.Mod(b, 60), math.Mod(c, 60)}
		for _, p := range ps {
			if math.IsNaN(p) {
				return true
			}
		}
		sum := AddPowersDBm(ps...)
		maxP := math.Max(ps[0], math.Max(ps[1], ps[2]))
		return sum >= maxP-1e-9 && sum <= maxP+10*math.Log10(3)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FSPL is monotonically nondecreasing in distance.
func TestQuickFSPLMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		d1 := math.Abs(math.Mod(a, 100))
		d2 := math.Abs(math.Mod(b, 100))
		if math.IsNaN(d1) || math.IsNaN(d2) {
			return true
		}
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return FSPL(d1, ISM24GHz) <= FSPL(d2, ISM24GHz)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeDeg output is always in [0, 360) and preserves the
// angle modulo 360.
func TestQuickNormalizeDeg(t *testing.T) {
	f := func(x float64) bool {
		d := math.Mod(x, 1e6)
		if math.IsNaN(d) {
			return true
		}
		n := NormalizeDeg(d)
		if n < 0 || n >= 360 {
			return false
		}
		return math.Abs(math.Mod(n-d, 360)) < 1e-6 || math.Abs(math.Abs(math.Mod(n-d, 360))-360) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
