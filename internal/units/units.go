// Package units provides the physical units, constants, and dB-domain
// conversions used throughout the MoVR simulator.
//
// All RF computations in the repository follow two conventions:
//
//   - Absolute powers are expressed in dBm (decibels relative to 1 mW).
//   - Relative quantities (gains, losses, SNR) are expressed in dB.
//
// The helpers here convert between the dB domain and the linear domain
// (milliwatts or unitless ratios) and compute the quantities every link
// budget needs: wavelength, free-space path loss, and thermal noise floor.
package units

import "math"

// Physical constants.
const (
	// SpeedOfLight is the speed of light in vacuum, in metres per second.
	SpeedOfLight = 299_792_458.0

	// Boltzmann is the Boltzmann constant in joules per kelvin.
	Boltzmann = 1.380_649e-23

	// StandardNoiseTemperature is the reference temperature (kelvin) used
	// for thermal noise computations, per convention T0 = 290 K.
	StandardNoiseTemperature = 290.0
)

// Frequency helpers, in hertz.
const (
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// Data-rate helpers, in bits per second.
const (
	Kbps = 1e3
	Mbps = 1e6
	Gbps = 1e9
)

// Common mmWave carrier frequencies, in hertz.
const (
	// ISM24GHz is the 24 GHz ISM band used by the MoVR prototype.
	ISM24GHz = 24.0 * GHz

	// Band60GHz is the 60 GHz band used by IEEE 802.11ad channel 2.
	Band60GHz = 60.48 * GHz
)

// Channel80211adBandwidth is the occupied bandwidth of a single IEEE
// 802.11ad channel (1.76 GHz), used for noise-floor computations.
const Channel80211adBandwidth = 1.76 * GHz

// DBToLinear converts a relative dB value to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB. Ratios that are zero or
// negative map to -Inf, which the dB domain treats as "no power".
func LinearToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// DBmToMilliwatts converts an absolute power in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts an absolute power in milliwatts to dBm. Zero or
// negative power maps to -Inf dBm.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DBmToWatts converts an absolute power in dBm to watts.
func DBmToWatts(dbm float64) float64 { return DBmToMilliwatts(dbm) / 1e3 }

// WattsToDBm converts an absolute power in watts to dBm.
func WattsToDBm(w float64) float64 { return MilliwattsToDBm(w * 1e3) }

// AddPowersDBm sums absolute powers expressed in dBm, returning the total
// in dBm. It is the dB-domain equivalent of adding watts.
func AddPowersDBm(dbm ...float64) float64 {
	total := 0.0
	for _, p := range dbm {
		if !math.IsInf(p, -1) {
			total += DBmToMilliwatts(p)
		}
	}
	return MilliwattsToDBm(total)
}

// Wavelength returns the free-space wavelength in metres for a carrier
// frequency in hertz.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// FSPL returns the free-space path loss in dB for a path of length
// distanceM metres at carrier frequency freqHz, per the Friis equation:
//
//	FSPL = 20·log10(4π·d / λ)
//
// Distances below one wavelength are clamped to one wavelength so that the
// loss never goes negative (the far-field model does not apply there
// anyway).
func FSPL(distanceM, freqHz float64) float64 {
	lambda := Wavelength(freqHz)
	if distanceM < lambda {
		distanceM = lambda
	}
	return 20 * math.Log10(4*math.Pi*distanceM/lambda)
}

// ThermalNoiseDBm returns the thermal noise floor in dBm for a receiver of
// the given bandwidth (hertz) and noise figure (dB):
//
//	N = 10·log10(k·T0·B / 1 mW) + NF
//
// At T0 = 290 K the density term is the familiar −173.98 dBm/Hz.
func ThermalNoiseDBm(bandwidthHz, noiseFigureDB float64) float64 {
	ktb := Boltzmann * StandardNoiseTemperature * bandwidthHz
	return WattsToDBm(ktb) + noiseFigureDB
}

// NoiseDensityDBmPerHz is the thermal noise power spectral density at the
// standard noise temperature, ≈ −173.98 dBm/Hz.
func NoiseDensityDBmPerHz() float64 {
	return WattsToDBm(Boltzmann * StandardNoiseTemperature)
}

// DegToRad converts degrees to radians.
func DegToRad(deg float64) float64 { return deg * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(rad float64) float64 { return rad * 180 / math.Pi }

// NormalizeDeg wraps an angle in degrees onto the interval [0, 360).
func NormalizeDeg(deg float64) float64 {
	d := math.Mod(deg, 360)
	if d < 0 {
		d += 360
	}
	return d
}

// AngleDiffDeg returns the smallest signed difference a−b between two
// angles in degrees, in the interval (−180, 180].
func AngleDiffDeg(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	switch {
	case d > 180:
		d -= 360
	case d <= -180:
		d += 360
	}
	return d
}
