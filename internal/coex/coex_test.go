package coex

import (
	"math"
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/vr"
)

// standing returns a one-pose trace: a player standing at pos for the
// whole session.
func standing(pos geom.Vec) vr.Trace {
	return vr.Trace{{T: 0, Pos: pos}}
}

var apPos = geom.V(0.4, 0.4)

func mustScheduler(t *testing.T, rm Room) *Scheduler {
	t.Helper()
	s, err := NewScheduler(rm, apPos)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shareIntegral samples Share over [0, dur) at sub-slot resolution and
// returns the average — the session's effective airtime fraction.
func shareIntegral(s *Scheduler, dur time.Duration) float64 {
	const step = time.Millisecond
	sum, n := 0.0, 0
	for t := time.Duration(0); t < dur; t += step {
		sum += s.Share(t)
		n++
	}
	return sum / float64(n)
}

func TestSinglePlayerOwnsTheMedium(t *testing.T) {
	s := mustScheduler(t, Room{Players: []vr.Trace{standing(geom.V(4, 4))}})
	for _, at := range []time.Duration{0, 7 * time.Millisecond, 50 * time.Millisecond, time.Second} {
		if got := s.Share(at); got != 1 {
			t.Errorf("Share(%v) = %v, want 1", at, got)
		}
	}
}

func TestTwoClearPlayersSplitEvenly(t *testing.T) {
	// Both players have clear line of sight from the AP: each gets half
	// of every window, so the average share is 1/2 and at any instant
	// exactly one of the two holds the medium.
	players := []vr.Trace{standing(geom.V(6, 2)), standing(geom.V(2, 6))}
	a := mustScheduler(t, Room{Players: players, Self: 0})
	b := mustScheduler(t, Room{Players: players, Self: 1})

	if got := shareIntegral(a, time.Second); math.Abs(got-0.5) > 0.01 {
		t.Errorf("player 0 average share = %v, want 0.5", got)
	}
	for ms := 0; ms < 200; ms++ {
		at := time.Duration(ms) * time.Millisecond
		if a.Share(at)+b.Share(at) != 1 {
			t.Fatalf("at %v the medium is held by %v+%v players", at, a.Share(at), b.Share(at))
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	// With two active players the slot order flips every window, so each
	// player's slot sweeps both halves of the cadence.
	players := []vr.Trace{standing(geom.V(6, 2)), standing(geom.V(2, 6))}
	s := mustScheduler(t, Room{Players: players, Self: 0, Period: 50 * time.Millisecond})
	// Window 0 starts at player 0: first half of [0, 50 ms).
	if s.Share(10*time.Millisecond) != 1 || s.Share(40*time.Millisecond) != 0 {
		t.Error("window 0 should give player 0 the first sub-slot")
	}
	// Window 1 rotates: player 0 gets the second half of [50, 100 ms).
	if s.Share(60*time.Millisecond) != 0 || s.Share(90*time.Millisecond) != 1 {
		t.Error("window 1 should give player 0 the second sub-slot")
	}
}

func TestIdleReclaim(t *testing.T) {
	// Player 1 stands directly between the AP and player 0: player 0's
	// direct path is body-blocked, so its slots are reclaimed and player
	// 1 holds the whole medium.
	blockedPos := geom.V(4.4, 4.4)
	onTheLine := geom.V(2.4, 2.4)
	players := []vr.Trace{standing(blockedPos), standing(onTheLine)}
	blocked := mustScheduler(t, Room{Players: players, Self: 0})
	clear := mustScheduler(t, Room{Players: players, Self: 1})

	if got := shareIntegral(blocked, time.Second); got != 0 {
		t.Errorf("blocked player share = %v, want 0 (slots reclaimed)", got)
	}
	if got := shareIntegral(clear, time.Second); got != 1 {
		t.Errorf("clear player share = %v, want 1 (reclaimed the whole window)", got)
	}
}

func TestAllBlockedFallsBackToEvenSplit(t *testing.T) {
	// Two players standing shoulder to shoulder: each one's body disc
	// shadows the other's sightline from the AP, so both are blocked;
	// with nothing to reclaim the schedule degrades to the plain even
	// split.
	players := []vr.Trace{standing(geom.V(2.4, 2.4)), standing(geom.V(2.55, 2.35))}
	s := mustScheduler(t, Room{Players: players, Self: 0})
	if got := shareIntegral(s, time.Second); math.Abs(got-0.5) > 0.01 {
		t.Errorf("mutually blocked share = %v, want 0.5", got)
	}
}

func TestSlotsCoverTheWholeWindow(t *testing.T) {
	// Three active players: sub-slot boundaries are fractions of the
	// window, so every instant belongs to exactly one player even when
	// the period does not divide evenly.
	players := []vr.Trace{standing(geom.V(6, 2)), standing(geom.V(2, 6)), standing(geom.V(7, 7))}
	scheds := make([]*Scheduler, len(players))
	for i := range players {
		scheds[i] = mustScheduler(t, Room{Players: players, Self: i})
	}
	for us := 0; us < 150_000; us += 61 {
		at := time.Duration(us) * time.Microsecond
		total := 0.0
		for _, s := range scheds {
			total += s.Share(at)
		}
		if total != 1 {
			t.Fatalf("at %v the medium is held by %v players", at, total)
		}
	}
}

func TestWrapGatesTheRate(t *testing.T) {
	players := []vr.Trace{standing(geom.V(6, 2)), standing(geom.V(2, 6))}
	s := mustScheduler(t, Room{Players: players, Self: 0, Period: 50 * time.Millisecond})
	rate := s.Wrap(func(time.Duration) float64 { return 4e9 })
	if got := rate(10 * time.Millisecond); got != 4e9 {
		t.Errorf("in-slot rate = %v, want full rate", got)
	}
	if got := rate(40 * time.Millisecond); got != 0 {
		t.Errorf("out-of-slot rate = %v, want 0", got)
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	ok := []vr.Trace{standing(geom.V(1, 1))}
	cases := []Room{
		{},                                  // no players
		{Players: ok, Self: -1},             // self below range
		{Players: ok, Self: 1},              // self beyond range
		{Players: []vr.Trace{nil}, Self: 0}, // empty trace
		{Players: []vr.Trace{ok[0], nil}},   // empty peer trace
	}
	for i, rm := range cases {
		if _, err := NewScheduler(rm, apPos); err == nil {
			t.Errorf("case %d: NewScheduler accepted an invalid room", i)
		}
	}
}
