package coex

import (
	"testing"
	"time"

	"github.com/movr-sim/movr/internal/geom"
	"github.com/movr-sim/movr/internal/vr"
)

// walkers generates n seeded walking traces in a 5×5 room for dur.
func walkers(t *testing.T, n int, dur time.Duration) []vr.Trace {
	t.Helper()
	traces := make([]vr.Trace, n)
	for i := range traces {
		cfg := vr.DefaultTraceConfig(5, 5, int64(100+i))
		cfg.Duration = dur
		tr, err := vr.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = tr
	}
	return traces
}

// TestGeometryScheduleBitIdentical is the tentpole determinism pin: a
// scheduler reading the room-owned precomputed schedule must agree with
// live policy evaluation bit for bit — at every instant, for every
// player, under every policy, with uplink reservations and weights in
// play, both inside the snapshot's horizon and beyond it (where the
// geometry path falls back to the live layout).
func TestGeometryScheduleBitIdentical(t *testing.T) {
	const dur = 2 * time.Second
	players := walkers(t, 3, dur)
	for _, policy := range []PolicyName{PolicyRR, PolicyPF, PolicyEDF} {
		rm := Room{
			Players:    players,
			Period:     50 * time.Millisecond,
			Policy:     policy,
			Weights:    []float64{1, 2, 1},
			UplinkSlot: 300 * time.Microsecond,
		}
		geo, err := BuildGeometry(rm, apPos, 10*time.Millisecond, dur)
		if err != nil {
			t.Fatal(err)
		}
		for self := range players {
			rm.Self = self
			rm.Geometry = nil
			live := mustScheduler(t, rm)
			rm.Geometry = geo
			snap := mustScheduler(t, rm)
			// 313 µs strides sample uplink heads, slot interiors and
			// boundaries at every phase; the sweep runs half a period
			// past the horizon to cross into the fallback windows.
			for at := time.Duration(0); at < dur+25*time.Millisecond; at += 313 * time.Microsecond {
				if l, s := live.Share(at), snap.Share(at); l != s {
					t.Fatalf("%s self=%d Share(%v): live %v, snapshot %v", policy, self, at, l, s)
				}
			}
		}
	}
}

// TestGeometryPoseGrid pins the pose table's answer-only-what-is-exact
// contract: on-grid queries within the horizon equal the trace lookup,
// while off-grid, out-of-horizon, negative-time and out-of-range
// queries miss and defer to the caller's trace fallback.
func TestGeometryPoseGrid(t *testing.T) {
	const dur = time.Second
	const step = 10 * time.Millisecond
	players := walkers(t, 2, dur)
	geo, err := BuildGeometry(Room{Players: players}, apPos, step, dur)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range players {
		for at := time.Duration(0); at <= dur; at += step {
			p, ok := geo.PoseAt(i, at)
			if !ok {
				t.Fatalf("player %d PoseAt(%v) missed on the grid", i, at)
			}
			if want := tr.At(at).Pos; p != want {
				t.Fatalf("player %d PoseAt(%v) = %v, trace says %v", i, at, p, want)
			}
		}
	}
	for _, bad := range []time.Duration{3 * time.Millisecond, -step, dur + step} {
		if _, ok := geo.PoseAt(0, bad); ok {
			t.Errorf("PoseAt(0, %v) answered off the grid or horizon", bad)
		}
	}
	if _, ok := geo.PoseAt(2, 0); ok {
		t.Error("PoseAt answered for an out-of-range player")
	}
}

// TestGeometryCheckRejectsMismatches pins the fail-fast contract: a
// snapshot built for a different configuration must be rejected at
// scheduler construction, while a room whose Self trace was substituted
// with a content-equal copy (the session engine always does this) must
// be accepted.
func TestGeometryCheckRejectsMismatches(t *testing.T) {
	const dur = time.Second
	players := walkers(t, 2, dur)
	base := Room{Players: players, Period: 50 * time.Millisecond}
	geo, err := BuildGeometry(base, apPos, 10*time.Millisecond, dur)
	if err != nil {
		t.Fatal(err)
	}

	reject := func(name string, rm Room, ap geom.Vec) {
		t.Helper()
		rm.Geometry = geo
		if _, err := NewScheduler(rm, ap); err == nil {
			t.Errorf("%s: mismatched geometry was accepted", name)
		}
	}
	period := base
	period.Period = 40 * time.Millisecond
	reject("period", period, apPos)

	policy := base
	policy.Policy = PolicyPF
	reject("policy", policy, apPos)

	weights := base
	weights.Weights = []float64{1, 2}
	reject("weights", weights, apPos)

	uplink := base
	uplink.UplinkSlot = 200 * time.Microsecond
	reject("uplink", uplink, apPos)

	otherTrace := base
	otherTrace.Players = []vr.Trace{players[0], players[0]}
	reject("players", otherTrace, apPos)

	reject("ap", base, geom.V(1, 1))

	// The session engine substitutes a regenerated copy of the Self
	// trace — same content, different backing array. That must pass.
	subst := base
	subst.Players = []vr.Trace{append(vr.Trace(nil), players[0]...), players[1]}
	subst.Geometry = geo
	if _, err := NewScheduler(subst, apPos); err != nil {
		t.Errorf("content-equal substituted trace rejected: %v", err)
	}
}

// TestGeometryShareZeroAllocs guards the read path: consuming a
// precomputed schedule allocates nothing, window transitions included.
func TestGeometryShareZeroAllocs(t *testing.T) {
	const dur = time.Second
	players := walkers(t, 3, dur)
	rm := Room{Players: players, Period: 50 * time.Millisecond}
	geo, err := BuildGeometry(rm, apPos, 10*time.Millisecond, dur)
	if err != nil {
		t.Fatal(err)
	}
	rm.Geometry = geo
	s := mustScheduler(t, rm)
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(500, func() {
		s.Share(at)
		at += 7 * time.Millisecond
		if at > dur {
			at = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("snapshot Share allocates %.1f objects/op, want 0", allocs)
	}
}
